#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "linalg/eigen.h"
#include "linalg/matrix.h"
#include "linalg/qr.h"
#include "linalg/svd.h"
#include "util/random.h"

namespace m2td::linalg {
namespace {

Matrix RandomMatrix(std::size_t rows, std::size_t cols, Rng* rng) {
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) m(i, j) = rng->Gaussian();
  }
  return m;
}

Matrix RandomSymmetric(std::size_t n, Rng* rng) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      const double v = rng->Gaussian();
      m(i, j) = v;
      m(j, i) = v;
    }
  }
  return m;
}

// ----------------------------------------------------------------- Matrix

TEST(MatrixTest, ConstructionAndAccess) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 3; ++j) EXPECT_EQ(m(i, j), 0.0);
  }
  m(1, 2) = 5.0;
  EXPECT_EQ(m(1, 2), 5.0);
}

TEST(MatrixTest, FromData) {
  Matrix m(2, 2, {1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(m(0, 0), 1.0);
  EXPECT_EQ(m(0, 1), 2.0);
  EXPECT_EQ(m(1, 0), 3.0);
  EXPECT_EQ(m(1, 1), 4.0);
}

TEST(MatrixTest, Identity) {
  Matrix id = Matrix::Identity(3);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_EQ(id(i, j), i == j ? 1.0 : 0.0);
    }
  }
}

TEST(MatrixTest, Transposed) {
  Matrix m(2, 3, {1, 2, 3, 4, 5, 6});
  Matrix t = m.Transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_EQ(t(2, 1), 6.0);
  EXPECT_EQ(t(0, 1), 4.0);
}

TEST(MatrixTest, FrobeniusNormAndRowNorm) {
  Matrix m(2, 2, {3, 4, 0, 0});
  EXPECT_DOUBLE_EQ(m.FrobeniusNorm(), 5.0);
  EXPECT_DOUBLE_EQ(m.RowNorm(0), 5.0);
  EXPECT_DOUBLE_EQ(m.RowNorm(1), 0.0);
}

TEST(MatrixTest, ScaleAndLeadingColumns) {
  Matrix m(2, 3, {1, 2, 3, 4, 5, 6});
  m.Scale(2.0);
  EXPECT_EQ(m(1, 2), 12.0);
  Matrix lead = m.LeadingColumns(2);
  EXPECT_EQ(lead.cols(), 2u);
  EXPECT_EQ(lead(1, 1), 10.0);
}

TEST(MatrixTest, MultiplyMatchesHandComputation) {
  Matrix a(2, 3, {1, 2, 3, 4, 5, 6});
  Matrix b(3, 2, {7, 8, 9, 10, 11, 12});
  Matrix c = Multiply(a, b);
  EXPECT_EQ(c(0, 0), 58.0);
  EXPECT_EQ(c(0, 1), 64.0);
  EXPECT_EQ(c(1, 0), 139.0);
  EXPECT_EQ(c(1, 1), 154.0);
}

TEST(MatrixTest, TransposedMultipliesAgree) {
  Rng rng(3);
  Matrix a = RandomMatrix(4, 6, &rng);
  Matrix b = RandomMatrix(4, 5, &rng);
  // A^T B via explicit transpose vs MultiplyTransA.
  Matrix expected = Multiply(a.Transposed(), b);
  Matrix actual = MultiplyTransA(a, b);
  EXPECT_LT(Matrix::MaxAbsDiff(expected, actual), 1e-12);

  Matrix c = RandomMatrix(5, 6, &rng);
  Matrix expected2 = Multiply(a, c.Transposed());
  Matrix actual2 = MultiplyTransB(a, c);
  EXPECT_LT(Matrix::MaxAbsDiff(expected2, actual2), 1e-12);
}

TEST(MatrixTest, LinearCombination) {
  Matrix a(1, 2, {1, 2});
  Matrix b(1, 2, {10, 20});
  Matrix c = LinearCombination(2.0, a, 0.5, b);
  EXPECT_EQ(c(0, 0), 7.0);
  EXPECT_EQ(c(0, 1), 14.0);
}

TEST(MatrixTest, MatVec) {
  Matrix a(2, 3, {1, 0, 2, 0, 1, 3});
  std::vector<double> y = MatVec(a, {1.0, 2.0, 3.0});
  ASSERT_EQ(y.size(), 2u);
  EXPECT_EQ(y[0], 7.0);
  EXPECT_EQ(y[1], 11.0);
}

// ------------------------------------------------------------------ Solve

TEST(SolveTest, SolvesDiagonal) {
  Matrix a(2, 2, {2, 0, 0, 4});
  auto x = SolveLinearSystem(a, {2.0, 8.0});
  ASSERT_TRUE(x.ok());
  EXPECT_DOUBLE_EQ((*x)[0], 1.0);
  EXPECT_DOUBLE_EQ((*x)[1], 2.0);
}

TEST(SolveTest, SolvesWithPivoting) {
  // Zero on the initial pivot position forces a row swap.
  Matrix a(2, 2, {0, 1, 1, 0});
  auto x = SolveLinearSystem(a, {3.0, 5.0});
  ASSERT_TRUE(x.ok());
  EXPECT_DOUBLE_EQ((*x)[0], 5.0);
  EXPECT_DOUBLE_EQ((*x)[1], 3.0);
}

TEST(SolveTest, RandomSystemResidual) {
  Rng rng(11);
  const std::size_t n = 12;
  Matrix a = RandomMatrix(n, n, &rng);
  std::vector<double> b(n);
  for (double& v : b) v = rng.Gaussian();
  auto x = SolveLinearSystem(a, b);
  ASSERT_TRUE(x.ok());
  std::vector<double> ax = MatVec(a, *x);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(ax[i], b[i], 1e-9);
}

TEST(SolveTest, SingularSystemFails) {
  Matrix a(2, 2, {1, 1, 1, 1});
  auto x = SolveLinearSystem(a, {1.0, 2.0});
  EXPECT_FALSE(x.ok());
  EXPECT_EQ(x.status().code(), StatusCode::kInternal);
}

TEST(SolveTest, ShapeMismatchFails) {
  Matrix a(2, 3);
  EXPECT_FALSE(SolveLinearSystem(a, {1.0, 2.0}).ok());
  Matrix b(2, 2);
  EXPECT_FALSE(SolveLinearSystem(b, {1.0}).ok());
}

// ------------------------------------------------------------------ Eigen

TEST(EigenTest, DiagonalMatrix) {
  Matrix a(3, 3);
  a(0, 0) = 1.0;
  a(1, 1) = 5.0;
  a(2, 2) = 3.0;
  auto eig = SymmetricEigen(a);
  ASSERT_TRUE(eig.ok());
  EXPECT_NEAR(eig->eigenvalues[0], 5.0, 1e-12);
  EXPECT_NEAR(eig->eigenvalues[1], 3.0, 1e-12);
  EXPECT_NEAR(eig->eigenvalues[2], 1.0, 1e-12);
  // Leading eigenvector should be +- e_1.
  EXPECT_NEAR(std::fabs(eig->eigenvectors(1, 0)), 1.0, 1e-12);
}

TEST(EigenTest, KnownTwoByTwo) {
  // [[2, 1], [1, 2]] has eigenvalues 3 and 1.
  Matrix a(2, 2, {2, 1, 1, 2});
  auto eig = SymmetricEigen(a);
  ASSERT_TRUE(eig.ok());
  EXPECT_NEAR(eig->eigenvalues[0], 3.0, 1e-12);
  EXPECT_NEAR(eig->eigenvalues[1], 1.0, 1e-12);
}

TEST(EigenTest, ReconstructsRandomSymmetric) {
  Rng rng(21);
  for (std::size_t n : {2u, 5u, 16u}) {
    Matrix a = RandomSymmetric(n, &rng);
    auto eig = SymmetricEigen(a);
    ASSERT_TRUE(eig.ok());
    // A == V diag(w) V^T.
    Matrix vw = eig->eigenvectors;
    for (std::size_t j = 0; j < n; ++j) {
      for (std::size_t i = 0; i < n; ++i) vw(i, j) *= eig->eigenvalues[j];
    }
    Matrix reconstructed = MultiplyTransB(vw, eig->eigenvectors);
    EXPECT_LT(Matrix::MaxAbsDiff(a, reconstructed), 1e-9) << "n=" << n;
    // Eigenvalues sorted decreasing.
    for (std::size_t j = 1; j < n; ++j) {
      EXPECT_GE(eig->eigenvalues[j - 1], eig->eigenvalues[j] - 1e-12);
    }
    // Eigenvectors orthonormal.
    Matrix vtv = MultiplyTransA(eig->eigenvectors, eig->eigenvectors);
    EXPECT_LT(Matrix::MaxAbsDiff(vtv, Matrix::Identity(n)), 1e-9);
  }
}

TEST(EigenTest, RejectsNonSquare) {
  EXPECT_FALSE(SymmetricEigen(Matrix(2, 3)).ok());
}

TEST(EigenTest, RejectsNonSymmetric) {
  Matrix a(2, 2, {1, 2, 3, 4});
  EXPECT_FALSE(SymmetricEigen(a).ok());
}

TEST(EigenTest, OneByOneAndEmptyBehave) {
  Matrix a(1, 1, {7.0});
  auto eig = SymmetricEigen(a);
  ASSERT_TRUE(eig.ok());
  EXPECT_EQ(eig->eigenvalues[0], 7.0);
  EXPECT_EQ(eig->eigenvectors(0, 0), 1.0);
}

TEST(EigenTest, LeadingEigenvectorsClampRank) {
  Rng rng(2);
  Matrix g = RandomSymmetric(4, &rng);
  auto lead = LeadingEigenvectors(g, 10);
  ASSERT_TRUE(lead.ok());
  EXPECT_EQ(lead->cols(), 4u);
  auto lead2 = LeadingEigenvectors(g, 2);
  ASSERT_TRUE(lead2.ok());
  EXPECT_EQ(lead2->cols(), 2u);
}

// --------------------------------------------------------------------- QR

TEST(QrTest, ReconstructsInput) {
  Rng rng(31);
  for (auto [m, n] : std::vector<std::pair<std::size_t, std::size_t>>{
           {4, 4}, {8, 3}, {20, 7}}) {
    Matrix a = RandomMatrix(m, n, &rng);
    auto qr = HouseholderQr(a);
    ASSERT_TRUE(qr.ok());
    Matrix reconstructed = Multiply(qr->q, qr->r);
    EXPECT_LT(Matrix::MaxAbsDiff(a, reconstructed), 1e-10);
    // Q columns orthonormal.
    Matrix qtq = MultiplyTransA(qr->q, qr->q);
    EXPECT_LT(Matrix::MaxAbsDiff(qtq, Matrix::Identity(n)), 1e-10);
    // R upper triangular.
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < i; ++j) EXPECT_EQ(qr->r(i, j), 0.0);
    }
  }
}

TEST(QrTest, RejectsWideMatrix) {
  EXPECT_FALSE(HouseholderQr(Matrix(2, 5)).ok());
}

TEST(QrTest, OrthonormalizeColumns) {
  Rng rng(8);
  Matrix a = RandomMatrix(10, 4, &rng);
  auto q = OrthonormalizeColumns(a);
  ASSERT_TRUE(q.ok());
  Matrix qtq = MultiplyTransA(*q, *q);
  EXPECT_LT(Matrix::MaxAbsDiff(qtq, Matrix::Identity(4)), 1e-10);
}

// -------------------------------------------------------------------- SVD

TEST(SvdTest, RankOneMatrix) {
  // A = u v^T with |u| = 5, |v| = sqrt(2): sigma_1 = 5 sqrt(2).
  Matrix a(2, 2, {3, 3, 4, 4});
  auto svd = TruncatedSvd(a, 2);
  ASSERT_TRUE(svd.ok());
  EXPECT_NEAR(svd->singular_values[0], 5.0 * std::sqrt(2.0), 1e-9);
  EXPECT_NEAR(svd->singular_values[1], 0.0, 1e-9);
}

TEST(SvdTest, ReconstructsFullRank) {
  Rng rng(77);
  for (auto [m, n] : std::vector<std::pair<std::size_t, std::size_t>>{
           {5, 9}, {9, 5}, {6, 6}}) {
    Matrix a = RandomMatrix(m, n, &rng);
    const std::size_t k = std::min(m, n);
    auto svd = TruncatedSvd(a, k);
    ASSERT_TRUE(svd.ok());
    // A == U diag(s) V^T.
    Matrix us = svd->u;
    for (std::size_t j = 0; j < k; ++j) {
      for (std::size_t i = 0; i < m; ++i) us(i, j) *= svd->singular_values[j];
    }
    Matrix reconstructed = MultiplyTransB(us, svd->v);
    EXPECT_LT(Matrix::MaxAbsDiff(a, reconstructed), 1e-8)
        << m << "x" << n;
  }
}

TEST(SvdTest, TruncationGivesBestRankKApproximation) {
  Rng rng(13);
  Matrix a = RandomMatrix(8, 8, &rng);
  auto svd_full = TruncatedSvd(a, 8);
  ASSERT_TRUE(svd_full.ok());
  auto svd2 = TruncatedSvd(a, 2);
  ASSERT_TRUE(svd2.ok());
  Matrix us = svd2->u;
  for (std::size_t j = 0; j < 2; ++j) {
    for (std::size_t i = 0; i < 8; ++i) us(i, j) *= svd2->singular_values[j];
  }
  Matrix approx = MultiplyTransB(us, svd2->v);
  // Eckart-Young: squared error equals the sum of discarded sigma^2.
  double err_sq = 0.0;
  for (std::size_t i = 0; i < 8; ++i) {
    for (std::size_t j = 0; j < 8; ++j) {
      const double d = a(i, j) - approx(i, j);
      err_sq += d * d;
    }
  }
  double expected = 0.0;
  for (std::size_t j = 2; j < 8; ++j) {
    expected += svd_full->singular_values[j] * svd_full->singular_values[j];
  }
  EXPECT_NEAR(err_sq, expected, 1e-6 * std::max(1.0, expected));
}

TEST(SvdTest, LeftSingularVectorsFromGramMatchDirect) {
  Rng rng(5);
  Matrix a = RandomMatrix(6, 40, &rng);
  Matrix gram = MultiplyTransB(a, a);
  auto from_gram = LeftSingularVectorsFromGram(gram, 3);
  auto direct = TruncatedSvd(a, 3);
  ASSERT_TRUE(from_gram.ok());
  ASSERT_TRUE(direct.ok());
  // Compare up to per-column sign.
  for (std::size_t j = 0; j < 3; ++j) {
    double dot = 0.0;
    for (std::size_t i = 0; i < 6; ++i) {
      dot += (*from_gram)(i, j) * direct->u(i, j);
    }
    EXPECT_NEAR(std::fabs(dot), 1.0, 1e-8) << "column " << j;
  }
}

TEST(SvdTest, SingularValuesFromGram) {
  Matrix a(2, 2, {3, 0, 0, 4});
  Matrix gram = MultiplyTransB(a, a);
  auto sv = SingularValuesFromGram(gram, 2);
  ASSERT_TRUE(sv.ok());
  EXPECT_NEAR((*sv)[0], 4.0, 1e-12);
  EXPECT_NEAR((*sv)[1], 3.0, 1e-12);
}

TEST(SvdTest, EmptyMatrixRejected) {
  EXPECT_FALSE(TruncatedSvd(Matrix(), 1).ok());
}

}  // namespace
}  // namespace m2td::linalg
