// Tests for the randomized sketched factor path (linalg/rsvd.h): seed
// determinism across thread counts, oversampling monotonicity, exact
// fallback, and randomized-vs-deterministic epsilon equivalence on the
// paper's three dynamical systems — plus the init-wall-time win the
// sketch exists to deliver.

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "ensemble/sampling.h"
#include "ensemble/simulation_model.h"
#include "linalg/eigen.h"
#include "linalg/matrix.h"
#include "linalg/rsvd.h"
#include "linalg/svd.h"
#include "parallel/thread_pool.h"
#include "tensor/hooi.h"
#include "tensor/tucker.h"
#include "util/random.h"
#include "util/timer.h"

namespace m2td::linalg {
namespace {

// Symmetric PSD n x n with geometrically decaying spectrum: A = B D B^T
// for a random orthonormal-ish B — the shape Gram matrices of smooth
// simulation ensembles actually have, where sketching shines.
Matrix DecayingPsd(std::size_t n, double decay, std::uint64_t seed) {
  Rng rng(seed);
  Matrix b(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) b(i, j) = rng.Gaussian();
  }
  // Scale column j by decay^j, then form A = B B^T (PSD by construction).
  double scale = 1.0;
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = 0; i < n; ++i) b(i, j) *= scale;
    scale *= decay;
  }
  return MultiplyTransB(b, b);
}

// Rayleigh-quotient energy trace(U^T A U): how much of A's action the
// subspace spanned by U's columns captures. Monotone in subspace quality.
double CapturedEnergy(const Matrix& a, const Matrix& u) {
  const Matrix au = Multiply(a, u);
  const Matrix proj = MultiplyTransA(u, au);
  double trace = 0.0;
  for (std::size_t i = 0; i < proj.rows(); ++i) trace += proj(i, i);
  return trace;
}

TEST(RandomizedRangeFactorTest, RejectsBadInputs) {
  Matrix empty(0, 0);
  EXPECT_FALSE(RandomizedRangeFactor(empty, 2).ok());
  Matrix rect(4, 3);
  EXPECT_FALSE(RandomizedRangeFactor(rect, 2).ok());
  Matrix square = Matrix::Identity(4);
  EXPECT_FALSE(RandomizedRangeFactor(square, 0).ok());
}

TEST(RandomizedRangeFactorTest, ColumnsAreOrthonormal) {
  const Matrix a = DecayingPsd(64, 0.7, 5);
  RandomizedSvdOptions options;
  options.oversampling = 8;
  auto u = RandomizedRangeFactor(a, 5, options);
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(u->rows(), 64u);
  EXPECT_EQ(u->cols(), 5u);
  const Matrix gram = MultiplyTransA(*u, *u);
  EXPECT_LT(Matrix::MaxAbsDiff(gram, Matrix::Identity(5)), 1e-9);
}

TEST(RandomizedRangeFactorTest, BitIdenticalAcrossThreadCounts) {
  const Matrix a = DecayingPsd(96, 0.8, 11);
  RandomizedSvdOptions options;
  options.seed = 17;
  parallel::SetGlobalThreads(1);
  auto u1 = RandomizedRangeFactor(a, 6, options);
  parallel::SetGlobalThreads(4);
  auto u4 = RandomizedRangeFactor(a, 6, options);
  parallel::SetGlobalThreads(1);
  ASSERT_TRUE(u1.ok() && u4.ok());
  EXPECT_EQ(Matrix::MaxAbsDiff(*u1, *u4), 0.0);
}

TEST(RandomizedRangeFactorTest, SameSeedSameResultDifferentSeedDiffers) {
  const Matrix a = DecayingPsd(64, 0.8, 3);
  RandomizedSvdOptions options;
  options.seed = 9;
  auto u_a = RandomizedRangeFactor(a, 4, options);
  auto u_b = RandomizedRangeFactor(a, 4, options);
  ASSERT_TRUE(u_a.ok() && u_b.ok());
  EXPECT_EQ(Matrix::MaxAbsDiff(*u_a, *u_b), 0.0);
  options.seed = 10;
  auto u_c = RandomizedRangeFactor(a, 4, options);
  ASSERT_TRUE(u_c.ok());
  EXPECT_GT(Matrix::MaxAbsDiff(*u_a, *u_c), 0.0);
}

TEST(RandomizedRangeFactorTest, OversamplingImprovesCapturedEnergy) {
  // With a slowly decaying spectrum and no power iterations the sketch
  // quality is limited, so extra oversampling must help (and the captured
  // energy approaches the exact top-k energy from below).
  const Matrix a = DecayingPsd(64, 0.95, 7);
  const std::size_t rank = 4;
  auto exact = LeadingEigenvectors(a, rank);
  ASSERT_TRUE(exact.ok());
  const double exact_energy = CapturedEnergy(a, *exact);

  double previous = 0.0;
  for (std::size_t oversampling : {std::size_t{0}, std::size_t{8},
                                   std::size_t{32}}) {
    RandomizedSvdOptions options;
    options.oversampling = oversampling;
    options.power_iterations = 0;
    auto u = RandomizedRangeFactor(a, rank, options);
    ASSERT_TRUE(u.ok());
    const double energy = CapturedEnergy(a, *u);
    EXPECT_LE(energy, exact_energy + 1e-9);
    EXPECT_GE(energy, previous - 1e-9)
        << "oversampling " << oversampling << " lost captured energy";
    previous = energy;
  }
  // At sketch 36 of 64 with this spectrum the subspace is near-exact.
  EXPECT_GT(previous, 0.9 * exact_energy);
}

TEST(RandomizedRangeFactorTest, PowerIterationsSharpenTheSketch) {
  const Matrix a = DecayingPsd(64, 0.95, 13);
  const std::size_t rank = 4;
  double previous = 0.0;
  for (int iters : {0, 2}) {
    RandomizedSvdOptions options;
    options.oversampling = 2;
    options.power_iterations = iters;
    auto u = RandomizedRangeFactor(a, rank, options);
    ASSERT_TRUE(u.ok());
    const double energy = CapturedEnergy(a, *u);
    EXPECT_GE(energy, previous - 1e-9);
    previous = energy;
  }
}

TEST(RandomizedRangeFactorTest, ExactFallbackMatchesDeterministic) {
  // Sketch (rank + oversampling) >= n: the call must degrade to the exact
  // eigensolve, bit for bit.
  const Matrix a = DecayingPsd(12, 0.6, 19);
  RandomizedSvdOptions options;
  options.oversampling = 8;  // 5 + 8 > 12
  auto randomized = RandomizedRangeFactor(a, 5, options);
  auto exact = LeadingEigenvectors(a, 5);
  ASSERT_TRUE(randomized.ok() && exact.ok());
  EXPECT_EQ(Matrix::MaxAbsDiff(*randomized, *exact), 0.0);
}

TEST(GramFactorTest, DeterministicDispatchIsBitExactOracle) {
  const Matrix a = DecayingPsd(32, 0.7, 23);
  GramFactorOptions options;  // default: kDeterministic
  auto via_dispatch = GramFactor(a, 4, options);
  auto direct = LeftSingularVectorsFromGram(a, 4);
  ASSERT_TRUE(via_dispatch.ok() && direct.ok());
  EXPECT_EQ(Matrix::MaxAbsDiff(*via_dispatch, *direct), 0.0);
}

TEST(GramFactorTest, ForModeDecorrelatesSeedsDeterministically) {
  GramFactorOptions options;
  options.sketch.seed = 42;
  const std::uint64_t m0 = options.ForMode(0).sketch.seed;
  const std::uint64_t m1 = options.ForMode(1).sketch.seed;
  EXPECT_NE(m0, m1);
  EXPECT_NE(m0, options.sketch.seed);
  EXPECT_EQ(m0, options.ForMode(0).sketch.seed);  // pure function
  // Other fields pass through untouched.
  options.method = GramFactorMethod::kRandomized;
  options.sketch.oversampling = 3;
  GramFactorOptions derived = options.ForMode(2);
  EXPECT_EQ(derived.method, GramFactorMethod::kRandomized);
  EXPECT_EQ(derived.sketch.oversampling, 3u);
}

TEST(GramFactorTest, RandomizedSubspaceNearExactOnDecayingSpectrum) {
  const Matrix a = DecayingPsd(96, 0.8, 29);
  const std::size_t rank = 5;
  GramFactorOptions options;
  options.method = GramFactorMethod::kRandomized;
  auto u = GramFactor(a, rank, options);
  auto exact = LeadingEigenvectors(a, rank);
  ASSERT_TRUE(u.ok() && exact.ok());
  const double exact_energy = CapturedEnergy(a, *exact);
  const double sketched_energy = CapturedEnergy(a, *u);
  EXPECT_GT(sketched_energy, 0.999 * exact_energy);
}

// The reason the path exists: on a Gram large enough to sketch, the
// randomized factor must beat the full Jacobi eigensolve. Best-of-three
// wall times absorb scheduler noise; the margin demanded (merely "faster",
// not a ratio) keeps the test robust on loaded machines while still
// catching a pessimized sketch path.
TEST(GramFactorTest, SketchedInitBeatsDeterministicWallTime) {
  const Matrix a = DecayingPsd(192, 0.9, 31);
  const std::size_t rank = 8;
  RandomizedSvdOptions options;
  options.oversampling = 8;

  double det_best = 1e30;
  double rand_best = 1e30;
  for (int round = 0; round < 3; ++round) {
    Timer det_timer;
    auto exact = LeadingEigenvectors(a, rank);
    det_best = std::min(det_best, det_timer.ElapsedSeconds());
    ASSERT_TRUE(exact.ok());
    Timer rand_timer;
    auto sketched = RandomizedRangeFactor(a, rank, options);
    rand_best = std::min(rand_best, rand_timer.ElapsedSeconds());
    ASSERT_TRUE(sketched.ok());
  }
  EXPECT_LT(rand_best, det_best)
      << "sketched " << rand_best * 1e3 << " ms vs deterministic "
      << det_best * 1e3 << " ms";
}

// ---------------------------------------------------------- paper systems

struct PaperSystem {
  const char* name;
  Result<std::unique_ptr<ensemble::DynamicalSystemModel>> (*make)(
      const ensemble::ModelOptions&);
};

const PaperSystem kPaperSystems[] = {
    {"double_pendulum", &ensemble::MakeDoublePendulumModel},
    {"triple_pendulum", &ensemble::MakeTriplePendulumModel},
    {"lorenz", &ensemble::MakeLorenzModel},
};

tensor::SparseTensor BuildEnsemble(ensemble::DynamicalSystemModel* model) {
  Rng rng(7);
  auto x = ensemble::BuildConventionalEnsemble(
      model, ensemble::ConventionalScheme::kRandom, /*budget=*/60, &rng);
  EXPECT_TRUE(x.ok());
  return std::move(x).ValueOrDie();
}

double Fit(const tensor::TuckerDecomposition& tucker,
           const tensor::DenseTensor& dense) {
  auto reconstructed = tensor::Reconstruct(tucker);
  EXPECT_TRUE(reconstructed.ok());
  return tensor::ReconstructionAccuracy(*reconstructed, dense);
}

// Randomized HOSVD must land within epsilon of the deterministic fit on
// all three paper systems — the accuracy half of the tentpole's gate (the
// bench-smoke key randomized_hosvd_fit_gap enforces the same bound on the
// committed baseline).
TEST(RandomizedHosvdTest, FitWithinEpsilonOfDeterministicOnPaperSystems) {
  for (const PaperSystem& system : kPaperSystems) {
    ensemble::ModelOptions model_options;
    model_options.parameter_resolution = 10;
    model_options.time_resolution = 10;
    auto model = system.make(model_options);
    ASSERT_TRUE(model.ok()) << system.name;
    tensor::SparseTensor x = BuildEnsemble(model->get());
    const tensor::DenseTensor dense = x.ToDense();
    const std::vector<std::uint64_t> ranks(x.num_modes(), 4);

    auto deterministic = tensor::HosvdSparse(x, ranks);
    ASSERT_TRUE(deterministic.ok()) << system.name;

    tensor::HosvdOptions options;
    options.factor.method = GramFactorMethod::kRandomized;
    options.factor.sketch.oversampling = 4;  // sketch 8 < dim 10: real path
    auto randomized = tensor::HosvdSparse(x, ranks, options);
    ASSERT_TRUE(randomized.ok()) << system.name;

    const double det_fit = Fit(*deterministic, dense);
    const double rand_fit = Fit(*randomized, dense);
    EXPECT_NEAR(rand_fit, det_fit, 0.02)
        << system.name << ": deterministic " << det_fit << " vs randomized "
        << rand_fit;
  }
}

TEST(RandomizedHosvdTest, RandomizedInitBitIdenticalAcrossThreadCounts) {
  ensemble::ModelOptions model_options;
  model_options.parameter_resolution = 10;
  model_options.time_resolution = 10;
  auto model = ensemble::MakeLorenzModel(model_options);
  ASSERT_TRUE(model.ok());
  tensor::SparseTensor x = BuildEnsemble(model->get());
  const std::vector<std::uint64_t> ranks(x.num_modes(), 4);
  tensor::HosvdOptions options;
  options.factor.method = GramFactorMethod::kRandomized;
  options.factor.sketch.oversampling = 4;

  parallel::SetGlobalThreads(1);
  auto t1 = tensor::HosvdSparse(x, ranks, options);
  parallel::SetGlobalThreads(3);
  auto t3 = tensor::HosvdSparse(x, ranks, options);
  parallel::SetGlobalThreads(1);
  ASSERT_TRUE(t1.ok() && t3.ok());
  ASSERT_EQ(t1->factors.size(), t3->factors.size());
  for (std::size_t m = 0; m < t1->factors.size(); ++m) {
    EXPECT_EQ(Matrix::MaxAbsDiff(t1->factors[m], t3->factors[m]), 0.0)
        << "mode " << m;
  }
  EXPECT_EQ(tensor::DenseTensor::FrobeniusDistance(t1->core, t3->core), 0.0);
}

// The deterministic path must be bit-identical to the pre-knob behavior:
// the 2-arg overload and explicit default options agree exactly.
TEST(RandomizedHosvdTest, DefaultOptionsPreserveDeterministicPath) {
  ensemble::ModelOptions model_options;
  model_options.parameter_resolution = 8;
  model_options.time_resolution = 8;
  auto model = ensemble::MakeDoublePendulumModel(model_options);
  ASSERT_TRUE(model.ok());
  tensor::SparseTensor x = BuildEnsemble(model->get());
  const std::vector<std::uint64_t> ranks(x.num_modes(), 3);
  auto implicit = tensor::HosvdSparse(x, ranks);
  auto explicit_default = tensor::HosvdSparse(x, ranks, tensor::HosvdOptions{});
  ASSERT_TRUE(implicit.ok() && explicit_default.ok());
  for (std::size_t m = 0; m < implicit->factors.size(); ++m) {
    EXPECT_EQ(Matrix::MaxAbsDiff(implicit->factors[m],
                                 explicit_default->factors[m]),
              0.0);
  }
  EXPECT_EQ(tensor::DenseTensor::FrobeniusDistance(implicit->core,
                                                   explicit_default->core),
            0.0);
}

TEST(RandomizedHooiTest, RandomizedInitConvergesWithinEpsilonOfHosvdInit) {
  for (const PaperSystem& system : kPaperSystems) {
    ensemble::ModelOptions model_options;
    model_options.parameter_resolution = 10;
    model_options.time_resolution = 10;
    auto model = system.make(model_options);
    ASSERT_TRUE(model.ok()) << system.name;
    tensor::SparseTensor x = BuildEnsemble(model->get());
    const std::vector<std::uint64_t> ranks(x.num_modes(), 4);

    tensor::HooiOptions deterministic;
    tensor::HooiInfo det_info;
    auto det = tensor::HooiSparse(x, ranks, deterministic, &det_info);
    ASSERT_TRUE(det.ok()) << system.name;

    tensor::HooiOptions randomized;
    randomized.init = tensor::HooiInit::kRandomized;
    randomized.sketch.oversampling = 4;
    tensor::HooiInfo rand_info;
    auto rand = tensor::HooiSparse(x, ranks, randomized, &rand_info);
    ASSERT_TRUE(rand.ok()) << system.name;

    // The ALS sweeps polish away the init difference: the final fits (on
    // the input tensor) must agree within epsilon.
    EXPECT_NEAR(rand_info.fit, det_info.fit, 0.01)
        << system.name << ": deterministic " << det_info.fit
        << " vs randomized " << rand_info.fit;
  }
}

}  // namespace
}  // namespace m2td::linalg
