#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "ensemble/parameter_space.h"
#include "ensemble/sampling.h"
#include "ensemble/simulation_model.h"
#include "util/random.h"

namespace m2td::ensemble {
namespace {

ModelOptions SmallOptions() {
  ModelOptions options;
  options.parameter_resolution = 4;
  options.time_resolution = 3;
  options.dt = 0.01;
  options.record_every = 5;
  return options;
}

// -------------------------------------------------------- ParameterSpace

TEST(ParameterSpaceTest, CreateValidation) {
  EXPECT_FALSE(ParameterSpace::Create({}).ok());
  EXPECT_FALSE(
      ParameterSpace::Create({ParameterDef{"a", 0.0, 1.0, 0}}).ok());
  EXPECT_FALSE(
      ParameterSpace::Create({ParameterDef{"a", 2.0, 1.0, 3}}).ok());
  EXPECT_TRUE(
      ParameterSpace::Create({ParameterDef{"a", 0.0, 1.0, 3}}).ok());
}

TEST(ParameterSpaceTest, ValueGridIsLinear) {
  auto space = ParameterSpace::Create({ParameterDef{"a", 0.0, 2.0, 5}});
  ASSERT_TRUE(space.ok());
  EXPECT_DOUBLE_EQ(space->Value(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(space->Value(0, 2), 1.0);
  EXPECT_DOUBLE_EQ(space->Value(0, 4), 2.0);
}

TEST(ParameterSpaceTest, SingletonResolutionSitsAtMin) {
  auto space = ParameterSpace::Create({ParameterDef{"a", 3.0, 9.0, 1}});
  ASSERT_TRUE(space.ok());
  EXPECT_DOUBLE_EQ(space->Value(0, 0), 3.0);
}

TEST(ParameterSpaceTest, ShapeCellsDefaultsAndLookup) {
  auto space = ParameterSpace::Create({
      ParameterDef{"t", 0.0, 1.0, 3},
      ParameterDef{"x", 0.0, 1.0, 4},
      ParameterDef{"y", 0.0, 1.0, 5},
  });
  ASSERT_TRUE(space.ok());
  EXPECT_EQ(space->Shape(), (std::vector<std::uint64_t>{3, 4, 5}));
  EXPECT_EQ(space->NumCells(), 60u);
  EXPECT_EQ(space->DefaultIndex(1), 2u);
  EXPECT_EQ(*space->ModeByName("y"), 2u);
  EXPECT_FALSE(space->ModeByName("zzz").ok());
}

TEST(ParameterSpaceTest, ValuesVector) {
  auto space = ParameterSpace::Create({
      ParameterDef{"a", 0.0, 1.0, 2},
      ParameterDef{"b", 0.0, 10.0, 3},
  });
  ASSERT_TRUE(space.ok());
  const std::vector<double> values = space->Values({1, 2});
  EXPECT_DOUBLE_EQ(values[0], 1.0);
  EXPECT_DOUBLE_EQ(values[1], 10.0);
}

// ------------------------------------------------------ SimulationModel

TEST(SimulationModelTest, DoublePendulumModelBasics) {
  auto model = MakeDoublePendulumModel(SmallOptions());
  ASSERT_TRUE(model.ok());
  EXPECT_EQ((*model)->space().num_modes(), 5u);
  EXPECT_EQ((*model)->space().def(0).name, "t");
  EXPECT_EQ((*model)->space().Resolution(0), 3u);
  EXPECT_EQ((*model)->space().Resolution(1), 4u);
  EXPECT_EQ((*model)->name(), "double pendulum");
}

TEST(SimulationModelTest, ReferenceCellIsZeroDistance) {
  auto model = MakeDoublePendulumModel(SmallOptions());
  ASSERT_TRUE(model.ok());
  const ParameterSpace& space = (*model)->space();
  std::vector<std::uint32_t> idx(space.num_modes());
  for (std::size_t m = 0; m < space.num_modes(); ++m) {
    idx[m] = space.DefaultIndex(m);
  }
  // The reference simulation compared against itself at any timestamp.
  for (std::uint32_t t = 0; t < space.Resolution(0); ++t) {
    idx[0] = t;
    EXPECT_NEAR((*model)->Cell(idx), 0.0, 1e-12);
  }
}

TEST(SimulationModelTest, NonReferenceCellsArePositive) {
  auto model = MakeDoublePendulumModel(SmallOptions());
  ASSERT_TRUE(model.ok());
  std::vector<std::uint32_t> idx = {2, 0, 0, 0, 0};
  EXPECT_GT((*model)->Cell(idx), 0.0);
}

TEST(SimulationModelTest, TrajectoryCacheCountsSimulations) {
  auto model = MakeDoublePendulumModel(SmallOptions());
  ASSERT_TRUE(model.ok());
  EXPECT_EQ((*model)->SimulationsRun(), 0u);
  std::vector<std::uint32_t> idx = {0, 1, 2, 3, 0};
  (*model)->Cell(idx);
  EXPECT_EQ((*model)->SimulationsRun(), 1u);
  idx[0] = 2;  // same parameters, different timestamp: cached
  (*model)->Cell(idx);
  EXPECT_EQ((*model)->SimulationsRun(), 1u);
  idx[1] = 0;  // different parameters: new simulation
  (*model)->Cell(idx);
  EXPECT_EQ((*model)->SimulationsRun(), 2u);
  (*model)->ClearCache();
  EXPECT_EQ((*model)->SimulationsRun(), 0u);
}

TEST(SimulationModelTest, AllThreeModelsConstructAndEvaluate) {
  for (auto maker :
       {MakeDoublePendulumModel, MakeTriplePendulumModel, MakeLorenzModel}) {
    auto model = maker(SmallOptions());
    ASSERT_TRUE(model.ok());
    std::vector<std::uint32_t> idx = {1, 1, 2, 3, 0};
    const double v = (*model)->Cell(idx);
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_GE(v, 0.0);
  }
}

TEST(SimulationModelTest, BuildFullTensorMatchesCells) {
  auto model = MakeDoublePendulumModel(SmallOptions());
  ASSERT_TRUE(model.ok());
  auto full = BuildFullTensor(model->get());
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full->shape(), (*model)->space().Shape());
  // Spot check a few cells.
  Rng rng(1);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<std::uint32_t> idx((*model)->space().num_modes());
    for (std::size_t m = 0; m < idx.size(); ++m) {
      idx[m] = static_cast<std::uint32_t>(
          rng.UniformInt((*model)->space().Resolution(m)));
    }
    EXPECT_DOUBLE_EQ(full->at(idx), (*model)->Cell(idx));
  }
  EXPECT_FALSE(BuildFullTensor(nullptr).ok());
}

// --------------------------------------------------------------- Sampling

TEST(SamplingTest, SchemeNames) {
  EXPECT_STREQ(ConventionalSchemeName(ConventionalScheme::kRandom), "Random");
  EXPECT_STREQ(ConventionalSchemeName(ConventionalScheme::kGrid), "Grid");
  EXPECT_STREQ(ConventionalSchemeName(ConventionalScheme::kSlice), "Slice");
}

class SamplingSchemeTest
    : public ::testing::TestWithParam<ConventionalScheme> {};

TEST_P(SamplingSchemeTest, SelectsDistinctCombosWithinBudget) {
  auto space = ParameterSpace::Create({
      ParameterDef{"t", 0.0, 1.0, 3},
      ParameterDef{"a", 0.0, 1.0, 5},
      ParameterDef{"b", 0.0, 1.0, 5},
      ParameterDef{"c", 0.0, 1.0, 5},
  });
  ASSERT_TRUE(space.ok());
  Rng rng(7);
  auto combos =
      SelectParameterCombinations(*space, 0, GetParam(), 40, &rng);
  ASSERT_TRUE(combos.ok());
  EXPECT_LE(combos->size(), 40u);
  EXPECT_GE(combos->size(), 10u);  // every scheme should use most budget
  std::set<std::vector<std::uint32_t>> unique(combos->begin(), combos->end());
  EXPECT_EQ(unique.size(), combos->size());
  for (const auto& combo : *combos) {
    ASSERT_EQ(combo.size(), 3u);
    EXPECT_LT(combo[0], 5u);
    EXPECT_LT(combo[1], 5u);
    EXPECT_LT(combo[2], 5u);
  }
}

TEST_P(SamplingSchemeTest, BudgetLargerThanSpaceClamps) {
  auto space = ParameterSpace::Create({
      ParameterDef{"t", 0.0, 1.0, 2},
      ParameterDef{"a", 0.0, 1.0, 3},
      ParameterDef{"b", 0.0, 1.0, 3},
  });
  ASSERT_TRUE(space.ok());
  Rng rng(7);
  auto combos =
      SelectParameterCombinations(*space, 0, GetParam(), 1000, &rng);
  ASSERT_TRUE(combos.ok());
  EXPECT_EQ(combos->size(), 9u);
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, SamplingSchemeTest,
                         ::testing::Values(ConventionalScheme::kRandom,
                                           ConventionalScheme::kGrid,
                                           ConventionalScheme::kSlice,
                                           ConventionalScheme::kLatinHypercube),
                         [](const auto& info) {
                           return ConventionalSchemeName(info.param);
                         });

TEST(SamplingTest, LatinHypercubeCoversEveryValueOncePerMode) {
  // With budget == resolution, LHS must hit every grid value of every
  // parameter exactly once (one stratum per value).
  auto space = ParameterSpace::Create({
      ParameterDef{"t", 0.0, 1.0, 2},
      ParameterDef{"a", 0.0, 1.0, 8},
      ParameterDef{"b", 0.0, 1.0, 8},
      ParameterDef{"c", 0.0, 1.0, 8},
  });
  ASSERT_TRUE(space.ok());
  Rng rng(3);
  auto combos = SelectParameterCombinations(
      *space, 0, ConventionalScheme::kLatinHypercube, 8, &rng);
  ASSERT_TRUE(combos.ok());
  ASSERT_EQ(combos->size(), 8u);
  for (std::size_t m = 0; m < 3; ++m) {
    std::set<std::uint32_t> values;
    for (const auto& combo : *combos) values.insert(combo[m]);
    EXPECT_EQ(values.size(), 8u) << "mode " << m;
  }
}

TEST(SamplingTest, LatinHypercubeDropsDuplicatesWhenOverSampled) {
  // Budget beyond a mode's resolution forces repeats per column; the
  // combination set must still be duplicate-free.
  auto space = ParameterSpace::Create({
      ParameterDef{"t", 0.0, 1.0, 2},
      ParameterDef{"a", 0.0, 1.0, 3},
      ParameterDef{"b", 0.0, 1.0, 3},
  });
  ASSERT_TRUE(space.ok());
  Rng rng(5);
  auto combos = SelectParameterCombinations(
      *space, 0, ConventionalScheme::kLatinHypercube, 9, &rng);
  ASSERT_TRUE(combos.ok());
  std::set<std::vector<std::uint32_t>> unique(combos->begin(), combos->end());
  EXPECT_EQ(unique.size(), combos->size());
  EXPECT_LE(combos->size(), 9u);
}

TEST(SamplingTest, GridIsExactSubGridCrossProduct) {
  auto space = ParameterSpace::Create({
      ParameterDef{"t", 0.0, 1.0, 2},
      ParameterDef{"a", 0.0, 1.0, 9},
      ParameterDef{"b", 0.0, 1.0, 9},
  });
  ASSERT_TRUE(space.ok());
  Rng rng(7);
  auto combos = SelectParameterCombinations(
      *space, 0, ConventionalScheme::kGrid, 9, &rng);
  ASSERT_TRUE(combos.ok());
  EXPECT_EQ(combos->size(), 9u);  // 3 x 3 sub-grid
  std::set<std::uint32_t> a_values, b_values;
  for (const auto& combo : *combos) {
    a_values.insert(combo[0]);
    b_values.insert(combo[1]);
  }
  EXPECT_EQ(a_values.size(), 3u);
  EXPECT_EQ(b_values.size(), 3u);
}

TEST(SamplingTest, SliceCoversWholeSlices) {
  auto space = ParameterSpace::Create({
      ParameterDef{"t", 0.0, 1.0, 2},
      ParameterDef{"a", 0.0, 1.0, 6},
      ParameterDef{"b", 0.0, 1.0, 6},
  });
  ASSERT_TRUE(space.ok());
  Rng rng(7);
  // Budget = exactly one slice (6 combos).
  auto combos = SelectParameterCombinations(
      *space, 0, ConventionalScheme::kSlice, 6, &rng);
  ASSERT_TRUE(combos.ok());
  ASSERT_EQ(combos->size(), 6u);
  // One of the two coordinates must be constant across the slice.
  std::set<std::uint32_t> a_values, b_values;
  for (const auto& combo : *combos) {
    a_values.insert(combo[0]);
    b_values.insert(combo[1]);
  }
  EXPECT_TRUE(a_values.size() == 1 || b_values.size() == 1);
}

TEST(SamplingTest, InputValidation) {
  auto space = ParameterSpace::Create({
      ParameterDef{"t", 0.0, 1.0, 2},
      ParameterDef{"a", 0.0, 1.0, 3},
  });
  ASSERT_TRUE(space.ok());
  Rng rng(7);
  EXPECT_FALSE(SelectParameterCombinations(*space, 9,
                                           ConventionalScheme::kRandom, 5,
                                           &rng)
                   .ok());
  EXPECT_FALSE(SelectParameterCombinations(*space, 0,
                                           ConventionalScheme::kRandom, 0,
                                           &rng)
                   .ok());
  EXPECT_FALSE(SelectParameterCombinations(*space, 0,
                                           ConventionalScheme::kRandom, 5,
                                           nullptr)
                   .ok());
}

TEST(SamplingTest, BuildConventionalEnsembleFillsTimeFibers) {
  auto model = MakeDoublePendulumModel(SmallOptions());
  ASSERT_TRUE(model.ok());
  Rng rng(11);
  auto ensemble = BuildConventionalEnsemble(
      model->get(), ConventionalScheme::kRandom, 10, &rng);
  ASSERT_TRUE(ensemble.ok());
  // 10 simulations x 3 timestamps.
  EXPECT_EQ(ensemble->NumNonZeros(), 30u);
  EXPECT_EQ(ensemble->shape(), (*model)->space().Shape());
  EXPECT_TRUE(ensemble->IsSorted());
  EXPECT_EQ((*model)->SimulationsRun(), 10u);
}

TEST(SamplingTest, EnsembleIsDeterministicForSeed) {
  auto model1 = MakeDoublePendulumModel(SmallOptions());
  auto model2 = MakeDoublePendulumModel(SmallOptions());
  ASSERT_TRUE(model1.ok() && model2.ok());
  Rng rng1(13), rng2(13);
  auto e1 = BuildConventionalEnsemble(model1->get(),
                                      ConventionalScheme::kRandom, 8, &rng1);
  auto e2 = BuildConventionalEnsemble(model2->get(),
                                      ConventionalScheme::kRandom, 8, &rng2);
  ASSERT_TRUE(e1.ok() && e2.ok());
  ASSERT_EQ(e1->NumNonZeros(), e2->NumNonZeros());
  for (std::uint64_t e = 0; e < e1->NumNonZeros(); ++e) {
    EXPECT_EQ(e1->Value(e), e2->Value(e));
  }
}

}  // namespace
}  // namespace m2td::ensemble
