#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "ensemble/simulation_model.h"
#include "sim/ode.h"
#include "sim/seir.h"

namespace m2td::sim {
namespace {

Rk4Options EpidemicOptions() {
  Rk4Options options;
  options.dt = 0.25;
  options.num_steps = 400;  // 100 days
  options.record_every = 40;
  return options;
}

TEST(SeirTest, CreateValidation) {
  EXPECT_FALSE(SeirSystem::Create(0.0, 0.2, 0.1).ok());
  EXPECT_FALSE(SeirSystem::Create(0.3, -0.2, 0.1).ok());
  EXPECT_FALSE(SeirSystem::Create(0.3, 0.2, 0.0).ok());
  EXPECT_TRUE(SeirSystem::Create(0.3, 0.2, 0.1).ok());
  EXPECT_FALSE(SeirSystem::InitialState(0.0).ok());
  EXPECT_FALSE(SeirSystem::InitialState(1.0).ok());
  EXPECT_TRUE(SeirSystem::InitialState(0.01).ok());
}

TEST(SeirTest, R0) {
  auto seir = SeirSystem::Create(0.4, 0.2, 0.1);
  ASSERT_TRUE(seir.ok());
  EXPECT_DOUBLE_EQ(seir->R0(), 4.0);
}

TEST(SeirTest, PopulationConserved) {
  auto seir = SeirSystem::Create(0.4, 0.25, 0.1);
  ASSERT_TRUE(seir.ok());
  auto initial = SeirSystem::InitialState(0.01);
  ASSERT_TRUE(initial.ok());

  // Integrate with a full-state wrapper so all compartments are recorded.
  class FullState : public OdeSystem {
   public:
    explicit FullState(const SeirSystem* s) : s_(s) {}
    std::size_t StateSize() const override { return 4; }
    void Derivative(double t, const std::vector<double>& x,
                    std::vector<double>* d) const override {
      s_->Derivative(t, x, d);
    }
   private:
    const SeirSystem* s_;
  };
  FullState wrapper(&*seir);
  auto trajectory = IntegrateRk4(wrapper, *initial, EpidemicOptions());
  ASSERT_TRUE(trajectory.ok());
  for (const auto& state : trajectory->observables) {
    const double total = state[0] + state[1] + state[2] + state[3];
    EXPECT_NEAR(total, 1.0, 1e-9);
    for (double compartment : state) {
      EXPECT_GE(compartment, -1e-12);
      EXPECT_LE(compartment, 1.0 + 1e-12);
    }
  }
}

TEST(SeirTest, SupercriticalOutbreakGrowsThenRecedes) {
  // R0 = 4: infections must rise above i0 and eventually fall again.
  auto seir = SeirSystem::Create(0.4, 0.25, 0.1);
  ASSERT_TRUE(seir.ok());
  auto initial = SeirSystem::InitialState(0.005);
  ASSERT_TRUE(initial.ok());
  Rk4Options options;
  options.dt = 0.25;
  options.num_steps = 1200;  // 300 days
  options.record_every = 40;
  auto trajectory = IntegrateRk4(*seir, *initial, options);
  ASSERT_TRUE(trajectory.ok());
  // Observable is (E, I); track I.
  double peak = 0.0;
  std::size_t peak_at = 0;
  for (std::size_t s = 0; s < trajectory->NumSamples(); ++s) {
    if (trajectory->observables[s][1] > peak) {
      peak = trajectory->observables[s][1];
      peak_at = s;
    }
  }
  EXPECT_GT(peak, 0.05);                   // meaningful outbreak
  EXPECT_GT(peak_at, 0u);                  // not at the start
  EXPECT_LT(peak_at, trajectory->NumSamples() - 1);  // recedes by the end
  EXPECT_LT(trajectory->observables.back()[1], peak / 2.0);
}

TEST(SeirTest, SubcriticalEpidemicDiesOut) {
  // R0 < 1: the infected fraction must decay monotonically (after the
  // incubation transient).
  auto seir = SeirSystem::Create(0.08, 0.25, 0.1);
  ASSERT_TRUE(seir.ok());
  auto initial = SeirSystem::InitialState(0.02);
  ASSERT_TRUE(initial.ok());
  auto trajectory = IntegrateRk4(*seir, *initial, EpidemicOptions());
  ASSERT_TRUE(trajectory.ok());
  EXPECT_LT(trajectory->observables.back()[1],
            trajectory->observables.front()[1] / 2.0);
}

TEST(SeirTest, HigherBetaMeansBiggerPeak) {
  double previous_peak = -1.0;
  for (double beta : {0.2, 0.35, 0.5}) {
    auto seir = SeirSystem::Create(beta, 0.25, 0.1);
    ASSERT_TRUE(seir.ok());
    auto initial = SeirSystem::InitialState(0.01);
    ASSERT_TRUE(initial.ok());
    // Record densely so the true peak is not missed between samples.
    Rk4Options options;
    options.dt = 0.25;
    options.num_steps = 1600;
    options.record_every = 8;
    auto trajectory = IntegrateRk4(*seir, *initial, options);
    ASSERT_TRUE(trajectory.ok());
    double peak = 0.0;
    for (const auto& obs : trajectory->observables) {
      peak = std::max(peak, obs[1]);
    }
    EXPECT_GT(peak, previous_peak) << "beta " << beta;
    previous_peak = peak;
  }
}

TEST(SeirModelTest, EnsembleModelBuildsAndEvaluates) {
  ensemble::ModelOptions options;
  options.parameter_resolution = 4;
  options.time_resolution = 4;
  auto model = ensemble::MakeSeirModel(options);
  ASSERT_TRUE(model.ok()) << model.status();
  EXPECT_EQ((*model)->space().num_modes(), 5u);
  EXPECT_EQ((*model)->space().def(1).name, "beta");
  // Reference cell distance is zero; off-reference positive.
  std::vector<std::uint32_t> idx(5);
  for (std::size_t m = 0; m < 5; ++m) {
    idx[m] = (*model)->space().DefaultIndex(m);
  }
  EXPECT_NEAR((*model)->Cell(idx), 0.0, 1e-12);
  idx[1] = 0;
  idx[4] = 3;
  const double v = (*model)->Cell(idx);
  EXPECT_GT(v, 0.0);
  EXPECT_TRUE(std::isfinite(v));
}

}  // namespace
}  // namespace m2td::sim
