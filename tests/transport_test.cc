// Transport-layer tests (ctest -L distributed) of the frame connection
// abstraction in mapreduce/transport.h: frame roundtrips over a
// socketpair, deadline expiry surfacing as kDeadlineExceeded instead of
// a hang, injected truncation/corruption surfacing as kDataLoss with a
// "[conn <peer>]" culprit tag, drop-then-redial bit-identity through a
// real TCP listener, and the netfault spec grammar.

#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "mapreduce/transport.h"
#include "mapreduce/wire.h"
#include "robust/cancel.h"
#include "robust/netfault.h"
#include "robust/retry.h"
#include "util/status.h"

namespace m2td::mapreduce::transport {
namespace {

std::pair<Connection, Connection> MakeSocketPair() {
  int fds[2] = {-1, -1};
  EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  return {Connection::FromSocket(fds[0], "left"),
          Connection::FromSocket(fds[1], "right")};
}

class TransportTest : public ::testing::Test {
 protected:
  void TearDown() override { robust::DisarmAllNetFaults(); }
};

TEST_F(TransportTest, FrameRoundtripOverSocketpair) {
  auto [a, b] = MakeSocketPair();
  const std::string payload("task p1map 0 0\0binary\x01\xff tail", 28);
  ASSERT_TRUE(a.WriteFrame(payload).ok());
  ASSERT_TRUE(a.WriteFrame("hb 3").ok());
  auto first = b.ReadFrame(1000.0);
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_EQ(*first, payload);
  auto second = b.ReadFrame(1000.0);
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_EQ(*second, "hb 3");
}

TEST_F(TransportTest, PollFramesDrainsWithoutBlocking) {
  auto [a, b] = MakeSocketPair();
  ASSERT_TRUE(b.SetNonBlockingRead().ok());
  ASSERT_TRUE(a.WriteFrame("one").ok());
  ASSERT_TRUE(a.WriteFrame("two").ok());
  std::vector<std::string> frames;
  auto open = b.PollFrames(&frames);
  ASSERT_TRUE(open.ok()) << open.status();
  EXPECT_TRUE(*open);
  EXPECT_EQ(frames, (std::vector<std::string>{"one", "two"}));
  // Nothing pending: still open, nothing appended, no blocking.
  frames.clear();
  open = b.PollFrames(&frames);
  ASSERT_TRUE(open.ok());
  EXPECT_TRUE(*open);
  EXPECT_TRUE(frames.empty());
  // Peer closed: drains to "closed", not an error.
  a.Close();
  open = b.PollFrames(&frames);
  ASSERT_TRUE(open.ok()) << open.status();
  EXPECT_FALSE(*open);
}

TEST_F(TransportTest, ReadDeadlineExpiresInsteadOfHanging) {
  auto [a, b] = MakeSocketPair();
  (void)a;
  const auto start = std::chrono::steady_clock::now();
  auto frame = b.ReadFrame(/*deadline_ms=*/120.0);
  const double waited_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kDeadlineExceeded)
      << frame.status();
  EXPECT_GE(waited_ms, 100.0);
  EXPECT_LT(waited_ms, 5000.0);
}

TEST_F(TransportTest, CancelTokenCutsBlockedReadShort) {
  auto [a, b] = MakeSocketPair();
  (void)a;
  robust::CancelSource source;
  std::thread canceller([&source] {
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    source.Cancel();
  });
  robust::CancelScope scope(source.token());
  auto frame = b.ReadFrame(/*deadline_ms=*/10000.0);
  canceller.join();
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kCancelled) << frame.status();
}

TEST_F(TransportTest, InjectedTruncationIsDataLossNamingTheConnection) {
  auto [a, b] = MakeSocketPair();
  ASSERT_TRUE(
      robust::ArmNetFaultsFromString("truncate:times=1,at=2").ok());
  // The writer observes the tear as a torn-connection IOError...
  const Status torn = a.WriteFrame("task p2map 1 0");
  ASSERT_FALSE(torn.ok());
  EXPECT_EQ(torn.code(), StatusCode::kIOError) << torn;
  // ...and the reader sees 2 stray header bytes then EOF: DataLoss with
  // the connection named as the culprit.
  auto frame = b.ReadFrame(1000.0);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kDataLoss) << frame.status();
  EXPECT_NE(frame.status().message().find("[conn right]"),
            std::string::npos)
      << frame.status();
  EXPECT_EQ(robust::NetFaultInjections(robust::NetFaultAction::kTruncate),
            1u);
}

TEST_F(TransportTest, InjectedCorruptionIsDataLossNamingTheConnection) {
  auto [a, b] = MakeSocketPair();
  ASSERT_TRUE(robust::ArmNetFaultsFromString("corrupt:times=1").ok());
  // The corrupted length prefix still rides an intact write...
  ASSERT_TRUE(a.WriteFrame("task p1red 2 0").ok());
  auto frame = b.ReadFrame(1000.0);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kDataLoss) << frame.status();
  EXPECT_NE(frame.status().message().find("[conn right]"),
            std::string::npos)
      << frame.status();
  // ...and subsequent traffic on a fresh pair is unaffected (times=1).
  auto [c, d] = MakeSocketPair();
  ASSERT_TRUE(c.WriteFrame("hb 0").ok());
  auto ok_frame = d.ReadFrame(1000.0);
  ASSERT_TRUE(ok_frame.ok()) << ok_frame.status();
  EXPECT_EQ(*ok_frame, "hb 0");
}

TEST_F(TransportTest, InjectedDropLosesExactlyTheElectedFrame) {
  auto [a, b] = MakeSocketPair();
  // Drop the second eligible frame only.
  ASSERT_TRUE(
      robust::ArmNetFaultsFromString("drop:after=1,times=1").ok());
  ASSERT_TRUE(a.WriteFrame("first").ok());
  ASSERT_TRUE(a.WriteFrame("second").ok());  // silently dropped
  ASSERT_TRUE(a.WriteFrame("third").ok());
  auto one = b.ReadFrame(1000.0);
  ASSERT_TRUE(one.ok());
  EXPECT_EQ(*one, "first");
  auto two = b.ReadFrame(1000.0);
  ASSERT_TRUE(two.ok());
  EXPECT_EQ(*two, "third");
  EXPECT_EQ(robust::NetFaultInjections(robust::NetFaultAction::kDrop), 1u);
}

TEST_F(TransportTest, InjectedDelayHoldsTheFrameButDeliversIt) {
  auto [a, b] = MakeSocketPair();
  ASSERT_TRUE(robust::ArmNetFaultsFromString("delay:times=1,ms=80").ok());
  const auto start = std::chrono::steady_clock::now();
  ASSERT_TRUE(a.WriteFrame("held").ok());
  const double held_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - start)
                             .count();
  EXPECT_GE(held_ms, 60.0);
  auto frame = b.ReadFrame(1000.0);
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(*frame, "held");
}

TEST_F(TransportTest, PeerFilterScopesFaultsToMatchingConnections) {
  auto [a, b] = MakeSocketPair();  // peers "left" / "right"
  ASSERT_TRUE(
      robust::ArmNetFaultsFromString("drop:peer=worker7").ok());
  ASSERT_TRUE(a.WriteFrame("not dropped").ok());
  auto frame = b.ReadFrame(1000.0);
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(*frame, "not dropped");
  EXPECT_EQ(robust::NetFaultInjections(robust::NetFaultAction::kDrop), 0u);
}

TEST_F(TransportTest, RedialAfterDropDeliversBitIdenticalFrames) {
  auto listener = Listener::Listen("127.0.0.1:0");
  ASSERT_TRUE(listener.ok()) << listener.status();

  const std::string payload("done p3red_1 4 2\0\x7f\x00\x01", 20);
  auto exchange = [&](const std::string& tag) -> std::string {
    auto dialed = Dial(listener->bound_address(), "coordinator", 2000.0);
    EXPECT_TRUE(dialed.ok()) << tag << ": " << dialed.status();
    Result<Connection> accepted = listener->Accept();
    for (int spin = 0; !accepted.ok() && spin < 200; ++spin) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      accepted = listener->Accept();
    }
    EXPECT_TRUE(accepted.ok()) << tag << ": " << accepted.status();
    EXPECT_TRUE(dialed->WriteFrame(payload, 2000.0).ok()) << tag;
    auto got = accepted->ReadFrame(2000.0);
    EXPECT_TRUE(got.ok()) << tag << ": " << got.status();
    // Simulate the drop: the dialer tears its end down hard.
    dialed->Close();
    accepted->Close();
    return got.ok() ? *got : std::string();
  };

  const std::string first = exchange("initial connection");
  const std::string second = exchange("redialed connection");
  EXPECT_EQ(first, payload);
  EXPECT_EQ(second, payload);  // bit-identical across the reconnect
}

TEST_F(TransportTest, DialWithBackoffExhaustsItsBudget) {
  // Bind then close a listener so the port is (very likely) refusing.
  auto listener = Listener::Listen("127.0.0.1:0");
  ASSERT_TRUE(listener.ok());
  const std::string address = listener->bound_address();
  listener->Close();

  robust::RetryPolicy policy;
  policy.max_retries = 1 << 20;
  policy.base_backoff_ms = 5.0;
  policy.max_backoff_ms = 20.0;
  policy.seed = 7;
  const auto start = std::chrono::steady_clock::now();
  auto conn = DialWithBackoff(address, "coordinator", policy,
                              /*budget_ms=*/200.0, robust::CancelToken());
  const double waited_ms = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - start)
                               .count();
  ASSERT_FALSE(conn.ok());
  EXPECT_EQ(conn.status().code(), StatusCode::kDeadlineExceeded)
      << conn.status();
  EXPECT_LT(waited_ms, 5000.0);
}

TEST_F(TransportTest, ListenerRejectsAddressWithoutPort) {
  EXPECT_FALSE(Listener::Listen("localhost").ok());
  EXPECT_FALSE(Dial("no-port-here", "x", 100.0).ok());
}

// ------------------------------------------------- netfault spec grammar

TEST_F(TransportTest, NetFaultSpecGrammarParses) {
  auto spec = robust::ParseNetFaultSpec(
      "delay:after=3,times=2,prob=0.5,seed=11,ms=40,peer=worker1");
  ASSERT_TRUE(spec.ok()) << spec.status();
  EXPECT_EQ(spec->action, robust::NetFaultAction::kDelay);
  EXPECT_EQ(spec->after, 3u);
  EXPECT_EQ(spec->times, 2u);
  EXPECT_EQ(spec->probability, 0.5);
  EXPECT_EQ(spec->seed, 11u);
  EXPECT_EQ(spec->delay_ms, 40.0);
  EXPECT_EQ(spec->peer, "worker1");

  auto truncate = robust::ParseNetFaultSpec("truncate:at=7");
  ASSERT_TRUE(truncate.ok());
  EXPECT_EQ(truncate->action, robust::NetFaultAction::kTruncate);
  EXPECT_EQ(truncate->truncate_at, 7u);

  EXPECT_FALSE(robust::ParseNetFaultSpec("").ok());
  EXPECT_FALSE(robust::ParseNetFaultSpec("explode").ok());
  EXPECT_FALSE(robust::ParseNetFaultSpec("drop:prob=0").ok());
  EXPECT_FALSE(robust::ParseNetFaultSpec("drop:prob=1.5").ok());
  EXPECT_FALSE(robust::ParseNetFaultSpec("drop:bogus=1").ok());
}

}  // namespace
}  // namespace m2td::mapreduce::transport
