#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/flags.h"

namespace m2td {
namespace {

std::vector<const char*> Argv(const std::vector<std::string>& args,
                              std::vector<std::string>* storage) {
  *storage = args;
  std::vector<const char*> out;
  for (const std::string& s : *storage) out.push_back(s.c_str());
  return out;
}

TEST(FlagsTest, ParsesEqualsAndSpaceForms) {
  std::string name = "default";
  std::int64_t count = 1;
  double ratio = 0.5;
  FlagParser parser("test");
  parser.AddString("name", "a name", &name);
  parser.AddInt64("count", "a count", &count);
  parser.AddDouble("ratio", "a ratio", &ratio);

  std::vector<std::string> storage;
  auto argv = Argv({"--name=alice", "--count", "42", "--ratio=0.25"},
                   &storage);
  auto positional = parser.Parse(static_cast<int>(argv.size()), argv.data());
  ASSERT_TRUE(positional.ok());
  EXPECT_TRUE(positional->empty());
  EXPECT_EQ(name, "alice");
  EXPECT_EQ(count, 42);
  EXPECT_DOUBLE_EQ(ratio, 0.25);
}

TEST(FlagsTest, BoolForms) {
  bool verbose = false;
  bool cache = true;
  FlagParser parser("test");
  parser.AddBool("verbose", "chatty", &verbose);
  parser.AddBool("cache", "use cache", &cache);

  std::vector<std::string> storage;
  auto argv = Argv({"--verbose", "--nocache"}, &storage);
  ASSERT_TRUE(
      parser.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  EXPECT_TRUE(verbose);
  EXPECT_FALSE(cache);

  auto argv2 = Argv({"--verbose=false", "--cache=true"}, &storage);
  ASSERT_TRUE(
      parser.Parse(static_cast<int>(argv2.size()), argv2.data()).ok());
  EXPECT_FALSE(verbose);
  EXPECT_TRUE(cache);
}

TEST(FlagsTest, PositionalArgumentsPassThrough) {
  std::string mode = "";
  FlagParser parser("test");
  parser.AddString("mode", "", &mode);
  std::vector<std::string> storage;
  auto argv = Argv({"input.txt", "--mode=fast", "output.txt"}, &storage);
  auto positional = parser.Parse(static_cast<int>(argv.size()), argv.data());
  ASSERT_TRUE(positional.ok());
  EXPECT_EQ(*positional,
            (std::vector<std::string>{"input.txt", "output.txt"}));
  EXPECT_EQ(mode, "fast");
}

TEST(FlagsTest, UnknownFlagRejected) {
  FlagParser parser("test");
  std::vector<std::string> storage;
  auto argv = Argv({"--bogus=1"}, &storage);
  auto result = parser.Parse(static_cast<int>(argv.size()), argv.data());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(FlagsTest, MalformedValuesRejected) {
  std::int64_t count = 0;
  double ratio = 0.0;
  bool flag = false;
  FlagParser parser("test");
  parser.AddInt64("count", "", &count);
  parser.AddDouble("ratio", "", &ratio);
  parser.AddBool("flag", "", &flag);

  std::vector<std::string> storage;
  for (const std::string& bad :
       {std::string("--count=abc"), std::string("--ratio=x"),
        std::string("--flag=maybe"), std::string("--count")}) {
    auto argv = Argv({bad}, &storage);
    EXPECT_FALSE(
        parser.Parse(static_cast<int>(argv.size()), argv.data()).ok())
        << bad;
  }
}

TEST(FlagsTest, HelpReturnsUsageAsNotFound) {
  std::string name;
  FlagParser parser("my tool");
  parser.AddString("name", "the name to use", &name);
  std::vector<std::string> storage;
  auto argv = Argv({"--help"}, &storage);
  auto result = parser.Parse(static_cast<int>(argv.size()), argv.data());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  EXPECT_NE(result.status().message().find("my tool"), std::string::npos);
  EXPECT_NE(result.status().message().find("--name"), std::string::npos);
  EXPECT_NE(result.status().message().find("the name to use"),
            std::string::npos);
}

TEST(FlagsTest, UsageListsDefaults) {
  std::string name = "bob";
  std::int64_t n = 7;
  FlagParser parser("tool");
  parser.AddString("name", "", &name);
  parser.AddInt64("n", "", &n);
  const std::string usage = parser.Usage();
  EXPECT_NE(usage.find("default: bob"), std::string::npos);
  EXPECT_NE(usage.find("default: 7"), std::string::npos);
}

TEST(FlagsTest, NegativeNumbersParse) {
  std::int64_t count = 0;
  double ratio = 0.0;
  FlagParser parser("test");
  parser.AddInt64("count", "", &count);
  parser.AddDouble("ratio", "", &ratio);
  std::vector<std::string> storage;
  auto argv = Argv({"--count=-5", "--ratio=-2.5e-3"}, &storage);
  ASSERT_TRUE(
      parser.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  EXPECT_EQ(count, -5);
  EXPECT_DOUBLE_EQ(ratio, -2.5e-3);
}

}  // namespace
}  // namespace m2td
