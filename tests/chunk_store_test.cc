#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <unistd.h>

#include <gtest/gtest.h>

#include "io/chunk_store.h"
#include "util/random.h"

namespace m2td::io {
namespace {

class ChunkStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("m2td_chunk_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string StoreDir() const { return dir_.string(); }

  std::filesystem::path dir_;
};

tensor::SparseTensor MakeTensor(const std::vector<std::uint64_t>& shape,
                                std::uint64_t nnz, std::uint64_t seed) {
  Rng rng(seed);
  tensor::SparseTensor x(shape);
  std::vector<std::uint32_t> idx(shape.size());
  for (std::uint64_t e = 0; e < nnz; ++e) {
    for (std::size_t m = 0; m < shape.size(); ++m) {
      idx[m] = static_cast<std::uint32_t>(rng.UniformInt(shape[m]));
    }
    x.AppendEntry(idx, rng.Gaussian());
  }
  x.SortAndCoalesce();
  return x;
}

TEST_F(ChunkStoreTest, CreateValidation) {
  EXPECT_FALSE(ChunkStore::Create(StoreDir(), {}, {}).ok());
  EXPECT_FALSE(ChunkStore::Create(StoreDir(), {4, 4}, {2}).ok());
  EXPECT_FALSE(ChunkStore::Create(StoreDir(), {4, 0}, {2, 2}).ok());
  auto store = ChunkStore::Create(StoreDir(), {4, 4}, {2, 2});
  ASSERT_TRUE(store.ok());
  // Creating again over the same directory fails.
  EXPECT_EQ(ChunkStore::Create(StoreDir(), {4, 4}, {2, 2}).status().code(),
            StatusCode::kAlreadyExists);
}

TEST_F(ChunkStoreTest, ChunkShapeClampsToTensorShape) {
  auto store = ChunkStore::Create(StoreDir(), {3, 3}, {10, 10});
  ASSERT_TRUE(store.ok());
  EXPECT_EQ(store->chunk_shape(), (std::vector<std::uint64_t>{3, 3}));
  EXPECT_EQ(store->ChunkGrid(), (std::vector<std::uint64_t>{1, 1}));
}

TEST_F(ChunkStoreTest, WriteReadAllRoundTrip) {
  tensor::SparseTensor x = MakeTensor({8, 6, 10}, 60, 3);
  auto store = ChunkStore::Create(StoreDir(), x.shape(), {3, 3, 3});
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(store->Write(x).ok());
  EXPECT_EQ(store->TotalNonZeros(), x.NumNonZeros());
  EXPECT_GT(store->NumChunks(), 1u);

  auto loaded = store->ReadAll();
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->NumNonZeros(), x.NumNonZeros());
  for (std::uint64_t e = 0; e < x.NumNonZeros(); ++e) {
    for (std::size_t m = 0; m < x.num_modes(); ++m) {
      EXPECT_EQ(loaded->Index(m, e), x.Index(m, e));
    }
    EXPECT_DOUBLE_EQ(loaded->Value(e), x.Value(e));
  }
}

TEST_F(ChunkStoreTest, OpenReloadsManifest) {
  tensor::SparseTensor x = MakeTensor({6, 6}, 20, 5);
  {
    auto store = ChunkStore::Create(StoreDir(), x.shape(), {2, 2});
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(store->Write(x).ok());
  }
  auto reopened = ChunkStore::Open(StoreDir());
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened->shape(), x.shape());
  EXPECT_EQ(reopened->chunk_shape(), (std::vector<std::uint64_t>{2, 2}));
  EXPECT_EQ(reopened->TotalNonZeros(), x.NumNonZeros());
  auto loaded = reopened->ReadAll();
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->NumNonZeros(), x.NumNonZeros());
}

TEST_F(ChunkStoreTest, OpenMissingStoreFails) {
  EXPECT_EQ(ChunkStore::Open(StoreDir() + "_nope").status().code(),
            StatusCode::kIOError);
}

TEST_F(ChunkStoreTest, ReadChunkContainsExactlyItsCells) {
  tensor::SparseTensor x = MakeTensor({8, 8}, 40, 7);
  auto store = ChunkStore::Create(StoreDir(), x.shape(), {4, 4});
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(store->Write(x).ok());

  std::uint64_t total = 0;
  for (std::uint64_t ci = 0; ci < 2; ++ci) {
    for (std::uint64_t cj = 0; cj < 2; ++cj) {
      auto chunk = store->ReadChunk({ci, cj});
      ASSERT_TRUE(chunk.ok());
      total += chunk->NumNonZeros();
      for (std::uint64_t e = 0; e < chunk->NumNonZeros(); ++e) {
        EXPECT_EQ(chunk->Index(0, e) / 4, ci);
        EXPECT_EQ(chunk->Index(1, e) / 4, cj);
      }
    }
  }
  EXPECT_EQ(total, x.NumNonZeros());
}

TEST_F(ChunkStoreTest, ReadChunkValidation) {
  auto store = ChunkStore::Create(StoreDir(), {4, 4}, {2, 2});
  ASSERT_TRUE(store.ok());
  EXPECT_FALSE(store->ReadChunk({0}).ok());
  EXPECT_EQ(store->ReadChunk({5, 0}).status().code(),
            StatusCode::kOutOfRange);
  // Empty (never written) chunk returns an empty tensor.
  auto chunk = store->ReadChunk({0, 0});
  ASSERT_TRUE(chunk.ok());
  EXPECT_EQ(chunk->NumNonZeros(), 0u);
}

TEST_F(ChunkStoreTest, ReadRegionFiltersExactly) {
  tensor::SparseTensor x = MakeTensor({10, 10}, 70, 11);
  auto store = ChunkStore::Create(StoreDir(), x.shape(), {3, 3});
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(store->Write(x).ok());

  const std::vector<std::uint64_t> lo = {2, 4};
  const std::vector<std::uint64_t> hi = {7, 9};
  auto region = store->ReadRegion(lo, hi);
  ASSERT_TRUE(region.ok());

  // Oracle: filter the original tensor.
  std::set<std::pair<std::uint32_t, std::uint32_t>> expected;
  for (std::uint64_t e = 0; e < x.NumNonZeros(); ++e) {
    const std::uint32_t i = x.Index(0, e);
    const std::uint32_t j = x.Index(1, e);
    if (i >= 2 && i < 7 && j >= 4 && j < 9) expected.insert({i, j});
  }
  ASSERT_EQ(region->NumNonZeros(), expected.size());
  for (std::uint64_t e = 0; e < region->NumNonZeros(); ++e) {
    EXPECT_TRUE(expected.count({region->Index(0, e), region->Index(1, e)}));
  }
}

TEST_F(ChunkStoreTest, ReadRegionValidation) {
  auto store = ChunkStore::Create(StoreDir(), {4, 4}, {2, 2});
  ASSERT_TRUE(store.ok());
  EXPECT_FALSE(store->ReadRegion({0}, {1}).ok());
  EXPECT_FALSE(store->ReadRegion({2, 2}, {2, 3}).ok());  // empty on mode 0
  EXPECT_FALSE(store->ReadRegion({0, 0}, {5, 4}).ok());  // out of range
}

TEST_F(ChunkStoreTest, RewriteReplacesContent) {
  auto store = ChunkStore::Create(StoreDir(), {6, 6}, {3, 3});
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(store->Write(MakeTensor({6, 6}, 30, 1)).ok());
  const std::uint64_t first_nnz = store->TotalNonZeros();
  tensor::SparseTensor second = MakeTensor({6, 6}, 5, 2);
  ASSERT_TRUE(store->Write(second).ok());
  EXPECT_NE(store->TotalNonZeros(), first_nnz);
  auto loaded = store->ReadAll();
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->NumNonZeros(), second.NumNonZeros());
}

TEST_F(ChunkStoreTest, WrongShapeWriteRejected) {
  auto store = ChunkStore::Create(StoreDir(), {4, 4}, {2, 2});
  ASSERT_TRUE(store.ok());
  EXPECT_FALSE(store->Write(MakeTensor({5, 4}, 3, 1)).ok());
}

TEST_F(ChunkStoreTest, CorruptManifestRejected) {
  {
    auto store = ChunkStore::Create(StoreDir(), {4, 4}, {2, 2});
    ASSERT_TRUE(store.ok());
  }
  std::ofstream out(std::filesystem::path(StoreDir()) / "manifest.m2td");
  out << "garbage\n";
  out.close();
  EXPECT_FALSE(ChunkStore::Open(StoreDir()).ok());
}

}  // namespace
}  // namespace m2td::io
