// Validation-path tests for the ensemble model layer: construction
// contracts of DynamicalSystemModel and the built-in factories.

#include <cmath>

#include <gtest/gtest.h>

#include "ensemble/simulation_model.h"
#include "sim/ode.h"

namespace m2td::ensemble {
namespace {

sim::Trajectory FakeTrajectory(std::size_t samples) {
  sim::Trajectory trajectory;
  for (std::size_t s = 0; s < samples; ++s) {
    trajectory.times.push_back(static_cast<double>(s));
    trajectory.observables.push_back({static_cast<double>(s)});
  }
  return trajectory;
}

TEST(ModelValidationTest, RequiresTimeModePlusParameters) {
  auto space = ParameterSpace::Create({ParameterDef{"t", 0, 1, 3}});
  ASSERT_TRUE(space.ok());
  auto model = DynamicalSystemModel::Create(
      "x", *space,
      [](const std::vector<double>&) -> Result<sim::Trajectory> {
        return FakeTrajectory(3);
      },
      {});
  EXPECT_FALSE(model.ok());
}

TEST(ModelValidationTest, ReferenceParamArityChecked) {
  auto space = ParameterSpace::Create({
      ParameterDef{"t", 0, 1, 3},
      ParameterDef{"a", 0, 1, 2},
  });
  ASSERT_TRUE(space.ok());
  auto model = DynamicalSystemModel::Create(
      "x", *space,
      [](const std::vector<double>&) -> Result<sim::Trajectory> {
        return FakeTrajectory(3);
      },
      {0.5, 0.5});  // two reference params for one parameter mode
  EXPECT_FALSE(model.ok());
}

TEST(ModelValidationTest, TrajectoryLengthMustMatchTimeResolution) {
  auto space = ParameterSpace::Create({
      ParameterDef{"t", 0, 1, 5},
      ParameterDef{"a", 0, 1, 2},
  });
  ASSERT_TRUE(space.ok());
  auto model = DynamicalSystemModel::Create(
      "x", *space,
      [](const std::vector<double>&) -> Result<sim::Trajectory> {
        return FakeTrajectory(3);  // 3 != 5
      },
      {0.5});
  EXPECT_FALSE(model.ok());
}

TEST(ModelValidationTest, FactoryErrorSurfacesAtCreate) {
  auto space = ParameterSpace::Create({
      ParameterDef{"t", 0, 1, 3},
      ParameterDef{"a", 0, 1, 2},
  });
  ASSERT_TRUE(space.ok());
  auto model = DynamicalSystemModel::Create(
      "x", *space,
      [](const std::vector<double>&) -> Result<sim::Trajectory> {
        return Status::Internal("boom");
      },
      {0.5});
  EXPECT_FALSE(model.ok());
  EXPECT_EQ(model.status().code(), StatusCode::kInternal);
}

TEST(ModelValidationTest, ValidCustomModelEvaluates) {
  auto space = ParameterSpace::Create({
      ParameterDef{"t", 0, 2, 3},
      ParameterDef{"a", 0, 1, 4},
  });
  ASSERT_TRUE(space.ok());
  // Observable = (a * t); reference a = midpoint value.
  auto factory = [](const std::vector<double>& p)
      -> Result<sim::Trajectory> {
    sim::Trajectory trajectory;
    for (int s = 0; s < 3; ++s) {
      trajectory.times.push_back(s);
      trajectory.observables.push_back({p[0] * s});
    }
    return trajectory;
  };
  auto model = DynamicalSystemModel::Create("toy", *space, factory,
                                            {space->Value(1, 2)});
  ASSERT_TRUE(model.ok());
  // Cell distance = |a*t - a_ref*t|.
  const double a0 = space->Value(1, 0);
  const double a_ref = space->Value(1, 2);
  EXPECT_NEAR((*model)->Cell({2, 0}), std::fabs(a0 - a_ref) * 2.0, 1e-12);
  EXPECT_NEAR((*model)->Cell({0, 0}), 0.0, 1e-12);
}

TEST(ModelValidationTest, SeirFactoryHonorsResolutions) {
  ModelOptions options;
  options.parameter_resolution = 3;
  options.time_resolution = 6;
  auto model = MakeSeirModel(options);
  ASSERT_TRUE(model.ok());
  EXPECT_EQ((*model)->space().Resolution(0), 6u);
  for (std::size_t m = 1; m < 5; ++m) {
    EXPECT_EQ((*model)->space().Resolution(m), 3u);
  }
}

}  // namespace
}  // namespace m2td::ensemble
