// Property sweeps for the tensor kernels: every invariant is checked over
// a parameterized grid of shapes, densities, and ranks against the dense
// oracles.

#include <cmath>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "linalg/matrix.h"
#include "tensor/dense_tensor.h"
#include "tensor/matricize.h"
#include "tensor/sparse_tensor.h"
#include "tensor/ttm.h"
#include "tensor/tucker.h"
#include "util/random.h"

namespace m2td::tensor {
namespace {

SparseTensor RandomSparse(const std::vector<std::uint64_t>& shape,
                          double density, Rng* rng) {
  SparseTensor x(shape);
  std::uint64_t logical = 1;
  for (std::uint64_t d : shape) logical *= d;
  const std::uint64_t nnz = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(density * static_cast<double>(logical)));
  std::vector<std::uint32_t> idx(shape.size());
  for (std::uint64_t e = 0; e < nnz; ++e) {
    for (std::size_t m = 0; m < shape.size(); ++m) {
      idx[m] = static_cast<std::uint32_t>(rng->UniformInt(shape[m]));
    }
    x.AppendEntry(idx, rng->Gaussian());
  }
  x.SortAndCoalesce();
  return x;
}

// Sweep: (shape id, density).
using KernelParam = std::tuple<int, double>;

std::vector<std::uint64_t> ShapeOf(int shape_id) {
  switch (shape_id) {
    case 0:
      return {4, 5};
    case 1:
      return {3, 4, 5};
    case 2:
      return {4, 4, 4, 4};
    default:
      return {2, 3, 2, 3, 2};
  }
}

class TensorKernelProperty : public ::testing::TestWithParam<KernelParam> {
 protected:
  SparseTensor MakeInput() {
    Rng rng(100 + std::get<0>(GetParam()) * 10 +
            static_cast<int>(std::get<1>(GetParam()) * 100));
    return RandomSparse(ShapeOf(std::get<0>(GetParam())),
                        std::get<1>(GetParam()), &rng);
  }
};

TEST_P(TensorKernelProperty, GramMatchesDenseOracleOnEveryMode) {
  SparseTensor x = MakeInput();
  const DenseTensor dense = x.ToDense();
  for (std::size_t mode = 0; mode < x.num_modes(); ++mode) {
    auto sparse_gram = ModeGram(x, mode);
    auto dense_gram = ModeGramDense(dense, mode);
    ASSERT_TRUE(sparse_gram.ok() && dense_gram.ok());
    EXPECT_LT(linalg::Matrix::MaxAbsDiff(*sparse_gram, *dense_gram), 1e-9)
        << "mode " << mode;
  }
}

TEST_P(TensorKernelProperty, SparseTtmMatchesDenseOnEveryMode) {
  SparseTensor x = MakeInput();
  const DenseTensor dense = x.ToDense();
  Rng rng(7);
  for (std::size_t mode = 0; mode < x.num_modes(); ++mode) {
    linalg::Matrix u(static_cast<std::size_t>(x.dim(mode)), 2);
    for (std::size_t i = 0; i < u.rows(); ++i) {
      for (std::size_t j = 0; j < 2; ++j) u(i, j) = rng.Gaussian();
    }
    auto sparse_y = SparseModeProduct(x, u, mode, true);
    auto dense_y = ModeProduct(dense, u, mode, true);
    ASSERT_TRUE(sparse_y.ok() && dense_y.ok());
    EXPECT_NEAR(DenseTensor::FrobeniusDistance(*sparse_y, *dense_y), 0.0,
                1e-9)
        << "mode " << mode;
  }
}

TEST_P(TensorKernelProperty, HosvdReconstructionBoundedByInputNorm) {
  SparseTensor x = MakeInput();
  std::vector<std::uint64_t> ranks(x.num_modes(), 2);
  auto tucker = HosvdSparse(x, ranks);
  ASSERT_TRUE(tucker.ok());
  auto reconstructed = Reconstruct(*tucker);
  ASSERT_TRUE(reconstructed.ok());
  // Orthonormal projections cannot create energy.
  EXPECT_LE(reconstructed->FrobeniusNorm(), x.FrobeniusNorm() + 1e-9);
}

TEST_P(TensorKernelProperty, CoreNormEqualsProjectionEnergy) {
  // For orthonormal factors: ||G||^2 = ||X~||^2 (the projected energy).
  SparseTensor x = MakeInput();
  std::vector<std::uint64_t> ranks(x.num_modes(), 2);
  auto tucker = HosvdSparse(x, ranks);
  ASSERT_TRUE(tucker.ok());
  auto reconstructed = Reconstruct(*tucker);
  ASSERT_TRUE(reconstructed.ok());
  EXPECT_NEAR(tucker->core.FrobeniusNorm(), reconstructed->FrobeniusNorm(),
              1e-9 * std::max(1.0, tucker->core.FrobeniusNorm()));
}

TEST_P(TensorKernelProperty, ReconstructCellMatchesDenseReconstruction) {
  SparseTensor x = MakeInput();
  std::vector<std::uint64_t> ranks(x.num_modes(), 2);
  auto tucker = HosvdSparse(x, ranks);
  ASSERT_TRUE(tucker.ok());
  auto dense = Reconstruct(*tucker);
  ASSERT_TRUE(dense.ok());
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<std::uint32_t> idx(x.num_modes());
    for (std::size_t m = 0; m < idx.size(); ++m) {
      idx[m] = static_cast<std::uint32_t>(rng.UniformInt(x.dim(m)));
    }
    auto cell = ReconstructCell(*tucker, idx);
    ASSERT_TRUE(cell.ok());
    EXPECT_NEAR(*cell, dense->at(idx), 1e-10);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TensorKernelProperty,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),
                       ::testing::Values(0.05, 0.3, 0.9)),
    [](const auto& info) {
      return "shape" + std::to_string(std::get<0>(info.param)) + "_d" +
             std::to_string(
                 static_cast<int>(std::get<1>(info.param) * 100));
    });

TEST(ReconstructCellTest, Validation) {
  SparseTensor x({3, 3});
  x.AppendEntry({1, 1}, 2.0);
  x.SortAndCoalesce();
  auto tucker = HosvdSparse(x, {2, 2});
  ASSERT_TRUE(tucker.ok());
  EXPECT_FALSE(ReconstructCell(*tucker, {1}).ok());
  EXPECT_EQ(ReconstructCell(*tucker, {5, 1}).status().code(),
            StatusCode::kOutOfRange);
  EXPECT_TRUE(ReconstructCell(*tucker, {2, 2}).ok());
}

}  // namespace
}  // namespace m2td::tensor
