// Worker-death chaos tests of the multi-process D-M2TD backend
// (ctest -L chaos): SIGKILL one worker in each of the three phases —
// mid-map, mid-shuffle-write, mid-reduce — and assert the recovered run
// is bit-identical to the thread backend at worker counts 1, 2 and 4.
//
// Kill schedules are deterministic, not timing-based: the coordinator's
// DistProcessOptions::event_hook fires inline on every scheduling event,
// so "SIGKILL the worker that was just assigned the 2nd p2map task" is
// exactly reproducible, and M2TD_DIST_CHAOS_SLEEP_MS (inherited by the
// workers) holds every map/reduce task open between its shuffle writes
// and its commit so the kill always lands mid-task.

#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>
#include <unistd.h>

#include <gtest/gtest.h>

#include "core/dm2td.h"
#include "core/dm2td_tasks.h"
#include "core/m2td.h"
#include "core/pf_partition.h"
#include "ensemble/simulation_model.h"
#include "linalg/matrix.h"
#include "parallel/thread_pool.h"
#include "robust/cancel.h"
#include "tensor/tucker.h"

namespace m2td {
namespace {

std::unique_ptr<ensemble::DynamicalSystemModel> SmallModel() {
  ensemble::ModelOptions options;
  options.parameter_resolution = 4;
  options.time_resolution = 4;
  options.dt = 0.01;
  options.record_every = 5;
  auto model = ensemble::MakeDoublePendulumModel(options);
  EXPECT_TRUE(model.ok());
  return std::move(model).ValueOrDie();
}

void ExpectBitIdentical(const core::DM2tdResult& a,
                        const core::DM2tdResult& b,
                        const std::string& label) {
  EXPECT_EQ(a.join_nnz, b.join_nnz) << label;
  ASSERT_EQ(a.tucker.core.shape(), b.tucker.core.shape()) << label;
  EXPECT_EQ(a.tucker.core.data(), b.tucker.core.data()) << label;
  ASSERT_EQ(a.tucker.factors.size(), b.tucker.factors.size()) << label;
  for (std::size_t n = 0; n < a.tucker.factors.size(); ++n) {
    const linalg::Matrix& fa = a.tucker.factors[n];
    const linalg::Matrix& fb = b.tucker.factors[n];
    ASSERT_EQ(fa.rows(), fb.rows()) << label << " factor " << n;
    ASSERT_EQ(fa.cols(), fb.cols()) << label << " factor " << n;
    for (std::size_t r = 0; r < fa.rows(); ++r) {
      for (std::size_t c = 0; c < fa.cols(); ++c) {
        EXPECT_EQ(fa(r, c), fb(r, c))
            << label << " factor " << n << " (" << r << "," << c << ")";
      }
    }
  }
}

/// Widens the mid-shuffle-write kill window for the spawned workers for
/// the lifetime of the scope (workers inherit the test environment).
class ChaosSleepScope {
 public:
  explicit ChaosSleepScope(int millis) {
    ::setenv(core::dm2td_tasks::kChaosSleepEnv,
             std::to_string(millis).c_str(), 1);
  }
  ~ChaosSleepScope() { ::unsetenv(core::dm2td_tasks::kChaosSleepEnv); }
};

class DistChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = std::filesystem::path(::testing::TempDir()) /
            (std::string("dist_chaos_") + ::testing::UnitTest::GetInstance()
                                              ->current_test_info()
                                              ->name());
    std::filesystem::remove_all(root_);
    std::filesystem::create_directories(root_);

    model_ = SmallModel();
    auto partition = core::MakePartition(5, {0});
    ASSERT_TRUE(partition.ok());
    partition_ = *partition;
    auto subs = core::BuildSubEnsembles(model_.get(), partition_, {});
    ASSERT_TRUE(subs.ok());
    subs_ = std::move(*subs);

    core::DM2tdOptions options = BaseOptions();
    options.backend = core::DistBackend::kThread;
    auto baseline = core::DM2tdDecompose(subs_, partition_,
                                         model_->space().Shape(), options);
    ASSERT_TRUE(baseline.ok()) << baseline.status();
    baseline_ = std::move(*baseline);
  }
  void TearDown() override { std::filesystem::remove_all(root_); }

  core::DM2tdOptions BaseOptions() const {
    core::DM2tdOptions options;
    options.ranks = std::vector<std::uint64_t>(5, 2);
    options.num_shards = 4;
    return options;
  }

  /// Runs the process backend with `workers` workers, SIGKILLing the
  /// worker that receives the `kill_at`-th assignment of `kill_phase`
  /// (1-based; empty phase = no kill). Returns the result.
  Result<core::DM2tdResult> RunProcess(int workers,
                                       const std::string& kill_phase,
                                       int kill_at,
                                       std::uint64_t* deaths = nullptr) {
    core::DM2tdOptions options = BaseOptions();
    options.backend = core::DistBackend::kProcess;
    options.num_workers = workers;
    options.process.worker_binary = M2TD_WORKER_BIN;
    options.process.job_dir =
        (root_ / (kill_phase.empty() ? std::string("nokill")
                                     : kill_phase + std::to_string(workers)))
            .string();
    int assigns = 0;
    bool killed = false;
    options.process.event_hook = [&](const core::DistEvent& event) {
      if (killed || kill_phase.empty()) return;
      if (event.kind != "assign" || event.phase != kill_phase) return;
      if (++assigns != kill_at) return;
      ::kill(event.pid, SIGKILL);
      killed = true;
    };
    auto result = core::DM2tdDecompose(subs_, partition_,
                                       model_->space().Shape(), options);
    if (result.ok() && deaths != nullptr) {
      *deaths = result->dist.worker_deaths;
    }
    if (!kill_phase.empty()) EXPECT_TRUE(killed) << kill_phase;
    return result;
  }

  std::filesystem::path root_;
  std::unique_ptr<ensemble::DynamicalSystemModel> model_;
  core::PfPartition partition_;
  core::SubEnsembles subs_;
  core::DM2tdResult baseline_;
};

TEST_F(DistChaosTest, SingleWorkerNoKillMatchesThread) {
  auto result = RunProcess(1, "", 0);
  ASSERT_TRUE(result.ok()) << result.status();
  ExpectBitIdentical(*result, baseline_, "workers=1");
  EXPECT_EQ(result->dist.worker_deaths, 0u);
}

TEST_F(DistChaosTest, KillDuringPhase1MapIsRecoveredBitIdentical) {
  ChaosSleepScope sleep(100);
  std::uint64_t deaths = 0;
  auto result = RunProcess(4, "p1map", 1, &deaths);
  ASSERT_TRUE(result.ok()) << result.status();
  ExpectBitIdentical(*result, baseline_, "kill p1map");
  EXPECT_GE(deaths, 1u);
  EXPECT_GE(result->dist.tasks_reassigned, 1u);
}

TEST_F(DistChaosTest, KillDuringPhase2StitchIsRecoveredBitIdentical) {
  ChaosSleepScope sleep(100);
  std::uint64_t deaths = 0;
  auto result = RunProcess(2, "p2map", 2, &deaths);
  ASSERT_TRUE(result.ok()) << result.status();
  ExpectBitIdentical(*result, baseline_, "kill p2map");
  EXPECT_GE(deaths, 1u);
}

TEST_F(DistChaosTest, KillDuringPhase2ReduceIsRecoveredBitIdentical) {
  ChaosSleepScope sleep(100);
  std::uint64_t deaths = 0;
  auto result = RunProcess(4, "p2red", 1, &deaths);
  ASSERT_TRUE(result.ok()) << result.status();
  ExpectBitIdentical(*result, baseline_, "kill p2red");
  EXPECT_GE(deaths, 1u);
}

TEST_F(DistChaosTest, KillDuringPhase3TtmIsRecoveredBitIdentical) {
  ChaosSleepScope sleep(100);
  std::uint64_t deaths = 0;
  auto result = RunProcess(4, "p3map_0", 1, &deaths);
  ASSERT_TRUE(result.ok()) << result.status();
  ExpectBitIdentical(*result, baseline_, "kill p3map_0");
  EXPECT_GE(deaths, 1u);
}

TEST_F(DistChaosTest, RepeatedKillsAcrossPhasesStayBitIdentical) {
  // One run, three kills: the first assignment of each phase family
  // loses its worker. Survivor picks everything up; results unchanged.
  ChaosSleepScope sleep(50);
  core::DM2tdOptions options = BaseOptions();
  options.backend = core::DistBackend::kProcess;
  options.num_workers = 4;
  options.process.worker_binary = M2TD_WORKER_BIN;
  options.process.job_dir = (root_ / "multi").string();
  bool killed_p1 = false, killed_p2 = false, killed_p3 = false;
  options.process.event_hook = [&](const core::DistEvent& event) {
    if (event.kind != "assign") return;
    bool* flag = nullptr;
    if (event.phase == "p1map") flag = &killed_p1;
    if (event.phase == "p2red") flag = &killed_p2;
    if (event.phase == "p3red_1") flag = &killed_p3;
    if (flag == nullptr || *flag) return;
    ::kill(event.pid, SIGKILL);
    *flag = true;
  };
  auto result = core::DM2tdDecompose(subs_, partition_,
                                     model_->space().Shape(), options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(killed_p1 && killed_p2 && killed_p3);
  ExpectBitIdentical(*result, baseline_, "kill p1+p2+p3");
  EXPECT_GE(result->dist.worker_deaths, 3u);
}

// ---------------------------------------------- socket transport chaos

/// Points the spawned workers' deterministic straggler at one task for
/// the lifetime of the scope (workers inherit the test environment).
class StragglerScope {
 public:
  explicit StragglerScope(const std::string& spec) {
    ::setenv(core::dm2td_tasks::kStragglerEnv, spec.c_str(), 1);
  }
  ~StragglerScope() { ::unsetenv(core::dm2td_tasks::kStragglerEnv); }
};

TEST_F(DistChaosTest, SocketBackendNoChaosMatchesThread) {
  core::DM2tdOptions options = BaseOptions();
  options.backend = core::DistBackend::kProcess;
  options.num_workers = 3;
  options.process.worker_binary = M2TD_WORKER_BIN;
  options.process.transport = "socket";
  options.process.job_dir = (root_ / "socket_clean").string();
  auto result = core::DM2tdDecompose(subs_, partition_,
                                     model_->space().Shape(), options);
  ASSERT_TRUE(result.ok()) << result.status();
  ExpectBitIdentical(*result, baseline_, "socket workers=3");
  EXPECT_EQ(result->dist.net_connects, 3u);
  EXPECT_EQ(result->dist.worker_deaths, 0u);
}

TEST_F(DistChaosTest, SocketBackendKillMidPhaseIsRecoveredBitIdentical) {
  // A real SIGKILL on the socket backend: the disconnect is observed
  // first, then TryReap turns it into a death immediately (no 30 s lease
  // wait), and the in-flight task is reassigned.
  ChaosSleepScope sleep(100);
  core::DM2tdOptions options = BaseOptions();
  options.backend = core::DistBackend::kProcess;
  options.num_workers = 4;
  options.process.worker_binary = M2TD_WORKER_BIN;
  options.process.transport = "socket";
  options.process.job_dir = (root_ / "socket_kill").string();
  bool killed = false;
  options.process.event_hook = [&](const core::DistEvent& event) {
    if (killed || event.kind != "assign" || event.phase != "p1map") return;
    ::kill(event.pid, SIGKILL);
    killed = true;
  };
  auto result = core::DM2tdDecompose(subs_, partition_,
                                     model_->space().Shape(), options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(killed);
  ExpectBitIdentical(*result, baseline_, "socket SIGKILL p1map");
  EXPECT_GE(result->dist.worker_deaths, 1u);
  EXPECT_GE(result->dist.net_disconnects, 1u);
  EXPECT_GE(result->dist.tasks_reassigned, 1u);
}

TEST_F(DistChaosTest, SocketBackendSurvivesInjectedFrameChaos) {
  // Deterministic transport chaos at both ends of the channel:
  //  - coordinator side: one mid-frame truncation (tears a worker's
  //    connection — it must redial and resume its identity), one dropped
  //    frame (its task recovers via the shortened lease), and random
  //    small delays;
  //  - worker side: random small delays on the reply path.
  // Under all of that, results stay bit-identical to the thread backend.
  core::DM2tdOptions options = BaseOptions();
  options.backend = core::DistBackend::kProcess;
  options.num_workers = 2;
  options.process.worker_binary = M2TD_WORKER_BIN;
  options.process.transport = "socket";
  options.process.job_dir = (root_ / "socket_chaos").string();
  options.process.task_lease_ms = 1500.0;
  options.process.net_faults =
      "truncate:after=3,times=1;drop:after=12,times=1;"
      "delay:prob=0.15,ms=4,seed=5";
  options.process.worker_net_faults = "delay:prob=0.15,ms=4,seed=11";
  auto result = core::DM2tdDecompose(subs_, partition_,
                                     model_->space().Shape(), options);
  ASSERT_TRUE(result.ok()) << result.status();
  ExpectBitIdentical(*result, baseline_, "socket frame chaos");
  // The torn connection produced a disconnect + an in-lease reconnect.
  EXPECT_GE(result->dist.net_disconnects, 1u);
  EXPECT_GE(result->dist.net_reconnects, 1u);
}

TEST_F(DistChaosTest, SpeculativeExecutionRacesStragglerBitIdentical) {
  // p1map task 0's first attempt sleeps 2.5 s (cancel-aware); its three
  // siblings finish in milliseconds. Speculation launches a racing
  // attempt on an idle worker, the racer wins, and the straggling
  // attempt is cancelled — all without affecting the result bits.
  StragglerScope straggler("p1map:0:2500");
  core::DM2tdOptions options = BaseOptions();
  options.backend = core::DistBackend::kProcess;
  options.num_workers = 2;
  options.process.worker_binary = M2TD_WORKER_BIN;
  options.process.transport = "socket";
  options.process.job_dir = (root_ / "speculate").string();
  options.process.speculation.enabled = true;
  options.process.speculation.quantile = 0.75;
  options.process.speculation.multiplier = 2.0;
  options.process.speculation.min_completed = 3;
  options.process.speculation.floor_ms = 100.0;
  int speculated = 0, won = 0, cancelled = 0;
  options.process.event_hook = [&](const core::DistEvent& event) {
    speculated += event.kind == "speculate";
    won += event.kind == "speculate_won";
    cancelled += event.kind == "speculate_cancelled";
  };
  auto result = core::DM2tdDecompose(subs_, partition_,
                                     model_->space().Shape(), options);
  ASSERT_TRUE(result.ok()) << result.status();
  ExpectBitIdentical(*result, baseline_, "speculative race");
  EXPECT_GE(result->dist.speculative_launched, 1u);
  EXPECT_GE(result->dist.speculative_won, 1u);
  EXPECT_GE(result->dist.speculative_cancelled, 1u);
  EXPECT_EQ(result->dist.speculative_launched,
            static_cast<std::uint64_t>(speculated));
  EXPECT_EQ(result->dist.speculative_won, static_cast<std::uint64_t>(won));
  EXPECT_EQ(result->dist.worker_deaths, 0u);
}

// ------------------------------------------- coordinator SIGTERM drain

/// Child body for the coordinator-drain subprocess test: a real SIGTERM
/// raised at the first p1 stage completion must drain the coordinator
/// (quit frames to the workers, join, surface kCancelled) via the same
/// cooperative-cancel path every other pipeline uses. Exits 42 on
/// success; other codes pinpoint the failed step.
void RunSigtermDrainChild(const core::SubEnsembles& subs,
                          const core::PfPartition& partition,
                          const std::vector<std::uint64_t>& shape,
                          core::DM2tdOptions options) {
  robust::CancelSource source;
  if (!robust::InstallCancelOnSignal(source)) _exit(3);
  bool drained = false;
  options.process.event_hook = [&drained](const core::DistEvent& event) {
    if (event.kind == "stage_done" && event.phase == "p1map") {
      std::raise(SIGTERM);
    }
    if (event.kind == "drain") drained = true;
  };
  robust::CancelScope scope(source.token());
  auto result = core::DM2tdDecompose(subs, partition, shape, options);
  if (result.ok()) _exit(4);  // the signal should have cancelled the run
  if (!robust::IsCancellation(result.status())) _exit(5);
  if (!drained) _exit(6);  // drain must go through the graceful path
  _exit(42);
}

TEST_F(DistChaosTest, CoordinatorSigtermDrainsWorkersGracefully) {
  // The child is forked by EXPECT_EXIT; run the parent effectively
  // single-threaded at the fork (the coordinator loop itself is
  // single-threaded, the worker pool lives in separate processes).
  const int previous_threads = parallel::GlobalThreads();
  parallel::SetGlobalThreads(1);

  core::DM2tdOptions options = BaseOptions();
  options.backend = core::DistBackend::kProcess;
  options.num_workers = 2;
  options.process.worker_binary = M2TD_WORKER_BIN;
  options.process.job_dir = (root_ / "drain").string();
  EXPECT_EXIT(RunSigtermDrainChild(subs_, partition_,
                                   model_->space().Shape(), options),
              ::testing::ExitedWithCode(42), "");

  parallel::SetGlobalThreads(previous_threads);
}

}  // namespace
}  // namespace m2td
