// Tests for the fault-tolerance subsystem (src/robust/) and its wiring
// through the pipeline: deterministic failpoints, retry/backoff, CRC'd
// durable chunk IO, checkpoint journals, MapReduce task retry, OOC
// checkpoint-resume, and budget-preserving ensemble rebuilds.
//
// Everything here is deterministic: backoff delays are collected through
// SetRetrySleeperForTest instead of slept, and probabilistic failpoints
// are seeded.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>
#include <unistd.h>

#include <gtest/gtest.h>

#include "core/dm2td.h"
#include "core/m2td.h"
#include "core/ooc_m2td.h"
#include "core/pf_partition.h"
#include "ensemble/sampling.h"
#include "ensemble/simulation_model.h"
#include "io/chunk_store.h"
#include "io/tensor_io.h"
#include "mapreduce/engine.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "robust/cancel.h"
#include "robust/checkpoint.h"
#include "robust/crc32.h"
#include "robust/durable.h"
#include "robust/failpoint.h"
#include "robust/retry.h"
#include "robust/watchdog.h"
#include "tensor/tucker.h"
#include "util/random.h"

namespace m2td {
namespace {

/// Base fixture: a private temp directory, metrics on, and guaranteed
/// cleanup of every piece of process-global robustness state so tests
/// cannot leak armed failpoints or a raised retry policy into each other.
class RobustTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("m2td_robust_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    obs::SetMetricsEnabled(true);
  }
  void TearDown() override {
    robust::DisarmAllFailpoints();
    robust::SetGlobalRetryPolicy(robust::RetryPolicy{});
    robust::SetRetrySleeperForTest(nullptr);
    obs::SetMetricsEnabled(false);
    std::filesystem::remove_all(dir_);
  }

  std::string Path(const std::string& name) const {
    return (dir_ / name).string();
  }

  std::filesystem::path dir_;
};

tensor::SparseTensor SmallTensor() {
  tensor::SparseTensor x({4, 4});
  Rng rng(1);
  std::vector<std::uint32_t> idx(2);
  for (int e = 0; e < 10; ++e) {
    idx[0] = static_cast<std::uint32_t>(rng.UniformInt(4));
    idx[1] = static_cast<std::uint32_t>(rng.UniformInt(4));
    x.AppendEntry(idx, rng.Gaussian());
  }
  x.SortAndCoalesce();
  return x;
}

// ------------------------------------------------------------- failpoints

TEST_F(RobustTest, ParseFailpointSpecFields) {
  auto spec =
      robust::ParseFailpointSpec("io.write:after=2,times=3,prob=0.5,seed=7");
  ASSERT_TRUE(spec.ok()) << spec.status();
  EXPECT_EQ(spec->name, "io.write");
  EXPECT_EQ(spec->after, 2u);
  EXPECT_EQ(spec->times, 3u);
  EXPECT_DOUBLE_EQ(spec->probability, 0.5);
  EXPECT_EQ(spec->seed, 7u);

  auto bare = robust::ParseFailpointSpec("just.a.name");
  ASSERT_TRUE(bare.ok());
  EXPECT_EQ(bare->after, 0u);
  EXPECT_DOUBLE_EQ(bare->probability, 1.0);
}

TEST_F(RobustTest, ParseFailpointSpecRejectsMalformed) {
  for (const char* bad :
       {"", ":times=1", "fp:times", "fp:times=x", "fp:prob=1.5", "fp:prob=0",
        "fp:bogus=3"}) {
    auto spec = robust::ParseFailpointSpec(bad);
    EXPECT_FALSE(spec.ok()) << "accepted '" << bad << "'";
    EXPECT_EQ(spec.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST_F(RobustTest, NothingArmedIsAlwaysOk) {
  EXPECT_TRUE(robust::CheckFailpoint("never.armed").ok());
}

TEST_F(RobustTest, AfterAndTimesWindowTheFires) {
  ASSERT_TRUE(robust::ArmFailpointsFromString("fp.win:after=2,times=2").ok());
  std::vector<bool> fired;
  for (int i = 0; i < 6; ++i) {
    fired.push_back(!robust::CheckFailpoint("fp.win").ok());
  }
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true, true, false,
                                      false}));
  EXPECT_EQ(robust::FailpointHits("fp.win"), 6u);
  EXPECT_EQ(robust::FailpointFires("fp.win"), 2u);
  // A fire surfaces as a retryable Internal error naming the failpoint.
  robust::DisarmAllFailpoints();
  ASSERT_TRUE(robust::ArmFailpointsFromString("fp.win").ok());
  const Status fire = robust::CheckFailpoint("fp.win");
  EXPECT_EQ(fire.code(), StatusCode::kInternal);
  EXPECT_NE(fire.message().find("fp.win"), std::string::npos);
  EXPECT_TRUE(robust::IsRetryable(fire));
}

TEST_F(RobustTest, ProbabilisticFiringIsAPureFunctionOfSeed) {
  auto pattern_with = [](std::uint64_t seed) {
    robust::FailpointSpec spec;
    spec.name = "fp.prob";
    spec.probability = 0.3;
    spec.seed = seed;
    EXPECT_TRUE(robust::ArmFailpoint(spec).ok());
    std::vector<bool> pattern;
    for (int i = 0; i < 200; ++i) {
      pattern.push_back(!robust::CheckFailpoint("fp.prob").ok());
    }
    robust::DisarmFailpoint("fp.prob");
    return pattern;
  };
  const std::vector<bool> a = pattern_with(42);
  const std::vector<bool> b = pattern_with(42);
  const std::vector<bool> c = pattern_with(43);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  // ~30% of 200 eligible hits fire; wide bounds keep this deterministic in
  // spirit (the pattern itself is already exactly reproducible).
  const std::size_t fires = std::count(a.begin(), a.end(), true);
  EXPECT_GT(fires, 20u);
  EXPECT_LT(fires, 120u);
}

TEST_F(RobustTest, ArmedListAndDisarm) {
  ASSERT_TRUE(robust::ArmFailpointsFromString("fp.a;fp.b:times=1").ok());
  const std::vector<std::string> armed = robust::ArmedFailpoints();
  EXPECT_EQ(armed.size(), 2u);
  robust::DisarmFailpoint("fp.a");
  EXPECT_TRUE(robust::CheckFailpoint("fp.a").ok());
  EXPECT_FALSE(robust::CheckFailpoint("fp.b").ok());
  EXPECT_FALSE(robust::ArmFailpointsFromString("fp.c:prob=7").ok());
}

// ------------------------------------------------------------------ retry

TEST_F(RobustTest, BackoffScheduleIsDeterministicAndCapped) {
  robust::RetryPolicy policy;
  policy.max_retries = 6;
  policy.base_backoff_ms = 2.0;
  policy.max_backoff_ms = 20.0;
  policy.multiplier = 3.0;
  policy.jitter_fraction = 0.5;
  policy.seed = 9;
  const std::vector<double> a = robust::BackoffSchedule(policy);
  const std::vector<double> b = robust::BackoffSchedule(policy);
  ASSERT_EQ(a.size(), 6u);
  EXPECT_EQ(a, b);
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double raw = std::min(policy.max_backoff_ms,
                                policy.base_backoff_ms *
                                    std::pow(policy.multiplier, double(i)));
    EXPECT_GE(a[i], raw * (1.0 - policy.jitter_fraction));
    EXPECT_LE(a[i], raw);
  }
}

TEST_F(RobustTest, SleeperObservesExactlyTheBackoffSchedule) {
  robust::RetryPolicy policy;
  policy.max_retries = 3;
  policy.seed = 17;
  std::vector<double> slept;
  robust::SetRetrySleeperForTest(
      [&slept](double ms) { slept.push_back(ms); });
  obs::GetCounter("robust.retry_exhausted").Reset();
  const Status out = robust::RetryStatusCall(
      policy, "test.always_fails",
      []() { return Status::IOError("transient"); });
  EXPECT_EQ(out.code(), StatusCode::kIOError);
  // Delays between the 4 attempts must be the policy's published schedule —
  // asserting on collected values, never on wall-clock.
  EXPECT_EQ(slept, robust::BackoffSchedule(policy));
  EXPECT_EQ(obs::GetCounter("robust.retry_exhausted").value(), 1u);
}

TEST_F(RobustTest, RetryHealsTransientFailures) {
  robust::RetryPolicy policy;
  policy.max_retries = 4;
  robust::SetRetrySleeperForTest([](double) {});
  obs::GetCounter("robust.retry_attempts").Reset();
  obs::GetCounter("robust.retry_success").Reset();
  int calls = 0;
  auto result = robust::RetryCall<int>(
      policy, "test.flaky", [&calls]() -> Result<int> {
        if (++calls < 3) return Status::IOError("not yet");
        return 41 + 1;
      });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(obs::GetCounter("robust.retry_attempts").value(), 2u);
  EXPECT_EQ(obs::GetCounter("robust.retry_success").value(), 1u);
}

TEST_F(RobustTest, DataLossIsNeverRetried) {
  robust::RetryPolicy policy;
  policy.max_retries = 5;
  std::vector<double> slept;
  robust::SetRetrySleeperForTest(
      [&slept](double ms) { slept.push_back(ms); });
  int calls = 0;
  const Status out = robust::RetryStatusCall(
      policy, "test.corrupt", [&calls]() {
        ++calls;
        return Status::DataLoss("checksum mismatch");
      });
  EXPECT_EQ(out.code(), StatusCode::kDataLoss);
  EXPECT_EQ(calls, 1);
  EXPECT_TRUE(slept.empty());
  EXPECT_FALSE(robust::IsRetryable(out));
}

// --------------------------------------------------------- durable chunk IO

TEST_F(RobustTest, AtomicWriteFileCleansUpOnWriterFailure) {
  const std::string path = Path("f.txt");
  const Status failed = robust::AtomicWriteFile(
      path, [](const std::string&) { return Status::IOError("nope"); });
  EXPECT_FALSE(failed.ok());
  EXPECT_FALSE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(robust::TempPathFor(path)));

  ASSERT_TRUE(robust::AtomicWriteFile(path, [](const std::string& tmp) {
                std::ofstream out(tmp);
                out << "payload";
                return out ? Status::OK() : Status::IOError("write");
              }).ok());
  EXPECT_TRUE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(robust::TempPathFor(path)));
}

TEST_F(RobustTest, ChunkStoreLeavesNoTemporaries) {
  auto store = io::ChunkStore::Create(Path("store"), {4, 4}, {2, 2});
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(store->Write(SmallTensor()).ok());
  for (const auto& entry :
       std::filesystem::directory_iterator(Path("store"))) {
    EXPECT_EQ(entry.path().string().find(".tmp"), std::string::npos)
        << "stray temporary " << entry.path();
  }
}

TEST_F(RobustTest, CorruptedChunkBlobSurfacesDataLoss) {
  auto store = io::ChunkStore::Create(Path("store"), {4, 4}, {2, 2});
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(store->Write(SmallTensor()).ok());
  // Flip one payload byte in one blob behind the store's back.
  bool corrupted = false;
  for (const auto& entry :
       std::filesystem::directory_iterator(Path("store"))) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("chunk_", 0) != 0) continue;
    std::fstream blob(entry.path(),
                      std::ios::in | std::ios::out | std::ios::binary);
    blob.seekg(24);
    char byte = 0;
    blob.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x40);
    blob.seekp(24);
    blob.write(&byte, 1);
    corrupted = true;
    break;
  }
  ASSERT_TRUE(corrupted);
  obs::GetCounter("io.crc_failures").Reset();
  auto all = store->ReadAll();
  ASSERT_FALSE(all.ok());
  EXPECT_EQ(all.status().code(), StatusCode::kDataLoss);
  EXPECT_GE(obs::GetCounter("io.crc_failures").value(), 1u);
  // DataLoss is not retryable: a raised retry policy must not mask it.
  robust::RetryPolicy policy;
  policy.max_retries = 3;
  robust::SetGlobalRetryPolicy(policy);
  robust::SetRetrySleeperForTest([](double) {});
  EXPECT_EQ(store->ReadAll().status().code(), StatusCode::kDataLoss);
}

TEST_F(RobustTest, TransientReadFailureHealedByGlobalRetry) {
  auto store = io::ChunkStore::Create(Path("store"), {4, 4}, {2, 2});
  ASSERT_TRUE(store.ok());
  const tensor::SparseTensor written = SmallTensor();
  ASSERT_TRUE(store->Write(written).ok());

  ASSERT_TRUE(
      robust::ArmFailpointsFromString("chunk_store.read_blob:times=1").ok());
  // Without retries the injected failure surfaces...
  auto failed = store->ReadAll();
  EXPECT_FALSE(failed.ok());
  // ...with retries the same injection self-heals.
  ASSERT_TRUE(
      robust::ArmFailpointsFromString("chunk_store.read_blob:times=1").ok());
  robust::RetryPolicy policy;
  policy.max_retries = 2;
  robust::SetGlobalRetryPolicy(policy);
  robust::SetRetrySleeperForTest([](double) {});
  auto healed = store->ReadAll();
  ASSERT_TRUE(healed.ok()) << healed.status();
  EXPECT_EQ(healed->NumNonZeros(), written.NumNonZeros());
  EXPECT_EQ(robust::FailpointFires("chunk_store.read_blob"), 1u);
}

// ------------------------------------------------------ checkpoint journal

TEST_F(RobustTest, JournalDropsTornFinalLine) {
  const std::string ckpt = Path("ckpt");
  {
    auto journal = robust::CheckpointJournal::Open(ckpt, "fp-1", false);
    ASSERT_TRUE(journal.ok()) << journal.status();
    ASSERT_TRUE(journal->Mark("phase.a", "1").ok());
    ASSERT_TRUE(journal->Mark("phase.b", "2").ok());
  }
  {
    // Simulate a crash mid-append: a final line with no newline.
    std::ofstream out(ckpt + "/journal.m2td",
                      std::ios::binary | std::ios::app);
    out << "mark phase.c 3";
  }
  auto resumed = robust::CheckpointJournal::Open(ckpt, "fp-1", true);
  ASSERT_TRUE(resumed.ok()) << resumed.status();
  EXPECT_EQ(resumed->NumMarks(), 2u);
  EXPECT_TRUE(resumed->Contains("phase.a"));
  EXPECT_TRUE(resumed->Contains("phase.b"));
  EXPECT_FALSE(resumed->Contains("phase.c"));
  EXPECT_EQ(resumed->ValueOf("phase.b"), "2");
}

TEST_F(RobustTest, JournalRejectsFingerprintMismatch) {
  const std::string ckpt = Path("ckpt");
  {
    auto journal = robust::CheckpointJournal::Open(ckpt, "config-A", false);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE(journal->Mark("done").ok());
  }
  auto wrong = robust::CheckpointJournal::Open(ckpt, "config-B", true);
  ASSERT_FALSE(wrong.ok());
  EXPECT_EQ(wrong.status().code(), StatusCode::kInvalidArgument);
  // resume=false wipes instead, so a reconfigured run can reuse the dir.
  auto fresh = robust::CheckpointJournal::Open(ckpt, "config-B", false);
  ASSERT_TRUE(fresh.ok()) << fresh.status();
  EXPECT_EQ(fresh->NumMarks(), 0u);
}

// --------------------------------------------- MapReduce task retry (DM2TD)

std::unique_ptr<ensemble::DynamicalSystemModel> PendulumModel(
    std::uint32_t resolution) {
  ensemble::ModelOptions options;
  options.parameter_resolution = resolution;
  options.time_resolution = resolution;
  auto model = ensemble::MakeDoublePendulumModel(options);
  EXPECT_TRUE(model.ok());
  return std::move(model).ValueOrDie();
}

/// Runs DM2TD under an armed mapreduce.map_task failpoint and asserts the
/// result equals the clean run's bit-for-bit (task replays are pure).
void ExpectDm2tdSurvivesInjection(const std::string& failpoint_spec,
                                  int max_retries) {
  auto model = PendulumModel(4);
  auto partition = core::MakePartition(5, {0});
  ASSERT_TRUE(partition.ok());
  auto subs = core::BuildSubEnsembles(model.get(), *partition, {});
  ASSERT_TRUE(subs.ok());

  core::DM2tdOptions options;
  options.ranks = std::vector<std::uint64_t>(5, 2);
  options.num_workers = 3;
  auto clean = core::DM2tdDecompose(*subs, *partition,
                                    model->space().Shape(), options);
  ASSERT_TRUE(clean.ok()) << clean.status();

  robust::SetRetrySleeperForTest([](double) {});
  obs::GetCounter("robust.retry_attempts").Reset();
  ASSERT_TRUE(robust::ArmFailpointsFromString(failpoint_spec).ok());
  options.retry.max_retries = max_retries;
  auto injected = core::DM2tdDecompose(*subs, *partition,
                                       model->space().Shape(), options);
  robust::DisarmAllFailpoints();
  ASSERT_TRUE(injected.ok()) << injected.status();
  EXPECT_GE(obs::GetCounter("robust.retry_attempts").value(), 1u);

  EXPECT_EQ(injected->join_nnz, clean->join_nnz);
  const tensor::DenseTensor& core_clean = clean->tucker.core;
  const tensor::DenseTensor& core_injected = injected->tucker.core;
  ASSERT_EQ(core_injected.shape(), core_clean.shape());
  for (std::uint64_t i = 0; i < core_clean.NumElements(); ++i) {
    EXPECT_EQ(core_injected.flat(i), core_clean.flat(i)) << "core[" << i
                                                         << "]";
  }
}

TEST_F(RobustTest, Dm2tdHealsDeterministicMapTaskFailures) {
  ExpectDm2tdSurvivesInjection("mapreduce.map_task:times=2",
                               /*max_retries=*/3);
}

TEST_F(RobustTest, Dm2tdHealsProbabilisticMapTaskFailures) {
  // prob=0.2 per eligible hit; generous retries keep the chance of a task
  // exhausting all attempts (0.2^9 per chain) out of flake territory.
  ExpectDm2tdSurvivesInjection("mapreduce.map_task:prob=0.2,seed=11",
                               /*max_retries=*/8);
}

TEST_F(RobustTest, Dm2tdHealsReduceTaskFailures) {
  ExpectDm2tdSurvivesInjection("mapreduce.reduce_task:times=2",
                               /*max_retries=*/3);
}

TEST_F(RobustTest, Dm2tdWithoutRetriesStillFailsCleanly) {
  auto model = PendulumModel(4);
  auto partition = core::MakePartition(5, {0});
  ASSERT_TRUE(partition.ok());
  auto subs = core::BuildSubEnsembles(model.get(), *partition, {});
  ASSERT_TRUE(subs.ok());
  ASSERT_TRUE(
      robust::ArmFailpointsFromString("mapreduce.map_task:times=1").ok());
  core::DM2tdOptions options;
  options.ranks = std::vector<std::uint64_t>(5, 2);
  auto result = core::DM2tdDecompose(*subs, *partition,
                                     model->space().Shape(), options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
}

// ------------------------------------------------- OOC checkpoint-resume

TEST_F(RobustTest, KilledOocRunResumesBitIdentical) {
  auto model = PendulumModel(5);
  auto partition = core::MakePartition(5, {0});
  ASSERT_TRUE(partition.ok());
  auto subs = core::BuildSubEnsembles(model.get(), *partition, {});
  ASSERT_TRUE(subs.ok());
  auto store1 = io::ChunkStore::Create(Path("s1"), subs->x1.shape(),
                                       {2, 2, 2});
  auto store2 = io::ChunkStore::Create(Path("s2"), subs->x2.shape(),
                                       {2, 2, 2});
  ASSERT_TRUE(store1.ok() && store2.ok());
  ASSERT_TRUE(store1->Write(subs->x1).ok());
  ASSERT_TRUE(store2->Write(subs->x2).ok());

  core::M2tdOptions options;
  options.ranks = std::vector<std::uint64_t>(5, 2);
  auto uninterrupted = core::M2tdDecomposeFromStores(
      *store1, *store2, *partition, model->space().Shape(), options);
  ASSERT_TRUE(uninterrupted.ok()) << uninterrupted.status();

  // Kill the run at the 4th pivot slab (of 5); snapshots every 2 slabs.
  core::OocCheckpointOptions checkpoint;
  checkpoint.checkpoint_dir = Path("ckpt");
  checkpoint.checkpoint_every = 2;
  ASSERT_TRUE(robust::ArmFailpointsFromString("ooc.slab:after=3").ok());
  auto killed = core::M2tdDecomposeFromStores(*store1, *store2, *partition,
                                              model->space().Shape(),
                                              options, checkpoint);
  robust::DisarmAllFailpoints();
  ASSERT_FALSE(killed.ok());
  EXPECT_EQ(killed.status().code(), StatusCode::kInternal);

  obs::GetCounter("robust.ooc_resumes").Reset();
  checkpoint.resume = true;
  auto resumed = core::M2tdDecomposeFromStores(*store1, *store2, *partition,
                                               model->space().Shape(),
                                               options, checkpoint);
  ASSERT_TRUE(resumed.ok()) << resumed.status();
  EXPECT_EQ(obs::GetCounter("robust.ooc_resumes").value(), 1u);

  // Bit-identical, not merely close: the core is accumulated in a fixed
  // prefix order and snapshots round-trip doubles exactly.
  EXPECT_EQ(resumed->join_nnz, uninterrupted->join_nnz);
  const tensor::DenseTensor& core_a = uninterrupted->tucker.core;
  const tensor::DenseTensor& core_b = resumed->tucker.core;
  ASSERT_EQ(core_b.shape(), core_a.shape());
  for (std::uint64_t i = 0; i < core_a.NumElements(); ++i) {
    EXPECT_EQ(core_b.flat(i), core_a.flat(i)) << "core[" << i << "]";
  }
  ASSERT_EQ(resumed->tucker.factors.size(),
            uninterrupted->tucker.factors.size());
  for (std::size_t m = 0; m < uninterrupted->tucker.factors.size(); ++m) {
    const linalg::Matrix& fa = uninterrupted->tucker.factors[m];
    const linalg::Matrix& fb = resumed->tucker.factors[m];
    ASSERT_EQ(fb.rows(), fa.rows());
    ASSERT_EQ(fb.cols(), fa.cols());
    for (std::size_t i = 0; i < fa.rows(); ++i) {
      for (std::size_t j = 0; j < fa.cols(); ++j) {
        EXPECT_EQ(fb(i, j), fa(i, j)) << "factor " << m;
      }
    }
  }
}

// ------------------------------------------------- robust ensemble builds

TEST_F(RobustTest, FailedSimulationReplacedBudgetStaysExact) {
  auto model = PendulumModel(5);
  ASSERT_TRUE(robust::ArmFailpointsFromString("sim.trajectory:times=1").ok());
  obs::GetCounter("ensemble.failed_simulations").Reset();
  Rng rng(7);
  ensemble::EnsembleBuildOptions options;
  options.batch_size = 4;
  ensemble::EnsembleBuildReport report;
  auto built = ensemble::BuildConventionalEnsembleRobust(
      model.get(), ensemble::ConventionalScheme::kRandom, /*budget=*/10,
      &rng, options, &report);
  ASSERT_TRUE(built.ok()) << built.status();
  EXPECT_EQ(report.failed_simulations, 1u);
  EXPECT_GE(report.replacement_draws, 1u);
  EXPECT_EQ(report.simulations_kept, 10u);
  EXPECT_EQ(obs::GetCounter("ensemble.failed_simulations").value(), 1u);
  for (std::uint64_t e = 0; e < built->NumNonZeros(); ++e) {
    ASSERT_TRUE(std::isfinite(built->Value(e))) << "NaN leaked at " << e;
  }
}

TEST_F(RobustTest, KilledEnsembleBuildResumesFromCheckpoint) {
  auto model = PendulumModel(5);
  ensemble::EnsembleBuildOptions options;
  options.batch_size = 4;
  options.checkpoint_dir = Path("ckpt");

  // Fires from the second freshly simulated batch on: batch 0 lands on
  // disk, then the build dies.
  ASSERT_TRUE(robust::ArmFailpointsFromString("ensemble.batch:after=1").ok());
  Rng rng1(99);
  auto killed = ensemble::BuildConventionalEnsembleRobust(
      model.get(), ensemble::ConventionalScheme::kRandom, /*budget=*/12,
      &rng1, options);
  robust::DisarmAllFailpoints();
  ASSERT_FALSE(killed.ok());

  options.resume = true;
  Rng rng2(99);
  ensemble::EnsembleBuildReport report;
  auto resumed = ensemble::BuildConventionalEnsembleRobust(
      model.get(), ensemble::ConventionalScheme::kRandom, /*budget=*/12,
      &rng2, options, &report);
  ASSERT_TRUE(resumed.ok()) << resumed.status();
  EXPECT_GE(report.batches_resumed, 1u);
  EXPECT_EQ(report.simulations_kept, 12u);
  EXPECT_GT(resumed->NumNonZeros(), 0u);

  // A clean, uncheckpointed build with the same seed is the reference: the
  // resumed tensor holds the same simulations.
  Rng rng3(99);
  auto reference = ensemble::BuildConventionalEnsemble(
      model.get(), ensemble::ConventionalScheme::kRandom, /*budget=*/12,
      &rng3);
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(resumed->NumNonZeros(), reference->NumNonZeros());
}

// ------------------------------------------------- cooperative cancellation

TEST_F(RobustTest, DefaultTokenNeverFires) {
  robust::CancelToken token;
  EXPECT_FALSE(token.CanBeCancelled());
  EXPECT_FALSE(token.IsCancelled());
  EXPECT_TRUE(token.CheckCancel().ok());
  EXPECT_EQ(token.cause(), robust::CancelCause::kNone);
}

TEST_F(RobustTest, CancelPropagatesToChildrenNeverToParents) {
  robust::CancelSource root;
  robust::CancelSource child(root.token());
  EXPECT_FALSE(child.token().IsCancelled());

  child.Cancel();
  EXPECT_TRUE(child.token().IsCancelled());
  EXPECT_FALSE(root.token().IsCancelled());

  robust::CancelSource root2;
  robust::CancelSource child2(root2.token());
  robust::CancelSource grandchild(child2.token());
  root2.Cancel();
  EXPECT_TRUE(child2.token().IsCancelled());
  EXPECT_TRUE(grandchild.token().IsCancelled());
  EXPECT_EQ(grandchild.token().cause(), robust::CancelCause::kCancelled);
}

TEST_F(RobustTest, ExpiredDeadlineFiresDeadlineExceeded) {
  robust::CancelSource source(robust::Deadline::AfterMillis(-1.0));
  EXPECT_TRUE(source.token().IsCancelled());
  EXPECT_EQ(source.token().cause(), robust::CancelCause::kDeadlineExceeded);
  const Status status = source.token().CheckCancel();
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(robust::IsCancellation(status));
  EXPECT_FALSE(robust::IsRetryable(status));
}

TEST_F(RobustTest, ChildInheritsExpiredParentDeadlineLazily) {
  robust::CancelSource root(robust::Deadline::AfterMillis(-1.0));
  // The child itself has no deadline; its token observes the parent's
  // expiry through the lazy parent walk.
  robust::CancelSource child(root.token());
  EXPECT_EQ(child.token().cause(), robust::CancelCause::kDeadlineExceeded);
}

TEST_F(RobustTest, WaitForMillisReturnsImmediatelyWhenCancelled) {
  robust::CancelSource source;
  source.Cancel();
  const auto start = std::chrono::steady_clock::now();
  EXPECT_TRUE(source.token().WaitForMillis(10'000));
  // Far below the requested 10 s — the wait was interrupted, not served.
  EXPECT_LT(std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          start)
                .count(),
            5.0);
}

TEST_F(RobustTest, CancelScopeInstallsAndRestoresAmbientToken) {
  EXPECT_FALSE(robust::CurrentCancelToken().CanBeCancelled());
  robust::CancelSource source;
  {
    robust::CancelScope scope(source.token());
    EXPECT_TRUE(robust::CurrentCancelToken().CanBeCancelled());
    EXPECT_TRUE(robust::CheckCancelled().ok());
    source.Cancel();
    EXPECT_EQ(robust::CheckCancelled().code(), StatusCode::kCancelled);
  }
  EXPECT_TRUE(robust::CheckCancelled().ok());
  EXPECT_FALSE(robust::CurrentCancelToken().CanBeCancelled());
}

TEST_F(RobustTest, CancelledErrorRoundTripsToStatus) {
  const robust::CancelledError error(robust::CancelCause::kDeadlineExceeded);
  EXPECT_EQ(error.cause(), robust::CancelCause::kDeadlineExceeded);
  EXPECT_EQ(error.ToStatus().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(robust::StatusFromCause(robust::CancelCause::kNone).code(),
            StatusCode::kOk);
  EXPECT_STREQ(robust::CancelCauseName(robust::CancelCause::kCancelled),
               "cancelled");
}

// ------------------------------------------------- interruptible backoff

TEST_F(RobustTest, CancelledRetryReturnsCancelledWithoutSleeping) {
  std::vector<double> sleeps;
  robust::SetRetrySleeperForTest(
      [&sleeps](double ms) { sleeps.push_back(ms); });
  robust::RetryPolicy policy;
  policy.max_retries = 5;

  robust::CancelSource source;
  source.Cancel();
  robust::CancelScope scope(source.token());
  int attempts = 0;
  const Status status =
      robust::RetryStatusCall(policy, "op", [&attempts]() {
        ++attempts;
        return Status::IOError("flaky");
      });
  // The retryable failure is eclipsed by the fired token: Cancelled comes
  // back immediately, after the one attempt already in flight and with no
  // backoff wait performed.
  EXPECT_EQ(status.code(), StatusCode::kCancelled);
  EXPECT_EQ(attempts, 1);
  EXPECT_TRUE(sleeps.empty());
}

TEST_F(RobustTest, RetryBackoffInterruptedMidWait) {
  robust::CancelSource source;
  std::vector<double> sleeps;
  robust::SetRetrySleeperForTest([&](double ms) {
    sleeps.push_back(ms);
    source.Cancel();  // fires while the backoff wait is in progress
  });
  robust::RetryPolicy policy;
  policy.max_retries = 5;
  robust::CancelScope scope(source.token());
  int attempts = 0;
  const Status status = robust::RetryStatusCall(policy, "op", [&]() {
    ++attempts;
    return Status::IOError("flaky");
  });
  EXPECT_EQ(status.code(), StatusCode::kCancelled);
  EXPECT_EQ(attempts, 1);
  EXPECT_EQ(sleeps.size(), 1u);
}

TEST_F(RobustTest, CancellationStatusFromOperationIsNeverRetried) {
  std::vector<double> sleeps;
  robust::SetRetrySleeperForTest(
      [&sleeps](double ms) { sleeps.push_back(ms); });
  robust::RetryPolicy policy;
  policy.max_retries = 5;
  int attempts = 0;
  const Status status = robust::RetryStatusCall(policy, "op", [&]() {
    ++attempts;
    return Status::Cancelled("stop requested");
  });
  EXPECT_EQ(status.code(), StatusCode::kCancelled);
  EXPECT_EQ(attempts, 1);
  EXPECT_TRUE(sleeps.empty());
}

TEST_F(RobustTest, RetryCallValueFlavorHonoursCancellation) {
  robust::SetRetrySleeperForTest([](double) {});
  robust::RetryPolicy policy;
  policy.max_retries = 3;
  robust::CancelSource source;
  source.Cancel();
  robust::CancelScope scope(source.token());
  const Result<int> result = robust::RetryCall<int>(
      policy, "op", []() -> Result<int> { return Status::IOError("flaky"); });
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
}

// ------------------------------------------------------------- watchdog

TEST_F(RobustTest, WatchdogReportsSoftStall) {
  robust::WatchdogOptions options;
  options.soft_budget_ms = 5.0;
  options.poll_interval_ms = 2.0;
  options.queue_depth_fn = [] { return std::size_t{0}; };
  robust::Watchdog watchdog(options);
  ASSERT_TRUE(watchdog.Start());
  {
    obs::ObsSpan span("stalling_phase");
    for (int i = 0; i < 400 && watchdog.stalls() == 0; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  watchdog.Stop();
  EXPECT_GE(watchdog.stalls(), 1u);
  EXPECT_FALSE(watchdog.hard_fired());
  EXPECT_GE(obs::GetCounter("robust.watchdog.stalls").value(), 1u);
}

TEST_F(RobustTest, WatchdogHardBudgetFiresSource) {
  robust::CancelSource source;
  robust::WatchdogOptions options;
  options.soft_budget_ms = 2.0;
  options.hard_budget_ms = 6.0;
  options.poll_interval_ms = 2.0;
  options.source = &source;
  robust::Watchdog watchdog(options);
  ASSERT_TRUE(watchdog.Start());
  {
    obs::ObsSpan span("hung_phase");
    for (int i = 0; i < 400 && !source.token().IsCancelled(); ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  watchdog.Stop();
  EXPECT_TRUE(watchdog.hard_fired());
  EXPECT_TRUE(source.token().IsCancelled());
  EXPECT_EQ(source.token().cause(), robust::CancelCause::kDeadlineExceeded);
}

TEST_F(RobustTest, OnlyOneWatchdogRunsAtATime) {
  robust::WatchdogOptions options;
  options.soft_budget_ms = 1000.0;
  robust::Watchdog first(options);
  ASSERT_TRUE(first.Start());
  robust::Watchdog second(options);
  EXPECT_FALSE(second.Start());
  first.Stop();
  EXPECT_TRUE(second.Start());
  second.Stop();
}

}  // namespace
}  // namespace m2td
