#include <algorithm>
#include <cmath>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/random.h"
#include "util/result.h"
#include "util/status.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace m2td {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsCarryCodeAndMessage) {
  Status s = Status::InvalidArgument("bad rank");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad rank");
  EXPECT_EQ(s.ToString(), "Invalid argument: bad rank");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kOutOfRange,
        StatusCode::kNotFound, StatusCode::kAlreadyExists, StatusCode::kIOError,
        StatusCode::kUnimplemented, StatusCode::kInternal}) {
    EXPECT_STRNE(StatusCodeToString(code), "Unknown");
  }
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status::OK());
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

Status FailingOperation() { return Status::IOError("disk on fire"); }

Status PropagatingOperation() {
  M2TD_RETURN_IF_ERROR(FailingOperation());
  ADD_FAILURE() << "should not reach past the failing call";
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  Status s = PropagatingOperation();
  EXPECT_EQ(s.code(), StatusCode::kIOError);
}

// ---------------------------------------------------------------- Result

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Result<int> DoubledOrError(int x) {
  M2TD_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return 2 * v;
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = ParsePositive(21);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie(), 21);
  EXPECT_EQ(*r, 21);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = ParsePositive(-1);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(r.ValueOr(7), 7);
}

TEST(ResultTest, AssignOrReturnHappyPath) {
  Result<int> r = DoubledOrError(5);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 10);
}

TEST(ResultTest, AssignOrReturnErrorPath) {
  Result<int> r = DoubledOrError(0);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(3));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(*v, 3);
}

// ------------------------------------------------------------------- Rng

TEST(RngTest, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformIntInBounds) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 10ULL, 1000ULL, (1ULL << 40)}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.UniformInt(bound), bound);
    }
  }
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(7);
  double min_seen = 1.0, max_seen = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.UniformDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    min_seen = std::min(min_seen, v);
    max_seen = std::max(max_seen, v);
  }
  EXPECT_LT(min_seen, 0.05);
  EXPECT_GT(max_seen, 0.95);
}

TEST(RngTest, UniformIntIsRoughlyUniform) {
  Rng rng(123);
  std::vector<int> counts(10, 0);
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) ++counts[rng.UniformInt(10)];
  for (int c : counts) {
    EXPECT_GT(c, draws / 10 * 0.9);
    EXPECT_LT(c, draws / 10 * 1.1);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(99);
  const int n = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(RngTest, SampleWithoutReplacementDistinctAndInRange) {
  Rng rng(5);
  auto sample = rng.SampleWithoutReplacement(100, 30);
  ASSERT_EQ(sample.size(), 30u);
  std::set<std::uint64_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (std::uint64_t v : sample) EXPECT_LT(v, 100u);
}

TEST(RngTest, SampleWithoutReplacementFullRange) {
  Rng rng(5);
  auto sample = rng.SampleWithoutReplacement(10, 10);
  std::set<std::uint64_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(RngTest, SampleWithoutReplacementEdgeCases) {
  Rng rng(5);
  EXPECT_TRUE(rng.SampleWithoutReplacement(10, 0).empty());
  EXPECT_TRUE(rng.SampleWithoutReplacement(0, 3).empty());
  // k > n clamps to n.
  EXPECT_EQ(rng.SampleWithoutReplacement(4, 9).size(), 4u);
}

// ----------------------------------------------------------- string_util

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"a"}, ","), "a");
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(StringUtilTest, Split) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
}

TEST(StringUtilTest, ShapeToString) {
  EXPECT_EQ(ShapeToString({}), "[]");
  EXPECT_EQ(ShapeToString({3, 4, 5}), "[3, 4, 5]");
}

TEST(StringUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 3.14159), "3.14");
  // Long output forces the allocation path.
  const std::string long_out = StrFormat("%0512d", 1);
  EXPECT_EQ(long_out.size(), 512u);
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  a b  "), "a b");
  EXPECT_EQ(Trim("a"), "a");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
}

// ------------------------------------------------------------------ Timer

TEST(TimerTest, MeasuresNonNegativeMonotonicTime) {
  Timer timer;
  const double t1 = timer.ElapsedSeconds();
  EXPECT_GE(t1, 0.0);
  double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += std::sqrt(i);
  EXPECT_GT(sink, 0.0);  // also keeps the loop from being optimized out
  const double t2 = timer.ElapsedSeconds();
  EXPECT_GE(t2, t1);
  timer.Restart();
  EXPECT_LE(timer.ElapsedSeconds(), t2 + 1.0);
}

TEST(TimerTest, StopFreezesElapsedTime) {
  Timer timer;
  EXPECT_TRUE(timer.IsRunning());
  timer.Stop();
  EXPECT_FALSE(timer.IsRunning());
  const double stopped = timer.ElapsedSeconds();
  EXPECT_GE(stopped, 0.0);
  // While stopped, the reading must not advance.
  double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += std::sqrt(i);
  EXPECT_GT(sink, 0.0);
  EXPECT_EQ(timer.ElapsedSeconds(), stopped);
  // Stopping again is a no-op.
  timer.Stop();
  EXPECT_EQ(timer.ElapsedSeconds(), stopped);
}

TEST(TimerTest, ResumeAccumulatesAcrossSegments) {
  Timer timer;
  timer.Stop();
  const double first = timer.ElapsedSeconds();
  timer.Resume();
  EXPECT_TRUE(timer.IsRunning());
  double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += std::sqrt(i);
  EXPECT_GT(sink, 0.0);
  timer.Stop();
  // The second segment adds on top of the first.
  EXPECT_GE(timer.ElapsedSeconds(), first);
  // Resuming a running timer is a no-op.
  timer.Resume();
  timer.Resume();
  EXPECT_TRUE(timer.IsRunning());
}

TEST(TimerTest, RestartClearsAccumulation) {
  Timer timer;
  double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += std::sqrt(i);
  EXPECT_GT(sink, 0.0);
  timer.Stop();
  timer.Restart();
  EXPECT_TRUE(timer.IsRunning());
  EXPECT_LT(timer.ElapsedSeconds(), 1.0);
}

}  // namespace
}  // namespace m2td
