#include <cmath>
#include <numbers>
#include <vector>

#include <gtest/gtest.h>

#include "sim/lorenz.h"
#include "sim/ode.h"
#include "sim/pendulum.h"

namespace m2td::sim {
namespace {

// ---------------------------------------------------------------- RK4

/// dx/dt = -x has the exact solution x0 * exp(-t).
class ExponentialDecay : public OdeSystem {
 public:
  std::size_t StateSize() const override { return 1; }
  void Derivative(double /*t*/, const std::vector<double>& state,
                  std::vector<double>* d) const override {
    (*d)[0] = -state[0];
  }
};

TEST(Rk4Test, MatchesExponentialDecay) {
  ExponentialDecay system;
  Rk4Options options;
  options.dt = 0.01;
  options.num_steps = 100;
  options.record_every = 10;
  auto trajectory = IntegrateRk4(system, {1.0}, options);
  ASSERT_TRUE(trajectory.ok());
  ASSERT_EQ(trajectory->NumSamples(), 11u);
  for (std::size_t s = 0; s < trajectory->NumSamples(); ++s) {
    const double t = trajectory->times[s];
    EXPECT_NEAR(trajectory->observables[s][0], std::exp(-t), 1e-9)
        << "sample " << s;
  }
}

TEST(Rk4Test, FourthOrderConvergence) {
  // Halving dt should reduce the endpoint error by ~2^4.
  ExponentialDecay system;
  auto endpoint_error = [&](double dt, int steps) {
    Rk4Options options;
    options.dt = dt;
    options.num_steps = steps;
    options.record_every = steps;
    auto trajectory = IntegrateRk4(system, {1.0}, options);
    EXPECT_TRUE(trajectory.ok());
    return std::fabs(trajectory->observables.back()[0] - std::exp(-dt * steps));
  };
  const double e1 = endpoint_error(0.2, 10);
  const double e2 = endpoint_error(0.1, 20);
  EXPECT_GT(e1 / e2, 10.0);  // ideal 16, allow slack
}

TEST(Rk4Test, InputValidation) {
  ExponentialDecay system;
  Rk4Options bad;
  bad.dt = -1.0;
  EXPECT_FALSE(IntegrateRk4(system, {1.0}, bad).ok());
  Rk4Options ok_options;
  EXPECT_FALSE(IntegrateRk4(system, {1.0, 2.0}, ok_options).ok());
  ok_options.num_steps = 0;
  EXPECT_FALSE(IntegrateRk4(system, {1.0}, ok_options).ok());
}

TEST(Rk4Test, ObservableDistanceIsEuclidean) {
  Trajectory a, b;
  a.times = {0.0};
  b.times = {0.0};
  a.observables = {{0.0, 0.0}};
  b.observables = {{3.0, 4.0}};
  EXPECT_DOUBLE_EQ(ObservableDistance(a, b, 0), 5.0);
  EXPECT_DOUBLE_EQ(ObservableDistance(a, a, 0), 0.0);
}

// ---------------------------------------------------------- ChainPendulum

TEST(ChainPendulumTest, CreateValidation) {
  EXPECT_FALSE(ChainPendulum::Create({}).ok());
  EXPECT_FALSE(ChainPendulum::Create({1.0, -1.0}).ok());
  EXPECT_FALSE(ChainPendulum::Create({1.0}, 9.81, -0.1).ok());
  EXPECT_FALSE(
      ChainPendulum::Create(std::vector<double>(9, 1.0)).ok());
  EXPECT_TRUE(ChainPendulum::Create({1.0, 2.0, 3.0}).ok());
}

TEST(ChainPendulumTest, SinglePendulumSmallAngleFrequency) {
  // Small-angle single pendulum: theta(t) ~= theta0 cos(sqrt(g/L) t).
  auto pendulum = ChainPendulum::Create({1.0}, 9.81);
  ASSERT_TRUE(pendulum.ok());
  const double theta0 = 0.01;
  Rk4Options options;
  options.dt = 0.001;
  options.num_steps = 2000;
  options.record_every = 100;
  auto trajectory =
      IntegrateRk4(*pendulum, pendulum->InitialState({theta0}), options);
  ASSERT_TRUE(trajectory.ok());
  const double omega = std::sqrt(9.81);
  for (std::size_t s = 0; s < trajectory->NumSamples(); ++s) {
    const double t = trajectory->times[s];
    EXPECT_NEAR(trajectory->observables[s][0], theta0 * std::cos(omega * t),
                1e-4 * theta0 + 1e-7)
        << "t=" << t;
  }
}

TEST(ChainPendulumTest, MatchesClosedFormDoublePendulum) {
  auto chain = ChainPendulum::Create({1.3, 0.7});
  ASSERT_TRUE(chain.ok());
  DoublePendulumReference reference(1.3, 0.7);
  Rk4Options options;
  options.dt = 0.002;
  options.num_steps = 1500;
  options.record_every = 100;
  const std::vector<double> initial = chain->InitialState({0.9, -0.4});
  auto t1 = IntegrateRk4(*chain, initial, options);
  auto t2 = IntegrateRk4(reference, initial, options);
  ASSERT_TRUE(t1.ok() && t2.ok());
  for (std::size_t s = 0; s < t1->NumSamples(); ++s) {
    EXPECT_NEAR(t1->observables[s][0], t2->observables[s][0], 1e-6)
        << "sample " << s;
    EXPECT_NEAR(t1->observables[s][1], t2->observables[s][1], 1e-6)
        << "sample " << s;
  }
}

TEST(ChainPendulumTest, EnergyConservedWithoutFriction) {
  auto pendulum = ChainPendulum::Create({1.0, 2.0, 0.5});
  ASSERT_TRUE(pendulum.ok());
  const std::vector<double> initial =
      pendulum->InitialState({1.0, 0.5, -0.3});
  const double e0 = pendulum->TotalEnergy(initial);

  Rk4Options options;
  options.dt = 0.0005;
  options.num_steps = 4000;
  options.record_every = 4000;
  // Integrate with a wrapper whose observable is the full state, so the
  // recorded samples can be fed back into TotalEnergy.
  class Reporting : public OdeSystem {
   public:
    explicit Reporting(const ChainPendulum* p) : p_(p) {}
    std::size_t StateSize() const override { return p_->StateSize(); }
    void Derivative(double t, const std::vector<double>& s,
                    std::vector<double>* d) const override {
      p_->Derivative(t, s, d);
    }
   private:
    const ChainPendulum* p_;
  };
  Reporting reporting(&*pendulum);
  auto trajectory = IntegrateRk4(reporting, initial, options);
  ASSERT_TRUE(trajectory.ok());
  const double e1 = pendulum->TotalEnergy(trajectory->observables.back());
  EXPECT_NEAR(e1, e0, 1e-6 * std::fabs(e0) + 1e-8);
}

TEST(ChainPendulumTest, FrictionDissipatesEnergy) {
  auto pendulum = ChainPendulum::Create({1.0, 1.0, 1.0}, 9.81, 0.3);
  ASSERT_TRUE(pendulum.ok());
  const std::vector<double> initial = pendulum->InitialState({1.2, 0.8, 0.4});
  class Reporting : public OdeSystem {
   public:
    explicit Reporting(const ChainPendulum* p) : p_(p) {}
    std::size_t StateSize() const override { return p_->StateSize(); }
    void Derivative(double t, const std::vector<double>& s,
                    std::vector<double>* d) const override {
      p_->Derivative(t, s, d);
    }
   private:
    const ChainPendulum* p_;
  };
  Reporting reporting(&*pendulum);
  Rk4Options options;
  options.dt = 0.001;
  options.num_steps = 3000;
  options.record_every = 1000;
  auto trajectory = IntegrateRk4(reporting, initial, options);
  ASSERT_TRUE(trajectory.ok());
  double last_energy = pendulum->TotalEnergy(trajectory->observables[0]);
  for (std::size_t s = 1; s < trajectory->NumSamples(); ++s) {
    const double energy = pendulum->TotalEnergy(trajectory->observables[s]);
    EXPECT_LT(energy, last_energy) << "sample " << s;
    last_energy = energy;
  }
}

TEST(ChainPendulumTest, ObservableIsAnglesOnly) {
  auto pendulum = ChainPendulum::Create({1.0, 1.0});
  ASSERT_TRUE(pendulum.ok());
  const std::vector<double> state = {0.1, 0.2, 5.0, 6.0};
  const std::vector<double> obs = pendulum->Observable(state);
  EXPECT_EQ(obs, (std::vector<double>{0.1, 0.2}));
}

TEST(ChainPendulumTest, AtRestStaysAtRest) {
  auto pendulum = ChainPendulum::Create({1.0, 1.0});
  ASSERT_TRUE(pendulum.ok());
  Rk4Options options;
  options.dt = 0.01;
  options.num_steps = 100;
  options.record_every = 10;
  auto trajectory = IntegrateRk4(
      *pendulum, pendulum->InitialState({0.0, 0.0}), options);
  ASSERT_TRUE(trajectory.ok());
  for (const auto& obs : trajectory->observables) {
    EXPECT_NEAR(obs[0], 0.0, 1e-12);
    EXPECT_NEAR(obs[1], 0.0, 1e-12);
  }
}

// ----------------------------------------------------------------- Lorenz

TEST(LorenzTest, FixedPointStaysFixed) {
  // For the classic parameters, C+ = (sqrt(beta(rho-1)), same, rho-1) is an
  // equilibrium.
  const double sigma = 10.0, rho = 14.0, beta = 8.0 / 3.0;
  const double c = std::sqrt(beta * (rho - 1.0));
  LorenzSystem lorenz(sigma, rho, beta);
  std::vector<double> d(3);
  lorenz.Derivative(0.0, {c, c, rho - 1.0}, &d);
  EXPECT_NEAR(d[0], 0.0, 1e-12);
  EXPECT_NEAR(d[1], 0.0, 1e-12);
  EXPECT_NEAR(d[2], 0.0, 1e-12);
}

TEST(LorenzTest, TrajectoryStaysBounded) {
  LorenzSystem lorenz(10.0, 28.0, 8.0 / 3.0);
  Rk4Options options;
  options.dt = 0.005;
  options.num_steps = 4000;
  options.record_every = 100;
  auto trajectory = IntegrateRk4(
      lorenz, LorenzSystem::InitialState(1.0, 1.0, 25.0), options);
  ASSERT_TRUE(trajectory.ok());
  for (const auto& obs : trajectory->observables) {
    for (double v : obs) {
      ASSERT_TRUE(std::isfinite(v));
      ASSERT_LT(std::fabs(v), 100.0);
    }
  }
}

TEST(LorenzTest, SensitiveDependenceOnInitialCondition) {
  // Chaos: nearby starts diverge materially within a few time units.
  LorenzSystem lorenz(10.0, 28.0, 8.0 / 3.0);
  Rk4Options options;
  options.dt = 0.005;
  options.num_steps = 3000;
  options.record_every = 3000;
  auto a = IntegrateRk4(lorenz, {1.0, 1.0, 25.0}, options);
  auto b = IntegrateRk4(lorenz, {1.0, 1.0, 25.0 + 1e-4}, options);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_GT(ObservableDistance(*a, *b, a->NumSamples() - 1), 0.1);
}

TEST(LorenzTest, DerivativeMatchesEquations) {
  LorenzSystem lorenz(2.0, 3.0, 4.0);
  std::vector<double> d(3);
  lorenz.Derivative(0.0, {1.0, 2.0, 3.0}, &d);
  EXPECT_DOUBLE_EQ(d[0], 2.0 * (2.0 - 1.0));
  EXPECT_DOUBLE_EQ(d[1], 1.0 * (3.0 - 3.0) - 2.0);
  EXPECT_DOUBLE_EQ(d[2], 1.0 * 2.0 - 4.0 * 3.0);
}

}  // namespace
}  // namespace m2td::sim
