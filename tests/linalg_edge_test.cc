// Edge cases for the linear-algebra layer: degenerate spectra,
// rank-deficient inputs, zero matrices, extreme scales.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "linalg/eigen.h"
#include "linalg/kron.h"
#include "linalg/matrix.h"
#include "linalg/qr.h"
#include "linalg/rsvd.h"
#include "linalg/svd.h"
#include "obs/metrics.h"
#include "util/random.h"

namespace m2td::linalg {
namespace {

TEST(EigenEdgeTest, RepeatedEigenvaluesStillOrthonormal) {
  // 3x3 identity scaled: triple eigenvalue.
  Matrix a = Matrix::Identity(3);
  a.Scale(2.5);
  auto eig = SymmetricEigen(a);
  ASSERT_TRUE(eig.ok());
  for (double w : eig->eigenvalues) EXPECT_NEAR(w, 2.5, 1e-12);
  Matrix vtv = MultiplyTransA(eig->eigenvectors, eig->eigenvectors);
  EXPECT_LT(Matrix::MaxAbsDiff(vtv, Matrix::Identity(3)), 1e-10);
}

TEST(EigenEdgeTest, BlockDegenerateSpectrum) {
  // Two equal eigenvalues and one distinct.
  Matrix a(3, 3);
  a(0, 0) = 4.0;
  a(1, 1) = 4.0;
  a(2, 2) = 1.0;
  a(0, 1) = a(1, 0) = 0.0;
  auto eig = SymmetricEigen(a);
  ASSERT_TRUE(eig.ok());
  EXPECT_NEAR(eig->eigenvalues[0], 4.0, 1e-12);
  EXPECT_NEAR(eig->eigenvalues[1], 4.0, 1e-12);
  EXPECT_NEAR(eig->eigenvalues[2], 1.0, 1e-12);
}

TEST(EigenEdgeTest, ZeroMatrix) {
  auto eig = SymmetricEigen(Matrix(4, 4));
  ASSERT_TRUE(eig.ok());
  for (double w : eig->eigenvalues) EXPECT_EQ(w, 0.0);
  // Eigenvectors still orthonormal (identity basis).
  Matrix vtv = MultiplyTransA(eig->eigenvectors, eig->eigenvectors);
  EXPECT_LT(Matrix::MaxAbsDiff(vtv, Matrix::Identity(4)), 1e-12);
}

TEST(EigenEdgeTest, NegativeDefiniteSortedDescending) {
  Matrix a(2, 2);
  a(0, 0) = -3.0;
  a(1, 1) = -1.0;
  auto eig = SymmetricEigen(a);
  ASSERT_TRUE(eig.ok());
  EXPECT_NEAR(eig->eigenvalues[0], -1.0, 1e-12);
  EXPECT_NEAR(eig->eigenvalues[1], -3.0, 1e-12);
}

TEST(EigenEdgeTest, ExtremeScalesConverge) {
  Rng rng(4);
  for (double scale : {1e-150, 1e-8, 1e8, 1e120}) {
    Matrix a(5, 5);
    for (std::size_t i = 0; i < 5; ++i) {
      for (std::size_t j = i; j < 5; ++j) {
        a(i, j) = a(j, i) = rng.Gaussian() * scale;
      }
    }
    auto eig = SymmetricEigen(a);
    ASSERT_TRUE(eig.ok()) << "scale " << scale;
    // Reconstruction within relative tolerance.
    Matrix vw = eig->eigenvectors;
    for (std::size_t j = 0; j < 5; ++j) {
      for (std::size_t i = 0; i < 5; ++i) vw(i, j) *= eig->eigenvalues[j];
    }
    Matrix reconstructed = MultiplyTransB(vw, eig->eigenvectors);
    EXPECT_LT(Matrix::MaxAbsDiff(a, reconstructed), 1e-9 * scale)
        << "scale " << scale;
  }
}

TEST(EigenEdgeTest, NonConvergenceIsSurfacedNotFatal) {
  // A dense random symmetric matrix cannot be diagonalized to 1e-15
  // relative off-diagonal norm in a single Jacobi sweep, so this forces
  // the non-convergence path deterministically.
  obs::SetMetricsEnabled(true);
  obs::GetCounter("linalg.eigen.nonconverged").Reset();
  Rng rng(11);
  const std::size_t n = 12;
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      a(i, j) = a(j, i) = rng.Gaussian();
    }
  }
  JacobiOptions options;
  options.tolerance = 1e-15;
  options.max_sweeps = 1;
  auto eig = SymmetricEigen(a, options);
  ASSERT_TRUE(eig.ok());  // best-effort result, not an error
  EXPECT_FALSE(eig->converged);
  EXPECT_EQ(eig->sweeps, 1);
  EXPECT_EQ(obs::GetCounter("linalg.eigen.nonconverged").value(), 1u);
  // The partial result is still a valid orthonormal basis.
  Matrix vtv = MultiplyTransA(eig->eigenvectors, eig->eigenvectors);
  EXPECT_LT(Matrix::MaxAbsDiff(vtv, Matrix::Identity(n)), 1e-10);
  obs::SetMetricsEnabled(false);
}

TEST(QrEdgeTest, RankDeficientInputStillOrthonormalQ) {
  // Second column is a multiple of the first.
  Matrix a(4, 2);
  for (std::size_t i = 0; i < 4; ++i) {
    a(i, 0) = static_cast<double>(i + 1);
    a(i, 1) = 2.0 * static_cast<double>(i + 1);
  }
  auto qr = HouseholderQr(a);
  ASSERT_TRUE(qr.ok());
  Matrix reconstructed = Multiply(qr->q, qr->r);
  EXPECT_LT(Matrix::MaxAbsDiff(a, reconstructed), 1e-10);
  // R's trailing diagonal entry collapses to ~0.
  EXPECT_NEAR(qr->r(1, 1), 0.0, 1e-10);
}

TEST(QrEdgeTest, ZeroMatrix) {
  auto qr = HouseholderQr(Matrix(3, 2));
  ASSERT_TRUE(qr.ok());
  EXPECT_EQ(qr->r.FrobeniusNorm(), 0.0);
}

TEST(QrEdgeTest, SingleColumn) {
  Matrix a(3, 1, {3.0, 0.0, 4.0});
  auto qr = HouseholderQr(a);
  ASSERT_TRUE(qr.ok());
  EXPECT_NEAR(std::fabs(qr->r(0, 0)), 5.0, 1e-12);
  EXPECT_NEAR(qr->q.FrobeniusNorm(), 1.0, 1e-12);
}

TEST(SvdEdgeTest, ZeroMatrixSingularValuesZero) {
  auto svd = TruncatedSvd(Matrix(3, 5), 3);
  ASSERT_TRUE(svd.ok());
  for (double s : svd->singular_values) EXPECT_EQ(s, 0.0);
}

TEST(SvdEdgeTest, VectorShapedInputs) {
  // 1 x n and n x 1 matrices.
  Matrix row(1, 4, {1, 2, 2, 4});
  auto svd_row = TruncatedSvd(row, 1);
  ASSERT_TRUE(svd_row.ok());
  EXPECT_NEAR(svd_row->singular_values[0], 5.0, 1e-12);
  Matrix col(4, 1, {1, 2, 2, 4});
  auto svd_col = TruncatedSvd(col, 1);
  ASSERT_TRUE(svd_col.ok());
  EXPECT_NEAR(svd_col->singular_values[0], 5.0, 1e-12);
}

TEST(RsvdEdgeTest, RankExceedingMinDimensionClamps) {
  Rng rng(6);
  Matrix a(4, 10);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 10; ++j) a(i, j) = rng.Gaussian();
  }
  auto svd = RandomizedSvd(a, 100);
  ASSERT_TRUE(svd.ok());
  EXPECT_EQ(svd->singular_values.size(), 4u);
}

TEST(KronEdgeTest, IdentityKroneckerIdentity) {
  Matrix k = KroneckerProduct(Matrix::Identity(2), Matrix::Identity(3));
  EXPECT_LT(Matrix::MaxAbsDiff(k, Matrix::Identity(6)), 1e-15);
}

TEST(KronEdgeTest, MixedProductProperty) {
  // (A (x) B)(C (x) D) == (AC) (x) (BD).
  Rng rng(8);
  auto random = [&rng](std::size_t r, std::size_t c) {
    Matrix m(r, c);
    for (std::size_t i = 0; i < r; ++i) {
      for (std::size_t j = 0; j < c; ++j) m(i, j) = rng.Gaussian();
    }
    return m;
  };
  Matrix a = random(2, 3), b = random(2, 2);
  Matrix c = random(3, 2), d = random(2, 3);
  Matrix lhs = Multiply(KroneckerProduct(a, b), KroneckerProduct(c, d));
  Matrix rhs = KroneckerProduct(Multiply(a, c), Multiply(b, d));
  EXPECT_LT(Matrix::MaxAbsDiff(lhs, rhs), 1e-10);
}

TEST(PinvEdgeTest, ZeroMatrixPinvIsZero) {
  auto pinv = SymmetricPseudoInverse(Matrix(3, 3));
  ASSERT_TRUE(pinv.ok());
  EXPECT_EQ(pinv->FrobeniusNorm(), 0.0);
}

}  // namespace
}  // namespace m2td::linalg
