// Tests for the shared thread-pool execution layer (src/parallel/):
// chunking contracts, exception propagation, nested regions, the ordered
// reduction's bit-determinism across pool sizes, and a stress loop meant
// to run under ThreadSanitizer (cmake -DM2TD_ENABLE_TSAN=ON, then
// `ctest -L parallel`).

#include <atomic>
#include <cstdint>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "linalg/matrix.h"
#include "parallel/parallel_for.h"
#include "parallel/scratch.h"
#include "parallel/thread_pool.h"
#include "tensor/dense_tensor.h"
#include "tensor/hooi.h"
#include "tensor/matricize.h"
#include "tensor/sparse_tensor.h"
#include "tensor/ttm.h"
#include "util/random.h"

namespace m2td {
namespace {

using parallel::ParallelFor;
using parallel::ParallelReduce;
using parallel::SetGlobalThreads;

/// Restores the pool to a known size when a test exits.
class PoolGuard {
 public:
  explicit PoolGuard(int threads) { SetGlobalThreads(threads); }
  ~PoolGuard() { SetGlobalThreads(parallel::HardwareThreads()); }
};

TEST(ParallelForTest, EmptyRangeRunsNothing) {
  PoolGuard guard(4);
  std::atomic<int> calls{0};
  ParallelFor(5, 5, 1, [&](std::uint64_t, std::uint64_t) { ++calls; });
  ParallelFor(7, 3, 1, [&](std::uint64_t, std::uint64_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelForTest, RangeSmallerThanGrainIsOneInlineChunk) {
  PoolGuard guard(4);
  std::atomic<int> calls{0};
  std::uint64_t seen_begin = 99;
  std::uint64_t seen_end = 0;
  ParallelFor(2, 6, 100, [&](std::uint64_t b, std::uint64_t e) {
    ++calls;
    seen_begin = b;
    seen_end = e;
  });
  EXPECT_EQ(calls.load(), 1);
  EXPECT_EQ(seen_begin, 2u);
  EXPECT_EQ(seen_end, 6u);
}

TEST(ParallelForTest, EveryIndexVisitedExactlyOnce) {
  for (int threads : {1, 2, 8}) {
    PoolGuard guard(threads);
    constexpr std::uint64_t kRange = 1000;
    std::vector<std::atomic<int>> visits(kRange);
    ParallelFor(0, kRange, 7, [&](std::uint64_t b, std::uint64_t e) {
      for (std::uint64_t i = b; i < e; ++i) {
        visits[static_cast<std::size_t>(i)].fetch_add(1);
      }
    });
    for (std::uint64_t i = 0; i < kRange; ++i) {
      ASSERT_EQ(visits[static_cast<std::size_t>(i)].load(), 1)
          << "index " << i << " at " << threads << " threads";
    }
  }
}

TEST(ParallelForTest, ExceptionPropagatesExactlyOnce) {
  for (int threads : {1, 4}) {
    PoolGuard guard(threads);
    int caught = 0;
    try {
      // Throw from whichever chunk covers index 13 (with one thread the
      // whole range is a single inline chunk).
      ParallelFor(0, 64, 1, [&](std::uint64_t b, std::uint64_t e) {
        if (b <= 13 && 13 < e) throw std::runtime_error("boom");
      });
    } catch (const std::runtime_error& e) {
      ++caught;
      EXPECT_STREQ(e.what(), "boom");
    }
    EXPECT_EQ(caught, 1) << "at " << threads << " threads";
  }
}

TEST(ParallelForTest, ExceptionCancelsRemainingChunks) {
  PoolGuard guard(4);
  std::atomic<int> executed{0};
  EXPECT_THROW(
      ParallelFor(0, 10000, 1,
                  [&](std::uint64_t b, std::uint64_t) {
                    if (b == 0) throw std::runtime_error("early");
                    ++executed;
                  }),
      std::runtime_error);
  // Cancellation is advisory (claimed chunks may already be running), but
  // most of the region must have been skipped.
  EXPECT_LT(executed.load(), 10000);
}

TEST(ParallelForTest, NestedRegionsComplete) {
  PoolGuard guard(4);
  std::atomic<std::uint64_t> sum{0};
  ParallelFor(0, 8, 1, [&](std::uint64_t ob, std::uint64_t oe) {
    for (std::uint64_t o = ob; o < oe; ++o) {
      ParallelFor(0, 100, 10, [&](std::uint64_t b, std::uint64_t e) {
        for (std::uint64_t i = b; i < e; ++i) sum.fetch_add(i);
      });
    }
  });
  EXPECT_EQ(sum.load(), 8u * (99u * 100u / 2u));
}

TEST(ParallelPoolTest, SerialPoolRunsInline) {
  PoolGuard guard(1);
  EXPECT_EQ(parallel::GlobalThreads(), 1);
  std::vector<std::uint64_t> order;
  // With one thread everything runs on the caller; appends without a
  // mutex must be safe and ordered.
  ParallelFor(0, 100, 3, [&](std::uint64_t b, std::uint64_t e) {
    for (std::uint64_t i = b; i < e; ++i) order.push_back(i);
  });
  ASSERT_EQ(order.size(), 100u);
  for (std::uint64_t i = 0; i < 100; ++i) EXPECT_EQ(order[i], i);
}

TEST(ParallelPoolTest, SetGlobalThreadsClampsAndResizes) {
  PoolGuard guard(2);
  EXPECT_EQ(parallel::GlobalThreads(), 2);
  SetGlobalThreads(0);
  EXPECT_EQ(parallel::GlobalThreads(), 1);
  SetGlobalThreads(-5);
  EXPECT_EQ(parallel::GlobalThreads(), 1);
  SetGlobalThreads(3);
  EXPECT_EQ(parallel::GlobalThreads(), 3);
  EXPECT_EQ(parallel::GlobalPool().num_threads(), 3);
}

/// The ordered reduction must be bit-identical across pool sizes: chunk
/// boundaries are a function of the range only, partials merge in
/// ascending chunk order.
TEST(ParallelReduceTest, FloatSumBitIdenticalAcrossThreadCounts) {
  Rng rng(97);
  std::vector<double> values(10001);
  for (double& v : values) v = rng.Gaussian() * 1e3;

  std::vector<double> sums;
  for (int threads : {1, 2, 8}) {
    PoolGuard guard(threads);
    const double sum = ParallelReduce<double>(
        0, values.size(), 0, 0.0,
        [&](std::uint64_t b, std::uint64_t e) {
          double partial = 0.0;
          for (std::uint64_t i = b; i < e; ++i) {
            partial += values[static_cast<std::size_t>(i)];
          }
          return partial;
        },
        [](double& acc, double partial) { acc += partial; });
    sums.push_back(sum);
  }
  // Exact equality, not near-equality: the whole point of the ordered
  // merge is that the floating-point association never changes.
  EXPECT_EQ(sums[0], sums[1]);
  EXPECT_EQ(sums[0], sums[2]);
}

TEST(ParallelReduceTest, EmptyRangeReturnsInit) {
  PoolGuard guard(4);
  const double out = ParallelReduce<double>(
      3, 3, 0, 42.0,
      [](std::uint64_t, std::uint64_t) { return 1.0; },
      [](double& acc, double partial) { acc += partial; });
  EXPECT_EQ(out, 42.0);
}

TEST(ParallelReduceTest, MergesInAscendingChunkOrder) {
  PoolGuard guard(8);
  // Identity chunk_fn over 160 indices with grain 10 -> 16 chunks; the
  // merged list of chunk-begin values must be ascending.
  const std::vector<std::uint64_t> begins =
      ParallelReduce<std::vector<std::uint64_t>>(
          0, 160, 10, {},
          [](std::uint64_t b, std::uint64_t) {
            return std::vector<std::uint64_t>{b};
          },
          [](std::vector<std::uint64_t>& acc,
             std::vector<std::uint64_t>&& partial) {
            acc.insert(acc.end(), partial.begin(), partial.end());
          });
  ASSERT_EQ(begins.size(), 16u);
  for (std::size_t i = 0; i < begins.size(); ++i) {
    EXPECT_EQ(begins[i], i * 10);
  }
}

tensor::SparseTensor MakeSparse(std::uint64_t dim, std::size_t modes,
                                std::uint64_t nnz, std::uint64_t seed) {
  Rng rng(seed);
  tensor::SparseTensor x(std::vector<std::uint64_t>(modes, dim));
  std::vector<std::uint32_t> idx(modes);
  for (std::uint64_t e = 0; e < nnz; ++e) {
    for (std::size_t m = 0; m < modes; ++m) {
      idx[m] = static_cast<std::uint32_t>(rng.UniformInt(dim));
    }
    x.AppendEntry(idx, rng.Gaussian());
  }
  x.SortAndCoalesce();
  return x;
}

/// End-to-end determinism: the pooled kernels must produce bit-identical
/// tensors at 1, 2, and 8 threads.
TEST(ParallelKernelsTest, HooiBitIdenticalAcrossThreadCounts) {
  const tensor::SparseTensor x = MakeSparse(10, 3, 400, 7);
  const std::vector<std::uint64_t> ranks(3, 3);

  std::vector<tensor::DenseTensor> cores;
  std::vector<std::vector<linalg::Matrix>> factor_sets;
  for (int threads : {1, 2, 8}) {
    PoolGuard guard(threads);
    auto tucker = tensor::HooiSparse(x, ranks);
    ASSERT_TRUE(tucker.ok()) << tucker.status();
    cores.push_back(tucker->core);
    factor_sets.push_back(tucker->factors);
  }
  for (std::size_t v = 1; v < cores.size(); ++v) {
    ASSERT_EQ(cores[0].NumElements(), cores[v].NumElements());
    for (std::uint64_t i = 0; i < cores[0].NumElements(); ++i) {
      ASSERT_EQ(cores[0].flat(i), cores[v].flat(i)) << "core element " << i;
    }
    ASSERT_EQ(factor_sets[0].size(), factor_sets[v].size());
    for (std::size_t m = 0; m < factor_sets[0].size(); ++m) {
      EXPECT_EQ(linalg::Matrix::MaxAbsDiff(factor_sets[0][m],
                                           factor_sets[v][m]),
                0.0)
          << "factor " << m;
    }
  }
}

TEST(ParallelKernelsTest, DenseTtmMatchesAcrossThreadCounts) {
  Rng rng(13);
  tensor::DenseTensor x({9, 14, 11});
  for (std::uint64_t i = 0; i < x.NumElements(); ++i) {
    x.flat(i) = rng.Gaussian();
  }
  linalg::Matrix u(6, 14);
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t j = 0; j < 14; ++j) u(i, j) = rng.Gaussian();
  }

  std::vector<tensor::DenseTensor> outs;
  for (int threads : {1, 2, 8}) {
    PoolGuard guard(threads);
    auto y = tensor::ModeProduct(x, u, 1, /*transpose_u=*/false);
    ASSERT_TRUE(y.ok()) << y.status();
    outs.push_back(*y);
  }
  for (std::size_t v = 1; v < outs.size(); ++v) {
    for (std::uint64_t i = 0; i < outs[0].NumElements(); ++i) {
      ASSERT_EQ(outs[0].flat(i), outs[v].flat(i));
    }
  }
}

TEST(ParallelKernelsTest, ModeGramMatchesAcrossThreadCounts) {
  const tensor::SparseTensor x = MakeSparse(12, 3, 3000, 23);
  std::vector<linalg::Matrix> grams;
  for (int threads : {1, 2, 8}) {
    PoolGuard guard(threads);
    auto gram = tensor::ModeGram(x, 0);
    ASSERT_TRUE(gram.ok()) << gram.status();
    grams.push_back(*gram);
  }
  EXPECT_EQ(linalg::Matrix::MaxAbsDiff(grams[0], grams[1]), 0.0);
  EXPECT_EQ(linalg::Matrix::MaxAbsDiff(grams[0], grams[2]), 0.0);
}

/// Hammer the pool with many small regions from concurrent initiators.
/// The assertions are weak on purpose — under TSAN this test's job is to
/// surface data races in the region/queue machinery.
TEST(ParallelStressTest, ManySmallRegionsUnderContention) {
  PoolGuard guard(4);
  std::atomic<std::uint64_t> total{0};
  ParallelFor(0, 16, 1, [&](std::uint64_t ob, std::uint64_t oe) {
    for (std::uint64_t o = ob; o < oe; ++o) {
      for (int rep = 0; rep < 50; ++rep) {
        ParallelFor(0, 64, 4, [&](std::uint64_t b, std::uint64_t e) {
          for (std::uint64_t i = b; i < e; ++i) total.fetch_add(1);
        });
      }
    }
  });
  EXPECT_EQ(total.load(), 16u * 50u * 64u);
}

// --------------------------------------------------- scratch alignment

bool IsCacheAligned(const void* p) {
  return reinterpret_cast<std::uintptr_t>(p) %
             parallel::internal::kScratchAlignment ==
         0;
}

/// Every scratch lease must start on a 64-byte boundary (the SIMD
/// kernels issue aligned-friendly 256-bit loads into lease buffers, and
/// cache-line alignment keeps per-thread accumulators from false
/// sharing) — including leases recycled through the per-thread pool,
/// whose capacity may exceed the requested size.
TEST(ScratchArenaTest, LeasesAreCacheLineAligned) {
  auto& arena = parallel::ScratchArena::Get();
  for (std::size_t n : {1u, 7u, 64u, 1000u, 4096u}) {
    auto d = arena.Doubles(n);
    auto u32 = arena.U32(n);
    auto u64 = arena.U64(n);
    EXPECT_TRUE(IsCacheAligned(d.data())) << "Doubles n=" << n;
    EXPECT_TRUE(IsCacheAligned(u32.data())) << "U32 n=" << n;
    EXPECT_TRUE(IsCacheAligned(u64.data())) << "U64 n=" << n;
  }
}

TEST(ScratchArenaTest, ReusedLeasesStayAligned) {
  auto& arena = parallel::ScratchArena::Get();
  const double* first = nullptr;
  {
    auto lease = arena.Doubles(512);
    first = lease.data();
    EXPECT_TRUE(IsCacheAligned(first));
  }
  // The freed buffer returns to the per-thread pool; a smaller request
  // may recycle it. Recycled or fresh, alignment must hold.
  for (int rep = 0; rep < 8; ++rep) {
    auto lease = arena.Doubles(64 + 32 * rep);
    EXPECT_TRUE(IsCacheAligned(lease.data())) << "rep=" << rep;
  }
}

TEST(ScratchArenaTest, WorkerLeasesAreAlignedToo) {
  PoolGuard guard(4);
  std::atomic<int> misaligned{0};
  ParallelFor(0, 64, 1, [&](std::uint64_t b, std::uint64_t e) {
    auto lease = parallel::ScratchArena::Get().Doubles(256);
    if (!IsCacheAligned(lease.data())) misaligned.fetch_add(1);
    for (std::uint64_t i = b; i < e; ++i) lease.data()[i % 256] += 1.0;
  });
  EXPECT_EQ(misaligned.load(), 0);
}

TEST(ParallelStressTest, RepeatedResizeWithTraffic) {
  for (int rep = 0; rep < 20; ++rep) {
    SetGlobalThreads(1 + rep % 5);
    std::atomic<std::uint64_t> sum{0};
    ParallelFor(0, 256, 8, [&](std::uint64_t b, std::uint64_t e) {
      for (std::uint64_t i = b; i < e; ++i) sum.fetch_add(i);
    });
    ASSERT_EQ(sum.load(), 255u * 256u / 2u);
  }
  SetGlobalThreads(parallel::HardwareThreads());
}

}  // namespace
}  // namespace m2td
