#include <atomic>
#include <map>
#include <numeric>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "mapreduce/engine.h"

namespace m2td::mapreduce {
namespace {

// Classic word-count over (word) tokens.
TEST(MapReduceTest, WordCount) {
  std::vector<std::string> words = {"a", "b", "a", "c", "b", "a"};
  JobSpec<std::string, std::string, int, std::pair<std::string, int>> spec;
  spec.num_workers = 2;
  spec.mapper = [](const std::string& word,
                   Emitter<std::string, int>* emitter) {
    emitter->Emit(word, 1);
  };
  spec.reducer = [](const std::string& word, std::vector<int>& counts,
                    std::vector<std::pair<std::string, int>>* out) {
    out->push_back({word, std::accumulate(counts.begin(), counts.end(), 0)});
  };
  auto result = RunJob(spec, words);
  ASSERT_TRUE(result.ok());
  std::map<std::string, int> counts(result->begin(), result->end());
  EXPECT_EQ(counts["a"], 3);
  EXPECT_EQ(counts["b"], 2);
  EXPECT_EQ(counts["c"], 1);
}

TEST(MapReduceTest, ResultIndependentOfWorkerCount) {
  std::vector<int> inputs(1000);
  std::iota(inputs.begin(), inputs.end(), 0);
  auto run = [&inputs](int workers) {
    JobSpec<int, int, int, std::pair<int, long>> spec;
    spec.num_workers = workers;
    spec.mapper = [](const int& value, Emitter<int, int>* emitter) {
      emitter->Emit(value % 7, value);
    };
    spec.reducer = [](const int& key, std::vector<int>& values,
                      std::vector<std::pair<int, long>>* out) {
      long sum = 0;
      for (int v : values) sum += v;
      out->push_back({key, sum});
    };
    auto result = RunJob(spec, inputs);
    EXPECT_TRUE(result.ok());
    return std::map<int, long>(result->begin(), result->end());
  };
  const auto baseline = run(1);
  for (int workers : {2, 3, 8}) {
    EXPECT_EQ(run(workers), baseline) << "workers=" << workers;
  }
}

TEST(MapReduceTest, StatsAreReported) {
  std::vector<int> inputs = {1, 2, 3, 4, 5};
  JobSpec<int, int, int, int> spec;
  spec.num_workers = 2;
  spec.mapper = [](const int& v, Emitter<int, int>* emitter) {
    emitter->Emit(v % 2, v);
    emitter->Emit(v % 3, v);
  };
  spec.reducer = [](const int& key, std::vector<int>& values,
                    std::vector<int>* out) {
    (void)key;
    out->push_back(static_cast<int>(values.size()));
  };
  JobStats stats;
  auto result = RunJob(spec, inputs, &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(stats.intermediate_pairs, 10u);
  EXPECT_EQ(stats.output_records, result->size());
  EXPECT_GE(stats.map_seconds, 0.0);
  EXPECT_GE(stats.TotalSeconds(), stats.reduce_seconds);
}

TEST(MapReduceTest, EmptyInputYieldsEmptyOutput) {
  JobSpec<int, int, int, int> spec;
  spec.num_workers = 3;
  spec.mapper = [](const int&, Emitter<int, int>*) {};
  spec.reducer = [](const int&, std::vector<int>&, std::vector<int>*) {};
  auto result = RunJob(spec, std::vector<int>{});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
}

TEST(MapReduceTest, ValidatesSpec) {
  JobSpec<int, int, int, int> spec;
  spec.num_workers = 2;
  EXPECT_FALSE(RunJob(spec, std::vector<int>{1}).ok());  // no functions
  spec.mapper = [](const int&, Emitter<int, int>*) {};
  spec.reducer = [](const int&, std::vector<int>&, std::vector<int>*) {};
  spec.num_workers = 0;
  EXPECT_FALSE(RunJob(spec, std::vector<int>{1}).ok());
}

TEST(MapReduceTest, CustomPartitionerControlsPlacement) {
  // With a constant partitioner every key lands in one reducer bucket;
  // results must still be complete.
  std::vector<int> inputs = {1, 2, 3, 4};
  JobSpec<int, int, int, int> spec;
  spec.num_workers = 4;
  spec.partitioner = [](const int&) { return std::size_t{0}; };
  spec.mapper = [](const int& v, Emitter<int, int>* emitter) {
    emitter->Emit(v, v * v);
  };
  spec.reducer = [](const int& key, std::vector<int>& values,
                    std::vector<int>* out) {
    (void)key;
    for (int v : values) out->push_back(v);
  };
  auto result = RunJob(spec, inputs);
  ASSERT_TRUE(result.ok());
  std::multiset<int> got(result->begin(), result->end());
  EXPECT_EQ(got, (std::multiset<int>{1, 4, 9, 16}));
}

TEST(MapReduceTest, AllValuesForKeyReachOneReducerCall) {
  // Each key's reducer must see every emitted value exactly once, even
  // when values originate from different map workers.
  std::vector<int> inputs(100);
  std::iota(inputs.begin(), inputs.end(), 0);
  JobSpec<int, int, int, std::pair<int, int>> spec;
  spec.num_workers = 5;
  spec.mapper = [](const int& v, Emitter<int, int>* emitter) {
    emitter->Emit(v / 10, v);
  };
  std::atomic<int> reducer_calls{0};
  spec.reducer = [&reducer_calls](const int& key, std::vector<int>& values,
                                  std::vector<std::pair<int, int>>* out) {
    ++reducer_calls;
    out->push_back({key, static_cast<int>(values.size())});
  };
  auto result = RunJob(spec, inputs);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(reducer_calls.load(), 10);
  for (const auto& [key, count] : *result) EXPECT_EQ(count, 10);
}

TEST(MapReduceTest, CombinerShrinksShuffleWithoutChangingResult) {
  std::vector<int> inputs(500);
  std::iota(inputs.begin(), inputs.end(), 0);
  auto make_spec = [](bool with_combiner) {
    JobSpec<int, int, long, std::pair<int, long>> spec;
    spec.num_workers = 3;
    spec.mapper = [](const int& v, Emitter<int, long>* emitter) {
      emitter->Emit(v % 5, v);
    };
    if (with_combiner) {
      spec.combiner = [](const int&, std::vector<long>* values) {
        long sum = 0;
        for (long v : *values) sum += v;
        values->assign(1, sum);
      };
    }
    spec.reducer = [](const int& key, std::vector<long>& values,
                      std::vector<std::pair<int, long>>* out) {
      long sum = 0;
      for (long v : values) sum += v;
      out->push_back({key, sum});
    };
    return spec;
  };

  JobStats plain_stats, combined_stats;
  auto plain = RunJob(make_spec(false), inputs, &plain_stats);
  auto combined = RunJob(make_spec(true), inputs, &combined_stats);
  ASSERT_TRUE(plain.ok() && combined.ok());
  using ResultMap = std::map<int, long>;
  EXPECT_EQ(ResultMap(plain->begin(), plain->end()),
            ResultMap(combined->begin(), combined->end()));
  // 500 intermediate pairs without a combiner; at most workers*keys with.
  EXPECT_EQ(plain_stats.intermediate_pairs, 500u);
  EXPECT_LE(combined_stats.intermediate_pairs, 3u * 5u);
}

TEST(MapReduceTest, MoreWorkersThanInputs) {
  std::vector<int> inputs = {42};
  JobSpec<int, int, int, int> spec;
  spec.num_workers = 16;
  spec.mapper = [](const int& v, Emitter<int, int>* emitter) {
    emitter->Emit(0, v);
  };
  spec.reducer = [](const int&, std::vector<int>& values,
                    std::vector<int>* out) {
    out->push_back(values.front());
  };
  auto result = RunJob(spec, inputs);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ(result->front(), 42);
}

// Move-only value type that keeps track of its payload.
struct MoveOnlyValue {
  explicit MoveOnlyValue(int v) : value(v) {}
  MoveOnlyValue(const MoveOnlyValue&) = delete;
  MoveOnlyValue& operator=(const MoveOnlyValue&) = delete;
  MoveOnlyValue(MoveOnlyValue&&) = default;
  MoveOnlyValue& operator=(MoveOnlyValue&&) = default;
  int value;
};

// Requesting retries with move-only intermediates silently downgrades
// reduce tasks to single-attempt; the downgrade must be visible through
// the mapreduce.reduce.replay_disabled counter (and a one-time WARN).
TEST(MapReduceTest, MoveOnlyIntermediatesReportReplayDisabled) {
  const bool metrics_were_enabled = obs::MetricsEnabled();
  obs::SetMetricsEnabled(true);
  obs::Counter& disabled =
      obs::GetCounter("mapreduce.reduce.replay_disabled");
  const std::uint64_t before = disabled.value();

  std::vector<int> inputs = {1, 2, 3, 4};
  JobSpec<int, int, MoveOnlyValue, std::pair<int, int>> spec;
  spec.num_workers = 2;
  spec.retry.max_retries = 2;  // Requested, but cannot be honored.
  spec.mapper = [](const int& v, Emitter<int, MoveOnlyValue>* emitter) {
    emitter->Emit(v % 2, MoveOnlyValue(v));
  };
  spec.reducer = [](const int& key, std::vector<MoveOnlyValue>& values,
                    std::vector<std::pair<int, int>>* out) {
    int sum = 0;
    for (const MoveOnlyValue& v : values) sum += v.value;
    out->push_back({key, sum});
  };
  auto result = RunJob(spec, inputs);
  ASSERT_TRUE(result.ok());
  std::map<int, int> sums(result->begin(), result->end());
  EXPECT_EQ(sums[0], 6);
  EXPECT_EQ(sums[1], 4);
  EXPECT_EQ(disabled.value(), before + 1);

  // Copyable intermediates with retries must NOT trip the counter.
  JobSpec<int, int, int, std::pair<int, int>> copyable;
  copyable.num_workers = 2;
  copyable.retry.max_retries = 2;
  copyable.mapper = [](const int& v, Emitter<int, int>* emitter) {
    emitter->Emit(0, v);
  };
  copyable.reducer = [](const int& key, std::vector<int>& values,
                        std::vector<std::pair<int, int>>* out) {
    int sum = 0;
    for (int v : values) sum += v;
    out->push_back({key, sum});
  };
  ASSERT_TRUE(RunJob(copyable, inputs).ok());
  EXPECT_EQ(disabled.value(), before + 1);
  obs::SetMetricsEnabled(metrics_were_enabled);
}

}  // namespace
}  // namespace m2td::mapreduce
