#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "core/refine.h"
#include "ensemble/sampling.h"
#include "ensemble/simulation_model.h"
#include "tensor/tucker.h"

namespace m2td::core {
namespace {

std::unique_ptr<ensemble::DynamicalSystemModel> SmallModel() {
  ensemble::ModelOptions options;
  options.parameter_resolution = 6;
  options.time_resolution = 4;
  options.dt = 0.02;
  options.record_every = 4;
  auto model = ensemble::MakeDoublePendulumModel(options);
  EXPECT_TRUE(model.ok());
  return std::move(model).ValueOrDie();
}

TEST(AdaptiveRefinementTest, BudgetAccountingAndNoDuplicates) {
  auto model = SmallModel();
  RefinementOptions options;
  options.initial_budget = 10;
  options.increment = 5;
  options.rounds = 3;
  options.rank = 2;
  options.candidate_pool = 64;
  auto result = AdaptiveRefinement(model.get(), options);
  ASSERT_TRUE(result.ok());
  // initial + (rounds - 1 full increments happen inside the loop before
  // the final round's trace; the loop adds increments after each trace) —
  // total = initial + rounds * increment.
  EXPECT_EQ(result->combinations.size(), 10u + 3u * 5u);
  std::set<std::vector<std::uint32_t>> unique(result->combinations.begin(),
                                              result->combinations.end());
  EXPECT_EQ(unique.size(), result->combinations.size());
  // Each simulation filled a whole time fiber.
  EXPECT_EQ(result->ensemble.NumNonZeros(),
            result->combinations.size() * 4u);
  EXPECT_EQ(result->rounds.size(), 3u);
  EXPECT_EQ(result->rounds[0].total_simulations, 10u);
  EXPECT_EQ(result->rounds[1].total_simulations, 15u);
  EXPECT_EQ(result->rounds[2].total_simulations, 20u);
}

TEST(AdaptiveRefinementTest, ObservedFitIsSane) {
  auto model = SmallModel();
  RefinementOptions options;
  options.initial_budget = 16;
  options.increment = 8;
  options.rounds = 2;
  options.rank = 2;
  auto result = AdaptiveRefinement(model.get(), options);
  ASSERT_TRUE(result.ok());
  for (const RefinementRound& round : result->rounds) {
    EXPECT_LE(round.observed_fit, 1.0 + 1e-12);
    EXPECT_GE(round.observed_fit, -1.0);
  }
}

TEST(AdaptiveRefinementTest, ExploitZeroAndOneBothWork) {
  auto model = SmallModel();
  for (double w : {0.0, 1.0}) {
    RefinementOptions options;
    options.initial_budget = 8;
    options.increment = 4;
    options.rounds = 2;
    options.rank = 2;
    options.exploit_weight = w;
    options.seed = 9;
    auto result = AdaptiveRefinement(model.get(), options);
    ASSERT_TRUE(result.ok()) << "w=" << w;
    EXPECT_EQ(result->combinations.size(), 16u);
  }
}

TEST(AdaptiveRefinementTest, StopsWhenSpaceExhausted) {
  ensemble::ModelOptions model_options;
  model_options.parameter_resolution = 2;  // 2^4 = 16 combinations total
  model_options.time_resolution = 3;
  auto model = ensemble::MakeDoublePendulumModel(model_options);
  ASSERT_TRUE(model.ok());
  RefinementOptions options;
  options.initial_budget = 10;
  options.increment = 10;
  options.rounds = 5;
  options.rank = 2;
  auto result = AdaptiveRefinement(model->get(), options);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->combinations.size(), 16u);
  std::set<std::vector<std::uint32_t>> unique(result->combinations.begin(),
                                              result->combinations.end());
  EXPECT_EQ(unique.size(), result->combinations.size());
}

TEST(AdaptiveRefinementTest, Validation) {
  auto model = SmallModel();
  RefinementOptions bad;
  bad.initial_budget = 0;
  EXPECT_FALSE(AdaptiveRefinement(model.get(), bad).ok());
  bad = RefinementOptions{};
  bad.exploit_weight = 1.5;
  EXPECT_FALSE(AdaptiveRefinement(model.get(), bad).ok());
  EXPECT_FALSE(AdaptiveRefinement(nullptr, RefinementOptions{}).ok());
}

TEST(AdaptiveRefinementTest, DeterministicForSeed) {
  auto model1 = SmallModel();
  auto model2 = SmallModel();
  RefinementOptions options;
  options.initial_budget = 8;
  options.increment = 4;
  options.rounds = 2;
  options.rank = 2;
  options.seed = 77;
  auto r1 = AdaptiveRefinement(model1.get(), options);
  auto r2 = AdaptiveRefinement(model2.get(), options);
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_EQ(r1->combinations, r2->combinations);
}

}  // namespace
}  // namespace m2td::core
