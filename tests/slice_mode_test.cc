#include <gtest/gtest.h>

#include "tensor/sparse_tensor.h"
#include "util/random.h"

namespace m2td::tensor {
namespace {

TEST(SliceModeTest, ExtractsExactlyTheMatchingEntries) {
  SparseTensor x({3, 4, 2});
  x.AppendEntry({0, 1, 0}, 1.0);
  x.AppendEntry({1, 1, 1}, 2.0);
  x.AppendEntry({1, 3, 0}, 3.0);
  x.AppendEntry({2, 1, 1}, 4.0);
  x.SortAndCoalesce();

  auto slice = x.SliceMode(0, 1);
  ASSERT_TRUE(slice.ok());
  EXPECT_EQ(slice->shape(), (std::vector<std::uint64_t>{4, 2}));
  EXPECT_EQ(slice->NumNonZeros(), 2u);
  EXPECT_TRUE(slice->IsSorted());
  EXPECT_DOUBLE_EQ(*slice->Find({1, 1}), 2.0);
  EXPECT_DOUBLE_EQ(*slice->Find({3, 0}), 3.0);
}

TEST(SliceModeTest, MiddleAndLastModes) {
  SparseTensor x({2, 3, 2});
  x.AppendEntry({0, 2, 1}, 5.0);
  x.AppendEntry({1, 2, 0}, 6.0);
  x.SortAndCoalesce();

  auto mid = x.SliceMode(1, 2);
  ASSERT_TRUE(mid.ok());
  EXPECT_EQ(mid->NumNonZeros(), 2u);
  EXPECT_DOUBLE_EQ(*mid->Find({0, 1}), 5.0);
  EXPECT_DOUBLE_EQ(*mid->Find({1, 0}), 6.0);

  auto last = x.SliceMode(2, 0);
  ASSERT_TRUE(last.ok());
  EXPECT_EQ(last->NumNonZeros(), 1u);
  EXPECT_DOUBLE_EQ(*last->Find({1, 2}), 6.0);
}

TEST(SliceModeTest, EmptySliceAndValidation) {
  SparseTensor x({3, 3});
  x.AppendEntry({0, 0}, 1.0);
  x.SortAndCoalesce();
  auto empty = x.SliceMode(0, 2);
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty->NumNonZeros(), 0u);

  EXPECT_FALSE(x.SliceMode(5, 0).ok());
  EXPECT_EQ(x.SliceMode(0, 9).status().code(), StatusCode::kOutOfRange);
  SparseTensor one_mode({4});
  one_mode.SortAndCoalesce();
  EXPECT_FALSE(one_mode.SliceMode(0, 0).ok());
}

TEST(SliceModeTest, SlicesPartitionTheTensor) {
  Rng rng(3);
  SparseTensor x({4, 5, 3});
  std::vector<std::uint32_t> idx(3);
  for (int e = 0; e < 50; ++e) {
    idx[0] = static_cast<std::uint32_t>(rng.UniformInt(4));
    idx[1] = static_cast<std::uint32_t>(rng.UniformInt(5));
    idx[2] = static_cast<std::uint32_t>(rng.UniformInt(3));
    x.AppendEntry(idx, rng.Gaussian());
  }
  x.SortAndCoalesce();
  std::uint64_t total = 0;
  for (std::uint32_t i = 0; i < 5; ++i) {
    auto slice = x.SliceMode(1, i);
    ASSERT_TRUE(slice.ok());
    total += slice->NumNonZeros();
  }
  EXPECT_EQ(total, x.NumNonZeros());
}

}  // namespace
}  // namespace m2td::tensor
