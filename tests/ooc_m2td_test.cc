// Tests for the out-of-core M2TD pipeline: bounded-memory decomposition
// streamed from chunk stores must equal the in-memory pipeline.

#include <filesystem>
#include <memory>
#include <string>
#include <unistd.h>

#include <gtest/gtest.h>

#include "core/m2td.h"
#include "core/ooc_m2td.h"
#include "core/pf_partition.h"
#include "ensemble/simulation_model.h"
#include "io/chunk_store.h"
#include "tensor/tucker.h"

namespace m2td::core {
namespace {

class OocM2tdTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("m2td_ooc_m2td_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(dir_);

    ensemble::ModelOptions options;
    options.parameter_resolution = 5;
    options.time_resolution = 5;
    auto model = ensemble::MakeDoublePendulumModel(options);
    ASSERT_TRUE(model.ok());
    model_ = std::move(model).ValueOrDie();
    auto partition = MakePartition(5, {0});
    ASSERT_TRUE(partition.ok());
    partition_ = std::move(partition).ValueOrDie();
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  /// Builds sub-ensembles and writes them into chunk stores with the given
  /// chunk extent.
  void BuildStores(const SubEnsembleOptions& sub_options,
                   std::uint64_t chunk) {
    auto subs = BuildSubEnsembles(model_.get(), partition_, sub_options);
    ASSERT_TRUE(subs.ok());
    subs_ = std::move(subs).ValueOrDie();
    auto store1 = io::ChunkStore::Create(
        (dir_ / "s1").string(), subs_.x1.shape(),
        std::vector<std::uint64_t>(3, chunk));
    auto store2 = io::ChunkStore::Create(
        (dir_ / "s2").string(), subs_.x2.shape(),
        std::vector<std::uint64_t>(3, chunk));
    ASSERT_TRUE(store1.ok() && store2.ok());
    ASSERT_TRUE(store1->Write(subs_.x1).ok());
    ASSERT_TRUE(store2->Write(subs_.x2).ok());
    store1_ = std::make_unique<io::ChunkStore>(std::move(*store1));
    store2_ = std::make_unique<io::ChunkStore>(std::move(*store2));
  }

  std::filesystem::path dir_;
  std::unique_ptr<ensemble::DynamicalSystemModel> model_;
  PfPartition partition_;
  SubEnsembles subs_;
  std::unique_ptr<io::ChunkStore> store1_;
  std::unique_ptr<io::ChunkStore> store2_;
};

TEST_F(OocM2tdTest, MatchesInMemoryPipelineForEveryMethod) {
  BuildStores({}, /*chunk=*/2);
  for (M2tdMethod method :
       {M2tdMethod::kAvg, M2tdMethod::kConcat, M2tdMethod::kSelect,
        M2tdMethod::kWeighted}) {
    M2tdOptions options;
    options.method = method;
    options.ranks = std::vector<std::uint64_t>(5, 2);
    auto in_memory = M2tdDecompose(subs_, partition_,
                                   model_->space().Shape(), options);
    auto out_of_core = M2tdDecomposeFromStores(
        *store1_, *store2_, partition_, model_->space().Shape(), options);
    ASSERT_TRUE(in_memory.ok()) << in_memory.status();
    ASSERT_TRUE(out_of_core.ok()) << out_of_core.status();
    EXPECT_EQ(out_of_core->join_nnz, in_memory->join_nnz);
    auto r1 = tensor::Reconstruct(in_memory->tucker);
    auto r2 = tensor::Reconstruct(out_of_core->tucker);
    ASSERT_TRUE(r1.ok() && r2.ok());
    EXPECT_NEAR(tensor::DenseTensor::FrobeniusDistance(*r1, *r2), 0.0, 1e-8)
        << M2tdMethodName(method);
  }
}

TEST_F(OocM2tdTest, SparseSubEnsemblesAndOddChunking) {
  SubEnsembleOptions sub_options;
  sub_options.cell_density = 0.4;
  sub_options.seed = 3;
  BuildStores(sub_options, /*chunk=*/3);
  M2tdOptions options;
  options.ranks = std::vector<std::uint64_t>(5, 3);
  auto in_memory =
      M2tdDecompose(subs_, partition_, model_->space().Shape(), options);
  auto out_of_core = M2tdDecomposeFromStores(
      *store1_, *store2_, partition_, model_->space().Shape(), options);
  ASSERT_TRUE(in_memory.ok() && out_of_core.ok());
  EXPECT_EQ(out_of_core->join_nnz, in_memory->join_nnz);
  auto r1 = tensor::Reconstruct(in_memory->tucker);
  auto r2 = tensor::Reconstruct(out_of_core->tucker);
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_NEAR(tensor::DenseTensor::FrobeniusDistance(*r1, *r2), 0.0, 1e-8);
}

TEST_F(OocM2tdTest, Validation) {
  BuildStores({}, 2);
  M2tdOptions options;
  options.ranks = std::vector<std::uint64_t>(5, 2);
  // Zero-join is unsupported out of core.
  options.stitch.zero_join = true;
  auto result = M2tdDecomposeFromStores(
      *store1_, *store2_, partition_, model_->space().Shape(), options);
  EXPECT_EQ(result.status().code(), StatusCode::kUnimplemented);
  // Swapped stores have the wrong shapes for the partition sides when the
  // sides differ... here both sides are 5x5x5, so emulate a bad shape by
  // mismatching ranks arity instead.
  options.stitch.zero_join = false;
  options.ranks = {2, 2};
  EXPECT_FALSE(M2tdDecomposeFromStores(*store1_, *store2_, partition_,
                                       model_->space().Shape(), options)
                   .ok());
}

}  // namespace
}  // namespace m2td::core
