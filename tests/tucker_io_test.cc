#include <filesystem>
#include <fstream>
#include <string>
#include <unistd.h>

#include <gtest/gtest.h>

#include "io/tucker_io.h"
#include "tensor/sparse_tensor.h"
#include "tensor/tucker.h"
#include "util/random.h"

namespace m2td::io {
namespace {

class TuckerIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("m2td_tucker_io_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

tensor::TuckerDecomposition MakeDecomposition() {
  Rng rng(5);
  tensor::SparseTensor x({5, 6, 4});
  std::vector<std::uint32_t> idx(3);
  for (int e = 0; e < 40; ++e) {
    idx[0] = static_cast<std::uint32_t>(rng.UniformInt(5));
    idx[1] = static_cast<std::uint32_t>(rng.UniformInt(6));
    idx[2] = static_cast<std::uint32_t>(rng.UniformInt(4));
    x.AppendEntry(idx, rng.Gaussian());
  }
  x.SortAndCoalesce();
  // Heterogeneous ranks on purpose.
  auto tucker = tensor::HosvdSparse(x, {2, 3, 4});
  EXPECT_TRUE(tucker.ok());
  return std::move(tucker).ValueOrDie();
}

TEST_F(TuckerIoTest, RoundTripReconstructionIdentical) {
  tensor::TuckerDecomposition original = MakeDecomposition();
  ASSERT_TRUE(SaveTucker(original, Path("d.tucker")).ok());
  auto loaded = LoadTucker(Path("d.tucker"));
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->factors.size(), original.factors.size());
  EXPECT_EQ(loaded->core.shape(), original.core.shape());
  auto r1 = tensor::Reconstruct(original);
  auto r2 = tensor::Reconstruct(*loaded);
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_DOUBLE_EQ(tensor::DenseTensor::FrobeniusDistance(*r1, *r2), 0.0);
}

TEST_F(TuckerIoTest, CellQueriesSurviveRoundTrip) {
  tensor::TuckerDecomposition original = MakeDecomposition();
  ASSERT_TRUE(SaveTucker(original, Path("d.tucker")).ok());
  auto loaded = LoadTucker(Path("d.tucker"));
  ASSERT_TRUE(loaded.ok());
  Rng rng(9);
  for (int trial = 0; trial < 15; ++trial) {
    std::vector<std::uint32_t> idx = {
        static_cast<std::uint32_t>(rng.UniformInt(5)),
        static_cast<std::uint32_t>(rng.UniformInt(6)),
        static_cast<std::uint32_t>(rng.UniformInt(4))};
    auto a = tensor::ReconstructCell(original, idx);
    auto b = tensor::ReconstructCell(*loaded, idx);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_DOUBLE_EQ(*a, *b);
  }
}

TEST_F(TuckerIoTest, MissingFileFails) {
  EXPECT_EQ(LoadTucker(Path("nope.tucker")).status().code(),
            StatusCode::kIOError);
}

TEST_F(TuckerIoTest, CorruptFilesRejected) {
  {
    std::ofstream out(Path("bad1.tucker"));
    out << "wrong 1\n";
  }
  EXPECT_FALSE(LoadTucker(Path("bad1.tucker")).ok());
  {
    std::ofstream out(Path("bad2.tucker"));
    out << "m2td-tucker 1\nmodes 2\nfactor 2 2\n1 2\n3 4\n";
    // second factor missing
  }
  EXPECT_FALSE(LoadTucker(Path("bad2.tucker")).ok());
  {
    std::ofstream out(Path("bad3.tucker"));
    // Core dims disagree with factor columns.
    out << "m2td-tucker 1\nmodes 1\nfactor 2 2\n1 0\n0 1\ncore 3\n1 2 3\n";
  }
  EXPECT_FALSE(LoadTucker(Path("bad3.tucker")).ok());
}

TEST_F(TuckerIoTest, InconsistentDecompositionRejectedOnSave) {
  tensor::TuckerDecomposition broken;
  broken.core = tensor::DenseTensor({2, 2});
  broken.factors = {linalg::Matrix(3, 2)};  // arity mismatch
  EXPECT_FALSE(SaveTucker(broken, Path("x.tucker")).ok());
}

}  // namespace
}  // namespace m2td::io
