// Tests for the observability subsystem (src/obs/): span tracer, Chrome
// trace export, the metrics registry, histogram percentiles, the alloc
// tally, the resource sampler, and the run-report builder.

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "obs/alloc.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/resource.h"
#include "obs/trace.h"
#include "parallel/parallel_for.h"
#include "parallel/thread_pool.h"
#include "robust/cancel.h"
#include "util/logging.h"

namespace m2td::obs {
namespace {

/// Shared fixture: every test starts with tracing+metrics on and empty
/// state, and leaves both off so ordering does not matter.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::Get().Reset();
    ResetMetrics();
    SetTracingEnabled(true);
    SetMetricsEnabled(true);
  }
  void TearDown() override {
    SetTracingEnabled(false);
    SetMetricsEnabled(false);
    Tracer::Get().Reset();
    ResetMetrics();
  }
};

TEST_F(ObsTest, SpanRecordsNameAndDuration) {
  {
    ObsSpan span("unit_work");
    span.Annotate("nnz", std::uint64_t{42});
  }
  const std::vector<SpanRecord> spans = Tracer::Get().Spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "unit_work");
  EXPECT_GE(spans[0].duration_us, 0.0);
  ASSERT_EQ(spans[0].args.size(), 1u);
  EXPECT_EQ(spans[0].args[0].key, "nnz");
  EXPECT_EQ(spans[0].args[0].value, "42");
  EXPECT_FALSE(spans[0].args[0].quoted);
}

TEST_F(ObsTest, EndIsIdempotentAndReturnsElapsed) {
  ObsSpan span("once");
  const double first = span.End();
  const double second = span.End();
  EXPECT_GE(first, 0.0);
  EXPECT_EQ(first, second);
  EXPECT_EQ(Tracer::Get().NumSpans(), 1u);
}

TEST_F(ObsTest, NestedSpansTrackDepth) {
  {
    ObsSpan outer("outer");
    {
      ObsSpan inner("inner");
      { M2TD_TRACE_SCOPE("leaf"); }
    }
  }
  const std::vector<SpanRecord> spans = Tracer::Get().Spans();
  ASSERT_EQ(spans.size(), 3u);
  // Spans complete innermost-first.
  EXPECT_EQ(spans[0].name, "leaf");
  EXPECT_EQ(spans[0].depth, 2u);
  EXPECT_EQ(spans[1].name, "inner");
  EXPECT_EQ(spans[1].depth, 1u);
  EXPECT_EQ(spans[2].name, "outer");
  EXPECT_EQ(spans[2].depth, 0u);
  // Containment: the outer span covers the inner ones.
  EXPECT_LE(spans[2].start_us, spans[0].start_us);
  EXPECT_GE(spans[2].start_us + spans[2].duration_us,
            spans[0].start_us + spans[0].duration_us);
}

TEST_F(ObsTest, SpansNestIndependentlyAcrossThreads) {
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      ObsSpan outer("thread_outer");
      ObsSpan inner("thread_inner");
      inner.End();
      outer.End();
    });
  }
  for (std::thread& t : threads) t.join();

  const std::vector<SpanRecord> spans = Tracer::Get().Spans();
  ASSERT_EQ(spans.size(), 2u * kThreads);
  for (const SpanRecord& span : spans) {
    // Depth is per-thread: each thread's outer span sits at depth 0 even
    // though the threads overlap in time.
    if (span.name == "thread_outer") {
      EXPECT_EQ(span.depth, 0u);
    } else {
      EXPECT_EQ(span.name, "thread_inner");
      EXPECT_EQ(span.depth, 1u);
    }
  }
  // The threads must have distinct tracer thread ids.
  std::vector<std::uint32_t> tids;
  for (const SpanRecord& span : spans) {
    if (span.name == "thread_outer") tids.push_back(span.thread_id);
  }
  std::sort(tids.begin(), tids.end());
  EXPECT_EQ(std::unique(tids.begin(), tids.end()), tids.end());
}

TEST_F(ObsTest, DisabledTracingRecordsNothing) {
  SetTracingEnabled(false);
  {
    ObsSpan span("invisible");
    span.Annotate("key", std::int64_t{1});
    EXPECT_FALSE(span.active());
    EXPECT_EQ(span.End(), 0.0);
  }
  EXPECT_EQ(Tracer::Get().NumSpans(), 0u);
}

TEST_F(ObsTest, AlwaysTimeSpanMeasuresWhileDisabled) {
  SetTracingEnabled(false);
  ObsSpan span("timed_anyway", ObsSpan::kAlwaysTime);
  EXPECT_TRUE(span.active());
  EXPECT_GE(span.End(), 0.0);
  // Still not recorded into the tracer.
  EXPECT_EQ(Tracer::Get().NumSpans(), 0u);
}

TEST_F(ObsTest, SpanTotalsAggregateByName) {
  for (int i = 0; i < 3; ++i) {
    ObsSpan span("repeated");
    span.End();
  }
  {
    ObsSpan other("other");
  }
  const std::vector<SpanTotal> totals = Tracer::Get().AggregateTotals();
  ASSERT_EQ(totals.size(), 2u);
  EXPECT_EQ(totals[0].name, "repeated");  // first seen first
  EXPECT_EQ(totals[0].count, 3u);
  EXPECT_EQ(totals[1].name, "other");
  EXPECT_EQ(totals[1].count, 1u);
  EXPECT_GE(Tracer::Get().SpanTotalSeconds("repeated"), 0.0);
  EXPECT_EQ(Tracer::Get().SpanTotalSeconds("missing"), 0.0);
}

// Minimal structural JSON check: brace/bracket balance outside strings,
// with escape handling. Enough to catch malformed export without a JSON
// dependency.
bool JsonIsBalanced(const std::string& text) {
  std::vector<char> stack;
  bool in_string = false;
  bool escaped = false;
  for (char c : text) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_string = true;
        break;
      case '{':
      case '[':
        stack.push_back(c);
        break;
      case '}':
        if (stack.empty() || stack.back() != '{') return false;
        stack.pop_back();
        break;
      case ']':
        if (stack.empty() || stack.back() != '[') return false;
        stack.pop_back();
        break;
      default:
        break;
    }
  }
  return stack.empty() && !in_string;
}

std::size_t CountOccurrences(const std::string& text,
                             const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

TEST_F(ObsTest, ChromeTraceExportIsWellFormedAndDeterministic) {
  {
    ObsSpan outer("export_outer");
    outer.Annotate("label", "quoted \"value\"\n");
    ObsSpan inner("export_inner");
    inner.Annotate("nnz", std::uint64_t{7});
    inner.End();
    outer.End();
  }
  Tracer::Get().RecordInstant("marker");

  std::ostringstream first, second;
  Tracer::Get().WriteChromeTrace(first);
  Tracer::Get().WriteChromeTrace(second);
  const std::string json = first.str();

  // Round trip: exporting twice from the same state is byte-identical.
  EXPECT_EQ(json, second.str());

  EXPECT_TRUE(JsonIsBalanced(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  // One complete event per span, one instant event.
  EXPECT_EQ(CountOccurrences(json, "\"ph\":\"X\""), 2u);
  EXPECT_EQ(CountOccurrences(json, "\"ph\":\"i\""), 1u);
  EXPECT_NE(json.find("\"export_outer\""), std::string::npos);
  EXPECT_NE(json.find("\"export_inner\""), std::string::npos);
  EXPECT_NE(json.find("\"nnz\":7"), std::string::npos);
  // The annotation with quotes/newline must be escaped.
  EXPECT_NE(json.find("quoted \\\"value\\\"\\n"), std::string::npos);
}

TEST_F(ObsTest, JsonEscapeHandlesControlCharacters) {
  std::string out;
  internal::JsonEscape(std::string_view("a\"b\\c\n\t\x01", 8), &out);
  EXPECT_EQ(out, "a\\\"b\\\\c\\n\\t\\u0001");
}

TEST_F(ObsTest, WarningLogsBecomeTraceInstants) {
  M2TD_LOG_WARNING() << "trace-mirrored warning";
  const std::vector<InstantRecord> instants = Tracer::Get().Instants();
  ASSERT_EQ(instants.size(), 1u);
  EXPECT_NE(instants[0].name.find("trace-mirrored warning"),
            std::string::npos);
}

TEST_F(ObsTest, TextSummaryListsSpans) {
  {
    ObsSpan outer("summary_outer");
    ObsSpan inner("summary_inner");
  }
  std::ostringstream os;
  Tracer::Get().WriteTextSummary(os);
  const std::string summary = os.str();
  EXPECT_NE(summary.find("summary_outer"), std::string::npos);
  EXPECT_NE(summary.find("summary_inner"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Metrics.

TEST_F(ObsTest, CounterSumsExactlyUnderContention) {
  constexpr int kThreads = 8;
  constexpr int kIncrements = 10000;
  Counter& counter = GetCounter("test.contended");
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kIncrements; ++i) counter.Increment();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter.value(),
            static_cast<std::uint64_t>(kThreads) * kIncrements);
}

TEST_F(ObsTest, DisabledMetricsAreNoOps) {
  SetMetricsEnabled(false);
  Counter& counter = GetCounter("test.disabled_counter");
  Gauge& gauge = GetGauge("test.disabled_gauge");
  Histogram& hist = GetHistogram("test.disabled_hist");
  counter.Add(5);
  gauge.Set(3.5);
  hist.Observe(8);
  EXPECT_EQ(counter.value(), 0u);
  EXPECT_EQ(gauge.value(), 0.0);
  EXPECT_EQ(hist.Count(), 0u);
}

TEST_F(ObsTest, GetCounterReturnsSameInstance) {
  Counter& a = GetCounter("test.same");
  Counter& b = GetCounter("test.same");
  EXPECT_EQ(&a, &b);
  a.Add(2);
  EXPECT_EQ(b.value(), 2u);
}

TEST_F(ObsTest, HistogramBucketBoundaries) {
  // Index: 0 -> 0; 1 -> 1; 2,3 -> 2; 4..7 -> 3; 2^(b-1) opens bucket b.
  EXPECT_EQ(Histogram::BucketIndex(0), 0);
  EXPECT_EQ(Histogram::BucketIndex(1), 1);
  EXPECT_EQ(Histogram::BucketIndex(2), 2);
  EXPECT_EQ(Histogram::BucketIndex(3), 2);
  EXPECT_EQ(Histogram::BucketIndex(4), 3);
  EXPECT_EQ(Histogram::BucketIndex(7), 3);
  EXPECT_EQ(Histogram::BucketIndex(8), 4);
  EXPECT_EQ(Histogram::BucketIndex((std::uint64_t{1} << 63) - 1), 63);
  EXPECT_EQ(Histogram::BucketIndex(std::uint64_t{1} << 63), 64);
  EXPECT_EQ(Histogram::BucketIndex(~std::uint64_t{0}), 64);

  EXPECT_EQ(Histogram::BucketLowerBound(0), 0u);
  EXPECT_EQ(Histogram::BucketLowerBound(1), 1u);
  EXPECT_EQ(Histogram::BucketLowerBound(2), 2u);
  EXPECT_EQ(Histogram::BucketLowerBound(3), 4u);
  EXPECT_EQ(Histogram::BucketLowerBound(64), std::uint64_t{1} << 63);

  // Every value lands in the bucket whose range contains it.
  for (int b = 1; b < Histogram::kNumBuckets; ++b) {
    const std::uint64_t lo = Histogram::BucketLowerBound(b);
    EXPECT_EQ(Histogram::BucketIndex(lo), b);
    EXPECT_EQ(Histogram::BucketIndex(lo + (lo - 1)), b);  // top of range
  }
}

TEST_F(ObsTest, HistogramObserveCountsAndSums) {
  Histogram& hist = GetHistogram("test.hist");
  for (std::uint64_t v : {0ull, 1ull, 2ull, 3ull, 1024ull}) hist.Observe(v);
  EXPECT_EQ(hist.Count(), 5u);
  EXPECT_EQ(hist.Sum(), 1030u);
  EXPECT_EQ(hist.BucketCount(0), 1u);   // 0
  EXPECT_EQ(hist.BucketCount(1), 1u);   // 1
  EXPECT_EQ(hist.BucketCount(2), 2u);   // 2, 3
  EXPECT_EQ(hist.BucketCount(11), 1u);  // 1024 = 2^10
}

TEST_F(ObsTest, MetricsJsonIsWellFormed) {
  GetCounter("test.json_counter").Add(3);
  GetGauge("test.json_gauge").Set(1.5);
  GetHistogram("test.json_hist").Observe(10);
  std::ostringstream os;
  WriteMetricsJson(os);
  const std::string json = os.str();
  EXPECT_TRUE(JsonIsBalanced(json)) << json;
  EXPECT_NE(json.find("\"test.json_counter\":3"), std::string::npos);
  EXPECT_NE(json.find("\"test.json_gauge\":1.5"), std::string::npos);
  EXPECT_NE(json.find("\"test.json_hist\""), std::string::npos);
}

TEST_F(ObsTest, ResetMetricsZeroesEverything) {
  GetCounter("test.reset_counter").Add(9);
  GetHistogram("test.reset_hist").Observe(9);
  ResetMetrics();
  EXPECT_EQ(GetCounter("test.reset_counter").value(), 0u);
  EXPECT_EQ(GetHistogram("test.reset_hist").Count(), 0u);
}

// ---------------------------------------------------------------------------
// Histogram percentiles.

TEST_F(ObsTest, PercentileOfEmptyHistogramIsZero) {
  Histogram& hist = GetHistogram("test.pct_empty");
  EXPECT_EQ(hist.Percentile(0.0), 0.0);
  EXPECT_EQ(hist.Percentile(0.5), 0.0);
  EXPECT_EQ(hist.Percentile(1.0), 0.0);
}

TEST_F(ObsTest, PercentileOfAllZerosIsZero) {
  Histogram& hist = GetHistogram("test.pct_zeros");
  for (int i = 0; i < 100; ++i) hist.Observe(0);
  EXPECT_EQ(hist.Percentile(0.5), 0.0);
  EXPECT_EQ(hist.Percentile(0.99), 0.0);
}

TEST_F(ObsTest, PercentileSingleBucketInterpolatesWithinRange) {
  // 1000 lands in bucket [512, 1024); every estimate must stay inside
  // that bucket's range and the quantiles must be monotone.
  Histogram& hist = GetHistogram("test.pct_single");
  for (int i = 0; i < 100; ++i) hist.Observe(1000);
  const double p50 = hist.Percentile(0.50);
  const double p95 = hist.Percentile(0.95);
  const double p99 = hist.Percentile(0.99);
  EXPECT_GE(p50, 512.0);
  EXPECT_LE(p99, 1024.0);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  // Out-of-range quantiles clamp instead of misbehaving.
  EXPECT_GE(hist.Percentile(-1.0), 512.0);
  EXPECT_LE(hist.Percentile(2.0), 1024.0);
}

TEST_F(ObsTest, PercentilesAreMonotoneOverASpread) {
  Histogram& hist = GetHistogram("test.pct_spread");
  for (std::uint64_t v = 1; v <= 1024; ++v) hist.Observe(v);
  const double p50 = hist.Percentile(0.50);
  const double p95 = hist.Percentile(0.95);
  const double p99 = hist.Percentile(0.99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  // Half the samples lie in [512, 1024], so p50 lands in that top bucket.
  EXPECT_GE(p50, 256.0);
  EXPECT_LE(p99, 2048.0);
}

// ---------------------------------------------------------------------------
// OpenMetrics exposition.

TEST_F(ObsTest, OpenMetricsExpositionIsWellFormed) {
  GetCounter("test.om_counter").Add(3);
  GetGauge("test.om_gauge").Set(2.5);
  Histogram& hist = GetHistogram("test.om_hist");
  for (int i = 0; i < 10; ++i) hist.Observe(64);
  std::ostringstream os;
  WriteOpenMetrics(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("# TYPE m2td_test_om_counter counter"),
            std::string::npos);
  EXPECT_NE(text.find("m2td_test_om_counter_total 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE m2td_test_om_gauge gauge"), std::string::npos);
  EXPECT_NE(text.find("m2td_test_om_gauge 2.5"), std::string::npos);
  EXPECT_NE(text.find("# TYPE m2td_test_om_hist summary"),
            std::string::npos);
  EXPECT_NE(text.find("m2td_test_om_hist{quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(text.find("m2td_test_om_hist_count 10"), std::string::npos);
  EXPECT_NE(text.find("m2td_test_om_hist_sum 640"), std::string::npos);
  // The mandatory terminator, at the very end.
  ASSERT_GE(text.size(), 6u);
  EXPECT_EQ(text.substr(text.size() - 6), "# EOF\n");
}

TEST_F(ObsTest, HistogramSummaryListsPercentiles) {
  GetHistogram("test.summary_hist").Observe(100);
  std::ostringstream os;
  WriteHistogramSummary(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("test.summary_hist"), std::string::npos);
  EXPECT_NE(text.find("p50="), std::string::npos);
  EXPECT_NE(text.find("p99="), std::string::npos);
}

TEST_F(ObsTest, MetricsJsonCarriesPercentiles) {
  GetHistogram("test.json_pct").Observe(8);
  std::ostringstream os;
  WriteMetricsJson(os);
  const std::string json = os.str();
  EXPECT_TRUE(JsonIsBalanced(json)) << json;
  EXPECT_NE(json.find("\"p50\":"), std::string::npos);
  EXPECT_NE(json.find("\"p95\":"), std::string::npos);
  EXPECT_NE(json.find("\"p99\":"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Per-span CPU and allocation attribution.

TEST_F(ObsTest, SpanAttributesCpuAndAllocation) {
  {
    ObsSpan span("attributed");
    RecordAlloc(1000);
    RecordAlloc(24);
    // Burn a little CPU so the thread clock visibly advances.
    volatile double sink = 0.0;
    for (int i = 0; i < 200000; ++i) sink = sink + i * 0.5;
    (void)sink;
  }
  const std::vector<SpanRecord> spans = Tracer::Get().Spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_GE(spans[0].alloc_bytes, 1024u);
  EXPECT_GE(spans[0].alloc_count, 2u);
  EXPECT_GT(spans[0].cpu_us, 0.0);
  EXPECT_LE(spans[0].cpu_us, spans[0].duration_us * 16.0 + 1e4);
}

TEST_F(ObsTest, AllocTallyAggregatesAcrossParallelWorkers) {
  const AllocStats before = GlobalAllocStats();
  parallel::ParallelFor(0, 64, 1, [](std::uint64_t begin, std::uint64_t end) {
    for (std::uint64_t i = begin; i < end; ++i) RecordAlloc(10);
  });
  const AllocStats after = GlobalAllocStats();
  // Worker-thread tallies (live or retired) must all fold into the global
  // view: 64 recorded allocations of 10 bytes each.
  EXPECT_GE(after.bytes - before.bytes, 640u);
  EXPECT_GE(after.count - before.count, 64u);
}

TEST_F(ObsTest, AllocTrackingModeIsReported) {
  // Whichever way the build was configured, the flag must be callable and
  // ThreadAllocStats monotone.
  (void)AllocTrackingCompiledIn();
  const AllocStats a = ThreadAllocStats();
  RecordAlloc(1);
  const AllocStats b = ThreadAllocStats();
  EXPECT_GE(b.bytes, a.bytes + 1);
  EXPECT_GE(b.count, a.count + 1);
}

// ---------------------------------------------------------------------------
// Resource sampler.

TEST_F(ObsTest, ReadResourceUsageReportsSaneValues) {
  const ResourceUsage usage = ReadResourceUsage();
  EXPECT_GT(usage.rss_bytes, 0u);
  EXPECT_GT(usage.peak_rss_bytes, 0u);
  EXPECT_GE(usage.peak_rss_bytes, usage.rss_bytes / 2);  // same ballpark
  EXPECT_GE(usage.num_threads, 1u);
  EXPECT_GE(usage.utime_seconds + usage.stime_seconds, 0.0);
}

TEST_F(ObsTest, ResourceSamplerCollectsSeriesAndCounterTracks) {
  ResourceSampler sampler;
  ResourceSamplerOptions options;
  options.interval_ms = 1;
  sampler.Start(std::move(options));
  EXPECT_TRUE(sampler.running());
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  sampler.Stop();
  EXPECT_FALSE(sampler.running());
  const std::vector<ResourceUsage> samples = sampler.Samples();
  ASSERT_GE(samples.size(), 2u);  // immediate first + closing sample
  EXPECT_GT(sampler.Peak().rss_bytes, 0u);
  EXPECT_GT(GetGauge("proc.rss_bytes").value(), 0.0);
  // With tracing on, the sampler emits Chrome counter tracks.
  const std::vector<CounterRecord> counters = Tracer::Get().Counters();
  const bool has_memory_track =
      std::any_of(counters.begin(), counters.end(),
                  [](const CounterRecord& c) { return c.name == "proc.memory"; });
  EXPECT_TRUE(has_memory_track);
}

TEST_F(ObsTest, ResourceSamplerStopsOnCancellation) {
  std::atomic<bool> cancelled{false};
  ResourceSampler sampler;
  ResourceSamplerOptions options;
  options.interval_ms = 1;
  options.cancelled = [&cancelled] { return cancelled.load(); };
  sampler.Start(std::move(options));
  EXPECT_TRUE(sampler.running());
  cancelled.store(true);
  // The sampler thread polls the probe once per tick; give it time.
  for (int i = 0; i < 2000 && sampler.running(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_FALSE(sampler.running());
  sampler.Stop();  // join after self-exit must be clean and idempotent
  sampler.Stop();
  EXPECT_FALSE(sampler.Samples().empty());
}

TEST_F(ObsTest, ResourceSamplerDecimatesInsteadOfGrowing) {
  ResourceSampler sampler;
  ResourceSamplerOptions options;
  options.interval_ms = 1;
  options.max_samples = 8;  // tiny cap to force decimation quickly
  sampler.Start(std::move(options));
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  sampler.Stop();
  EXPECT_LE(sampler.Samples().size(), 8u);
  EXPECT_GE(sampler.Samples().size(), 2u);
}

// ---------------------------------------------------------------------------
// Atomic export & structured instants.

TEST_F(ObsTest, ChromeTraceExportIsAtomicAndLeavesNoTemp) {
  { ObsSpan span("atomic_export"); }
  const std::string path =
      ::testing::TempDir() + "obs_test_trace_atomic.json";
  std::filesystem::remove(path);
  ASSERT_TRUE(Tracer::Get().ExportChromeTrace(path).ok());
  EXPECT_TRUE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_TRUE(JsonIsBalanced(buffer.str()));
  std::filesystem::remove(path);
}

TEST_F(ObsTest, CounterRecordsExportAsChromeCounterEvents) {
  Tracer::Get().RecordCounter("test.track", {{"depth", 3.0}, {"load", 0.5}});
  const std::vector<CounterRecord> counters = Tracer::Get().Counters();
  ASSERT_EQ(counters.size(), 1u);
  EXPECT_EQ(counters[0].name, "test.track");
  ASSERT_EQ(counters[0].values.size(), 2u);
  std::ostringstream os;
  Tracer::Get().WriteChromeTrace(os);
  const std::string json = os.str();
  EXPECT_TRUE(JsonIsBalanced(json)) << json;
  EXPECT_EQ(CountOccurrences(json, "\"ph\":\"C\""), 1u);
  EXPECT_NE(json.find("\"depth\":3"), std::string::npos);
  EXPECT_NE(json.find("\"load\":0.5"), std::string::npos);
}

TEST_F(ObsTest, WarningInstantsCarrySeverityAndSourceArgs) {
  M2TD_LOG_WARNING() << "structured mirror";
  const std::vector<InstantRecord> instants = Tracer::Get().Instants();
  ASSERT_EQ(instants.size(), 1u);
  // The name is the bare message — the "[WARN file:line]" header moved
  // into structured args.
  EXPECT_EQ(instants[0].name, "structured mirror");
  bool saw_severity = false, saw_source = false;
  for (const TraceArg& arg : instants[0].args) {
    if (arg.key == "severity") {
      saw_severity = true;
      EXPECT_EQ(arg.value, "WARN");
      EXPECT_TRUE(arg.quoted);
    }
    if (arg.key == "source") {
      saw_source = true;
      EXPECT_NE(arg.value.find("obs_test.cc:"), std::string::npos);
    }
  }
  EXPECT_TRUE(saw_severity);
  EXPECT_TRUE(saw_source);
}

TEST_F(ObsTest, TextSummaryIncludesCpuAndAllocColumns) {
  {
    ObsSpan span("cpu_alloc_summary");
    RecordAlloc(4096);
    volatile double sink = 0.0;
    for (int i = 0; i < 100000; ++i) sink = sink + i;
    (void)sink;
  }
  std::ostringstream os;
  Tracer::Get().WriteTextSummary(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("cpu_alloc_summary"), std::string::npos);
  EXPECT_NE(text.find("cpu "), std::string::npos);
  EXPECT_NE(text.find("alloc "), std::string::npos);
}

// ---------------------------------------------------------------------------
// Run report.

TEST_F(ObsTest, RunReportGoldenSchema) {
  {
    ObsSpan span("report_phase");
    RecordAlloc(128);
  }
  ResourceSampler sampler;
  ResourceSamplerOptions sampler_options;
  sampler_options.interval_ms = 1;
  sampler.Start(std::move(sampler_options));
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  sampler.Stop();

  RunReport report("obs_test");
  report.set_command("golden");
  report.set_seed(42);
  report.AddFlag("rank", "5");
  report.AddDataset("input.txt", 0xDEADBEEF, 1234);
  report.SetResourceSamples(sampler.Samples());
  report.SetExit(0, "ok");

  std::ostringstream os;
  report.WriteJson(os);
  const std::string json = os.str();
  EXPECT_TRUE(JsonIsBalanced(json)) << json;
  // Golden key set: every schema-v1 section must be present. Additive
  // changes extend this list; renames/removals must bump
  // kRunReportSchemaVersion and update tools/compare_runs.py.
  for (const char* key :
       {"\"schema_version\":1", "\"kind\":\"m2td_run_report\"",
        "\"tool\":\"obs_test\"", "\"command\":\"golden\"",
        "\"generated_unix_time\":", "\"build\":", "\"build_type\":",
        "\"compiler\":", "\"alloc_tracking\":", "\"hardware\":",
        "\"hardware_threads\":", "\"page_size_bytes\":", "\"flags\":",
        "\"rank\":\"5\"", "\"seed\":42", "\"datasets\":",
        "\"crc32\":3735928559", "\"phases\":", "\"name\":\"report_phase\"",
        "\"wall_seconds\":", "\"cpu_seconds\":", "\"alloc_bytes\":",
        "\"resources\":", "\"peak_rss_bytes\":", "\"rss_samples\":",
        "\"minor_faults\":", "\"max_threads\":", "\"alloc_bytes_total\":",
        "\"metrics\":", "\"counters\":", "\"exit\":", "\"status\":0",
        "\"outcome\":\"ok\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
  }
  // Fault counters are force-registered so clean runs report zeros.
  EXPECT_NE(json.find("\"robust.watchdog.stalls\""), std::string::npos);
  // The phase totals must be live. Without the operator-new shim the
  // span's allocation delta is exactly the RecordAlloc(128) call; with
  // it, incidental allocations add on top, so only check exactness in
  // the default build.
  if (!AllocTrackingCompiledIn()) {
    EXPECT_NE(json.find("\"alloc_bytes\":128"), std::string::npos);
  }
}

TEST_F(ObsTest, RunReportWriteFileIsAtomic) {
  RunReport report("obs_test");
  report.set_command("atomic");
  report.SetExit(0, "ok");
  const std::string path = ::testing::TempDir() + "obs_test_report.json";
  std::filesystem::remove(path);
  ASSERT_TRUE(report.WriteFile(path).ok());
  EXPECT_TRUE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_TRUE(JsonIsBalanced(buffer.str()));
  std::filesystem::remove(path);
}

TEST_F(ObsTest, MetricsSnapshotterRewritesFile) {
  GetCounter("test.snapshot_counter").Add(7);
  const std::string path = ::testing::TempDir() + "obs_test_snapshot.prom";
  std::filesystem::remove(path);
  MetricsSnapshotter snapshotter;
  MetricsSnapshotterOptions options;
  options.path = path;
  options.interval_ms = 10;
  snapshotter.Start(std::move(options));
  EXPECT_TRUE(snapshotter.running());
  snapshotter.Stop();  // writes a final snapshot even if no tick fired
  EXPECT_FALSE(snapshotter.running());
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  EXPECT_NE(text.find("m2td_test_snapshot_counter_total 7"),
            std::string::npos);
  EXPECT_NE(text.find("# EOF"), std::string::npos);
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  std::filesystem::remove(path);
}

// ---------------------------------------------------------------------------
// SIGTERM drain: a signalled process must still emit a complete report.

void RunSigtermDrainReportChild(const std::string& path) {
  robust::CancelSource source;
  if (!robust::InstallCancelOnSignal(source)) _exit(3);
  SetTracingEnabled(true);
  SetMetricsEnabled(true);
  ResourceSampler sampler;
  ResourceSamplerOptions sampler_options;
  sampler_options.interval_ms = 1;
  const robust::CancelToken token = source.token();
  sampler_options.cancelled = [token] { return token.IsCancelled(); };
  sampler.Start(std::move(sampler_options));
  {
    ObsSpan span("pre_signal_phase");
    RecordAlloc(64);
  }
  raise(SIGTERM);
  for (int i = 0; i < 2000 && !source.token().IsCancelled(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  if (!source.token().IsCancelled()) _exit(4);
  sampler.Stop();
  RunReport report("obs_test");
  report.set_command("sigterm_drain");
  report.SetResourceSamples(sampler.Samples());
  report.SetExit(1, "cancelled", "sigterm");
  if (!report.WriteFile(path).ok()) _exit(5);
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  if (text.find("\"outcome\":\"cancelled\"") == std::string::npos) _exit(6);
  if (text.find("\"name\":\"pre_signal_phase\"") == std::string::npos) {
    _exit(7);
  }
  if (!JsonIsBalanced(text)) _exit(8);
  _exit(42);
}

TEST_F(ObsTest, SigtermDrainEmitsCompleteReport) {
  // EXPECT_EXIT forks; a 1-thread pool keeps the parent effectively
  // single-threaded at the fork (the child starts its own sampler).
  const int previous_threads = parallel::GlobalThreads();
  parallel::SetGlobalThreads(1);
  const std::string path =
      ::testing::TempDir() + "obs_test_sigterm_report.json";
  std::filesystem::remove(path);
  EXPECT_EXIT(RunSigtermDrainReportChild(path),
              ::testing::ExitedWithCode(42), "");
  std::filesystem::remove(path);
  parallel::SetGlobalThreads(previous_threads);
}

}  // namespace
}  // namespace m2td::obs
