// Tests for the observability subsystem (src/obs/): span tracer, Chrome
// trace export, and the metrics registry.

#include <algorithm>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace m2td::obs {
namespace {

/// Shared fixture: every test starts with tracing+metrics on and empty
/// state, and leaves both off so ordering does not matter.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::Get().Reset();
    ResetMetrics();
    SetTracingEnabled(true);
    SetMetricsEnabled(true);
  }
  void TearDown() override {
    SetTracingEnabled(false);
    SetMetricsEnabled(false);
    Tracer::Get().Reset();
    ResetMetrics();
  }
};

TEST_F(ObsTest, SpanRecordsNameAndDuration) {
  {
    ObsSpan span("unit_work");
    span.Annotate("nnz", std::uint64_t{42});
  }
  const std::vector<SpanRecord> spans = Tracer::Get().Spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "unit_work");
  EXPECT_GE(spans[0].duration_us, 0.0);
  ASSERT_EQ(spans[0].args.size(), 1u);
  EXPECT_EQ(spans[0].args[0].key, "nnz");
  EXPECT_EQ(spans[0].args[0].value, "42");
  EXPECT_FALSE(spans[0].args[0].quoted);
}

TEST_F(ObsTest, EndIsIdempotentAndReturnsElapsed) {
  ObsSpan span("once");
  const double first = span.End();
  const double second = span.End();
  EXPECT_GE(first, 0.0);
  EXPECT_EQ(first, second);
  EXPECT_EQ(Tracer::Get().NumSpans(), 1u);
}

TEST_F(ObsTest, NestedSpansTrackDepth) {
  {
    ObsSpan outer("outer");
    {
      ObsSpan inner("inner");
      { M2TD_TRACE_SCOPE("leaf"); }
    }
  }
  const std::vector<SpanRecord> spans = Tracer::Get().Spans();
  ASSERT_EQ(spans.size(), 3u);
  // Spans complete innermost-first.
  EXPECT_EQ(spans[0].name, "leaf");
  EXPECT_EQ(spans[0].depth, 2u);
  EXPECT_EQ(spans[1].name, "inner");
  EXPECT_EQ(spans[1].depth, 1u);
  EXPECT_EQ(spans[2].name, "outer");
  EXPECT_EQ(spans[2].depth, 0u);
  // Containment: the outer span covers the inner ones.
  EXPECT_LE(spans[2].start_us, spans[0].start_us);
  EXPECT_GE(spans[2].start_us + spans[2].duration_us,
            spans[0].start_us + spans[0].duration_us);
}

TEST_F(ObsTest, SpansNestIndependentlyAcrossThreads) {
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      ObsSpan outer("thread_outer");
      ObsSpan inner("thread_inner");
      inner.End();
      outer.End();
    });
  }
  for (std::thread& t : threads) t.join();

  const std::vector<SpanRecord> spans = Tracer::Get().Spans();
  ASSERT_EQ(spans.size(), 2u * kThreads);
  for (const SpanRecord& span : spans) {
    // Depth is per-thread: each thread's outer span sits at depth 0 even
    // though the threads overlap in time.
    if (span.name == "thread_outer") {
      EXPECT_EQ(span.depth, 0u);
    } else {
      EXPECT_EQ(span.name, "thread_inner");
      EXPECT_EQ(span.depth, 1u);
    }
  }
  // The threads must have distinct tracer thread ids.
  std::vector<std::uint32_t> tids;
  for (const SpanRecord& span : spans) {
    if (span.name == "thread_outer") tids.push_back(span.thread_id);
  }
  std::sort(tids.begin(), tids.end());
  EXPECT_EQ(std::unique(tids.begin(), tids.end()), tids.end());
}

TEST_F(ObsTest, DisabledTracingRecordsNothing) {
  SetTracingEnabled(false);
  {
    ObsSpan span("invisible");
    span.Annotate("key", std::int64_t{1});
    EXPECT_FALSE(span.active());
    EXPECT_EQ(span.End(), 0.0);
  }
  EXPECT_EQ(Tracer::Get().NumSpans(), 0u);
}

TEST_F(ObsTest, AlwaysTimeSpanMeasuresWhileDisabled) {
  SetTracingEnabled(false);
  ObsSpan span("timed_anyway", ObsSpan::kAlwaysTime);
  EXPECT_TRUE(span.active());
  EXPECT_GE(span.End(), 0.0);
  // Still not recorded into the tracer.
  EXPECT_EQ(Tracer::Get().NumSpans(), 0u);
}

TEST_F(ObsTest, SpanTotalsAggregateByName) {
  for (int i = 0; i < 3; ++i) {
    ObsSpan span("repeated");
    span.End();
  }
  {
    ObsSpan other("other");
  }
  const std::vector<SpanTotal> totals = Tracer::Get().AggregateTotals();
  ASSERT_EQ(totals.size(), 2u);
  EXPECT_EQ(totals[0].name, "repeated");  // first seen first
  EXPECT_EQ(totals[0].count, 3u);
  EXPECT_EQ(totals[1].name, "other");
  EXPECT_EQ(totals[1].count, 1u);
  EXPECT_GE(Tracer::Get().SpanTotalSeconds("repeated"), 0.0);
  EXPECT_EQ(Tracer::Get().SpanTotalSeconds("missing"), 0.0);
}

// Minimal structural JSON check: brace/bracket balance outside strings,
// with escape handling. Enough to catch malformed export without a JSON
// dependency.
bool JsonIsBalanced(const std::string& text) {
  std::vector<char> stack;
  bool in_string = false;
  bool escaped = false;
  for (char c : text) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_string = true;
        break;
      case '{':
      case '[':
        stack.push_back(c);
        break;
      case '}':
        if (stack.empty() || stack.back() != '{') return false;
        stack.pop_back();
        break;
      case ']':
        if (stack.empty() || stack.back() != '[') return false;
        stack.pop_back();
        break;
      default:
        break;
    }
  }
  return stack.empty() && !in_string;
}

std::size_t CountOccurrences(const std::string& text,
                             const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

TEST_F(ObsTest, ChromeTraceExportIsWellFormedAndDeterministic) {
  {
    ObsSpan outer("export_outer");
    outer.Annotate("label", "quoted \"value\"\n");
    ObsSpan inner("export_inner");
    inner.Annotate("nnz", std::uint64_t{7});
    inner.End();
    outer.End();
  }
  Tracer::Get().RecordInstant("marker");

  std::ostringstream first, second;
  Tracer::Get().WriteChromeTrace(first);
  Tracer::Get().WriteChromeTrace(second);
  const std::string json = first.str();

  // Round trip: exporting twice from the same state is byte-identical.
  EXPECT_EQ(json, second.str());

  EXPECT_TRUE(JsonIsBalanced(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  // One complete event per span, one instant event.
  EXPECT_EQ(CountOccurrences(json, "\"ph\":\"X\""), 2u);
  EXPECT_EQ(CountOccurrences(json, "\"ph\":\"i\""), 1u);
  EXPECT_NE(json.find("\"export_outer\""), std::string::npos);
  EXPECT_NE(json.find("\"export_inner\""), std::string::npos);
  EXPECT_NE(json.find("\"nnz\":7"), std::string::npos);
  // The annotation with quotes/newline must be escaped.
  EXPECT_NE(json.find("quoted \\\"value\\\"\\n"), std::string::npos);
}

TEST_F(ObsTest, JsonEscapeHandlesControlCharacters) {
  std::string out;
  internal::JsonEscape(std::string_view("a\"b\\c\n\t\x01", 8), &out);
  EXPECT_EQ(out, "a\\\"b\\\\c\\n\\t\\u0001");
}

TEST_F(ObsTest, WarningLogsBecomeTraceInstants) {
  M2TD_LOG_WARNING() << "trace-mirrored warning";
  const std::vector<InstantRecord> instants = Tracer::Get().Instants();
  ASSERT_EQ(instants.size(), 1u);
  EXPECT_NE(instants[0].name.find("trace-mirrored warning"),
            std::string::npos);
}

TEST_F(ObsTest, TextSummaryListsSpans) {
  {
    ObsSpan outer("summary_outer");
    ObsSpan inner("summary_inner");
  }
  std::ostringstream os;
  Tracer::Get().WriteTextSummary(os);
  const std::string summary = os.str();
  EXPECT_NE(summary.find("summary_outer"), std::string::npos);
  EXPECT_NE(summary.find("summary_inner"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Metrics.

TEST_F(ObsTest, CounterSumsExactlyUnderContention) {
  constexpr int kThreads = 8;
  constexpr int kIncrements = 10000;
  Counter& counter = GetCounter("test.contended");
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kIncrements; ++i) counter.Increment();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter.value(),
            static_cast<std::uint64_t>(kThreads) * kIncrements);
}

TEST_F(ObsTest, DisabledMetricsAreNoOps) {
  SetMetricsEnabled(false);
  Counter& counter = GetCounter("test.disabled_counter");
  Gauge& gauge = GetGauge("test.disabled_gauge");
  Histogram& hist = GetHistogram("test.disabled_hist");
  counter.Add(5);
  gauge.Set(3.5);
  hist.Observe(8);
  EXPECT_EQ(counter.value(), 0u);
  EXPECT_EQ(gauge.value(), 0.0);
  EXPECT_EQ(hist.Count(), 0u);
}

TEST_F(ObsTest, GetCounterReturnsSameInstance) {
  Counter& a = GetCounter("test.same");
  Counter& b = GetCounter("test.same");
  EXPECT_EQ(&a, &b);
  a.Add(2);
  EXPECT_EQ(b.value(), 2u);
}

TEST_F(ObsTest, HistogramBucketBoundaries) {
  // Index: 0 -> 0; 1 -> 1; 2,3 -> 2; 4..7 -> 3; 2^(b-1) opens bucket b.
  EXPECT_EQ(Histogram::BucketIndex(0), 0);
  EXPECT_EQ(Histogram::BucketIndex(1), 1);
  EXPECT_EQ(Histogram::BucketIndex(2), 2);
  EXPECT_EQ(Histogram::BucketIndex(3), 2);
  EXPECT_EQ(Histogram::BucketIndex(4), 3);
  EXPECT_EQ(Histogram::BucketIndex(7), 3);
  EXPECT_EQ(Histogram::BucketIndex(8), 4);
  EXPECT_EQ(Histogram::BucketIndex((std::uint64_t{1} << 63) - 1), 63);
  EXPECT_EQ(Histogram::BucketIndex(std::uint64_t{1} << 63), 64);
  EXPECT_EQ(Histogram::BucketIndex(~std::uint64_t{0}), 64);

  EXPECT_EQ(Histogram::BucketLowerBound(0), 0u);
  EXPECT_EQ(Histogram::BucketLowerBound(1), 1u);
  EXPECT_EQ(Histogram::BucketLowerBound(2), 2u);
  EXPECT_EQ(Histogram::BucketLowerBound(3), 4u);
  EXPECT_EQ(Histogram::BucketLowerBound(64), std::uint64_t{1} << 63);

  // Every value lands in the bucket whose range contains it.
  for (int b = 1; b < Histogram::kNumBuckets; ++b) {
    const std::uint64_t lo = Histogram::BucketLowerBound(b);
    EXPECT_EQ(Histogram::BucketIndex(lo), b);
    EXPECT_EQ(Histogram::BucketIndex(lo + (lo - 1)), b);  // top of range
  }
}

TEST_F(ObsTest, HistogramObserveCountsAndSums) {
  Histogram& hist = GetHistogram("test.hist");
  for (std::uint64_t v : {0ull, 1ull, 2ull, 3ull, 1024ull}) hist.Observe(v);
  EXPECT_EQ(hist.Count(), 5u);
  EXPECT_EQ(hist.Sum(), 1030u);
  EXPECT_EQ(hist.BucketCount(0), 1u);   // 0
  EXPECT_EQ(hist.BucketCount(1), 1u);   // 1
  EXPECT_EQ(hist.BucketCount(2), 2u);   // 2, 3
  EXPECT_EQ(hist.BucketCount(11), 1u);  // 1024 = 2^10
}

TEST_F(ObsTest, MetricsJsonIsWellFormed) {
  GetCounter("test.json_counter").Add(3);
  GetGauge("test.json_gauge").Set(1.5);
  GetHistogram("test.json_hist").Observe(10);
  std::ostringstream os;
  WriteMetricsJson(os);
  const std::string json = os.str();
  EXPECT_TRUE(JsonIsBalanced(json)) << json;
  EXPECT_NE(json.find("\"test.json_counter\":3"), std::string::npos);
  EXPECT_NE(json.find("\"test.json_gauge\":1.5"), std::string::npos);
  EXPECT_NE(json.find("\"test.json_hist\""), std::string::npos);
}

TEST_F(ObsTest, ResetMetricsZeroesEverything) {
  GetCounter("test.reset_counter").Add(9);
  GetHistogram("test.reset_hist").Observe(9);
  ResetMetrics();
  EXPECT_EQ(GetCounter("test.reset_counter").value(), 0u);
  EXPECT_EQ(GetHistogram("test.reset_hist").Count(), 0u);
}

}  // namespace
}  // namespace m2td::obs
