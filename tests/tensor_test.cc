#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "linalg/matrix.h"
#include "linalg/qr.h"
#include "tensor/dense_tensor.h"
#include "tensor/matricize.h"
#include "tensor/sparse_tensor.h"
#include "tensor/ttm.h"
#include "tensor/tucker.h"
#include "util/random.h"

namespace m2td::tensor {
namespace {

DenseTensor RandomDense(const std::vector<std::uint64_t>& shape, Rng* rng) {
  DenseTensor x(shape);
  for (std::uint64_t i = 0; i < x.NumElements(); ++i) {
    x.flat(i) = rng->Gaussian();
  }
  return x;
}

SparseTensor RandomSparse(const std::vector<std::uint64_t>& shape,
                          std::uint64_t nnz, Rng* rng) {
  SparseTensor x(shape);
  std::vector<std::uint32_t> idx(shape.size());
  for (std::uint64_t e = 0; e < nnz; ++e) {
    for (std::size_t m = 0; m < shape.size(); ++m) {
      idx[m] = static_cast<std::uint32_t>(rng->UniformInt(shape[m]));
    }
    x.AppendEntry(idx, rng->Gaussian());
  }
  x.SortAndCoalesce();
  return x;
}

// ------------------------------------------------------------ DenseTensor

TEST(DenseTensorTest, ShapeStridesAndIndexing) {
  DenseTensor x({2, 3, 4});
  EXPECT_EQ(x.NumElements(), 24u);
  EXPECT_EQ(x.Stride(0), 12u);
  EXPECT_EQ(x.Stride(1), 4u);
  EXPECT_EQ(x.Stride(2), 1u);
  x.at({1, 2, 3}) = 7.0;
  EXPECT_EQ(x.flat(23), 7.0);
  EXPECT_EQ(x.LinearIndex({1, 2, 3}), 23u);
  EXPECT_EQ(x.MultiIndex(23), (std::vector<std::uint32_t>{1, 2, 3}));
}

TEST(DenseTensorTest, LinearAndMultiIndexRoundTrip) {
  DenseTensor x({3, 4, 2, 5});
  Rng rng(4);
  for (int trial = 0; trial < 50; ++trial) {
    const std::uint64_t linear = rng.UniformInt(x.NumElements());
    EXPECT_EQ(x.LinearIndex(x.MultiIndex(linear)), linear);
  }
}

TEST(DenseTensorTest, FillAndNorm) {
  DenseTensor x({2, 2});
  x.Fill(3.0);
  EXPECT_DOUBLE_EQ(x.FrobeniusNorm(), 6.0);
  EXPECT_EQ(x.CountAbove(2.9), 4u);
  EXPECT_EQ(x.CountAbove(3.1), 0u);
}

TEST(DenseTensorTest, FrobeniusDistance) {
  DenseTensor a({2, 2}), b({2, 2});
  a.Fill(1.0);
  b.Fill(4.0);
  EXPECT_DOUBLE_EQ(DenseTensor::FrobeniusDistance(a, b), 6.0);
}

TEST(DenseTensorTest, PermuteModes) {
  Rng rng(9);
  DenseTensor x = RandomDense({2, 3, 4}, &rng);
  auto permuted = x.PermuteModes({2, 0, 1});
  ASSERT_TRUE(permuted.ok());
  EXPECT_EQ(permuted->shape(), (std::vector<std::uint64_t>{4, 2, 3}));
  for (std::uint32_t i = 0; i < 2; ++i) {
    for (std::uint32_t j = 0; j < 3; ++j) {
      for (std::uint32_t l = 0; l < 4; ++l) {
        EXPECT_EQ(permuted->at({l, i, j}), x.at({i, j, l}));
      }
    }
  }
}

TEST(DenseTensorTest, PermuteModesValidation) {
  DenseTensor x({2, 3});
  EXPECT_FALSE(x.PermuteModes({0}).ok());
  EXPECT_FALSE(x.PermuteModes({0, 0}).ok());
  EXPECT_FALSE(x.PermuteModes({0, 5}).ok());
}

TEST(DenseTensorTest, PermuteIdentityIsNoop) {
  Rng rng(2);
  DenseTensor x = RandomDense({3, 2, 2}, &rng);
  auto same = x.PermuteModes({0, 1, 2});
  ASSERT_TRUE(same.ok());
  EXPECT_DOUBLE_EQ(DenseTensor::FrobeniusDistance(x, *same), 0.0);
}

// ----------------------------------------------------------- SparseTensor

TEST(SparseTensorTest, AppendAndBasicAccessors) {
  SparseTensor x({4, 5});
  EXPECT_EQ(x.NumNonZeros(), 0u);
  EXPECT_EQ(x.LogicalSize(), 20u);
  x.AppendEntry({1, 2}, 3.5);
  x.AppendEntry({0, 4}, -1.0);
  EXPECT_EQ(x.NumNonZeros(), 2u);
  EXPECT_DOUBLE_EQ(x.Density(), 0.1);
  EXPECT_EQ(x.Index(0, 0), 1u);
  EXPECT_EQ(x.Index(1, 0), 2u);
  EXPECT_DOUBLE_EQ(x.Value(0), 3.5);
}

TEST(SparseTensorTest, SortAndCoalesceSum) {
  SparseTensor x({3, 3});
  x.AppendEntry({2, 2}, 1.0);
  x.AppendEntry({0, 1}, 2.0);
  x.AppendEntry({2, 2}, 3.0);
  x.AppendEntry({0, 1}, 5.0);
  x.SortAndCoalesce(CoalescePolicy::kSum);
  ASSERT_EQ(x.NumNonZeros(), 2u);
  EXPECT_EQ(*x.Find({0, 1}), 7.0);
  EXPECT_EQ(*x.Find({2, 2}), 4.0);
}

TEST(SparseTensorTest, SortAndCoalesceMean) {
  SparseTensor x({3, 3});
  x.AppendEntry({1, 1}, 2.0);
  x.AppendEntry({1, 1}, 4.0);
  x.AppendEntry({1, 1}, 6.0);
  x.AppendEntry({0, 0}, 10.0);
  x.SortAndCoalesce(CoalescePolicy::kMean);
  EXPECT_EQ(*x.Find({1, 1}), 4.0);
  EXPECT_EQ(*x.Find({0, 0}), 10.0);
}

TEST(SparseTensorTest, CoalesceIsIdempotent) {
  Rng rng(3);
  SparseTensor x = RandomSparse({6, 6, 6}, 50, &rng);
  const std::uint64_t nnz = x.NumNonZeros();
  const double norm = x.FrobeniusNorm();
  x.SortAndCoalesce();
  EXPECT_EQ(x.NumNonZeros(), nnz);
  EXPECT_DOUBLE_EQ(x.FrobeniusNorm(), norm);
}

TEST(SparseTensorTest, FindMissingReturnsNullopt) {
  SparseTensor x({2, 2});
  x.AppendEntry({0, 0}, 1.0);
  x.SortAndCoalesce();
  EXPECT_FALSE(x.Find({1, 1}).has_value());
  EXPECT_TRUE(x.Find({0, 0}).has_value());
}

TEST(SparseTensorTest, DenseRoundTrip) {
  Rng rng(5);
  SparseTensor x = RandomSparse({4, 3, 5}, 25, &rng);
  DenseTensor dense = x.ToDense();
  SparseTensor back = SparseTensor::FromDense(dense);
  EXPECT_EQ(back.NumNonZeros(), x.NumNonZeros());
  DenseTensor dense2 = back.ToDense();
  EXPECT_DOUBLE_EQ(DenseTensor::FrobeniusDistance(dense, dense2), 0.0);
}

TEST(SparseTensorTest, FromDenseSkipsZeros) {
  DenseTensor dense({2, 2});
  dense.at({0, 1}) = 5.0;
  SparseTensor sparse = SparseTensor::FromDense(dense);
  EXPECT_EQ(sparse.NumNonZeros(), 1u);
  EXPECT_TRUE(sparse.IsSorted());
  EXPECT_EQ(*sparse.Find({0, 1}), 5.0);
}

TEST(SparseTensorTest, FrobeniusNormMatchesDense) {
  Rng rng(6);
  SparseTensor x = RandomSparse({5, 5}, 10, &rng);
  EXPECT_NEAR(x.FrobeniusNorm(), x.ToDense().FrobeniusNorm(), 1e-12);
}

TEST(SparseTensorTest, MatricizationColumnMatchesDenseConvention) {
  SparseTensor x({2, 3, 4});
  x.AppendEntry({1, 2, 3}, 1.0);
  // Column for mode 1: linear over (mode0, mode2) = 1*4 + 3.
  EXPECT_EQ(x.MatricizationColumn(1, 0), 7u);
  // Mode 0: linear over (mode1, mode2) = 2*4 + 3.
  EXPECT_EQ(x.MatricizationColumn(0, 0), 11u);
  // Mode 2: linear over (mode0, mode1) = 1*3 + 2.
  EXPECT_EQ(x.MatricizationColumn(2, 0), 5u);
}

// ----------------------------------------------------------- Matricize

TEST(MatricizeTest, SparseGramMatchesDenseGram) {
  Rng rng(17);
  SparseTensor x = RandomSparse({5, 4, 6}, 40, &rng);
  DenseTensor dense = x.ToDense();
  for (std::size_t mode = 0; mode < 3; ++mode) {
    auto sparse_gram = ModeGram(x, mode);
    auto dense_gram = ModeGramDense(dense, mode);
    ASSERT_TRUE(sparse_gram.ok());
    ASSERT_TRUE(dense_gram.ok());
    EXPECT_LT(linalg::Matrix::MaxAbsDiff(*sparse_gram, *dense_gram), 1e-10)
        << "mode " << mode;
  }
}

TEST(MatricizeTest, GramIsSymmetricPsd) {
  Rng rng(18);
  SparseTensor x = RandomSparse({6, 6, 6}, 60, &rng);
  auto gram = ModeGram(x, 0);
  ASSERT_TRUE(gram.ok());
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_GE((*gram)(i, i), 0.0);
    for (std::size_t j = 0; j < 6; ++j) {
      EXPECT_DOUBLE_EQ((*gram)(i, j), (*gram)(j, i));
    }
  }
  // trace(G) == ||X||_F^2.
  double trace = 0.0;
  for (std::size_t i = 0; i < 6; ++i) trace += (*gram)(i, i);
  EXPECT_NEAR(trace, x.FrobeniusNorm() * x.FrobeniusNorm(), 1e-10);
}

TEST(MatricizeTest, RequiresCoalescedInput) {
  SparseTensor x({2, 2});
  x.AppendEntry({0, 0}, 1.0);
  EXPECT_FALSE(ModeGram(x, 0).ok());
  x.SortAndCoalesce();
  EXPECT_TRUE(ModeGram(x, 0).ok());
}

TEST(MatricizeTest, ModeOutOfRangeRejected) {
  SparseTensor x({2, 2});
  x.SortAndCoalesce();
  EXPECT_FALSE(ModeGram(x, 2).ok());
}

TEST(MatricizeTest, DenseMatricizationShape) {
  Rng rng(19);
  DenseTensor x = RandomDense({3, 4, 5}, &rng);
  auto unfolded = Matricize(x, 1);
  ASSERT_TRUE(unfolded.ok());
  EXPECT_EQ(unfolded->rows(), 4u);
  EXPECT_EQ(unfolded->cols(), 15u);
  // Element check against the column convention (mode0-major).
  EXPECT_EQ((*unfolded)(2, 1 * 5 + 3), x.at({1, 2, 3}));
}

// ------------------------------------------------------------------ TTM

TEST(TtmTest, ModeProductMatchesManualComputation) {
  // X is 2x2, U is 3x2: Y = X x_0 U has shape 3x2.
  DenseTensor x({2, 2});
  x.at({0, 0}) = 1.0;
  x.at({0, 1}) = 2.0;
  x.at({1, 0}) = 3.0;
  x.at({1, 1}) = 4.0;
  linalg::Matrix u(3, 2, {1, 0, 0, 1, 1, 1});
  auto y = ModeProduct(x, u, 0, /*transpose_u=*/false);
  ASSERT_TRUE(y.ok());
  EXPECT_EQ(y->shape(), (std::vector<std::uint64_t>{3, 2}));
  EXPECT_EQ(y->at({0, 0}), 1.0);
  EXPECT_EQ(y->at({1, 1}), 4.0);
  EXPECT_EQ(y->at({2, 0}), 4.0);  // row0 + row1
  EXPECT_EQ(y->at({2, 1}), 6.0);
}

TEST(TtmTest, ModeProductEqualsMatricizedMultiply) {
  Rng rng(23);
  DenseTensor x = RandomDense({4, 5, 3}, &rng);
  linalg::Matrix u(6, 5);
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t j = 0; j < 5; ++j) u(i, j) = rng.Gaussian();
  }
  auto y = ModeProduct(x, u, 1, /*transpose_u=*/false);
  ASSERT_TRUE(y.ok());
  // Check Y_(1) == U X_(1).
  auto x1 = Matricize(x, 1);
  auto y1 = Matricize(*y, 1);
  ASSERT_TRUE(x1.ok() && y1.ok());
  linalg::Matrix expected = linalg::Multiply(u, *x1);
  EXPECT_LT(linalg::Matrix::MaxAbsDiff(expected, *y1), 1e-10);
}

TEST(TtmTest, SparseModeProductMatchesDense) {
  Rng rng(29);
  SparseTensor x = RandomSparse({4, 5, 3}, 20, &rng);
  DenseTensor dense = x.ToDense();
  linalg::Matrix u(5, 2);
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = 0; j < 2; ++j) u(i, j) = rng.Gaussian();
  }
  auto sparse_result = SparseModeProduct(x, u, 1, /*transpose_u=*/true);
  auto dense_result = ModeProduct(dense, u, 1, /*transpose_u=*/true);
  ASSERT_TRUE(sparse_result.ok() && dense_result.ok());
  EXPECT_NEAR(
      DenseTensor::FrobeniusDistance(*sparse_result, *dense_result), 0.0,
      1e-10);
}

TEST(TtmTest, TransposeContractionShapeChecks) {
  DenseTensor x({3, 4});
  linalg::Matrix u(3, 2);
  // Non-transposed U needs cols == dim: 2 != 3 -> error.
  EXPECT_FALSE(ModeProduct(x, u, 0, false).ok());
  // Transposed U needs rows == dim: 3 == 3 -> ok, new dim = 2.
  auto y = ModeProduct(x, u, 0, true);
  ASSERT_TRUE(y.ok());
  EXPECT_EQ(y->dim(0), 2u);
}

TEST(TtmTest, CoreFromSparseMatchesDenseChain) {
  Rng rng(31);
  SparseTensor x = RandomSparse({4, 4, 4}, 30, &rng);
  std::vector<linalg::Matrix> factors;
  for (int m = 0; m < 3; ++m) {
    linalg::Matrix u(4, 2);
    for (std::size_t i = 0; i < 4; ++i) {
      for (std::size_t j = 0; j < 2; ++j) u(i, j) = rng.Gaussian();
    }
    factors.push_back(std::move(u));
  }
  auto sparse_core = CoreFromSparse(x, factors);
  auto dense_core = CoreFromDense(x.ToDense(), factors);
  ASSERT_TRUE(sparse_core.ok() && dense_core.ok());
  EXPECT_NEAR(DenseTensor::FrobeniusDistance(*sparse_core, *dense_core), 0.0,
              1e-10);
}

TEST(TtmTest, ExpandCoreInvertsProjectionForOrthonormalFactors) {
  // For X in the span of orthonormal factors, (X x U^T) x U == X.
  Rng rng(37);
  std::vector<linalg::Matrix> factors;
  for (int m = 0; m < 2; ++m) {
    factors.push_back(linalg::Matrix::Identity(3));
  }
  DenseTensor x = RandomDense({3, 3}, &rng);
  auto core = CoreFromDense(x, factors);
  ASSERT_TRUE(core.ok());
  auto back = ExpandCore(*core, factors);
  ASSERT_TRUE(back.ok());
  EXPECT_NEAR(DenseTensor::FrobeniusDistance(x, *back), 0.0, 1e-12);
}

TEST(TtmTest, FactorCountValidation) {
  SparseTensor x({2, 2});
  x.SortAndCoalesce();
  EXPECT_FALSE(CoreFromSparse(x, {}).ok());
}

// ---------------------------------------------------------------- Tucker

TEST(TuckerTest, ExactRecoveryAtFullRank) {
  Rng rng(41);
  DenseTensor x = RandomDense({4, 3, 5}, &rng);
  auto tucker = HosvdDense(x, {4, 3, 5});
  ASSERT_TRUE(tucker.ok());
  auto reconstructed = Reconstruct(*tucker);
  ASSERT_TRUE(reconstructed.ok());
  EXPECT_NEAR(DenseTensor::FrobeniusDistance(x, *reconstructed), 0.0, 1e-9);
  EXPECT_NEAR(ReconstructionAccuracy(*reconstructed, x), 1.0, 1e-9);
}

TEST(TuckerTest, SparseMatchesDenseHosvd) {
  Rng rng(43);
  SparseTensor x = RandomSparse({5, 5, 5}, 40, &rng);
  auto sparse_tucker = HosvdSparse(x, {3, 3, 3});
  auto dense_tucker = HosvdDense(x.ToDense(), {3, 3, 3});
  ASSERT_TRUE(sparse_tucker.ok() && dense_tucker.ok());
  auto r1 = Reconstruct(*sparse_tucker);
  auto r2 = Reconstruct(*dense_tucker);
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_NEAR(DenseTensor::FrobeniusDistance(*r1, *r2), 0.0, 1e-8);
}

TEST(TuckerTest, LowRankTensorRecoveredExactly) {
  // Build a rank-(2,2,2) tensor from a random core and orthonormal factors;
  // HOSVD at rank 2 must recover it exactly.
  Rng rng(47);
  DenseTensor core({2, 2, 2});
  for (std::uint64_t i = 0; i < core.NumElements(); ++i) {
    core.flat(i) = rng.Gaussian();
  }
  std::vector<linalg::Matrix> factors;
  for (int m = 0; m < 3; ++m) {
    linalg::Matrix g(6, 2);
    for (std::size_t i = 0; i < 6; ++i) {
      for (std::size_t j = 0; j < 2; ++j) g(i, j) = rng.Gaussian();
    }
    auto q = linalg::OrthonormalizeColumns(g);
    ASSERT_TRUE(q.ok());
    factors.push_back(std::move(*q));
  }
  auto x = ExpandCore(core, factors);
  ASSERT_TRUE(x.ok());
  auto tucker = HosvdDense(*x, {2, 2, 2});
  ASSERT_TRUE(tucker.ok());
  auto reconstructed = Reconstruct(*tucker);
  ASSERT_TRUE(reconstructed.ok());
  EXPECT_NEAR(DenseTensor::FrobeniusDistance(*x, *reconstructed), 0.0, 1e-9);
}

TEST(TuckerTest, RanksClampToModeLengths) {
  Rng rng(53);
  SparseTensor x = RandomSparse({3, 3, 3}, 15, &rng);
  auto tucker = HosvdSparse(x, {10, 10, 10});
  ASSERT_TRUE(tucker.ok());
  EXPECT_EQ(tucker->core.shape(), (std::vector<std::uint64_t>{3, 3, 3}));
  EXPECT_EQ(tucker->ReconstructedShape(),
            (std::vector<std::uint64_t>{3, 3, 3}));
}

TEST(TuckerTest, InvalidRanksRejected) {
  SparseTensor x({2, 2});
  x.SortAndCoalesce();
  EXPECT_FALSE(HosvdSparse(x, {2}).ok());
  EXPECT_FALSE(HosvdSparse(x, {0, 2}).ok());
}

TEST(TuckerTest, UncoalescedInputRejected) {
  SparseTensor x({2, 2});
  x.AppendEntry({0, 0}, 1.0);
  EXPECT_FALSE(HosvdSparse(x, {2, 2}).ok());
}

TEST(TuckerTest, AccuracyMetricProperties) {
  DenseTensor y({2, 2});
  y.Fill(2.0);
  // Perfect reconstruction -> 1.0.
  EXPECT_DOUBLE_EQ(ReconstructionAccuracy(y, y), 1.0);
  // All-zero reconstruction -> 0.0.
  DenseTensor zero({2, 2});
  EXPECT_DOUBLE_EQ(ReconstructionAccuracy(zero, y), 0.0);
  // Zero ground truth -> defined as 0.
  EXPECT_DOUBLE_EQ(ReconstructionAccuracy(y, zero), 0.0);
}

TEST(TuckerTest, HigherRankNeverHurtsAccuracy) {
  Rng rng(59);
  DenseTensor x = RandomDense({5, 5, 5}, &rng);
  double last = -1.0;
  for (std::uint64_t rank : {1, 2, 3, 4, 5}) {
    auto tucker = HosvdDense(x, {rank, rank, rank});
    ASSERT_TRUE(tucker.ok());
    auto r = Reconstruct(*tucker);
    ASSERT_TRUE(r.ok());
    const double acc = ReconstructionAccuracy(*r, x);
    EXPECT_GE(acc, last - 1e-9) << "rank " << rank;
    last = acc;
  }
  EXPECT_NEAR(last, 1.0, 1e-9);
}

// ------------------------------------------------- ingest validation

TEST(SparseTensorTest, AppendEntryCheckedRejectsNaNNamingCoordinate) {
  SparseTensor x({4, 3, 5});
  const Status s = x.AppendEntryChecked(
      {1, 2, 3}, std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("NaN"), std::string::npos) << s.message();
  EXPECT_NE(s.message().find("(1, 2, 3)"), std::string::npos) << s.message();
  EXPECT_EQ(x.NumNonZeros(), 0u);  // nothing partially appended
}

TEST(SparseTensorTest, AppendEntryCheckedRejectsInfinity) {
  SparseTensor x({2, 2});
  const Status s =
      x.AppendEntryChecked({0, 1}, -std::numeric_limits<double>::infinity());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("infinite"), std::string::npos) << s.message();
  EXPECT_NE(s.message().find("(0, 1)"), std::string::npos) << s.message();
}

TEST(SparseTensorTest, AppendEntryCheckedRejectsBadArityAndRange) {
  SparseTensor x({2, 2});
  EXPECT_EQ(x.AppendEntryChecked({0}, 1.0).code(),
            StatusCode::kInvalidArgument);
  const Status range = x.AppendEntryChecked({0, 5}, 1.0);
  EXPECT_EQ(range.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(range.message().find("(0, 5)"), std::string::npos)
      << range.message();
  EXPECT_TRUE(x.AppendEntryChecked({0, 1}, 1.0).ok());
  EXPECT_EQ(x.NumNonZeros(), 1u);
}

TEST(SparseTensorTest, CheckFiniteLocatesOffendingCoordinate) {
  SparseTensor x({3, 3});
  x.AppendEntry({0, 0}, 1.0);
  // Unchecked append models data corrupted after construction.
  x.AppendEntry({2, 1}, std::numeric_limits<double>::quiet_NaN());
  EXPECT_TRUE(SparseTensor({3, 3}).CheckFinite().ok());
  const Status s = x.CheckFinite();
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("(2, 1)"), std::string::npos) << s.message();
}

}  // namespace
}  // namespace m2td::tensor
