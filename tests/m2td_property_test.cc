// Property-style sweeps over the M2TD pipeline: invariants that must hold
// for every combination of resolution, rank, pivot choice, pivot count,
// stitching mode, and method — parameterized gtest over the cross product.

#include <cmath>
#include <memory>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "core/dm2td.h"
#include "core/je_stitch.h"
#include "core/m2td.h"
#include "core/pf_partition.h"
#include "ensemble/simulation_model.h"
#include "linalg/matrix.h"
#include "tensor/tucker.h"
#include "util/random.h"

namespace m2td::core {
namespace {

std::unique_ptr<ensemble::DynamicalSystemModel> TinyModel(
    std::uint32_t resolution) {
  ensemble::ModelOptions options;
  options.parameter_resolution = resolution;
  options.time_resolution = resolution;
  options.dt = 0.02;
  options.record_every = 4;
  auto model = ensemble::MakeDoublePendulumModel(options);
  EXPECT_TRUE(model.ok()) << model.status();
  return std::move(model).ValueOrDie();
}

// ----------------------------------------------------------------------
// Sweep 1: (resolution, rank, pivot mode) — pipeline invariants.

using PipelineParam = std::tuple<std::uint32_t, std::uint64_t, std::size_t>;

class M2tdPipelineProperty
    : public ::testing::TestWithParam<PipelineParam> {};

TEST_P(M2tdPipelineProperty, InvariantsHold) {
  const auto [resolution, rank, pivot] = GetParam();
  auto model = TinyModel(resolution);
  auto partition = MakePartition(5, {pivot});
  ASSERT_TRUE(partition.ok());
  auto subs = BuildSubEnsembles(model.get(), *partition, {});
  ASSERT_TRUE(subs.ok());

  // Budget arithmetic: both sides are full P x E grids.
  const std::uint64_t p = subs->pivot_configs.size();
  const std::uint64_t e1 = subs->side1_configs.size();
  const std::uint64_t e2 = subs->side2_configs.size();
  EXPECT_EQ(subs->x1.NumNonZeros(), p * e1);
  EXPECT_EQ(subs->x2.NumNonZeros(), p * e2);
  EXPECT_EQ(subs->cells_evaluated, p * (e1 + e2));

  // Join density: exactly P * E1 * E2 cells.
  auto join = JeStitch(*subs, *partition, model->space().Shape(), {});
  ASSERT_TRUE(join.ok());
  EXPECT_EQ(join->NumNonZeros(), p * e1 * e2);

  // Full M2TD decomposition invariants.
  M2tdOptions options;
  options.method = M2tdMethod::kSelect;
  options.ranks = std::vector<std::uint64_t>(5, rank);
  auto result =
      M2tdDecompose(*subs, *partition, model->space().Shape(), options);
  ASSERT_TRUE(result.ok());
  const std::uint64_t clamped = std::min<std::uint64_t>(rank, resolution);
  for (const auto& factor : result->tucker.factors) {
    EXPECT_EQ(factor.rows(), resolution);
    EXPECT_EQ(factor.cols(), clamped);
  }
  EXPECT_EQ(result->tucker.core.shape(),
            std::vector<std::uint64_t>(5, clamped));
  EXPECT_EQ(result->join_nnz, p * e1 * e2);

  // Reconstruction is finite and at most perfectly accurate.
  auto reconstructed = tensor::Reconstruct(result->tucker);
  ASSERT_TRUE(reconstructed.ok());
  for (std::uint64_t i = 0; i < reconstructed->NumElements(); ++i) {
    ASSERT_TRUE(std::isfinite(reconstructed->flat(i)));
  }
  auto ground_truth = ensemble::BuildFullTensor(model.get());
  ASSERT_TRUE(ground_truth.ok());
  const double accuracy =
      tensor::ReconstructionAccuracy(*reconstructed, *ground_truth);
  EXPECT_LE(accuracy, 1.0 + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, M2tdPipelineProperty,
    ::testing::Combine(::testing::Values(4u, 5u, 6u),
                       ::testing::Values(2ULL, 3ULL, 10ULL),
                       ::testing::Values(std::size_t{0}, std::size_t{2},
                                         std::size_t{4})),
    [](const auto& info) {
      return "res" + std::to_string(std::get<0>(info.param)) + "_rank" +
             std::to_string(std::get<1>(info.param)) + "_pivot" +
             std::to_string(std::get<2>(info.param));
    });

// ----------------------------------------------------------------------
// Sweep 2: every method x stitching mode — local/distributed equivalence.

using MethodParam = std::tuple<M2tdMethod, bool>;

class M2tdMethodEquivalence : public ::testing::TestWithParam<MethodParam> {};

TEST_P(M2tdMethodEquivalence, DistributedMatchesLocal) {
  const auto [method, zero_join] = GetParam();
  auto model = TinyModel(5);
  auto partition = MakePartition(5, {0});
  ASSERT_TRUE(partition.ok());
  SubEnsembleOptions sub_options;
  sub_options.cell_density = zero_join ? 0.5 : 1.0;
  auto subs = BuildSubEnsembles(model.get(), *partition, sub_options);
  ASSERT_TRUE(subs.ok());

  M2tdOptions local_options;
  local_options.method = method;
  local_options.ranks = std::vector<std::uint64_t>(5, 3);
  local_options.stitch.zero_join = zero_join;
  auto local = M2tdDecompose(*subs, *partition, model->space().Shape(),
                             local_options);
  ASSERT_TRUE(local.ok());

  DM2tdOptions dist_options;
  dist_options.method = method;
  dist_options.ranks = local_options.ranks;
  dist_options.stitch.zero_join = zero_join;
  dist_options.num_workers = 3;
  auto dist = DM2tdDecompose(*subs, *partition, model->space().Shape(),
                             dist_options);
  ASSERT_TRUE(dist.ok());

  EXPECT_EQ(dist->join_nnz, local->join_nnz);
  auto r_local = tensor::Reconstruct(local->tucker);
  auto r_dist = tensor::Reconstruct(dist->tucker);
  ASSERT_TRUE(r_local.ok() && r_dist.ok());
  EXPECT_NEAR(tensor::DenseTensor::FrobeniusDistance(*r_local, *r_dist), 0.0,
              1e-8);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, M2tdMethodEquivalence,
    ::testing::Combine(::testing::Values(M2tdMethod::kAvg,
                                         M2tdMethod::kConcat,
                                         M2tdMethod::kSelect,
                                         M2tdMethod::kWeighted),
                       ::testing::Bool()),
    [](const auto& info) {
      std::string name;
      switch (std::get<0>(info.param)) {
        case M2tdMethod::kAvg:
          name = "Avg";
          break;
        case M2tdMethod::kConcat:
          name = "Concat";
          break;
        case M2tdMethod::kSelect:
          name = "Select";
          break;
        case M2tdMethod::kWeighted:
          name = "Weighted";
          break;
      }
      return name + (std::get<1>(info.param) ? "ZeroJoin" : "Join");
    });

// ----------------------------------------------------------------------
// Heterogeneous ranks: each mode may target a different rank.

TEST(HeterogeneousRanksTest, PerModeRanksRespected) {
  auto model = TinyModel(5);
  auto partition = MakePartition(5, {0});
  ASSERT_TRUE(partition.ok());
  auto subs = BuildSubEnsembles(model.get(), *partition, {});
  ASSERT_TRUE(subs.ok());
  M2tdOptions options;
  options.ranks = {2, 3, 1, 4, 2};
  auto result =
      M2tdDecompose(*subs, *partition, model->space().Shape(), options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->tucker.core.shape(),
            (std::vector<std::uint64_t>{2, 3, 1, 4, 2}));
  for (std::size_t m = 0; m < 5; ++m) {
    EXPECT_EQ(result->tucker.factors[m].cols(), options.ranks[m])
        << "mode " << m;
  }
  auto reconstructed = tensor::Reconstruct(result->tucker);
  ASSERT_TRUE(reconstructed.ok());
  EXPECT_EQ(reconstructed->shape(), model->space().Shape());

  // Distributed pipeline honors the same heterogeneous ranks.
  DM2tdOptions dist_options;
  dist_options.ranks = options.ranks;
  dist_options.num_workers = 2;
  auto dist = DM2tdDecompose(*subs, *partition, model->space().Shape(),
                             dist_options);
  ASSERT_TRUE(dist.ok());
  EXPECT_EQ(dist->tucker.core.shape(), result->tucker.core.shape());
  auto r_dist = tensor::Reconstruct(dist->tucker);
  ASSERT_TRUE(r_dist.ok());
  EXPECT_NEAR(
      tensor::DenseTensor::FrobeniusDistance(*reconstructed, *r_dist), 0.0,
      1e-8);
}

// ----------------------------------------------------------------------
// Multi-pivot (k = 2) support.

TEST(MultiPivotTest, TwoPivotPartitionAndStitch) {
  auto model = TinyModel(4);
  // Pivots {0, 1}: sides {2} and {3, 4} by the default split... the
  // remaining three modes split as 1 + 2.
  auto partition = MakePartition(5, {0, 1});
  ASSERT_TRUE(partition.ok());
  EXPECT_EQ(partition->pivot_modes.size(), 2u);
  EXPECT_EQ(partition->side1_modes, (std::vector<std::size_t>{2}));
  EXPECT_EQ(partition->side2_modes, (std::vector<std::size_t>{3, 4}));

  auto subs = BuildSubEnsembles(model.get(), *partition, {});
  ASSERT_TRUE(subs.ok());
  // P = 4*4, E1 = 4, E2 = 16.
  EXPECT_EQ(subs->pivot_configs.size(), 16u);
  EXPECT_EQ(subs->x1.NumNonZeros(), 64u);
  EXPECT_EQ(subs->x2.NumNonZeros(), 256u);

  auto join = JeStitch(*subs, *partition, model->space().Shape(), {});
  ASSERT_TRUE(join.ok());
  // P * E1 * E2 = 16 * 4 * 16 = 1024 = the whole space at res 4.
  EXPECT_EQ(join->NumNonZeros(), 1024u);

  M2tdOptions options;
  options.ranks = std::vector<std::uint64_t>(5, 2);
  auto result =
      M2tdDecompose(*subs, *partition, model->space().Shape(), options);
  ASSERT_TRUE(result.ok());
  auto ground_truth = ensemble::BuildFullTensor(model.get());
  ASSERT_TRUE(ground_truth.ok());
  auto reconstructed = tensor::Reconstruct(result->tucker);
  ASSERT_TRUE(reconstructed.ok());
  const double accuracy =
      tensor::ReconstructionAccuracy(*reconstructed, *ground_truth);
  EXPECT_GT(accuracy, 0.1);
  EXPECT_LE(accuracy, 1.0);
}

TEST(MultiPivotTest, TwoPivotDistributedMatchesLocal) {
  auto model = TinyModel(4);
  auto partition = MakePartition(5, {0, 2});
  ASSERT_TRUE(partition.ok());
  auto subs = BuildSubEnsembles(model.get(), *partition, {});
  ASSERT_TRUE(subs.ok());
  M2tdOptions local_options;
  local_options.ranks = std::vector<std::uint64_t>(5, 2);
  auto local = M2tdDecompose(*subs, *partition, model->space().Shape(),
                             local_options);
  ASSERT_TRUE(local.ok());
  DM2tdOptions dist_options;
  dist_options.ranks = local_options.ranks;
  dist_options.num_workers = 2;
  auto dist = DM2tdDecompose(*subs, *partition, model->space().Shape(),
                             dist_options);
  ASSERT_TRUE(dist.ok());
  auto r_local = tensor::Reconstruct(local->tucker);
  auto r_dist = tensor::Reconstruct(dist->tucker);
  ASSERT_TRUE(r_local.ok() && r_dist.ok());
  EXPECT_NEAR(tensor::DenseTensor::FrobeniusDistance(*r_local, *r_dist), 0.0,
              1e-8);
}

// ----------------------------------------------------------------------
// Degenerate budgets: a join that comes out (almost) empty must flow
// through the whole pipeline without errors, yielding a zero-ish core.

TEST(DegenerateBudgetTest, DisjointPivotGroupsYieldEmptyJoinGracefully) {
  // Hand-built sub-ensembles whose pivot sets do not intersect.
  PfPartition partition;
  partition.pivot_modes = {0};
  partition.side1_modes = {1, 2};
  partition.side2_modes = {3, 4};
  SubEnsembles subs;
  subs.x1 = tensor::SparseTensor({4, 4, 4});
  subs.x2 = tensor::SparseTensor({4, 4, 4});
  subs.x1.AppendEntry({0, 1, 1}, 1.0);
  subs.x1.AppendEntry({1, 2, 2}, 2.0);
  subs.x2.AppendEntry({2, 1, 1}, 3.0);
  subs.x2.AppendEntry({3, 0, 0}, 4.0);
  subs.x1.SortAndCoalesce();
  subs.x2.SortAndCoalesce();

  const std::vector<std::uint64_t> shape(5, 4);
  M2tdOptions options;
  options.ranks = std::vector<std::uint64_t>(5, 2);
  auto result = M2tdDecompose(subs, partition, shape, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->join_nnz, 0u);
  EXPECT_EQ(result->tucker.core.FrobeniusNorm(), 0.0);
  auto reconstructed = tensor::Reconstruct(result->tucker);
  ASSERT_TRUE(reconstructed.ok());
  EXPECT_EQ(reconstructed->FrobeniusNorm(), 0.0);

  // Distributed path agrees.
  DM2tdOptions dist_options;
  dist_options.ranks = options.ranks;
  dist_options.num_workers = 2;
  auto dist = DM2tdDecompose(subs, partition, shape, dist_options);
  ASSERT_TRUE(dist.ok());
  EXPECT_EQ(dist->join_nnz, 0u);
  EXPECT_EQ(dist->tucker.core.FrobeniusNorm(), 0.0);
}

// ----------------------------------------------------------------------
// Zero-join dominance property across random sub-ensembles.

class ZeroJoinProperty : public ::testing::TestWithParam<double> {};

TEST_P(ZeroJoinProperty, ZeroJoinNeverSmallerThanJoin) {
  const double cell_density = GetParam();
  auto model = TinyModel(5);
  auto partition = MakePartition(5, {0});
  ASSERT_TRUE(partition.ok());
  SubEnsembleOptions sub_options;
  sub_options.cell_density = cell_density;
  sub_options.seed = 1234;
  auto subs = BuildSubEnsembles(model.get(), *partition, sub_options);
  ASSERT_TRUE(subs.ok());
  auto join = JeStitch(*subs, *partition, model->space().Shape(), {});
  StitchOptions zero;
  zero.zero_join = true;
  auto zjoin = JeStitch(*subs, *partition, model->space().Shape(), zero);
  ASSERT_TRUE(join.ok() && zjoin.ok());
  EXPECT_GE(zjoin->NumNonZeros(), join->NumNonZeros());
}

INSTANTIATE_TEST_SUITE_P(Densities, ZeroJoinProperty,
                         ::testing::Values(1.0, 0.8, 0.5, 0.3, 0.1),
                         [](const auto& info) {
                           return "d" + std::to_string(static_cast<int>(
                                            info.param * 100));
                         });

// ----------------------------------------------------------------------
// CONCAT pivot factors stay orthonormal (AVG/SELECT need not).

TEST(ConcatOrthonormalityTest, PivotFactorHasOrthonormalColumns) {
  auto model = TinyModel(6);
  auto partition = MakePartition(5, {0});
  ASSERT_TRUE(partition.ok());
  auto subs = BuildSubEnsembles(model.get(), *partition, {});
  ASSERT_TRUE(subs.ok());
  M2tdOptions options;
  options.method = M2tdMethod::kConcat;
  options.ranks = std::vector<std::uint64_t>(5, 3);
  auto result =
      M2tdDecompose(*subs, *partition, model->space().Shape(), options);
  ASSERT_TRUE(result.ok());
  const linalg::Matrix& pivot_factor = result->tucker.factors[0];
  linalg::Matrix gram = linalg::MultiplyTransA(pivot_factor, pivot_factor);
  EXPECT_LT(linalg::Matrix::MaxAbsDiff(gram, linalg::Matrix::Identity(3)),
            1e-9);
}

// ----------------------------------------------------------------------
// RowWeightedBlend properties.

TEST(RowWeightedBlendTest, InterpolatesBetweenInputs) {
  linalg::Matrix u1(2, 2, {2, 0, 1, 1});
  linalg::Matrix u2(2, 2, {0, 0, 3, 3});
  auto blend = RowWeightedBlend(u1, u2);
  ASSERT_TRUE(blend.ok());
  // Row 0: u2's row is zero, so the blend equals u1's row.
  EXPECT_DOUBLE_EQ((*blend)(0, 0), 2.0);
  EXPECT_DOUBLE_EQ((*blend)(0, 1), 0.0);
  // Row 1: weights sqrt(2) and 3*sqrt(2) -> (1*r1 + 3*r2)/4.
  EXPECT_NEAR((*blend)(1, 0), (1.0 * 1 + 3.0 * 3) / 4.0, 1e-12);
}

TEST(RowWeightedBlendTest, ZeroRowsStayZeroAndShapesChecked) {
  linalg::Matrix zero(2, 2);
  auto blend = RowWeightedBlend(zero, zero);
  ASSERT_TRUE(blend.ok());
  EXPECT_EQ(blend->FrobeniusNorm(), 0.0);
  EXPECT_FALSE(RowWeightedBlend(linalg::Matrix(2, 2),
                                linalg::Matrix(3, 2)).ok());
}

TEST(RowWeightedBlendTest, EqualEnergyEqualsAverage) {
  linalg::Matrix u1(1, 2, {1, 0});
  linalg::Matrix u2(1, 2, {0, 1});
  auto blend = RowWeightedBlend(u1, u2);
  ASSERT_TRUE(blend.ok());
  EXPECT_DOUBLE_EQ((*blend)(0, 0), 0.5);
  EXPECT_DOUBLE_EQ((*blend)(0, 1), 0.5);
}

}  // namespace
}  // namespace m2td::core
