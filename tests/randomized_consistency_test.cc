// Randomized consistency ("fuzz-lite") tests: long random operation
// sequences against simple reference models. Seeds are fixed so failures
// reproduce; each case runs many iterations.

#include <cmath>
#include <filesystem>
#include <map>
#include <unistd.h>
#include <vector>

#include <gtest/gtest.h>

#include "io/chunk_store.h"
#include "io/tensor_io.h"
#include "tensor/matricize.h"
#include "tensor/sparse_tensor.h"
#include "tensor/streaming.h"
#include "util/random.h"

namespace m2td {
namespace {

// Reference model: a plain map from multi-index to accumulated value.
using Oracle = std::map<std::vector<std::uint32_t>, double>;

TEST(RandomizedConsistencyTest, SparseTensorVsMapOracle) {
  Rng rng(2024);
  for (int episode = 0; episode < 10; ++episode) {
    const std::vector<std::uint64_t> shape = {
        2 + rng.UniformInt(6), 2 + rng.UniformInt(6), 2 + rng.UniformInt(6)};
    tensor::SparseTensor x(shape);
    Oracle oracle;
    const int ops = 200;
    for (int op = 0; op < ops; ++op) {
      std::vector<std::uint32_t> idx(3);
      for (std::size_t m = 0; m < 3; ++m) {
        idx[m] = static_cast<std::uint32_t>(rng.UniformInt(shape[m]));
      }
      const double v = rng.Gaussian();
      x.AppendEntry(idx, v);
      oracle[idx] += v;
    }
    x.SortAndCoalesce();
    ASSERT_EQ(x.NumNonZeros(), oracle.size());
    for (const auto& [idx, value] : oracle) {
      auto found = x.Find(idx);
      ASSERT_TRUE(found.has_value());
      EXPECT_NEAR(*found, value, 1e-12);
    }
    // Dense round trip preserves everything.
    tensor::SparseTensor back =
        tensor::SparseTensor::FromDense(x.ToDense(), 0.0);
    EXPECT_LE(back.NumNonZeros(), x.NumNonZeros());  // exact zeros dropped
  }
}

TEST(RandomizedConsistencyTest, StreamingGramUnderRandomInterleaving) {
  Rng rng(7777);
  for (int episode = 0; episode < 5; ++episode) {
    const std::vector<std::uint64_t> shape = {3 + rng.UniformInt(4),
                                              3 + rng.UniformInt(4)};
    tensor::StreamingGram streaming(shape);
    tensor::SparseTensor batch(shape);
    // Deliberately includes many repeated coordinates.
    for (int op = 0; op < 150; ++op) {
      std::vector<std::uint32_t> idx = {
          static_cast<std::uint32_t>(rng.UniformInt(shape[0])),
          static_cast<std::uint32_t>(rng.UniformInt(shape[1]))};
      const double v = rng.UniformDouble(-2.0, 2.0);
      streaming.Add(idx, v);
      batch.AppendEntry(idx, v);
    }
    batch.SortAndCoalesce();
    for (std::size_t mode = 0; mode < 2; ++mode) {
      auto expected = tensor::ModeGram(batch, mode);
      ASSERT_TRUE(expected.ok());
      EXPECT_LT(
          linalg::Matrix::MaxAbsDiff(streaming.Gram(mode), *expected), 1e-9)
          << "episode " << episode << " mode " << mode;
    }
  }
}

TEST(RandomizedConsistencyTest, ChunkStoreRegionsAgreeWithFilter) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("m2td_fuzz_store_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);

  Rng rng(31337);
  for (int episode = 0; episode < 5; ++episode) {
    std::filesystem::remove_all(dir);
    const std::vector<std::uint64_t> shape = {4 + rng.UniformInt(8),
                                              4 + rng.UniformInt(8)};
    tensor::SparseTensor x(shape);
    std::vector<std::uint32_t> idx(2);
    const int nnz = 60;
    for (int e = 0; e < nnz; ++e) {
      idx[0] = static_cast<std::uint32_t>(rng.UniformInt(shape[0]));
      idx[1] = static_cast<std::uint32_t>(rng.UniformInt(shape[1]));
      x.AppendEntry(idx, rng.Gaussian());
    }
    x.SortAndCoalesce();

    const std::uint64_t chunk = 1 + rng.UniformInt(5);
    auto store = io::ChunkStore::Create(dir.string(), shape, {chunk, chunk});
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(store->Write(x).ok());

    for (int query = 0; query < 5; ++query) {
      std::vector<std::uint64_t> lo(2), hi(2);
      for (std::size_t m = 0; m < 2; ++m) {
        lo[m] = rng.UniformInt(shape[m]);
        hi[m] = lo[m] + 1 + rng.UniformInt(shape[m] - lo[m]);
      }
      auto region = store->ReadRegion(lo, hi);
      ASSERT_TRUE(region.ok());
      // Oracle: filter x directly.
      std::uint64_t expected = 0;
      for (std::uint64_t e = 0; e < x.NumNonZeros(); ++e) {
        if (x.Index(0, e) >= lo[0] && x.Index(0, e) < hi[0] &&
            x.Index(1, e) >= lo[1] && x.Index(1, e) < hi[1]) {
          ++expected;
        }
      }
      EXPECT_EQ(region->NumNonZeros(), expected)
          << "episode " << episode << " query " << query;
    }
  }
  std::filesystem::remove_all(dir);
}

TEST(RandomizedConsistencyTest, TensorIoRoundTripsRandomTensors) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("m2td_fuzz_io_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  Rng rng(555);
  for (int episode = 0; episode < 8; ++episode) {
    const std::size_t modes = 2 + rng.UniformInt(3);
    std::vector<std::uint64_t> shape(modes);
    for (auto& d : shape) d = 2 + rng.UniformInt(6);
    tensor::SparseTensor x(shape);
    std::vector<std::uint32_t> idx(modes);
    const std::uint64_t nnz = rng.UniformInt(40);
    for (std::uint64_t e = 0; e < nnz; ++e) {
      for (std::size_t m = 0; m < modes; ++m) {
        idx[m] = static_cast<std::uint32_t>(rng.UniformInt(shape[m]));
      }
      x.AppendEntry(idx, rng.Gaussian() * std::pow(10.0, rng.UniformInt(6)));
    }
    x.SortAndCoalesce();

    const std::string text_path = (dir / "t.txt").string();
    const std::string bin_path = (dir / "t.bin").string();
    ASSERT_TRUE(io::SaveSparseText(x, text_path).ok());
    ASSERT_TRUE(io::SaveSparseBinary(x, bin_path).ok());
    auto from_text = io::LoadSparseText(text_path);
    auto from_bin = io::LoadSparseBinary(bin_path);
    ASSERT_TRUE(from_text.ok() && from_bin.ok());
    ASSERT_EQ(from_text->NumNonZeros(), x.NumNonZeros());
    ASSERT_EQ(from_bin->NumNonZeros(), x.NumNonZeros());
    for (std::uint64_t e = 0; e < x.NumNonZeros(); ++e) {
      EXPECT_DOUBLE_EQ(from_text->Value(e), x.Value(e));
      EXPECT_DOUBLE_EQ(from_bin->Value(e), x.Value(e));
    }
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace m2td
