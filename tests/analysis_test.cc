#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/analysis.h"
#include "core/m2td.h"
#include "core/pf_partition.h"
#include "ensemble/simulation_model.h"
#include "tensor/tucker.h"
#include "util/random.h"

namespace m2td::core {
namespace {

tensor::TuckerDecomposition HandBuiltDecomposition() {
  // Factors with clearly ordered loadings.
  tensor::TuckerDecomposition tucker;
  linalg::Matrix u0(3, 2);
  u0(0, 0) = 0.9;
  u0(1, 0) = 0.1;
  u0(2, 0) = -0.3;
  u0(0, 1) = 0.0;
  u0(1, 1) = -0.8;
  u0(2, 1) = 0.2;
  linalg::Matrix u1(4, 2);
  u1(3, 0) = 1.0;
  u1(2, 1) = -0.5;
  u1(0, 1) = 0.4;
  tucker.factors = {u0, u1};
  tucker.core = tensor::DenseTensor({2, 2});
  tucker.core.at({0, 0}) = 3.0;
  tucker.core.at({1, 1}) = -4.0;
  tucker.core.at({0, 1}) = 0.5;
  return tucker;
}

TEST(ExtractModePatternsTest, RanksLoadingsPerComponent) {
  auto tucker = HandBuiltDecomposition();
  auto patterns = ExtractModePatterns(tucker, 2);
  ASSERT_TRUE(patterns.ok());
  // 2 modes x 2 components.
  ASSERT_EQ(patterns->size(), 4u);
  // Mode 0, component 0: heaviest |loading| is index 0 (0.9) then 2 (0.3).
  const ModePattern& p00 = (*patterns)[0];
  EXPECT_EQ(p00.mode, 0u);
  EXPECT_EQ(p00.component, 0u);
  ASSERT_EQ(p00.top_indices.size(), 2u);
  EXPECT_EQ(p00.top_indices[0], 0u);
  EXPECT_EQ(p00.top_indices[1], 2u);
  EXPECT_NEAR(p00.loadings[0], 0.9, 1e-12);
  // Mode 1, component 0: index 3 dominates.
  const ModePattern& p10 = (*patterns)[2];
  EXPECT_EQ(p10.mode, 1u);
  EXPECT_EQ(p10.top_indices[0], 3u);
}

TEST(ExtractModePatternsTest, TopKClampsAndValidates) {
  auto tucker = HandBuiltDecomposition();
  auto patterns = ExtractModePatterns(tucker, 100);
  ASSERT_TRUE(patterns.ok());
  EXPECT_EQ((*patterns)[0].top_indices.size(), 3u);  // mode 0 has 3 rows
  EXPECT_FALSE(ExtractModePatterns(tucker, 0).ok());
}

TEST(DescribePatternsTest, UsesParameterNamesAndValues) {
  auto tucker = HandBuiltDecomposition();
  auto patterns = ExtractModePatterns(tucker, 1);
  ASSERT_TRUE(patterns.ok());
  auto space = ensemble::ParameterSpace::Create({
      ensemble::ParameterDef{"t", 0.0, 2.0, 3},
      ensemble::ParameterDef{"phi", -1.0, 1.0, 4},
  });
  ASSERT_TRUE(space.ok());
  const std::string text = DescribePatterns(*patterns, *space);
  EXPECT_NE(text.find("(t)"), std::string::npos);
  EXPECT_NE(text.find("(phi)"), std::string::npos);
  EXPECT_NE(text.find("t=0"), std::string::npos);   // index 0 -> value 0
  EXPECT_NE(text.find("phi=1"), std::string::npos); // index 3 -> value 1
}

TEST(TopCoreInteractionsTest, SortsByStrength) {
  auto tucker = HandBuiltDecomposition();
  auto interactions = TopCoreInteractions(tucker, 3);
  ASSERT_TRUE(interactions.ok());
  ASSERT_EQ(interactions->size(), 3u);
  // |G(1,1)| = 4 is the strongest, then 3, then 0.5.
  EXPECT_EQ((*interactions)[0].component_indices,
            (std::vector<std::uint32_t>{1, 1}));
  EXPECT_EQ((*interactions)[1].component_indices,
            (std::vector<std::uint32_t>{0, 0}));
  EXPECT_GT((*interactions)[0].strength, (*interactions)[1].strength);
  // Strengths normalized by the core norm.
  const double norm = tucker.core.FrobeniusNorm();
  EXPECT_NEAR((*interactions)[0].strength, 4.0 / norm, 1e-12);
}

TEST(TopCoreInteractionsTest, EmptyCoreYieldsNothing) {
  tensor::TuckerDecomposition tucker;
  tucker.core = tensor::DenseTensor({2, 2});
  tucker.factors = {linalg::Matrix(2, 2), linalg::Matrix(2, 2)};
  auto interactions = TopCoreInteractions(tucker, 5);
  ASSERT_TRUE(interactions.ok());
  EXPECT_TRUE(interactions->empty());
}

TEST(ResidualOutliersTest, FindsThePlantedAnomaly) {
  // Low-rank tensor plus one corrupted cell: the outlier report must rank
  // the corrupted cell first.
  Rng rng(3);
  linalg::Matrix a(6, 1), b(6, 1);
  for (std::size_t i = 0; i < 6; ++i) {
    a(i, 0) = rng.UniformDouble(0.5, 1.5);
    b(i, 0) = rng.UniformDouble(0.5, 1.5);
  }
  tensor::SparseTensor clean({6, 6});
  tensor::SparseTensor x({6, 6});
  for (std::uint32_t i = 0; i < 6; ++i) {
    for (std::uint32_t j = 0; j < 6; ++j) {
      const double value = a(i, 0) * b(j, 0);
      clean.AppendEntry({i, j}, value);
      // Planted anomaly in the observed tensor only.
      x.AppendEntry({i, j}, (i == 4 && j == 2) ? value + 5.0 : value);
    }
  }
  clean.SortAndCoalesce();
  x.SortAndCoalesce();
  // Decompose the clean rank-1 structure; score the corrupted observations.
  auto tucker = tensor::HosvdSparse(clean, {1, 1});
  ASSERT_TRUE(tucker.ok());
  auto outliers = ResidualOutliers(*tucker, x, 3);
  ASSERT_TRUE(outliers.ok());
  ASSERT_GE(outliers->size(), 1u);
  EXPECT_EQ((*outliers)[0].indices, (std::vector<std::uint32_t>{4, 2}));
  EXPECT_GT((*outliers)[0].residual, (*outliers)[1].residual);
}

TEST(ResidualOutliersTest, Validation) {
  tensor::SparseTensor x({2, 2});
  x.SortAndCoalesce();
  auto tucker = tensor::HosvdSparse(x, {1, 1});
  ASSERT_TRUE(tucker.ok());
  EXPECT_FALSE(ResidualOutliers(*tucker, x, 0).ok());
  tensor::SparseTensor wrong({2, 2, 2});
  wrong.SortAndCoalesce();
  EXPECT_FALSE(ResidualOutliers(*tucker, wrong, 2).ok());
  // Empty tensor: empty report.
  auto outliers = ResidualOutliers(*tucker, x, 2);
  ASSERT_TRUE(outliers.ok());
  EXPECT_TRUE(outliers->empty());
}

TEST(AnalysisIntegrationTest, PatternsFromPendulumM2td) {
  ensemble::ModelOptions options;
  options.parameter_resolution = 5;
  options.time_resolution = 5;
  auto model = ensemble::MakeDoublePendulumModel(options);
  ASSERT_TRUE(model.ok());
  auto partition = MakePartition(5, {0});
  ASSERT_TRUE(partition.ok());
  auto subs = BuildSubEnsembles(model->get(), *partition, {});
  ASSERT_TRUE(subs.ok());
  M2tdOptions m2td_options;
  m2td_options.ranks = std::vector<std::uint64_t>(5, 2);
  auto result = M2tdDecompose(*subs, *partition, (*model)->space().Shape(),
                              m2td_options);
  ASSERT_TRUE(result.ok());

  auto patterns = ExtractModePatterns(result->tucker, 2);
  ASSERT_TRUE(patterns.ok());
  EXPECT_EQ(patterns->size(), 10u);  // 5 modes x rank 2
  const std::string described =
      DescribePatterns(*patterns, (*model)->space());
  EXPECT_NE(described.find("phi1"), std::string::npos);

  auto interactions = TopCoreInteractions(result->tucker, 5);
  ASSERT_TRUE(interactions.ok());
  ASSERT_FALSE(interactions->empty());
  EXPECT_LE((*interactions)[0].strength, 1.0 + 1e-12);
}

}  // namespace
}  // namespace m2td::core
