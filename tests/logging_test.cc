#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "linalg/matrix.h"
#include "util/logging.h"

namespace m2td {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { previous_level_ = GetLogLevel(); }
  void TearDown() override { SetLogLevel(previous_level_); }

  LogLevel previous_level_;
};

TEST_F(LoggingTest, MessagesBelowLevelAreDropped) {
  SetLogLevel(LogLevel::kWarning);
  ::testing::internal::CaptureStderr();
  M2TD_LOG_INFO() << "invisible info";
  M2TD_LOG_WARNING() << "visible warning";
  const std::string output = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(output.find("invisible info"), std::string::npos);
  EXPECT_NE(output.find("visible warning"), std::string::npos);
}

TEST_F(LoggingTest, MessageCarriesLevelAndLocation) {
  SetLogLevel(LogLevel::kDebug);
  ::testing::internal::CaptureStderr();
  M2TD_LOG_ERROR() << "boom " << 42;
  const std::string output = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(output.find("[ERROR"), std::string::npos);
  EXPECT_NE(output.find("logging_test.cc"), std::string::npos);
  EXPECT_NE(output.find("boom 42"), std::string::npos);
}

TEST_F(LoggingTest, DebugEnabledOnlyAtDebugLevel) {
  SetLogLevel(LogLevel::kInfo);
  ::testing::internal::CaptureStderr();
  M2TD_LOG_DEBUG() << "hidden";
  EXPECT_EQ(::testing::internal::GetCapturedStderr().find("hidden"),
            std::string::npos);
  SetLogLevel(LogLevel::kDebug);
  ::testing::internal::CaptureStderr();
  M2TD_LOG_DEBUG() << "shown";
  EXPECT_NE(::testing::internal::GetCapturedStderr().find("shown"),
            std::string::npos);
}

TEST_F(LoggingTest, SetAndGetRoundTrip) {
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kInfo);
  EXPECT_EQ(GetLogLevel(), LogLevel::kInfo);
}

TEST_F(LoggingTest, CustomSinkReceivesFormattedLines) {
  SetLogLevel(LogLevel::kInfo);
  std::vector<std::pair<LogLevel, std::string>> captured;
  SetLogSink([&captured](LogLevel level, std::string_view line) {
    captured.emplace_back(level, std::string(line));
  });
  ::testing::internal::CaptureStderr();
  M2TD_LOG_WARNING() << "to the sink";
  const std::string stderr_output = ::testing::internal::GetCapturedStderr();
  SetLogSink(nullptr);

  // The line goes to the sink instead of stderr.
  EXPECT_EQ(stderr_output.find("to the sink"), std::string::npos);
  ASSERT_EQ(captured.size(), 1u);
  EXPECT_EQ(captured[0].first, LogLevel::kWarning);
  EXPECT_NE(captured[0].second.find("[WARN"), std::string::npos);
  EXPECT_NE(captured[0].second.find("to the sink"), std::string::npos);
  // Formatted line carries no trailing newline.
  EXPECT_TRUE(captured[0].second.empty() ||
              captured[0].second.back() != '\n');
}

TEST_F(LoggingTest, NullSinkRestoresStderr) {
  SetLogLevel(LogLevel::kInfo);
  SetLogSink([](LogLevel, std::string_view) {});
  SetLogSink(nullptr);
  ::testing::internal::CaptureStderr();
  M2TD_LOG_WARNING() << "back to stderr";
  EXPECT_NE(
      ::testing::internal::GetCapturedStderr().find("back to stderr"),
      std::string::npos);
}

TEST_F(LoggingTest, MirrorObservesAlongsideSink) {
  SetLogLevel(LogLevel::kInfo);
  std::vector<std::string> mirrored;
  SetLogMirror([&mirrored](LogLevel, std::string_view line) {
    mirrored.emplace_back(line);
  });
  ::testing::internal::CaptureStderr();
  M2TD_LOG_WARNING() << "seen twice";
  const std::string stderr_output = ::testing::internal::GetCapturedStderr();
  SetLogMirror(nullptr);

  // Mirror sees the line AND the default sink still writes stderr.
  ASSERT_EQ(mirrored.size(), 1u);
  EXPECT_NE(mirrored[0].find("seen twice"), std::string::npos);
  EXPECT_NE(stderr_output.find("seen twice"), std::string::npos);
}

TEST(MatrixToStringTest, FormatsRows) {
  linalg::Matrix m(2, 2, {1.5, 2.0, 3.0, 4.25});
  const std::string text = m.ToString();
  EXPECT_NE(text.find("1.5"), std::string::npos);
  EXPECT_NE(text.find("4.25"), std::string::npos);
  // Two lines, one per row.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 2);
}

}  // namespace
}  // namespace m2td
