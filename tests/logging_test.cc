#include <string>

#include <gtest/gtest.h>

#include "linalg/matrix.h"
#include "util/logging.h"

namespace m2td {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { previous_level_ = GetLogLevel(); }
  void TearDown() override { SetLogLevel(previous_level_); }

  LogLevel previous_level_;
};

TEST_F(LoggingTest, MessagesBelowLevelAreDropped) {
  SetLogLevel(LogLevel::kWarning);
  ::testing::internal::CaptureStderr();
  M2TD_LOG_INFO() << "invisible info";
  M2TD_LOG_WARNING() << "visible warning";
  const std::string output = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(output.find("invisible info"), std::string::npos);
  EXPECT_NE(output.find("visible warning"), std::string::npos);
}

TEST_F(LoggingTest, MessageCarriesLevelAndLocation) {
  SetLogLevel(LogLevel::kDebug);
  ::testing::internal::CaptureStderr();
  M2TD_LOG_ERROR() << "boom " << 42;
  const std::string output = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(output.find("[ERROR"), std::string::npos);
  EXPECT_NE(output.find("logging_test.cc"), std::string::npos);
  EXPECT_NE(output.find("boom 42"), std::string::npos);
}

TEST_F(LoggingTest, DebugEnabledOnlyAtDebugLevel) {
  SetLogLevel(LogLevel::kInfo);
  ::testing::internal::CaptureStderr();
  M2TD_LOG_DEBUG() << "hidden";
  EXPECT_EQ(::testing::internal::GetCapturedStderr().find("hidden"),
            std::string::npos);
  SetLogLevel(LogLevel::kDebug);
  ::testing::internal::CaptureStderr();
  M2TD_LOG_DEBUG() << "shown";
  EXPECT_NE(::testing::internal::GetCapturedStderr().find("shown"),
            std::string::npos);
}

TEST_F(LoggingTest, SetAndGetRoundTrip) {
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kInfo);
  EXPECT_EQ(GetLogLevel(), LogLevel::kInfo);
}

TEST(MatrixToStringTest, FormatsRows) {
  linalg::Matrix m(2, 2, {1.5, 2.0, 3.0, 4.25});
  const std::string text = m.ToString();
  EXPECT_NE(text.find("1.5"), std::string::npos);
  EXPECT_NE(text.find("4.25"), std::string::npos);
  // Two lines, one per row.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 2);
}

}  // namespace
}  // namespace m2td
