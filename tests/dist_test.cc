// Multi-process D-M2TD backend tests (ctest -L distributed): durable
// shuffle-store semantics (CRC footer, attempt-scoped commits, orphan
// GC), the binary record codecs and task wire frames shared by the
// coordinator and m2td_worker, and end-to-end bit-identity of the
// process backend against the in-process thread backend.
//
// The worker binary location is baked in at compile time via the
// M2TD_WORKER_BIN definition (see tests/CMakeLists.txt), so the test
// works from any CWD ctest chooses.

#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/dm2td.h"
#include "core/dm2td_tasks.h"
#include "core/m2td.h"
#include "core/pf_partition.h"
#include "ensemble/simulation_model.h"
#include "io/chunk_store.h"
#include "linalg/matrix.h"
#include "mapreduce/wire.h"
#include "robust/heartbeat.h"
#include "tensor/tucker.h"

namespace m2td {
namespace {

namespace tasks = core::dm2td_tasks;
using io::ShuffleStore;

class DistTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = std::filesystem::path(::testing::TempDir()) /
            ("dist_test_" +
             std::to_string(
                 ::testing::UnitTest::GetInstance()->random_seed()) +
             "_" + ::testing::UnitTest::GetInstance()
                       ->current_test_info()
                       ->name());
    std::filesystem::remove_all(root_);
    std::filesystem::create_directories(root_);
  }
  void TearDown() override { std::filesystem::remove_all(root_); }

  std::string Path(const std::string& leaf) const {
    return (root_ / leaf).string();
  }

  std::filesystem::path root_;
};

// ------------------------------------------------------- ShuffleStore

TEST_F(DistTest, BlobRoundtrip) {
  auto store = ShuffleStore::Create(Path("store"));
  ASSERT_TRUE(store.ok());
  const std::string name = ShuffleStore::BlobName("p1map", 3, 0, "shard2");
  EXPECT_EQ(name, "p1map/task3/a0/shard2");
  const std::string payload("binary\0payload", 14);
  ASSERT_TRUE(store->WriteBlob(name, payload).ok());
  auto read = store->ReadBlob(name, "p1map:3");
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_EQ(*read, payload);
  EXPECT_TRUE(store->BlobExists(name));
  EXPECT_FALSE(store->BlobExists("p1map/task3/a0/other"));
}

TEST_F(DistTest, CorruptedBlobIsDataLossNamingPathAndTask) {
  auto store = ShuffleStore::Create(Path("store"));
  ASSERT_TRUE(store.ok());
  const std::string name = ShuffleStore::BlobName("p2map", 5, 1, "shard0");
  ASSERT_TRUE(store->WriteBlob(name, std::string(256, 'x')).ok());

  // Flip one payload byte under the CRC footer.
  const std::string path = Path("store") + "/" + name;
  {
    std::fstream file(path, std::ios::in | std::ios::out |
                                std::ios::binary);
    ASSERT_TRUE(file.is_open());
    file.seekp(17);
    file.put('y');
  }

  auto read = store->ReadBlob(name, "p2map:5");
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kDataLoss);
  // The message must name both the blob and the producing task so the
  // coordinator can re-execute the producer.
  EXPECT_NE(read.status().message().find(name), std::string::npos)
      << read.status();
  EXPECT_NE(read.status().message().find("[task p2map:5]"),
            std::string::npos)
      << read.status();
}

TEST_F(DistTest, CommitLifecycle) {
  auto store = ShuffleStore::Create(Path("store"));
  ASSERT_TRUE(store.ok());
  EXPECT_EQ(store->ReadCommit("p1map", 0).status().code(),
            StatusCode::kNotFound);

  const std::string blob = ShuffleStore::BlobName("p1map", 0, 2, "shard1");
  ASSERT_TRUE(store->WriteBlob(blob, "abc").ok());
  ASSERT_TRUE(store->CommitTask("p1map", 0, 2, {blob}).ok());

  auto commit = store->ReadCommit("p1map", 0);
  ASSERT_TRUE(commit.ok());
  EXPECT_EQ(commit->attempt, 2);
  EXPECT_EQ(commit->blobs, std::vector<std::string>{blob});

  // Clearing the commit makes the task look never-run (re-execution),
  // while the blob bytes stay until orphan collection.
  ASSERT_TRUE(store->ClearCommit("p1map", 0).ok());
  EXPECT_EQ(store->ReadCommit("p1map", 0).status().code(),
            StatusCode::kNotFound);
  EXPECT_TRUE(store->BlobExists(blob));
}

TEST_F(DistTest, CollectOrphansKeepsOnlyCommittedAttempt) {
  auto store = ShuffleStore::Create(Path("store"));
  ASSERT_TRUE(store.ok());
  const std::string a0 = ShuffleStore::BlobName("p2map", 1, 0, "shard0");
  const std::string a1 = ShuffleStore::BlobName("p2map", 1, 1, "shard0");
  ASSERT_TRUE(store->WriteBlob(a0, "stale attempt").ok());
  ASSERT_TRUE(store->WriteBlob(a1, "winning attempt").ok());
  ASSERT_TRUE(store->CommitTask("p2map", 1, 1, {a1}).ok());

  auto removed = store->CollectOrphans("p2map", 1);
  ASSERT_TRUE(removed.ok());
  EXPECT_EQ(*removed, 1u);
  EXPECT_FALSE(store->BlobExists(a0));
  EXPECT_TRUE(store->BlobExists(a1));
}

// ------------------------------------------------------------- codecs

TEST_F(DistTest, CellCodecRoundtrip) {
  std::vector<core::dm2td_internal::TensorCell> cells;
  cells.push_back({1, {0, 3, 7}, 1.5});
  cells.push_back({2, {9, 0, 2}, -2.25e-8});
  auto decoded = tasks::DecodeCells(tasks::EncodeCells(cells));
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->size(), 2u);
  EXPECT_EQ((*decoded)[0].kappa, 1);
  EXPECT_EQ((*decoded)[0].idx, (std::vector<std::uint32_t>{0, 3, 7}));
  EXPECT_EQ((*decoded)[0].value, 1.5);
  EXPECT_EQ((*decoded)[1].kappa, 2);
  EXPECT_EQ((*decoded)[1].value, -2.25e-8);
}

TEST_F(DistTest, JoinCellAndFiberCodecRoundtrip) {
  std::vector<core::dm2td_internal::JoinCell> cells;
  cells.push_back({{1, 2, 3, 4, 5}, 0.125});
  auto join = tasks::DecodeJoinCells(tasks::EncodeJoinCells(cells));
  ASSERT_TRUE(join.ok());
  ASSERT_EQ(join->size(), 1u);
  EXPECT_EQ((*join)[0].idx, cells[0].idx);
  EXPECT_EQ((*join)[0].value, 0.125);

  std::vector<tasks::FiberPair> pairs = {{42u, 3u, -1.0},
                                         {7u, 0u, 0.5}};
  auto fibers = tasks::DecodeFiberPairs(tasks::EncodeFiberPairs(pairs));
  ASSERT_TRUE(fibers.ok());
  ASSERT_EQ(fibers->size(), 2u);
  EXPECT_EQ((*fibers)[0].key, 42u);
  EXPECT_EQ((*fibers)[0].i, 3u);
  EXPECT_EQ((*fibers)[0].v, -1.0);
}

TEST_F(DistTest, GramAndMatrixCodecRoundtrip) {
  linalg::Matrix m(2, 3);
  for (std::size_t r = 0; r < 2; ++r)
    for (std::size_t c = 0; c < 3; ++c) m(r, c) = 1.0 + 3.0 * r + c;
  auto matrix = tasks::DecodeMatrix(tasks::EncodeMatrix(m));
  ASSERT_TRUE(matrix.ok());
  ASSERT_EQ(matrix->rows(), 2u);
  ASSERT_EQ(matrix->cols(), 3u);
  EXPECT_EQ((*matrix)(1, 2), 6.0);

  std::vector<core::dm2td_internal::GramPiece> pieces;
  pieces.push_back({2, 1, m});
  auto grams = tasks::DecodeGramPieces(tasks::EncodeGramPieces(pieces));
  ASSERT_TRUE(grams.ok());
  ASSERT_EQ(grams->size(), 1u);
  EXPECT_EQ((*grams)[0].kappa, 2);
  EXPECT_EQ((*grams)[0].sub_mode, 1u);
  EXPECT_EQ((*grams)[0].gram(0, 1), 2.0);

  auto u64s =
      tasks::DecodeU64List(tasks::EncodeU64List({0, 1ull << 40, 7}));
  ASSERT_TRUE(u64s.ok());
  EXPECT_EQ(*u64s, (std::vector<std::uint64_t>{0, 1ull << 40, 7}));
}

TEST_F(DistTest, TruncatedRecordIsIOError) {
  std::vector<core::dm2td_internal::TensorCell> cells = {{1, {1, 2}, 3.0}};
  std::string bytes = tasks::EncodeCells(cells);
  bytes.resize(bytes.size() - 3);
  auto decoded = tasks::DecodeCells(bytes);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kIOError);
}

TEST_F(DistTest, TaskFrameRoundtrip) {
  tasks::TaskRequest task;
  task.is_map = false;
  task.phase = "p3red_2";
  task.index = 5;
  task.attempt = 3;
  task.mode = 2;
  task.shape = {4, 4, 2, 2, 4};
  auto decoded = tasks::DecodeTaskFrame(tasks::EncodeTaskFrame(task));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_FALSE(decoded->is_map);
  EXPECT_EQ(decoded->phase, "p3red_2");
  EXPECT_EQ(decoded->index, 5);
  EXPECT_EQ(decoded->attempt, 3);
  EXPECT_EQ(decoded->mode, 2);
  EXPECT_EQ(decoded->shape, task.shape);

  EXPECT_FALSE(tasks::DecodeTaskFrame("quit").ok());
  EXPECT_FALSE(tasks::DecodeTaskFrame("task 1 p1map").ok());
}

TEST_F(DistTest, JobConfigRoundtrip) {
  tasks::DistJobConfig config;
  config.full_shape = {4, 4, 4, 4, 4};
  config.shape1 = {4, 4, 4};
  config.shape2 = {4, 4, 4};
  config.pivot_modes = {0};
  config.side1_modes = {1, 2};
  config.side2_modes = {3, 4};
  config.shards = 8;
  config.zero_join = true;
  const std::string path = Path("job.m2td");
  ASSERT_TRUE(tasks::SaveJobConfig(path, config).ok());
  auto loaded = tasks::LoadJobConfig(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->full_shape, config.full_shape);
  EXPECT_EQ(loaded->shape1, config.shape1);
  EXPECT_EQ(loaded->shape2, config.shape2);
  EXPECT_EQ(loaded->pivot_modes, config.pivot_modes);
  EXPECT_EQ(loaded->side1_modes, config.side1_modes);
  EXPECT_EQ(loaded->side2_modes, config.side2_modes);
  EXPECT_EQ(loaded->shards, 8);
  EXPECT_TRUE(loaded->zero_join);

  EXPECT_EQ(tasks::MapPhaseOf("p1red"), "p1map");
  EXPECT_EQ(tasks::MapPhaseOf("p3red_4"), "p3map_4");
}

// --------------------------------------------- heartbeat lease semantics

TEST_F(DistTest, ResumeWithinLeaseKeepsRedialingWorkerAlive) {
  robust::HeartbeatMonitor hb;
  hb.Arm(3);
  // A worker that redials inside its lease resumes its identity — it is
  // NOT declared dead and its task is not double-reassigned.
  EXPECT_TRUE(hb.ResumeWithinLease(3, /*lease_ms=*/30000.0));
  EXPECT_TRUE(hb.IsArmed(3));
  // The resume reset the silence clock.
  EXPECT_LT(hb.SilentMillis(3), 1000.0);

  // Never armed: a stranger cannot claim an identity.
  EXPECT_FALSE(hb.ResumeWithinLease(7, 30000.0));
  // Declared dead (disarmed): no resurrection through the resume path.
  hb.Disarm(3);
  EXPECT_FALSE(hb.ResumeWithinLease(3, 30000.0));
  // Lease already lapsed: the expiry sweep owns the identity's fate.
  hb.Arm(4);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_FALSE(hb.ResumeWithinLease(4, /*lease_ms=*/1.0));
  EXPECT_TRUE(hb.IsArmed(4));  // left for Expired() to collect
}

// ----------------------------------------- process-backend bit-identity

std::unique_ptr<ensemble::DynamicalSystemModel> SmallModel() {
  ensemble::ModelOptions options;
  options.parameter_resolution = 4;
  options.time_resolution = 4;
  options.dt = 0.01;
  options.record_every = 5;
  auto model = ensemble::MakeDoublePendulumModel(options);
  EXPECT_TRUE(model.ok());
  return std::move(model).ValueOrDie();
}

void ExpectBitIdentical(const core::DM2tdResult& a,
                        const core::DM2tdResult& b) {
  EXPECT_EQ(a.join_nnz, b.join_nnz);
  ASSERT_EQ(a.tucker.core.shape(), b.tucker.core.shape());
  EXPECT_EQ(a.tucker.core.data(), b.tucker.core.data());
  ASSERT_EQ(a.tucker.factors.size(), b.tucker.factors.size());
  for (std::size_t n = 0; n < a.tucker.factors.size(); ++n) {
    const linalg::Matrix& fa = a.tucker.factors[n];
    const linalg::Matrix& fb = b.tucker.factors[n];
    ASSERT_EQ(fa.rows(), fb.rows()) << "factor " << n;
    ASSERT_EQ(fa.cols(), fb.cols()) << "factor " << n;
    for (std::size_t r = 0; r < fa.rows(); ++r) {
      for (std::size_t c = 0; c < fa.cols(); ++c) {
        EXPECT_EQ(fa(r, c), fb(r, c))
            << "factor " << n << " (" << r << "," << c << ")";
      }
    }
  }
}

TEST_F(DistTest, ProcessBackendMatchesThreadBitIdentical) {
  auto model = SmallModel();
  auto partition = core::MakePartition(5, {0});
  ASSERT_TRUE(partition.ok());
  auto subs = core::BuildSubEnsembles(model.get(), *partition, {});
  ASSERT_TRUE(subs.ok());

  core::DM2tdOptions options;
  options.ranks = std::vector<std::uint64_t>(5, 2);
  options.num_workers = 3;
  auto thread_result = core::DM2tdDecompose(
      *subs, *partition, model->space().Shape(), options);
  ASSERT_TRUE(thread_result.ok()) << thread_result.status();

  options.backend = core::DistBackend::kProcess;
  options.process.worker_binary = M2TD_WORKER_BIN;
  options.num_workers = 2;
  options.process.job_dir = Path("job");
  auto process_result = core::DM2tdDecompose(
      *subs, *partition, model->space().Shape(), options);
  ASSERT_TRUE(process_result.ok()) << process_result.status();

  ExpectBitIdentical(*process_result, *thread_result);
  EXPECT_EQ(process_result->dist.workers_spawned, 2);
  EXPECT_EQ(process_result->dist.worker_deaths, 0u);
  EXPECT_GT(process_result->dist.heartbeats, 0u);
}

TEST_F(DistTest, SocketTransportMatchesThreadBitIdentical) {
  auto model = SmallModel();
  auto partition = core::MakePartition(5, {0});
  ASSERT_TRUE(partition.ok());
  auto subs = core::BuildSubEnsembles(model.get(), *partition, {});
  ASSERT_TRUE(subs.ok());

  core::DM2tdOptions options;
  options.ranks = std::vector<std::uint64_t>(5, 2);
  options.num_workers = 3;
  auto thread_result = core::DM2tdDecompose(
      *subs, *partition, model->space().Shape(), options);
  ASSERT_TRUE(thread_result.ok()) << thread_result.status();

  options.backend = core::DistBackend::kProcess;
  options.process.worker_binary = M2TD_WORKER_BIN;
  options.process.transport = "socket";
  options.num_workers = 2;
  options.process.job_dir = Path("job");
  auto socket_result = core::DM2tdDecompose(
      *subs, *partition, model->space().Shape(), options);
  ASSERT_TRUE(socket_result.ok()) << socket_result.status();

  ExpectBitIdentical(*socket_result, *thread_result);
  EXPECT_EQ(socket_result->dist.workers_spawned, 2);
  EXPECT_EQ(socket_result->dist.worker_deaths, 0u);
  EXPECT_EQ(socket_result->dist.net_connects, 2u);
  EXPECT_EQ(socket_result->dist.net_disconnects, 0u);
  EXPECT_GT(socket_result->dist.heartbeats, 0u);
}

TEST_F(DistTest, ShardCountNeverAffectsResults) {
  auto model = SmallModel();
  auto partition = core::MakePartition(5, {0});
  ASSERT_TRUE(partition.ok());
  auto subs = core::BuildSubEnsembles(model.get(), *partition, {});
  ASSERT_TRUE(subs.ok());

  core::DM2tdOptions options;
  options.ranks = std::vector<std::uint64_t>(5, 2);
  options.backend = core::DistBackend::kProcess;
  options.process.worker_binary = M2TD_WORKER_BIN;
  options.num_workers = 2;

  options.num_shards = 8;
  options.process.job_dir = Path("job8");
  auto shards8 = core::DM2tdDecompose(*subs, *partition,
                                      model->space().Shape(), options);
  ASSERT_TRUE(shards8.ok()) << shards8.status();

  options.num_shards = 3;
  options.process.job_dir = Path("job3");
  auto shards3 = core::DM2tdDecompose(*subs, *partition,
                                      model->space().Shape(), options);
  ASSERT_TRUE(shards3.ok()) << shards3.status();
  ExpectBitIdentical(*shards3, *shards8);
}

TEST_F(DistTest, ZeroJoinProcessMatchesThread) {
  auto model = SmallModel();
  auto partition = core::MakePartition(5, {0});
  ASSERT_TRUE(partition.ok());
  core::SubEnsembleOptions sub_options;
  sub_options.cell_density = 0.4;
  auto subs = core::BuildSubEnsembles(model.get(), *partition, sub_options);
  ASSERT_TRUE(subs.ok());

  core::DM2tdOptions options;
  options.ranks = std::vector<std::uint64_t>(5, 2);
  options.stitch.zero_join = true;
  auto thread_result = core::DM2tdDecompose(
      *subs, *partition, model->space().Shape(), options);
  ASSERT_TRUE(thread_result.ok()) << thread_result.status();

  options.backend = core::DistBackend::kProcess;
  options.process.worker_binary = M2TD_WORKER_BIN;
  options.num_workers = 2;
  options.process.job_dir = Path("job");
  auto process_result = core::DM2tdDecompose(
      *subs, *partition, model->space().Shape(), options);
  ASSERT_TRUE(process_result.ok()) << process_result.status();
  ExpectBitIdentical(*process_result, *thread_result);
}

TEST_F(DistTest, MalformedFrameExitsWorkerWithDistinctCode) {
  // A worker that receives an undecodable frame must log the offending
  // header and exit with kWorkerExitMalformedFrame — the code the
  // coordinator folds into DistStats::worker_exit_details and the run
  // report's exit detail.
  ASSERT_TRUE(io::ShuffleStore::Create(Path("")).ok());
  tasks::DistJobConfig config;
  config.full_shape = {4, 4, 4, 4, 4};
  config.shape1 = {4, 4, 4};
  config.shape2 = {4, 4, 4};
  config.pivot_modes = {0};
  config.side1_modes = {1, 2};
  config.side2_modes = {3, 4};
  config.shards = 2;
  ASSERT_TRUE(tasks::SaveJobConfig(Path("job.m2td"), config).ok());

  int to_pipe[2], from_pipe[2];
  ASSERT_EQ(::pipe(to_pipe), 0);
  ASSERT_EQ(::pipe(from_pipe), 0);
  const std::string job_dir_flag = "--job_dir=" + root_.string();
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    ::dup2(to_pipe[0], 0);
    ::dup2(from_pipe[1], 1);
    ::close(to_pipe[1]);
    ::close(from_pipe[0]);
    ::execl(M2TD_WORKER_BIN, M2TD_WORKER_BIN, job_dir_flag.c_str(),
            "--worker_id=0", nullptr);
    _exit(127);
  }
  ::close(to_pipe[0]);
  ::close(from_pipe[1]);

  auto hello = mapreduce::wire::ReadFrame(from_pipe[0]);
  ASSERT_TRUE(hello.ok()) << hello.status();
  EXPECT_EQ(*hello, "hello 0");
  ASSERT_TRUE(
      mapreduce::wire::WriteFrame(to_pipe[1], "gibberish \x01\x02").ok());

  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ::close(to_pipe[1]);
  ::close(from_pipe[0]);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), tasks::kWorkerExitMalformedFrame);
  EXPECT_STREQ(tasks::WorkerExitCodeName(tasks::kWorkerExitMalformedFrame),
               "malformed frame");
}

TEST_F(DistTest, MissingWorkerBinaryIsNotFound) {
  auto model = SmallModel();
  auto partition = core::MakePartition(5, {0});
  ASSERT_TRUE(partition.ok());
  auto subs = core::BuildSubEnsembles(model.get(), *partition, {});
  ASSERT_TRUE(subs.ok());

  core::DM2tdOptions options;
  options.ranks = std::vector<std::uint64_t>(5, 2);
  options.backend = core::DistBackend::kProcess;
  options.process.worker_binary = Path("does_not_exist");
  auto result = core::DM2tdDecompose(*subs, *partition,
                                     model->space().Shape(), options);
  EXPECT_FALSE(result.ok());
}

}  // namespace
}  // namespace m2td
