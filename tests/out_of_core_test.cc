#include <filesystem>
#include <string>
#include <unistd.h>

#include <gtest/gtest.h>

#include "io/chunk_store.h"
#include "io/out_of_core.h"
#include "tensor/matricize.h"
#include "tensor/ttm.h"
#include "tensor/tucker.h"
#include "util/random.h"

namespace m2td::io {
namespace {

class OutOfCoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("m2td_ooc_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  /// Writes `x` into a fresh store with the given chunk extent.
  ChunkStore MakeStore(const tensor::SparseTensor& x, std::uint64_t chunk) {
    auto store = ChunkStore::Create(
        dir_.string(), x.shape(),
        std::vector<std::uint64_t>(x.num_modes(), chunk));
    EXPECT_TRUE(store.ok()) << store.status();
    EXPECT_TRUE(store->Write(x).ok());
    return std::move(store).ValueOrDie();
  }

  std::filesystem::path dir_;
};

tensor::SparseTensor MakeTensor(const std::vector<std::uint64_t>& shape,
                                std::uint64_t nnz, std::uint64_t seed) {
  Rng rng(seed);
  tensor::SparseTensor x(shape);
  std::vector<std::uint32_t> idx(shape.size());
  for (std::uint64_t e = 0; e < nnz; ++e) {
    for (std::size_t m = 0; m < shape.size(); ++m) {
      idx[m] = static_cast<std::uint32_t>(rng.UniformInt(shape[m]));
    }
    x.AppendEntry(idx, rng.Gaussian());
  }
  x.SortAndCoalesce();
  return x;
}

TEST_F(OutOfCoreTest, GramMatchesInMemoryAcrossChunkSizes) {
  tensor::SparseTensor x = MakeTensor({6, 8, 10}, 120, 3);
  for (std::uint64_t chunk : {2ULL, 3ULL, 16ULL}) {
    std::filesystem::remove_all(dir_);
    ChunkStore store = MakeStore(x, chunk);
    for (std::size_t mode = 0; mode < 3; ++mode) {
      auto streamed = ModeGramFromStore(store, mode);
      auto in_memory = tensor::ModeGram(x, mode);
      ASSERT_TRUE(streamed.ok() && in_memory.ok());
      EXPECT_LT(linalg::Matrix::MaxAbsDiff(*streamed, *in_memory), 1e-10)
          << "chunk " << chunk << " mode " << mode;
    }
  }
}

TEST_F(OutOfCoreTest, GramModeOutOfRangeRejected) {
  ChunkStore store = MakeStore(MakeTensor({4, 4}, 8, 1), 2);
  EXPECT_FALSE(ModeGramFromStore(store, 2).ok());
}

TEST_F(OutOfCoreTest, HosvdMatchesInMemory) {
  tensor::SparseTensor x = MakeTensor({6, 6, 6}, 100, 7);
  ChunkStore store = MakeStore(x, 3);
  const std::vector<std::uint64_t> ranks = {3, 3, 3};
  auto streamed = HosvdFromStore(store, ranks);
  auto in_memory = tensor::HosvdSparse(x, ranks);
  ASSERT_TRUE(streamed.ok() && in_memory.ok());
  auto r1 = tensor::Reconstruct(*streamed);
  auto r2 = tensor::Reconstruct(*in_memory);
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_NEAR(tensor::DenseTensor::FrobeniusDistance(*r1, *r2), 0.0, 1e-9);
}

TEST_F(OutOfCoreTest, HosvdValidation) {
  ChunkStore store = MakeStore(MakeTensor({4, 4}, 8, 1), 2);
  EXPECT_FALSE(HosvdFromStore(store, {2}).ok());
  EXPECT_FALSE(HosvdFromStore(store, {0, 2}).ok());
}

TEST_F(OutOfCoreTest, ModeProductMatchesInMemory) {
  tensor::SparseTensor x = MakeTensor({6, 8, 4}, 70, 11);
  ChunkStore store = MakeStore(x, 3);
  Rng rng(5);
  for (std::size_t mode = 0; mode < 3; ++mode) {
    linalg::Matrix u(static_cast<std::size_t>(x.shape()[mode]), 2);
    for (std::size_t i = 0; i < u.rows(); ++i) {
      for (std::size_t j = 0; j < 2; ++j) u(i, j) = rng.Gaussian();
    }
    auto streamed = SparseModeProductFromStore(store, u, mode, true);
    auto in_memory = tensor::SparseModeProduct(x, u, mode, true);
    ASSERT_TRUE(streamed.ok() && in_memory.ok());
    EXPECT_NEAR(
        tensor::DenseTensor::FrobeniusDistance(*streamed, *in_memory), 0.0,
        1e-9)
        << "mode " << mode;
  }
  // Shape validation.
  linalg::Matrix wrong(3, 2);
  EXPECT_FALSE(SparseModeProductFromStore(store, wrong, 0, true).ok());
  EXPECT_FALSE(SparseModeProductFromStore(store, wrong, 9, true).ok());
}

TEST_F(OutOfCoreTest, EmptyStoreYieldsZeroGramAndCore) {
  tensor::SparseTensor empty({4, 4});
  empty.SortAndCoalesce();
  ChunkStore store = MakeStore(empty, 2);
  auto gram = ModeGramFromStore(store, 0);
  ASSERT_TRUE(gram.ok());
  EXPECT_EQ(gram->FrobeniusNorm(), 0.0);
  auto hosvd = HosvdFromStore(store, {2, 2});
  ASSERT_TRUE(hosvd.ok());
  EXPECT_EQ(hosvd->core.FrobeniusNorm(), 0.0);
}

}  // namespace
}  // namespace m2td::io
