// Chaos soak harness (ctest -L chaos): seeded schedules combining
// failpoints, mid-phase cancellation, deadline expiry, and kill/resume,
// asserting the pipeline never hangs, never corrupts a checkpoint, and
// always surfaces a clean cancellation Status.
//
// Deterministic mid-phase triggers ride on the obs span listener (the
// same feed the watchdog uses): the listener fires a CancelSource — or
// raises SIGINT — at exactly the k-th open of a named phase span, so
// "cancel during the 3rd HOOI sweep" is reproducible, not timing-based.
// Because there is a single process-wide listener slot, these tests never
// run a watchdog concurrently with an armed trigger.

#include <algorithm>
#include <atomic>
#include <csignal>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <numeric>
#include <string>
#include <string_view>
#include <thread>
#include <vector>
#include <unistd.h>

#include <gtest/gtest.h>

#include "core/dm2td.h"
#include "core/m2td.h"
#include "core/ooc_m2td.h"
#include "core/pf_partition.h"
#include "ensemble/simulation_model.h"
#include "io/chunk_store.h"
#include "mapreduce/engine.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel/thread_pool.h"
#include "robust/cancel.h"
#include "robust/failpoint.h"
#include "robust/retry.h"
#include "tensor/hooi.h"
#include "tensor/sparse_tensor.h"
#include "tensor/tucker.h"
#include "util/random.h"

namespace m2td {
namespace {

// ------------------------------------------- span-listener chaos triggers

std::atomic<int> g_span_hits{0};
std::atomic<int> g_trigger_at{0};
std::atomic<bool> g_raise_sigint{false};
robust::CancelSource* g_chaos_source = nullptr;
const char* g_trigger_span = nullptr;

void ChaosSpanListener(std::string_view name, bool begin) {
  if (!begin || g_trigger_span == nullptr || name != g_trigger_span) return;
  if (g_span_hits.fetch_add(1) + 1 != g_trigger_at.load()) return;
  if (g_raise_sigint.load()) {
    std::raise(SIGINT);
  } else if (g_chaos_source != nullptr) {
    g_chaos_source->Cancel(robust::CancelCause::kCancelled);
  }
}

/// RAII arming of the chaos listener: fires once, at the `at`-th open
/// (1-based) of the span named `span`.
class SpanTrigger {
 public:
  SpanTrigger(const char* span, int at, robust::CancelSource* source,
              bool raise_sigint = false) {
    g_span_hits.store(0);
    g_trigger_at.store(at);
    g_chaos_source = source;
    g_raise_sigint.store(raise_sigint);
    g_trigger_span = span;
    obs::SetSpanListener(&ChaosSpanListener);
  }
  ~SpanTrigger() {
    obs::SetSpanListener(nullptr);
    g_trigger_span = nullptr;
    g_chaos_source = nullptr;
    g_raise_sigint.store(false);
  }
  SpanTrigger(const SpanTrigger&) = delete;
  SpanTrigger& operator=(const SpanTrigger&) = delete;
};

class ChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("m2td_chaos_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    obs::SetMetricsEnabled(true);
  }
  void TearDown() override {
    obs::SetSpanListener(nullptr);
    robust::DisarmAllFailpoints();
    robust::SetGlobalRetryPolicy(robust::RetryPolicy{});
    robust::SetRetrySleeperForTest(nullptr);
    obs::SetMetricsEnabled(false);
    std::filesystem::remove_all(dir_);
  }

  std::string Path(const std::string& name) const {
    return (dir_ / name).string();
  }

  std::filesystem::path dir_;
};

std::unique_ptr<ensemble::DynamicalSystemModel> PendulumModel(
    std::uint32_t resolution) {
  ensemble::ModelOptions options;
  options.parameter_resolution = resolution;
  options.time_resolution = resolution;
  auto model = ensemble::MakeDoublePendulumModel(options);
  EXPECT_TRUE(model.ok());
  return std::move(model).ValueOrDie();
}

tensor::SparseTensor RandomSparse(const std::vector<std::uint64_t>& shape,
                                  std::uint64_t nnz, std::uint64_t seed) {
  tensor::SparseTensor x(shape);
  Rng rng(seed);
  std::vector<std::uint32_t> idx(shape.size());
  for (std::uint64_t e = 0; e < nnz; ++e) {
    for (std::size_t m = 0; m < shape.size(); ++m) {
      idx[m] = static_cast<std::uint32_t>(rng.UniformInt(shape[m]));
    }
    x.AppendEntry(idx, rng.Gaussian());
  }
  x.SortAndCoalesce();
  return x;
}

void ExpectBitIdentical(const core::M2tdResult& got,
                        const core::M2tdResult& want) {
  EXPECT_EQ(got.join_nnz, want.join_nnz);
  ASSERT_EQ(got.tucker.core.shape(), want.tucker.core.shape());
  for (std::uint64_t i = 0; i < want.tucker.core.NumElements(); ++i) {
    EXPECT_EQ(got.tucker.core.flat(i), want.tucker.core.flat(i))
        << "core[" << i << "]";
  }
  ASSERT_EQ(got.tucker.factors.size(), want.tucker.factors.size());
  for (std::size_t m = 0; m < want.tucker.factors.size(); ++m) {
    const linalg::Matrix& fa = want.tucker.factors[m];
    const linalg::Matrix& fb = got.tucker.factors[m];
    ASSERT_EQ(fb.rows(), fa.rows());
    ASSERT_EQ(fb.cols(), fa.cols());
    for (std::size_t i = 0; i < fa.rows(); ++i) {
      for (std::size_t j = 0; j < fa.cols(); ++j) {
        EXPECT_EQ(fb(i, j), fa(i, j)) << "factor " << m;
      }
    }
  }
}

// --------------------------------------- deterministic mid-phase cancels

TEST_F(ChaosTest, HooiCancelledMidSweepReturnsBestSoFar) {
  tensor::SparseTensor x = RandomSparse({8, 8, 8}, 220, /*seed=*/21);
  tensor::HooiOptions options;
  options.max_iterations = 8;
  options.tolerance = 0.0;  // never converges: every sweep runs
  tensor::HooiInfo info;
  robust::CancelSource source;
  {
    SpanTrigger trigger("hooi_sweep", /*at=*/3, &source);
    robust::CancelScope scope(source.token());
    auto tucker = tensor::HooiSparse(x, {3, 3, 3}, options, &info);
    ASSERT_TRUE(tucker.ok()) << tucker.status();  // anytime: OK, not error
    EXPECT_EQ(tucker->core.shape(), (std::vector<std::uint64_t>{3, 3, 3}));
  }
  EXPECT_EQ(info.interrupted, robust::CancelCause::kCancelled);
  // The trigger fired at the open of sweep 3, so exactly two sweeps
  // completed and the best-so-far state is theirs.
  EXPECT_EQ(info.iterations, 2);
  EXPECT_FALSE(info.converged);
}

TEST_F(ChaosTest, ExpiredDeadlineFailsPipelineUpFront) {
  auto model = PendulumModel(4);
  auto partition = core::MakePartition(5, {0});
  ASSERT_TRUE(partition.ok());
  auto subs = core::BuildSubEnsembles(model.get(), *partition, {});
  ASSERT_TRUE(subs.ok());
  core::M2tdOptions options;
  options.ranks = std::vector<std::uint64_t>(5, 2);
  robust::CancelSource source(robust::Deadline::AfterMillis(-1.0));
  robust::CancelScope scope(source.token());
  auto result = core::M2tdDecompose(*subs, *partition, model->space().Shape(),
                                    options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
}

TEST_F(ChaosTest, OocCancelMidSlabFlushesCheckpointThenResumesBitIdentical) {
  auto model = PendulumModel(5);
  auto partition = core::MakePartition(5, {0});
  ASSERT_TRUE(partition.ok());
  auto subs = core::BuildSubEnsembles(model.get(), *partition, {});
  ASSERT_TRUE(subs.ok());
  auto store1 =
      io::ChunkStore::Create(Path("s1"), subs->x1.shape(), {2, 2, 2});
  auto store2 =
      io::ChunkStore::Create(Path("s2"), subs->x2.shape(), {2, 2, 2});
  ASSERT_TRUE(store1.ok() && store2.ok());
  ASSERT_TRUE(store1->Write(subs->x1).ok());
  ASSERT_TRUE(store2->Write(subs->x2).ok());

  core::M2tdOptions options;
  options.ranks = std::vector<std::uint64_t>(5, 2);
  auto uninterrupted = core::M2tdDecomposeFromStores(
      *store1, *store2, *partition, model->space().Shape(), options);
  ASSERT_TRUE(uninterrupted.ok()) << uninterrupted.status();

  // Cancel at the open of the 4th pivot slab (of 5). The drain path must
  // flush a snapshot covering the three completed slabs before returning.
  core::OocCheckpointOptions checkpoint;
  checkpoint.checkpoint_dir = Path("ckpt");
  checkpoint.checkpoint_every = 2;
  robust::CancelSource source;
  {
    SpanTrigger trigger("pivot_slab", /*at=*/4, &source);
    robust::CancelScope scope(source.token());
    auto cancelled = core::M2tdDecomposeFromStores(
        *store1, *store2, *partition, model->space().Shape(), options,
        checkpoint);
    ASSERT_FALSE(cancelled.ok());
    EXPECT_EQ(cancelled.status().code(), StatusCode::kCancelled);
  }

  obs::GetCounter("robust.ooc_resumes").Reset();
  checkpoint.resume = true;
  auto resumed = core::M2tdDecomposeFromStores(
      *store1, *store2, *partition, model->space().Shape(), options,
      checkpoint);
  ASSERT_TRUE(resumed.ok()) << resumed.status();
  EXPECT_EQ(obs::GetCounter("robust.ooc_resumes").value(), 1u);
  ExpectBitIdentical(*resumed, *uninterrupted);
}

TEST_F(ChaosTest, MapReduceCancelMidMapDrainsWithoutRetrying) {
  robust::SetRetrySleeperForTest([](double) {});
  robust::CancelSource source;
  mapreduce::JobSpec<int, int, int, int> spec;
  std::atomic<int> mapped{0};
  spec.mapper = [&](const int& value, mapreduce::Emitter<int, int>* emit) {
    if (mapped.fetch_add(1) + 1 == 200) {
      source.Cancel();  // in-band: fired from inside a map task
    }
    emit->Emit(value % 7, value);
  };
  spec.reducer = [](const int& key, std::vector<int>& values,
                    std::vector<int>* out) {
    out->push_back(key + static_cast<int>(values.size()));
  };
  spec.num_workers = 2;
  spec.retry.max_retries = 3;
  std::vector<int> inputs(2000);
  std::iota(inputs.begin(), inputs.end(), 0);

  obs::GetCounter("robust.retry_attempts").Reset();
  robust::CancelScope scope(source.token());
  auto result = mapreduce::RunJob(spec, inputs);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
  // Cancellation is not a task failure: the retry layer must not replay.
  EXPECT_EQ(obs::GetCounter("robust.retry_attempts").value(), 0u);
}

// ------------------------------------------------------------ seeded soak

TEST_F(ChaosTest, SeededScheduleSoakNeverHangsOrMiscounts) {
  // Each seed arms a different combination of probabilistic failpoints,
  // deadlines, and an asynchronous canceller; the run may succeed, be
  // cancelled, deadline-exceed, or exhaust retries — but it must always
  // return a clean Status (the test completing at all proves no hang,
  // and ASAN/TSAN runs of this binary prove no corruption).
  auto model = PendulumModel(4);
  auto partition = core::MakePartition(5, {0});
  ASSERT_TRUE(partition.ok());
  auto subs = core::BuildSubEnsembles(model.get(), *partition, {});
  ASSERT_TRUE(subs.ok());
  robust::SetRetrySleeperForTest([](double) {});

  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    core::DM2tdOptions options;
    options.ranks = std::vector<std::uint64_t>(5, 2);
    options.num_workers = 2;
    options.retry.max_retries = 6;
    ASSERT_TRUE(robust::ArmFailpointsFromString(
                    "mapreduce.map_task:prob=0.25,seed=" +
                    std::to_string(seed))
                    .ok());
    robust::CancelSource source(
        seed % 2 == 1 ? robust::Deadline::AfterMillis(5.0 * double(seed))
                      : robust::Deadline::Infinite());
    std::thread canceller;
    if (seed % 3 == 2) {
      canceller = std::thread([&source, seed] {
        std::this_thread::sleep_for(std::chrono::milliseconds(2 + seed));
        source.Cancel();
      });
    }
    Result<core::DM2tdResult> result = [&] {
      robust::CancelScope scope(source.token());
      return core::DM2tdDecompose(*subs, *partition, model->space().Shape(),
                                  options);
    }();
    if (canceller.joinable()) canceller.join();
    robust::DisarmAllFailpoints();
    if (result.ok()) {
      EXPECT_EQ(result->tucker.core.shape(),
                (std::vector<std::uint64_t>(5, 2)))
          << "seed " << seed;
    } else {
      const StatusCode code = result.status().code();
      EXPECT_TRUE(robust::IsCancellation(result.status()) ||
                  code == StatusCode::kInternal)
          << "seed " << seed << ": " << result.status();
    }
  }
}

// ------------------------------------------------ SIGINT graceful drain

/// Child body for the SIGINT-drain subprocess test: raises a real SIGINT
/// at the open of the 4th pivot slab, expects the installed handler +
/// cooperative checks to drain the run into a flushed checkpoint, then
/// exits 42 on success (any other exit code pinpoints the failed step).
void RunSigintDrainChild(const io::ChunkStore& store1,
                         const io::ChunkStore& store2,
                         const core::PfPartition& partition,
                         const std::vector<std::uint64_t>& full_shape,
                         const core::M2tdOptions& options,
                         const core::OocCheckpointOptions& checkpoint) {
  robust::CancelSource source;
  if (!robust::InstallCancelOnSignal(source)) _exit(3);
  SpanTrigger trigger("pivot_slab", /*at=*/4, nullptr, /*raise_sigint=*/true);
  robust::CancelScope scope(source.token());
  auto result = core::M2tdDecomposeFromStores(store1, store2, partition,
                                              full_shape, options,
                                              checkpoint);
  if (result.ok()) _exit(4);  // the signal should have cancelled the run
  if (result.status().code() != StatusCode::kCancelled) _exit(5);
  if (!std::filesystem::exists(
          std::filesystem::path(checkpoint.checkpoint_dir) /
          "journal.m2td")) {
    _exit(6);  // drain must leave a valid journal behind
  }
  _exit(42);
}

TEST_F(ChaosTest, SigintDrainFlushesJournalAndResumeIsBitIdentical) {
  // The child is forked by EXPECT_EXIT, so the process must be effectively
  // single-threaded at the fork: a 1-thread global pool runs every region
  // inline on the initiator (no worker threads at all).
  const int previous_threads = parallel::GlobalThreads();
  parallel::SetGlobalThreads(1);

  auto model = PendulumModel(5);
  auto partition = core::MakePartition(5, {0});
  ASSERT_TRUE(partition.ok());
  auto subs = core::BuildSubEnsembles(model.get(), *partition, {});
  ASSERT_TRUE(subs.ok());
  auto store1 =
      io::ChunkStore::Create(Path("s1"), subs->x1.shape(), {2, 2, 2});
  auto store2 =
      io::ChunkStore::Create(Path("s2"), subs->x2.shape(), {2, 2, 2});
  ASSERT_TRUE(store1.ok() && store2.ok());
  ASSERT_TRUE(store1->Write(subs->x1).ok());
  ASSERT_TRUE(store2->Write(subs->x2).ok());

  core::M2tdOptions options;
  options.ranks = std::vector<std::uint64_t>(5, 2);
  auto uninterrupted = core::M2tdDecomposeFromStores(
      *store1, *store2, *partition, model->space().Shape(), options);
  ASSERT_TRUE(uninterrupted.ok()) << uninterrupted.status();

  core::OocCheckpointOptions checkpoint;
  checkpoint.checkpoint_dir = Path("ckpt");
  checkpoint.checkpoint_every = 2;
  EXPECT_EXIT(RunSigintDrainChild(*store1, *store2, *partition,
                                  model->space().Shape(), options,
                                  checkpoint),
              ::testing::ExitedWithCode(42), "");

  // The checkpoint the child flushed on SIGINT lives on the shared
  // filesystem; resuming from it must reproduce the uninterrupted run
  // bit for bit.
  obs::GetCounter("robust.ooc_resumes").Reset();
  checkpoint.resume = true;
  auto resumed = core::M2tdDecomposeFromStores(
      *store1, *store2, *partition, model->space().Shape(), options,
      checkpoint);
  ASSERT_TRUE(resumed.ok()) << resumed.status();
  EXPECT_EQ(obs::GetCounter("robust.ooc_resumes").value(), 1u);
  ExpectBitIdentical(*resumed, *uninterrupted);

  parallel::SetGlobalThreads(previous_threads);
}

}  // namespace
}  // namespace m2td
