#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "io/table.h"
#include "io/tensor_io.h"
#include "util/random.h"

namespace m2td::io {
namespace {

class TensorIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("m2td_io_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

tensor::SparseTensor MakeSparse() {
  tensor::SparseTensor x({4, 3, 5});
  Rng rng(7);
  std::vector<std::uint32_t> idx(3);
  for (int e = 0; e < 20; ++e) {
    idx[0] = static_cast<std::uint32_t>(rng.UniformInt(4));
    idx[1] = static_cast<std::uint32_t>(rng.UniformInt(3));
    idx[2] = static_cast<std::uint32_t>(rng.UniformInt(5));
    x.AppendEntry(idx, rng.Gaussian());
  }
  x.SortAndCoalesce();
  return x;
}

void ExpectTensorsEqual(const tensor::SparseTensor& a,
                        const tensor::SparseTensor& b) {
  ASSERT_EQ(a.shape(), b.shape());
  ASSERT_EQ(a.NumNonZeros(), b.NumNonZeros());
  for (std::uint64_t e = 0; e < a.NumNonZeros(); ++e) {
    for (std::size_t m = 0; m < a.num_modes(); ++m) {
      EXPECT_EQ(a.Index(m, e), b.Index(m, e));
    }
    EXPECT_DOUBLE_EQ(a.Value(e), b.Value(e));
  }
}

TEST_F(TensorIoTest, SparseTextRoundTrip) {
  tensor::SparseTensor x = MakeSparse();
  ASSERT_TRUE(SaveSparseText(x, Path("t.txt")).ok());
  auto loaded = LoadSparseText(Path("t.txt"));
  ASSERT_TRUE(loaded.ok());
  ExpectTensorsEqual(x, *loaded);
}

TEST_F(TensorIoTest, SparseBinaryRoundTrip) {
  tensor::SparseTensor x = MakeSparse();
  ASSERT_TRUE(SaveSparseBinary(x, Path("t.bin")).ok());
  auto loaded = LoadSparseBinary(Path("t.bin"));
  ASSERT_TRUE(loaded.ok());
  ExpectTensorsEqual(x, *loaded);
}

TEST_F(TensorIoTest, EmptySparseTensorRoundTrips) {
  tensor::SparseTensor x({2, 2});
  x.SortAndCoalesce();
  ASSERT_TRUE(SaveSparseText(x, Path("empty.txt")).ok());
  auto loaded = LoadSparseText(Path("empty.txt"));
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->NumNonZeros(), 0u);
  EXPECT_EQ(loaded->shape(), x.shape());
}

TEST_F(TensorIoTest, DenseTextRoundTrip) {
  tensor::DenseTensor x({3, 4});
  Rng rng(9);
  for (std::uint64_t i = 0; i < x.NumElements(); ++i) {
    x.flat(i) = rng.Gaussian();
  }
  ASSERT_TRUE(SaveDenseText(x, Path("d.txt")).ok());
  auto loaded = LoadDenseText(Path("d.txt"));
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->shape(), x.shape());
  EXPECT_DOUBLE_EQ(tensor::DenseTensor::FrobeniusDistance(x, *loaded), 0.0);
}

TEST_F(TensorIoTest, MissingFileFails) {
  EXPECT_EQ(LoadSparseText(Path("nope.txt")).status().code(),
            StatusCode::kIOError);
  EXPECT_EQ(LoadSparseBinary(Path("nope.bin")).status().code(),
            StatusCode::kIOError);
  EXPECT_EQ(LoadDenseText(Path("nope.txt")).status().code(),
            StatusCode::kIOError);
}

TEST_F(TensorIoTest, CorruptTextRejected) {
  {
    std::ofstream out(Path("bad1.txt"));
    out << "wrong-magic 1\n";
  }
  EXPECT_FALSE(LoadSparseText(Path("bad1.txt")).ok());

  {
    std::ofstream out(Path("bad2.txt"));
    out << "m2td-sparse 1\nmodes 2\nshape 2 2\nnnz 2\n0 0 1.0\n";
    // second entry missing
  }
  EXPECT_FALSE(LoadSparseText(Path("bad2.txt")).ok());

  {
    std::ofstream out(Path("bad3.txt"));
    out << "m2td-sparse 1\nmodes 2\nshape 2 2\nnnz 1\n5 0 1.0\n";
    // index out of range
  }
  EXPECT_FALSE(LoadSparseText(Path("bad3.txt")).ok());
}

TEST_F(TensorIoTest, CorruptBinaryRejected) {
  {
    std::ofstream out(Path("bad.bin"), std::ios::binary);
    const char garbage[16] = {1, 2, 3};
    out.write(garbage, sizeof(garbage));
  }
  EXPECT_FALSE(LoadSparseBinary(Path("bad.bin")).ok());
}

TEST_F(TensorIoTest, TextValuesSurvive17Digits) {
  tensor::SparseTensor x({2, 2});
  x.AppendEntry({0, 1}, 0.1234567890123456789);
  x.AppendEntry({1, 0}, -1e-300);
  x.SortAndCoalesce();
  ASSERT_TRUE(SaveSparseText(x, Path("p.txt")).ok());
  auto loaded = LoadSparseText(Path("p.txt"));
  ASSERT_TRUE(loaded.ok());
  ExpectTensorsEqual(x, *loaded);
}

// ------------------------------------------------------------ TablePrinter

TEST(TablePrinterTest, PrintAlignsColumns) {
  TablePrinter table({"Scheme", "Accuracy"});
  table.AddRow({"M2TD-SELECT", "0.57"});
  table.AddRow({"Random", "9e-08"});
  std::ostringstream os;
  table.Print(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("Scheme"), std::string::npos);
  EXPECT_NE(text.find("M2TD-SELECT"), std::string::npos);
  // Header separator present.
  EXPECT_NE(text.find("|---"), std::string::npos);
  EXPECT_EQ(table.NumRows(), 2u);
}

TEST(TablePrinterTest, CellFormatting) {
  EXPECT_EQ(TablePrinter::Cell(0.5678, 2), "0.57");
  EXPECT_EQ(TablePrinter::SciCell(0.00021), "2.1e-04");
}

TEST_F(TensorIoTest, BinaryLoadRejectsNaNPayloadNamingCoordinate) {
  // Build a tensor holding a NaN via the unchecked builder (modelling a
  // corrupt file written by a buggy producer), serialize it, and verify
  // the loader's ingest screen rejects it as InvalidArgument — not
  // IOError, so the retry layer never re-reads known-bad data.
  tensor::SparseTensor bad({4, 3, 5});
  bad.AppendEntry({0, 0, 0}, 1.0);
  bad.AppendEntry({2, 1, 4}, std::numeric_limits<double>::quiet_NaN());
  const std::string path = Path("bad.spbin");
  ASSERT_TRUE(SaveSparseBinary(bad, path).ok());
  auto loaded = LoadSparseBinary(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("NaN"), std::string::npos)
      << loaded.status().message();
  EXPECT_NE(loaded.status().message().find("(2, 1, 4)"), std::string::npos)
      << loaded.status().message();
}

class TableCsvTest : public TensorIoTest {};

TEST_F(TableCsvTest, WriteCsvEscapesSpecials) {
  TablePrinter table({"name", "note"});
  table.AddRow({"plain", "hello"});
  table.AddRow({"with,comma", "say \"hi\""});
  ASSERT_TRUE(table.WriteCsv(Path("t.csv")).ok());
  std::ifstream in(Path("t.csv"));
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "name,note");
  std::getline(in, line);
  EXPECT_EQ(line, "plain,hello");
  std::getline(in, line);
  EXPECT_EQ(line, "\"with,comma\",\"say \"\"hi\"\"\"");
}

}  // namespace
}  // namespace m2td::io
