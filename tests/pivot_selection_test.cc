#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "core/pivot_selection.h"
#include "ensemble/simulation_model.h"

namespace m2td::core {
namespace {

std::unique_ptr<ensemble::DynamicalSystemModel> SmallModel() {
  ensemble::ModelOptions options;
  options.parameter_resolution = 6;
  options.time_resolution = 6;
  auto model = ensemble::MakeDoublePendulumModel(options);
  EXPECT_TRUE(model.ok());
  return std::move(model).ValueOrDie();
}

TEST(PivotSelectionTest, ScoresEveryModeOnceSortedDescending) {
  auto model = SmallModel();
  auto scores = RankPivotChoices(model.get());
  ASSERT_TRUE(scores.ok());
  ASSERT_EQ(scores->size(), 5u);
  std::set<std::size_t> modes;
  for (const PivotScore& score : *scores) {
    modes.insert(score.mode);
    EXPECT_GE(score.alignment, 0.0);
    EXPECT_LE(score.alignment, 1.0 + 1e-9);
    EXPECT_GT(score.probe_cells, 0u);
  }
  EXPECT_EQ(modes.size(), 5u);
  for (std::size_t i = 1; i < scores->size(); ++i) {
    EXPECT_GE((*scores)[i - 1].alignment, (*scores)[i].alignment);
  }
}

TEST(PivotSelectionTest, DeterministicForSeed) {
  auto model1 = SmallModel();
  auto model2 = SmallModel();
  PivotSelectionOptions options;
  options.seed = 99;
  auto a = RankPivotChoices(model1.get(), options);
  auto b = RankPivotChoices(model2.get(), options);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (std::size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ((*a)[i].mode, (*b)[i].mode);
    EXPECT_DOUBLE_EQ((*a)[i].alignment, (*b)[i].alignment);
  }
}

TEST(PivotSelectionTest, FullDensityProbeGivesHighAlignmentForTime) {
  // With the full cross product and the time pivot, both sides' pivot
  // factors describe the same time axis of the same reference comparison —
  // the alignment should be substantial.
  auto model = SmallModel();
  PivotSelectionOptions options;
  options.probe_density = 1.0;
  auto scores = RankPivotChoices(model.get(), options);
  ASSERT_TRUE(scores.ok());
  for (const PivotScore& score : *scores) {
    if (score.mode == 0) {
      EXPECT_GT(score.alignment, 0.3) << "time-pivot alignment too low";
    }
  }
}

TEST(PivotSelectionTest, Validation) {
  auto model = SmallModel();
  PivotSelectionOptions bad;
  bad.rank = 0;
  EXPECT_FALSE(RankPivotChoices(model.get(), bad).ok());
  bad = PivotSelectionOptions{};
  bad.probe_density = 0.0;
  EXPECT_FALSE(RankPivotChoices(model.get(), bad).ok());
  EXPECT_FALSE(RankPivotChoices(nullptr).ok());
}

}  // namespace
}  // namespace m2td::core
