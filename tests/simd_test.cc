// Runtime SIMD dispatch: the scalar kernel table must be bit-identical
// to the historical inline loops (so forced-scalar + knob-on == knob-off
// exactly), the vector tables must agree with scalar to rounding, and the
// M2TD_FORCE_ISA override must only ever downgrade. Kernel-level checks
// cover Multiply/MultiplyTransA/MultiplyTransB, ModeGram, and
// SparseModeProduct across thread counts.

#include <cmath>
#include <cstdlib>
#include <vector>

#include <gtest/gtest.h>

#include "linalg/matrix.h"
#include "linalg/simd.h"
#include "obs/metrics.h"
#include "parallel/thread_pool.h"
#include "tensor/dense_tensor.h"
#include "tensor/matricize.h"
#include "tensor/sparse_tensor.h"
#include "tensor/ttm.h"
#include "util/cpu_features.h"
#include "util/random.h"

namespace m2td::linalg {
namespace {

using simd::Kernels;
using simd::KernelsForIsa;
using tensor::SparseTensor;
using util::SimdIsa;

// Restores the fast-kernels knob, the M2TD_FORCE_ISA environment, and
// the global pool on scope exit, so tests cannot leak dispatch state.
class DispatchGuard {
 public:
  DispatchGuard() : knob_(util::FastKernelsEnabled()) {}
  ~DispatchGuard() {
    util::SetFastKernelsEnabled(knob_);
    ::unsetenv("M2TD_FORCE_ISA");
    util::RefreshSimdIsaForTesting();
    parallel::SetGlobalThreads(parallel::HardwareThreads());
  }

 private:
  bool knob_;
};

void ForceIsa(const char* name) {
  ::setenv("M2TD_FORCE_ISA", name, /*overwrite=*/1);
  util::RefreshSimdIsaForTesting();
}

Matrix RandomMatrix(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) m(i, j) = rng.Gaussian();
  }
  return m;
}

SparseTensor RandomSparse(std::uint64_t dim, std::size_t modes,
                          std::uint64_t nnz, std::uint64_t seed) {
  Rng rng(seed);
  SparseTensor x(std::vector<std::uint64_t>(modes, dim));
  std::vector<std::uint32_t> idx(modes);
  for (std::uint64_t e = 0; e < nnz; ++e) {
    for (std::size_t m = 0; m < modes; ++m) {
      idx[m] = static_cast<std::uint32_t>(rng.UniformInt(dim));
    }
    x.AppendEntry(idx, rng.Gaussian());
  }
  x.SortAndCoalesce();
  return x;
}

// Dense fibers along mode 0: long contiguous CSF leaf runs, the regime
// where the gram/scatter kernels take their vectorized branches.
SparseTensor FiberDenseSparse(std::uint64_t dim, std::size_t modes,
                              std::uint64_t fibers, std::uint64_t seed) {
  Rng rng(seed);
  SparseTensor x(std::vector<std::uint64_t>(modes, dim));
  std::vector<std::uint32_t> idx(modes);
  for (std::uint64_t f = 0; f < fibers; ++f) {
    for (std::size_t m = 1; m < modes; ++m) {
      idx[m] = static_cast<std::uint32_t>(rng.UniformInt(dim));
    }
    for (std::uint64_t i = 0; i < dim; ++i) {
      idx[0] = static_cast<std::uint32_t>(i);
      x.AppendEntry(idx, rng.Gaussian());
    }
  }
  x.SortAndCoalesce();
  return x;
}

double MaxAbsDiffTensors(const tensor::DenseTensor& a,
                         const tensor::DenseTensor& b) {
  EXPECT_EQ(a.NumElements(), b.NumElements());
  double max_diff = 0.0;
  for (std::uint64_t i = 0; i < a.NumElements(); ++i) {
    max_diff = std::max(max_diff, std::fabs(a.flat(i) - b.flat(i)));
  }
  return max_diff;
}

// ------------------------------------------------- raw kernel oracles

TEST(SimdKernelTest, ScalarTableMatchesInlineLoopsExactly) {
  const Kernels& scalar = KernelsForIsa(SimdIsa::kScalar);
  Rng rng(5);
  for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{3},
                        std::size_t{7}, std::size_t{64}, std::size_t{129}}) {
    std::vector<double> x(n), y0(n), y1(n), y2(n), y3(n);
    for (std::size_t i = 0; i < n; ++i) {
      x[i] = rng.Gaussian();
      y0[i] = rng.Gaussian();
      y1[i] = rng.Gaussian();
      y2[i] = rng.Gaussian();
      y3[i] = rng.Gaussian();
    }
    const double a = rng.Gaussian();

    std::vector<double> expected = y0;
    for (std::size_t i = 0; i < n; ++i) expected[i] += a * x[i];
    std::vector<double> actual = y0;
    scalar.axpy(n, a, x.data(), actual.data());
    EXPECT_EQ(actual, expected) << "axpy n=" << n;

    double dot_expected = 0.0;
    for (std::size_t i = 0; i < n; ++i) dot_expected += x[i] * y0[i];
    EXPECT_EQ(scalar.dot(n, x.data(), y0.data()), dot_expected)
        << "dot n=" << n;

    double quad_expected[4] = {0.0, 0.0, 0.0, 0.0};
    for (std::size_t i = 0; i < n; ++i) {
      quad_expected[0] += x[i] * y0[i];
      quad_expected[1] += x[i] * y1[i];
      quad_expected[2] += x[i] * y2[i];
      quad_expected[3] += x[i] * y3[i];
    }
    double quad[4];
    scalar.dot4(n, x.data(), y0.data(), y1.data(), y2.data(), y3.data(),
                quad);
    for (int q = 0; q < 4; ++q) {
      EXPECT_EQ(quad[q], quad_expected[q]) << "dot4[" << q << "] n=" << n;
    }
  }
}

TEST(SimdKernelTest, VectorTablesMatchScalarToRounding) {
  const Kernels& scalar = KernelsForIsa(SimdIsa::kScalar);
  const Kernels& vec = KernelsForIsa(util::DetectedSimdIsa());
  if (vec.isa == SimdIsa::kScalar) {
    GTEST_SKIP() << "no vector ISA available in this binary/host";
  }
  Rng rng(9);
  for (std::size_t n : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                        std::size_t{5}, std::size_t{8}, std::size_t{13},
                        std::size_t{16}, std::size_t{100},
                        std::size_t{257}}) {
    std::vector<double> x(n), y0(n), y1(n), y2(n), y3(n);
    for (std::size_t i = 0; i < n; ++i) {
      x[i] = rng.Gaussian();
      y0[i] = rng.Gaussian();
      y1[i] = rng.Gaussian();
      y2[i] = rng.Gaussian();
      y3[i] = rng.Gaussian();
    }
    const double a = rng.Gaussian();

    std::vector<double> ys = y0, yv = y0;
    scalar.axpy(n, a, x.data(), ys.data());
    vec.axpy(n, a, x.data(), yv.data());
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(ys[i], yv[i], 1e-12) << "axpy n=" << n << " i=" << i;
    }

    EXPECT_NEAR(scalar.dot(n, x.data(), y0.data()),
                vec.dot(n, x.data(), y0.data()), 1e-10 * n)
        << "dot n=" << n;

    double qs[4], qv[4];
    scalar.dot4(n, x.data(), y0.data(), y1.data(), y2.data(), y3.data(),
                qs);
    vec.dot4(n, x.data(), y0.data(), y1.data(), y2.data(), y3.data(), qv);
    for (int q = 0; q < 4; ++q) {
      EXPECT_NEAR(qs[q], qv[q], 1e-10 * n) << "dot4[" << q << "] n=" << n;
    }
  }
}

TEST(SimdKernelTest, UnavailableIsaFallsBackToScalarTable) {
#if defined(__x86_64__)
  const Kernels& table = KernelsForIsa(SimdIsa::kNeon);
#else
  const Kernels& table = KernelsForIsa(SimdIsa::kAvx2);
#endif
  EXPECT_EQ(table.isa, SimdIsa::kScalar);
}

// ------------------------------------------- ISA resolution + override

TEST(SimdDispatchTest, ForceIsaOnlyEverDowngrades) {
  DispatchGuard guard;
  const SimdIsa detected = util::DetectedSimdIsa();

  ForceIsa("scalar");
  EXPECT_EQ(util::ResolvedSimdIsa(), SimdIsa::kScalar);

  // Forcing the detected level is a no-op; forcing a level the host or
  // binary lacks warns and falls back to detected (never upgrades).
  for (const char* name : {"scalar", "avx2", "neon"}) {
    ForceIsa(name);
    SimdIsa forced = SimdIsa::kScalar;
    ASSERT_TRUE(util::ParseSimdIsa(name, &forced));
    const SimdIsa resolved = util::ResolvedSimdIsa();
    if (forced == SimdIsa::kScalar || forced == detected) {
      EXPECT_EQ(resolved, forced) << name;
    } else {
      EXPECT_EQ(resolved, detected) << name;
    }
  }

  // Garbage values warn and keep the detected level.
  ForceIsa("quantum");
  EXPECT_EQ(util::ResolvedSimdIsa(), detected);

  ::unsetenv("M2TD_FORCE_ISA");
  util::RefreshSimdIsaForTesting();
  EXPECT_EQ(util::ResolvedSimdIsa(), detected);
}

TEST(SimdDispatchTest, ActiveIsaFollowsKnob) {
  DispatchGuard guard;
  util::SetFastKernelsEnabled(false);
  EXPECT_EQ(util::ActiveSimdIsa(), SimdIsa::kScalar);
  EXPECT_FALSE(simd::KernelsEnabled());
  util::SetFastKernelsEnabled(true);
  EXPECT_EQ(util::ActiveSimdIsa(), util::ResolvedSimdIsa());
  EXPECT_TRUE(simd::KernelsEnabled());
}

TEST(SimdDispatchTest, IsaNamesRoundTrip) {
  for (SimdIsa isa :
       {SimdIsa::kScalar, SimdIsa::kAvx2, SimdIsa::kNeon}) {
    SimdIsa parsed = SimdIsa::kScalar;
    ASSERT_TRUE(util::ParseSimdIsa(util::SimdIsaName(isa), &parsed));
    EXPECT_EQ(parsed, isa);
  }
  SimdIsa parsed = SimdIsa::kNeon;
  EXPECT_FALSE(util::ParseSimdIsa("sse2", &parsed));
  EXPECT_EQ(parsed, SimdIsa::kNeon);  // untouched on failure
}

TEST(SimdDispatchTest, DispatchCountersCountKernelInvocations) {
  DispatchGuard guard;
  const bool metrics_was_enabled = obs::MetricsEnabled();
  obs::SetMetricsEnabled(true);
  ForceIsa("scalar");
  util::SetFastKernelsEnabled(true);
  obs::Counter& scalar_count =
      obs::GetCounter("linalg.simd.dispatch_scalar");
  const std::uint64_t before = scalar_count.value();
  const Matrix a = RandomMatrix(8, 8, 3);
  (void)Multiply(a, a);
  (void)MultiplyTransA(a, a);
  EXPECT_EQ(scalar_count.value(), before + 2);
  obs::SetMetricsEnabled(metrics_was_enabled);
}

// -------------------------------- kernel-level identity across dispatch

// Every dispatched kernel, evaluated knob-off (the historical code), with
// forced-scalar dispatch (must be bit-identical), and with the resolved
// vector ISA (must agree to rounding), across thread counts (all paths
// are chunk-order invariant, so thread count must never change a bit).
TEST(SimdKernelTest, KernelLevelDispatchIdentity) {
  DispatchGuard guard;
  const Matrix a = RandomMatrix(37, 53, 11);
  const Matrix b = RandomMatrix(53, 41, 13);
  const Matrix bt = RandomMatrix(41, 53, 15);
  const Matrix at = RandomMatrix(53, 37, 17);
  const SparseTensor sparse = RandomSparse(16, 3, 5000, 19);
  const SparseTensor fiber = FiberDenseSparse(24, 3, 60, 21);
  const Matrix u = RandomMatrix(24, 7, 23);

  struct Snapshot {
    Matrix mul, mul_ta, mul_tb, gram_sparse, gram_fiber;
    tensor::DenseTensor ttm;
  };
  auto snapshot = [&]() {
    auto gram_sparse = tensor::ModeGram(sparse, 0);
    auto gram_fiber = tensor::ModeGram(fiber, 0);
    auto ttm = tensor::SparseModeProduct(fiber, u, 0, /*transpose_u=*/true);
    EXPECT_TRUE(gram_sparse.ok() && gram_fiber.ok() && ttm.ok());
    return Snapshot{Multiply(a, b), MultiplyTransA(at, b),
                    MultiplyTransB(a, bt), *std::move(gram_sparse),
                    *std::move(gram_fiber), *std::move(ttm)};
  };

  util::SetFastKernelsEnabled(false);
  const Snapshot baseline = snapshot();

  for (int threads : {1, 2, 4}) {
    parallel::SetGlobalThreads(threads);

    // Knob off must be bit-identical at any thread count.
    util::SetFastKernelsEnabled(false);
    Snapshot off = snapshot();
    EXPECT_EQ(Matrix::MaxAbsDiff(off.mul, baseline.mul), 0.0);
    EXPECT_EQ(Matrix::MaxAbsDiff(off.mul_ta, baseline.mul_ta), 0.0);
    EXPECT_EQ(Matrix::MaxAbsDiff(off.mul_tb, baseline.mul_tb), 0.0);
    EXPECT_EQ(Matrix::MaxAbsDiff(off.gram_sparse, baseline.gram_sparse),
              0.0);
    EXPECT_EQ(Matrix::MaxAbsDiff(off.gram_fiber, baseline.gram_fiber),
              0.0);
    EXPECT_EQ(MaxAbsDiffTensors(off.ttm, baseline.ttm), 0.0);

    // Forced-scalar dispatch with the knob ON routes through the kernel
    // table's scalar entries: bit-identical to knob-off by construction.
    ForceIsa("scalar");
    util::SetFastKernelsEnabled(true);
    Snapshot forced = snapshot();
    EXPECT_EQ(Matrix::MaxAbsDiff(forced.mul, baseline.mul), 0.0);
    EXPECT_EQ(Matrix::MaxAbsDiff(forced.mul_ta, baseline.mul_ta), 0.0);
    EXPECT_EQ(Matrix::MaxAbsDiff(forced.mul_tb, baseline.mul_tb), 0.0);
    EXPECT_EQ(Matrix::MaxAbsDiff(forced.gram_sparse, baseline.gram_sparse),
              0.0);
    EXPECT_EQ(Matrix::MaxAbsDiff(forced.gram_fiber, baseline.gram_fiber),
              0.0);
    EXPECT_EQ(MaxAbsDiffTensors(forced.ttm, baseline.ttm), 0.0);

    // The vector ISA (when present) agrees to rounding and is itself
    // deterministic across thread counts (bit-compare vs threads=1).
    ::unsetenv("M2TD_FORCE_ISA");
    util::RefreshSimdIsaForTesting();
    if (util::ResolvedSimdIsa() != SimdIsa::kScalar) {
      util::SetFastKernelsEnabled(true);
      static Snapshot vec1 = snapshot();  // threads == 1 reference
      Snapshot vec = snapshot();
      EXPECT_EQ(Matrix::MaxAbsDiff(vec.mul, vec1.mul), 0.0);
      EXPECT_EQ(Matrix::MaxAbsDiff(vec.mul_ta, vec1.mul_ta), 0.0);
      EXPECT_EQ(Matrix::MaxAbsDiff(vec.mul_tb, vec1.mul_tb), 0.0);
      EXPECT_EQ(Matrix::MaxAbsDiff(vec.gram_sparse, vec1.gram_sparse),
                0.0);
      EXPECT_EQ(Matrix::MaxAbsDiff(vec.gram_fiber, vec1.gram_fiber), 0.0);
      EXPECT_EQ(MaxAbsDiffTensors(vec.ttm, vec1.ttm), 0.0);
      EXPECT_LT(Matrix::MaxAbsDiff(vec.mul, baseline.mul), 1e-10);
      EXPECT_LT(Matrix::MaxAbsDiff(vec.mul_ta, baseline.mul_ta), 1e-10);
      EXPECT_LT(Matrix::MaxAbsDiff(vec.mul_tb, baseline.mul_tb), 1e-10);
      EXPECT_LT(
          Matrix::MaxAbsDiff(vec.gram_sparse, baseline.gram_sparse),
          1e-9);
      EXPECT_LT(Matrix::MaxAbsDiff(vec.gram_fiber, baseline.gram_fiber),
                1e-9);
      EXPECT_LT(MaxAbsDiffTensors(vec.ttm, baseline.ttm), 1e-10);
    }
  }
}

}  // namespace
}  // namespace m2td::linalg
