#include <vector>

#include <gtest/gtest.h>

#include "tensor/matricize.h"
#include "tensor/streaming.h"
#include "tensor/tucker.h"
#include "util/random.h"

namespace m2td::tensor {
namespace {

TEST(StreamingGramTest, MatchesBatchGramEntryByEntry) {
  Rng rng(3);
  const std::vector<std::uint64_t> shape = {5, 4, 6};
  StreamingGram streaming(shape);
  SparseTensor batch(shape);
  std::vector<std::uint32_t> idx(3);
  for (int e = 0; e < 100; ++e) {
    for (std::size_t m = 0; m < 3; ++m) {
      idx[m] = static_cast<std::uint32_t>(rng.UniformInt(shape[m]));
    }
    const double v = rng.Gaussian();
    streaming.Add(idx, v);
    batch.AppendEntry(idx, v);
  }
  batch.SortAndCoalesce();  // duplicates sum, matching streaming semantics
  for (std::size_t mode = 0; mode < 3; ++mode) {
    auto expected = ModeGram(batch, mode);
    ASSERT_TRUE(expected.ok());
    EXPECT_LT(linalg::Matrix::MaxAbsDiff(streaming.Gram(mode), *expected),
              1e-9)
        << "mode " << mode;
  }
  EXPECT_EQ(streaming.NumUpdates(), 100u);
}

TEST(StreamingGramTest, RepeatedCoordinateAccumulates) {
  StreamingGram streaming({3, 3});
  streaming.Add({1, 1}, 2.0);
  streaming.Add({1, 1}, 3.0);
  // Tensor holds a single 5.0 entry: G(1,1) along both modes must be 25.
  EXPECT_DOUBLE_EQ(streaming.Gram(0)(1, 1), 25.0);
  EXPECT_DOUBLE_EQ(streaming.Gram(1)(1, 1), 25.0);
}

TEST(StreamingGramTest, CrossTermsWithinSharedColumn) {
  // Two entries in the same mode-0 matricization column (same mode-1
  // index) must produce the off-diagonal cross term.
  StreamingGram streaming({3, 3});
  streaming.Add({0, 2}, 2.0);
  streaming.Add({1, 2}, 5.0);
  EXPECT_DOUBLE_EQ(streaming.Gram(0)(0, 1), 10.0);
  EXPECT_DOUBLE_EQ(streaming.Gram(0)(1, 0), 10.0);
  // Along mode 1 they are in different columns: no cross term.
  EXPECT_DOUBLE_EQ(streaming.Gram(1)(2, 2), 4.0 + 25.0);
}

TEST(IncrementalDecomposerTest, MatchesBatchHosvdAtEveryCut) {
  Rng rng(7);
  const std::vector<std::uint64_t> shape = {4, 4, 4};
  IncrementalDecomposer incremental(shape);
  SparseTensor batch(shape);
  std::vector<std::uint32_t> idx(3);
  const std::vector<std::uint64_t> ranks = {2, 2, 2};
  for (int e = 1; e <= 60; ++e) {
    for (std::size_t m = 0; m < 3; ++m) {
      idx[m] = static_cast<std::uint32_t>(rng.UniformInt(shape[m]));
    }
    const double v = rng.Gaussian();
    incremental.Add(idx, v);
    batch.AppendEntry(idx, v);
    if (e % 20 != 0) continue;
    // Cut: compare against batch HOSVD of the same entries.
    SparseTensor coalesced = batch;
    coalesced.SortAndCoalesce();
    auto batch_tucker = HosvdSparse(coalesced, ranks);
    auto incremental_tucker = incremental.Decompose(ranks);
    ASSERT_TRUE(batch_tucker.ok() && incremental_tucker.ok());
    auto r1 = Reconstruct(*batch_tucker);
    auto r2 = Reconstruct(*incremental_tucker);
    ASSERT_TRUE(r1.ok() && r2.ok());
    EXPECT_NEAR(DenseTensor::FrobeniusDistance(*r1, *r2), 0.0, 1e-8)
        << "after " << e << " insertions";
  }
}

TEST(IncrementalDecomposerTest, SnapshotCoalesces) {
  IncrementalDecomposer incremental({3, 3});
  incremental.Add({0, 0}, 1.0);
  incremental.Add({0, 0}, 2.0);
  incremental.Add({1, 2}, 4.0);
  SparseTensor snapshot = incremental.Snapshot();
  EXPECT_EQ(snapshot.NumNonZeros(), 2u);
  EXPECT_DOUBLE_EQ(*snapshot.Find({0, 0}), 3.0);
}

TEST(IncrementalDecomposerTest, Validation) {
  IncrementalDecomposer incremental({3, 3});
  incremental.Add({0, 0}, 1.0);
  EXPECT_FALSE(incremental.CurrentFactor(5, 2).ok());
  EXPECT_FALSE(incremental.Decompose({2}).ok());
  EXPECT_FALSE(incremental.Decompose({0, 2}).ok());
  auto factor = incremental.CurrentFactor(0, 10);  // clamps
  ASSERT_TRUE(factor.ok());
  EXPECT_EQ(factor->cols(), 3u);
}

TEST(StreamingGramTest, EmptyStreamHasZeroGrams) {
  StreamingGram streaming({4, 4});
  EXPECT_EQ(streaming.Gram(0).FrobeniusNorm(), 0.0);
  EXPECT_EQ(streaming.NumUpdates(), 0u);
}

}  // namespace
}  // namespace m2td::tensor
