// Tridiagonal implicit-shift QL eigensolver (tred2/tql2 lineage):
// correctness on degenerate and ill-conditioned spectra, agreement with
// the cyclic-Jacobi oracle on the paper's three simulation systems, the
// process-default method switch, and the nonconvergence surfacing path.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "ensemble/sampling.h"
#include "ensemble/simulation_model.h"
#include "linalg/eigen.h"
#include "linalg/matrix.h"
#include "obs/metrics.h"
#include "tensor/matricize.h"
#include "tensor/sparse_tensor.h"
#include "util/random.h"

namespace m2td::linalg {
namespace {

EigenOptions QlOptions() {
  EigenOptions options;
  options.method = EigenMethod::kTridiagonalQL;
  return options;
}

Matrix RandomSymmetric(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) a(i, j) = a(j, i) = rng.Gaussian();
  }
  return a;
}

// ||V diag(w) V^T - A||_max: the full-decomposition residual.
double ReconstructionError(const Matrix& a, const SymmetricEigenResult& eig) {
  const std::size_t n = a.rows();
  Matrix vw = eig.eigenvectors;  // columns scaled by eigenvalues
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) vw(i, j) *= eig.eigenvalues[j];
  }
  return Matrix::MaxAbsDiff(MultiplyTransB(vw, eig.eigenvectors), a);
}

double OrthonormalityError(const SymmetricEigenResult& eig) {
  const Matrix& v = eig.eigenvectors;
  return Matrix::MaxAbsDiff(MultiplyTransA(v, v),
                            Matrix::Identity(v.cols()));
}

TEST(EigenQlTest, MethodNamesRoundTrip) {
  EXPECT_STREQ(EigenMethodName(EigenMethod::kJacobi), "jacobi");
  EXPECT_STREQ(EigenMethodName(EigenMethod::kTridiagonalQL),
               "tridiagonal_ql");
  EigenMethod method = EigenMethod::kJacobi;
  EXPECT_TRUE(ParseEigenMethod("tridiagonal_ql", &method));
  EXPECT_EQ(method, EigenMethod::kTridiagonalQL);
  EXPECT_TRUE(ParseEigenMethod("jacobi", &method));
  EXPECT_EQ(method, EigenMethod::kJacobi);
  method = EigenMethod::kTridiagonalQL;
  EXPECT_FALSE(ParseEigenMethod("householder", &method));
  EXPECT_EQ(method, EigenMethod::kTridiagonalQL);  // untouched on failure
}

TEST(EigenQlTest, OneByOne) {
  Matrix a(1, 1);
  a(0, 0) = -7.5;
  auto eig = SymmetricEigen(a, QlOptions());
  ASSERT_TRUE(eig.ok());
  EXPECT_TRUE(eig->converged);
  EXPECT_DOUBLE_EQ(eig->eigenvalues[0], -7.5);
  EXPECT_DOUBLE_EQ(std::fabs(eig->eigenvectors(0, 0)), 1.0);
}

TEST(EigenQlTest, TwoByTwoAgainstClosedForm) {
  Matrix a(2, 2);
  a(0, 0) = 2.0;
  a(1, 1) = 3.0;
  a(0, 1) = a(1, 0) = 4.0;
  auto eig = SymmetricEigen(a, QlOptions());
  ASSERT_TRUE(eig.ok());
  EXPECT_TRUE(eig->converged);
  // Eigenvalues of [[2,4],[4,3]]: (5 +/- sqrt(65)) / 2, descending.
  const double root = std::sqrt(65.0);
  EXPECT_NEAR(eig->eigenvalues[0], (5.0 + root) / 2.0, 1e-12);
  EXPECT_NEAR(eig->eigenvalues[1], (5.0 - root) / 2.0, 1e-12);
  EXPECT_LT(ReconstructionError(a, *eig), 1e-12);
}

TEST(EigenQlTest, RepeatedEigenvaluesStayOrthonormal) {
  Matrix a = Matrix::Identity(5);
  a.Scale(3.25);
  auto eig = SymmetricEigen(a, QlOptions());
  ASSERT_TRUE(eig.ok());
  EXPECT_TRUE(eig->converged);
  for (double w : eig->eigenvalues) EXPECT_NEAR(w, 3.25, 1e-12);
  EXPECT_LT(OrthonormalityError(*eig), 1e-10);
}

TEST(EigenQlTest, ClusteredEigenvaluesResolve) {
  // Nearly-degenerate pair 1 and 1+1e-10 plus a separated eigenvalue,
  // hidden behind a random orthogonal similarity (via Jacobi's
  // eigenvectors of a random symmetric matrix).
  auto basis = SymmetricEigen(RandomSymmetric(3, 17));
  ASSERT_TRUE(basis.ok());
  const Matrix& q = basis->eigenvectors;
  Matrix d(3, 3);
  d(0, 0) = 1.0;
  d(1, 1) = 1.0 + 1e-10;
  d(2, 2) = 5.0;
  Matrix a = Multiply(q, MultiplyTransB(d, q));
  // Re-symmetrize exactly (fp products break symmetry at ~1e-17).
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = i + 1; j < 3; ++j) {
      const double mean = 0.5 * (a(i, j) + a(j, i));
      a(i, j) = a(j, i) = mean;
    }
  }
  auto eig = SymmetricEigen(a, QlOptions());
  ASSERT_TRUE(eig.ok());
  EXPECT_TRUE(eig->converged);
  EXPECT_NEAR(eig->eigenvalues[0], 5.0, 1e-9);
  EXPECT_NEAR(eig->eigenvalues[1], 1.0, 1e-9);
  EXPECT_NEAR(eig->eigenvalues[2], 1.0, 1e-9);
  EXPECT_LT(OrthonormalityError(*eig), 1e-10);
  EXPECT_LT(ReconstructionError(a, *eig), 1e-10);
}

TEST(EigenQlTest, GradedNearSingularGram) {
  // Gram of a matrix with singular values spanning 12 decades: the small
  // eigenvalues underflow toward zero relative to the largest, the
  // classic tql2 stress case for the deflation criterion.
  Matrix b(4, 4);
  b(0, 0) = 1.0;
  b(1, 1) = 1e-4;
  b(2, 2) = 1e-8;
  b(3, 3) = 1e-12;
  auto basis = SymmetricEigen(RandomSymmetric(4, 23));
  ASSERT_TRUE(basis.ok());
  Matrix rotated = Multiply(basis->eigenvectors, b);
  Matrix gram = MultiplyTransB(rotated, rotated);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = i + 1; j < 4; ++j) {
      const double mean = 0.5 * (gram(i, j) + gram(j, i));
      gram(i, j) = gram(j, i) = mean;
    }
  }
  auto eig = SymmetricEigen(gram, QlOptions());
  ASSERT_TRUE(eig.ok());
  EXPECT_TRUE(eig->converged);
  EXPECT_NEAR(eig->eigenvalues[0], 1.0, 1e-10);
  EXPECT_NEAR(eig->eigenvalues[1], 1e-8, 1e-12);
  // The two smallest (1e-16, 1e-24) are below double precision relative
  // to the largest: all we require is no spurious negative mass beyond
  // roundoff and a valid decomposition.
  EXPECT_GT(eig->eigenvalues[3], -1e-12);
  EXPECT_LT(OrthonormalityError(*eig), 1e-10);
  EXPECT_LT(ReconstructionError(gram, *eig), 1e-10);
}

TEST(EigenQlTest, AgreesWithJacobiOnRandomMatrices) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    for (std::size_t n : {std::size_t{8}, std::size_t{33}}) {
      const Matrix a = RandomSymmetric(n, seed);
      auto jac = SymmetricEigen(a);
      auto ql = SymmetricEigen(a, QlOptions());
      ASSERT_TRUE(jac.ok() && ql.ok());
      EXPECT_TRUE(ql->converged);
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_NEAR(jac->eigenvalues[i], ql->eigenvalues[i], 1e-9 * n);
      }
      EXPECT_LT(ReconstructionError(a, *ql), 1e-10 * n);
    }
  }
}

TEST(EigenQlTest, AgreesWithJacobiOnPaperSystemGrams) {
  // The Gram matrices the pipeline actually eigendecomposes: mode Grams
  // of small conventional ensembles of the paper's three systems.
  ensemble::ModelOptions options;
  options.parameter_resolution = 4;
  options.time_resolution = 4;
  options.dt = 0.01;
  options.record_every = 5;
  std::vector<Result<std::unique_ptr<ensemble::DynamicalSystemModel>>>
      models;
  models.push_back(ensemble::MakeDoublePendulumModel(options));
  models.push_back(ensemble::MakeTriplePendulumModel(options));
  models.push_back(ensemble::MakeLorenzModel(options));
  for (auto& model : models) {
    ASSERT_TRUE(model.ok()) << model.status();
    Rng rng(7);
    auto x = ensemble::BuildConventionalEnsemble(
        model->get(), ensemble::ConventionalScheme::kRandom, /*budget=*/40,
        &rng);
    ASSERT_TRUE(x.ok()) << x.status();
    for (std::size_t mode = 0; mode < x->num_modes(); ++mode) {
      auto gram = tensor::ModeGram(*x, mode);
      ASSERT_TRUE(gram.ok());
      auto jac = SymmetricEigen(*gram);
      auto ql = SymmetricEigen(*gram, QlOptions());
      ASSERT_TRUE(jac.ok() && ql.ok());
      EXPECT_TRUE(ql->converged);
      const double scale =
          std::max(1.0, std::fabs(jac->eigenvalues.front()));
      for (std::size_t i = 0; i < jac->eigenvalues.size(); ++i) {
        EXPECT_NEAR(jac->eigenvalues[i] / scale,
                    ql->eigenvalues[i] / scale, 1e-10);
      }
      EXPECT_LT(ReconstructionError(*gram, *ql), 1e-9 * scale);
    }
  }
}

TEST(EigenQlTest, LeadingEigenvectorsSpanTopSubspace) {
  const Matrix a = RandomSymmetric(12, 31);
  const Matrix gram = MultiplyTransB(a, a);  // PSD with distinct spectrum
  auto jac = LeadingEigenvectors(gram, 3);
  auto ql = LeadingEigenvectors(gram, 3, QlOptions());
  ASSERT_TRUE(jac.ok() && ql.ok());
  // Columns may differ by sign; the projectors onto the span must match.
  const Matrix pj = MultiplyTransB(*jac, *jac);
  const Matrix pq = MultiplyTransB(*ql, *ql);
  EXPECT_LT(Matrix::MaxAbsDiff(pj, pq), 1e-8);
}

TEST(EigenQlTest, ProcessDefaultMethodSwitch) {
  const bool metrics_was_enabled = obs::MetricsEnabled();
  obs::SetMetricsEnabled(true);
  obs::Counter& solves = obs::GetCounter("linalg.eigen.ql_solves");
  const Matrix a = RandomSymmetric(6, 41);

  const std::uint64_t before = solves.value();
  ASSERT_TRUE(SymmetricEigen(a).ok());  // default default: Jacobi
  EXPECT_EQ(solves.value(), before);

  SetDefaultEigenMethod(EigenMethod::kTridiagonalQL);
  EXPECT_EQ(DefaultEigenMethod(), EigenMethod::kTridiagonalQL);
  ASSERT_TRUE(SymmetricEigen(a).ok());  // picks up the process default
  EXPECT_EQ(solves.value(), before + 1);

  // An explicit per-call method overrides the process default.
  EigenOptions jacobi;
  jacobi.method = EigenMethod::kJacobi;
  ASSERT_TRUE(SymmetricEigen(a, jacobi).ok());
  EXPECT_EQ(solves.value(), before + 1);

  SetDefaultEigenMethod(EigenMethod::kJacobi);
  EXPECT_EQ(DefaultEigenMethod(), EigenMethod::kJacobi);
  obs::SetMetricsEnabled(metrics_was_enabled);
}

TEST(EigenQlTest, NonconvergenceIsSurfacedNotFatal) {
  const bool metrics_was_enabled = obs::MetricsEnabled();
  obs::SetMetricsEnabled(true);
  obs::Counter& nonconverged = obs::GetCounter("linalg.eigen.nonconverged");
  const std::uint64_t before = nonconverged.value();

  EigenOptions starved = QlOptions();
  starved.max_ql_iterations = 1;  // far below what an 8x8 needs
  const Matrix a = RandomSymmetric(8, 47);
  auto eig = SymmetricEigen(a, starved);
  ASSERT_TRUE(eig.ok());  // best-effort result, not an error status
  EXPECT_FALSE(eig->converged);
  EXPECT_EQ(nonconverged.value(), before + 1);
  // The partial result is still a valid orthogonal transform of A.
  EXPECT_LT(OrthonormalityError(*eig), 1e-10);
  EXPECT_EQ(eig->eigenvalues.size(), 8u);

  // With the classical budget the same matrix converges.
  auto full = SymmetricEigen(a, QlOptions());
  ASSERT_TRUE(full.ok());
  EXPECT_TRUE(full->converged);
  obs::SetMetricsEnabled(metrics_was_enabled);
}

}  // namespace
}  // namespace m2td::linalg
