// Tests for the extended decomposition suite: HOOI (Tucker-ALS), CP-ALS
// with sparse MTTKRP, and the Kronecker/Khatri-Rao/randomized-SVD support
// kernels.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "linalg/kron.h"
#include "linalg/rsvd.h"
#include "tensor/cp.h"
#include "tensor/hooi.h"
#include "tensor/matricize.h"
#include "tensor/ttm.h"
#include "tensor/tucker.h"
#include "util/random.h"

namespace m2td {
namespace {

using linalg::Matrix;
using tensor::DenseTensor;
using tensor::SparseTensor;

Matrix RandomMatrix(std::size_t rows, std::size_t cols, Rng* rng) {
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) m(i, j) = rng->Gaussian();
  }
  return m;
}

SparseTensor RandomSparse(const std::vector<std::uint64_t>& shape,
                          std::uint64_t nnz, Rng* rng) {
  SparseTensor x(shape);
  std::vector<std::uint32_t> idx(shape.size());
  for (std::uint64_t e = 0; e < nnz; ++e) {
    for (std::size_t m = 0; m < shape.size(); ++m) {
      idx[m] = static_cast<std::uint32_t>(rng->UniformInt(shape[m]));
    }
    x.AppendEntry(idx, rng->Gaussian());
  }
  x.SortAndCoalesce();
  return x;
}

double Fit(const DenseTensor& x, const DenseTensor& approx) {
  const double norm = x.FrobeniusNorm();
  if (norm == 0.0) return 1.0;
  return 1.0 - DenseTensor::FrobeniusDistance(x, approx) / norm;
}

// ------------------------------------------------------------------- Kron

TEST(KronTest, KroneckerKnownValues) {
  Matrix a(2, 2, {1, 2, 3, 4});
  Matrix b(2, 2, {0, 1, 1, 0});
  Matrix k = linalg::KroneckerProduct(a, b);
  ASSERT_EQ(k.rows(), 4u);
  ASSERT_EQ(k.cols(), 4u);
  EXPECT_EQ(k(0, 1), 1.0);   // a(0,0)*b(0,1)
  EXPECT_EQ(k(1, 0), 1.0);   // a(0,0)*b(1,0)
  EXPECT_EQ(k(3, 2), 4.0);   // a(1,1)*b(1,0)
  EXPECT_EQ(k(2, 2), 0.0);   // a(1,1)*b(0,0)
}

TEST(KronTest, KhatriRaoIsColumnwiseKronecker) {
  Rng rng(1);
  Matrix a = RandomMatrix(3, 4, &rng);
  Matrix b = RandomMatrix(2, 4, &rng);
  auto kr = linalg::KhatriRaoProduct(a, b);
  ASSERT_TRUE(kr.ok());
  ASSERT_EQ(kr->rows(), 6u);
  ASSERT_EQ(kr->cols(), 4u);
  for (std::size_t j = 0; j < 4; ++j) {
    for (std::size_t ia = 0; ia < 3; ++ia) {
      for (std::size_t ib = 0; ib < 2; ++ib) {
        EXPECT_DOUBLE_EQ((*kr)(ia * 2 + ib, j), a(ia, j) * b(ib, j));
      }
    }
  }
}

TEST(KronTest, KhatriRaoColumnMismatchRejected) {
  EXPECT_FALSE(linalg::KhatriRaoProduct(Matrix(2, 3), Matrix(2, 4)).ok());
}

TEST(KronTest, HadamardProduct) {
  Matrix a(2, 2, {1, 2, 3, 4});
  Matrix b(2, 2, {5, 6, 7, 8});
  Matrix h = linalg::HadamardProduct(a, b);
  EXPECT_EQ(h(0, 0), 5.0);
  EXPECT_EQ(h(1, 1), 32.0);
}

TEST(KronTest, SymmetricPseudoInverse) {
  // Rank-deficient PSD matrix: pinv must satisfy A pinv(A) A == A.
  Matrix u(3, 1, {1, 2, 2});
  Matrix a = linalg::MultiplyTransB(u, u);  // rank 1
  auto pinv = linalg::SymmetricPseudoInverse(a);
  ASSERT_TRUE(pinv.ok());
  Matrix apa = linalg::Multiply(linalg::Multiply(a, *pinv), a);
  EXPECT_LT(Matrix::MaxAbsDiff(apa, a), 1e-9);
  // Full-rank case: pinv == inverse.
  Matrix b(2, 2, {2, 0, 0, 4});
  auto binv = linalg::SymmetricPseudoInverse(b);
  ASSERT_TRUE(binv.ok());
  EXPECT_NEAR((*binv)(0, 0), 0.5, 1e-12);
  EXPECT_NEAR((*binv)(1, 1), 0.25, 1e-12);
}

// ------------------------------------------------------------------- RSVD

TEST(RsvdTest, RecoversLowRankMatrixExactly) {
  Rng rng(5);
  // A = L R with inner dimension 3: exact rank 3.
  Matrix l = RandomMatrix(20, 3, &rng);
  Matrix r = RandomMatrix(3, 30, &rng);
  Matrix a = linalg::Multiply(l, r);
  auto svd = linalg::RandomizedSvd(a, 3);
  ASSERT_TRUE(svd.ok());
  Matrix us = svd->u;
  for (std::size_t j = 0; j < 3; ++j) {
    for (std::size_t i = 0; i < us.rows(); ++i) {
      us(i, j) *= svd->singular_values[j];
    }
  }
  Matrix approx = linalg::MultiplyTransB(us, svd->v);
  EXPECT_LT(Matrix::MaxAbsDiff(a, approx), 1e-8);
}

TEST(RsvdTest, SingularValuesMatchExactSvd) {
  Rng rng(9);
  Matrix a = RandomMatrix(15, 40, &rng);
  auto exact = linalg::TruncatedSvd(a, 5);
  auto randomized = linalg::RandomizedSvd(a, 5);
  ASSERT_TRUE(exact.ok() && randomized.ok());
  for (std::size_t j = 0; j < 5; ++j) {
    EXPECT_NEAR(randomized->singular_values[j], exact->singular_values[j],
                0.05 * exact->singular_values[0])
        << "sigma_" << j;
  }
}

TEST(RsvdTest, Validation) {
  EXPECT_FALSE(linalg::RandomizedSvd(Matrix(), 2).ok());
  EXPECT_FALSE(linalg::RandomizedSvd(Matrix(3, 3), 0).ok());
}

// ------------------------------------------------------------------- HOOI

TEST(HooiTest, FitNeverBelowHosvd) {
  Rng rng(11);
  for (int trial = 0; trial < 3; ++trial) {
    SparseTensor x = RandomSparse({6, 6, 6}, 80, &rng);
    const std::vector<std::uint64_t> ranks = {3, 3, 3};
    auto hosvd = tensor::HosvdSparse(x, ranks);
    ASSERT_TRUE(hosvd.ok());
    tensor::HooiInfo info;
    auto hooi = tensor::HooiSparse(x, ranks, {}, &info);
    ASSERT_TRUE(hooi.ok());

    const DenseTensor dense = x.ToDense();
    auto r_hosvd = tensor::Reconstruct(*hosvd);
    auto r_hooi = tensor::Reconstruct(*hooi);
    ASSERT_TRUE(r_hosvd.ok() && r_hooi.ok());
    EXPECT_GE(Fit(dense, *r_hooi), Fit(dense, *r_hosvd) - 1e-9)
        << "trial " << trial;
    EXPECT_GE(info.iterations, 1);
  }
}

TEST(HooiTest, ExactLowRankTensorConvergesToPerfectFit) {
  Rng rng(13);
  DenseTensor core({2, 2, 2});
  for (std::uint64_t i = 0; i < core.NumElements(); ++i) {
    core.flat(i) = rng.Gaussian();
  }
  std::vector<Matrix> factors;
  for (int m = 0; m < 3; ++m) factors.push_back(RandomMatrix(7, 2, &rng));
  auto x = tensor::ExpandCore(core, factors);
  ASSERT_TRUE(x.ok());
  tensor::HooiInfo info;
  auto hooi = tensor::HooiDense(*x, {2, 2, 2}, {}, &info);
  ASSERT_TRUE(hooi.ok());
  auto reconstructed = tensor::Reconstruct(*hooi);
  ASSERT_TRUE(reconstructed.ok());
  EXPECT_NEAR(Fit(*x, *reconstructed), 1.0, 1e-9);
  EXPECT_NEAR(info.fit, 1.0, 1e-9);
}

TEST(HooiTest, ReportsConvergence) {
  Rng rng(17);
  SparseTensor x = RandomSparse({5, 5, 5}, 40, &rng);
  tensor::HooiInfo info;
  tensor::HooiOptions options;
  options.max_iterations = 50;
  auto hooi = tensor::HooiSparse(x, {2, 2, 2}, options, &info);
  ASSERT_TRUE(hooi.ok());
  EXPECT_TRUE(info.converged);
  EXPECT_LT(info.iterations, 50);
}

TEST(HooiTest, Validation) {
  SparseTensor x({3, 3});
  x.SortAndCoalesce();
  EXPECT_FALSE(tensor::HooiSparse(x, {2}).ok());
  EXPECT_FALSE(tensor::HooiSparse(x, {0, 2}).ok());
  tensor::HooiOptions bad;
  bad.max_iterations = 0;
  EXPECT_FALSE(tensor::HooiSparse(x, {2, 2}, bad).ok());
  SparseTensor uncoalesced({3, 3});
  uncoalesced.AppendEntry({0, 0}, 1.0);
  EXPECT_FALSE(tensor::HooiSparse(uncoalesced, {2, 2}).ok());
}

// --------------------------------------------------------------------- CP

TEST(CpTest, MttkrpMatchesKhatriRaoOracle) {
  Rng rng(19);
  SparseTensor x = RandomSparse({4, 3, 5}, 30, &rng);
  std::vector<Matrix> factors = {RandomMatrix(4, 2, &rng),
                                 RandomMatrix(3, 2, &rng),
                                 RandomMatrix(5, 2, &rng)};
  for (std::size_t mode = 0; mode < 3; ++mode) {
    auto fast = tensor::Mttkrp(x, factors, mode);
    ASSERT_TRUE(fast.ok());
    // Oracle: X_(mode) * KhatriRao of the other factors in increasing mode
    // order (first listed mode is the slow index, matching
    // MatricizationColumn).
    auto unfolded = tensor::Matricize(x.ToDense(), mode);
    ASSERT_TRUE(unfolded.ok());
    std::vector<const Matrix*> others;
    for (std::size_t m = 0; m < 3; ++m) {
      if (m != mode) others.push_back(&factors[m]);
    }
    auto kr = linalg::KhatriRaoProduct(*others[0], *others[1]);
    ASSERT_TRUE(kr.ok());
    Matrix oracle = linalg::Multiply(*unfolded, *kr);
    EXPECT_LT(Matrix::MaxAbsDiff(*fast, oracle), 1e-10) << "mode " << mode;
  }
}

TEST(CpTest, RankOneTensorRecoveredExactly) {
  // X = outer(u, v, w): CP at rank 1 must reach fit ~1.
  Rng rng(23);
  std::vector<double> u(5), v(4), w(6);
  for (double& e : u) e = rng.UniformDouble(0.5, 2.0);
  for (double& e : v) e = rng.UniformDouble(0.5, 2.0);
  for (double& e : w) e = rng.UniformDouble(0.5, 2.0);
  SparseTensor x({5, 4, 6});
  for (std::uint32_t i = 0; i < 5; ++i) {
    for (std::uint32_t j = 0; j < 4; ++j) {
      for (std::uint32_t l = 0; l < 6; ++l) {
        x.AppendEntry({i, j, l}, u[i] * v[j] * w[l]);
      }
    }
  }
  x.SortAndCoalesce();
  tensor::CpInfo info;
  auto cp = tensor::CpAlsSparse(x, 1, {}, &info);
  ASSERT_TRUE(cp.ok());
  EXPECT_NEAR(info.fit, 1.0, 1e-6);
  auto reconstructed = tensor::CpReconstruct(*cp, x.shape());
  ASSERT_TRUE(reconstructed.ok());
  EXPECT_NEAR(Fit(x.ToDense(), *reconstructed), 1.0, 1e-6);
}

TEST(CpTest, FitImprovesWithRank) {
  Rng rng(29);
  SparseTensor x = RandomSparse({6, 6, 6}, 100, &rng);
  double last_fit = -2.0;
  for (std::uint64_t rank : {1, 3, 6}) {
    tensor::CpInfo info;
    tensor::CpOptions options;
    options.max_iterations = 60;
    auto cp = tensor::CpAlsSparse(x, rank, options, &info);
    ASSERT_TRUE(cp.ok());
    EXPECT_GE(info.fit, last_fit - 0.02) << "rank " << rank;
    last_fit = info.fit;
  }
}

TEST(CpTest, FactorsHaveUnitColumnsAndWeights) {
  Rng rng(31);
  SparseTensor x = RandomSparse({5, 5, 5}, 60, &rng);
  auto cp = tensor::CpAlsSparse(x, 3);
  ASSERT_TRUE(cp.ok());
  ASSERT_EQ(cp->Rank(), 3u);
  ASSERT_EQ(cp->factors.size(), 3u);
  // The last-updated mode's columns are unit norm by construction.
  for (const Matrix& factor : cp->factors) {
    EXPECT_EQ(factor.cols(), 3u);
  }
  for (std::size_t j = 0; j < 3; ++j) {
    double norm = 0.0;
    const Matrix& last = cp->factors.back();
    for (std::size_t i = 0; i < last.rows(); ++i) {
      norm += last(i, j) * last(i, j);
    }
    if (cp->weights[j] > 0.0) {
      EXPECT_NEAR(std::sqrt(norm), 1.0, 1e-9);
    }
  }
}

TEST(CpTest, Validation) {
  SparseTensor x({3, 3});
  x.SortAndCoalesce();
  EXPECT_FALSE(tensor::CpAlsSparse(x, 0).ok());
  SparseTensor uncoalesced({3, 3});
  uncoalesced.AppendEntry({0, 0}, 1.0);
  EXPECT_FALSE(tensor::CpAlsSparse(uncoalesced, 2).ok());
  // Mttkrp shape validation.
  std::vector<Matrix> wrong = {Matrix(3, 2), Matrix(4, 2)};
  EXPECT_FALSE(tensor::Mttkrp(x, wrong, 0).ok());
  // CpReconstruct shape validation.
  tensor::CpDecomposition cp;
  cp.factors = {Matrix(3, 1), Matrix(3, 1)};
  cp.weights = {1.0};
  EXPECT_FALSE(tensor::CpReconstruct(cp, {3, 4}).ok());
  EXPECT_TRUE(tensor::CpReconstruct(cp, {3, 3}).ok());
}

}  // namespace
}  // namespace m2td
