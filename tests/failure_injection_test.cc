// Failure-injection tests: the library must degrade with clear Status
// errors (never crashes or silent corruption) when the environment
// misbehaves — missing/corrupt/truncated files, deleted chunk blobs,
// reducers that produce nothing, degenerate numeric inputs.

#include <atomic>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <unistd.h>
#include <vector>

#include <gtest/gtest.h>

#include "core/dm2td.h"
#include "core/m2td.h"
#include "core/pf_partition.h"
#include "ensemble/simulation_model.h"
#include "io/chunk_store.h"
#include "io/out_of_core.h"
#include "io/tensor_io.h"
#include "linalg/eigen.h"
#include "linalg/svd.h"
#include "mapreduce/engine.h"
#include "robust/retry.h"
#include "tensor/matricize.h"
#include "tensor/tucker.h"
#include "util/random.h"

namespace m2td {
namespace {

class FailureInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("m2td_fail_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) const {
    return (dir_ / name).string();
  }

  std::filesystem::path dir_;
};

tensor::SparseTensor SmallTensor() {
  tensor::SparseTensor x({4, 4});
  Rng rng(1);
  std::vector<std::uint32_t> idx(2);
  for (int e = 0; e < 10; ++e) {
    idx[0] = static_cast<std::uint32_t>(rng.UniformInt(4));
    idx[1] = static_cast<std::uint32_t>(rng.UniformInt(4));
    x.AppendEntry(idx, rng.Gaussian());
  }
  x.SortAndCoalesce();
  return x;
}

TEST_F(FailureInjectionTest, DeletedChunkBlobSurfacesIOError) {
  auto store = io::ChunkStore::Create(Path("store"), {4, 4}, {2, 2});
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(store->Write(SmallTensor()).ok());
  // Remove one chunk blob behind the store's back.
  bool removed = false;
  for (const auto& entry :
       std::filesystem::directory_iterator(Path("store"))) {
    if (entry.path().filename().string().rfind("chunk_", 0) == 0) {
      std::filesystem::remove(entry.path());
      removed = true;
      break;
    }
  }
  ASSERT_TRUE(removed);
  auto all = store->ReadAll();
  ASSERT_FALSE(all.ok());
  EXPECT_EQ(all.status().code(), StatusCode::kIOError);
  // Out-of-core HOSVD propagates the same failure instead of producing a
  // silently wrong decomposition.
  EXPECT_FALSE(io::HosvdFromStore(*store, {2, 2}).ok());
}

TEST_F(FailureInjectionTest, TruncatedBinaryBlobRejected) {
  const std::string path = Path("t.bin");
  ASSERT_TRUE(io::SaveSparseBinary(SmallTensor(), path).ok());
  // Truncate the value array.
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size - 8);
  auto loaded = io::LoadSparseBinary(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
}

TEST_F(FailureInjectionTest, BinaryBlobWithGiantNnzRejected) {
  // A nnz count far beyond the actual payload must not drive a huge
  // allocation into a crash; the loader fails on the truncated read.
  const std::string path = Path("evil.bin");
  {
    std::ofstream out(path, std::ios::binary);
    const std::uint64_t magic = 0x4d32544453503031ULL;
    const std::uint64_t modes = 2, d = 4, nnz = 1ULL << 20;
    for (std::uint64_t v : {magic, modes, d, d, nnz}) {
      out.write(reinterpret_cast<const char*>(&v), sizeof(v));
    }
  }
  auto loaded = io::LoadSparseBinary(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
}

TEST_F(FailureInjectionTest, SaveToUnwritableLocationFails) {
  EXPECT_EQ(io::SaveSparseText(SmallTensor(), Path("no/such/dir/t.txt"))
                .code(),
            StatusCode::kIOError);
  EXPECT_EQ(io::SaveSparseBinary(SmallTensor(), Path("no/such/dir/t.bin"))
                .code(),
            StatusCode::kIOError);
}

TEST_F(FailureInjectionTest, ManifestWithOutOfRangeChunkIdTolerated) {
  auto store = io::ChunkStore::Create(Path("store"), {4, 4}, {2, 2});
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(store->Write(SmallTensor()).ok());
  // Reopen and read a never-written chunk: must be empty, not an error.
  auto reopened = io::ChunkStore::Open(Path("store"));
  ASSERT_TRUE(reopened.ok());
  auto empty = reopened->ReadChunk({1, 1});
  ASSERT_TRUE(empty.ok());
}

// A committed shuffle chunk that rots on disk mid-run must surface as
// DataLoss naming the producing map task, and the coordinator must
// re-execute that producer — not spin retrying the poisoned blob — and
// still finish bit-identical to the thread backend.
TEST_F(FailureInjectionTest, CorruptedShuffleChunkTriggersMapReexecution) {
  ensemble::ModelOptions model_options;
  model_options.parameter_resolution = 4;
  model_options.time_resolution = 4;
  model_options.dt = 0.01;
  model_options.record_every = 5;
  auto model = ensemble::MakeDoublePendulumModel(model_options);
  ASSERT_TRUE(model.ok());
  auto partition = core::MakePartition(5, {0});
  ASSERT_TRUE(partition.ok());
  auto subs = core::BuildSubEnsembles(model->get(), *partition, {});
  ASSERT_TRUE(subs.ok());

  core::DM2tdOptions options;
  options.ranks = std::vector<std::uint64_t>(5, 2);
  auto thread_result = core::DM2tdDecompose(
      *subs, *partition, (*model)->space().Shape(), options);
  ASSERT_TRUE(thread_result.ok()) << thread_result.status();

  options.backend = core::DistBackend::kProcess;
  options.num_workers = 2;
  options.process.worker_binary = M2TD_WORKER_BIN;
  options.process.job_dir = Path("job");
  bool corrupted = false;
  options.process.event_hook = [&](const core::DistEvent& event) {
    // After every p2map task committed, rot one byte of one committed
    // shard blob: the reducer reading it must hit a CRC mismatch.
    if (corrupted || event.kind != "stage_done" || event.phase != "p2map") {
      return;
    }
    for (const auto& entry : std::filesystem::recursive_directory_iterator(
             Path("job") + "/p2map")) {
      if (!entry.is_regular_file()) continue;
      const std::string leaf = entry.path().filename().string();
      if (leaf.rfind("shard", 0) != 0) continue;
      std::fstream file(entry.path(),
                        std::ios::in | std::ios::out | std::ios::binary);
      ASSERT_TRUE(file.is_open());
      file.seekg(6);
      const char byte = static_cast<char>(file.get());
      file.seekp(6);
      file.put(static_cast<char>(byte ^ 0xff));
      corrupted = true;
      return;
    }
  };
  auto result = core::DM2tdDecompose(*subs, *partition,
                                     (*model)->space().Shape(), options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(corrupted);
  EXPECT_GE(result->dist.map_reexecutions, 1u);
  EXPECT_EQ(result->dist.worker_deaths, 0u);

  // Recovery must be invisible in the output.
  EXPECT_EQ(result->join_nnz, thread_result->join_nnz);
  EXPECT_EQ(result->tucker.core.data(), thread_result->tucker.core.data());
}

TEST(MapReduceFailureTest, ReducerEmittingNothingIsFine) {
  std::vector<int> inputs = {1, 2, 3};
  mapreduce::JobSpec<int, int, int, int> spec;
  spec.num_workers = 2;
  spec.mapper = [](const int& v, mapreduce::Emitter<int, int>* e) {
    e->Emit(v, v);
  };
  spec.reducer = [](const int&, std::vector<int>&, std::vector<int>*) {
    // Drops everything.
  };
  auto result = mapreduce::RunJob(spec, inputs);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
}

TEST(MapReduceFailureTest, MapperEmittingNothingIsFine) {
  std::vector<int> inputs = {1, 2, 3};
  mapreduce::JobSpec<int, int, int, int> spec;
  spec.num_workers = 3;
  spec.mapper = [](const int&, mapreduce::Emitter<int, int>*) {};
  spec.reducer = [](const int&, std::vector<int>& values,
                    std::vector<int>* out) {
    out->push_back(static_cast<int>(values.size()));
  };
  mapreduce::JobStats stats;
  auto result = mapreduce::RunJob(spec, inputs, &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
  EXPECT_EQ(stats.intermediate_pairs, 0u);
}

TEST(MapReduceFailureTest, ThrowingMapperSurfacesInternal) {
  std::vector<int> inputs = {1, 2, 3};
  mapreduce::JobSpec<int, int, int, int> spec;
  spec.num_workers = 2;
  spec.mapper = [](const int& v, mapreduce::Emitter<int, int>*) {
    if (v == 2) throw std::runtime_error("mapper exploded");
  };
  spec.reducer = [](const int&, std::vector<int>&, std::vector<int>*) {};
  auto result = mapreduce::RunJob(spec, inputs);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
  EXPECT_NE(result.status().message().find("mapper exploded"),
            std::string::npos);
}

TEST(MapReduceFailureTest, ThrowingReducerSurfacesInternal) {
  std::vector<int> inputs = {1, 2, 3};
  mapreduce::JobSpec<int, int, int, int> spec;
  spec.num_workers = 2;
  spec.mapper = [](const int& v, mapreduce::Emitter<int, int>* e) {
    e->Emit(v, v);
  };
  spec.reducer = [](const int&, std::vector<int>&, std::vector<int>*) {
    throw std::runtime_error("reducer exploded");
  };
  auto result = mapreduce::RunJob(spec, inputs);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
}

TEST(MapReduceFailureTest, ThrowingMapperHealedByTaskRetry) {
  std::vector<int> inputs = {1, 2, 3, 4};
  std::atomic<int> boom{1};  // first map attempt that sees item 1 throws
  mapreduce::JobSpec<int, int, int, int> spec;
  spec.num_workers = 1;
  spec.retry.max_retries = 2;
  spec.mapper = [&boom](const int& v, mapreduce::Emitter<int, int>* e) {
    if (v == 1 && boom.fetch_sub(1) > 0) {
      throw std::runtime_error("transient mapper crash");
    }
    e->Emit(0, v);
  };
  spec.reducer = [](const int&, std::vector<int>& values,
                    std::vector<int>* out) {
    int sum = 0;
    for (int v : values) sum += v;
    out->push_back(sum);
  };
  robust::SetRetrySleeperForTest([](double) {});
  auto result = mapreduce::RunJob(spec, inputs);
  robust::SetRetrySleeperForTest(nullptr);
  ASSERT_TRUE(result.ok()) << result.status();
  // The retried task replays all its items; the emitter buffer reset keeps
  // the replay from double-counting.
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ((*result)[0], 10);
}

/// Key type whose std::hash throws on demand. The custom partitioner
/// below keeps the map-side Emit path hash-free, so the first hash call
/// happens during reduce-phase grouping — which used to run OUTSIDE the
/// task's try block: the exception escaped the worker thread and
/// terminated the process before the phase barrier. Routed through the
/// pool, it must surface as a clean Internal status instead.
struct BoomKey {
  int id = 0;
  bool operator==(const BoomKey& other) const { return id == other.id; }
};

std::atomic<bool> g_boom_key_armed{false};

}  // namespace
}  // namespace m2td

template <>
struct std::hash<m2td::BoomKey> {
  std::size_t operator()(const m2td::BoomKey& k) const {
    if (m2td::g_boom_key_armed.load()) {
      throw std::runtime_error("hash exploded during grouping");
    }
    return static_cast<std::size_t>(k.id);
  }
};

namespace m2td {
namespace {

TEST(MapReduceFailureTest, ThrowingKeyHashInReduceGroupingSurfacesInternal) {
  std::vector<int> inputs = {1, 2, 3, 4};
  mapreduce::JobSpec<int, BoomKey, int, int> spec;
  spec.num_workers = 2;
  // Hash-free placement: the map phase never touches std::hash<BoomKey>.
  spec.partitioner = [](const BoomKey& k) {
    return static_cast<std::size_t>(k.id);
  };
  spec.mapper = [](const int& v, mapreduce::Emitter<BoomKey, int>* e) {
    e->Emit(BoomKey{v % 2}, v);
  };
  spec.reducer = [](const BoomKey&, std::vector<int>& values,
                    std::vector<int>* out) {
    int sum = 0;
    for (int v : values) sum += v;
    out->push_back(sum);
  };

  g_boom_key_armed.store(true);
  auto result = mapreduce::RunJob(spec, inputs);
  g_boom_key_armed.store(false);

  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
  EXPECT_NE(result.status().message().find("hash exploded"),
            std::string::npos);

  // Disarmed, the identical job runs to completion — the engine is not
  // left wedged by the failed run.
  auto healthy = mapreduce::RunJob(spec, inputs);
  ASSERT_TRUE(healthy.ok()) << healthy.status();
  ASSERT_EQ(healthy->size(), 2u);
  EXPECT_EQ((*healthy)[0] + (*healthy)[1], 10);
}

TEST(NumericEdgeTest, GramOfAllZeroValuesIsZeroAndDecomposable) {
  tensor::SparseTensor x({3, 3});
  x.AppendEntry({0, 0}, 0.0);
  x.AppendEntry({1, 2}, 0.0);
  x.SortAndCoalesce();
  auto gram = tensor::ModeGram(x, 0);
  ASSERT_TRUE(gram.ok());
  EXPECT_EQ(gram->FrobeniusNorm(), 0.0);
  auto tucker = tensor::HosvdSparse(x, {2, 2});
  ASSERT_TRUE(tucker.ok());
  EXPECT_EQ(tucker->core.FrobeniusNorm(), 0.0);
}

TEST(NumericEdgeTest, HugeMagnitudeValuesSurvive) {
  tensor::SparseTensor x({3, 3});
  x.AppendEntry({0, 0}, 1e150);
  x.AppendEntry({2, 2}, -1e150);
  x.SortAndCoalesce();
  auto gram = tensor::ModeGram(x, 0);
  ASSERT_TRUE(gram.ok());
  EXPECT_TRUE(std::isfinite((*gram)(0, 0)));
  auto eig = linalg::SymmetricEigen(*gram);
  ASSERT_TRUE(eig.ok());
  for (double w : eig->eigenvalues) EXPECT_TRUE(std::isfinite(w));
}

TEST(NumericEdgeTest, TinyValuesDoNotUnderflowTheWholePipeline) {
  tensor::SparseTensor x({3, 3});
  x.AppendEntry({0, 1}, 1e-200);
  x.AppendEntry({1, 0}, 2e-200);
  x.SortAndCoalesce();
  auto tucker = tensor::HosvdSparse(x, {2, 2});
  ASSERT_TRUE(tucker.ok());
  auto reconstructed = tensor::Reconstruct(*tucker);
  ASSERT_TRUE(reconstructed.ok());
  for (std::uint64_t i = 0; i < reconstructed->NumElements(); ++i) {
    ASSERT_TRUE(std::isfinite(reconstructed->flat(i)));
  }
}

}  // namespace
}  // namespace m2td
