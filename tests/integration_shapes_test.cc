// Integration tests asserting the paper's qualitative claims end to end
// at miniature scale. These are the regression guards for the repository's
// reason to exist: if a refactor silently breaks a headline shape, these
// fail.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/experiment.h"
#include "core/m2td.h"
#include "core/pf_partition.h"
#include "ensemble/sampling.h"
#include "ensemble/simulation_model.h"
#include "tensor/dense_tensor.h"

namespace m2td::core {
namespace {

struct Fixture {
  std::unique_ptr<ensemble::DynamicalSystemModel> model;
  tensor::DenseTensor ground_truth;
  PfPartition partition;
};

Fixture MakeFixture(std::uint32_t resolution) {
  ensemble::ModelOptions options;
  options.parameter_resolution = resolution;
  options.time_resolution = resolution;
  auto model = ensemble::MakeDoublePendulumModel(options);
  EXPECT_TRUE(model.ok());
  Fixture fixture;
  fixture.model = std::move(model).ValueOrDie();
  auto truth = ensemble::BuildFullTensor(fixture.model.get());
  EXPECT_TRUE(truth.ok());
  fixture.ground_truth = std::move(truth).ValueOrDie();
  auto partition = MakePartition(5, {0});
  EXPECT_TRUE(partition.ok());
  fixture.partition = std::move(partition).ValueOrDie();
  return fixture;
}

// Paper claim 1 (Tables II/IV): every M2TD variant beats every
// conventional scheme by at least an order of magnitude at equal budget.
TEST(PaperShapeTest, AllM2tdVariantsDominateAllConventionalSchemes) {
  Fixture f = MakeFixture(8);
  double worst_m2td = 1.0;
  std::uint64_t cells = 0;
  for (M2tdMethod method :
       {M2tdMethod::kAvg, M2tdMethod::kConcat, M2tdMethod::kSelect}) {
    auto outcome = RunM2td(f.model.get(), f.ground_truth, f.partition,
                           method, 4, {});
    ASSERT_TRUE(outcome.ok());
    worst_m2td = std::min(worst_m2td, outcome->accuracy);
    cells = outcome->budget_cells;
  }
  const std::uint64_t budget = cells / f.model->space().Resolution(0);
  double best_conventional = 0.0;
  for (auto scheme : {ensemble::ConventionalScheme::kRandom,
                      ensemble::ConventionalScheme::kGrid,
                      ensemble::ConventionalScheme::kSlice}) {
    auto outcome = RunConventional(f.model.get(), f.ground_truth, scheme,
                                   budget, 4, 2024);
    ASSERT_TRUE(outcome.ok());
    best_conventional = std::max(best_conventional, outcome->accuracy);
  }
  EXPECT_GT(worst_m2td, 10.0 * best_conventional)
      << "worst M2TD " << worst_m2td << " vs best conventional "
      << best_conventional;
}

// Paper claim 2 (Table V): zero-join stitching beats plain join when the
// sub-ensembles are sparse.
TEST(PaperShapeTest, ZeroJoinBeatsJoinAtLowBudget) {
  Fixture f = MakeFixture(8);
  SubEnsembleOptions sub_options;
  sub_options.cell_density = 0.3;
  sub_options.seed = 7;
  StitchOptions join;
  StitchOptions zero;
  zero.zero_join = true;
  auto with_join = RunM2td(f.model.get(), f.ground_truth, f.partition,
                           M2tdMethod::kSelect, 4, sub_options, join);
  auto with_zero = RunM2td(f.model.get(), f.ground_truth, f.partition,
                           M2tdMethod::kSelect, 4, sub_options, zero);
  ASSERT_TRUE(with_join.ok() && with_zero.ok());
  EXPECT_GT(with_zero->nnz, with_join->nnz);
  EXPECT_GT(with_zero->accuracy, with_join->accuracy);
}

// Paper claim 3 (Tables VI/VII): reducing the sub-ensemble density E hurts
// more than reducing the pivot density P by the same factor (effective
// density ~ P * E^2).
TEST(PaperShapeTest, SubDensityReductionHurtsMoreThanPivotReduction) {
  Fixture f = MakeFixture(8);
  SubEnsembleOptions reduce_p;
  reduce_p.pivot_density = 0.5;
  reduce_p.seed = 5;
  SubEnsembleOptions reduce_e;
  reduce_e.side_density = 0.5;
  reduce_e.seed = 5;
  auto p_outcome = RunM2td(f.model.get(), f.ground_truth, f.partition,
                           M2tdMethod::kSelect, 4, reduce_p);
  auto e_outcome = RunM2td(f.model.get(), f.ground_truth, f.partition,
                           M2tdMethod::kSelect, 4, reduce_e);
  ASSERT_TRUE(p_outcome.ok() && e_outcome.ok());
  // Join density: P-reduction halves nnz, E-reduction quarters it.
  EXPECT_GT(p_outcome->nnz, e_outcome->nnz);
  EXPECT_GT(p_outcome->accuracy, e_outcome->accuracy);
}

// Paper claim 4 (Table VIII): any pivot choice stays orders of magnitude
// ahead of conventional sampling.
TEST(PaperShapeTest, EveryPivotBeatsRandomSampling) {
  Fixture f = MakeFixture(8);
  auto random_outcome = RunConventional(
      f.model.get(), f.ground_truth, ensemble::ConventionalScheme::kRandom,
      2 * 8 * 8, 4, 11);
  ASSERT_TRUE(random_outcome.ok());
  for (std::size_t pivot = 0; pivot < 5; ++pivot) {
    auto partition = MakePartition(5, {pivot});
    ASSERT_TRUE(partition.ok());
    auto outcome = RunM2td(f.model.get(), f.ground_truth, *partition,
                           M2tdMethod::kSelect, 4, {});
    ASSERT_TRUE(outcome.ok());
    EXPECT_GT(outcome->accuracy, 10.0 * random_outcome->accuracy)
        << "pivot mode " << pivot;
  }
}

// Config-selection variants both work and reach comparable accuracy.
TEST(PaperShapeTest, EvenlySpacedConfigSelectionWorks) {
  Fixture f = MakeFixture(8);
  SubEnsembleOptions random_cfg;
  random_cfg.side_density = 0.5;
  random_cfg.config_selection = ConfigSelection::kRandom;
  SubEnsembleOptions even_cfg;
  even_cfg.side_density = 0.5;
  even_cfg.config_selection = ConfigSelection::kEvenlySpaced;
  auto r = RunM2td(f.model.get(), f.ground_truth, f.partition,
                   M2tdMethod::kSelect, 4, random_cfg);
  auto e = RunM2td(f.model.get(), f.ground_truth, f.partition,
                   M2tdMethod::kSelect, 4, even_cfg);
  ASSERT_TRUE(r.ok() && e.ok());
  EXPECT_GT(e->accuracy, 0.0);
  // Same budget either way.
  EXPECT_EQ(r->budget_cells, e->budget_cells);
}

}  // namespace
}  // namespace m2td::core
