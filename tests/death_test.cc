// Death tests: programming errors (contract violations) must abort loudly
// via M2TD_CHECK rather than corrupt state. These complement the Status
// tests, which cover *runtime* errors.

#include <gtest/gtest.h>

#include "io/table.h"
#include "linalg/matrix.h"
#include "tensor/dense_tensor.h"
#include "tensor/sparse_tensor.h"
#include "tensor/streaming.h"

namespace m2td {
namespace {

using DeathTest = ::testing::Test;

TEST(DeathTest, MatrixDataSizeMismatchAborts) {
  EXPECT_DEATH(linalg::Matrix(2, 2, {1.0, 2.0, 3.0}), "data size");
}

TEST(DeathTest, MatrixMultiplyShapeMismatchAborts) {
  linalg::Matrix a(2, 3);
  linalg::Matrix b(2, 3);
  EXPECT_DEATH(linalg::Multiply(a, b), "shape mismatch");
}

TEST(DeathTest, SparseAppendOutOfRangeAborts) {
  tensor::SparseTensor x({2, 2});
  EXPECT_DEATH(x.AppendEntry({2, 0}, 1.0), "out of range");
}

TEST(DeathTest, SparseAppendWrongArityAborts) {
  tensor::SparseTensor x({2, 2});
  EXPECT_DEATH(x.AppendEntry({0, 0, 0}, 1.0), "arity");
}

TEST(DeathTest, FindBeforeCoalesceAborts) {
  tensor::SparseTensor x({2, 2});
  x.AppendEntry({0, 0}, 1.0);
  EXPECT_DEATH((void)x.Find({0, 0}), "SortAndCoalesce");
}

TEST(DeathTest, OversizedDenseTensorAborts) {
  EXPECT_DEATH(tensor::DenseTensor({1u << 16, 1u << 16}),
               "too large|overflow");
}

TEST(DeathTest, StreamingGramOutOfRangeAborts) {
  tensor::StreamingGram streaming({3, 3});
  EXPECT_DEATH(streaming.Add({3, 0}, 1.0), "out of range");
}

TEST(DeathTest, TableRowArityMismatchAborts) {
  io::TablePrinter table({"a", "b"});
  EXPECT_DEATH(table.AddRow({"only one"}), "arity");
}

}  // namespace
}  // namespace m2td
