#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/dm2td.h"
#include "core/experiment.h"
#include "core/je_stitch.h"
#include "core/m2td.h"
#include "core/pf_partition.h"
#include "ensemble/simulation_model.h"
#include "tensor/tucker.h"
#include "util/random.h"

namespace m2td::core {
namespace {

ensemble::ModelOptions SmallOptions() {
  ensemble::ModelOptions options;
  options.parameter_resolution = 4;
  options.time_resolution = 4;
  options.dt = 0.01;
  options.record_every = 5;
  return options;
}

std::unique_ptr<ensemble::DynamicalSystemModel> SmallModel() {
  auto model = ensemble::MakeDoublePendulumModel(SmallOptions());
  EXPECT_TRUE(model.ok());
  return std::move(model).ValueOrDie();
}

// ------------------------------------------------------------ PfPartition

TEST(PfPartitionTest, DefaultSplitHalvesRemainingModes) {
  auto partition = MakePartition(5, {0});
  ASSERT_TRUE(partition.ok());
  EXPECT_EQ(partition->pivot_modes, (std::vector<std::size_t>{0}));
  EXPECT_EQ(partition->side1_modes, (std::vector<std::size_t>{1, 2}));
  EXPECT_EQ(partition->side2_modes, (std::vector<std::size_t>{3, 4}));
  EXPECT_EQ(partition->NumModes(), 5u);
}

TEST(PfPartitionTest, MiddlePivotSplit) {
  auto partition = MakePartition(5, {2});
  ASSERT_TRUE(partition.ok());
  EXPECT_EQ(partition->side1_modes, (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(partition->side2_modes, (std::vector<std::size_t>{3, 4}));
}

TEST(PfPartitionTest, ExplicitSideAssignment) {
  // Keep same-pendulum parameters together (Table VIII note): pivot phi1,
  // side1 = {m1, t}, side2 = {phi2, m2} for modes (t,phi1,phi2,m1,m2).
  auto partition = MakePartition(5, {1}, {3, 0});
  ASSERT_TRUE(partition.ok());
  EXPECT_EQ(partition->side1_modes, (std::vector<std::size_t>{3, 0}));
  EXPECT_EQ(partition->side2_modes, (std::vector<std::size_t>{2, 4}));
}

TEST(PfPartitionTest, SubTensorModes) {
  auto partition = MakePartition(5, {0});
  ASSERT_TRUE(partition.ok());
  EXPECT_EQ(partition->SubTensorModes(1), (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_EQ(partition->SubTensorModes(2), (std::vector<std::size_t>{0, 3, 4}));
}

TEST(PfPartitionTest, Validation) {
  EXPECT_FALSE(MakePartition(5, {}).ok());
  EXPECT_FALSE(MakePartition(5, {7}).ok());
  EXPECT_FALSE(MakePartition(5, {0, 0}).ok());
  EXPECT_FALSE(MakePartition(2, {0}).ok());  // only one non-pivot mode
  EXPECT_FALSE(MakePartition(5, {0}, {0, 1}).ok());  // overlaps pivot
  EXPECT_FALSE(MakePartition(3, {0}, {1, 2}).ok());  // side 2 empty
}

// ----------------------------------------------------------- SubEnsembles

TEST(SubEnsemblesTest, FullDensityIsCompleteCrossProduct) {
  auto model = SmallModel();
  auto partition = MakePartition(5, {0});
  ASSERT_TRUE(partition.ok());
  SubEnsembleOptions options;
  auto subs = BuildSubEnsembles(model.get(), *partition, options);
  ASSERT_TRUE(subs.ok());
  // Pivot grid 4 (time), side grids 4*4 = 16 each.
  EXPECT_EQ(subs->pivot_configs.size(), 4u);
  EXPECT_EQ(subs->side1_configs.size(), 16u);
  EXPECT_EQ(subs->side2_configs.size(), 16u);
  EXPECT_EQ(subs->x1.NumNonZeros(), 64u);
  EXPECT_EQ(subs->x2.NumNonZeros(), 64u);
  EXPECT_EQ(subs->cells_evaluated, 128u);
  EXPECT_EQ(subs->x1.shape(), (std::vector<std::uint64_t>{4, 4, 4}));
}

TEST(SubEnsemblesTest, SubTensorValuesMatchModelWithDefaults) {
  auto model = SmallModel();
  auto partition = MakePartition(5, {0});
  ASSERT_TRUE(partition.ok());
  auto subs = BuildSubEnsembles(model.get(), *partition, {});
  ASSERT_TRUE(subs.ok());
  const auto& space = model->space();
  // Entry (t, phi1, phi2) of X1 must equal Cell(t, phi1, phi2, d3, d4).
  for (std::uint64_t e = 0; e < subs->x1.NumNonZeros(); e += 7) {
    std::vector<std::uint32_t> idx = {
        subs->x1.Index(0, e), subs->x1.Index(1, e), subs->x1.Index(2, e),
        space.DefaultIndex(3), space.DefaultIndex(4)};
    EXPECT_DOUBLE_EQ(subs->x1.Value(e), model->Cell(idx));
  }
}

TEST(SubEnsemblesTest, ReducedDensities) {
  auto model = SmallModel();
  auto partition = MakePartition(5, {0});
  ASSERT_TRUE(partition.ok());
  SubEnsembleOptions options;
  options.pivot_density = 0.5;
  options.side_density = 0.5;
  auto subs = BuildSubEnsembles(model.get(), *partition, options);
  ASSERT_TRUE(subs.ok());
  EXPECT_EQ(subs->pivot_configs.size(), 2u);
  EXPECT_EQ(subs->side1_configs.size(), 8u);
  EXPECT_EQ(subs->x1.NumNonZeros(), 16u);
}

TEST(SubEnsemblesTest, CellDensitySubsamplesCrossProduct) {
  auto model = SmallModel();
  auto partition = MakePartition(5, {0});
  ASSERT_TRUE(partition.ok());
  SubEnsembleOptions options;
  options.cell_density = 0.25;
  auto subs = BuildSubEnsembles(model.get(), *partition, options);
  ASSERT_TRUE(subs.ok());
  EXPECT_EQ(subs->x1.NumNonZeros(), 16u);  // 25% of 64
  EXPECT_EQ(subs->x2.NumNonZeros(), 16u);
}

TEST(SubEnsemblesTest, Validation) {
  auto model = SmallModel();
  auto partition = MakePartition(5, {0});
  ASSERT_TRUE(partition.ok());
  SubEnsembleOptions bad;
  bad.pivot_density = 0.0;
  EXPECT_FALSE(BuildSubEnsembles(model.get(), *partition, bad).ok());
  bad = {};
  bad.side_density = 1.5;
  EXPECT_FALSE(BuildSubEnsembles(model.get(), *partition, bad).ok());
  EXPECT_FALSE(BuildSubEnsembles(nullptr, *partition, {}).ok());
}

// -------------------------------------------------------------- JeStitch

TEST(JeStitchTest, JoinAveragesMatchingPairs) {
  // Hand-built sub-tensors over a 3-mode space (pivot, a, b), shapes 2x2x2.
  PfPartition partition;
  partition.pivot_modes = {0};
  partition.side1_modes = {1};
  partition.side2_modes = {2};
  SubEnsembles subs;
  subs.x1 = tensor::SparseTensor({2, 2});
  subs.x2 = tensor::SparseTensor({2, 2});
  subs.x1.AppendEntry({0, 0}, 2.0);  // (p=0, a=0)
  subs.x1.AppendEntry({0, 1}, 4.0);  // (p=0, a=1)
  subs.x2.AppendEntry({0, 1}, 6.0);  // (p=0, b=1)
  subs.x2.AppendEntry({1, 0}, 8.0);  // (p=1, b=0): no partner in x1
  subs.x1.SortAndCoalesce();
  subs.x2.SortAndCoalesce();

  auto join = JeStitch(subs, partition, {2, 2, 2});
  ASSERT_TRUE(join.ok());
  EXPECT_EQ(join->NumNonZeros(), 2u);
  EXPECT_DOUBLE_EQ(*join->Find({0, 0, 1}), 4.0);  // (2+6)/2
  EXPECT_DOUBLE_EQ(*join->Find({0, 1, 1}), 5.0);  // (4+6)/2
  EXPECT_FALSE(join->Find({1, 0, 0}).has_value());
}

TEST(JeStitchTest, ZeroJoinPadsMissingPartners) {
  PfPartition partition;
  partition.pivot_modes = {0};
  partition.side1_modes = {1};
  partition.side2_modes = {2};
  SubEnsembles subs;
  subs.x1 = tensor::SparseTensor({2, 2});
  subs.x2 = tensor::SparseTensor({2, 2});
  subs.x1.AppendEntry({0, 0}, 2.0);
  subs.x2.AppendEntry({1, 1}, 8.0);  // different pivot: join would be empty
  subs.x1.SortAndCoalesce();
  subs.x2.SortAndCoalesce();

  StitchOptions plain;
  auto join = JeStitch(subs, partition, {2, 2, 2}, plain);
  ASSERT_TRUE(join.ok());
  EXPECT_EQ(join->NumNonZeros(), 0u);

  StitchOptions zero;
  zero.zero_join = true;
  auto zjoin = JeStitch(subs, partition, {2, 2, 2}, zero);
  ASSERT_TRUE(zjoin.ok());
  // Candidates: side1 = {0}, side2 = {1}; pivots 0 and 1 each produce one
  // half-pair.
  EXPECT_EQ(zjoin->NumNonZeros(), 2u);
  EXPECT_DOUBLE_EQ(*zjoin->Find({0, 0, 1}), 1.0);  // (2+0)/2
  EXPECT_DOUBLE_EQ(*zjoin->Find({1, 0, 1}), 4.0);  // (0+8)/2
}

TEST(JeStitchTest, ZeroJoinSupersetOfJoin) {
  auto model = SmallModel();
  auto partition = MakePartition(5, {0});
  ASSERT_TRUE(partition.ok());
  SubEnsembleOptions options;
  options.cell_density = 0.5;
  auto subs = BuildSubEnsembles(model.get(), *partition, options);
  ASSERT_TRUE(subs.ok());
  auto join = JeStitch(*subs, *partition, model->space().Shape(), {});
  StitchOptions zero;
  zero.zero_join = true;
  auto zjoin = JeStitch(*subs, *partition, model->space().Shape(), zero);
  ASSERT_TRUE(join.ok() && zjoin.ok());
  EXPECT_GT(zjoin->NumNonZeros(), join->NumNonZeros());
  // Every plain-join cell exists in the zero-join with the same value.
  for (std::uint64_t e = 0; e < join->NumNonZeros(); ++e) {
    std::vector<std::uint32_t> idx(5);
    for (std::size_t m = 0; m < 5; ++m) idx[m] = join->Index(m, e);
    auto value = zjoin->Find(idx);
    ASSERT_TRUE(value.has_value());
    EXPECT_DOUBLE_EQ(*value, join->Value(e));
  }
}

TEST(JeStitchTest, FullDensityJoinDensityIsSquared) {
  auto model = SmallModel();
  auto partition = MakePartition(5, {0});
  ASSERT_TRUE(partition.ok());
  auto subs = BuildSubEnsembles(model.get(), *partition, {});
  ASSERT_TRUE(subs.ok());
  auto join = JeStitch(*subs, *partition, model->space().Shape(), {});
  ASSERT_TRUE(join.ok());
  // P * E^2 = 4 * 16 * 16 = 1024 = the whole 4^5 space at res 4.
  EXPECT_EQ(join->NumNonZeros(), 1024u);
  EXPECT_DOUBLE_EQ(join->Density(), 1.0);
}

TEST(JeStitchTest, Validation) {
  PfPartition partition;
  partition.pivot_modes = {0};
  partition.side1_modes = {1};
  partition.side2_modes = {2};
  SubEnsembles subs;
  subs.x1 = tensor::SparseTensor({2, 2});
  subs.x2 = tensor::SparseTensor({2, 2});
  subs.x1.AppendEntry({0, 0}, 1.0);
  // Uncoalesced input rejected.
  EXPECT_FALSE(JeStitch(subs, partition, {2, 2, 2}).ok());
  subs.x1.SortAndCoalesce();
  subs.x2.SortAndCoalesce();
  // Shape arity mismatch rejected.
  EXPECT_FALSE(JeStitch(subs, partition, {2, 2}).ok());
}

// -------------------------------------------------------------- RowSelect

TEST(RowSelectTest, PicksHigherEnergyRows) {
  linalg::Matrix u1(2, 2, {3, 4, 0.1, 0.1});
  linalg::Matrix u2(2, 2, {0.1, 0.1, 5, 12});
  auto selected = RowSelect(u1, u2);
  ASSERT_TRUE(selected.ok());
  EXPECT_EQ((*selected)(0, 0), 3.0);
  EXPECT_EQ((*selected)(0, 1), 4.0);
  EXPECT_EQ((*selected)(1, 0), 5.0);
  EXPECT_EQ((*selected)(1, 1), 12.0);
}

TEST(RowSelectTest, TieBreaksTowardFirst) {
  linalg::Matrix u1(1, 2, {1, 0});
  linalg::Matrix u2(1, 2, {0, 1});
  auto selected = RowSelect(u1, u2);
  ASSERT_TRUE(selected.ok());
  EXPECT_EQ((*selected)(0, 0), 1.0);
}

TEST(RowSelectTest, ShapeMismatchRejected) {
  EXPECT_FALSE(RowSelect(linalg::Matrix(2, 2), linalg::Matrix(2, 3)).ok());
  EXPECT_FALSE(RowSelect(linalg::Matrix(2, 2), linalg::Matrix(3, 2)).ok());
}

// ------------------------------------------------------------------ M2TD

class M2tdMethodTest : public ::testing::TestWithParam<M2tdMethod> {};

TEST_P(M2tdMethodTest, ProducesValidDecomposition) {
  auto model = SmallModel();
  auto partition = MakePartition(5, {0});
  ASSERT_TRUE(partition.ok());
  auto subs = BuildSubEnsembles(model.get(), *partition, {});
  ASSERT_TRUE(subs.ok());
  M2tdOptions options;
  options.method = GetParam();
  options.ranks = std::vector<std::uint64_t>(5, 2);
  auto result =
      M2tdDecompose(*subs, *partition, model->space().Shape(), options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->tucker.factors.size(), 5u);
  EXPECT_EQ(result->tucker.core.shape(),
            (std::vector<std::uint64_t>{2, 2, 2, 2, 2}));
  for (const auto& factor : result->tucker.factors) {
    EXPECT_EQ(factor.rows(), 4u);
    EXPECT_EQ(factor.cols(), 2u);
  }
  EXPECT_GT(result->join_nnz, 0u);
  auto reconstructed = tensor::Reconstruct(result->tucker);
  ASSERT_TRUE(reconstructed.ok());
  EXPECT_EQ(reconstructed->shape(), model->space().Shape());
  for (std::uint64_t i = 0; i < reconstructed->NumElements(); ++i) {
    ASSERT_TRUE(std::isfinite(reconstructed->flat(i)));
  }
}

INSTANTIATE_TEST_SUITE_P(AllMethods, M2tdMethodTest,
                         ::testing::Values(M2tdMethod::kAvg,
                                           M2tdMethod::kConcat,
                                           M2tdMethod::kSelect,
                                           M2tdMethod::kWeighted),
                         [](const auto& info) {
                           switch (info.param) {
                             case M2tdMethod::kAvg:
                               return "Avg";
                             case M2tdMethod::kConcat:
                               return "Concat";
                             case M2tdMethod::kSelect:
                               return "Select";
                             case M2tdMethod::kWeighted:
                               return "Weighted";
                           }
                           return "?";
                         });

TEST(M2tdTest, MethodNames) {
  EXPECT_STREQ(M2tdMethodName(M2tdMethod::kAvg), "M2TD-AVG");
  EXPECT_STREQ(M2tdMethodName(M2tdMethod::kConcat), "M2TD-CONCAT");
  EXPECT_STREQ(M2tdMethodName(M2tdMethod::kSelect), "M2TD-SELECT");
}

TEST(M2tdTest, BeatsConventionalSamplingOnPendulum) {
  // The paper's headline claim at miniature scale: with the same budget,
  // M2TD reconstructs the full space orders of magnitude better than
  // random sampling.
  ensemble::ModelOptions model_options;
  model_options.parameter_resolution = 5;
  model_options.time_resolution = 5;
  auto model_or = ensemble::MakeDoublePendulumModel(model_options);
  ASSERT_TRUE(model_or.ok());
  auto model = std::move(model_or).ValueOrDie();

  auto ground_truth = ensemble::BuildFullTensor(model.get());
  ASSERT_TRUE(ground_truth.ok());

  auto partition = MakePartition(5, {0});
  ASSERT_TRUE(partition.ok());
  auto m2td_outcome = RunM2td(model.get(), *ground_truth, *partition,
                              M2tdMethod::kSelect, 3, {});
  ASSERT_TRUE(m2td_outcome.ok());

  // Same simulation budget for the conventional scheme.
  const std::uint64_t budget =
      m2td_outcome->budget_cells / model->space().Resolution(0) + 1;
  auto random_outcome =
      RunConventional(model.get(), *ground_truth,
                      ensemble::ConventionalScheme::kRandom, budget, 3, 99);
  ASSERT_TRUE(random_outcome.ok());

  EXPECT_GT(m2td_outcome->accuracy, 0.2);
  EXPECT_GT(m2td_outcome->accuracy, 10.0 * random_outcome->accuracy);
}

TEST(M2tdTest, SelectAtLeastAsGoodAsAvgHere) {
  ensemble::ModelOptions model_options;
  model_options.parameter_resolution = 5;
  model_options.time_resolution = 5;
  auto model_or = ensemble::MakeDoublePendulumModel(model_options);
  ASSERT_TRUE(model_or.ok());
  auto model = std::move(model_or).ValueOrDie();
  auto ground_truth = ensemble::BuildFullTensor(model.get());
  ASSERT_TRUE(ground_truth.ok());
  auto partition = MakePartition(5, {0});
  ASSERT_TRUE(partition.ok());
  auto select = RunM2td(model.get(), *ground_truth, *partition,
                        M2tdMethod::kSelect, 3, {});
  auto avg = RunM2td(model.get(), *ground_truth, *partition,
                     M2tdMethod::kAvg, 3, {});
  ASSERT_TRUE(select.ok() && avg.ok());
  EXPECT_GE(select->accuracy, avg->accuracy - 0.05);
}

TEST(M2tdTest, Validation) {
  auto model = SmallModel();
  auto partition = MakePartition(5, {0});
  ASSERT_TRUE(partition.ok());
  auto subs = BuildSubEnsembles(model.get(), *partition, {});
  ASSERT_TRUE(subs.ok());
  M2tdOptions options;
  options.ranks = {2, 2};  // wrong arity
  EXPECT_FALSE(
      M2tdDecompose(*subs, *partition, model->space().Shape(), options).ok());
}

// ----------------------------------------------------------------- DM2TD

TEST(DM2tdTest, MatchesLocalM2td) {
  auto model = SmallModel();
  auto partition = MakePartition(5, {0});
  ASSERT_TRUE(partition.ok());
  auto subs = BuildSubEnsembles(model.get(), *partition, {});
  ASSERT_TRUE(subs.ok());

  for (M2tdMethod method :
       {M2tdMethod::kAvg, M2tdMethod::kConcat, M2tdMethod::kSelect}) {
    M2tdOptions local_options;
    local_options.method = method;
    local_options.ranks = std::vector<std::uint64_t>(5, 2);
    auto local = M2tdDecompose(*subs, *partition, model->space().Shape(),
                               local_options);
    ASSERT_TRUE(local.ok());

    DM2tdOptions dist_options;
    dist_options.method = method;
    dist_options.ranks = local_options.ranks;
    dist_options.num_workers = 3;
    auto dist = DM2tdDecompose(*subs, *partition, model->space().Shape(),
                               dist_options);
    ASSERT_TRUE(dist.ok());

    EXPECT_EQ(dist->join_nnz, local->join_nnz);
    auto r_local = tensor::Reconstruct(local->tucker);
    auto r_dist = tensor::Reconstruct(dist->tucker);
    ASSERT_TRUE(r_local.ok() && r_dist.ok());
    EXPECT_NEAR(tensor::DenseTensor::FrobeniusDistance(*r_local, *r_dist),
                0.0, 1e-8)
        << M2tdMethodName(method);
  }
}

TEST(DM2tdTest, ZeroJoinMatchesLocal) {
  auto model = SmallModel();
  auto partition = MakePartition(5, {0});
  ASSERT_TRUE(partition.ok());
  SubEnsembleOptions sub_options;
  sub_options.cell_density = 0.4;
  auto subs = BuildSubEnsembles(model.get(), *partition, sub_options);
  ASSERT_TRUE(subs.ok());

  M2tdOptions local_options;
  local_options.ranks = std::vector<std::uint64_t>(5, 2);
  local_options.stitch.zero_join = true;
  auto local = M2tdDecompose(*subs, *partition, model->space().Shape(),
                             local_options);
  ASSERT_TRUE(local.ok());

  DM2tdOptions dist_options;
  dist_options.ranks = local_options.ranks;
  dist_options.stitch.zero_join = true;
  dist_options.num_workers = 2;
  auto dist = DM2tdDecompose(*subs, *partition, model->space().Shape(),
                             dist_options);
  ASSERT_TRUE(dist.ok());
  EXPECT_EQ(dist->join_nnz, local->join_nnz);
  auto r_local = tensor::Reconstruct(local->tucker);
  auto r_dist = tensor::Reconstruct(dist->tucker);
  ASSERT_TRUE(r_local.ok() && r_dist.ok());
  EXPECT_NEAR(tensor::DenseTensor::FrobeniusDistance(*r_local, *r_dist), 0.0,
              1e-8);
}

TEST(DM2tdTest, WorkerCountDoesNotChangeResult) {
  auto model = SmallModel();
  auto partition = MakePartition(5, {0});
  ASSERT_TRUE(partition.ok());
  auto subs = BuildSubEnsembles(model.get(), *partition, {});
  ASSERT_TRUE(subs.ok());
  DM2tdOptions options;
  options.ranks = std::vector<std::uint64_t>(5, 2);

  tensor::DenseTensor baseline;
  for (int workers : {1, 2, 6}) {
    options.num_workers = workers;
    auto result = DM2tdDecompose(*subs, *partition, model->space().Shape(),
                                 options);
    ASSERT_TRUE(result.ok());
    auto reconstructed = tensor::Reconstruct(result->tucker);
    ASSERT_TRUE(reconstructed.ok());
    if (workers == 1) {
      baseline = std::move(*reconstructed);
    } else {
      EXPECT_NEAR(
          tensor::DenseTensor::FrobeniusDistance(baseline, *reconstructed),
          0.0, 1e-8)
          << "workers=" << workers;
    }
  }
}

TEST(DM2tdTest, ReportsPhaseStats) {
  auto model = SmallModel();
  auto partition = MakePartition(5, {0});
  ASSERT_TRUE(partition.ok());
  auto subs = BuildSubEnsembles(model.get(), *partition, {});
  ASSERT_TRUE(subs.ok());
  DM2tdOptions options;
  options.ranks = std::vector<std::uint64_t>(5, 2);
  options.num_workers = 2;
  auto result =
      DM2tdDecompose(*subs, *partition, model->space().Shape(), options);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->phase2.intermediate_pairs, 0u);
  EXPECT_GT(result->phase3.intermediate_pairs, 0u);
  EXPECT_GE(result->TotalSeconds(), 0.0);
}

// ------------------------------------------------------------- Experiment

TEST(ExperimentTest, UniformRanks) {
  auto model = SmallModel();
  EXPECT_EQ(UniformRanks(*model, 3),
            (std::vector<std::uint64_t>(5, 3)));
}

TEST(ExperimentTest, RunConventionalPopulatesOutcome) {
  auto model = SmallModel();
  auto ground_truth = ensemble::BuildFullTensor(model.get());
  ASSERT_TRUE(ground_truth.ok());
  auto outcome =
      RunConventional(model.get(), *ground_truth,
                      ensemble::ConventionalScheme::kGrid, 16, 2, 3);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->scheme, "Grid");
  EXPECT_GT(outcome->nnz, 0u);
  EXPECT_GE(outcome->decompose_seconds, 0.0);
  EXPECT_LE(outcome->accuracy, 1.0);
}

TEST(ExperimentTest, RunUnionBaselineScoresUnionTensor) {
  auto model = SmallModel();
  auto ground_truth = ensemble::BuildFullTensor(model.get());
  ASSERT_TRUE(ground_truth.ok());
  auto partition = MakePartition(5, {0});
  ASSERT_TRUE(partition.ok());
  auto subs = BuildSubEnsembles(model.get(), *partition, {});
  ASSERT_TRUE(subs.ok());
  // Union the sub-ensembles into one 5-mode tensor (fixing constants for
  // the missing modes), as the naive alternative would.
  tensor::SparseTensor union_tensor(model->space().Shape());
  const auto& space = model->space();
  for (int side = 1; side <= 2; ++side) {
    const auto& sub = side == 1 ? subs->x1 : subs->x2;
    const auto modes = partition->SubTensorModes(side);
    std::vector<std::uint32_t> idx(5);
    for (std::uint64_t e = 0; e < sub.NumNonZeros(); ++e) {
      for (std::size_t m = 0; m < 5; ++m) idx[m] = space.DefaultIndex(m);
      for (std::size_t m = 0; m < modes.size(); ++m) {
        idx[modes[m]] = sub.Index(m, e);
      }
      union_tensor.AppendEntry(idx, sub.Value(e));
    }
  }
  union_tensor.SortAndCoalesce(tensor::CoalescePolicy::kMean);
  auto outcome = RunUnionBaseline(union_tensor, *ground_truth, 2, "Union");
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->scheme, "Union");
  EXPECT_LE(outcome->accuracy, 1.0);
}

}  // namespace
}  // namespace m2td::core
