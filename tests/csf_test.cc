// CSF index and TTM-chain-cache coverage: the CSF kernels must be
// *bit-identical* to their COO reference implementations (not merely
// close — the repo's determinism contract is exact), the index structure
// must hold its documented invariants, concurrent lazy builds must be
// race-free (run under TSAN via the verify recipe), and HOOI's chain
// memoization must be a pure speed knob.

#include <atomic>
#include <cstdint>
#include <thread>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "parallel/thread_pool.h"
#include "tensor/csf.h"
#include "tensor/dense_tensor.h"
#include "tensor/hooi.h"
#include "tensor/matricize.h"
#include "tensor/sparse_tensor.h"
#include "tensor/ttm.h"
#include "util/random.h"

namespace m2td::tensor {
namespace {

SparseTensor RandomSparse(const std::vector<std::uint64_t>& shape,
                          double density, Rng* rng) {
  SparseTensor x(shape);
  std::uint64_t logical = 1;
  for (std::uint64_t d : shape) logical *= d;
  const std::uint64_t nnz = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(density * static_cast<double>(logical)));
  std::vector<std::uint32_t> idx(shape.size());
  for (std::uint64_t e = 0; e < nnz; ++e) {
    for (std::size_t m = 0; m < shape.size(); ++m) {
      idx[m] = static_cast<std::uint32_t>(rng->UniformInt(shape[m]));
    }
    x.AppendEntry(idx, rng->Gaussian());
  }
  x.SortAndCoalesce();
  return x;
}

linalg::Matrix RandomMatrix(std::size_t rows, std::size_t cols, Rng* rng) {
  linalg::Matrix u(rows, cols);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) u(i, j) = rng->Gaussian();
  }
  return u;
}

void ExpectBitIdentical(const DenseTensor& a, const DenseTensor& b) {
  ASSERT_EQ(a.shape(), b.shape());
  for (std::uint64_t i = 0; i < a.NumElements(); ++i) {
    ASSERT_EQ(a.flat(i), b.flat(i)) << "flat index " << i;
  }
}

void ExpectBitIdentical(const linalg::Matrix& a, const linalg::Matrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      ASSERT_EQ(a(i, j), b(i, j)) << "(" << i << "," << j << ")";
    }
  }
}

// Sweep: (shape id, density) — same grid as tensor_property_test.
using CsfParam = std::tuple<int, double>;

std::vector<std::uint64_t> ShapeOf(int shape_id) {
  switch (shape_id) {
    case 0:
      return {4, 5};
    case 1:
      return {3, 4, 5};
    case 2:
      return {4, 4, 4, 4};
    default:
      return {2, 3, 2, 3, 2};
  }
}

class CsfEquivalence : public ::testing::TestWithParam<CsfParam> {
 protected:
  SparseTensor MakeInput() {
    Rng rng(700 + std::get<0>(GetParam()) * 10 +
            static_cast<int>(std::get<1>(GetParam()) * 100));
    return RandomSparse(ShapeOf(std::get<0>(GetParam())),
                        std::get<1>(GetParam()), &rng);
  }
};

TEST_P(CsfEquivalence, SparseModeProductMatchesCooBitForBit) {
  SparseTensor x = MakeInput();
  Rng rng(42);
  for (std::size_t mode = 0; mode < x.num_modes(); ++mode) {
    for (bool transpose : {false, true}) {
      const std::size_t n = static_cast<std::size_t>(x.dim(mode));
      const linalg::Matrix u = transpose ? RandomMatrix(n, 3, &rng)
                                         : RandomMatrix(3, n, &rng);
      auto csf = SparseModeProduct(x, u, mode, transpose);
      auto coo = SparseModeProductCoo(x, u, mode, transpose);
      ASSERT_TRUE(csf.ok() && coo.ok());
      ExpectBitIdentical(*csf, *coo);
    }
  }
}

TEST_P(CsfEquivalence, ModeGramMatchesCooBitForBit) {
  SparseTensor x = MakeInput();
  for (std::size_t mode = 0; mode < x.num_modes(); ++mode) {
    auto csf = ModeGram(x, mode);
    auto coo = ModeGramCoo(x, mode);
    ASSERT_TRUE(csf.ok() && coo.ok());
    ExpectBitIdentical(*csf, *coo);
  }
}

TEST_P(CsfEquivalence, IndexStructureInvariantsHold) {
  SparseTensor x = MakeInput();
  for (std::size_t mode = 0; mode < x.num_modes(); ++mode) {
    const CsfModeIndex& csf = x.Csf(mode);
    ASSERT_EQ(csf.mode(), mode);
    ASSERT_EQ(csf.num_entries(), x.NumNonZeros());
    ASSERT_EQ(csf.fiber_offsets().size(), csf.num_fibers() + 1);
    ASSERT_EQ(csf.fiber_offsets().front(), 0u);
    ASSERT_EQ(csf.fiber_offsets().back(), x.NumNonZeros());
    for (std::uint64_t f = 0; f < csf.num_fibers(); ++f) {
      // Non-empty fibers, strictly ascending columns.
      ASSERT_LT(csf.fiber_offsets()[f], csf.fiber_offsets()[f + 1]);
      if (f > 0) {
        ASSERT_LT(csf.fiber_columns()[f - 1], csf.fiber_columns()[f]);
      }
      // Leaf coordinates strictly ascend within a fiber (coalescing makes
      // (column, leaf) pairs unique).
      for (std::uint64_t e = csf.fiber_offsets()[f] + 1;
           e < csf.fiber_offsets()[f + 1]; ++e) {
        ASSERT_LT(csf.leaf_coords()[e - 1], csf.leaf_coords()[e]);
      }
    }
    // DecodeColumn round-trips every fiber column.
    std::vector<std::uint32_t> coords(csf.other_dims().size());
    for (std::uint64_t f = 0; f < csf.num_fibers(); ++f) {
      csf.DecodeColumn(csf.fiber_columns()[f], coords.data());
      std::uint64_t column = 0;
      for (std::size_t i = 0; i < coords.size(); ++i) {
        ASSERT_LT(coords[i], csf.other_dims()[i]);
        column = column * csf.other_dims()[i] + coords[i];
      }
      ASSERT_EQ(column, csf.fiber_columns()[f]);
    }
  }
}

TEST_P(CsfEquivalence, KernelsBitIdenticalAcrossThreadCounts) {
  SparseTensor x = MakeInput();
  Rng rng(7);
  const std::size_t n0 = static_cast<std::size_t>(x.dim(0));
  const linalg::Matrix u = RandomMatrix(n0, 3, &rng);

  parallel::SetGlobalThreads(1);
  auto ttm1 = SparseModeProduct(x, u, 0, /*transpose_u=*/true);
  auto gram1 = ModeGram(x, x.num_modes() - 1);
  parallel::SetGlobalThreads(4);
  auto ttm4 = SparseModeProduct(x, u, 0, /*transpose_u=*/true);
  auto gram4 = ModeGram(x, x.num_modes() - 1);
  parallel::SetGlobalThreads(parallel::HardwareThreads());

  ASSERT_TRUE(ttm1.ok() && ttm4.ok() && gram1.ok() && gram4.ok());
  ExpectBitIdentical(*ttm1, *ttm4);
  ExpectBitIdentical(*gram1, *gram4);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CsfEquivalence,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),
                       ::testing::Values(0.05, 0.3, 0.9)),
    [](const ::testing::TestParamInfo<CsfParam>& info) {
      return "shape" + std::to_string(std::get<0>(info.param)) + "_d" +
             std::to_string(static_cast<int>(std::get<1>(info.param) * 100));
    });

TEST(CsfEdgeCases, EmptyTensor) {
  SparseTensor x(std::vector<std::uint64_t>{3, 4, 5});
  x.SortAndCoalesce();
  for (std::size_t mode = 0; mode < 3; ++mode) {
    const CsfModeIndex& csf = x.Csf(mode);
    EXPECT_EQ(csf.num_fibers(), 0u);
    EXPECT_EQ(csf.num_entries(), 0u);
    ASSERT_EQ(csf.fiber_offsets().size(), 1u);
    EXPECT_EQ(csf.fiber_offsets()[0], 0u);

    auto gram = ModeGram(x, mode);
    auto gram_coo = ModeGramCoo(x, mode);
    ASSERT_TRUE(gram.ok() && gram_coo.ok());
    ExpectBitIdentical(*gram, *gram_coo);

    Rng rng(1);
    const linalg::Matrix u =
        RandomMatrix(static_cast<std::size_t>(x.dim(mode)), 2, &rng);
    auto y = SparseModeProduct(x, u, mode, /*transpose_u=*/true);
    auto y_coo = SparseModeProductCoo(x, u, mode, /*transpose_u=*/true);
    ASSERT_TRUE(y.ok() && y_coo.ok());
    ExpectBitIdentical(*y, *y_coo);
  }
}

TEST(CsfEdgeCases, SingletonTensor) {
  SparseTensor x(std::vector<std::uint64_t>{2, 3, 4});
  x.AppendEntry({1, 2, 3}, 2.5);
  x.SortAndCoalesce();
  for (std::size_t mode = 0; mode < 3; ++mode) {
    const CsfModeIndex& csf = x.Csf(mode);
    EXPECT_EQ(csf.num_fibers(), 1u);
    EXPECT_EQ(csf.num_entries(), 1u);
    auto gram = ModeGram(x, mode);
    auto gram_coo = ModeGramCoo(x, mode);
    ASSERT_TRUE(gram.ok() && gram_coo.ok());
    ExpectBitIdentical(*gram, *gram_coo);
  }
}

TEST(CsfEdgeCases, DuplicateEntriesCoalesceBeforeIndexing) {
  SparseTensor x(std::vector<std::uint64_t>{3, 3});
  x.AppendEntry({1, 2}, 1.0);
  x.AppendEntry({1, 2}, 2.0);
  x.AppendEntry({0, 1}, -1.5);
  x.AppendEntry({1, 2}, 0.5);
  x.SortAndCoalesce();
  ASSERT_EQ(x.NumNonZeros(), 2u);
  for (std::size_t mode = 0; mode < 2; ++mode) {
    auto gram = ModeGram(x, mode);
    auto gram_coo = ModeGramCoo(x, mode);
    ASSERT_TRUE(gram.ok() && gram_coo.ok());
    ExpectBitIdentical(*gram, *gram_coo);
  }
  // The coalesced (1,2) entry must appear once with the summed value.
  const CsfModeIndex& csf = x.Csf(0);
  EXPECT_EQ(csf.num_entries(), 2u);
}

TEST(CsfEdgeCases, MutationDetachesIndex) {
  SparseTensor x(std::vector<std::uint64_t>{3, 3});
  x.AppendEntry({0, 0}, 1.0);
  x.AppendEntry({2, 2}, 2.0);
  x.SortAndCoalesce();
  auto before = ModeGram(x, 0);
  ASSERT_TRUE(before.ok());
  // MutableValue must invalidate the cached index: the next Gram has to
  // see the new value, not the stale one.
  x.MutableValue(0) = 5.0;
  auto after = ModeGram(x, 0);
  auto after_coo = ModeGramCoo(x, 0);
  ASSERT_TRUE(after.ok() && after_coo.ok());
  ExpectBitIdentical(*after, *after_coo);
  EXPECT_NE((*before)(0, 0), (*after)(0, 0));
}

TEST(CsfConcurrency, RacingBuildsAreSafeAndConsistent) {
  Rng rng(99);
  SparseTensor x = RandomSparse({5, 6, 7}, 0.2, &rng);
  // Precompute the reference serially.
  std::vector<linalg::Matrix> reference;
  for (std::size_t mode = 0; mode < 3; ++mode) {
    auto g = ModeGramCoo(x, mode);
    ASSERT_TRUE(g.ok());
    reference.push_back(*g);
  }
  // Threads race the lazy per-mode builds: several threads per mode, all
  // modes at once (TSAN verifies the once_flag protocol in the cache).
  constexpr int kThreadsPerMode = 4;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreadsPerMode; ++t) {
    for (std::size_t mode = 0; mode < 3; ++mode) {
      threads.emplace_back([&x, &reference, &failures, mode] {
        auto g = ModeGram(x, mode);
        if (!g.ok()) {
          ++failures;
          return;
        }
        for (std::size_t i = 0; i < g->rows(); ++i) {
          for (std::size_t j = 0; j < g->cols(); ++j) {
            if ((*g)(i, j) != reference[mode](i, j)) ++failures;
          }
        }
      });
    }
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(TtmChainMemoization, HooiCacheOnOffBitIdenticalAndHitsCounted) {
  Rng rng(123);
  SparseTensor x = RandomSparse({6, 5, 4, 3}, 0.15, &rng);
  const std::vector<std::uint64_t> ranks = {3, 3, 2, 2};

  HooiOptions with_cache;
  with_cache.max_iterations = 3;
  with_cache.memoize_ttm_chains = true;
  HooiOptions without_cache = with_cache;
  without_cache.memoize_ttm_chains = false;

  const bool metrics_were_enabled = obs::MetricsEnabled();
  obs::SetMetricsEnabled(true);
  obs::GetCounter("tensor.ttm_chain.cache_hits").Reset();

  auto memoized = HooiSparse(x, ranks, with_cache);
  const std::uint64_t hits =
      obs::GetCounter("tensor.ttm_chain.cache_hits").value();
  auto naive = HooiSparse(x, ranks, without_cache);
  obs::SetMetricsEnabled(metrics_were_enabled);

  ASSERT_TRUE(memoized.ok() && naive.ok());
  EXPECT_GT(hits, 0u) << "memoized HOOI never reused a chain prefix";
  ASSERT_EQ(memoized->factors.size(), naive->factors.size());
  for (std::size_t m = 0; m < memoized->factors.size(); ++m) {
    ExpectBitIdentical(memoized->factors[m], naive->factors[m]);
  }
  ExpectBitIdentical(memoized->core, naive->core);
}

TEST(TtmChainMemoization, DenseHooiCacheOnOffBitIdentical) {
  Rng rng(321);
  SparseTensor seed = RandomSparse({5, 4, 3}, 0.4, &rng);
  const DenseTensor x = seed.ToDense();
  const std::vector<std::uint64_t> ranks = {3, 2, 2};

  HooiOptions with_cache;
  with_cache.max_iterations = 3;
  with_cache.memoize_ttm_chains = true;
  HooiOptions without_cache = with_cache;
  without_cache.memoize_ttm_chains = false;

  auto memoized = HooiDense(x, ranks, with_cache);
  auto naive = HooiDense(x, ranks, without_cache);
  ASSERT_TRUE(memoized.ok() && naive.ok());
  for (std::size_t m = 0; m < memoized->factors.size(); ++m) {
    ExpectBitIdentical(memoized->factors[m], naive->factors[m]);
  }
  ExpectBitIdentical(memoized->core, naive->core);
}

}  // namespace
}  // namespace m2td::tensor
