// Tests for the experiment harness (core/experiment.h): determinism,
// budget accounting, and outcome consistency across entry points.

#include <memory>

#include <gtest/gtest.h>

#include "core/experiment.h"
#include "core/m2td.h"
#include "core/pf_partition.h"
#include "ensemble/sampling.h"
#include "ensemble/simulation_model.h"

namespace m2td::core {
namespace {

struct Env {
  std::unique_ptr<ensemble::DynamicalSystemModel> model;
  tensor::DenseTensor ground_truth;
  PfPartition partition;
};

Env MakeEnv() {
  ensemble::ModelOptions options;
  options.parameter_resolution = 5;
  options.time_resolution = 5;
  auto model = ensemble::MakeDoublePendulumModel(options);
  EXPECT_TRUE(model.ok());
  Env env;
  env.model = std::move(model).ValueOrDie();
  auto truth = ensemble::BuildFullTensor(env.model.get());
  EXPECT_TRUE(truth.ok());
  env.ground_truth = std::move(truth).ValueOrDie();
  env.partition = MakePartition(5, {0}).ValueOrDie();
  return env;
}

TEST(ExperimentHarnessTest, ConventionalDeterministicForSeed) {
  Env env = MakeEnv();
  auto a = RunConventional(env.model.get(), env.ground_truth,
                           ensemble::ConventionalScheme::kRandom, 12, 3, 42);
  auto b = RunConventional(env.model.get(), env.ground_truth,
                           ensemble::ConventionalScheme::kRandom, 12, 3, 42);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_DOUBLE_EQ(a->accuracy, b->accuracy);
  EXPECT_EQ(a->nnz, b->nnz);
}

TEST(ExperimentHarnessTest, DifferentSeedsDifferentSamples) {
  Env env = MakeEnv();
  auto a = RunConventional(env.model.get(), env.ground_truth,
                           ensemble::ConventionalScheme::kRandom, 12, 3, 1);
  auto b = RunConventional(env.model.get(), env.ground_truth,
                           ensemble::ConventionalScheme::kRandom, 12, 3, 2);
  ASSERT_TRUE(a.ok() && b.ok());
  // Same budget, (almost surely) different sample sets -> different
  // accuracy.
  EXPECT_EQ(a->nnz, b->nnz);
  EXPECT_NE(a->accuracy, b->accuracy);
}

TEST(ExperimentHarnessTest, M2tdOutcomeFieldsConsistent) {
  Env env = MakeEnv();
  auto outcome = RunM2td(env.model.get(), env.ground_truth, env.partition,
                         M2tdMethod::kSelect, 3, {});
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->scheme, "M2TD-SELECT");
  // Full density at res 5: 2 sides x 5 pivots x 25 free configs.
  EXPECT_EQ(outcome->budget_cells, 2u * 5u * 25u);
  // Join covers the whole 5^5 space at full density.
  EXPECT_EQ(outcome->nnz, 3125u);
  EXPECT_GT(outcome->decompose_seconds, 0.0);
  EXPECT_NEAR(outcome->decompose_seconds,
              outcome->timings.TotalSeconds(), 1e-12);
  EXPECT_GT(outcome->timings.core_seconds, 0.0);
}

TEST(ExperimentHarnessTest, M2tdDeterministicAcrossCalls) {
  Env env = MakeEnv();
  auto a = RunM2td(env.model.get(), env.ground_truth, env.partition,
                   M2tdMethod::kConcat, 3, {});
  auto b = RunM2td(env.model.get(), env.ground_truth, env.partition,
                   M2tdMethod::kConcat, 3, {});
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_DOUBLE_EQ(a->accuracy, b->accuracy);
}

TEST(ExperimentHarnessTest, ModelCacheMakesSecondRunCheap) {
  Env env = MakeEnv();
  // Ground truth construction already simulated the whole space.
  const std::uint64_t sims_before = env.model->SimulationsRun();
  auto outcome = RunM2td(env.model.get(), env.ground_truth, env.partition,
                         M2tdMethod::kSelect, 3, {});
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(env.model->SimulationsRun(), sims_before)
      << "sub-ensemble evaluation must reuse cached trajectories";
}

TEST(ExperimentHarnessTest, NullModelRejected) {
  Env env = MakeEnv();
  EXPECT_FALSE(RunM2td(nullptr, env.ground_truth, env.partition,
                       M2tdMethod::kSelect, 3, {})
                   .ok());
  EXPECT_FALSE(RunConventional(nullptr, env.ground_truth,
                               ensemble::ConventionalScheme::kRandom, 5, 3,
                               1)
                   .ok());
}

TEST(ExperimentHarnessTest, UniformRanksShape) {
  Env env = MakeEnv();
  const auto ranks = UniformRanks(*env.model, 7);
  EXPECT_EQ(ranks, std::vector<std::uint64_t>(5, 7));
}

}  // namespace
}  // namespace m2td::core
