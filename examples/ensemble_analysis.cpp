// Ensemble analysis: from raw simulations to actionable patterns.
//
// The paper's motivation is decision support: run an affordable ensemble,
// decompose it, and read off (a) the latent patterns per parameter,
// (b) which cross-parameter pattern combinations carry the energy, and
// (c) which simulations the global patterns fail to explain (anomalies /
// under-sampled regions). This example runs that workflow on the triple
// pendulum with M2TD-SELECT.
//
// Build & run:  ./build/examples/ensemble_analysis

#include <iostream>

#include "core/analysis.h"
#include "core/je_stitch.h"
#include "core/m2td.h"
#include "core/pf_partition.h"
#include "ensemble/simulation_model.h"
#include "io/table.h"
#include "util/logging.h"

int main() {
  m2td::ensemble::ModelOptions options;
  options.parameter_resolution = 10;
  options.time_resolution = 10;
  auto model = m2td::ensemble::MakeTriplePendulumModel(options);
  M2TD_CHECK(model.ok()) << model.status();
  std::cout << "System: " << (*model)->name()
            << "; modes (t, phi1, phi2, phi3, f)\n\n";

  // Partition-stitch ensemble + M2TD-SELECT decomposition.
  auto partition = m2td::core::MakePartition(5, {0});
  M2TD_CHECK(partition.ok()) << partition.status();
  auto subs = m2td::core::BuildSubEnsembles(model->get(), *partition, {});
  M2TD_CHECK(subs.ok()) << subs.status();
  m2td::core::M2tdOptions m2td_options;
  m2td_options.method = m2td::core::M2tdMethod::kSelect;
  m2td_options.ranks = std::vector<std::uint64_t>(5, 3);
  auto result = m2td::core::M2tdDecompose(
      *subs, *partition, (*model)->space().Shape(), m2td_options);
  M2TD_CHECK(result.ok()) << result.status();

  // (a) Latent patterns per mode.
  auto patterns = m2td::core::ExtractModePatterns(result->tucker, 3);
  M2TD_CHECK(patterns.ok()) << patterns.status();
  std::cout << "Latent patterns (top grid values per factor component):\n"
            << m2td::core::DescribePatterns(*patterns, (*model)->space())
            << "\n";

  // (b) Dominant cross-mode interactions in the core.
  auto interactions = m2td::core::TopCoreInteractions(result->tucker, 5);
  M2TD_CHECK(interactions.ok()) << interactions.status();
  std::cout << "Strongest pattern interactions (core entries):\n";
  for (const auto& interaction : *interactions) {
    std::cout << "  components (";
    for (std::size_t m = 0; m < interaction.component_indices.size(); ++m) {
      std::cout << (m ? ", " : "") << interaction.component_indices[m];
    }
    std::cout << ")  strength "
              << m2td::io::TablePrinter::Cell(interaction.strength, 3)
              << "\n";
  }

  // (c) Simulations the decomposition explains worst.
  auto join = m2td::core::JeStitch(*subs, *partition,
                                   (*model)->space().Shape(), {});
  M2TD_CHECK(join.ok()) << join.status();
  auto outliers = m2td::core::ResidualOutliers(result->tucker, *join, 5);
  M2TD_CHECK(outliers.ok()) << outliers.status();
  std::cout << "\nWorst-explained join cells (candidate anomalies):\n";
  const auto& space = (*model)->space();
  for (const auto& outlier : *outliers) {
    std::cout << "  ";
    for (std::size_t m = 0; m < outlier.indices.size(); ++m) {
      std::cout << (m ? ", " : "") << space.def(m).name << "="
                << m2td::io::TablePrinter::Cell(
                       space.Value(m, outlier.indices[m]), 2);
    }
    std::cout << "  observed "
              << m2td::io::TablePrinter::Cell(outlier.observed, 3)
              << " vs reconstructed "
              << m2td::io::TablePrinter::Cell(outlier.reconstructed, 3)
              << "\n";
  }
  std::cout << "\nThese are the regions an analyst would refine with "
               "additional targeted simulations.\n";
  return 0;
}
