// Quickstart: the smallest end-to-end M2TD pipeline.
//
//  1. Define a simulation model (double pendulum, 5-mode ensemble space).
//  2. PF-partition the parameter space around a pivot (time).
//  3. Run the two cheap sub-ensembles.
//  4. M2TD-SELECT: decompose the stitched join tensor from the sub-tensor
//     decompositions alone.
//  5. Compare against random sampling at the same simulation budget.
//
// Build & run:  ./build/examples/quickstart

#include <iostream>

#include "core/experiment.h"
#include "core/m2td.h"
#include "core/pf_partition.h"
#include "ensemble/sampling.h"
#include "ensemble/simulation_model.h"
#include "tensor/tucker.h"
#include "util/logging.h"

int main() {
  // --- 1. A double-pendulum ensemble space: modes (t, phi1, phi2, m1, m2),
  //        10 grid values per mode.
  m2td::ensemble::ModelOptions model_options;
  m2td::ensemble::ModelOptions& mo = model_options;
  mo.parameter_resolution = 10;
  mo.time_resolution = 10;
  auto model = m2td::ensemble::MakeDoublePendulumModel(model_options);
  M2TD_CHECK(model.ok()) << model.status();
  std::cout << "Model: " << (*model)->name() << ", full space "
            << (*model)->space().NumCells() << " cells\n";

  // Ground truth (feasible only at this miniature scale): every simulation.
  auto ground_truth = m2td::ensemble::BuildFullTensor(model->get());
  M2TD_CHECK(ground_truth.ok()) << ground_truth.status();

  // --- 2. PF-partition: pivot = time (mode 0); the remaining four
  //        parameters split into (phi1, phi2 | m1, m2).
  auto partition = m2td::core::MakePartition(5, /*pivot_modes=*/{0});
  M2TD_CHECK(partition.ok()) << partition.status();

  // --- 3 + 4. Sub-ensembles, stitch, decompose, score — one call.
  auto m2td_outcome = m2td::core::RunM2td(
      model->get(), *ground_truth, *partition,
      m2td::core::M2tdMethod::kSelect, /*rank=*/5,
      m2td::core::SubEnsembleOptions{});
  M2TD_CHECK(m2td_outcome.ok()) << m2td_outcome.status();

  // --- 5. Random sampling with the same number of simulations.
  const std::uint64_t budget =
      m2td_outcome->budget_cells / (*model)->space().Resolution(0);
  auto random_outcome = m2td::core::RunConventional(
      model->get(), *ground_truth,
      m2td::ensemble::ConventionalScheme::kRandom, budget, /*rank=*/5,
      /*seed=*/42);
  M2TD_CHECK(random_outcome.ok()) << random_outcome.status();

  std::cout << "\nSimulation budget: " << budget << " runs ("
            << m2td_outcome->budget_cells << " tensor cells)\n";
  std::cout << "M2TD-SELECT accuracy:     " << m2td_outcome->accuracy
            << "  (join tensor nnz " << m2td_outcome->nnz << ")\n";
  std::cout << "Random sampling accuracy: " << random_outcome->accuracy
            << "\n";
  std::cout << "\nThe partition-stitch ensemble reconstructs the full "
            << (*model)->space().NumCells()
            << "-cell space orders of magnitude better from the same "
               "budget.\n";
  return 0;
}
