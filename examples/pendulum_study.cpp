// Pendulum ensemble study: the workflow a simulation analyst would run.
//
// Walks the full public API surface on the double pendulum:
//   - inspect the parameter space and the ensemble budget arithmetic,
//   - compare all three M2TD variants and all three conventional samplers,
//   - examine the effect of the pivot choice (Table VIII style),
//   - persist the stitched join tensor and the result table to disk.
//
// Build & run:  ./build/examples/pendulum_study [output_dir]

#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "core/je_stitch.h"
#include "core/m2td.h"
#include "core/pf_partition.h"
#include "core/pivot_selection.h"
#include "ensemble/sampling.h"
#include "ensemble/simulation_model.h"
#include "io/table.h"
#include "io/tensor_io.h"
#include "util/logging.h"

int main(int argc, char** argv) {
  const std::string out_dir = argc > 1 ? argv[1] : "pendulum_study_out";
  std::filesystem::create_directories(out_dir);

  m2td::ensemble::ModelOptions options;
  options.parameter_resolution = 12;
  options.time_resolution = 12;
  auto model = m2td::ensemble::MakeDoublePendulumModel(options);
  M2TD_CHECK(model.ok()) << model.status();

  const m2td::ensemble::ParameterSpace& space = (*model)->space();
  std::cout << "Parameter space of '" << (*model)->name() << "':\n";
  for (std::size_t m = 0; m < space.num_modes(); ++m) {
    const auto& def = space.def(m);
    std::cout << "  mode " << m << ": " << def.name << " in ["
              << def.min_value << ", " << def.max_value << "], "
              << def.resolution << " values\n";
  }
  std::cout << "Full simulation space: " << space.NumCells() << " cells; a "
            << "budget of 2*" << space.Resolution(1) << "^2 = "
            << 2 * space.Resolution(1) * space.Resolution(1)
            << " simulations covers "
            << 100.0 * 2 * space.Resolution(1) * space.Resolution(1) /
                   static_cast<double>(space.NumCells() / space.Resolution(0))
            << "% of the parameter grid.\n\n";

  auto ground_truth = m2td::ensemble::BuildFullTensor(model->get());
  M2TD_CHECK(ground_truth.ok()) << ground_truth.status();

  // --- Method comparison at the default pivot (time). ---
  auto partition = m2td::core::MakePartition(5, {0});
  M2TD_CHECK(partition.ok()) << partition.status();

  m2td::io::TablePrinter results(
      {"Scheme", "Accuracy", "Decompose (ms)", "nnz"});
  std::uint64_t m2td_cells = 0;
  for (m2td::core::M2tdMethod method :
       {m2td::core::M2tdMethod::kAvg, m2td::core::M2tdMethod::kConcat,
        m2td::core::M2tdMethod::kSelect}) {
    auto outcome = m2td::core::RunM2td(model->get(), *ground_truth,
                                       *partition, method, /*rank=*/5, {});
    M2TD_CHECK(outcome.ok()) << outcome.status();
    m2td_cells = outcome->budget_cells;
    results.AddRow({outcome->scheme,
                    m2td::io::TablePrinter::Cell(outcome->accuracy, 3),
                    m2td::io::TablePrinter::Cell(
                        outcome->decompose_seconds * 1e3, 1),
                    std::to_string(outcome->nnz)});
  }
  const std::uint64_t budget = m2td_cells / space.Resolution(0);
  for (m2td::ensemble::ConventionalScheme scheme :
       {m2td::ensemble::ConventionalScheme::kRandom,
        m2td::ensemble::ConventionalScheme::kGrid,
        m2td::ensemble::ConventionalScheme::kSlice}) {
    auto outcome = m2td::core::RunConventional(
        model->get(), *ground_truth, scheme, budget, /*rank=*/5, /*seed=*/7);
    M2TD_CHECK(outcome.ok()) << outcome.status();
    results.AddRow({outcome->scheme,
                    m2td::io::TablePrinter::SciCell(outcome->accuracy),
                    m2td::io::TablePrinter::Cell(
                        outcome->decompose_seconds * 1e3, 1),
                    std::to_string(outcome->nnz)});
  }
  std::cout << "Scheme comparison (rank 5, budget " << budget
            << " simulations):\n";
  results.Print(std::cout);

  // --- Pivot sensitivity: time vs the mass of the first pendulum. ---
  std::cout << "\nPivot sensitivity (M2TD-SELECT):\n";
  for (const auto& [label, pivot, side1] :
       std::vector<std::tuple<std::string, std::size_t,
                              std::vector<std::size_t>>>{
           {"t", 0, {1, 3}}, {"m1", 3, {1, 0}}}) {
    auto p = m2td::core::MakePartition(5, {pivot}, side1);
    M2TD_CHECK(p.ok()) << p.status();
    auto outcome =
        m2td::core::RunM2td(model->get(), *ground_truth, *p,
                            m2td::core::M2tdMethod::kSelect, /*rank=*/5, {});
    M2TD_CHECK(outcome.ok()) << outcome.status();
    std::cout << "  pivot " << label << ": accuracy "
              << m2td::io::TablePrinter::Cell(outcome->accuracy, 3) << "\n";
  }

  // --- Data-driven pivot ranking (no ground truth needed). ---
  auto pivot_scores = m2td::core::RankPivotChoices(model->get());
  M2TD_CHECK(pivot_scores.ok()) << pivot_scores.status();
  std::cout << "\nPivot candidates by probe alignment (cheap pre-budget "
               "heuristic):\n";
  for (const auto& score : *pivot_scores) {
    std::cout << "  " << space.def(score.mode).name << ": alignment "
              << m2td::io::TablePrinter::Cell(score.alignment, 3) << " ("
              << score.probe_cells << " probe cells)\n";
  }

  // --- Persist artifacts: the stitched join tensor and the table. ---
  auto subs = m2td::core::BuildSubEnsembles(model->get(), *partition, {});
  M2TD_CHECK(subs.ok()) << subs.status();
  auto join = m2td::core::JeStitch(*subs, *partition, space.Shape(), {});
  M2TD_CHECK(join.ok()) << join.status();
  const std::string join_path = out_dir + "/join_tensor.bin";
  M2TD_CHECK(m2td::io::SaveSparseBinary(*join, join_path).ok());
  M2TD_CHECK(results.WriteCsv(out_dir + "/scheme_comparison.csv").ok());

  // Round-trip sanity: reload and verify.
  auto reloaded = m2td::io::LoadSparseBinary(join_path);
  M2TD_CHECK(reloaded.ok()) << reloaded.status();
  M2TD_CHECK(reloaded->NumNonZeros() == join->NumNonZeros());

  std::cout << "\nArtifacts written to " << out_dir << "/ (join tensor: "
            << join->NumNonZeros() << " nnz, "
            << std::filesystem::file_size(join_path) / 1024 << " KiB)\n";
  return 0;
}
