// Epidemic ensemble study — the paper's introductory motivation made
// concrete: a decision maker explores SEIR intervention scenarios
// (transmission rate beta standing in for contact restrictions, gamma for
// treatment capacity) under a fixed simulation budget, and needs the
// ensemble tensor analysis to stay accurate despite sparsity.
//
// Build & run:  ./build/examples/epidemic_study

#include <iostream>

#include "core/analysis.h"
#include "core/experiment.h"
#include "core/m2td.h"
#include "core/pf_partition.h"
#include "ensemble/sampling.h"
#include "ensemble/simulation_model.h"
#include "io/table.h"
#include "util/logging.h"

int main() {
  m2td::ensemble::ModelOptions options;
  options.parameter_resolution = 10;
  options.time_resolution = 10;
  options.record_every = 10;
  auto model = m2td::ensemble::MakeSeirModel(options);
  M2TD_CHECK(model.ok()) << model.status();

  const auto& space = (*model)->space();
  std::cout << "SEIR scenario space (" << space.NumCells() << " cells):\n";
  for (std::size_t m = 0; m < space.num_modes(); ++m) {
    std::cout << "  " << space.def(m).name << " in [" << space.def(m).min_value
              << ", " << space.def(m).max_value << "]\n";
  }

  auto ground_truth = m2td::ensemble::BuildFullTensor(model->get());
  M2TD_CHECK(ground_truth.ok()) << ground_truth.status();

  // Partition: pivot on time; S1 varies the disease course (beta, sigma),
  // S2 the response side (gamma, i0).
  auto partition = m2td::core::MakePartition(5, {0}, {1, 2});
  M2TD_CHECK(partition.ok()) << partition.status();

  m2td::io::TablePrinter table({"Scheme", "Accuracy"});
  std::uint64_t budget_cells = 0;
  for (auto method : {m2td::core::M2tdMethod::kSelect,
                      m2td::core::M2tdMethod::kConcat}) {
    auto outcome = m2td::core::RunM2td(model->get(), *ground_truth,
                                       *partition, method, /*rank=*/5, {});
    M2TD_CHECK(outcome.ok()) << outcome.status();
    budget_cells = outcome->budget_cells;
    table.AddRow({outcome->scheme,
                  m2td::io::TablePrinter::Cell(outcome->accuracy, 3)});
  }
  const std::uint64_t budget = budget_cells / space.Resolution(0);
  auto random_outcome = m2td::core::RunConventional(
      model->get(), *ground_truth, m2td::ensemble::ConventionalScheme::kRandom,
      budget, /*rank=*/5, /*seed=*/3);
  M2TD_CHECK(random_outcome.ok()) << random_outcome.status();
  table.AddRow({random_outcome->scheme,
                m2td::io::TablePrinter::SciCell(random_outcome->accuracy)});

  std::cout << "\nScheme comparison at a budget of " << budget
            << " simulations:\n";
  table.Print(std::cout);

  // What drives the ensemble? Inspect the strongest patterns.
  auto subs = m2td::core::BuildSubEnsembles(model->get(), *partition, {});
  M2TD_CHECK(subs.ok()) << subs.status();
  m2td::core::M2tdOptions m2td_options;
  m2td_options.ranks = std::vector<std::uint64_t>(5, 3);
  auto decomposition = m2td::core::M2tdDecompose(*subs, *partition,
                                                 space.Shape(), m2td_options);
  M2TD_CHECK(decomposition.ok()) << decomposition.status();
  auto patterns =
      m2td::core::ExtractModePatterns(decomposition->tucker, 2);
  M2TD_CHECK(patterns.ok()) << patterns.status();
  std::cout << "\nDominant scenario patterns:\n"
            << m2td::core::DescribePatterns(*patterns, space);
  std::cout << "\nReading: the heavy beta/gamma loadings identify the\n"
               "transmission/recovery regimes that most distinguish the\n"
               "scenarios from the observed reference epidemic.\n";
  return 0;
}
