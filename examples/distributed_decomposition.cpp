// Distributed decomposition demo: D-M2TD on the in-process MapReduce
// engine.
//
// Shows the three-phase structure of Section VI-D — parallel sub-tensor
// decomposition, parallel JE-stitching, parallel core recovery — with
// per-phase timing and shuffle volumes, and verifies the distributed
// result is identical to the single-threaded M2TD decomposition.
//
// Build & run:  ./build/examples/distributed_decomposition [workers]

#include <cstdlib>
#include <iostream>
#include <string>

#include "core/dm2td.h"
#include "core/experiment.h"
#include "core/m2td.h"
#include "core/pf_partition.h"
#include "ensemble/simulation_model.h"
#include "io/table.h"
#include "tensor/tucker.h"
#include "util/logging.h"

int main(int argc, char** argv) {
  const int workers = argc > 1 ? std::atoi(argv[1]) : 4;
  M2TD_CHECK(workers > 0) << "workers must be positive";

  m2td::ensemble::ModelOptions options;
  options.parameter_resolution = 12;
  options.time_resolution = 12;
  auto model = m2td::ensemble::MakeTriplePendulumModel(options);
  M2TD_CHECK(model.ok()) << model.status();

  auto partition = m2td::core::MakePartition(5, {0});
  M2TD_CHECK(partition.ok()) << partition.status();
  auto subs = m2td::core::BuildSubEnsembles(model->get(), *partition, {});
  M2TD_CHECK(subs.ok()) << subs.status();
  std::cout << "Sub-ensembles: " << subs->x1.NumNonZeros() << " + "
            << subs->x2.NumNonZeros() << " cells ("
            << subs->cells_evaluated << " simulated)\n\n";

  // --- Distributed decomposition. ---
  m2td::core::DM2tdOptions dist_options;
  dist_options.method = m2td::core::M2tdMethod::kSelect;
  dist_options.ranks = m2td::core::UniformRanks(**model, 5);
  dist_options.num_workers = workers;
  auto dist = m2td::core::DM2tdDecompose(*subs, *partition,
                                         (*model)->space().Shape(),
                                         dist_options);
  M2TD_CHECK(dist.ok()) << dist.status();

  m2td::io::TablePrinter phases({"Phase", "map (ms)", "shuffle (ms)",
                                 "reduce (ms)", "intermediate pairs"});
  auto add_phase = [&phases](const std::string& name,
                             const m2td::mapreduce::JobStats& stats) {
    phases.AddRow({name,
                   m2td::io::TablePrinter::Cell(stats.map_seconds * 1e3, 1),
                   m2td::io::TablePrinter::Cell(
                       stats.shuffle_seconds * 1e3, 1),
                   m2td::io::TablePrinter::Cell(
                       stats.reduce_seconds * 1e3, 1),
                   std::to_string(stats.intermediate_pairs)});
  };
  add_phase("1: sub-tensor decomposition", dist->phase1);
  add_phase("2: JE-stitching", dist->phase2);
  add_phase("3: core recovery (N TTM jobs)", dist->phase3);
  std::cout << "D-M2TD with " << workers << " workers (join nnz "
            << dist->join_nnz << "):\n";
  phases.Print(std::cout);

  // --- Equivalence with the local pipeline. ---
  m2td::core::M2tdOptions local_options;
  local_options.method = dist_options.method;
  local_options.ranks = dist_options.ranks;
  auto local = m2td::core::M2tdDecompose(*subs, *partition,
                                         (*model)->space().Shape(),
                                         local_options);
  M2TD_CHECK(local.ok()) << local.status();
  auto r_dist = m2td::tensor::Reconstruct(dist->tucker);
  auto r_local = m2td::tensor::Reconstruct(local->tucker);
  M2TD_CHECK(r_dist.ok() && r_local.ok());
  const double diff =
      m2td::tensor::DenseTensor::FrobeniusDistance(*r_dist, *r_local);
  std::cout << "\n||distributed - local||_F = " << diff
            << "  (should be ~0: the distributed plan computes the same "
               "decomposition)\n";
  return diff < 1e-6 ? 0 : 1;
}
