// Lorenz budget study: how much simulation budget does a chaotic system
// need before its ensemble tensor becomes analyzable?
//
// Sweeps the sub-ensemble cell density (the fraction of the P x E cross
// product actually simulated) for the Lorenz system and records, for both
// plain join and zero-join stitching, the reconstruction accuracy — the
// Table V phenomenon as a budget-accuracy curve, written as CSV for
// plotting.
//
// Build & run:  ./build/examples/lorenz_budget_study [output.csv]

#include <iostream>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "core/m2td.h"
#include "core/pf_partition.h"
#include "ensemble/simulation_model.h"
#include "io/table.h"
#include "util/logging.h"

int main(int argc, char** argv) {
  const std::string csv_path =
      argc > 1 ? argv[1] : "lorenz_budget_study.csv";

  m2td::ensemble::ModelOptions options;
  options.parameter_resolution = 10;
  options.time_resolution = 10;
  auto model = m2td::ensemble::MakeLorenzModel(options);
  M2TD_CHECK(model.ok()) << model.status();
  std::cout << "System: " << (*model)->name()
            << " (modes t, z, sigma, beta, rho)\n";

  auto ground_truth = m2td::ensemble::BuildFullTensor(model->get());
  M2TD_CHECK(ground_truth.ok()) << ground_truth.status();

  auto partition = m2td::core::MakePartition(5, {0});
  M2TD_CHECK(partition.ok()) << partition.status();

  m2td::io::TablePrinter curve({"cell_density", "simulated_cells",
                                "join_accuracy", "join_nnz",
                                "zerojoin_accuracy", "zerojoin_nnz"});

  for (const double density : {1.0, 0.7, 0.5, 0.3, 0.2, 0.1}) {
    m2td::core::SubEnsembleOptions sub_options;
    sub_options.cell_density = density;
    sub_options.seed = 5;

    std::vector<std::string> row = {
        m2td::io::TablePrinter::Cell(density, 2)};
    bool first = true;
    for (const bool zero_join : {false, true}) {
      m2td::core::StitchOptions stitch;
      stitch.zero_join = zero_join;
      auto outcome = m2td::core::RunM2td(model->get(), *ground_truth,
                                         *partition,
                                         m2td::core::M2tdMethod::kSelect,
                                         /*rank=*/5, sub_options, stitch);
      M2TD_CHECK(outcome.ok()) << outcome.status();
      if (first) {
        row.push_back(std::to_string(outcome->budget_cells));
        first = false;
      }
      row.push_back(m2td::io::TablePrinter::Cell(outcome->accuracy, 4));
      row.push_back(std::to_string(outcome->nnz));
    }
    curve.AddRow(row);
  }

  curve.Print(std::cout);
  M2TD_CHECK(curve.WriteCsv(csv_path).ok());
  std::cout << "\nCurve written to " << csv_path
            << ". Expected: accuracy falls with density; the zero-join\n"
               "column dominates the plain join column once the\n"
               "sub-ensembles become sparse.\n";
  return 0;
}
