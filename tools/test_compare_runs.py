#!/usr/bin/env python3
"""Tests for tools/compare_runs.py (the run-diff gate).

Exercises both report flavors (schema-versioned run reports and legacy
BENCH json), the pass path, and each fatal gate: wall-time slowdown,
peak-RSS growth, allocation growth, a phase vanishing from the current
run, and a report with a newer schema_version than the tool supports.
Runs the tool in-process (imported as a module) so failures carry
Python tracebacks instead of just exit codes.
"""

import copy
import importlib.util
import json
import os
import sys
import tempfile
import unittest

_TOOLS_DIR = os.path.dirname(os.path.abspath(__file__))


def _load_compare_runs():
    spec = importlib.util.spec_from_file_location(
        "compare_runs", os.path.join(_TOOLS_DIR, "compare_runs.py"))
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


compare_runs = _load_compare_runs()


def run_report(peak_rss=100 * 1048576, alloc=50 * 1048576,
               smoke_us=10.0, phase_seconds=1.0, phase_count=100):
    """A minimal but schema-complete run report for the fields the tool
    reads; smoke_us/phase_seconds feed the two wall-time sources."""
    return {
        "schema_version": 1,
        "kind": "m2td_run_report",
        "tool": "test",
        "flags": {
            "result.smoke_sparse_mode_product_us_per_call": f"{smoke_us:.17g}",
        },
        "phases": [
            {"name": "sparse_mode_product", "count": phase_count,
             "wall_seconds": phase_seconds, "cpu_seconds": phase_seconds,
             "alloc_bytes": 0, "alloc_count": 0},
        ],
        "resources": {
            "peak_rss_bytes": peak_rss,
            "alloc_bytes_total": alloc,
        },
    }


def bench_json(smoke_us=10.0, phase_seconds=1.0, phase_count=100):
    """The legacy BENCH_<name>.json shape."""
    return {
        "bench": "test",
        "results": {
            "smoke_sparse_mode_product_us_per_call": smoke_us,
        },
        "phases": {
            "sparse_mode_product": {"total_seconds": phase_seconds,
                                    "count": phase_count},
        },
    }


class CompareRunsTest(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self._tmp.cleanup)

    def _write(self, name, data):
        path = os.path.join(self._tmp.name, name)
        with open(path, "w") as f:
            json.dump(data, f)
        return path

    def _run(self, baseline, current, *extra):
        argv = [
            self._write("baseline.json", baseline),
            self._write("current.json", current),
            "--phases", "sparse_mode_product", *extra,
        ]
        old_argv = sys.argv
        sys.argv = ["compare_runs.py"] + argv
        try:
            return compare_runs.main()
        finally:
            sys.argv = old_argv

    def test_identical_run_reports_pass(self):
        self.assertEqual(self._run(run_report(), run_report()), 0)

    def test_slowdown_within_tolerance_passes(self):
        self.assertEqual(
            self._run(run_report(smoke_us=10.0), run_report(smoke_us=11.5)),
            0)

    def test_wall_time_regression_fails(self):
        self.assertEqual(
            self._run(run_report(smoke_us=10.0), run_report(smoke_us=12.5)),
            1)

    def test_peak_rss_inflated_25_percent_fails(self):
        baseline = run_report(peak_rss=100 * 1048576)
        inflated = run_report(peak_rss=125 * 1048576)
        self.assertEqual(self._run(baseline, inflated), 1)

    def test_alloc_growth_beyond_tolerance_fails(self):
        baseline = run_report(alloc=100 * 1048576)
        hungry = run_report(alloc=140 * 1048576)  # +40% > default +30%
        self.assertEqual(self._run(baseline, hungry), 1)

    def test_alloc_not_counted_is_skipped(self):
        baseline = run_report(alloc=0)
        current = run_report(alloc=10 * 1048576)
        self.assertEqual(self._run(baseline, current), 0)

    def test_missing_phase_in_current_fails(self):
        current = run_report()
        current["flags"] = {}
        current["phases"] = []
        self.assertEqual(self._run(run_report(), current), 1)

    def test_phase_absent_from_baseline_is_skipped(self):
        baseline = run_report()
        baseline["flags"] = {}
        baseline["phases"] = []
        self.assertEqual(self._run(baseline, run_report()), 0)

    def test_newer_schema_version_is_refused(self):
        newer = run_report()
        newer["schema_version"] = compare_runs.SUPPORTED_SCHEMA_VERSION + 1
        with self.assertRaises(SystemExit):
            self._run(run_report(), newer)

    def test_falls_back_to_phase_totals_when_smoke_absent(self):
        # No smoke keys: a 2x slower per-call aggregate must still trip.
        baseline = run_report(phase_seconds=1.0)
        slower = run_report(phase_seconds=2.0)
        for report in (baseline, slower):
            report["flags"] = {}
        self.assertEqual(self._run(baseline, slower), 1)

    def test_mixed_sources_are_never_compared(self):
        # Baseline has a smoke key, current does not: both must fall back
        # to phase totals (which agree), not compare smoke vs aggregate.
        baseline = run_report(smoke_us=10.0, phase_seconds=1.0)
        current = copy.deepcopy(baseline)
        current["flags"] = {}
        self.assertEqual(self._run(baseline, current), 0)

    def test_legacy_bench_json_pass_and_fail(self):
        self.assertEqual(self._run(bench_json(), bench_json()), 0)
        self.assertEqual(
            self._run(bench_json(smoke_us=10.0), bench_json(smoke_us=13.0)),
            1)

    def test_legacy_bench_json_skips_resource_gates(self):
        # Legacy files carry no resources section; only wall time gates.
        self.assertEqual(self._run(bench_json(), bench_json()), 0)

    def test_custom_tolerance_is_respected(self):
        self.assertEqual(
            self._run(run_report(smoke_us=10.0), run_report(smoke_us=14.0),
                      "--tolerance", "0.50"),
            0)

    @staticmethod
    def _with_hosvd_results(report, fast_us=50.0, slow_us=500.0, gap=0.005):
        report["flags"]["result.smoke_randomized_hosvd_us_per_call"] = (
            f"{fast_us:.17g}")
        report["flags"]["result.smoke_deterministic_hosvd_us_per_call"] = (
            f"{slow_us:.17g}")
        report["flags"]["result.randomized_hosvd_fit_gap"] = f"{gap:.17g}"
        return report

    def test_assert_faster_passes_when_fast_wins(self):
        baseline = self._with_hosvd_results(run_report())
        current = self._with_hosvd_results(run_report())
        self.assertEqual(
            self._run(baseline, current, "--assert_faster",
                      "randomized_hosvd:deterministic_hosvd"),
            0)

    def test_assert_faster_fails_when_sketch_is_slower(self):
        baseline = self._with_hosvd_results(run_report())
        current = self._with_hosvd_results(run_report(), fast_us=600.0)
        self.assertEqual(
            self._run(baseline, current, "--assert_faster",
                      "randomized_hosvd:deterministic_hosvd"),
            1)

    def test_assert_faster_fails_when_key_missing(self):
        # A vanished smoke key means the measurement was dropped — the
        # gate must fail rather than silently stop checking.
        baseline = self._with_hosvd_results(run_report())
        self.assertEqual(
            self._run(baseline, run_report(), "--assert_faster",
                      "randomized_hosvd:deterministic_hosvd"),
            1)

    def test_max_result_within_limit_passes(self):
        baseline = self._with_hosvd_results(run_report())
        current = self._with_hosvd_results(run_report(), gap=0.01)
        self.assertEqual(
            self._run(baseline, current, "--max_result",
                      "randomized_hosvd_fit_gap:0.02"),
            0)

    def test_max_result_exceeding_limit_fails(self):
        baseline = self._with_hosvd_results(run_report())
        current = self._with_hosvd_results(run_report(), gap=0.05)
        self.assertEqual(
            self._run(baseline, current, "--max_result",
                      "randomized_hosvd_fit_gap:0.02"),
            1)

    def test_max_result_missing_key_fails(self):
        self.assertEqual(
            self._run(run_report(), run_report(), "--max_result",
                      "randomized_hosvd_fit_gap:0.02"),
            1)

    def test_max_result_on_legacy_bench_json(self):
        good = bench_json()
        good["results"]["randomized_hosvd_fit_gap"] = 0.001
        self.assertEqual(
            self._run(bench_json(), good, "--max_result",
                      "randomized_hosvd_fit_gap:0.02"),
            0)
        bad = bench_json()
        bad["results"]["randomized_hosvd_fit_gap"] = 0.5
        self.assertEqual(
            self._run(bench_json(), bad, "--max_result",
                      "randomized_hosvd_fit_gap:0.02"),
            1)

    @staticmethod
    def _with_dispatch(report, isa):
        report["hardware"] = {"hardware_threads": 1,
                              "page_size_bytes": 4096,
                              "cpu_features": [], "simd_dispatch": isa,
                              "fast_kernels": False}
        return report

    def test_matching_simd_dispatch_passes(self):
        baseline = self._with_dispatch(run_report(), "avx2")
        current = self._with_dispatch(run_report(), "avx2")
        self.assertEqual(self._run(baseline, current), 0)

    def test_simd_dispatch_mismatch_is_refused(self):
        # Diffing an avx2 run against a scalar run would report the ISA
        # delta as a perf regression; the tool must refuse outright.
        baseline = self._with_dispatch(run_report(), "avx2")
        current = self._with_dispatch(run_report(), "scalar")
        with self.assertRaises(SystemExit):
            self._run(baseline, current)

    def test_simd_dispatch_mismatch_override(self):
        baseline = self._with_dispatch(run_report(), "avx2")
        current = self._with_dispatch(run_report(), "scalar")
        self.assertEqual(
            self._run(baseline, current, "--allow_isa_mismatch"), 0)

    def test_missing_simd_dispatch_is_tolerated(self):
        # Reports from before the hardware.simd_dispatch field existed
        # (or legacy BENCH json) must keep diffing as usual.
        baseline = run_report()  # no hardware section at all
        current = self._with_dispatch(run_report(), "avx2")
        self.assertEqual(self._run(baseline, current), 0)
        self.assertEqual(self._run(current, baseline), 0)

    def test_malformed_gate_specs_are_refused(self):
        with self.assertRaises(SystemExit):
            self._run(run_report(), run_report(), "--assert_faster",
                      "no-colon-here")
        with self.assertRaises(SystemExit):
            self._run(run_report(), run_report(), "--max_result",
                      "randomized_hosvd_fit_gap:not-a-number")


if __name__ == "__main__":
    unittest.main()
