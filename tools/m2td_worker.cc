// m2td_worker — one worker process of the multi-process D-M2TD backend.
//
// Two attachment modes share one protocol (mapreduce/transport.h frames):
//
//  - pipe (default): spawned by the coordinator (core/dm2td_dist.cc) with
//    stdin/stdout connected to the control pipes;
//  - socket (--connect=host:port): dials the coordinator's listener,
//    identifies itself with a hello frame, and — when the connection
//    drops mid-run — redials under a capped seeded exponential backoff
//    for up to --redial_ms before giving up. Durable frames (hello, done,
//    fail) ride an outbox that is flushed after every successful redial,
//    so a result computed during an outage still reaches the
//    coordinator; heartbeats are droppable.
//
// Protocol:
//   coordinator -> worker:  "task ..." (see dm2td_tasks::EncodeTaskFrame)
//                           "cancel <phase> <index> <attempt>"
//                           "quit"
//   worker -> coordinator:  "hello <id>", "hb <id>" (heartbeat thread),
//                           "done <phase> <index> <attempt>",
//                           "fail <phase> <index> <attempt> <code>\n<msg>"
//
// Tasks run on a dedicated runner thread under a per-task CancelSource,
// so a cancel frame (the losing side of a speculative race) interrupts
// the task mid-body; the worker acknowledges with a kCancelled fail
// frame and becomes idle again. All intermediate data flows through the
// durable ShuffleStore in --job_dir; the control channel carries only
// frames, so a SIGKILL at any instant loses at most one uncommitted task
// attempt. A frame that fails to decode is logged (header bytes, hex)
// and the worker exits with dm2td_tasks::kWorkerExitMalformedFrame. On
// exit the worker writes its metrics (worker<id>.metrics.json) and spans
// (worker<id>.spans.tsv, epoch-shifted by --trace_epoch_us onto the
// coordinator's clock) for the coordinator to merge into one trace.

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/dm2td_tasks.h"
#include "io/chunk_store.h"
#include "mapreduce/transport.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "robust/cancel.h"
#include "robust/failpoint.h"
#include "robust/netfault.h"
#include "robust/retry.h"
#include "util/flags.h"

namespace {

using m2td::Result;
using m2td::Status;
namespace tasks = m2td::core::dm2td_tasks;
namespace transport = m2td::mapreduce::transport;

/// First bytes of a frame as "0x61 0x62 ...": what the malformed-frame
/// exit path logs so the offending header is diagnosable post mortem.
std::string HexHeader(const std::string& frame, std::size_t limit = 16) {
  std::ostringstream out;
  const std::size_t n = std::min(frame.size(), limit);
  for (std::size_t i = 0; i < n; ++i) {
    if (i != 0) out << ' ';
    out << "0x" << std::hex << std::setw(2) << std::setfill('0')
        << (static_cast<unsigned>(frame[i]) & 0xFF);
  }
  if (frame.size() > n) out << " ... (" << std::dec << frame.size()
                            << " bytes)";
  return out.str();
}

/// The worker's side of the control channel. Writes come from three
/// threads (main, runner, heartbeat) and are serialized by `mu_`; the
/// connection object is only ever swapped by the main thread (the sole
/// reader), which also holds `mu_` across the swap so no writer observes
/// a half-replaced channel.
class CoordinatorLink {
 public:
  void InitPipe() {
    conn_ = transport::Connection::FromFds(0, 1, "coordinator");
  }

  /// Socket mode: first dial + hello. The redial budget and backoff seed
  /// also govern every later Redial().
  Status InitSocket(const std::string& address, std::int64_t worker_id,
                    double redial_ms) {
    address_ = address;
    redial_ms_ = redial_ms;
    policy_.max_retries = 1 << 20;  // budget-bounded, not count-bounded
    policy_.base_backoff_ms = 20.0;
    policy_.max_backoff_ms = 500.0;
    policy_.jitter_fraction = 0.5;
    policy_.seed = 1000003ULL * static_cast<std::uint64_t>(worker_id + 1);
    hello_ = "hello " + std::to_string(worker_id);
    std::lock_guard<std::mutex> lock(mu_);
    M2TD_ASSIGN_OR_RETURN(
        conn_, transport::DialWithBackoff(address_, "coordinator", policy_,
                                          redial_ms_,
                                          m2td::robust::CancelToken()));
    socket_ = true;
    outbox_.push_back(hello_);
    return FlushLocked();
  }

  bool socket() const { return socket_; }

  /// Queues (durable) or attempts (droppable) one frame. Durable frames
  /// survive a dead connection in the outbox until a redial flushes them;
  /// droppable ones are heartbeat-class and vanish with the outage.
  void Send(const std::string& frame, bool durable) {
    std::lock_guard<std::mutex> lock(mu_);
    if (durable) {
      outbox_.push_back(frame);
      (void)FlushLocked();
      return;
    }
    if (!outbox_.empty() && !FlushLocked().ok()) return;
    if (outbox_.empty() && conn_.connected()) {
      (void)conn_.WriteFrame(frame, kWriteDeadlineMs);
    }
  }

  /// Main thread only. Blocks for the next frame.
  Result<std::string> Read() { return conn_.ReadFrame(); }

  /// Main thread only: replaces a torn socket connection, re-identifies,
  /// and flushes everything queued during the outage (in order).
  Status Redial() {
    std::lock_guard<std::mutex> lock(mu_);
    conn_.Close();
    M2TD_ASSIGN_OR_RETURN(
        conn_, transport::DialWithBackoff(address_, "coordinator", policy_,
                                          redial_ms_,
                                          m2td::robust::CancelToken()));
    // hello must precede any queued done/fail so the coordinator can
    // rebind the identity before routing task frames.
    outbox_.push_front(hello_);
    return FlushLocked();
  }

 private:
  static constexpr double kWriteDeadlineMs = 5000.0;

  Status FlushLocked() {
    while (!outbox_.empty()) {
      M2TD_RETURN_IF_ERROR(conn_.WriteFrame(outbox_.front(),
                                            kWriteDeadlineMs));
      outbox_.pop_front();
    }
    return Status::OK();
  }

  std::mutex mu_;
  transport::Connection conn_;
  std::deque<std::string> outbox_;
  bool socket_ = false;
  std::string address_;
  std::string hello_;
  double redial_ms_ = 10000.0;
  m2td::robust::RetryPolicy policy_;
};

/// Task execution state shared between the main (frame-routing) thread
/// and the runner thread.
struct TaskState {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<tasks::TaskRequest> queue;
  bool quitting = false;
  bool has_running = false;
  tasks::TaskRequest running;
  /// Owned by the runner's stack frame while has_running; the main
  /// thread fires it (under mu) to honour a cancel frame.
  m2td::robust::CancelSource* running_source = nullptr;
};

std::string FrameHeader(const tasks::TaskRequest& task) {
  return task.phase + " " + std::to_string(task.index) + " " +
         std::to_string(task.attempt);
}

void RunnerLoop(TaskState* state, CoordinatorLink* link,
                const m2td::io::ShuffleStore* store,
                const tasks::DistJobConfig* config) {
  while (true) {
    tasks::TaskRequest task;
    m2td::robust::CancelSource source;
    {
      std::unique_lock<std::mutex> lock(state->mu);
      state->cv.wait(lock, [state] {
        return state->quitting || !state->queue.empty();
      });
      if (state->quitting) return;
      task = std::move(state->queue.front());
      state->queue.pop_front();
      state->has_running = true;
      state->running = task;
      state->running_source = &source;
    }
    Status outcome;
    {
      m2td::robust::CancelScope scope(source.token());
      outcome = tasks::RunDistTask(*store, *config, task);
    }
    {
      std::lock_guard<std::mutex> lock(state->mu);
      state->has_running = false;
      state->running_source = nullptr;
    }
    const std::string header = FrameHeader(task);
    if (outcome.ok()) {
      link->Send("done " + header, /*durable=*/true);
    } else {
      // A cancelled attempt (speculative race lost) acknowledges with
      // kCancelled — the coordinator frees the worker without a retry.
      std::string message = outcome.message();
      if (message.size() > 4096) message.resize(4096);
      link->Send("fail " + header + " " +
                     std::to_string(static_cast<int>(outcome.code())) + "\n" +
                     message,
                 /*durable=*/true);
    }
  }
}

void ExportObservability(const std::string& job_dir, std::int64_t worker_id,
                         double epoch_delta_us) {
  const std::string base =
      job_dir + "/worker" + std::to_string(worker_id);
  {
    std::ofstream out(base + ".metrics.json");
    if (out) m2td::obs::WriteMetricsJson(out);
  }
  std::ofstream out(base + ".spans.tsv");
  if (!out) return;
  for (const m2td::obs::SpanRecord& span : m2td::obs::Tracer::Get().Spans()) {
    out << span.name << '\t' << (span.start_us + epoch_delta_us) << '\t'
        << span.duration_us << '\t' << span.cpu_us << '\t' << span.thread_id
        << '\t' << span.depth << '\n';
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string job_dir;
  std::int64_t worker_id = 0;
  double heartbeat_ms = 50.0;
  double trace_epoch_us = 0.0;
  std::string connect;
  double redial_ms = 10000.0;
  std::string net_faults;

  m2td::FlagParser parser(
      "m2td_worker: D-M2TD worker process (spawned by the coordinator, or "
      "attached remotely with --connect)");
  parser.AddString("job_dir", "shuffle store / job config directory",
                   &job_dir);
  parser.AddInt64("worker_id", "index within the worker pool", &worker_id);
  parser.AddDouble("heartbeat_ms", "heartbeat frame period", &heartbeat_ms);
  parser.AddDouble("trace_epoch_us",
                   "coordinator clock (µs since its tracer epoch) at spawn; "
                   "exported spans are shifted onto it",
                   &trace_epoch_us);
  parser.AddString("connect",
                   "coordinator listener host:port; empty = pipe transport "
                   "over stdin/stdout",
                   &connect);
  parser.AddDouble("redial_ms",
                   "socket transport: total budget for redialing a dropped "
                   "connection (capped seeded exponential backoff)",
                   &redial_ms);
  parser.AddString("net_faults",
                   "deterministic transport fault specs "
                   "(robust/netfault.h grammar), armed in this worker",
                   &net_faults);
  auto positional = parser.Parse(argc, argv);
  if (!positional.ok()) {
    std::cerr << positional.status() << "\n";
    return tasks::kWorkerExitBadInvocation;
  }

  m2td::obs::SetTracingEnabled(true);
  m2td::obs::SetMetricsEnabled(true);
  const double epoch_delta_us =
      trace_epoch_us - m2td::obs::Tracer::NowMicros();

  // Chaos specs ride the environment and the command line: M2TD_FAILPOINTS
  // arms task-level failure injection, M2TD_DIST_CHAOS_SLEEP_MS widens the
  // mid-shuffle-write kill window, M2TD_DIST_STRAGGLER slows one named
  // task (see dm2td_tasks.h), and M2TD_NET_FAULTS / --net_faults arm the
  // transport fault injector.
  for (const Status& armed :
       {m2td::robust::ArmFailpointsFromEnv(),
        m2td::robust::ArmNetFaultsFromEnv(),
        m2td::robust::ArmNetFaultsFromString(net_faults)}) {
    if (!armed.ok()) {
      std::cerr << "m2td_worker: " << armed << "\n";
      return tasks::kWorkerExitBadInvocation;
    }
  }

  auto store = m2td::io::ShuffleStore::Create(job_dir);
  if (!store.ok()) {
    std::cerr << "m2td_worker: " << store.status() << "\n";
    return tasks::kWorkerExitBadJob;
  }
  auto config = tasks::LoadJobConfig(job_dir + "/job.m2td");
  if (!config.ok()) {
    std::cerr << "m2td_worker: " << config.status() << "\n";
    return tasks::kWorkerExitBadJob;
  }

  CoordinatorLink link;
  if (connect.empty()) {
    link.InitPipe();
    link.Send("hello " + std::to_string(worker_id), /*durable=*/true);
  } else {
    const Status attached = link.InitSocket(connect, worker_id, redial_ms);
    if (!attached.ok()) {
      std::cerr << "m2td_worker: cannot attach to " << connect << ": "
                << attached << "\n";
      return tasks::kWorkerExitLostCoordinator;
    }
  }

  std::atomic<bool> running{true};
  std::thread heartbeat([&running, &link, worker_id, heartbeat_ms] {
    const auto period = std::chrono::duration<double, std::milli>(
        heartbeat_ms > 0 ? heartbeat_ms : 50.0);
    const std::string frame = "hb " + std::to_string(worker_id);
    while (running.load(std::memory_order_relaxed)) {
      link.Send(frame, /*durable=*/false);
      std::this_thread::sleep_for(period);
    }
  });

  TaskState state;
  std::thread runner(RunnerLoop, &state, &link, &*store, &*config);

  int code = tasks::kWorkerExitOk;
  while (true) {
    Result<std::string> frame = link.Read();
    if (!frame.ok()) {
      if (link.socket()) {
        // Disconnect is not death: redial inside the budget and resume
        // this identity (the coordinator honours the heartbeat lease).
        if (link.Redial().ok()) continue;
        std::cerr << "m2td_worker: lost coordinator at " << connect
                  << " (redial budget exhausted)\n";
        code = tasks::kWorkerExitLostCoordinator;
        break;
      }
      // Clean EOF (coordinator closed our stdin) is the normal shutdown;
      // anything else is a torn pipe.
      code = frame.status().code() == m2td::StatusCode::kNotFound
                 ? tasks::kWorkerExitOk
                 : tasks::kWorkerExitTornPipe;
      break;
    }
    if (*frame == "quit") break;

    std::istringstream in(*frame);
    std::string verb;
    in >> verb;
    if (verb == "cancel") {
      std::string phase;
      int index = -1, attempt = -1;
      if (!(in >> phase >> index >> attempt)) {
        std::cerr << "m2td_worker: malformed frame, header: "
                  << HexHeader(*frame) << "\n";
        code = tasks::kWorkerExitMalformedFrame;
        break;
      }
      std::string ack;
      {
        std::lock_guard<std::mutex> lock(state.mu);
        if (state.has_running && state.running.phase == phase &&
            state.running.index == index) {
          // The runner acknowledges via its own kCancelled fail frame.
          state.running_source->Cancel();
        } else {
          for (auto it = state.queue.begin(); it != state.queue.end(); ++it) {
            if (it->phase == phase && it->index == index) {
              ack = "fail " + FrameHeader(*it) + " " +
                    std::to_string(
                        static_cast<int>(m2td::StatusCode::kCancelled)) +
                    "\ncancelled before start";
              state.queue.erase(it);
              break;
            }
          }
        }
      }
      if (!ack.empty()) link.Send(ack, /*durable=*/true);
      continue;
    }
    if (verb != "task") {
      std::cerr << "m2td_worker: malformed frame, header: "
                << HexHeader(*frame) << "\n";
      code = tasks::kWorkerExitMalformedFrame;
      break;
    }
    Result<tasks::TaskRequest> task = tasks::DecodeTaskFrame(*frame);
    if (!task.ok()) {
      std::cerr << "m2td_worker: " << task.status()
                << "; header: " << HexHeader(*frame) << "\n";
      code = tasks::kWorkerExitMalformedFrame;
      break;
    }
    {
      std::lock_guard<std::mutex> lock(state.mu);
      // The coordinator re-sends the current assignment after a
      // reconnect; a duplicate of something already running or queued is
      // dropped, not run twice.
      bool duplicate = state.has_running &&
                       state.running.phase == task->phase &&
                       state.running.index == task->index;
      for (const tasks::TaskRequest& queued : state.queue) {
        duplicate |= queued.phase == task->phase &&
                     queued.index == task->index;
      }
      if (!duplicate) state.queue.push_back(std::move(*task));
    }
    state.cv.notify_one();
  }

  {
    std::lock_guard<std::mutex> lock(state.mu);
    state.quitting = true;
    if (state.running_source != nullptr) state.running_source->Cancel();
  }
  state.cv.notify_all();
  runner.join();
  running.store(false, std::memory_order_relaxed);
  heartbeat.join();
  ExportObservability(job_dir, worker_id, epoch_delta_us);
  return code;
}
