// m2td_worker — one worker process of the multi-process D-M2TD backend.
//
// Spawned by the coordinator (core/dm2td_dist.cc) with its stdin/stdout
// connected to the control pipes. Protocol (mapreduce/wire.h frames):
//   coordinator -> worker:  "task ..." (see dm2td_tasks::EncodeTaskFrame)
//                           "quit"
//   worker -> coordinator:  "hello <id>", "hb <id>" (heartbeat thread),
//                           "done <phase> <index> <attempt>",
//                           "fail <phase> <index> <attempt> <code>\n<msg>"
//
// All intermediate data flows through the durable ShuffleStore in
// --job_dir; the pipes carry only control frames, so a SIGKILL at any
// instant loses at most one uncommitted task attempt. On exit the worker
// writes its metrics (worker<id>.metrics.json) and spans
// (worker<id>.spans.tsv, epoch-shifted by --trace_epoch_us onto the
// coordinator's clock) for the coordinator to merge into one trace.

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/dm2td_tasks.h"
#include "io/chunk_store.h"
#include "mapreduce/wire.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "robust/failpoint.h"
#include "util/flags.h"

namespace {

using m2td::Result;
using m2td::Status;
namespace tasks = m2td::core::dm2td_tasks;
namespace wire = m2td::mapreduce::wire;

/// Serializes every frame written to the coordinator: the task loop and
/// the heartbeat thread share fd 1.
std::mutex g_write_mutex;

void Send(const std::string& frame) {
  std::lock_guard<std::mutex> lock(g_write_mutex);
  // A failed write means the coordinator is gone; the read loop will see
  // EOF and exit, so errors here are intentionally dropped.
  (void)wire::WriteFrame(1, frame);
}

void ExportObservability(const std::string& job_dir, std::int64_t worker_id,
                         double epoch_delta_us) {
  const std::string base =
      job_dir + "/worker" + std::to_string(worker_id);
  {
    std::ofstream out(base + ".metrics.json");
    if (out) m2td::obs::WriteMetricsJson(out);
  }
  std::ofstream out(base + ".spans.tsv");
  if (!out) return;
  for (const m2td::obs::SpanRecord& span : m2td::obs::Tracer::Get().Spans()) {
    out << span.name << '\t' << (span.start_us + epoch_delta_us) << '\t'
        << span.duration_us << '\t' << span.cpu_us << '\t' << span.thread_id
        << '\t' << span.depth << '\n';
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string job_dir;
  std::int64_t worker_id = 0;
  double heartbeat_ms = 50.0;
  double trace_epoch_us = 0.0;

  m2td::FlagParser parser(
      "m2td_worker: D-M2TD worker process (spawned by the coordinator)");
  parser.AddString("job_dir", "shuffle store / job config directory",
                   &job_dir);
  parser.AddInt64("worker_id", "index within the worker pool", &worker_id);
  parser.AddDouble("heartbeat_ms", "heartbeat frame period", &heartbeat_ms);
  parser.AddDouble("trace_epoch_us",
                   "coordinator clock (µs since its tracer epoch) at spawn; "
                   "exported spans are shifted onto it",
                   &trace_epoch_us);
  auto positional = parser.Parse(argc, argv);
  if (!positional.ok()) {
    std::cerr << positional.status() << "\n";
    return 2;
  }

  m2td::obs::SetTracingEnabled(true);
  m2td::obs::SetMetricsEnabled(true);
  const double epoch_delta_us =
      trace_epoch_us - m2td::obs::Tracer::NowMicros();

  // Chaos specs ride the environment: M2TD_FAILPOINTS arms task-level
  // failure injection, M2TD_DIST_CHAOS_SLEEP_MS widens the
  // mid-shuffle-write kill window (see dm2td_tasks.h).
  const Status armed = m2td::robust::ArmFailpointsFromEnv();
  if (!armed.ok()) {
    std::cerr << "m2td_worker: " << armed << "\n";
    return 2;
  }

  auto store = m2td::io::ShuffleStore::Create(job_dir);
  if (!store.ok()) {
    std::cerr << "m2td_worker: " << store.status() << "\n";
    return 3;
  }
  auto config = tasks::LoadJobConfig(job_dir + "/job.m2td");
  if (!config.ok()) {
    std::cerr << "m2td_worker: " << config.status() << "\n";
    return 3;
  }

  Send("hello " + std::to_string(worker_id));
  std::atomic<bool> running{true};
  std::thread heartbeat([&running, worker_id, heartbeat_ms] {
    const auto period = std::chrono::duration<double, std::milli>(
        heartbeat_ms > 0 ? heartbeat_ms : 50.0);
    while (running.load(std::memory_order_relaxed)) {
      Send("hb " + std::to_string(worker_id));
      std::this_thread::sleep_for(period);
    }
  });

  int code = 0;
  while (true) {
    Result<std::string> frame = wire::ReadFrame(0);
    if (!frame.ok()) {
      // Clean EOF (coordinator closed our stdin) is the normal shutdown;
      // anything else is a torn pipe.
      code = frame.status().code() == m2td::StatusCode::kNotFound ? 0 : 1;
      break;
    }
    if (*frame == "quit") break;
    Result<tasks::TaskRequest> task = tasks::DecodeTaskFrame(*frame);
    if (!task.ok()) {
      std::cerr << "m2td_worker: " << task.status() << "\n";
      code = 1;
      break;
    }
    const Status outcome = tasks::RunDistTask(*store, *config, *task);
    const std::string header = task->phase + " " +
                               std::to_string(task->index) + " " +
                               std::to_string(task->attempt);
    if (outcome.ok()) {
      Send("done " + header);
    } else {
      std::string message = outcome.message();
      if (message.size() > 4096) message.resize(4096);
      Send("fail " + header + " " +
           std::to_string(static_cast<int>(outcome.code())) + "\n" + message);
    }
  }

  running.store(false, std::memory_order_relaxed);
  heartbeat.join();
  ExportObservability(job_dir, worker_id, epoch_delta_us);
  return code;
}
