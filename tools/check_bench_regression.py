#!/usr/bin/env python3
"""Fails if hot-kernel phase timings regressed vs a committed baseline.

Compares the per-call mean (total_seconds / count) of selected phases in a
freshly produced BENCH_*.json against the baseline JSON committed at the
repo root. Per-call means are the right unit: google-benchmark adapts its
iteration counts to --benchmark_min_time, so raw phase totals (and call
counts) differ run to run even at identical speed.

Usage (what the `bench-smoke` CMake target runs):
  check_bench_regression.py --baseline BENCH_micro_kernels.json \
      --current build/BENCH_micro_kernels.json \
      --phases sparse_mode_product mode_gram --tolerance 0.20

Exit status 1 if any selected phase's per-call mean is more than
`tolerance` slower than the baseline (missing phases also fail: a phase
disappearing from the trace usually means its span was dropped, which
would silently blind this check).
"""

import argparse
import json
import sys


def smoke_seconds(bench_json, phase):
    value = bench_json.get("results", {}).get(f"smoke_{phase}_us_per_call")
    if value is not None and value > 0:
        return value * 1e-6
    return None


def phase_seconds(bench_json, phase):
    entry = bench_json.get("phases", {}).get(phase)
    if entry is None or entry.get("count", 0) <= 0:
        return None
    return entry["total_seconds"] / entry["count"]


def per_call_seconds(baseline, current, phase):
    """Returns (baseline_sec, current_sec) from a single comparable source.

    Prefers the fixed-iteration smoke measurement when BOTH runs emit it:
    its call sequence is identical every run, so the per-call mean is
    directly comparable. The aggregate phase totals are the fallback
    (valid only when baseline and current used the same benchmark
    min_time, since adaptive iteration counts shift the call mix). Never
    mixes one source's baseline with the other's current.
    """
    base, cur = smoke_seconds(baseline, phase), smoke_seconds(current, phase)
    if base is not None and cur is not None:
        return base, cur
    return phase_seconds(baseline, phase), phase_seconds(current, phase)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True,
                        help="committed baseline BENCH_*.json")
    parser.add_argument("--current", required=True,
                        help="freshly generated BENCH_*.json")
    parser.add_argument("--phases", nargs="+", required=True,
                        help="phase (span) names to compare")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="allowed fractional slowdown (0.20 = +20%%)")
    args = parser.parse_args()

    with open(args.baseline) as f:
        baseline = json.load(f)
    with open(args.current) as f:
        current = json.load(f)

    failures = []
    for phase in args.phases:
        base, cur = per_call_seconds(baseline, current, phase)
        if base is None:
            print(f"[bench-smoke] {phase}: absent from baseline, skipping")
            continue
        if cur is None:
            failures.append(f"{phase}: missing from current run")
            continue
        ratio = cur / base if base > 0 else float("inf")
        status = "OK" if ratio <= 1.0 + args.tolerance else "REGRESSED"
        print(f"[bench-smoke] {phase}: baseline {base * 1e6:.2f} us/call, "
              f"current {cur * 1e6:.2f} us/call ({ratio:.2f}x) {status}")
        if ratio > 1.0 + args.tolerance:
            failures.append(
                f"{phase}: {ratio:.2f}x baseline per-call time "
                f"(tolerance {1.0 + args.tolerance:.2f}x)")

    if failures:
        print("[bench-smoke] FAIL:", "; ".join(failures), file=sys.stderr)
        return 1
    print("[bench-smoke] all phases within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
