#!/usr/bin/env python3
"""Run-diff gate: fails when a run regressed vs a committed baseline.

Compares two run artifacts — either schema-versioned run reports
(run_report.json / RUN_REPORT_*.json, "kind": "m2td_run_report") or
legacy BENCH_*.json files — and exits nonzero when the current run is
slower or hungrier than the baseline beyond the configured tolerances.

Gates (each independently fatal):
  * wall time   per-call mean of each --phases span (prefers the
                fixed-iteration smoke_<phase>_us_per_call measurement
                when both runs carry it; falls back to aggregate phase
                totals). --tolerance, default +20%.
  * peak RSS    resources.peak_rss_bytes (run reports only).
                --rss_tolerance, default +20%.
  * allocation  resources.alloc_bytes_total (run reports only; skipped
                when either run counted zero bytes, e.g. a build
                without scratch instrumentation). --alloc_tolerance,
                default +30% — allocation volume is exact under
                M2TD_ENABLE_ALLOC_TRACKING but scratch-granular
                otherwise, so it gets more headroom than wall time.

Per-call means are the right wall-time unit: google-benchmark adapts its
iteration counts to --benchmark_min_time, so raw phase totals (and call
counts) differ run to run even at identical speed.

Two gates look only at the CURRENT run (self-checks rather than diffs):
  * --assert_faster fast:slow   the fixed-iteration smoke per-call time of
                phase `fast` must be strictly below phase `slow` — e.g.
                randomized_hosvd:deterministic_hosvd keeps the sketched
                init ahead of the exact solve it replaces.
  * --max_result key:limit      the result value `key` (a result.* flag
                in run reports / results entry in legacy BENCH files)
                must be present and <= limit — e.g.
                randomized_hosvd_fit_gap:0.02 bounds the accuracy cost
                of sketching on the paper systems.

Usage (what the `bench-smoke` CMake target runs):
  compare_runs.py RUN_REPORT_micro_kernels.json \
      build/bench/RUN_REPORT_micro_kernels.json \
      --phases sparse_mode_product mode_gram --tolerance 0.20

A phase present in the baseline but missing from the current run fails:
a span disappearing from the trace usually means its instrumentation was
dropped, which would silently blind this gate. Reports with a newer
schema_version than this tool understands are refused.

When both reports record hardware.simd_dispatch (the ISA level the SIMD
kernel table resolved to — scalar/avx2/neon), the levels must match: a
perf delta between runs dispatched at different ISA levels is a hardware
delta, not a regression. --allow_isa_mismatch overrides; reports from
before the field existed are diffed as usual.
"""

import argparse
import json
import sys

SUPPORTED_SCHEMA_VERSION = 1


def load(path):
    with open(path) as f:
        data = json.load(f)
    if data.get("kind") == "m2td_run_report":
        version = data.get("schema_version", 0)
        if version > SUPPORTED_SCHEMA_VERSION:
            raise SystemExit(
                f"[run-diff] {path}: schema_version {version} is newer than "
                f"this tool supports ({SUPPORTED_SCHEMA_VERSION}); update "
                "tools/compare_runs.py")
    return data


def is_run_report(data):
    return data.get("kind") == "m2td_run_report"


def smoke_seconds(data, phase):
    """Fixed-iteration per-call seconds, or None when the run lacks it."""
    key = f"smoke_{phase}_us_per_call"
    if is_run_report(data):
        value = data.get("flags", {}).get(f"result.{key}")
        value = float(value) if value is not None else None
    else:
        value = data.get("results", {}).get(key)
    if value is not None and value > 0:
        return value * 1e-6
    return None


def phase_seconds(data, phase):
    """Aggregate per-call seconds from the phase/span totals, or None."""
    if is_run_report(data):
        entry = next(
            (p for p in data.get("phases", []) if p.get("name") == phase),
            None)
        if entry is None or entry.get("count", 0) <= 0:
            return None
        return entry["wall_seconds"] / entry["count"]
    entry = data.get("phases", {}).get(phase)
    if entry is None or entry.get("count", 0) <= 0:
        return None
    return entry["total_seconds"] / entry["count"]


def per_call_seconds(baseline, current, phase):
    """Returns (baseline_sec, current_sec) from a single comparable source.

    Prefers the smoke measurement when BOTH runs emit it (its call
    sequence is identical every run); never mixes one source's baseline
    with the other's current.
    """
    base, cur = smoke_seconds(baseline, phase), smoke_seconds(current, phase)
    if base is not None and cur is not None:
        return base, cur
    return phase_seconds(baseline, phase), phase_seconds(current, phase)


def simd_dispatch(data):
    """hardware.simd_dispatch, or None for legacy/pre-field reports."""
    if not is_run_report(data):
        return None
    return data.get("hardware", {}).get("simd_dispatch")


def result_value(data, key):
    """A named result scalar: result.<key> flag (run report) or results
    entry (legacy BENCH). None when absent or non-numeric."""
    if is_run_report(data):
        value = data.get("flags", {}).get(f"result.{key}")
    else:
        value = data.get("results", {}).get(key)
    try:
        return float(value)
    except (TypeError, ValueError):
        return None


def resource(data, key):
    if not is_run_report(data):
        return None
    value = data.get("resources", {}).get(key)
    return value if value else None  # 0 = not measured, not "used nothing"


def check_ratio(label, base, cur, tolerance, unit, failures):
    ratio = cur / base if base > 0 else float("inf")
    status = "OK" if ratio <= 1.0 + tolerance else "REGRESSED"
    print(f"[run-diff] {label}: baseline {base:.2f} {unit}, "
          f"current {cur:.2f} {unit} ({ratio:.2f}x) {status}")
    if ratio > 1.0 + tolerance:
        failures.append(f"{label}: {ratio:.2f}x baseline "
                        f"(tolerance {1.0 + tolerance:.2f}x)")


def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("baseline", help="committed baseline report")
    parser.add_argument("current", help="freshly generated report")
    parser.add_argument("--phases", nargs="*", default=[],
                        help="phase (span) names to gate on wall time")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="allowed fractional wall-time slowdown "
                             "(0.20 = +20%%)")
    parser.add_argument("--rss_tolerance", type=float, default=0.20,
                        help="allowed fractional peak-RSS growth")
    parser.add_argument("--alloc_tolerance", type=float, default=0.30,
                        help="allowed fractional allocation-volume growth")
    parser.add_argument("--assert_faster", nargs="*", default=[],
                        metavar="FAST:SLOW",
                        help="require smoke phase FAST to be faster than "
                             "SLOW in the current run")
    parser.add_argument("--max_result", nargs="*", default=[],
                        metavar="KEY:LIMIT",
                        help="require current-run result KEY to be present "
                             "and <= LIMIT")
    parser.add_argument("--allow_isa_mismatch", action="store_true",
                        help="diff runs even when their SIMD dispatch "
                             "levels differ")
    args = parser.parse_args()

    baseline = load(args.baseline)
    current = load(args.current)

    base_isa, cur_isa = simd_dispatch(baseline), simd_dispatch(current)
    if (base_isa is not None and cur_isa is not None
            and base_isa != cur_isa):
        if not args.allow_isa_mismatch:
            raise SystemExit(
                f"[run-diff] refusing to diff: baseline SIMD dispatch "
                f"'{base_isa}' != current '{cur_isa}' — a perf delta "
                "between ISA levels is a hardware delta, not a "
                "regression (--allow_isa_mismatch to override)")
        print(f"[run-diff] WARNING: diffing across SIMD dispatch levels "
              f"({base_isa} vs {cur_isa})")

    failures = []
    for phase in args.phases:
        base, cur = per_call_seconds(baseline, current, phase)
        if base is None:
            print(f"[run-diff] {phase}: absent from baseline, skipping")
            continue
        if cur is None:
            failures.append(f"{phase}: missing from current run")
            continue
        check_ratio(phase, base * 1e6, cur * 1e6, args.tolerance, "us/call",
                    failures)

    for spec in args.assert_faster:
        try:
            fast, slow = spec.split(":", 1)
        except ValueError:
            raise SystemExit(f"[run-diff] --assert_faster '{spec}': "
                             "expected FAST:SLOW")
        fast_sec = smoke_seconds(current, fast)
        slow_sec = smoke_seconds(current, slow)
        if fast_sec is None or slow_sec is None:
            missing = fast if fast_sec is None else slow
            failures.append(f"assert_faster {spec}: smoke_{missing}_"
                            "us_per_call missing from current run")
            continue
        verdict = "OK" if fast_sec < slow_sec else "FAILED"
        print(f"[run-diff] assert_faster: {fast} {fast_sec * 1e6:.2f} us "
              f"vs {slow} {slow_sec * 1e6:.2f} us "
              f"({slow_sec / fast_sec:.2f}x) {verdict}")
        if fast_sec >= slow_sec:
            failures.append(f"assert_faster {spec}: {fast} is not faster "
                            f"than {slow}")

    for spec in args.max_result:
        try:
            key, limit_text = spec.split(":", 1)
            limit = float(limit_text)
        except ValueError:
            raise SystemExit(f"[run-diff] --max_result '{spec}': "
                             "expected KEY:LIMIT")
        value = result_value(current, key)
        if value is None:
            failures.append(f"max_result {spec}: {key} missing from "
                            "current run")
            continue
        verdict = "OK" if value <= limit else "EXCEEDED"
        print(f"[run-diff] max_result: {key} = {value:.6g} "
              f"(limit {limit:g}) {verdict}")
        if value > limit:
            failures.append(f"max_result {spec}: {value:.6g} > {limit:g}")

    base_rss = resource(baseline, "peak_rss_bytes")
    cur_rss = resource(current, "peak_rss_bytes")
    if base_rss is not None and cur_rss is not None:
        check_ratio("peak_rss", base_rss / 1048576.0, cur_rss / 1048576.0,
                    args.rss_tolerance, "MiB", failures)
    elif is_run_report(baseline) and is_run_report(current):
        print("[run-diff] peak_rss: not measured in both runs, skipping")

    base_alloc = resource(baseline, "alloc_bytes_total")
    cur_alloc = resource(current, "alloc_bytes_total")
    if base_alloc is not None and cur_alloc is not None:
        check_ratio("alloc_bytes", base_alloc / 1048576.0,
                    cur_alloc / 1048576.0, args.alloc_tolerance, "MiB",
                    failures)
    elif is_run_report(baseline) and is_run_report(current):
        print("[run-diff] alloc_bytes: not counted in both runs, skipping")

    if failures:
        print("[run-diff] FAIL:", "; ".join(failures), file=sys.stderr)
        return 1
    print("[run-diff] within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
