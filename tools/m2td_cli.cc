// m2td_cli — command-line front end to the M2TD library.
//
// Subcommands:
//   experiment   run one sampling+decomposition scheme against the ground
//                truth of a built-in dynamical system and print accuracy
//   simulate     build a conventional ensemble and save it as a tensor file
//   decompose    load a tensor file, decompose (hosvd | hooi | cp), report
//                the fit of the decomposition against the stored tensor
//   info         print a tensor file summary
//   store        write a tensor file into a chunked store / read it back
//
// Examples:
//   m2td_cli experiment --system=double_pendulum --resolution=10
//       --scheme=select --rank=5
//   m2td_cli simulate --system=lorenz --resolution=8 --scheme=random
//       --budget=100 --output=/tmp/lorenz.txt
//   m2td_cli decompose --input=/tmp/lorenz.txt --algorithm=hooi --rank=4
//   m2td_cli store --input=/tmp/lorenz.txt --dir=/tmp/lorenz_store
//       --chunk=4

#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "core/analysis.h"
#include "core/dm2td.h"
#include "core/experiment.h"
#include "core/m2td.h"
#include "core/pf_partition.h"
#include "ensemble/sampling.h"
#include "ensemble/simulation_model.h"
#include "io/chunk_store.h"
#include "io/tensor_io.h"
#include "io/tucker_io.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/resource.h"
#include "obs/trace.h"
#include "parallel/thread_pool.h"
#include "robust/cancel.h"
#include "robust/crc32.h"
#include "robust/failpoint.h"
#include "robust/retry.h"
#include "robust/watchdog.h"
#include "tensor/cp.h"
#include "tensor/hooi.h"
#include "tensor/tucker.h"
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "linalg/eigen.h"
#include "util/cpu_features.h"
#include "util/flags.h"
#include "util/random.h"
#include "util/string_util.h"

namespace {

using m2td::FlagParser;
using m2td::Result;
using m2td::Status;

int Fail(const Status& status) {
  std::cerr << "error: " << status << "\n";
  return 1;
}

/// Global fault-tolerance flags, stripped from argv like the obs flags so
/// every command accepts them; applied before subcommand dispatch.
struct RobustFlags {
  std::string fail_point;
  std::string checkpoint_dir;
  std::int64_t max_retries = 0;
  bool resume = false;
  /// Overall wall-clock budget; 0 = no deadline. When it expires the root
  /// CancelSource fires kDeadlineExceeded and every pipeline drains.
  double deadline_ms = 0.0;
  /// Stall watchdog soft budget per phase (leaf span); 0 = watchdog off.
  double soft_deadline_ms = 0.0;
};

RobustFlags g_robust_flags;

/// The run report under construction, when --report_out is active.
/// Subcommands feed dataset digests and seeds through the Note* helpers
/// below; main() writes the file on every exit path after dispatch.
m2td::obs::RunReport* g_report = nullptr;

/// Digests an input file into the run report (content CRC32 + size), so
/// two reports are comparable only when they read identical bytes.
void NoteDataset(const std::string& path) {
  if (g_report == nullptr) return;
  std::error_code ec;
  const std::uint64_t bytes = std::filesystem::file_size(path, ec);
  auto crc = m2td::robust::Crc32OfFile(path);
  g_report->AddDataset(path, crc.ok() ? *crc : 0, ec ? 0 : bytes);
}

void NoteSeed(std::int64_t seed) {
  if (g_report != nullptr) {
    g_report->set_seed(static_cast<std::uint64_t>(seed));
  }
}

Result<std::unique_ptr<m2td::ensemble::DynamicalSystemModel>> BuildModel(
    const std::string& system, std::int64_t resolution) {
  if (resolution < 2 || resolution > 64) {
    return Status::InvalidArgument("resolution must be in [2, 64]");
  }
  m2td::ensemble::ModelOptions options;
  options.parameter_resolution = static_cast<std::uint32_t>(resolution);
  options.time_resolution = static_cast<std::uint32_t>(resolution);
  if (system == "double_pendulum") {
    return m2td::ensemble::MakeDoublePendulumModel(options);
  }
  if (system == "triple_pendulum") {
    return m2td::ensemble::MakeTriplePendulumModel(options);
  }
  if (system == "lorenz") return m2td::ensemble::MakeLorenzModel(options);
  return Status::InvalidArgument(
      "unknown system (double_pendulum | triple_pendulum | lorenz)");
}

// Shared --init/--oversampling/--power_iters/--sketch_seed flag group for
// the subcommands that run factor solves. The values land in the
// run_report.json flag digest like every other --key=value argument.
struct InitFlags {
  std::string init = "deterministic";
  std::int64_t oversampling = 8;
  std::int64_t power_iters = 2;
  std::int64_t sketch_seed = 3;

  void Register(FlagParser& parser) {
    parser.AddString("init",
                     "factor init: deterministic | randomized (sketched)",
                     &init);
    parser.AddInt64("oversampling",
                    "randomized init: sketch columns beyond the rank",
                    &oversampling);
    parser.AddInt64("power_iters",
                    "randomized init: subspace power iterations",
                    &power_iters);
    parser.AddInt64("sketch_seed", "randomized init: Gaussian sketch seed",
                    &sketch_seed);
  }

  Result<m2td::linalg::GramFactorOptions> ToOptions() const {
    m2td::linalg::GramFactorOptions options;
    if (init == "randomized") {
      options.method = m2td::linalg::GramFactorMethod::kRandomized;
    } else if (init != "deterministic") {
      return Status::InvalidArgument(
          "--init must be 'deterministic' or 'randomized'");
    }
    if (oversampling < 0) {
      return Status::InvalidArgument("--oversampling must be >= 0");
    }
    if (power_iters < 0) {
      return Status::InvalidArgument("--power_iters must be >= 0");
    }
    options.sketch.oversampling = static_cast<std::size_t>(oversampling);
    options.sketch.power_iterations = static_cast<int>(power_iters);
    options.sketch.seed = static_cast<std::uint64_t>(sketch_seed);
    return options;
  }
};

int RunExperiment(int argc, const char* const* argv) {
  std::string system = "double_pendulum";
  std::string scheme = "select";
  std::int64_t resolution = 10;
  std::int64_t rank = 5;
  std::int64_t pivot = 0;
  std::int64_t seed = 42;
  double pivot_density = 1.0;
  double side_density = 1.0;
  double cell_density = 1.0;
  bool zero_join = false;

  FlagParser parser("m2td_cli experiment: score one scheme vs ground truth");
  parser.AddString("system", "double_pendulum | triple_pendulum | lorenz",
                   &system);
  parser.AddString(
      "scheme",
      "select | avg | concat | weighted | random | grid | slice", &scheme);
  parser.AddInt64("resolution", "grid values per mode", &resolution);
  parser.AddInt64("rank", "target decomposition rank (uniform)", &rank);
  parser.AddInt64("pivot", "pivot mode index (0 = time)", &pivot);
  parser.AddInt64("seed", "sampling seed", &seed);
  parser.AddDouble("pivot_density", "paper's P, in (0,1]", &pivot_density);
  parser.AddDouble("side_density", "paper's E, in (0,1]", &side_density);
  parser.AddDouble("cell_density", "fraction of PxE cells simulated",
                   &cell_density);
  parser.AddBool("zero_join", "use zero-join stitching", &zero_join);
  InitFlags init_flags;
  init_flags.Register(parser);
  auto positional = parser.Parse(argc, argv);
  if (!positional.ok()) return Fail(positional.status());
  NoteSeed(seed);
  auto init = init_flags.ToOptions();
  if (!init.ok()) return Fail(init.status());

  auto model = BuildModel(system, resolution);
  if (!model.ok()) return Fail(model.status());
  auto ground_truth = m2td::ensemble::BuildFullTensor(model->get());
  if (!ground_truth.ok()) return Fail(ground_truth.status());

  Result<m2td::core::SchemeOutcome> outcome =
      Status::Internal("unreachable");
  const bool is_m2td = scheme == "select" || scheme == "avg" ||
                       scheme == "concat" || scheme == "weighted";
  if (is_m2td) {
    auto partition = m2td::core::MakePartition(
        (*model)->space().num_modes(), {static_cast<std::size_t>(pivot)});
    if (!partition.ok()) return Fail(partition.status());
    m2td::core::M2tdMethod method = m2td::core::M2tdMethod::kSelect;
    if (scheme == "avg") method = m2td::core::M2tdMethod::kAvg;
    if (scheme == "concat") method = m2td::core::M2tdMethod::kConcat;
    if (scheme == "weighted") method = m2td::core::M2tdMethod::kWeighted;
    m2td::core::SubEnsembleOptions sub_options;
    sub_options.pivot_density = pivot_density;
    sub_options.side_density = side_density;
    sub_options.cell_density = cell_density;
    sub_options.seed = static_cast<std::uint64_t>(seed);
    m2td::core::StitchOptions stitch;
    stitch.zero_join = zero_join;
    outcome = m2td::core::RunM2td(model->get(), *ground_truth, *partition,
                                  method, static_cast<std::uint64_t>(rank),
                                  sub_options, stitch, *init);
  } else {
    m2td::ensemble::ConventionalScheme conventional;
    if (scheme == "random") {
      conventional = m2td::ensemble::ConventionalScheme::kRandom;
    } else if (scheme == "grid") {
      conventional = m2td::ensemble::ConventionalScheme::kGrid;
    } else if (scheme == "slice") {
      conventional = m2td::ensemble::ConventionalScheme::kSlice;
    } else {
      return Fail(Status::InvalidArgument("unknown scheme '" + scheme + "'"));
    }
    const std::uint64_t budget =
        2ULL * resolution * resolution;  // M2TD-equivalent default
    outcome = m2td::core::RunConventional(
        model->get(), *ground_truth, conventional, budget,
        static_cast<std::uint64_t>(rank), static_cast<std::uint64_t>(seed),
        *init);
  }
  if (!outcome.ok()) return Fail(outcome.status());

  std::cout << "system:      " << system << " (res " << resolution << ")\n"
            << "scheme:      " << (*outcome).scheme << "\n"
            << "rank:        " << rank << "\n"
            << "accuracy:    " << (*outcome).accuracy << "\n"
            << "decompose:   " << (*outcome).decompose_seconds * 1e3
            << " ms\n"
            << "cells:       " << (*outcome).budget_cells << "\n"
            << "tensor nnz:  " << (*outcome).nnz << "\n";
  return 0;
}

/// Abnormal worker exit details of the last dm2td run ("worker 2 exited
/// 5 (malformed frame)"), folded into the run report's exit detail.
std::string g_worker_exit_detail;

int RunDm2td(int argc, const char* const* argv) {
  std::string system = "double_pendulum";
  std::string backend = "thread";
  std::string job_dir;
  std::int64_t resolution = 10;
  std::int64_t rank = 5;
  std::int64_t pivot = 0;
  std::int64_t workers = 4;
  std::int64_t shards = 8;
  double worker_heartbeat_ms = 50.0;
  double task_lease_ms = 30000.0;
  bool keep_job_dir = false;
  bool zero_join = false;
  std::string transport = "pipe";
  std::string listen = "127.0.0.1:0";
  bool spawn_workers = true;
  double io_deadline_ms = 5000.0;
  double redial_ms = 10000.0;
  std::string net_faults;
  std::string worker_net_faults;
  bool speculative = false;
  double speculative_floor_ms = 250.0;

  FlagParser parser(
      "m2td_cli dm2td: run the three-phase distributed D-M2TD pipeline");
  parser.AddString("system", "double_pendulum | triple_pendulum | lorenz",
                   &system);
  parser.AddString("backend",
                   "thread (in-process pool) | process (real worker "
                   "processes + durable shuffle)",
                   &backend);
  parser.AddString("job_dir",
                   "process backend: shuffle scratch directory (default: "
                   "fresh temp dir, removed on success)",
                   &job_dir);
  parser.AddInt64("resolution", "grid values per mode", &resolution);
  parser.AddInt64("rank", "target decomposition rank (uniform)", &rank);
  parser.AddInt64("pivot", "pivot mode index (0 = time)", &pivot);
  parser.AddInt64("workers",
                  "worker count (threads or processes; never affects "
                  "results)",
                  &workers);
  parser.AddInt64("shards",
                  "process backend: fixed shard/task count per phase, "
                  "independent of --workers (never affects results)",
                  &shards);
  parser.AddDouble("worker_heartbeat_ms",
                   "process backend: worker heartbeat period",
                   &worker_heartbeat_ms);
  parser.AddDouble("task_lease_ms",
                   "process backend: heartbeat silence / task runtime "
                   "after which a worker is declared dead and its task "
                   "reassigned",
                   &task_lease_ms);
  parser.AddBool("keep_job_dir",
                 "keep the job directory (shuffle blobs, worker obs "
                 "exports) even on success",
                 &keep_job_dir);
  parser.AddBool("zero_join", "use zero-join stitching", &zero_join);
  parser.AddString("transport",
                   "process backend control channel: pipe (forked workers "
                   "on inherited pipes) | socket (workers attach over TCP; "
                   "results bit-identical either way)",
                   &transport);
  parser.AddString("listen",
                   "socket transport: coordinator listen address "
                   "(host:port, port 0 = ephemeral)",
                   &listen);
  parser.AddBool("spawn_workers",
                 "socket transport: fork local workers that dial back "
                 "(--nospawn_workers waits for --workers external "
                 "`m2td_worker --connect` processes instead)",
                 &spawn_workers);
  parser.AddDouble("io_deadline_ms",
                   "per-connection frame IO deadline (half-open peers "
                   "surface kDeadlineExceeded instead of hanging)",
                   &io_deadline_ms);
  parser.AddDouble("redial_ms",
                   "socket transport: how long a disconnected worker "
                   "redials (capped seeded exponential backoff) before "
                   "giving up",
                   &redial_ms);
  parser.AddString("net_faults",
                   "deterministic transport fault specs armed in the "
                   "coordinator (robust/netfault.h grammar, e.g. "
                   "'drop:prob=0.05,seed=11;delay:ms=40')",
                   &net_faults);
  parser.AddString("worker_net_faults",
                   "fault specs passed to spawned workers (--net_faults "
                   "on their command line)",
                   &worker_net_faults);
  parser.AddBool("speculative",
                 "speculatively re-launch straggling tasks (runtime > "
                 "quantile of completed siblings); first committed "
                 "attempt wins, results unchanged",
                 &speculative);
  parser.AddDouble("speculative_floor_ms",
                   "minimum task runtime before speculation can trigger",
                   &speculative_floor_ms);
  auto positional = parser.Parse(argc, argv);
  if (!positional.ok()) return Fail(positional.status());

  auto model = BuildModel(system, resolution);
  if (!model.ok()) return Fail(model.status());
  auto partition = m2td::core::MakePartition(
      (*model)->space().num_modes(), {static_cast<std::size_t>(pivot)});
  if (!partition.ok()) return Fail(partition.status());
  auto subs = m2td::core::BuildSubEnsembles(model->get(), *partition, {});
  if (!subs.ok()) return Fail(subs.status());

  m2td::core::DM2tdOptions options;
  options.method = m2td::core::M2tdMethod::kSelect;
  options.ranks = m2td::core::UniformRanks(
      **model, static_cast<std::uint64_t>(rank));
  options.num_workers = static_cast<int>(workers);
  options.num_shards = static_cast<int>(shards);
  options.stitch.zero_join = zero_join;
  if (backend == "process") {
    options.backend = m2td::core::DistBackend::kProcess;
  } else if (backend != "thread") {
    return Fail(
        Status::InvalidArgument("--backend must be thread | process"));
  }
  options.process.job_dir = job_dir;
  options.process.keep_job_dir = keep_job_dir;
  options.process.heartbeat_ms = worker_heartbeat_ms;
  options.process.task_lease_ms = task_lease_ms;
  if (transport != "pipe" && transport != "socket") {
    return Fail(
        Status::InvalidArgument("--transport must be pipe | socket"));
  }
  options.process.transport = transport;
  options.process.listen = listen;
  options.process.spawn_workers = spawn_workers;
  options.process.io_deadline_ms = io_deadline_ms;
  options.process.redial_ms = redial_ms;
  options.process.net_faults = net_faults;
  options.process.worker_net_faults = worker_net_faults;
  options.process.speculation.enabled = speculative;
  options.process.speculation.floor_ms = speculative_floor_ms;
  if (g_robust_flags.max_retries > 0) {
    options.retry.max_retries = static_cast<int>(g_robust_flags.max_retries);
  }

  auto result = m2td::core::DM2tdDecompose(*subs, *partition,
                                           (*model)->space().Shape(),
                                           options);
  if (result.ok()) {
    for (const std::string& detail : result->dist.worker_exit_details) {
      if (!g_worker_exit_detail.empty()) g_worker_exit_detail += "; ";
      g_worker_exit_detail += detail;
    }
  }
  if (!result.ok()) return Fail(result.status());

  auto ground_truth = m2td::ensemble::BuildFullTensor(model->get());
  if (!ground_truth.ok()) return Fail(ground_truth.status());
  auto reconstructed = m2td::tensor::Reconstruct(result->tucker);
  if (!reconstructed.ok()) return Fail(reconstructed.status());
  const double accuracy = m2td::tensor::ReconstructionAccuracy(
      *reconstructed, *ground_truth);

  std::cout << "system:      " << system << " (res " << resolution << ")\n"
            << "backend:     " << backend << " (" << workers << " workers";
  if (backend == "process") std::cout << ", " << shards << " shards";
  std::cout << ")\n"
            << "join nnz:    " << result->join_nnz << "\n"
            << "phase 1:     " << result->phase1.TotalSeconds() * 1e3
            << " ms\n"
            << "phase 2:     " << result->phase2.TotalSeconds() * 1e3
            << " ms\n"
            << "phase 3:     " << result->phase3.TotalSeconds() * 1e3
            << " ms\n"
            << "accuracy:    " << accuracy << "\n";
  if (backend == "process") {
    std::cout << "heartbeats:  " << result->dist.heartbeats << "\n"
              << "deaths:      " << result->dist.worker_deaths
              << " (tasks reassigned: " << result->dist.tasks_reassigned
              << ", map re-executions: " << result->dist.map_reexecutions
              << ")\n";
    if (transport == "socket") {
      std::cout << "network:     " << result->dist.net_connects
                << " connects, " << result->dist.net_reconnects
                << " reconnects, " << result->dist.net_disconnects
                << " disconnects\n";
    }
    if (speculative) {
      std::cout << "speculation: " << result->dist.speculative_launched
                << " launched, " << result->dist.speculative_won << " won, "
                << result->dist.speculative_cancelled << " cancelled\n";
    }
    if (!g_worker_exit_detail.empty()) {
      std::cout << "worker exits: " << g_worker_exit_detail << "\n";
    }
  }
  return 0;
}

int RunSimulate(int argc, const char* const* argv) {
  std::string system = "double_pendulum";
  std::string scheme = "random";
  std::string output = "ensemble.txt";
  std::string format = "text";
  std::int64_t resolution = 10;
  std::int64_t budget = 100;
  std::int64_t seed = 42;

  FlagParser parser("m2td_cli simulate: sample an ensemble to a tensor file");
  parser.AddString("system", "double_pendulum | triple_pendulum | lorenz",
                   &system);
  parser.AddString("scheme", "random | grid | slice", &scheme);
  parser.AddString("output", "output path", &output);
  parser.AddString("format", "text | binary", &format);
  parser.AddInt64("resolution", "grid values per mode", &resolution);
  parser.AddInt64("budget", "simulation instances", &budget);
  parser.AddInt64("seed", "sampling seed", &seed);
  auto positional = parser.Parse(argc, argv);
  if (!positional.ok()) return Fail(positional.status());
  NoteSeed(seed);

  auto model = BuildModel(system, resolution);
  if (!model.ok()) return Fail(model.status());
  m2td::ensemble::ConventionalScheme conventional;
  if (scheme == "random") {
    conventional = m2td::ensemble::ConventionalScheme::kRandom;
  } else if (scheme == "grid") {
    conventional = m2td::ensemble::ConventionalScheme::kGrid;
  } else if (scheme == "slice") {
    conventional = m2td::ensemble::ConventionalScheme::kSlice;
  } else {
    return Fail(Status::InvalidArgument("unknown scheme '" + scheme + "'"));
  }
  m2td::Rng rng(static_cast<std::uint64_t>(seed));
  Result<m2td::tensor::SparseTensor> ensemble =
      Status::Internal("unreachable");
  if (!g_robust_flags.checkpoint_dir.empty()) {
    m2td::ensemble::EnsembleBuildOptions build_options;
    build_options.checkpoint_dir = g_robust_flags.checkpoint_dir;
    build_options.resume = g_robust_flags.resume;
    m2td::ensemble::EnsembleBuildReport report;
    ensemble = m2td::ensemble::BuildConventionalEnsembleRobust(
        model->get(), conventional, static_cast<std::uint64_t>(budget), &rng,
        build_options, &report);
    if (ensemble.ok()) {
      std::cout << "robust build: " << report.simulations_kept
                << " simulations kept, " << report.failed_simulations
                << " failed, " << report.replacement_draws
                << " replacement draws, " << report.batches_resumed
                << " batches resumed\n";
    }
  } else {
    ensemble = m2td::ensemble::BuildConventionalEnsemble(
        model->get(), conventional, static_cast<std::uint64_t>(budget), &rng);
  }
  if (!ensemble.ok()) return Fail(ensemble.status());

  const Status save = format == "binary"
                          ? m2td::io::SaveSparseBinary(*ensemble, output)
                          : m2td::io::SaveSparseText(*ensemble, output);
  if (!save.ok()) return Fail(save);
  std::cout << "wrote " << ensemble->NumNonZeros() << " entries (shape "
            << m2td::ShapeToString(ensemble->shape()) << ", density "
            << ensemble->Density() << ") to " << output << "\n";
  return 0;
}

Result<m2td::tensor::SparseTensor> LoadTensorAuto(const std::string& path) {
  NoteDataset(path);
  auto binary = m2td::io::LoadSparseBinary(path);
  if (binary.ok()) return binary;
  return m2td::io::LoadSparseText(path);
}

int RunDecompose(int argc, const char* const* argv) {
  std::string input;
  std::string algorithm = "hosvd";
  std::string save;
  std::int64_t rank = 5;
  std::int64_t iterations = 25;

  FlagParser parser("m2td_cli decompose: decompose a stored tensor");
  parser.AddString("input", "tensor file (text or binary)", &input);
  parser.AddString("algorithm", "hosvd | hooi | cp", &algorithm);
  parser.AddString("save", "write the Tucker decomposition here (hosvd/hooi)",
                   &save);
  parser.AddInt64("rank", "target rank (uniform)", &rank);
  parser.AddInt64("iterations", "ALS iteration cap (hooi/cp)", &iterations);
  InitFlags init_flags;
  init_flags.Register(parser);
  auto positional = parser.Parse(argc, argv);
  if (!positional.ok()) return Fail(positional.status());
  if (input.empty()) {
    return Fail(Status::InvalidArgument("--input is required"));
  }
  auto init = init_flags.ToOptions();
  if (!init.ok()) return Fail(init.status());

  auto x = LoadTensorAuto(input);
  if (!x.ok()) return Fail(x.status());
  std::cout << "loaded " << x->NumNonZeros() << " entries, shape "
            << m2td::ShapeToString(x->shape()) << "\n";

  auto maybe_save = [&save](const m2td::tensor::TuckerDecomposition& tucker)
      -> Status {
    if (save.empty()) return Status::OK();
    M2TD_RETURN_IF_ERROR(m2td::io::SaveTucker(tucker, save));
    std::cout << "decomposition written to " << save << "\n";
    return Status::OK();
  };

  const m2td::tensor::DenseTensor dense = x->ToDense();
  const std::vector<std::uint64_t> ranks(x->num_modes(),
                                         static_cast<std::uint64_t>(rank));
  double fit = 0.0;
  if (algorithm == "hosvd") {
    m2td::tensor::HosvdOptions hosvd;
    hosvd.factor = *init;
    auto tucker = m2td::tensor::HosvdSparse(*x, ranks, hosvd);
    if (!tucker.ok()) return Fail(tucker.status());
    auto reconstructed = m2td::tensor::Reconstruct(*tucker);
    if (!reconstructed.ok()) return Fail(reconstructed.status());
    fit = m2td::tensor::ReconstructionAccuracy(*reconstructed, dense);
    const Status saved = maybe_save(*tucker);
    if (!saved.ok()) return Fail(saved);
  } else if (algorithm == "hooi") {
    m2td::tensor::HooiOptions options;
    options.max_iterations = static_cast<int>(iterations);
    if (init->method == m2td::linalg::GramFactorMethod::kRandomized) {
      options.init = m2td::tensor::HooiInit::kRandomized;
      options.sketch = init->sketch;
    }
    m2td::tensor::HooiInfo info;
    auto tucker = m2td::tensor::HooiSparse(*x, ranks, options, &info);
    if (!tucker.ok()) return Fail(tucker.status());
    std::cout << "hooi: " << info.iterations << " sweeps, converged="
              << (info.converged ? "yes" : "no") << "\n";
    if (info.interrupted != m2td::robust::CancelCause::kNone) {
      // Best-so-far drain: save and report what the completed sweeps
      // produced, then surface the cancellation — the token has fired, so
      // further pooled work (reconstruction) would only fail against it.
      std::cout << "hooi: interrupted ("
                << m2td::robust::CancelCauseName(info.interrupted)
                << "); best decomposition from " << info.iterations
                << " completed sweeps, fit (vs input norm) " << info.fit
                << "\n";
      const Status saved = maybe_save(*tucker);
      if (!saved.ok()) return Fail(saved);
      return Fail(m2td::robust::StatusFromCause(info.interrupted));
    }
    auto reconstructed = m2td::tensor::Reconstruct(*tucker);
    if (!reconstructed.ok()) return Fail(reconstructed.status());
    fit = m2td::tensor::ReconstructionAccuracy(*reconstructed, dense);
    const Status saved = maybe_save(*tucker);
    if (!saved.ok()) return Fail(saved);
  } else if (algorithm == "cp") {
    m2td::tensor::CpOptions options;
    options.max_iterations = static_cast<int>(iterations);
    m2td::tensor::CpInfo info;
    auto cp = m2td::tensor::CpAlsSparse(
        *x, static_cast<std::uint64_t>(rank), options, &info);
    if (!cp.ok()) return Fail(cp.status());
    std::cout << "cp-als: " << info.iterations << " sweeps, converged="
              << (info.converged ? "yes" : "no") << "\n";
    auto reconstructed = m2td::tensor::CpReconstruct(*cp, x->shape());
    if (!reconstructed.ok()) return Fail(reconstructed.status());
    fit = m2td::tensor::ReconstructionAccuracy(*reconstructed, dense);
  } else {
    return Fail(Status::InvalidArgument("unknown algorithm"));
  }
  std::cout << "fit (1 - relative error vs stored tensor): " << fit << "\n";
  return 0;
}

int RunInfo(int argc, const char* const* argv) {
  std::string input;
  FlagParser parser("m2td_cli info: summarize a tensor file");
  parser.AddString("input", "tensor file (text or binary)", &input);
  auto positional = parser.Parse(argc, argv);
  if (!positional.ok()) return Fail(positional.status());
  if (input.empty() && !positional->empty()) input = positional->front();
  if (input.empty()) {
    return Fail(Status::InvalidArgument("--input is required"));
  }
  auto x = LoadTensorAuto(input);
  if (!x.ok()) return Fail(x.status());
  std::cout << "shape:   " << m2td::ShapeToString(x->shape()) << "\n"
            << "modes:   " << x->num_modes() << "\n"
            << "nnz:     " << x->NumNonZeros() << "\n"
            << "density: " << x->Density() << "\n"
            << "norm:    " << x->FrobeniusNorm() << "\n";
  return 0;
}

int RunStore(int argc, const char* const* argv) {
  std::string input;
  std::string dir;
  std::int64_t chunk = 4;
  FlagParser parser(
      "m2td_cli store: write a tensor into a chunked store and verify");
  parser.AddString("input", "tensor file", &input);
  parser.AddString("dir", "store directory", &dir);
  parser.AddInt64("chunk", "chunk extent per mode", &chunk);
  auto positional = parser.Parse(argc, argv);
  if (!positional.ok()) return Fail(positional.status());
  if (input.empty() || dir.empty()) {
    return Fail(Status::InvalidArgument("--input and --dir are required"));
  }
  if (chunk <= 0) return Fail(Status::InvalidArgument("--chunk must be > 0"));

  auto x = LoadTensorAuto(input);
  if (!x.ok()) return Fail(x.status());
  auto store = m2td::io::ChunkStore::Create(
      dir, x->shape(),
      std::vector<std::uint64_t>(x->num_modes(),
                                 static_cast<std::uint64_t>(chunk)));
  if (!store.ok()) return Fail(store.status());
  const Status written = store->Write(*x);
  if (!written.ok()) return Fail(written);

  auto reread = store->ReadAll();
  if (!reread.ok()) return Fail(reread.status());
  std::cout << "stored " << store->TotalNonZeros() << " entries in "
            << store->NumChunks() << " chunks under " << dir << "\n"
            << "round-trip check: "
            << (reread->NumNonZeros() == x->NumNonZeros() ? "OK" : "MISMATCH")
            << "\n";
  return 0;
}

int RunQuery(int argc, const char* const* argv) {
  std::string input;
  std::string cell;
  FlagParser parser(
      "m2td_cli query: evaluate reconstruction cells from a saved Tucker "
      "decomposition (see 'decompose --save')");
  parser.AddString("input", "decomposition file (.tucker)", &input);
  parser.AddString("cell",
                   "comma-separated cell indices, e.g. 1,2,0,3,4; "
                   "repeatable via positional args",
                   &cell);
  auto positional = parser.Parse(argc, argv);
  if (!positional.ok()) return Fail(positional.status());
  if (input.empty()) {
    return Fail(Status::InvalidArgument("--input is required"));
  }
  NoteDataset(input);
  auto tucker = m2td::io::LoadTucker(input);
  if (!tucker.ok()) return Fail(tucker.status());
  std::cout << "decomposition: " << tucker->factors.size()
            << " modes, core " << m2td::ShapeToString(tucker->core.shape())
            << ", reconstructs "
            << m2td::ShapeToString(tucker->ReconstructedShape()) << "\n";

  std::vector<std::string> cell_specs = *positional;
  if (!cell.empty()) cell_specs.insert(cell_specs.begin(), cell);
  if (cell_specs.empty()) {
    return Fail(Status::InvalidArgument(
        "give at least one cell, e.g. --cell=1,2,0,3,4"));
  }
  for (const std::string& spec : cell_specs) {
    std::vector<std::uint32_t> idx;
    for (const std::string& part : m2td::Split(spec, ',')) {
      char* end = nullptr;
      const long value = std::strtol(part.c_str(), &end, 10);
      if (end == part.c_str() || *end != '\0' || value < 0) {
        return Fail(Status::InvalidArgument("bad cell index '" + part +
                                            "' in '" + spec + "'"));
      }
      idx.push_back(static_cast<std::uint32_t>(value));
    }
    auto value = m2td::tensor::ReconstructCell(*tucker, idx);
    if (!value.ok()) return Fail(value.status());
    std::cout << "X~(" << spec << ") = " << *value << "\n";
  }
  return 0;
}

int RunAnalyze(int argc, const char* const* argv) {
  std::string system = "double_pendulum";
  std::int64_t resolution = 10;
  std::int64_t rank = 3;
  std::int64_t pivot = 0;
  std::int64_t top_k = 3;

  FlagParser parser(
      "m2td_cli analyze: run M2TD-SELECT and report latent patterns, core "
      "interactions, and residual outliers");
  parser.AddString("system", "double_pendulum | triple_pendulum | lorenz",
                   &system);
  parser.AddInt64("resolution", "grid values per mode", &resolution);
  parser.AddInt64("rank", "target decomposition rank", &rank);
  parser.AddInt64("pivot", "pivot mode index (0 = time)", &pivot);
  parser.AddInt64("top_k", "entries per pattern / outliers reported",
                  &top_k);
  auto positional = parser.Parse(argc, argv);
  if (!positional.ok()) return Fail(positional.status());
  if (top_k <= 0) return Fail(Status::InvalidArgument("--top_k must be > 0"));

  auto model = BuildModel(system, resolution);
  if (!model.ok()) return Fail(model.status());
  auto partition = m2td::core::MakePartition(
      (*model)->space().num_modes(), {static_cast<std::size_t>(pivot)});
  if (!partition.ok()) return Fail(partition.status());
  auto subs = m2td::core::BuildSubEnsembles(model->get(), *partition, {});
  if (!subs.ok()) return Fail(subs.status());
  m2td::core::M2tdOptions options;
  options.ranks = m2td::core::UniformRanks(**model,
                                           static_cast<std::uint64_t>(rank));
  auto result = m2td::core::M2tdDecompose(*subs, *partition,
                                          (*model)->space().Shape(), options);
  if (!result.ok()) return Fail(result.status());

  auto patterns = m2td::core::ExtractModePatterns(
      result->tucker, static_cast<std::size_t>(top_k));
  if (!patterns.ok()) return Fail(patterns.status());
  std::cout << "Latent patterns:\n"
            << m2td::core::DescribePatterns(*patterns, (*model)->space());

  auto interactions = m2td::core::TopCoreInteractions(
      result->tucker, static_cast<std::size_t>(top_k));
  if (!interactions.ok()) return Fail(interactions.status());
  std::cout << "\nStrongest core interactions:\n";
  for (const auto& interaction : *interactions) {
    std::cout << "  (";
    for (std::size_t m = 0; m < interaction.component_indices.size(); ++m) {
      std::cout << (m ? "," : "") << interaction.component_indices[m];
    }
    std::cout << ") strength " << interaction.strength << "\n";
  }

  auto join = m2td::core::JeStitch(*subs, *partition,
                                   (*model)->space().Shape(), {});
  if (!join.ok()) return Fail(join.status());
  auto outliers = m2td::core::ResidualOutliers(
      result->tucker, *join, static_cast<std::size_t>(top_k));
  if (!outliers.ok()) return Fail(outliers.status());
  std::cout << "\nWorst-explained cells:\n";
  const auto& space = (*model)->space();
  for (const auto& outlier : *outliers) {
    std::cout << "  ";
    for (std::size_t m = 0; m < outlier.indices.size(); ++m) {
      std::cout << (m ? " " : "") << space.def(m).name << "="
                << space.Value(m, outlier.indices[m]);
    }
    std::cout << "  residual " << outlier.residual << "\n";
  }
  return 0;
}

void PrintTopLevelUsage() {
  std::cout <<
      "m2td_cli <command> [flags]\n"
      "commands:\n"
      "  experiment  score a sampling+decomposition scheme vs ground truth\n"
      "  dm2td       three-phase distributed D-M2TD (--backend=thread |\n"
      "              process; process spawns --workers m2td_worker\n"
      "              processes with a durable shuffle and worker-death\n"
      "              recovery — see --worker_heartbeat_ms, --task_lease_ms,\n"
      "              --transport=pipe|socket, --speculative, --net_faults)\n"
      "  simulate    sample an ensemble into a tensor file\n"
      "  decompose   decompose a stored tensor (hosvd | hooi | cp)\n"
      "  analyze     M2TD patterns / interactions / outliers report\n"
      "  query       evaluate cells of a saved Tucker decomposition\n"
      "  info        summarize a tensor file\n"
      "  store       chunked-store round trip\n"
      "global flags (any command):\n"
      "  --trace_out=<file>    write a Chrome trace (chrome://tracing,\n"
      "                        Perfetto) of the run\n"
      "  --trace_summary       print an indented per-span wall/CPU/alloc\n"
      "                        summary plus per-histogram p50/p95/p99\n"
      "  --metrics_out=<file>  write counters/gauges/histograms as JSON\n"
      "  --report_out=<file>   write a structured run report (schema-\n"
      "                        versioned JSON: build info, flags, dataset\n"
      "                        digests, per-phase wall/CPU/alloc totals,\n"
      "                        RSS time series, metrics, exit status);\n"
      "                        default run_report.json, empty disables\n"
      "  --resource_sample_ms=<n>  resource sampler period (RSS, faults,\n"
      "                        CPU split, thread count; default 20, 0 off)\n"
      "  --metrics_snapshot_ms=<n>  rewrite an OpenMetrics snapshot file\n"
      "                        every n ms while running (default 0 = off)\n"
      "  --metrics_snapshot_out=<file>  snapshot destination (default\n"
      "                        metrics.prom)\n"
      "  --max_retries=<n>     retry transient IO/task failures up to n\n"
      "                        times (capped exponential backoff)\n"
      "  --fail_point=<spec>   arm a fault-injection point, e.g.\n"
      "                        chunk_store.read_blob:times=1 or\n"
      "                        mapreduce.map_task:prob=0.2,seed=7;\n"
      "                        repeatable, ';'-separated; the\n"
      "                        M2TD_FAILPOINTS env var is also honored\n"
      "  --checkpoint_dir=<d>  journal simulate progress under d (resumable)\n"
      "  --resume              continue from an existing checkpoint journal\n"
      "  --deadline_ms=<ms>    overall wall-clock budget; on expiry the run\n"
      "                        drains gracefully (iterative decompositions\n"
      "                        report best-so-far, checkpoints flush) and\n"
      "                        exits with a DeadlineExceeded error\n"
      "  --soft_deadline_ms=<ms> stall watchdog: report any phase older\n"
      "                        than ms (trace instant + stack dump) without\n"
      "                        cancelling; SIGINT/SIGTERM also drain\n"
      "                        gracefully (press twice to exit at once)\n"
      "  --threads=<n>         size of the shared kernel thread pool\n"
      "                        (default: hardware concurrency; 1 = serial;\n"
      "                        results are bit-identical for any value —\n"
      "                        see docs/PERFORMANCE.md)\n"
      "  --eigen_method=<m>    symmetric eigensolver for every Gram solve:\n"
      "                        jacobi (default, bit-exact oracle) or\n"
      "                        tridiagonal_ql (Householder + implicit-shift\n"
      "                        QL, several times faster, reassociates fp\n"
      "                        sums)\n"
      "  --fast_kernels        dispatch the SIMD inner kernels (AVX2/NEON,\n"
      "                        detected at startup; M2TD_FORCE_ISA=scalar|\n"
      "                        avx2|neon overrides). Off by default: the\n"
      "                        scalar path is the bit-exact baseline; SIMD\n"
      "                        reassociates fp sums (still deterministic\n"
      "                        at any --threads)\n"
      "run '<command> --help' for per-command flags\n";
}

/// Global observability flags, stripped from argv before subcommand
/// dispatch so every command accepts them at any position.
struct ObsFlags {
  std::string trace_out;
  std::string metrics_out;
  /// Structured run report destination; empty disables. Defaults on:
  /// every CLI run leaves a run_report.json beside it (tracing and
  /// metrics are force-enabled so the report has per-phase data).
  std::string report_out = "run_report.json";
  /// OpenMetrics snapshot file, rewritten every --metrics_snapshot_ms.
  std::string metrics_snapshot_out = "metrics.prom";
  bool trace_summary = false;
  /// 0 = not set; pool defaults to hardware concurrency.
  long threads = 0;
  /// Resource sampler period; 0 disables the sampler thread.
  long resource_sample_ms = 20;
  /// 0 = periodic OpenMetrics snapshots off.
  long metrics_snapshot_ms = 0;
  /// Symmetric eigensolver for every Gram solve; empty keeps the
  /// process default (jacobi).
  std::string eigen_method;
  /// Dispatch SIMD inner kernels (default off = scalar bit-exact path).
  bool fast_kernels = false;
};

ObsFlags ExtractObsFlags(int argc, char** argv,
                         std::vector<char*>* remaining) {
  ObsFlags flags;
  const std::string_view trace_prefix = "--trace_out=";
  const std::string_view metrics_prefix = "--metrics_out=";
  const std::string_view report_prefix = "--report_out=";
  const std::string_view sample_prefix = "--resource_sample_ms=";
  const std::string_view snapshot_ms_prefix = "--metrics_snapshot_ms=";
  const std::string_view snapshot_out_prefix = "--metrics_snapshot_out=";
  const std::string_view retries_prefix = "--max_retries=";
  const std::string_view failpoint_prefix = "--fail_point=";
  const std::string_view checkpoint_prefix = "--checkpoint_dir=";
  const std::string_view threads_prefix = "--threads=";
  const std::string_view deadline_prefix = "--deadline_ms=";
  const std::string_view soft_deadline_prefix = "--soft_deadline_ms=";
  const std::string_view eigen_method_prefix = "--eigen_method=";
  for (int i = 0; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.substr(0, trace_prefix.size()) == trace_prefix) {
      flags.trace_out = std::string(arg.substr(trace_prefix.size()));
    } else if (arg.substr(0, metrics_prefix.size()) == metrics_prefix) {
      flags.metrics_out = std::string(arg.substr(metrics_prefix.size()));
    } else if (arg.substr(0, report_prefix.size()) == report_prefix) {
      flags.report_out = std::string(arg.substr(report_prefix.size()));
    } else if (arg.substr(0, sample_prefix.size()) == sample_prefix) {
      flags.resource_sample_ms = std::strtol(
          std::string(arg.substr(sample_prefix.size())).c_str(), nullptr, 10);
    } else if (arg.substr(0, snapshot_ms_prefix.size()) ==
               snapshot_ms_prefix) {
      flags.metrics_snapshot_ms = std::strtol(
          std::string(arg.substr(snapshot_ms_prefix.size())).c_str(), nullptr,
          10);
    } else if (arg.substr(0, snapshot_out_prefix.size()) ==
               snapshot_out_prefix) {
      flags.metrics_snapshot_out =
          std::string(arg.substr(snapshot_out_prefix.size()));
    } else if (arg == "--trace_summary" || arg == "--trace_summary=true") {
      flags.trace_summary = true;
    } else if (arg == "--trace_summary=false") {
      flags.trace_summary = false;
    } else if (arg.substr(0, retries_prefix.size()) == retries_prefix) {
      g_robust_flags.max_retries =
          std::strtol(std::string(arg.substr(retries_prefix.size())).c_str(),
                      nullptr, 10);
    } else if (arg.substr(0, failpoint_prefix.size()) == failpoint_prefix) {
      if (!g_robust_flags.fail_point.empty()) {
        g_robust_flags.fail_point += ";";
      }
      g_robust_flags.fail_point +=
          std::string(arg.substr(failpoint_prefix.size()));
    } else if (arg.substr(0, checkpoint_prefix.size()) == checkpoint_prefix) {
      g_robust_flags.checkpoint_dir =
          std::string(arg.substr(checkpoint_prefix.size()));
    } else if (arg == "--resume" || arg == "--resume=true") {
      g_robust_flags.resume = true;
    } else if (arg == "--resume=false") {
      g_robust_flags.resume = false;
    } else if (arg.substr(0, threads_prefix.size()) == threads_prefix) {
      flags.threads = std::strtol(
          std::string(arg.substr(threads_prefix.size())).c_str(), nullptr,
          10);
    } else if (arg.substr(0, deadline_prefix.size()) == deadline_prefix) {
      g_robust_flags.deadline_ms = std::strtod(
          std::string(arg.substr(deadline_prefix.size())).c_str(), nullptr);
    } else if (arg.substr(0, soft_deadline_prefix.size()) ==
               soft_deadline_prefix) {
      g_robust_flags.soft_deadline_ms = std::strtod(
          std::string(arg.substr(soft_deadline_prefix.size())).c_str(),
          nullptr);
    } else if (arg.substr(0, eigen_method_prefix.size()) ==
               eigen_method_prefix) {
      flags.eigen_method =
          std::string(arg.substr(eigen_method_prefix.size()));
    } else if (arg == "--fast_kernels" || arg == "--fast_kernels=true") {
      flags.fast_kernels = true;
    } else if (arg == "--fast_kernels=false") {
      flags.fast_kernels = false;
    } else {
      remaining->push_back(argv[i]);
    }
  }
  return flags;
}

int ExportObservability(const ObsFlags& flags) {
  int status = 0;
  if (!flags.trace_out.empty()) {
    const Status exported =
        m2td::obs::Tracer::Get().ExportChromeTrace(flags.trace_out);
    if (!exported.ok()) {
      std::cerr << "error: " << exported << "\n";
      status = 1;
    } else {
      std::cerr << "trace written to " << flags.trace_out << "\n";
    }
  }
  if (flags.trace_summary) {
    m2td::obs::Tracer::Get().WriteTextSummary(std::cerr);
    m2td::obs::WriteHistogramSummary(std::cerr);
  }
  if (!flags.metrics_out.empty()) {
    std::ofstream out(flags.metrics_out);
    if (!out) {
      std::cerr << "error: cannot write metrics to " << flags.metrics_out
                << "\n";
      status = 1;
    } else {
      m2td::obs::WriteMetricsJson(out);
      std::cerr << "metrics written to " << flags.metrics_out << "\n";
    }
  }
  return status;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<char*> args;
  args.reserve(static_cast<std::size_t>(argc));
  const ObsFlags obs_flags = ExtractObsFlags(argc, argv, &args);
  if (!obs_flags.trace_out.empty() || obs_flags.trace_summary) {
    m2td::obs::SetTracingEnabled(true);
  }
  if (!obs_flags.metrics_out.empty() || obs_flags.metrics_snapshot_ms > 0) {
    m2td::obs::SetMetricsEnabled(true);
  }
  if (obs_flags.resource_sample_ms < 0 || obs_flags.metrics_snapshot_ms < 0) {
    return Fail(Status::InvalidArgument(
        "--resource_sample_ms / --metrics_snapshot_ms must be >= 0"));
  }
  // The run report needs per-phase spans and a metrics snapshot, so an
  // active --report_out force-enables both collectors (they stay cheap:
  // the CLI is a batch tool, not a latency-critical server).
  m2td::obs::RunReport report("m2td_cli");
  if (!obs_flags.report_out.empty()) {
    m2td::obs::SetTracingEnabled(true);
    m2td::obs::SetMetricsEnabled(true);
    g_report = &report;
    for (int i = 1; i < argc; ++i) {
      const std::string_view arg = argv[i];
      if (arg.rfind("--", 0) != 0) continue;
      const std::size_t eq = arg.find('=');
      if (eq == std::string_view::npos) {
        report.AddFlag(std::string(arg.substr(2)), "true");
      } else {
        report.AddFlag(std::string(arg.substr(2, eq - 2)),
                       std::string(arg.substr(eq + 1)));
      }
    }
  }
  if (obs_flags.threads < 0) {
    return Fail(Status::InvalidArgument("--threads must be >= 1"));
  }
  if (obs_flags.threads > 0) {
    m2td::parallel::SetGlobalThreads(static_cast<int>(obs_flags.threads));
  }
  if (!obs_flags.eigen_method.empty()) {
    m2td::linalg::EigenMethod method;
    if (!m2td::linalg::ParseEigenMethod(obs_flags.eigen_method, &method)) {
      return Fail(Status::InvalidArgument(
          "--eigen_method must be 'jacobi' or 'tridiagonal_ql'"));
    }
    m2td::linalg::SetDefaultEigenMethod(method);
  }
  m2td::util::SetFastKernelsEnabled(obs_flags.fast_kernels);
  const Status env_armed = m2td::robust::ArmFailpointsFromEnv();
  if (!env_armed.ok()) return Fail(env_armed);
  if (!g_robust_flags.fail_point.empty()) {
    const Status armed =
        m2td::robust::ArmFailpointsFromString(g_robust_flags.fail_point);
    if (!armed.ok()) return Fail(armed);
  }
  if (g_robust_flags.max_retries < 0) {
    return Fail(Status::InvalidArgument("--max_retries must be >= 0"));
  }
  if (g_robust_flags.max_retries > 0) {
    m2td::robust::RetryPolicy policy;
    policy.max_retries = static_cast<int>(g_robust_flags.max_retries);
    m2td::robust::SetGlobalRetryPolicy(policy);
  }

  if (g_robust_flags.deadline_ms < 0 || g_robust_flags.soft_deadline_ms < 0) {
    return Fail(Status::InvalidArgument(
        "--deadline_ms / --soft_deadline_ms must be >= 0"));
  }

  if (args.size() < 2) {
    PrintTopLevelUsage();
    return 1;
  }
  const std::string command = args[1];
  const int sub_argc = static_cast<int>(args.size()) - 2;
  const char* const* sub_argv = args.data() + 2;
  report.set_command(command);

  // Root cancellation: --deadline_ms bounds the whole run, and a first
  // SIGINT/SIGTERM trips the same source for graceful drain (checkpoints
  // flush, trace/metrics below are still written; a second signal exits
  // immediately).
  m2td::robust::CancelSource root_source(
      g_robust_flags.deadline_ms > 0
          ? m2td::robust::Deadline::AfterMillis(g_robust_flags.deadline_ms)
          : m2td::robust::Deadline::Infinite());
  if (!m2td::robust::InstallCancelOnSignal(root_source)) {
    std::cerr << "warning: could not install signal handlers\n";
  }
  m2td::robust::Watchdog watchdog([&] {
    m2td::robust::WatchdogOptions options;
    options.soft_budget_ms = g_robust_flags.soft_deadline_ms;
    options.source = &root_source;
    options.queue_depth_fn = [] {
      return m2td::parallel::GlobalPool().QueueDepth();
    };
    return options;
  }());
  if (g_robust_flags.soft_deadline_ms > 0) watchdog.Start();

  // Background resource profile: RSS / fault / CPU-split / thread-count
  // series for the trace's counter tracks and the run report. Tied into
  // the root cancel source so a drain stops the thread cooperatively.
  m2td::obs::ResourceSampler sampler;
  if (obs_flags.resource_sample_ms > 0 &&
      (g_report != nullptr || m2td::obs::TracingEnabled() ||
       m2td::obs::MetricsEnabled())) {
    m2td::obs::ResourceSamplerOptions sampler_options;
    sampler_options.interval_ms =
        static_cast<int>(obs_flags.resource_sample_ms);
    const m2td::robust::CancelToken sampler_token = root_source.token();
    sampler_options.cancelled = [sampler_token] {
      return sampler_token.IsCancelled();
    };
    sampler.Start(std::move(sampler_options));
  }
  m2td::obs::MetricsSnapshotter snapshotter;
  if (obs_flags.metrics_snapshot_ms > 0) {
    m2td::obs::MetricsSnapshotterOptions snapshot_options;
    snapshot_options.path = obs_flags.metrics_snapshot_out;
    snapshot_options.interval_ms =
        static_cast<int>(obs_flags.metrics_snapshot_ms);
    const m2td::robust::CancelToken snapshot_token = root_source.token();
    snapshot_options.cancelled = [snapshot_token] {
      return snapshot_token.IsCancelled();
    };
    snapshotter.Start(std::move(snapshot_options));
  }

  int code = 0;
  {
    m2td::robust::CancelScope scope(root_source.token());
    try {
      if (command == "experiment") {
        code = RunExperiment(sub_argc, sub_argv);
      } else if (command == "simulate") {
        code = RunSimulate(sub_argc, sub_argv);
      } else if (command == "dm2td") {
        code = RunDm2td(sub_argc, sub_argv);
      } else if (command == "decompose") {
        code = RunDecompose(sub_argc, sub_argv);
      } else if (command == "analyze") {
        code = RunAnalyze(sub_argc, sub_argv);
      } else if (command == "query") {
        code = RunQuery(sub_argc, sub_argv);
      } else if (command == "info") {
        code = RunInfo(sub_argc, sub_argv);
      } else if (command == "store") {
        code = RunStore(sub_argc, sub_argv);
      } else if (command == "--help" || command == "-h" ||
                 command == "help") {
        PrintTopLevelUsage();
        return 0;
      } else {
        std::cerr << "unknown command '" << command << "'\n";
        PrintTopLevelUsage();
        return 1;
      }
    } catch (const m2td::robust::CancelledError& error) {
      // A cancelled pooled kernel unwound past a subcommand that predates
      // the Status channel; drain gracefully all the same.
      code = Fail(error.ToStatus());
    }
  }
  watchdog.Stop();
  sampler.Stop();
  snapshotter.Stop();
  const int obs_code = ExportObservability(obs_flags);
  int report_code = 0;
  if (g_report != nullptr) {
    report.SetResourceSamples(sampler.Samples());
    const bool cancelled = root_source.token().IsCancelled();
    report.SetExit(code,
                   code == 0 ? "ok" : (cancelled ? "cancelled" : "error"),
                   cancelled
                       ? m2td::robust::CancelCauseName(
                             root_source.token().cause())
                       : g_worker_exit_detail);
    const Status written = report.WriteFile(obs_flags.report_out);
    if (!written.ok()) {
      std::cerr << "error: " << written << "\n";
      report_code = 1;
    } else {
      std::cerr << "run report written to " << obs_flags.report_out << "\n";
    }
  }
  if (code != 0) return code;
  return obs_code != 0 ? obs_code : report_code;
}
