#!/usr/bin/env python3
"""Fail if a public symbol in the given headers lacks a Doxygen comment.

Used by the `docs` CMake target as a doc-coverage gate for the public API
of src/parallel/ (and any other directories passed on the command line).
Unlike doxygen's WARN_IF_UNDOCUMENTED (which needs the doxygen binary and
EXTRACT_ALL=NO), this runs anywhere python3 exists, so the gate holds even
on machines without doxygen installed.

A "public symbol" is a namespace-scope or public class-member declaration
of a type (class/struct/enum/using/typedef) or a function. Member
variables, private/protected members, forward declarations, and
`= delete` / `= default` functions are exempt. A symbol counts as
documented when the immediately preceding non-blank line closes a
`///`, `//!`, or `/** ... */` comment (a `template <...>` header may sit
between the comment and the declaration since it accumulates into the
same logical statement).

Usage: check_public_docs.py <header-or-directory>...
Exits 1 and lists every undocumented symbol found.
"""

import os
import re
import sys

ACCESS_LABELS = {"public:", "protected:", "private:"}
TYPE_KEYWORDS = ("class ", "struct ", "enum ", "using ", "typedef ")


def strip_line_comment(line):
    """Remove a trailing // comment (headers here have no // in strings)."""
    pos = line.find("//")
    return line[:pos] if pos >= 0 else line


def statement_name(stmt):
    """Best-effort symbol name for the error message."""
    for kw in ("class", "struct", "enum"):
        m = re.search(r"\b%s\s+([A-Za-z_]\w*)" % kw, stmt)
        if m:
            return m.group(1)
    m = re.search(r"\busing\s+([A-Za-z_]\w*)\s*=", stmt)
    if m:
        return m.group(1)
    m = re.search(r"([~A-Za-z_][\w:]*)\s*\(", stmt)
    if m:
        return m.group(1)
    return stmt[:60]


def check_header(path):
    """Returns a list of (line_number, symbol) undocumented public symbols."""
    with open(path, encoding="utf-8") as f:
        lines = f.readlines()

    errors = []
    # Brace-scope stack: 'ns' (namespace), 'pub'/'priv' (class body with
    # that access), 'skip' (function body or other ignored scope).
    stack = []
    pending_doc = False
    in_block_comment = False
    skip_depth = 0  # unbalanced braces inside a 'skip' scope

    stmt = ""       # logical statement being accumulated
    stmt_line = 0   # line the statement started on
    stmt_doc = False

    def context():
        for entry in reversed(stack):
            if entry == "skip":
                return "skip"
            return entry
        return "ns"  # file scope

    def finish_statement():
        nonlocal stmt, stmt_doc
        text = " ".join(stmt.split())
        open_braces = text.count("{") - text.count("}")
        ctx = context()

        if text.startswith("namespace"):
            if open_braces > 0:
                stack.append("ns")
        elif re.match(r"(template\s*<.*>\s*)?(class|struct|enum)\b", text):
            is_definition = open_braces > 0
            if ctx in ("ns", "pub") and (is_definition or ";" not in text):
                pass  # fallthrough to doc check below
            if is_definition:
                if ctx in ("ns", "pub") and not stmt_doc:
                    errors.append((stmt_line, statement_name(text)))
                kind = "pub" if re.search(r"\b(struct|enum)\b", text) \
                    else "priv"
                stack.append(kind if ctx != "skip" else "skip")
        elif open_braces > 0:
            # Function (or lambda-bearing) definition: check, skip the body.
            if ctx in ("ns", "pub") and "(" in text and not _exempt(text):
                if not stmt_doc:
                    errors.append((stmt_line, statement_name(text)))
            stack.append("skip")
            _note_skip(open_braces)
        else:
            # One-line statement: declaration, alias, or variable.
            if ctx in ("ns", "pub") and not _exempt(text):
                is_type = text.startswith(TYPE_KEYWORDS) and (
                    "=" in text or "{" in text)
                is_function = "(" in text and (
                    ";" in text or "{" in text) and not _is_variable(text)
                if (is_type or is_function) and not stmt_doc:
                    errors.append((stmt_line, statement_name(text)))
        stmt = ""
        stmt_doc = False

    def _exempt(text):
        if "= delete" in text or "= default" in text:
            return True
        # Forward declaration: `class X;` with no body.
        if re.match(r"(class|struct|enum)\s+[A-Za-z_]\w*\s*;", text):
            return True
        return False

    def _is_variable(text):
        # `std::function<void(int)> member;` has parens but no argument
        # list following a name — treat decls whose parens all sit inside
        # template angle brackets as variables.
        depth, i = 0, 0
        for ch in text:
            if ch == "<":
                depth += 1
            elif ch == ">":
                depth = max(0, depth - 1)
            elif ch == "(" and depth == 0:
                return False
            i += 1
        return True

    skip_extra = [0]

    def _note_skip(n):
        skip_extra[0] = n - 1  # one '{' is accounted by the stack entry

    for lineno, raw in enumerate(lines, 1):
        line = raw.strip()

        if in_block_comment:
            if "*/" in line:
                in_block_comment = False
                pending_doc = True
            continue

        if not stmt:
            if not line:
                pending_doc = False
                continue
            if line.startswith("///") or line.startswith("//!"):
                pending_doc = True
                continue
            if line.startswith("/**") or line.startswith("/*!"):
                if "*/" not in line:
                    in_block_comment = True
                else:
                    pending_doc = True
                continue
            if line.startswith("//") or line.startswith("/*"):
                pending_doc = False
                continue
            if line.startswith("#"):
                pending_doc = False
                continue

        code = strip_line_comment(line).strip()
        if not code:
            continue

        # Inside a skipped scope, only track braces until it closes.
        if context() == "skip":
            skip_extra[0] += code.count("{") - code.count("}")
            while skip_extra[0] < 0 and stack:
                entry = stack.pop()
                skip_extra[0] += 1
                if entry != "skip":
                    break
            if skip_extra[0] < 0:
                skip_extra[0] = 0
            continue

        if code in ACCESS_LABELS:
            if stack and stack[-1] in ("pub", "priv"):
                stack[-1] = "pub" if code == "public:" else "priv"
            pending_doc = False
            continue

        if code.startswith("}"):
            closes = code.count("}") - code.count("{")
            for _ in range(max(1, closes)):
                if stack:
                    stack.pop()
            pending_doc = False
            continue

        if not stmt:
            stmt_line = lineno
            stmt_doc = pending_doc
            pending_doc = False
        stmt += " " + code

        # A statement is complete once it has a terminator and balanced
        # parens (multi-line signatures keep accumulating).
        parens = stmt.count("(") - stmt.count(")")
        braces = stmt.count("{") - stmt.count("}")
        terminated = (";" in code and parens == 0 and braces <= 0) or \
            (braces > 0 and parens == 0) or \
            ("{" in stmt and braces == 0 and parens == 0 and
             code.endswith("}"))
        if terminated:
            finish_statement()

    return errors


def collect_headers(args):
    headers = []
    for arg in args:
        if os.path.isdir(arg):
            for root, _, files in os.walk(arg):
                headers.extend(
                    os.path.join(root, f) for f in sorted(files)
                    if f.endswith(".h"))
        else:
            headers.append(arg)
    return headers


def main():
    if len(sys.argv) < 2:
        print("usage: check_public_docs.py <header-or-directory>...",
              file=sys.stderr)
        return 2
    failures = 0
    headers = collect_headers(sys.argv[1:])
    for path in headers:
        for lineno, symbol in check_header(path):
            print("%s:%d: undocumented public symbol: %s"
                  % (path, lineno, symbol), file=sys.stderr)
            failures += 1
    if failures:
        print("check_public_docs: %d undocumented public symbol(s)"
              % failures, file=sys.stderr)
        return 1
    print("check_public_docs: %d header(s) clean" % len(headers))
    return 0


if __name__ == "__main__":
    sys.exit(main())
