#ifndef M2TD_PARALLEL_THREAD_POOL_H_
#define M2TD_PARALLEL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "robust/cancel.h"

namespace m2td::parallel {

namespace internal {

/// \brief One parallel region: a fixed number of chunks claimed by
/// work-sharing.
///
/// Chunks are claimed with a single atomic fetch-add, so any thread —
/// pool workers and the initiating thread alike — can help drain the
/// region. The first exception thrown by a chunk is captured and the
/// region is cancelled: remaining chunks are still *claimed* (so the
/// completion count converges) but their bodies are skipped, and the
/// captured exception is rethrown exactly once, in the initiator.
///
/// `cancel` is the initiator's ambient CancelToken: a fired token
/// cancels the region through the same machinery (pending chunk bodies
/// are skipped and a robust::CancelledError is rethrown in the
/// initiator), and executors re-install it as *their* ambient token
/// while running chunk bodies, so cancellation crosses the pool's
/// thread boundary.
struct Region {
  /// Runs chunk `index` in [0, num_chunks).
  std::function<void(std::uint64_t index)> run_chunk;
  std::uint64_t num_chunks = 0;
  /// Ambient token captured by the initiator (null when none).
  robust::CancelToken cancel;

  std::atomic<std::uint64_t> next_chunk{0};
  std::atomic<bool> cancelled{false};

  std::mutex mu;
  std::condition_variable done_cv;
  /// Chunks finished (run or skipped); guarded by `mu`.
  std::uint64_t completed = 0;
  /// First exception thrown by a chunk body; guarded by `mu`.
  std::exception_ptr error;
};

}  // namespace internal

/// \brief Fixed-size work-sharing thread pool.
///
/// A pool of size N owns N-1 OS worker threads: the thread that initiates
/// a region always participates in executing it, so `--threads=1` means a
/// fully inline, zero-thread serial pool and nested regions can never
/// deadlock (an initiator only blocks once every chunk of its region has
/// been claimed, and every claimed chunk is being executed by some thread
/// that makes progress).
///
/// Thread-safety: RunRegion may be called concurrently from any thread,
/// including from inside a chunk of another region (nested parallelism —
/// the inner initiator participates, and idle workers pick up inner
/// chunks once their outer claims are exhausted). Construction and
/// destruction must not race with RunRegion.
class ThreadPool {
 public:
  /// Creates a pool of `num_threads` total execution threads (clamped to
  /// at least 1); spawns `num_threads - 1` workers.
  explicit ThreadPool(int num_threads);

  /// Joins all workers. Queued regions are drained by their initiators
  /// (which always participate), never abandoned.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total execution threads (workers + the initiating caller).
  int num_threads() const { return num_threads_; }

  /// Executes every chunk of `region`, the caller participating, and
  /// returns once all chunks completed. Rethrows the first chunk
  /// exception (exactly once).
  void RunRegion(const std::shared_ptr<internal::Region>& region);

  /// Regions currently enqueued (diagnostic; also exported as the
  /// `parallel.queue_depth` gauge).
  std::size_t QueueDepth() const;

 private:
  void WorkerLoop();
  /// Claims and runs chunks of `region` until none are left.
  static void ExecuteChunks(internal::Region& region);

  int num_threads_;
  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::deque<std::shared_ptr<internal::Region>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

/// Number of hardware threads (>= 1 even when the runtime reports 0).
int HardwareThreads();

/// \brief Process-wide pool singleton, created on first use with
/// HardwareThreads() threads (or the size set by SetGlobalThreads).
///
/// All parallel kernels in the library run on this pool; the CLI's
/// `--threads` flag configures it. The reference stays valid until the
/// next SetGlobalThreads call.
ThreadPool& GlobalPool();

/// Resizes the global pool to `num_threads` total threads (clamped to
/// [1, 512]). Must not be called while regions are in flight (callers:
/// CLI startup, bench sweeps, tests between cases).
void SetGlobalThreads(int num_threads);

/// Size the global pool has (or will be created with).
int GlobalThreads();

}  // namespace m2td::parallel

#endif  // M2TD_PARALLEL_THREAD_POOL_H_
