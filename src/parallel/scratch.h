#ifndef M2TD_PARALLEL_SCRATCH_H_
#define M2TD_PARALLEL_SCRATCH_H_

#include <cstddef>
#include <cstdint>
#include <new>
#include <utility>
#include <vector>

namespace m2td::parallel {

namespace internal {

/// Cache-line (64-byte) alignment for every scratch lease, so SIMD
/// kernels may use aligned vector loads on scratch accumulators and two
/// threads' leases never share a cache line.
inline constexpr std::size_t kScratchAlignment = 64;

/// Minimal std::allocator drop-in returning kScratchAlignment-aligned
/// storage via the C++17 aligned operator new (which the
/// M2TD_ALLOC_TRACKING shim intercepts, so leased bytes stay counted).
template <typename T>
struct AlignedScratchAllocator {
  /// Element type, allocator-traits requirement.
  using value_type = T;

  /// Default-constructs (stateless allocator).
  AlignedScratchAllocator() = default;
  /// Rebinding copy, allocator-traits requirement.
  template <typename U>
  AlignedScratchAllocator(const AlignedScratchAllocator<U>&) {}

  /// Allocates storage for `n` elements at kScratchAlignment.
  T* allocate(std::size_t n) {
    return static_cast<T*>(::operator new(
        n * sizeof(T), std::align_val_t{kScratchAlignment}));
  }
  /// Releases storage obtained from allocate().
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{kScratchAlignment});
  }

  /// Stateless allocators always compare equal.
  friend bool operator==(const AlignedScratchAllocator&,
                         const AlignedScratchAllocator&) {
    return true;
  }
};

/// Buffer type handed out by the arena: a vector whose data() is
/// 64-byte aligned.
template <typename T>
using ScratchVector = std::vector<T, AlignedScratchAllocator<T>>;

/// Per-type free list backing ScratchLease. One instance lives in each
/// thread's ScratchArena; not thread-safe on its own (the arena's
/// thread_local storage is the synchronization).
template <typename T>
class ScratchPool {
 public:
  /// Pops a buffer of capacity >= n (or allocates one), sized to exactly
  /// n elements, zero-initialized. `*reused` reports whether the free
  /// list served the request.
  ScratchVector<T> Acquire(std::size_t n, bool* reused) {
    if (!free_.empty()) {
      *reused = true;
      ScratchVector<T> buf = std::move(free_.back());
      free_.pop_back();
      buf.clear();
      buf.resize(n, T{});
      return buf;
    }
    *reused = false;
    return ScratchVector<T>(n, T{});
  }

  /// Returns a buffer to the free list for reuse.
  void Release(ScratchVector<T>&& buf) {
    if (free_.size() < kMaxFreeBuffers) free_.push_back(std::move(buf));
  }

 private:
  // Bound the list so a one-off huge kernel cannot pin memory forever;
  // the hot kernels lease at most a couple of buffers at a time.
  static constexpr std::size_t kMaxFreeBuffers = 8;
  std::vector<ScratchVector<T>> free_;
};

}  // namespace internal

template <typename T>
class ScratchLease;

/// \brief Thread-local scratch allocator for the hot kernels.
///
/// The sparse TTM / Gram kernels run 1000+ times per decomposition, each
/// call wanting a handful of short-lived buffers (per-fiber accumulators,
/// decode scratch). Leasing from the calling thread's arena turns those
/// allocations into free-list pops after the first call. Thread safety is
/// by construction: the arena is `thread_local`, so pool workers and the
/// initiating thread each reuse their own buffers and no lock or atomic is
/// involved (TSAN-clean). Buffers come back zeroed, sized to the request,
/// and 64-byte aligned (internal::kScratchAlignment) so vectorized
/// kernels can treat scratch accumulators as aligned streams.
///
/// Usage:
/// ```cpp
/// auto acc = parallel::ScratchArena::Get().Doubles(new_dim);
/// acc[j] += ...;                 // acc behaves like a vector<double>
/// // destructor returns the buffer to this thread's free list
/// ```
///
/// Metrics: `parallel.scratch.acquires` counts every lease,
/// `parallel.scratch.reuses` the subset served from the free list.
class ScratchArena {
 public:
  /// The calling thread's arena (created on first use, lives for the
  /// thread's lifetime).
  static ScratchArena& Get();

  /// Leases a zeroed double buffer of exactly `n` elements.
  ScratchLease<double> Doubles(std::size_t n);

  /// Leases a zeroed uint32 buffer of exactly `n` elements.
  ScratchLease<std::uint32_t> U32(std::size_t n);

  /// Leases a zeroed uint64 buffer of exactly `n` elements.
  ScratchLease<std::uint64_t> U64(std::size_t n);

 private:
  friend class ScratchLease<double>;
  friend class ScratchLease<std::uint32_t>;
  friend class ScratchLease<std::uint64_t>;

  template <typename T>
  internal::ScratchPool<T>& PoolFor();

  internal::ScratchPool<double> doubles_;
  internal::ScratchPool<std::uint32_t> u32_;
  internal::ScratchPool<std::uint64_t> u64_;
};

/// \brief RAII lease of a scratch buffer; returns it to the owning
/// thread's arena on destruction.
///
/// Move-only. Must be destroyed on the thread that leased it (the hot
/// kernels lease inside a chunk body, which never migrates threads).
template <typename T>
class ScratchLease {
 public:
  /// Wraps `buf` for return to `arena` on destruction (arena-internal;
  /// obtain leases via ScratchArena::Doubles/U32/U64).
  ScratchLease(ScratchArena* arena, internal::ScratchVector<T> buf)
      : arena_(arena), buf_(std::move(buf)) {}
  /// Returns the buffer to the owning thread's free list.
  ~ScratchLease() {
    if (arena_ != nullptr) arena_->PoolFor<T>().Release(std::move(buf_));
  }

  /// Transfers the buffer; the source lease releases nothing.
  ScratchLease(ScratchLease&& other) noexcept
      : arena_(other.arena_), buf_(std::move(other.buf_)) {
    other.arena_ = nullptr;
  }
  ScratchLease& operator=(ScratchLease&&) = delete;
  ScratchLease(const ScratchLease&) = delete;
  ScratchLease& operator=(const ScratchLease&) = delete;

  /// Element access, vector semantics.
  T& operator[](std::size_t i) { return buf_[i]; }
  /// Element access, vector semantics.
  const T& operator[](std::size_t i) const { return buf_[i]; }
  /// Raw pointer to the leased storage.
  T* data() { return buf_.data(); }
  /// Raw pointer to the leased storage.
  const T* data() const { return buf_.data(); }
  /// Number of elements leased.
  std::size_t size() const { return buf_.size(); }

 private:
  ScratchArena* arena_;
  internal::ScratchVector<T> buf_;
};

}  // namespace m2td::parallel

#endif  // M2TD_PARALLEL_SCRATCH_H_
