#include "parallel/thread_pool.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace m2td::parallel {

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(std::max(1, num_threads)) {
  workers_.reserve(static_cast<std::size_t>(num_threads_ - 1));
  for (int w = 0; w < num_threads_ - 1; ++w) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::ExecuteChunks(internal::Region& region) {
  static obs::Counter& busy_us = obs::GetCounter("parallel.busy_us");
  for (;;) {
    const std::uint64_t index =
        region.next_chunk.fetch_add(1, std::memory_order_relaxed);
    if (index >= region.num_chunks) return;
    // A fired CancelToken cancels the region exactly like a chunk
    // exception: remaining chunks are claimed-but-skipped and the
    // initiator rethrows CancelledError once.
    if (!region.cancelled.load(std::memory_order_relaxed) &&
        region.cancel.IsCancelled()) {
      region.cancelled.store(true, std::memory_order_relaxed);
      std::lock_guard<std::mutex> lock(region.mu);
      if (!region.error) {
        region.error = std::make_exception_ptr(
            robust::CancelledError(region.cancel.cause()));
      }
    }
    const bool measure = obs::MetricsEnabled();
    const double start_us = measure ? obs::Tracer::NowMicros() : 0.0;
    if (!region.cancelled.load(std::memory_order_relaxed)) {
      try {
        // Chunk bodies run with the initiator's token ambient, so
        // nested kernels (and nested regions) on pool workers observe
        // the same cancellation the initiating thread would.
        robust::CancelScope scope(region.cancel);
        region.run_chunk(index);
      } catch (...) {
        region.cancelled.store(true, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(region.mu);
        if (!region.error) region.error = std::current_exception();
      }
    }
    if (measure) {
      busy_us.Add(static_cast<std::uint64_t>(
          std::max(0.0, obs::Tracer::NowMicros() - start_us)));
    }
    bool all_done = false;
    {
      std::lock_guard<std::mutex> lock(region.mu);
      all_done = ++region.completed == region.num_chunks;
    }
    if (all_done) region.done_cv.notify_all();
  }
}

void ThreadPool::RunRegion(const std::shared_ptr<internal::Region>& region) {
  if (region->num_chunks == 0) return;
  if (!workers_.empty()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.push_back(region);
      obs::GetGauge("parallel.queue_depth")
          .Set(static_cast<double>(queue_.size()));
    }
    work_cv_.notify_all();
  }
  // The initiator always helps drain its own region: with zero workers
  // this is the serial path, and from inside a pool worker it is what
  // makes nested regions deadlock-free.
  ExecuteChunks(*region);
  {
    std::unique_lock<std::mutex> lock(region->mu);
    region->done_cv.wait(
        lock, [&] { return region->completed == region->num_chunks; });
    if (region->error) std::rethrow_exception(region->error);
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::shared_ptr<internal::Region> region;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (stop_) return;
      region = queue_.front();
      if (region->next_chunk.load(std::memory_order_relaxed) >=
          region->num_chunks) {
        // Fully claimed already; executors hold their own references.
        queue_.pop_front();
        obs::GetGauge("parallel.queue_depth")
            .Set(static_cast<double>(queue_.size()));
        continue;
      }
    }
    obs::GetCounter("parallel.worker_chunk_batches").Increment();
    ExecuteChunks(*region);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!queue_.empty() && queue_.front() == region) {
        queue_.pop_front();
        obs::GetGauge("parallel.queue_depth")
            .Set(static_cast<double>(queue_.size()));
      }
    }
  }
}

std::size_t ThreadPool::QueueDepth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

int HardwareThreads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

namespace {

std::mutex g_pool_mu;
std::unique_ptr<ThreadPool> g_pool;          // guarded by g_pool_mu
int g_requested_threads = 0;                 // 0 = HardwareThreads()

}  // namespace

ThreadPool& GlobalPool() {
  std::lock_guard<std::mutex> lock(g_pool_mu);
  if (!g_pool) {
    const int n =
        g_requested_threads > 0 ? g_requested_threads : HardwareThreads();
    g_pool = std::make_unique<ThreadPool>(n);
  }
  return *g_pool;
}

void SetGlobalThreads(int num_threads) {
  const int clamped = std::clamp(num_threads, 1, 512);
  std::lock_guard<std::mutex> lock(g_pool_mu);
  g_requested_threads = clamped;
  if (g_pool && g_pool->num_threads() == clamped) return;
  g_pool.reset();  // joins the old workers before the new pool spawns
  g_pool = std::make_unique<ThreadPool>(clamped);
}

int GlobalThreads() {
  std::lock_guard<std::mutex> lock(g_pool_mu);
  if (g_pool) return g_pool->num_threads();
  return g_requested_threads > 0 ? g_requested_threads : HardwareThreads();
}

}  // namespace m2td::parallel
