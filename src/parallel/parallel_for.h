#ifndef M2TD_PARALLEL_PARALLEL_FOR_H_
#define M2TD_PARALLEL_PARALLEL_FOR_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "parallel/thread_pool.h"

namespace m2td::parallel {

/// Chunk callback: processes the half-open index range [begin, end).
using ChunkFn = std::function<void(std::uint64_t begin, std::uint64_t end)>;

/// \brief Runs `fn` over [begin, end) in parallel chunks on the global
/// pool.
///
/// The range is split into contiguous chunks of `grain` indices
/// (`grain == 0` picks ~4 chunks per pool thread, floored at 256 indices
/// per chunk so cheap per-element bodies are not swamped by dispatch —
/// pass an explicit larger grain for kernels whose body is mere loads
/// and stores); chunks are claimed by
/// work-sharing across the pool's workers plus the calling thread, which
/// always participates (so nesting ParallelFor inside a chunk is legal
/// and deadlock-free, and a 1-thread pool degenerates to an inline serial
/// loop). Callers must treat chunk *boundaries* as unspecified: only the
/// union of all chunks — exactly [begin, end), each index once — is
/// contractual. Writes from different chunks must target disjoint data
/// (or the caller synchronizes); use ParallelReduce for accumulations.
///
/// The first exception thrown by a chunk cancels the remaining chunks
/// and is rethrown exactly once in the caller. The caller's ambient
/// robust::CancelToken (CurrentCancelToken) makes every region a
/// cancellation point: a fired token stops further chunk bodies through
/// the same machinery and surfaces as a single robust::CancelledError
/// in the caller; chunk bodies run with that token ambient even on pool
/// workers. With tracing enabled the region appears as a `label` span
/// annotated with range/chunks/threads, and the pool counters
/// (`parallel.regions`, `parallel.chunks`, `parallel.busy_us`, gauge
/// `parallel.queue_depth`) are updated.
void ParallelFor(std::uint64_t begin, std::uint64_t end, std::uint64_t grain,
                 const ChunkFn& fn, const char* label);

/// ParallelFor with the default span label "parallel_for".
void ParallelFor(std::uint64_t begin, std::uint64_t end, std::uint64_t grain,
                 const ChunkFn& fn);

namespace internal {

/// Deterministic reduction grain: `grain` when positive, otherwise the
/// range split into at most kReduceChunks pieces. Never depends on the
/// pool size — this is what makes ParallelReduce results identical
/// across thread counts.
inline std::uint64_t ReduceGrain(std::uint64_t range, std::uint64_t grain) {
  constexpr std::uint64_t kReduceChunks = 16;
  if (grain > 0) return grain;
  return std::max<std::uint64_t>(1,
                                 (range + kReduceChunks - 1) / kReduceChunks);
}

}  // namespace internal

/// \brief Ordered-merge parallel reduction over [begin, end).
///
/// `chunk_fn(chunk_begin, chunk_end) -> T` computes a partial result per
/// chunk (running serially within the chunk, in index order);
/// `merge(acc, partial)` folds the partials into `init` **in ascending
/// chunk order** on the calling thread. Chunk boundaries are a pure
/// function of the range and `grain` (`grain == 0` uses a fixed 16-way
/// split) — never of the pool size — so for a deterministic `chunk_fn`
/// the result is bit-identical across thread counts, including
/// floating-point accumulations whose association is fixed by the
/// chunking. Exceptions from `chunk_fn` propagate exactly once; no merge
/// happens after a failure.
template <typename T, typename ChunkFnT, typename MergeFn>
T ParallelReduce(std::uint64_t begin, std::uint64_t end, std::uint64_t grain,
                 T init, const ChunkFnT& chunk_fn, const MergeFn& merge,
                 const char* label = "parallel_reduce") {
  if (end <= begin) return init;
  const std::uint64_t range = end - begin;
  const std::uint64_t g = internal::ReduceGrain(range, grain);
  const std::uint64_t num_chunks = (range + g - 1) / g;
  std::vector<std::optional<T>> partials(
      static_cast<std::size_t>(num_chunks));
  ParallelFor(
      0, num_chunks, 1,
      [&](std::uint64_t cb, std::uint64_t ce) {
        for (std::uint64_t c = cb; c < ce; ++c) {
          const std::uint64_t b = begin + c * g;
          const std::uint64_t e = std::min(end, b + g);
          partials[static_cast<std::size_t>(c)].emplace(chunk_fn(b, e));
        }
      },
      label);
  T acc = std::move(init);
  for (auto& partial : partials) {
    merge(acc, std::move(*partial));
  }
  return acc;
}

}  // namespace m2td::parallel

#endif  // M2TD_PARALLEL_PARALLEL_FOR_H_
