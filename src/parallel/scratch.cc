#include "parallel/scratch.h"

#include "obs/alloc.h"
#include "obs/metrics.h"

namespace m2td::parallel {

namespace {

void CountAcquire(bool reused) {
  static obs::Counter& acquires = obs::GetCounter("parallel.scratch.acquires");
  static obs::Counter& reuses = obs::GetCounter("parallel.scratch.reuses");
  acquires.Increment();
  if (reused) reuses.Increment();
}

/// Feeds fresh (non-free-list) buffer allocations into the per-thread
/// alloc tally in builds without the operator-new shim, so span/phase
/// alloc attribution has at least kernel-scratch granularity. With the
/// shim compiled in the underlying vector allocation is already counted,
/// so this would double-count and compiles out.
void CountFreshBytes(std::size_t bytes, bool reused) {
#if !defined(M2TD_ALLOC_TRACKING)
  if (!reused) obs::RecordAlloc(bytes);
#else
  (void)bytes;
  (void)reused;
#endif
}

}  // namespace

ScratchArena& ScratchArena::Get() {
  thread_local ScratchArena arena;
  return arena;
}

template <>
internal::ScratchPool<double>& ScratchArena::PoolFor<double>() {
  return doubles_;
}
template <>
internal::ScratchPool<std::uint32_t>& ScratchArena::PoolFor<std::uint32_t>() {
  return u32_;
}
template <>
internal::ScratchPool<std::uint64_t>& ScratchArena::PoolFor<std::uint64_t>() {
  return u64_;
}

namespace {

template <typename T>
ScratchLease<T> Lease(ScratchArena* arena, internal::ScratchPool<T>& pool,
                      std::size_t n) {
  bool reused = false;
  internal::ScratchVector<T> buf = pool.Acquire(n, &reused);
  CountAcquire(reused);
  CountFreshBytes(n * sizeof(T), reused);
  return ScratchLease<T>(arena, std::move(buf));
}

}  // namespace

ScratchLease<double> ScratchArena::Doubles(std::size_t n) {
  return Lease(this, doubles_, n);
}

ScratchLease<std::uint32_t> ScratchArena::U32(std::size_t n) {
  return Lease(this, u32_, n);
}

ScratchLease<std::uint64_t> ScratchArena::U64(std::size_t n) {
  return Lease(this, u64_, n);
}

}  // namespace m2td::parallel
