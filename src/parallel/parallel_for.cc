#include "parallel/parallel_for.h"

#include <memory>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace m2td::parallel {

void ParallelFor(std::uint64_t begin, std::uint64_t end, std::uint64_t grain,
                 const ChunkFn& fn, const char* label) {
  if (end <= begin) return;
  // Every ParallelFor is a cancellation point: an already-fired ambient
  // token stops the region before any chunk runs, a token firing mid-
  // region stops further chunks (thread_pool.cc). Either way the caller
  // sees one robust::CancelledError.
  const robust::CancelToken cancel = robust::CurrentCancelToken();
  if (cancel.IsCancelled()) throw robust::CancelledError(cancel.cause());
  const std::uint64_t range = end - begin;
  ThreadPool& pool = GlobalPool();
  const std::uint64_t threads =
      static_cast<std::uint64_t>(pool.num_threads());
  // Default grain targets 4 chunks per thread but never drops below a
  // floor: per-element kernel bodies are often a handful of ns, and
  // sub-256-element chunks make pool dispatch dominate (the t8 matricize
  // regression in BENCH_micro_kernels came from exactly this). The floor
  // depends only on the constant, not the pool size, so chunk boundaries
  // stay a pure function of (range, grain) per thread count — callers
  // relying on chunk-count determinism (ParallelReduce merges) pass an
  // explicit grain anyway.
  constexpr std::uint64_t kMinAutoGrain = 256;
  const std::uint64_t g =
      grain > 0 ? grain
                : std::max<std::uint64_t>(kMinAutoGrain,
                                          range / (4 * threads));
  const std::uint64_t num_chunks = (range + g - 1) / g;

  // Single chunk or serial pool: run inline, no region machinery. The
  // exception path is identical (propagates once to the caller).
  if (num_chunks <= 1 || threads <= 1) {
    fn(begin, end);
    return;
  }

  obs::ObsSpan span(label);
  span.Annotate("range", range);
  span.Annotate("chunks", num_chunks);
  span.Annotate("threads", threads);
  static obs::Counter& regions = obs::GetCounter("parallel.regions");
  static obs::Counter& chunks = obs::GetCounter("parallel.chunks");
  regions.Increment();
  chunks.Add(num_chunks);

  auto region = std::make_shared<internal::Region>();
  region->num_chunks = num_chunks;
  region->cancel = cancel;
  region->run_chunk = [&, g](std::uint64_t index) {
    const std::uint64_t b = begin + index * g;
    const std::uint64_t e = std::min(end, b + g);
    fn(b, e);
  };
  pool.RunRegion(region);
}

void ParallelFor(std::uint64_t begin, std::uint64_t end, std::uint64_t grain,
                 const ChunkFn& fn) {
  ParallelFor(begin, end, grain, fn, "parallel_for");
}

}  // namespace m2td::parallel
