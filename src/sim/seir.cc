#include "sim/seir.h"

namespace m2td::sim {

Result<SeirSystem> SeirSystem::Create(double beta, double sigma,
                                      double gamma) {
  if (!(beta > 0.0) || !(sigma > 0.0) || !(gamma > 0.0)) {
    return Status::InvalidArgument("SEIR rates must be positive");
  }
  return SeirSystem(beta, sigma, gamma);
}

void SeirSystem::Derivative(double /*t*/, const std::vector<double>& state,
                            std::vector<double>* derivative) const {
  const double s = state[0];
  const double e = state[1];
  const double i = state[2];
  const double infection = beta_ * s * i;
  (*derivative)[0] = -infection;
  (*derivative)[1] = infection - sigma_ * e;
  (*derivative)[2] = sigma_ * e - gamma_ * i;
  (*derivative)[3] = gamma_ * i;
}

Result<std::vector<double>> SeirSystem::InitialState(double i0) {
  if (!(i0 > 0.0) || !(i0 < 1.0)) {
    return Status::InvalidArgument("i0 must be in (0, 1)");
  }
  return std::vector<double>{1.0 - i0, 0.0, i0, 0.0};
}

}  // namespace m2td::sim
