#ifndef M2TD_SIM_LORENZ_H_
#define M2TD_SIM_LORENZ_H_

#include <vector>

#include "sim/ode.h"

namespace m2td::sim {

/// \brief The Lorenz system, chaotic for the classic parameter regime:
///   dx/dt = sigma (y - x)
///   dy/dt = x (rho - z) - y
///   dz/dt = x y - beta z.
///
/// The paper's four variable parameters are the initial z coordinate plus
/// (sigma, beta, rho); x0 and y0 are fixed constants of the ensemble.
class LorenzSystem : public OdeSystem {
 public:
  LorenzSystem(double sigma, double rho, double beta)
      : sigma_(sigma), rho_(rho), beta_(beta) {}

  double sigma() const { return sigma_; }
  double rho() const { return rho_; }
  double beta() const { return beta_; }

  std::size_t StateSize() const override { return 3; }
  void Derivative(double t, const std::vector<double>& state,
                  std::vector<double>* derivative) const override;

  /// State from the paper's parameterization: fixed (x0, y0), variable z0.
  static std::vector<double> InitialState(double x0, double y0, double z0) {
    return {x0, y0, z0};
  }

 private:
  double sigma_;
  double rho_;
  double beta_;
};

}  // namespace m2td::sim

#endif  // M2TD_SIM_LORENZ_H_
