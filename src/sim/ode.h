#ifndef M2TD_SIM_ODE_H_
#define M2TD_SIM_ODE_H_

#include <cstddef>
#include <vector>

#include "util/result.h"

namespace m2td::sim {

/// \brief A first-order ODE system dx/dt = f(t, x).
///
/// Implementations are the dynamical processes the paper simulates (chain
/// pendulum, Lorenz). The ensemble layer never touches states directly; it
/// compares *observables* (e.g. pendulum angles) between a simulated and a
/// reference trajectory.
class OdeSystem {
 public:
  virtual ~OdeSystem() = default;

  /// Length of the state vector.
  virtual std::size_t StateSize() const = 0;

  /// Writes f(t, state) into `derivative` (pre-sized to StateSize()).
  virtual void Derivative(double t, const std::vector<double>& state,
                          std::vector<double>* derivative) const = 0;

  /// Projects a state onto the observable quantities used for ensemble
  /// cell values (default: the full state).
  virtual std::vector<double> Observable(
      const std::vector<double>& state) const {
    return state;
  }
};

/// A simulated trajectory: recorded times and the observable vector at each.
struct Trajectory {
  std::vector<double> times;
  std::vector<std::vector<double>> observables;

  std::size_t NumSamples() const { return times.size(); }
};

/// Euclidean distance between the observables of two trajectories at sample
/// index `at`. Aborts when shapes disagree.
double ObservableDistance(const Trajectory& a, const Trajectory& b,
                          std::size_t at);

/// Fixed-step integration options.
struct Rk4Options {
  /// Integration step.
  double dt = 0.01;
  /// Total number of RK4 steps.
  int num_steps = 200;
  /// A sample (time + observable) is recorded every `record_every` steps;
  /// the initial state is always recorded, giving
  /// 1 + num_steps / record_every samples.
  int record_every = 20;
};

/// \brief Classic fixed-step fourth-order Runge–Kutta integration.
///
/// Fixed-step RK4 (rather than adaptive) keeps trajectories bitwise
/// deterministic across runs and parameter sweeps, which the ensemble
/// tensors rely on. Returns InvalidArgument for non-positive dt/steps or a
/// wrong-length initial state.
Result<Trajectory> IntegrateRk4(const OdeSystem& system,
                                std::vector<double> initial_state,
                                const Rk4Options& options);

}  // namespace m2td::sim

#endif  // M2TD_SIM_ODE_H_
