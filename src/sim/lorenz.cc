#include "sim/lorenz.h"

namespace m2td::sim {

void LorenzSystem::Derivative(double /*t*/, const std::vector<double>& state,
                              std::vector<double>* derivative) const {
  const double x = state[0];
  const double y = state[1];
  const double z = state[2];
  (*derivative)[0] = sigma_ * (y - x);
  (*derivative)[1] = x * (rho_ - z) - y;
  (*derivative)[2] = x * y - beta_ * z;
}

}  // namespace m2td::sim
