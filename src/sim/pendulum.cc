#include "sim/pendulum.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/logging.h"

namespace m2td::sim {

namespace {

/// Upper bound on chain length; keeps the per-step solver on the stack.
constexpr std::size_t kMaxLinks = 8;

/// In-place Gaussian elimination with partial pivoting on a kMaxLinks-sized
/// stack system. The mass matrix of a physical pendulum is symmetric
/// positive definite, so singularity here is a programming error.
void SolveSmallSystem(std::size_t n, double m[kMaxLinks][kMaxLinks],
                      double rhs[kMaxLinks], double out[kMaxLinks]) {
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    double best = std::fabs(m[col][col]);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double v = std::fabs(m[r][col]);
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    M2TD_CHECK(best > 1e-300) << "singular pendulum mass matrix";
    if (pivot != col) {
      for (std::size_t j = col; j < n; ++j) std::swap(m[col][j], m[pivot][j]);
      std::swap(rhs[col], rhs[pivot]);
    }
    const double inv = 1.0 / m[col][col];
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = m[r][col] * inv;
      if (factor == 0.0) continue;
      for (std::size_t j = col; j < n; ++j) m[r][j] -= factor * m[col][j];
      rhs[r] -= factor * rhs[col];
    }
  }
  for (std::size_t ri = n; ri-- > 0;) {
    double sum = rhs[ri];
    for (std::size_t j = ri + 1; j < n; ++j) sum -= m[ri][j] * out[j];
    out[ri] = sum / m[ri][ri];
  }
}

}  // namespace

Result<ChainPendulum> ChainPendulum::Create(std::vector<double> masses,
                                            double gravity, double friction) {
  if (masses.empty()) {
    return Status::InvalidArgument("pendulum needs at least one link");
  }
  if (masses.size() > kMaxLinks) {
    return Status::InvalidArgument("pendulum supports at most 8 links");
  }
  for (double m : masses) {
    if (!(m > 0.0)) {
      return Status::InvalidArgument("all masses must be positive");
    }
  }
  if (friction < 0.0) {
    return Status::InvalidArgument("friction must be non-negative");
  }
  return ChainPendulum(std::move(masses), gravity, friction);
}

ChainPendulum::ChainPendulum(std::vector<double> masses, double gravity,
                             double friction)
    : masses_(std::move(masses)), gravity_(gravity), friction_(friction) {
  const std::size_t n = masses_.size();
  a_matrix_.assign(n, std::vector<double>(n, 0.0));
  // Suffix sums of masses: A_ij = sum_{k >= max(i,j)} m_k.
  std::vector<double> suffix(n + 1, 0.0);
  for (std::size_t k = n; k-- > 0;) suffix[k] = suffix[k + 1] + masses_[k];
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      a_matrix_[i][j] = suffix[std::max(i, j)];
    }
  }
}

void ChainPendulum::Derivative(double /*t*/, const std::vector<double>& state,
                               std::vector<double>* derivative) const {
  const std::size_t n = masses_.size();
  M2TD_DCHECK(state.size() == 2 * n && derivative->size() == 2 * n);
  const double* theta = state.data();
  const double* omega = state.data() + n;

  double m[kMaxLinks][kMaxLinks];
  double rhs[kMaxLinks];
  double alpha[kMaxLinks];
  for (std::size_t i = 0; i < n; ++i) {
    double acc = -gravity_ * a_matrix_[i][i] * std::sin(theta[i]) -
                 friction_ * omega[i];
    for (std::size_t j = 0; j < n; ++j) {
      const double delta = theta[i] - theta[j];
      m[i][j] = a_matrix_[i][j] * std::cos(delta);
      acc -= a_matrix_[i][j] * std::sin(delta) * omega[j] * omega[j];
    }
    rhs[i] = acc;
  }
  SolveSmallSystem(n, m, rhs, alpha);

  for (std::size_t i = 0; i < n; ++i) {
    (*derivative)[i] = omega[i];
    (*derivative)[n + i] = alpha[i];
  }
}

std::vector<double> ChainPendulum::Observable(
    const std::vector<double>& state) const {
  const std::size_t n = masses_.size();
  return std::vector<double>(state.begin(), state.begin() + n);
}

std::vector<double> ChainPendulum::InitialState(
    const std::vector<double>& initial_angles) const {
  M2TD_CHECK(initial_angles.size() == masses_.size())
      << "one initial angle per link required";
  std::vector<double> state(2 * masses_.size(), 0.0);
  for (std::size_t i = 0; i < initial_angles.size(); ++i) {
    state[i] = initial_angles[i];
  }
  return state;
}

double ChainPendulum::TotalEnergy(const std::vector<double>& state) const {
  const std::size_t n = masses_.size();
  M2TD_CHECK(state.size() == 2 * n);
  const double* theta = state.data();
  const double* omega = state.data() + n;
  double energy = 0.0;
  double x = 0.0, y = 0.0, vx = 0.0, vy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    x += std::sin(theta[i]);
    y -= std::cos(theta[i]);
    vx += std::cos(theta[i]) * omega[i];
    vy += std::sin(theta[i]) * omega[i];
    energy += masses_[i] * (0.5 * (vx * vx + vy * vy) + gravity_ * y);
  }
  return energy;
}

void DoublePendulumReference::Derivative(
    double /*t*/, const std::vector<double>& state,
    std::vector<double>* derivative) const {
  const double th1 = state[0];
  const double th2 = state[1];
  const double w1 = state[2];
  const double w2 = state[3];
  const double g = gravity_;
  const double m1 = m1_;
  const double m2 = m2_;
  const double delta = th1 - th2;
  const double denom = 2.0 * m1 + m2 - m2 * std::cos(2.0 * th1 - 2.0 * th2);

  const double a1 =
      (-g * (2.0 * m1 + m2) * std::sin(th1) -
       m2 * g * std::sin(th1 - 2.0 * th2) -
       2.0 * std::sin(delta) * m2 * (w2 * w2 + w1 * w1 * std::cos(delta))) /
      denom;
  const double a2 =
      (2.0 * std::sin(delta) *
       (w1 * w1 * (m1 + m2) + g * (m1 + m2) * std::cos(th1) +
        w2 * w2 * m2 * std::cos(delta))) /
      denom;

  (*derivative)[0] = w1;
  (*derivative)[1] = w2;
  (*derivative)[2] = a1;
  (*derivative)[3] = a2;
}

}  // namespace m2td::sim
