#include "sim/ode.h"

#include <cmath>

#include "robust/cancel.h"
#include "util/logging.h"

namespace m2td::sim {

double ObservableDistance(const Trajectory& a, const Trajectory& b,
                          std::size_t at) {
  M2TD_CHECK(at < a.NumSamples() && at < b.NumSamples())
      << "sample index out of range";
  const std::vector<double>& oa = a.observables[at];
  const std::vector<double>& ob = b.observables[at];
  M2TD_CHECK(oa.size() == ob.size()) << "observable arity mismatch";
  double sum = 0.0;
  for (std::size_t i = 0; i < oa.size(); ++i) {
    const double d = oa[i] - ob[i];
    sum += d * d;
  }
  return std::sqrt(sum);
}

Result<Trajectory> IntegrateRk4(const OdeSystem& system,
                                std::vector<double> initial_state,
                                const Rk4Options& options) {
  if (options.dt <= 0.0) {
    return Status::InvalidArgument("dt must be positive");
  }
  if (options.num_steps <= 0 || options.record_every <= 0) {
    return Status::InvalidArgument("step counts must be positive");
  }
  const std::size_t n = system.StateSize();
  if (initial_state.size() != n) {
    return Status::InvalidArgument("initial state has wrong length");
  }

  Trajectory trajectory;
  trajectory.times.reserve(1 + options.num_steps / options.record_every);
  trajectory.observables.reserve(trajectory.times.capacity());

  std::vector<double> state = std::move(initial_state);
  std::vector<double> k1(n), k2(n), k3(n), k4(n), scratch(n);

  double t = 0.0;
  trajectory.times.push_back(t);
  trajectory.observables.push_back(system.Observable(state));

  const double dt = options.dt;
  for (int step = 1; step <= options.num_steps; ++step) {
    // Trajectories run long enough to matter for deadlines; amortize the
    // ambient-token load over a block of steps.
    if ((step & 0x3F) == 0) {
      M2TD_RETURN_IF_ERROR(robust::CheckCancelled());
    }
    system.Derivative(t, state, &k1);
    for (std::size_t i = 0; i < n; ++i) {
      scratch[i] = state[i] + 0.5 * dt * k1[i];
    }
    system.Derivative(t + 0.5 * dt, scratch, &k2);
    for (std::size_t i = 0; i < n; ++i) {
      scratch[i] = state[i] + 0.5 * dt * k2[i];
    }
    system.Derivative(t + 0.5 * dt, scratch, &k3);
    for (std::size_t i = 0; i < n; ++i) {
      scratch[i] = state[i] + dt * k3[i];
    }
    system.Derivative(t + dt, scratch, &k4);
    for (std::size_t i = 0; i < n; ++i) {
      state[i] += dt / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
    }
    t = step * dt;
    if (step % options.record_every == 0) {
      trajectory.times.push_back(t);
      trajectory.observables.push_back(system.Observable(state));
    }
  }
  return trajectory;
}

}  // namespace m2td::sim
