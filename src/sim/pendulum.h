#ifndef M2TD_SIM_PENDULUM_H_
#define M2TD_SIM_PENDULUM_H_

#include <vector>

#include "sim/ode.h"
#include "util/result.h"

namespace m2td::sim {

/// \brief Planar chain pendulum with `n` point masses on massless
/// unit-length rods, uniform gravity, and optional viscous joint friction.
///
/// This one model yields both evaluation systems of the paper: n=2 is the
/// double pendulum (friction 0) and n=3 the triple pendulum with variable
/// friction. The state vector is (theta_1..theta_n, omega_1..omega_n);
/// the observable is the angle vector (the paper treats the pendulum as a
/// multi-variate angle time series).
///
/// Dynamics: with A_ij = sum of the masses at or below link max(i, j),
///   sum_j A_ij cos(th_i - th_j) alpha_j =
///       - sum_j A_ij sin(th_i - th_j) omega_j^2
///       - g A_ii sin th_i - c omega_i,
/// solved for the angular accelerations alpha by an in-place small-system
/// Gaussian elimination at every derivative evaluation.
class ChainPendulum : public OdeSystem {
 public:
  /// Creates an n-link pendulum. `masses` must be non-empty, all positive;
  /// friction must be non-negative; gravity is the usual downward constant.
  static Result<ChainPendulum> Create(std::vector<double> masses,
                                      double gravity = 9.81,
                                      double friction = 0.0);

  std::size_t NumLinks() const { return masses_.size(); }
  double gravity() const { return gravity_; }
  double friction() const { return friction_; }
  const std::vector<double>& masses() const { return masses_; }

  std::size_t StateSize() const override { return 2 * masses_.size(); }
  void Derivative(double t, const std::vector<double>& state,
                  std::vector<double>* derivative) const override;
  /// Angles only.
  std::vector<double> Observable(
      const std::vector<double>& state) const override;

  /// Convenience: state from initial angles (angular velocities zero).
  std::vector<double> InitialState(
      const std::vector<double>& initial_angles) const;

  /// Total mechanical energy (for conservation tests, friction = 0):
  /// kinetic + potential of the point masses, potential zero at the pivot.
  double TotalEnergy(const std::vector<double>& state) const;

 private:
  ChainPendulum(std::vector<double> masses, double gravity, double friction);

  std::vector<double> masses_;
  /// a_matrix_[i][j] = sum_{k >= max(i,j)} masses_[k].
  std::vector<std::vector<double>> a_matrix_;
  double gravity_;
  double friction_;
};

/// \brief Closed-form double pendulum accelerations (the textbook
/// formulas), used as an independent oracle for ChainPendulum in tests.
///
/// Unit rod lengths. State layout matches ChainPendulum with n=2.
class DoublePendulumReference : public OdeSystem {
 public:
  DoublePendulumReference(double m1, double m2, double gravity = 9.81)
      : m1_(m1), m2_(m2), gravity_(gravity) {}

  std::size_t StateSize() const override { return 4; }
  void Derivative(double t, const std::vector<double>& state,
                  std::vector<double>* derivative) const override;
  std::vector<double> Observable(
      const std::vector<double>& state) const override {
    return {state[0], state[1]};
  }

 private:
  double m1_;
  double m2_;
  double gravity_;
};

}  // namespace m2td::sim

#endif  // M2TD_SIM_PENDULUM_H_
