#ifndef M2TD_SIM_SEIR_H_
#define M2TD_SIM_SEIR_H_

#include <vector>

#include "sim/ode.h"
#include "util/result.h"

namespace m2td::sim {

/// \brief SEIR compartmental epidemic model (normalized population):
///   dS/dt = -beta S I
///   dE/dt =  beta S I - sigma E
///   dI/dt =  sigma E  - gamma I
///   dR/dt =  gamma I.
///
/// The paper's introduction motivates simulation ensembles with epidemic
/// spread tools (STEM); this model provides that domain as a fourth
/// built-in system. State (S, E, I, R) sums to 1; the observable is the
/// (E, I) pair — the quantities a decision maker tracks.
class SeirSystem : public OdeSystem {
 public:
  /// beta: transmission rate, sigma: 1/incubation period, gamma: recovery
  /// rate. All must be positive.
  static Result<SeirSystem> Create(double beta, double sigma, double gamma);

  double beta() const { return beta_; }
  double sigma() const { return sigma_; }
  double gamma() const { return gamma_; }

  /// Basic reproduction number R0 = beta / gamma.
  double R0() const { return beta_ / gamma_; }

  std::size_t StateSize() const override { return 4; }
  void Derivative(double t, const std::vector<double>& state,
                  std::vector<double>* derivative) const override;
  std::vector<double> Observable(
      const std::vector<double>& state) const override {
    return {state[1], state[2]};
  }

  /// State with an initial infected fraction i0 (rest susceptible).
  /// i0 must be in (0, 1).
  static Result<std::vector<double>> InitialState(double i0);

 private:
  SeirSystem(double beta, double sigma, double gamma)
      : beta_(beta), sigma_(sigma), gamma_(gamma) {}

  double beta_;
  double sigma_;
  double gamma_;
};

}  // namespace m2td::sim

#endif  // M2TD_SIM_SEIR_H_
