#include "ensemble/sampling.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <sstream>
#include <unordered_set>

#include "io/tensor_io.h"
#include "obs/metrics.h"
#include "robust/cancel.h"
#include "robust/checkpoint.h"
#include "robust/durable.h"
#include "robust/failpoint.h"
#include "util/logging.h"

namespace m2td::ensemble {

const char* ConventionalSchemeName(ConventionalScheme scheme) {
  switch (scheme) {
    case ConventionalScheme::kRandom:
      return "Random";
    case ConventionalScheme::kGrid:
      return "Grid";
    case ConventionalScheme::kSlice:
      return "Slice";
    case ConventionalScheme::kLatinHypercube:
      return "LHS";
  }
  return "?";
}

namespace {

/// Dimensions of the parameter modes (time excluded), in mode order.
std::vector<std::uint64_t> ParamShape(const ParameterSpace& space,
                                      std::size_t time_mode) {
  std::vector<std::uint64_t> shape;
  shape.reserve(space.num_modes() - 1);
  for (std::size_t m = 0; m < space.num_modes(); ++m) {
    if (m != time_mode) shape.push_back(space.Resolution(m));
  }
  return shape;
}

std::uint64_t Product(const std::vector<std::uint64_t>& dims) {
  std::uint64_t total = 1;
  for (std::uint64_t d : dims) {
    if (d != 0 && total > ~0ULL / d) return ~0ULL;
    total *= d;
  }
  return total;
}

std::vector<std::uint32_t> DecodeLinear(
    std::uint64_t linear, const std::vector<std::uint64_t>& dims) {
  std::vector<std::uint32_t> combo(dims.size());
  for (std::size_t m = dims.size(); m-- > 0;) {
    combo[m] = static_cast<std::uint32_t>(linear % dims[m]);
    linear /= dims[m];
  }
  return combo;
}

std::uint64_t EncodeLinear(const std::vector<std::uint32_t>& combo,
                           const std::vector<std::uint64_t>& dims) {
  std::uint64_t linear = 0;
  for (std::size_t m = 0; m < dims.size(); ++m) {
    linear = linear * dims[m] + combo[m];
  }
  return linear;
}

std::vector<std::vector<std::uint32_t>> SelectRandom(
    const std::vector<std::uint64_t>& dims, std::uint64_t budget, Rng* rng) {
  const std::uint64_t total = Product(dims);
  std::vector<std::vector<std::uint32_t>> combos;
  for (std::uint64_t linear : rng->SampleWithoutReplacement(total, budget)) {
    combos.push_back(DecodeLinear(linear, dims));
  }
  return combos;
}

std::vector<std::vector<std::uint32_t>> SelectGrid(
    const std::vector<std::uint64_t>& dims, std::uint64_t budget) {
  const std::size_t p = dims.size();
  // Per-mode sub-grid sizes: grow the smallest count while the cross
  // product still fits the budget.
  std::vector<std::uint64_t> counts(p, 1);
  bool grew = true;
  while (grew) {
    grew = false;
    // Pick the growable mode with the smallest count.
    std::size_t best = p;
    for (std::size_t m = 0; m < p; ++m) {
      if (counts[m] >= dims[m]) continue;
      if (best == p || counts[m] < counts[best]) best = m;
    }
    if (best == p) break;
    // counts[best] divides the product, so this is the exact grown size.
    const std::uint64_t product = Product(counts);
    if (product / counts[best] * (counts[best] + 1) <= budget) {
      ++counts[best];
      grew = true;
    }
  }
  // Evenly spaced index subsets.
  std::vector<std::vector<std::uint32_t>> per_mode(p);
  for (std::size_t m = 0; m < p; ++m) {
    for (std::uint64_t i = 0; i < counts[m]; ++i) {
      const std::uint32_t idx =
          counts[m] == 1
              ? static_cast<std::uint32_t>(dims[m] / 2)
              : static_cast<std::uint32_t>(i * (dims[m] - 1) /
                                           (counts[m] - 1));
      per_mode[m].push_back(idx);
    }
  }
  // Cross product.
  std::vector<std::vector<std::uint32_t>> combos;
  combos.reserve(Product(counts));
  std::vector<std::size_t> cursor(p, 0);
  while (true) {
    std::vector<std::uint32_t> combo(p);
    for (std::size_t m = 0; m < p; ++m) combo[m] = per_mode[m][cursor[m]];
    combos.push_back(std::move(combo));
    std::size_t m = p;
    while (m-- > 0) {
      if (++cursor[m] < per_mode[m].size()) break;
      cursor[m] = 0;
      if (m == 0) return combos;
    }
  }
}

std::vector<std::vector<std::uint32_t>> SelectSlice(
    const std::vector<std::uint64_t>& dims, std::uint64_t budget, Rng* rng) {
  const std::size_t p = dims.size();
  std::vector<std::vector<std::uint32_t>> combos;
  std::unordered_set<std::uint64_t> chosen;
  // Remaining (not yet used) slice indices per mode.
  std::vector<std::vector<std::uint32_t>> unused(p);
  for (std::size_t m = 0; m < p; ++m) {
    for (std::uint64_t i = 0; i < dims[m]; ++i) {
      unused[m].push_back(static_cast<std::uint32_t>(i));
    }
  }

  std::size_t next_mode = 0;
  const std::uint64_t total = Product(dims);
  budget = std::min(budget, total);
  while (combos.size() < budget) {
    // Pick the next unused (mode, fixed index) slice, cycling over modes
    // and drawing the fixed value uniformly from that mode's unused pool.
    std::size_t slice_mode = p;
    std::uint32_t fixed_index = 0;
    for (std::size_t attempt = 0; attempt < p; ++attempt) {
      const std::size_t m = next_mode;
      next_mode = (next_mode + 1) % p;
      if (unused[m].empty()) continue;
      const std::size_t pick =
          static_cast<std::size_t>(rng->UniformInt(unused[m].size()));
      fixed_index = unused[m][pick];
      unused[m][pick] = unused[m].back();
      unused[m].pop_back();
      slice_mode = m;
      break;
    }
    if (slice_mode == p) break;  // slice space exhausted

    // Enumerate the slice; collect the combos not yet chosen.
    std::vector<std::uint64_t> other_dims;
    for (std::size_t m = 0; m < p; ++m) {
      if (m != slice_mode) other_dims.push_back(dims[m]);
    }
    const std::uint64_t slice_size = Product(other_dims);
    std::vector<std::vector<std::uint32_t>> fresh;
    fresh.reserve(slice_size);
    for (std::uint64_t linear = 0; linear < slice_size; ++linear) {
      std::vector<std::uint32_t> partial = DecodeLinear(linear, other_dims);
      std::vector<std::uint32_t> combo(p);
      std::size_t cursor = 0;
      for (std::size_t m = 0; m < p; ++m) {
        combo[m] = (m == slice_mode) ? fixed_index : partial[cursor++];
      }
      if (chosen.count(EncodeLinear(combo, dims)) == 0) {
        fresh.push_back(std::move(combo));
      }
    }
    const std::uint64_t remaining = budget - combos.size();
    if (fresh.size() > remaining) {
      // Truncate the last slice randomly to honor the budget exactly.
      std::vector<std::uint64_t> keep =
          rng->SampleWithoutReplacement(fresh.size(), remaining);
      std::sort(keep.begin(), keep.end());
      std::vector<std::vector<std::uint32_t>> subset;
      subset.reserve(remaining);
      for (std::uint64_t k : keep) subset.push_back(std::move(fresh[k]));
      fresh = std::move(subset);
    }
    for (auto& combo : fresh) {
      chosen.insert(EncodeLinear(combo, dims));
      combos.push_back(std::move(combo));
    }
  }
  return combos;
}

std::vector<std::vector<std::uint32_t>> SelectLatinHypercube(
    const std::vector<std::uint64_t>& dims, std::uint64_t budget, Rng* rng) {
  const std::size_t p = dims.size();
  // One stratified, shuffled column of `budget` grid positions per mode.
  std::vector<std::vector<std::uint32_t>> columns(p);
  for (std::size_t m = 0; m < p; ++m) {
    columns[m].resize(budget);
    for (std::uint64_t s = 0; s < budget; ++s) {
      // Stratum s covers [s/budget, (s+1)/budget); jitter within it, then
      // snap to the grid.
      const double u =
          (static_cast<double>(s) + rng->UniformDouble()) /
          static_cast<double>(budget);
      columns[m][s] = static_cast<std::uint32_t>(
          std::min<std::uint64_t>(dims[m] - 1,
                                  static_cast<std::uint64_t>(
                                      u * static_cast<double>(dims[m]))));
    }
    // Fisher-Yates shuffle decorrelates the modes.
    for (std::uint64_t s = budget; s-- > 1;) {
      const std::uint64_t t = rng->UniformInt(s + 1);
      std::swap(columns[m][s], columns[m][t]);
    }
  }
  // Zip columns into combinations; drop duplicates (possible when the
  // budget exceeds a mode's resolution).
  std::unordered_set<std::uint64_t> seen;
  std::vector<std::vector<std::uint32_t>> combos;
  combos.reserve(budget);
  for (std::uint64_t s = 0; s < budget; ++s) {
    std::vector<std::uint32_t> combo(p);
    for (std::size_t m = 0; m < p; ++m) combo[m] = columns[m][s];
    if (seen.insert(EncodeLinear(combo, dims)).second) {
      combos.push_back(std::move(combo));
    }
  }
  // Top up with uniform draws so the scheme spends the exact budget even
  // when zipping collided.
  const std::uint64_t total = Product(dims);
  while (combos.size() < budget && seen.size() < total) {
    std::vector<std::uint32_t> combo =
        DecodeLinear(rng->UniformInt(total), dims);
    if (seen.insert(EncodeLinear(combo, dims)).second) {
      combos.push_back(std::move(combo));
    }
  }
  return combos;
}

}  // namespace

Result<std::vector<std::vector<std::uint32_t>>> SelectParameterCombinations(
    const ParameterSpace& space, std::size_t time_mode,
    ConventionalScheme scheme, std::uint64_t budget, Rng* rng) {
  if (time_mode >= space.num_modes()) {
    return Status::InvalidArgument("time mode out of range");
  }
  if (budget == 0) {
    return Status::InvalidArgument("budget must be positive");
  }
  if (rng == nullptr) {
    return Status::InvalidArgument("rng must not be null");
  }
  const std::vector<std::uint64_t> dims = ParamShape(space, time_mode);
  const std::uint64_t clamped = std::min(budget, Product(dims));
  switch (scheme) {
    case ConventionalScheme::kRandom:
      return SelectRandom(dims, clamped, rng);
    case ConventionalScheme::kGrid:
      return SelectGrid(dims, clamped);
    case ConventionalScheme::kSlice:
      return SelectSlice(dims, clamped, rng);
    case ConventionalScheme::kLatinHypercube:
      return SelectLatinHypercube(dims, clamped, rng);
  }
  return Status::InvalidArgument("unknown sampling scheme");
}

Result<tensor::SparseTensor> BuildConventionalEnsemble(
    SimulationModel* model, ConventionalScheme scheme, std::uint64_t budget,
    Rng* rng) {
  if (model == nullptr) {
    return Status::InvalidArgument("model must not be null");
  }
  const ParameterSpace& space = model->space();
  const std::size_t time_mode = model->time_mode();
  M2TD_ASSIGN_OR_RETURN(
      std::vector<std::vector<std::uint32_t>> combos,
      SelectParameterCombinations(space, time_mode, scheme, budget, rng));

  tensor::SparseTensor ensemble(space.Shape());
  const std::uint32_t time_res = space.Resolution(time_mode);
  ensemble.Reserve(combos.size() * time_res);
  std::vector<std::uint32_t> indices(space.num_modes());
  for (const std::vector<std::uint32_t>& combo : combos) {
    M2TD_RETURN_IF_ERROR(robust::CheckCancelled());
    std::size_t cursor = 0;
    for (std::size_t m = 0; m < space.num_modes(); ++m) {
      if (m != time_mode) indices[m] = combo[cursor++];
    }
    for (std::uint32_t t = 0; t < time_res; ++t) {
      indices[time_mode] = t;
      ensemble.AppendEntry(indices, model->Cell(indices));
    }
  }
  ensemble.SortAndCoalesce();
  return ensemble;
}

Result<tensor::SparseTensor> BuildConventionalEnsembleRobust(
    SimulationModel* model, ConventionalScheme scheme, std::uint64_t budget,
    Rng* rng, const EnsembleBuildOptions& options,
    EnsembleBuildReport* report) {
  if (model == nullptr) {
    return Status::InvalidArgument("model must not be null");
  }
  if (options.batch_size == 0) {
    return Status::InvalidArgument("batch_size must be positive");
  }
  const ParameterSpace& space = model->space();
  const std::size_t time_mode = model->time_mode();
  M2TD_ASSIGN_OR_RETURN(
      std::vector<std::vector<std::uint32_t>> combos,
      SelectParameterCombinations(space, time_mode, scheme, budget, rng));

  const std::vector<std::uint64_t> dims = ParamShape(space, time_mode);
  const std::uint64_t total = Product(dims);
  // Every combination ever simulated (selected, restored, or drawn as a
  // replacement); replacement draws sample outside this set so the budget
  // counts distinct simulations.
  std::unordered_set<std::uint64_t> used;
  for (const auto& combo : combos) used.insert(EncodeLinear(combo, dims));

  EnsembleBuildReport local_report;
  EnsembleBuildReport* rep = report != nullptr ? report : &local_report;
  *rep = EnsembleBuildReport{};

  std::optional<robust::CheckpointJournal> journal;
  if (!options.checkpoint_dir.empty()) {
    std::ostringstream fp;
    fp << "ens-v1-" << ConventionalSchemeName(scheme) << "-b" << budget
       << "-k" << options.batch_size << "-s";
    for (std::uint64_t d : space.Shape()) fp << "_" << d;
    M2TD_ASSIGN_OR_RETURN(
        robust::CheckpointJournal opened,
        robust::CheckpointJournal::Open(options.checkpoint_dir, fp.str(),
                                        options.resume));
    journal = std::move(opened);
  }

  tensor::SparseTensor ensemble(space.Shape());
  const std::uint32_t time_res = space.Resolution(time_mode);
  ensemble.Reserve(combos.size() * time_res);

  std::vector<std::uint32_t> indices(space.num_modes());
  auto place_combo = [&](const std::vector<std::uint32_t>& combo) {
    std::size_t cursor = 0;
    for (std::size_t m = 0; m < space.num_modes(); ++m) {
      if (m != time_mode) indices[m] = combo[cursor++];
    }
  };
  /// Simulates `combo`'s whole time fiber; false when any cell came back
  /// non-finite (the fiber is then discarded).
  std::vector<double> values;
  auto simulate_fiber = [&](const std::vector<std::uint32_t>& combo) {
    place_combo(combo);
    values.clear();
    bool finite = true;
    for (std::uint32_t t = 0; t < time_res; ++t) {
      indices[time_mode] = t;
      const double v = model->Cell(indices);
      if (!std::isfinite(v)) finite = false;
      values.push_back(v);
    }
    return finite;
  };

  const std::uint64_t num_batches =
      (combos.size() + options.batch_size - 1) / options.batch_size;
  std::vector<std::uint32_t> idx(space.num_modes());
  std::vector<std::uint32_t> restored_combo(dims.size());
  for (std::uint64_t b = 0; b < num_batches; ++b) {
    const std::string mark_key = "ensemble.batch_" + std::to_string(b);
    const std::string artifact = "batch_" + std::to_string(b) + ".bin";
    if (journal && journal->Contains(mark_key)) {
      // Restore the batch verbatim, and re-reserve its combinations (which
      // include that run's replacement draws) so this run's replacements
      // cannot duplicate them.
      M2TD_ASSIGN_OR_RETURN(
          tensor::SparseTensor batch,
          io::LoadSparseBinary(journal->ArtifactPath(artifact)));
      std::unordered_set<std::uint64_t> batch_combos;
      for (std::uint64_t e = 0; e < batch.NumNonZeros(); ++e) {
        std::size_t cursor = 0;
        for (std::size_t m = 0; m < space.num_modes(); ++m) {
          idx[m] = batch.Index(m, e);
          if (m != time_mode) restored_combo[cursor++] = idx[m];
        }
        const std::uint64_t linear = EncodeLinear(restored_combo, dims);
        used.insert(linear);
        batch_combos.insert(linear);
        ensemble.AppendEntry(idx, batch.Value(e));
      }
      rep->simulations_kept += batch_combos.size();
      ++rep->batches_resumed;
      obs::GetCounter("robust.ensemble_batches_resumed").Add(1);
      continue;
    }
    // Completed batches are already journaled (artifact + mark), so a
    // cancellation here loses at most the in-flight batch; a later
    // --resume restores everything marked and re-simulates the rest.
    M2TD_RETURN_IF_ERROR(robust::CheckCancelled());
    M2TD_RETURN_IF_ERROR(robust::CheckFailpoint("ensemble.batch"));

    tensor::SparseTensor batch(space.Shape());
    const std::uint64_t begin = b * options.batch_size;
    const std::uint64_t end = std::min<std::uint64_t>(
        begin + options.batch_size, combos.size());
    for (std::uint64_t c = begin; c < end; ++c) {
      const std::vector<std::uint32_t>* combo = &combos[c];
      std::vector<std::uint32_t> replacement;
      bool kept = false;
      while (true) {
        if (simulate_fiber(*combo)) {
          place_combo(*combo);
          for (std::uint32_t t = 0; t < time_res; ++t) {
            indices[time_mode] = t;
            batch.AppendEntry(indices, values[t]);
          }
          kept = true;
          break;
        }
        ++rep->failed_simulations;
        obs::GetCounter("robust.ensemble_failed_fibers").Add(1);
        if (rep->replacement_draws >= options.max_replacement_draws ||
            used.size() >= total) {
          break;  // budget cannot be preserved; drop this slot
        }
        std::uint64_t linear = 0;
        do {
          linear = rng->UniformInt(total);
        } while (used.count(linear) != 0);
        used.insert(linear);
        ++rep->replacement_draws;
        obs::GetCounter("robust.ensemble_replacements").Add(1);
        replacement = DecodeLinear(linear, dims);
        combo = &replacement;
      }
      if (kept) ++rep->simulations_kept;
    }
    batch.SortAndCoalesce();

    if (journal) {
      // Artifact first, mark second: the mark's presence implies the batch
      // file is complete.
      M2TD_RETURN_IF_ERROR(robust::AtomicWriteFile(
          journal->ArtifactPath(artifact), [&](const std::string& tmp) {
            return io::SaveSparseBinary(batch, tmp);
          }));
      M2TD_RETURN_IF_ERROR(journal->Mark(mark_key));
    }
    for (std::uint64_t e = 0; e < batch.NumNonZeros(); ++e) {
      for (std::size_t m = 0; m < space.num_modes(); ++m) {
        idx[m] = batch.Index(m, e);
      }
      ensemble.AppendEntry(idx, batch.Value(e));
    }
  }
  ensemble.SortAndCoalesce();
  return ensemble;
}

}  // namespace m2td::ensemble
