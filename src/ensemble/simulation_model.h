#ifndef M2TD_ENSEMBLE_SIMULATION_MODEL_H_
#define M2TD_ENSEMBLE_SIMULATION_MODEL_H_

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "ensemble/parameter_space.h"
#include "sim/ode.h"
#include "tensor/dense_tensor.h"
#include "util/result.h"

namespace m2td::ensemble {

/// \brief Maps tensor cells to simulation outcomes.
///
/// A model owns the full parameter space (mode 0 is, by convention of this
/// library, the time axis) and can evaluate any cell: the value is the
/// Euclidean distance between the observable of the simulation with the
/// cell's parameter values and a fixed *reference* ("observed") trajectory
/// at the cell's timestamp — exactly the cell semantics of Section VII-B.
class SimulationModel {
 public:
  virtual ~SimulationModel() = default;

  virtual const ParameterSpace& space() const = 0;

  /// Which mode is the time axis.
  virtual std::size_t time_mode() const { return 0; }

  /// Cell value for a full multi-index over space().
  virtual double Cell(const std::vector<std::uint32_t>& indices) = 0;

  /// Number of simulations (trajectories) actually executed so far; the
  /// experiment harness uses this to account for simulation budgets.
  virtual std::uint64_t SimulationsRun() const = 0;

  /// Human-readable name for reports ("double pendulum", ...).
  virtual const std::string& name() const = 0;
};

/// \brief SimulationModel over an ODE trajectory factory with caching.
///
/// The factory receives the values of the *parameter* modes (all modes
/// except time, in mode order) and produces a trajectory whose recorded
/// sample count must equal the time mode's resolution. Trajectories are
/// memoized per parameter multi-index, so evaluating a whole time fiber
/// costs one simulation — mirroring the fact that one simulation run yields
/// all timestamps.
class DynamicalSystemModel : public SimulationModel {
 public:
  using TrajectoryFactory =
      std::function<Result<sim::Trajectory>(const std::vector<double>&)>;

  /// `space` must have the time axis at mode 0; `reference_params` are the
  /// parameter values of the observed system the ensemble compares against.
  /// Runs the reference simulation eagerly to validate the configuration.
  static Result<std::unique_ptr<DynamicalSystemModel>> Create(
      std::string name, ParameterSpace space, TrajectoryFactory factory,
      std::vector<double> reference_params);

  const ParameterSpace& space() const override { return space_; }
  double Cell(const std::vector<std::uint32_t>& indices) override;
  std::uint64_t SimulationsRun() const override { return simulations_run_; }
  const std::string& name() const override { return name_; }

  const sim::Trajectory& reference_trajectory() const { return reference_; }

  /// Drops all memoized trajectories (budget accounting in experiments that
  /// reuse one model across schemes).
  void ClearCache() {
    cache_.clear();
    simulations_run_ = 0;
  }

 private:
  DynamicalSystemModel(std::string name, ParameterSpace space,
                       TrajectoryFactory factory, sim::Trajectory reference)
      : name_(std::move(name)),
        space_(std::move(space)),
        factory_(std::move(factory)),
        reference_(std::move(reference)) {}

  /// Linear index over the parameter modes (modes 1..N-1).
  std::uint64_t ParamLinearIndex(
      const std::vector<std::uint32_t>& indices) const;

  const sim::Trajectory& GetTrajectory(
      const std::vector<std::uint32_t>& indices);

  std::string name_;
  ParameterSpace space_;
  TrajectoryFactory factory_;
  sim::Trajectory reference_;
  std::unordered_map<std::uint64_t, sim::Trajectory> cache_;
  std::uint64_t simulations_run_ = 0;
};

/// Configuration shared by the built-in models.
struct ModelOptions {
  /// Resolution of every parameter mode (the paper's "Res." column).
  std::uint32_t parameter_resolution = 10;
  /// Resolution of the time mode (number of recorded samples).
  std::uint32_t time_resolution = 10;
  /// RK4 step size.
  double dt = 0.01;
  /// RK4 steps between recorded samples.
  int record_every = 10;
};

/// Double pendulum model: modes (t, phi1, phi2, m1, m2), friction 0.
Result<std::unique_ptr<DynamicalSystemModel>> MakeDoublePendulumModel(
    const ModelOptions& options);

/// Triple pendulum with variable friction: modes (t, phi1, phi2, phi3, f),
/// unit masses.
Result<std::unique_ptr<DynamicalSystemModel>> MakeTriplePendulumModel(
    const ModelOptions& options);

/// Lorenz system: modes (t, z0, sigma, beta, rho), fixed x0 = y0 = 1.
Result<std::unique_ptr<DynamicalSystemModel>> MakeLorenzModel(
    const ModelOptions& options);

/// SEIR epidemic model (the paper's introductory motivation): modes
/// (t, beta, sigma, gamma, i0) over epidemiologically plausible ranges.
/// Note: the default ModelOptions time step is far too fine for epidemic
/// time scales; this factory uses dt = 0.5 (days) internally while
/// honoring the requested resolutions.
Result<std::unique_ptr<DynamicalSystemModel>> MakeSeirModel(
    const ModelOptions& options);

/// \brief Materializes the full simulation-space tensor Y (every cell) —
/// the ground truth of the paper's accuracy metric. Feasible only at the
/// scaled-down resolutions this repo uses (see DESIGN.md).
Result<tensor::DenseTensor> BuildFullTensor(SimulationModel* model);

}  // namespace m2td::ensemble

#endif  // M2TD_ENSEMBLE_SIMULATION_MODEL_H_
