#ifndef M2TD_ENSEMBLE_SAMPLING_H_
#define M2TD_ENSEMBLE_SAMPLING_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ensemble/simulation_model.h"
#include "tensor/sparse_tensor.h"
#include "util/random.h"
#include "util/result.h"

namespace m2td::ensemble {

/// The conventional ensemble construction schemes of Section IV, used as
/// baselines against partition-stitch sampling.
enum class ConventionalScheme {
  /// `budget` parameter combinations drawn uniformly without replacement.
  kRandom,
  /// A regular sub-grid per parameter whose cross product best fills the
  /// budget.
  kGrid,
  /// Whole axis-aligned slices (one parameter pinned to a grid value, all
  /// combinations of the others) added until the budget is exhausted; the
  /// final slice is truncated randomly if it does not fit.
  kSlice,
  /// Latin hypercube sampling: per parameter, `budget` stratified grid
  /// positions (one per stratum, jittered) independently shuffled and
  /// zipped into combinations — the classical space-filling design from
  /// the simulation-design literature the paper's related work surveys.
  kLatinHypercube,
};

const char* ConventionalSchemeName(ConventionalScheme scheme);

/// \brief Runs `budget` simulations chosen by `scheme` and encodes them as
/// a sparse ensemble tensor over the model's full space.
///
/// A "simulation" is one parameter combination; it fills the entire time
/// fiber (time_resolution cells) of the tensor, matching the paper's budget
/// accounting where B counts simulation instances. The returned tensor is
/// coalesced. `budget` is clamped to the number of parameter combinations.
Result<tensor::SparseTensor> BuildConventionalEnsemble(
    SimulationModel* model, ConventionalScheme scheme, std::uint64_t budget,
    Rng* rng);

/// The distinct parameter combinations (as multi-indices over the parameter
/// modes only, time excluded) each scheme would select — exposed for tests
/// and for the sampling-distribution example.
Result<std::vector<std::vector<std::uint32_t>>> SelectParameterCombinations(
    const ParameterSpace& space, std::size_t time_mode,
    ConventionalScheme scheme, std::uint64_t budget, Rng* rng);

/// Fault-tolerance controls for BuildConventionalEnsembleRobust.
struct EnsembleBuildOptions {
  /// Simulations per checkpointed batch.
  std::uint64_t batch_size = 16;
  /// Journal + batch-artifact directory; empty disables checkpointing.
  std::string checkpoint_dir;
  /// Continue from an existing journal instead of starting fresh.
  bool resume = false;
  /// Cap on budget-preserving replacement draws across the whole build.
  std::uint64_t max_replacement_draws = 64;
};

/// What a robust build did, for reports and budget accounting.
struct EnsembleBuildReport {
  /// Simulations whose fiber came back non-finite (NaN/Inf) and were
  /// dropped.
  std::uint64_t failed_simulations = 0;
  /// Fresh combinations drawn to replace failed ones (≤ failed unless the
  /// replacement itself failed and was re-drawn).
  std::uint64_t replacement_draws = 0;
  /// Parameter combinations whose fibers made it into the tensor.
  std::uint64_t simulations_kept = 0;
  /// Batches restored from a checkpoint instead of re-simulated.
  std::uint64_t batches_resumed = 0;
};

/// \brief Fault-tolerant variant of BuildConventionalEnsemble.
///
/// Runs the budgeted simulations in batches. A simulation whose time fiber
/// contains NaN/Inf (failed integration, or an armed `sim.trajectory`
/// failpoint) is dropped and replaced with a fresh uniform draw from the
/// not-yet-simulated combinations, preserving the simulation budget
/// exactly (until `max_replacement_draws` or the space is exhausted). With
/// a checkpoint directory, each completed batch is written atomically as
/// `batch_<i>.bin` and journaled; a killed run restarted with
/// `resume = true` reloads completed batches instead of re-simulating
/// them. Replacement draws consume `rng`, so a *resumed* run only replays
/// the recorded batches bit-identically — its later replacement draws may
/// differ from an uninterrupted run's (the budget guarantee still holds).
/// The `ensemble.batch` failpoint fires once per freshly simulated batch.
Result<tensor::SparseTensor> BuildConventionalEnsembleRobust(
    SimulationModel* model, ConventionalScheme scheme, std::uint64_t budget,
    Rng* rng, const EnsembleBuildOptions& options = {},
    EnsembleBuildReport* report = nullptr);

}  // namespace m2td::ensemble

#endif  // M2TD_ENSEMBLE_SAMPLING_H_
