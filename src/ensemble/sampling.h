#ifndef M2TD_ENSEMBLE_SAMPLING_H_
#define M2TD_ENSEMBLE_SAMPLING_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ensemble/simulation_model.h"
#include "tensor/sparse_tensor.h"
#include "util/random.h"
#include "util/result.h"

namespace m2td::ensemble {

/// The conventional ensemble construction schemes of Section IV, used as
/// baselines against partition-stitch sampling.
enum class ConventionalScheme {
  /// `budget` parameter combinations drawn uniformly without replacement.
  kRandom,
  /// A regular sub-grid per parameter whose cross product best fills the
  /// budget.
  kGrid,
  /// Whole axis-aligned slices (one parameter pinned to a grid value, all
  /// combinations of the others) added until the budget is exhausted; the
  /// final slice is truncated randomly if it does not fit.
  kSlice,
  /// Latin hypercube sampling: per parameter, `budget` stratified grid
  /// positions (one per stratum, jittered) independently shuffled and
  /// zipped into combinations — the classical space-filling design from
  /// the simulation-design literature the paper's related work surveys.
  kLatinHypercube,
};

const char* ConventionalSchemeName(ConventionalScheme scheme);

/// \brief Runs `budget` simulations chosen by `scheme` and encodes them as
/// a sparse ensemble tensor over the model's full space.
///
/// A "simulation" is one parameter combination; it fills the entire time
/// fiber (time_resolution cells) of the tensor, matching the paper's budget
/// accounting where B counts simulation instances. The returned tensor is
/// coalesced. `budget` is clamped to the number of parameter combinations.
Result<tensor::SparseTensor> BuildConventionalEnsemble(
    SimulationModel* model, ConventionalScheme scheme, std::uint64_t budget,
    Rng* rng);

/// The distinct parameter combinations (as multi-indices over the parameter
/// modes only, time excluded) each scheme would select — exposed for tests
/// and for the sampling-distribution example.
Result<std::vector<std::vector<std::uint32_t>>> SelectParameterCombinations(
    const ParameterSpace& space, std::size_t time_mode,
    ConventionalScheme scheme, std::uint64_t budget, Rng* rng);

}  // namespace m2td::ensemble

#endif  // M2TD_ENSEMBLE_SAMPLING_H_
