#include "ensemble/simulation_model.h"

#include <cmath>
#include <limits>

#include "obs/metrics.h"
#include "robust/failpoint.h"
#include "sim/lorenz.h"
#include "sim/pendulum.h"
#include "sim/seir.h"
#include "util/logging.h"

namespace m2td::ensemble {

Result<std::unique_ptr<DynamicalSystemModel>> DynamicalSystemModel::Create(
    std::string name, ParameterSpace space, TrajectoryFactory factory,
    std::vector<double> reference_params) {
  if (space.num_modes() < 2) {
    return Status::InvalidArgument(
        "model space needs a time mode plus at least one parameter");
  }
  if (reference_params.size() != space.num_modes() - 1) {
    return Status::InvalidArgument(
        "reference parameter count must match the non-time modes");
  }
  M2TD_ASSIGN_OR_RETURN(sim::Trajectory reference,
                        factory(reference_params));
  if (reference.NumSamples() != space.Resolution(0)) {
    return Status::InvalidArgument(
        "trajectory sample count does not match the time mode resolution");
  }
  return std::unique_ptr<DynamicalSystemModel>(
      new DynamicalSystemModel(std::move(name), std::move(space),
                               std::move(factory), std::move(reference)));
}

std::uint64_t DynamicalSystemModel::ParamLinearIndex(
    const std::vector<std::uint32_t>& indices) const {
  std::uint64_t linear = 0;
  for (std::size_t m = 1; m < space_.num_modes(); ++m) {
    linear = linear * space_.Resolution(m) + indices[m];
  }
  return linear;
}

const sim::Trajectory& DynamicalSystemModel::GetTrajectory(
    const std::vector<std::uint32_t>& indices) {
  const std::uint64_t key = ParamLinearIndex(indices);
  auto it = cache_.find(key);
  if (it != cache_.end()) return it->second;

  std::vector<double> params(space_.num_modes() - 1);
  for (std::size_t m = 1; m < space_.num_modes(); ++m) {
    params[m - 1] = space_.Value(m, indices[m]);
  }
  Result<sim::Trajectory> trajectory = factory_(params);
  ++simulations_run_;
  const Status injected = robust::CheckFailpoint("sim.trajectory");
  if (!trajectory.ok() || !injected.ok()) {
    // A failed simulation poisons its whole time fiber with NaN instead of
    // aborting the run: every Cell() along the fiber goes NaN, which the
    // robust ensemble builder detects, counts as a failed simulation, and
    // replaces with a fresh draw.
    if (!trajectory.ok()) {
      M2TD_LOG_WARNING() << "trajectory factory failed (fiber poisoned): "
                         << trajectory.status();
    }
    obs::GetCounter("ensemble.failed_simulations").Add(1);
    sim::Trajectory poisoned;
    poisoned.times = reference_.times;
    poisoned.observables.assign(
        reference_.observables.size(),
        std::vector<double>(
            reference_.observables.empty()
                ? 0
                : reference_.observables.front().size(),
            std::numeric_limits<double>::quiet_NaN()));
    return cache_.emplace(key, std::move(poisoned)).first->second;
  }
  return cache_.emplace(key, std::move(trajectory).ValueOrDie())
      .first->second;
}

double DynamicalSystemModel::Cell(const std::vector<std::uint32_t>& indices) {
  M2TD_CHECK(indices.size() == space_.num_modes());
  const sim::Trajectory& trajectory = GetTrajectory(indices);
  return sim::ObservableDistance(trajectory, reference_, indices[0]);
}

namespace {

ParameterDef TimeAxis(const ModelOptions& options) {
  const double horizon =
      options.dt * options.record_every * (options.time_resolution - 1);
  return ParameterDef{"t", 0.0, horizon, options.time_resolution};
}

sim::Rk4Options IntegratorOptions(const ModelOptions& options) {
  sim::Rk4Options rk4;
  rk4.dt = options.dt;
  rk4.record_every = options.record_every;
  rk4.num_steps =
      options.record_every * static_cast<int>(options.time_resolution - 1);
  if (rk4.num_steps <= 0) rk4.num_steps = options.record_every;
  return rk4;
}

std::vector<double> MidpointReference(const ParameterSpace& space) {
  std::vector<double> reference(space.num_modes() - 1);
  for (std::size_t m = 1; m < space.num_modes(); ++m) {
    reference[m - 1] = space.Value(m, space.DefaultIndex(m));
  }
  return reference;
}

}  // namespace

Result<std::unique_ptr<DynamicalSystemModel>> MakeDoublePendulumModel(
    const ModelOptions& options) {
  const std::uint32_t res = options.parameter_resolution;
  std::vector<ParameterDef> defs = {
      TimeAxis(options),
      ParameterDef{"phi1", 0.3, 1.8, res},
      ParameterDef{"phi2", 0.3, 1.8, res},
      ParameterDef{"m1", 0.5, 2.5, res},
      ParameterDef{"m2", 0.5, 2.5, res},
  };
  M2TD_ASSIGN_OR_RETURN(ParameterSpace space,
                        ParameterSpace::Create(std::move(defs)));
  const sim::Rk4Options rk4 = IntegratorOptions(options);
  auto factory = [rk4](const std::vector<double>& p)
      -> Result<sim::Trajectory> {
    // p = (phi1, phi2, m1, m2).
    M2TD_ASSIGN_OR_RETURN(sim::ChainPendulum pendulum,
                          sim::ChainPendulum::Create({p[2], p[3]}));
    return sim::IntegrateRk4(pendulum, pendulum.InitialState({p[0], p[1]}),
                             rk4);
  };
  std::vector<double> reference = MidpointReference(space);
  return DynamicalSystemModel::Create("double pendulum", std::move(space),
                                      std::move(factory),
                                      std::move(reference));
}

Result<std::unique_ptr<DynamicalSystemModel>> MakeTriplePendulumModel(
    const ModelOptions& options) {
  const std::uint32_t res = options.parameter_resolution;
  std::vector<ParameterDef> defs = {
      TimeAxis(options),
      ParameterDef{"phi1", 0.3, 1.8, res},
      ParameterDef{"phi2", 0.3, 1.8, res},
      ParameterDef{"phi3", 0.3, 1.8, res},
      ParameterDef{"f", 0.0, 0.5, res},
  };
  M2TD_ASSIGN_OR_RETURN(ParameterSpace space,
                        ParameterSpace::Create(std::move(defs)));
  const sim::Rk4Options rk4 = IntegratorOptions(options);
  auto factory = [rk4](const std::vector<double>& p)
      -> Result<sim::Trajectory> {
    // p = (phi1, phi2, phi3, f); unit masses, friction f.
    M2TD_ASSIGN_OR_RETURN(
        sim::ChainPendulum pendulum,
        sim::ChainPendulum::Create({1.0, 1.0, 1.0}, 9.81, p[3]));
    return sim::IntegrateRk4(pendulum,
                             pendulum.InitialState({p[0], p[1], p[2]}), rk4);
  };
  std::vector<double> reference = MidpointReference(space);
  return DynamicalSystemModel::Create("triple pendulum", std::move(space),
                                      std::move(factory),
                                      std::move(reference));
}

Result<std::unique_ptr<DynamicalSystemModel>> MakeLorenzModel(
    const ModelOptions& options) {
  const std::uint32_t res = options.parameter_resolution;
  std::vector<ParameterDef> defs = {
      TimeAxis(options),
      ParameterDef{"z", 20.0, 30.0, res},
      ParameterDef{"sigma", 8.0, 12.0, res},
      ParameterDef{"beta", 2.0, 3.3, res},
      ParameterDef{"rho", 24.0, 32.0, res},
  };
  M2TD_ASSIGN_OR_RETURN(ParameterSpace space,
                        ParameterSpace::Create(std::move(defs)));
  const sim::Rk4Options rk4 = IntegratorOptions(options);
  auto factory = [rk4](const std::vector<double>& p)
      -> Result<sim::Trajectory> {
    // p = (z0, sigma, beta, rho); fixed x0 = y0 = 1.
    sim::LorenzSystem lorenz(p[1], p[3], p[2]);
    return sim::IntegrateRk4(lorenz,
                             sim::LorenzSystem::InitialState(1.0, 1.0, p[0]),
                             rk4);
  };
  std::vector<double> reference = MidpointReference(space);
  return DynamicalSystemModel::Create("lorenz", std::move(space),
                                      std::move(factory),
                                      std::move(reference));
}

Result<std::unique_ptr<DynamicalSystemModel>> MakeSeirModel(
    const ModelOptions& options) {
  const std::uint32_t res = options.parameter_resolution;
  ModelOptions epidemic = options;
  epidemic.dt = 0.5;  // days; epidemic dynamics live on slow time scales
  std::vector<ParameterDef> defs = {
      TimeAxis(epidemic),
      ParameterDef{"beta", 0.15, 0.6, res},
      ParameterDef{"sigma", 0.1, 0.5, res},
      ParameterDef{"gamma", 0.05, 0.3, res},
      ParameterDef{"i0", 0.001, 0.05, res},
  };
  M2TD_ASSIGN_OR_RETURN(ParameterSpace space,
                        ParameterSpace::Create(std::move(defs)));
  const sim::Rk4Options rk4 = IntegratorOptions(epidemic);
  auto factory = [rk4](const std::vector<double>& p)
      -> Result<sim::Trajectory> {
    // p = (beta, sigma, gamma, i0).
    M2TD_ASSIGN_OR_RETURN(sim::SeirSystem seir,
                          sim::SeirSystem::Create(p[0], p[1], p[2]));
    M2TD_ASSIGN_OR_RETURN(std::vector<double> initial,
                          sim::SeirSystem::InitialState(p[3]));
    return sim::IntegrateRk4(seir, std::move(initial), rk4);
  };
  std::vector<double> reference = MidpointReference(space);
  return DynamicalSystemModel::Create("seir epidemic", std::move(space),
                                      std::move(factory),
                                      std::move(reference));
}

Result<tensor::DenseTensor> BuildFullTensor(SimulationModel* model) {
  if (model == nullptr) {
    return Status::InvalidArgument("model must not be null");
  }
  const ParameterSpace& space = model->space();
  tensor::DenseTensor full(space.Shape());
  const std::size_t modes = space.num_modes();
  std::vector<std::uint32_t> idx(modes, 0);
  for (std::uint64_t linear = 0; linear < full.NumElements(); ++linear) {
    std::uint64_t rest = linear;
    for (std::size_t m = 0; m < modes; ++m) {
      idx[m] = static_cast<std::uint32_t>(rest / full.Stride(m));
      rest %= full.Stride(m);
    }
    full.flat(linear) = model->Cell(idx);
  }
  return full;
}

}  // namespace m2td::ensemble
