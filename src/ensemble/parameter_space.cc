#include "ensemble/parameter_space.h"

#include "util/logging.h"

namespace m2td::ensemble {

Result<ParameterSpace> ParameterSpace::Create(std::vector<ParameterDef> defs) {
  if (defs.empty()) {
    return Status::InvalidArgument("parameter space needs at least one mode");
  }
  for (const ParameterDef& def : defs) {
    if (def.resolution == 0) {
      return Status::InvalidArgument("parameter '" + def.name +
                                     "' has zero resolution");
    }
    if (def.min_value > def.max_value) {
      return Status::InvalidArgument("parameter '" + def.name +
                                     "' has min > max");
    }
  }
  return ParameterSpace(std::move(defs));
}

double ParameterSpace::Value(std::size_t mode, std::uint32_t index) const {
  M2TD_DCHECK(mode < defs_.size());
  const ParameterDef& def = defs_[mode];
  M2TD_DCHECK(index < def.resolution);
  if (def.resolution == 1) return def.min_value;
  return def.min_value + (def.max_value - def.min_value) *
                             static_cast<double>(index) /
                             static_cast<double>(def.resolution - 1);
}

std::vector<double> ParameterSpace::Values(
    const std::vector<std::uint32_t>& indices) const {
  M2TD_CHECK(indices.size() == defs_.size());
  std::vector<double> values(indices.size());
  for (std::size_t m = 0; m < indices.size(); ++m) {
    values[m] = Value(m, indices[m]);
  }
  return values;
}

std::vector<std::uint64_t> ParameterSpace::Shape() const {
  std::vector<std::uint64_t> shape(defs_.size());
  for (std::size_t m = 0; m < defs_.size(); ++m) {
    shape[m] = defs_[m].resolution;
  }
  return shape;
}

std::uint64_t ParameterSpace::NumCells() const {
  std::uint64_t total = 1;
  for (const ParameterDef& def : defs_) {
    if (total > ~0ULL / def.resolution) return ~0ULL;
    total *= def.resolution;
  }
  return total;
}

Result<std::size_t> ParameterSpace::ModeByName(const std::string& name) const {
  for (std::size_t m = 0; m < defs_.size(); ++m) {
    if (defs_[m].name == name) return m;
  }
  return Status::NotFound("no parameter named '" + name + "'");
}

}  // namespace m2td::ensemble
