#ifndef M2TD_ENSEMBLE_PARAMETER_SPACE_H_
#define M2TD_ENSEMBLE_PARAMETER_SPACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/result.h"

namespace m2td::ensemble {

/// One mode of the ensemble tensor: a named simulation parameter (or the
/// time axis) discretized to `resolution` evenly spaced values over
/// [min_value, max_value].
struct ParameterDef {
  std::string name;
  double min_value = 0.0;
  double max_value = 1.0;
  std::uint32_t resolution = 1;
};

/// \brief The discretized space of potential simulations (Section III-C of
/// the paper): one mode per parameter, the cross product of the value grids
/// being the set of simulations one *could* run.
class ParameterSpace {
 public:
  ParameterSpace() = default;

  /// Validates definitions (non-empty, positive resolutions, min <= max).
  static Result<ParameterSpace> Create(std::vector<ParameterDef> defs);

  std::size_t num_modes() const { return defs_.size(); }
  const ParameterDef& def(std::size_t mode) const { return defs_[mode]; }
  std::uint32_t Resolution(std::size_t mode) const {
    return defs_[mode].resolution;
  }

  /// The `index`-th grid value of `mode` (linear spacing; a resolution-1
  /// grid sits at min_value).
  double Value(std::size_t mode, std::uint32_t index) const;

  /// All grid values for one multi-index.
  std::vector<double> Values(const std::vector<std::uint32_t>& indices) const;

  /// Tensor shape (resolutions per mode).
  std::vector<std::uint64_t> Shape() const;

  /// Product of resolutions; saturates at uint64 max.
  std::uint64_t NumCells() const;

  /// Index of the grid point closest to the middle of the range — the
  /// paper's "fixing constant" default for pinned parameters.
  std::uint32_t DefaultIndex(std::size_t mode) const {
    return defs_[mode].resolution / 2;
  }

  /// Mode index by parameter name; NotFound if absent.
  Result<std::size_t> ModeByName(const std::string& name) const;

 private:
  explicit ParameterSpace(std::vector<ParameterDef> defs)
      : defs_(std::move(defs)) {}

  std::vector<ParameterDef> defs_;
};

}  // namespace m2td::ensemble

#endif  // M2TD_ENSEMBLE_PARAMETER_SPACE_H_
