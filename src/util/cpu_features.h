#ifndef M2TD_UTIL_CPU_FEATURES_H_
#define M2TD_UTIL_CPU_FEATURES_H_

#include <string_view>

namespace m2td::util {

/// Instruction-set extensions detected on the host CPU. Probed once per
/// process (the answer cannot change while we run).
struct CpuFeatures {
  /// x86-64 AVX2 (256-bit integer/double vectors).
  bool avx2 = false;
  /// x86-64 FMA3 (fused multiply-add).
  bool fma = false;
  /// AArch64 Advanced SIMD (baseline on every 64-bit ARM core).
  bool neon = false;
};

/// The host CPU's feature set, probed on first call and cached.
const CpuFeatures& HostCpuFeatures();

/// SIMD dispatch level for the hot inner kernels. `kScalar` is the
/// bit-exact oracle path (the pre-SIMD loops); the vector levels fuse
/// multiply-adds and reassociate lane sums, so they are opt-in via
/// SetFastKernelsEnabled and never the default.
enum class SimdIsa {
  /// Portable scalar loops — bit-identical to the historical kernels.
  kScalar = 0,
  /// AVX2 + FMA 4-wide double kernels (x86-64 only).
  kAvx2 = 1,
  /// NEON 2-wide double kernels (AArch64 only).
  kNeon = 2,
};

/// Stable lowercase name ("scalar" / "avx2" / "neon") for reports, logs,
/// and the M2TD_FORCE_ISA override.
const char* SimdIsaName(SimdIsa isa);

/// Parses a SimdIsaName back into the enum. Returns false (and leaves
/// `*out` untouched) for unknown names.
bool ParseSimdIsa(std::string_view name, SimdIsa* out);

/// Best ISA level both compiled into this binary and supported by the
/// host CPU, ignoring any override or enable knob.
SimdIsa DetectedSimdIsa();

/// DetectedSimdIsa() capped by the `M2TD_FORCE_ISA` environment variable
/// (`scalar`, `avx2`, or `neon`). Forcing `scalar` always works; forcing
/// a vector ISA the host or binary lacks logs a warning and falls back
/// to the detected level (we cannot execute instructions the CPU does
/// not have). The env var is read once and cached; this is what the
/// run-report `hardware.simd_dispatch` field records, independent of the
/// enable knob, so baseline comparisons see a stable ISA per host.
SimdIsa ResolvedSimdIsa();

/// Enables/disables the vectorized kernel paths process-wide (the
/// `--fast_kernels` CLI knob). Off — the default — routes every kernel
/// through the scalar oracle loops, bit-identical to builds predating
/// the SIMD layer.
void SetFastKernelsEnabled(bool enabled);

/// Current state of the fast-kernels knob (default false).
bool FastKernelsEnabled();

/// The ISA the kernels actually dispatch to right now:
/// ResolvedSimdIsa() when the fast-kernels knob is on, kScalar otherwise.
SimdIsa ActiveSimdIsa();

/// Drops the cached M2TD_FORCE_ISA parse so tests can flip the
/// environment variable mid-process and observe the new resolution.
void RefreshSimdIsaForTesting();

}  // namespace m2td::util

#endif  // M2TD_UTIL_CPU_FEATURES_H_
