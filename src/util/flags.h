#ifndef M2TD_UTIL_FLAGS_H_
#define M2TD_UTIL_FLAGS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/result.h"

namespace m2td {

/// \brief Minimal command-line flag parser for the CLI tools.
///
/// Supports `--name=value`, `--name value`, and bare `--name` for booleans
/// (plus `--noname` to clear one). Everything that is not a registered
/// flag is returned as a positional argument. `--help` is implicit: Parse
/// returns a NotFound status whose message is the usage text.
class FlagParser {
 public:
  explicit FlagParser(std::string program_description)
      : description_(std::move(program_description)) {}

  /// Registration: `out` must outlive Parse and comes pre-loaded with the
  /// default value (printed in the usage text).
  void AddString(const std::string& name, const std::string& help,
                 std::string* out);
  void AddInt64(const std::string& name, const std::string& help,
                std::int64_t* out);
  void AddDouble(const std::string& name, const std::string& help,
                 double* out);
  void AddBool(const std::string& name, const std::string& help, bool* out);

  /// Parses argv (excluding argv[0]); fills registered outputs and returns
  /// the positional arguments. InvalidArgument on unknown flags or
  /// malformed values; NotFound with the usage text when --help is given.
  Result<std::vector<std::string>> Parse(int argc, const char* const* argv);

  /// Human-readable usage text.
  std::string Usage() const;

 private:
  enum class Type { kString, kInt64, kDouble, kBool };
  struct Flag {
    std::string name;
    std::string help;
    Type type;
    void* target;
    std::string default_value;
  };

  const Flag* Find(const std::string& name) const;
  static Status SetValue(const Flag& flag, const std::string& value);

  std::string description_;
  std::vector<Flag> flags_;
};

}  // namespace m2td

#endif  // M2TD_UTIL_FLAGS_H_
