#ifndef M2TD_UTIL_RANDOM_H_
#define M2TD_UTIL_RANDOM_H_

#include <cstdint>
#include <vector>

namespace m2td {

/// \brief Deterministic, fast PRNG (xoshiro256++).
///
/// Every stochastic component in the library (samplers, synthetic tensors,
/// noise injection in tests) takes an explicit Rng so experiments are
/// reproducible bit-for-bit from a seed. Satisfies the requirements of
/// UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit lanes from `seed` via SplitMix64, so nearby
  /// seeds still yield decorrelated streams.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  /// Next raw 64-bit draw.
  std::uint64_t Next();
  result_type operator()() { return Next(); }

  /// Uniform integer in [0, bound). Uses Lemire's unbiased multiply-shift
  /// rejection method. `bound` must be > 0.
  std::uint64_t UniformInt(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// Standard normal draw (Marsaglia polar method, cached spare).
  double Gaussian();

  /// Returns `k` distinct indices sampled uniformly without replacement
  /// from [0, n). Requires k <= n. Uses Floyd's algorithm; output order is
  /// unspecified but deterministic for a given state.
  std::vector<std::uint64_t> SampleWithoutReplacement(std::uint64_t n,
                                                      std::uint64_t k);

 private:
  std::uint64_t s_[4];
  double spare_gaussian_ = 0.0;
  bool has_spare_gaussian_ = false;
};

}  // namespace m2td

#endif  // M2TD_UTIL_RANDOM_H_
