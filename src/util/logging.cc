#include "util/logging.h"

#include <atomic>

namespace m2td {

namespace {
std::atomic<LogLevel> g_log_level{LogLevel::kInfo};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_log_level.store(level); }
LogLevel GetLogLevel() { return g_log_level.load(); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line, bool fatal)
    : enabled_(fatal || level >= g_log_level.load()), fatal_(fatal) {
  if (enabled_) {
    const char* base = file;
    for (const char* p = file; *p; ++p) {
      if (*p == '/') base = p + 1;
    }
    stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    std::cerr << stream_.str() << std::endl;
  }
  if (fatal_) std::abort();
}

}  // namespace internal
}  // namespace m2td
