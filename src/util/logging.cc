#include "util/logging.h"

#include <atomic>
#include <mutex>

namespace m2td {

namespace {
std::atomic<LogLevel> g_log_level{LogLevel::kInfo};

/// Guards the sink/mirror pointers and serializes emission, so a custom
/// sink never sees interleaved lines.
std::mutex& SinkMutex() {
  static std::mutex* mutex = new std::mutex();
  return *mutex;
}

LogSink& SinkSlot() {
  static LogSink* sink = new LogSink();
  return *sink;
}

LogSink& MirrorSlot() {
  static LogSink* mirror = new LogSink();
  return *mirror;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_log_level.store(level); }
LogLevel GetLogLevel() { return g_log_level.load(); }

void SetLogSink(LogSink sink) {
  std::lock_guard<std::mutex> lock(SinkMutex());
  SinkSlot() = std::move(sink);
}

void SetLogMirror(LogSink mirror) {
  std::lock_guard<std::mutex> lock(SinkMutex());
  MirrorSlot() = std::move(mirror);
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line, bool fatal)
    : level_(level),
      enabled_(fatal || level >= g_log_level.load()),
      fatal_(fatal) {
  if (enabled_) {
    const char* base = file;
    for (const char* p = file; *p; ++p) {
      if (*p == '/') base = p + 1;
    }
    stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    const std::string line = stream_.str();
    std::lock_guard<std::mutex> lock(SinkMutex());
    if (SinkSlot()) {
      SinkSlot()(level_, line);
    } else {
      std::cerr << line << std::endl;
    }
    if (MirrorSlot()) MirrorSlot()(level_, line);
  }
  if (fatal_) std::abort();
}

}  // namespace internal
}  // namespace m2td
