#ifndef M2TD_UTIL_TIMER_H_
#define M2TD_UTIL_TIMER_H_

#include <chrono>

namespace m2td {

/// \brief Monotonic wall-clock stopwatch used by the experiment harness to
/// time decomposition phases.
class Timer {
 public:
  Timer() { Restart(); }

  void Restart() { start_ = std::chrono::steady_clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    const auto now = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(now - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Restart().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace m2td

#endif  // M2TD_UTIL_TIMER_H_
