#ifndef M2TD_UTIL_TIMER_H_
#define M2TD_UTIL_TIMER_H_

#include <chrono>

namespace m2td {

/// \brief Monotonic wall-clock stopwatch used by the experiment harness to
/// time decomposition phases.
///
/// Starts running at construction. Stop()/Resume() accumulate across
/// pauses (e.g. a phase timer paused while an out-of-core chunk swap
/// belongs to another phase); ElapsedSeconds() on a stopped timer returns
/// the frozen accumulated total instead of continuing to tick.
class Timer {
 public:
  Timer() { Restart(); }

  /// Zeroes the accumulated time and starts (or keeps) running.
  void Restart() {
    accumulated_ = std::chrono::steady_clock::duration::zero();
    running_ = true;
    start_ = std::chrono::steady_clock::now();
  }

  /// Freezes the elapsed total. No-op when already stopped.
  void Stop() {
    if (!running_) return;
    accumulated_ += std::chrono::steady_clock::now() - start_;
    running_ = false;
  }

  /// Continues accumulating after a Stop(). No-op when already running.
  void Resume() {
    if (running_) return;
    running_ = true;
    start_ = std::chrono::steady_clock::now();
  }

  bool IsRunning() const { return running_; }

  /// Seconds accumulated since construction or the last Restart(),
  /// excluding Stop()/Resume() gaps; frozen while stopped.
  double ElapsedSeconds() const {
    auto total = accumulated_;
    if (running_) total += std::chrono::steady_clock::now() - start_;
    return std::chrono::duration<double>(total).count();
  }

  /// Milliseconds variant of ElapsedSeconds().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  std::chrono::steady_clock::time_point start_;
  std::chrono::steady_clock::duration accumulated_{};
  bool running_ = true;
};

}  // namespace m2td

#endif  // M2TD_UTIL_TIMER_H_
