#include "util/string_util.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace m2td {

std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> Split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string current;
  for (char c : s) {
    if (c == sep) {
      out.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  out.push_back(current);
  return out;
}

std::string ShapeToString(const std::vector<std::uint64_t>& shape) {
  std::string out = "[";
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(shape[i]);
  }
  out += "]";
  return out;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  if (needed < 0) {
    va_end(args_copy);
    return std::string();
  }
  std::string out(static_cast<std::size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

std::string Trim(const std::string& s) {
  std::size_t begin = 0;
  std::size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

}  // namespace m2td
