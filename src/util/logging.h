#ifndef M2TD_UTIL_LOGGING_H_
#define M2TD_UTIL_LOGGING_H_

#include <cstdlib>
#include <functional>
#include <iostream>
#include <sstream>
#include <string_view>

namespace m2td {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Process-wide minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Receives each emitted log line (already formatted as
/// "[LEVEL file:line] message", no trailing newline).
using LogSink = std::function<void(LogLevel, std::string_view)>;

/// Replaces the output sink (default: stderr). Passing nullptr restores
/// the default. Tests use this to capture output without scraping stderr.
/// The sink runs under an internal mutex, so it need not be thread-safe
/// itself but must not log recursively.
void SetLogSink(LogSink sink);

/// Installs a secondary observer invoked *in addition to* the sink for
/// every emitted line (the tracer mirrors WARN+ lines into the trace as
/// instants). nullptr uninstalls. Same locking contract as SetLogSink.
void SetLogMirror(LogSink mirror);

namespace internal {

/// One log statement; flushes to stderr on destruction. FATAL aborts.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line, bool fatal = false);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
  LogLevel level_;
  bool enabled_;
  bool fatal_;
};

}  // namespace internal
}  // namespace m2td

#define M2TD_LOG_DEBUG() \
  ::m2td::internal::LogMessage(::m2td::LogLevel::kDebug, __FILE__, __LINE__)
#define M2TD_LOG_INFO() \
  ::m2td::internal::LogMessage(::m2td::LogLevel::kInfo, __FILE__, __LINE__)
#define M2TD_LOG_WARNING() \
  ::m2td::internal::LogMessage(::m2td::LogLevel::kWarning, __FILE__, __LINE__)
#define M2TD_LOG_ERROR() \
  ::m2td::internal::LogMessage(::m2td::LogLevel::kError, __FILE__, __LINE__)

/// Internal invariant check. Unlike Status, a CHECK failure is a bug in the
/// library itself, so it aborts (per the style guide, exceptions are not
/// used).
#define M2TD_CHECK(cond)                                                  \
  if (!(cond))                                                            \
  ::m2td::internal::LogMessage(::m2td::LogLevel::kError, __FILE__,        \
                               __LINE__, /*fatal=*/true)                  \
      << "Check failed: " #cond " "

#define M2TD_DCHECK(cond) M2TD_CHECK(cond)

#endif  // M2TD_UTIL_LOGGING_H_
