#include "util/random.h"

#include <cmath>
#include <unordered_set>

namespace m2td {

namespace {

std::uint64_t SplitMix64(std::uint64_t* state) {
  std::uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& lane : s_) lane = SplitMix64(&sm);
}

std::uint64_t Rng::Next() {
  const std::uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::UniformInt(std::uint64_t bound) {
  // Lemire's multiply-shift with rejection to remove modulo bias.
  std::uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::UniformDouble() {
  // 53 high bits -> [0, 1) with full double precision.
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

double Rng::Gaussian() {
  if (has_spare_gaussian_) {
    has_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  double u, v, s;
  do {
    u = UniformDouble(-1.0, 1.0);
    v = UniformDouble(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_gaussian_ = v * factor;
  has_spare_gaussian_ = true;
  return u * factor;
}

std::vector<std::uint64_t> Rng::SampleWithoutReplacement(std::uint64_t n,
                                                         std::uint64_t k) {
  std::vector<std::uint64_t> out;
  if (k == 0 || n == 0) return out;
  if (k > n) k = n;
  out.reserve(k);
  // Floyd's algorithm: O(k) draws, no O(n) scratch.
  std::unordered_set<std::uint64_t> chosen;
  chosen.reserve(static_cast<std::size_t>(k) * 2);
  for (std::uint64_t j = n - k; j < n; ++j) {
    const std::uint64_t t = UniformInt(j + 1);
    if (chosen.insert(t).second) {
      out.push_back(t);
    } else {
      chosen.insert(j);
      out.push_back(j);
    }
  }
  return out;
}

}  // namespace m2td
