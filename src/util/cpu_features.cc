#include "util/cpu_features.h"

#include <atomic>
#include <cstdlib>
#include <string>

#include "util/logging.h"

namespace m2td::util {

namespace {

CpuFeatures ProbeCpuFeatures() {
  CpuFeatures features;
#if defined(__x86_64__) || defined(_M_X64)
  features.avx2 = __builtin_cpu_supports("avx2") != 0;
  features.fma = __builtin_cpu_supports("fma") != 0;
#elif defined(__aarch64__)
  // Advanced SIMD is architecturally mandatory on AArch64.
  features.neon = true;
#endif
  return features;
}

// Resolved M2TD_FORCE_ISA cap, cached after the first read. -1 = not yet
// resolved; otherwise a SimdIsa value.
std::atomic<int> g_resolved_isa{-1};
std::atomic<bool> g_fast_kernels{false};

SimdIsa ResolveFromEnv() {
  const SimdIsa detected = DetectedSimdIsa();
  const char* forced = std::getenv("M2TD_FORCE_ISA");
  if (forced == nullptr || *forced == '\0') return detected;
  SimdIsa requested;
  if (!ParseSimdIsa(forced, &requested)) {
    M2TD_LOG_WARNING() << "M2TD_FORCE_ISA='" << forced
                       << "' is not one of scalar|avx2|neon; using detected "
                       << SimdIsaName(detected);
    return detected;
  }
  if (requested == SimdIsa::kScalar) return SimdIsa::kScalar;
  if (requested != detected) {
    // A vector ISA can only be forced downward-compatible: the binary
    // must carry the kernels and the CPU must execute them.
    M2TD_LOG_WARNING() << "M2TD_FORCE_ISA=" << SimdIsaName(requested)
                       << " is not available on this host/build; using "
                       << SimdIsaName(detected);
    return detected;
  }
  return requested;
}

}  // namespace

const CpuFeatures& HostCpuFeatures() {
  static const CpuFeatures features = ProbeCpuFeatures();
  return features;
}

const char* SimdIsaName(SimdIsa isa) {
  switch (isa) {
    case SimdIsa::kAvx2:
      return "avx2";
    case SimdIsa::kNeon:
      return "neon";
    case SimdIsa::kScalar:
      break;
  }
  return "scalar";
}

bool ParseSimdIsa(std::string_view name, SimdIsa* out) {
  if (name == "scalar") {
    *out = SimdIsa::kScalar;
  } else if (name == "avx2") {
    *out = SimdIsa::kAvx2;
  } else if (name == "neon") {
    *out = SimdIsa::kNeon;
  } else {
    return false;
  }
  return true;
}

SimdIsa DetectedSimdIsa() {
#if defined(__x86_64__) || defined(_M_X64)
  const CpuFeatures& features = HostCpuFeatures();
  if (features.avx2 && features.fma) return SimdIsa::kAvx2;
#elif defined(__aarch64__)
  if (HostCpuFeatures().neon) return SimdIsa::kNeon;
#endif
  return SimdIsa::kScalar;
}

SimdIsa ResolvedSimdIsa() {
  int cached = g_resolved_isa.load(std::memory_order_acquire);
  if (cached < 0) {
    cached = static_cast<int>(ResolveFromEnv());
    g_resolved_isa.store(cached, std::memory_order_release);
  }
  return static_cast<SimdIsa>(cached);
}

void SetFastKernelsEnabled(bool enabled) {
  g_fast_kernels.store(enabled, std::memory_order_release);
}

bool FastKernelsEnabled() {
  return g_fast_kernels.load(std::memory_order_acquire);
}

SimdIsa ActiveSimdIsa() {
  if (!FastKernelsEnabled()) return SimdIsa::kScalar;
  return ResolvedSimdIsa();
}

void RefreshSimdIsaForTesting() {
  g_resolved_isa.store(-1, std::memory_order_release);
}

}  // namespace m2td::util
