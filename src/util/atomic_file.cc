#include "util/atomic_file.h"

#include <filesystem>

namespace m2td::util {

std::string TempPathFor(const std::string& path) { return path + ".tmp"; }

Status AtomicWriteFile(const std::string& path,
                       const std::function<Status(const std::string&)>&
                           writer) {
  const std::string tmp = TempPathFor(path);
  Status written = writer(tmp);
  std::error_code ec;
  if (!written.ok()) {
    std::filesystem::remove(tmp, ec);
    return written;
  }
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::error_code ignored;
    std::filesystem::remove(tmp, ignored);
    return Status::IOError("cannot rename '" + tmp + "' over '" + path +
                           "': " + ec.message());
  }
  return Status::OK();
}

}  // namespace m2td::util
