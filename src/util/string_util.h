#ifndef M2TD_UTIL_STRING_UTIL_H_
#define M2TD_UTIL_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <vector>

namespace m2td {

/// Joins `parts` with `sep` ("a", "b" -> "a,b").
std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep);

/// Splits `s` on the single character `sep`; empty fields are preserved.
std::vector<std::string> Split(const std::string& s, char sep);

/// Formats a vector of sizes as "[a, b, c]" for error messages and logs.
std::string ShapeToString(const std::vector<std::uint64_t>& shape);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Trims ASCII whitespace from both ends.
std::string Trim(const std::string& s);

}  // namespace m2td

#endif  // M2TD_UTIL_STRING_UTIL_H_
