#include "util/status.h"

namespace m2td {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kIOError:
      return "IO error";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDataLoss:
      return "Data loss";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kDeadlineExceeded:
      return "Deadline exceeded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = StatusCodeToString(code_);
  if (!message_.empty()) {
    result += ": ";
    result += message_;
  }
  return result;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace m2td
