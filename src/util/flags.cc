#include "util/flags.h"

#include <cstdlib>

#include "util/logging.h"
#include "util/string_util.h"

namespace m2td {

namespace {

std::string BoolToString(bool v) { return v ? "true" : "false"; }

}  // namespace

void FlagParser::AddString(const std::string& name, const std::string& help,
                           std::string* out) {
  M2TD_CHECK(Find(name) == nullptr) << "duplicate flag --" << name;
  flags_.push_back(Flag{name, help, Type::kString, out, *out});
}

void FlagParser::AddInt64(const std::string& name, const std::string& help,
                          std::int64_t* out) {
  M2TD_CHECK(Find(name) == nullptr) << "duplicate flag --" << name;
  flags_.push_back(Flag{name, help, Type::kInt64, out, std::to_string(*out)});
}

void FlagParser::AddDouble(const std::string& name, const std::string& help,
                           double* out) {
  M2TD_CHECK(Find(name) == nullptr) << "duplicate flag --" << name;
  flags_.push_back(Flag{name, help, Type::kDouble, out, StrFormat("%g", *out)});
}

void FlagParser::AddBool(const std::string& name, const std::string& help,
                         bool* out) {
  M2TD_CHECK(Find(name) == nullptr) << "duplicate flag --" << name;
  flags_.push_back(Flag{name, help, Type::kBool, out, BoolToString(*out)});
}

const FlagParser::Flag* FlagParser::Find(const std::string& name) const {
  for (const Flag& flag : flags_) {
    if (flag.name == name) return &flag;
  }
  return nullptr;
}

Status FlagParser::SetValue(const Flag& flag, const std::string& value) {
  switch (flag.type) {
    case Type::kString:
      *static_cast<std::string*>(flag.target) = value;
      return Status::OK();
    case Type::kInt64: {
      char* end = nullptr;
      const long long parsed = std::strtoll(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0') {
        return Status::InvalidArgument("flag --" + flag.name +
                                       " expects an integer, got '" + value +
                                       "'");
      }
      *static_cast<std::int64_t*>(flag.target) = parsed;
      return Status::OK();
    }
    case Type::kDouble: {
      char* end = nullptr;
      const double parsed = std::strtod(value.c_str(), &end);
      if (end == value.c_str() || *end != '\0') {
        return Status::InvalidArgument("flag --" + flag.name +
                                       " expects a number, got '" + value +
                                       "'");
      }
      *static_cast<double*>(flag.target) = parsed;
      return Status::OK();
    }
    case Type::kBool: {
      if (value == "true" || value == "1") {
        *static_cast<bool*>(flag.target) = true;
      } else if (value == "false" || value == "0") {
        *static_cast<bool*>(flag.target) = false;
      } else {
        return Status::InvalidArgument("flag --" + flag.name +
                                       " expects true/false, got '" + value +
                                       "'");
      }
      return Status::OK();
    }
  }
  return Status::Internal("unreachable");
}

Result<std::vector<std::string>> FlagParser::Parse(int argc,
                                                   const char* const* argv) {
  std::vector<std::string> positional;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      return Status::NotFound(Usage());
    }
    if (arg.rfind("--", 0) != 0) {
      positional.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    std::string value;
    bool has_value = false;
    const std::size_t eq = body.find('=');
    if (eq != std::string::npos) {
      value = body.substr(eq + 1);
      body = body.substr(0, eq);
      has_value = true;
    }
    const Flag* flag = Find(body);
    // --noname for booleans.
    if (flag == nullptr && body.rfind("no", 0) == 0) {
      const Flag* negated = Find(body.substr(2));
      if (negated != nullptr && negated->type == Type::kBool) {
        if (has_value) {
          return Status::InvalidArgument("--" + body +
                                         " does not take a value");
        }
        *static_cast<bool*>(negated->target) = false;
        continue;
      }
    }
    if (flag == nullptr) {
      return Status::InvalidArgument("unknown flag --" + body + "\n" +
                                     Usage());
    }
    if (!has_value) {
      if (flag->type == Type::kBool) {
        *static_cast<bool*>(flag->target) = true;
        continue;
      }
      if (i + 1 >= argc) {
        return Status::InvalidArgument("flag --" + body + " needs a value");
      }
      value = argv[++i];
    }
    M2TD_RETURN_IF_ERROR(SetValue(*flag, value));
  }
  return positional;
}

std::string FlagParser::Usage() const {
  std::string usage = description_ + "\n\nFlags:\n";
  for (const Flag& flag : flags_) {
    usage += "  --" + flag.name;
    switch (flag.type) {
      case Type::kString:
        usage += "=<string>";
        break;
      case Type::kInt64:
        usage += "=<int>";
        break;
      case Type::kDouble:
        usage += "=<float>";
        break;
      case Type::kBool:
        usage += "[=true|false]";
        break;
    }
    usage += "\n      " + flag.help + " (default: " + flag.default_value +
             ")\n";
  }
  return usage;
}

}  // namespace m2td
