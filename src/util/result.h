#ifndef M2TD_UTIL_RESULT_H_
#define M2TD_UTIL_RESULT_H_

#include <cstdlib>
#include <iostream>
#include <optional>
#include <utility>

#include "util/status.h"

namespace m2td {

/// \brief Either a value of type T or a non-OK Status explaining why the
/// value could not be produced.
///
/// The usual access pattern is via M2TD_ASSIGN_OR_RETURN inside the library,
/// or `ValueOrDie()` in tests/examples where failure is a programming error.
template <typename T>
class Result {
 public:
  /// Constructs a Result holding a value. Intentionally implicit so
  /// functions can `return value;`.
  Result(T value)  // NOLINT(google-explicit-constructor)
      : status_(Status::OK()), value_(std::move(value)) {}

  /// Constructs a Result holding an error. Intentionally implicit so
  /// functions can `return Status::InvalidArgument(...);`. Aborts if given
  /// an OK status without a value (that would be a meaningless state).
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    if (status_.ok()) {
      std::cerr << "Result constructed from OK status without a value\n";
      std::abort();
    }
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Returns the value; aborts with the status message if this Result holds
  /// an error. Use only where an error is a bug.
  const T& ValueOrDie() const& {
    DieIfError();
    return *value_;
  }
  T& ValueOrDie() & {
    DieIfError();
    return *value_;
  }
  T&& ValueOrDie() && {
    DieIfError();
    return std::move(*value_);
  }

  /// Returns the value or `fallback` when this Result holds an error.
  T ValueOr(T fallback) const {
    if (!ok()) return fallback;
    return *value_;
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  void DieIfError() const {
    if (!status_.ok()) {
      std::cerr << "Result::ValueOrDie on error: " << status_ << "\n";
      std::abort();
    }
  }

  Status status_;
  std::optional<T> value_;
};

}  // namespace m2td

#endif  // M2TD_UTIL_RESULT_H_
