#ifndef M2TD_UTIL_ATOMIC_FILE_H_
#define M2TD_UTIL_ATOMIC_FILE_H_

#include <functional>
#include <string>

#include "util/status.h"

namespace m2td::util {

/// \brief Crash-consistent file replacement: `writer` produces the new
/// content at a temporary sibling path (`<path>.tmp`), which is then
/// renamed over `path`. POSIX rename is atomic within a filesystem, so a
/// crash at any point leaves either the complete old file or the complete
/// new file — never a torn mixture. The temporary is removed on writer
/// failure.
///
/// This is the write pattern behind the chunk store's blobs/manifests
/// (robust/durable.h re-exports it) and every obs artifact writer
/// (Chrome traces, run reports, OpenMetrics snapshots): a SIGKILL
/// mid-export never leaves a truncated JSON on disk.
Status AtomicWriteFile(const std::string& path,
                       const std::function<Status(const std::string&)>&
                           writer);

/// The temporary sibling AtomicWriteFile uses (exposed so cleanup sweeps
/// and tests can look for strays).
std::string TempPathFor(const std::string& path);

}  // namespace m2td::util

#endif  // M2TD_UTIL_ATOMIC_FILE_H_
