#ifndef M2TD_UTIL_STATUS_H_
#define M2TD_UTIL_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace m2td {

/// \brief Error category carried by a Status.
///
/// Mirrors the Arrow/RocksDB convention: library code never throws; every
/// fallible operation returns a Status (or a Result<T>, see result.h) that
/// callers must inspect.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kAlreadyExists,
  kIOError,
  kUnimplemented,
  kInternal,
  /// Stored data is unreadable or fails its integrity check (checksum
  /// mismatch, torn write). Unlike kIOError this is not retryable: the
  /// bytes on disk are wrong, not merely momentarily unavailable.
  kDataLoss,
  /// The operation was cooperatively cancelled (robust::CancelToken).
  /// Not retryable: the caller asked the work to stop.
  kCancelled,
  /// A robust::Deadline attached to the governing CancelToken expired.
  /// Like kCancelled this is cooperative and not retryable, but callers
  /// may treat it differently (e.g. report best-so-far results).
  kDeadlineExceeded,
};

/// \brief Returns a human-readable name for a status code ("OK",
/// "Invalid argument", ...).
const char* StatusCodeToString(StatusCode code);

/// \brief Outcome of a fallible operation: a code plus a free-form message.
///
/// Statuses are cheap to copy in the OK case (no allocation) and carry a
/// message string otherwise. Use the factory functions (Status::OK(),
/// Status::InvalidArgument(...)) rather than the constructor.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status OutOfRange(std::string message) {
    return Status(StatusCode::kOutOfRange, std::move(message));
  }
  static Status NotFound(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  static Status AlreadyExists(std::string message) {
    return Status(StatusCode::kAlreadyExists, std::move(message));
  }
  static Status IOError(std::string message) {
    return Status(StatusCode::kIOError, std::move(message));
  }
  static Status Unimplemented(std::string message) {
    return Status(StatusCode::kUnimplemented, std::move(message));
  }
  static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }
  static Status DataLoss(std::string message) {
    return Status(StatusCode::kDataLoss, std::move(message));
  }
  static Status Cancelled(std::string message) {
    return Status(StatusCode::kCancelled, std::move(message));
  }
  static Status DeadlineExceeded(std::string message) {
    return Status(StatusCode::kDeadlineExceeded, std::move(message));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Returns "OK" or "<code name>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

}  // namespace m2td

/// Propagates a non-OK Status to the caller.
#define M2TD_RETURN_IF_ERROR(expr)             \
  do {                                         \
    ::m2td::Status _st = (expr);               \
    if (!_st.ok()) return _st;                 \
  } while (false)

#define M2TD_CONCAT_IMPL_(x, y) x##y
#define M2TD_CONCAT_(x, y) M2TD_CONCAT_IMPL_(x, y)

/// Evaluates a Result<T> expression; on error returns the Status, otherwise
/// move-assigns the value into `lhs` (which may be a declaration).
#define M2TD_ASSIGN_OR_RETURN(lhs, expr)                        \
  M2TD_ASSIGN_OR_RETURN_IMPL_(M2TD_CONCAT_(_m2td_res, __LINE__), lhs, expr)

#define M2TD_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).ValueOrDie()

#endif  // M2TD_UTIL_STATUS_H_
