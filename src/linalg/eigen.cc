#include "linalg/eigen.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <numeric>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel/parallel_for.h"
#include "robust/cancel.h"
#include "util/logging.h"

namespace m2td::linalg {

namespace {

// Rows below this stay serial: a Jacobi convergence check on a small
// Gram matrix is cheaper than a pool region.
constexpr std::size_t kParallelEigenRows = 64;

std::atomic<EigenMethod> g_default_method{EigenMethod::kJacobi};

double OffDiagonalNorm(const Matrix& a) {
  auto row_range_sum = [&a](std::uint64_t rb, std::uint64_t re) {
    double sum = 0.0;
    for (std::size_t i = static_cast<std::size_t>(rb);
         i < static_cast<std::size_t>(re); ++i) {
      for (std::size_t j = 0; j < a.cols(); ++j) {
        if (i != j) sum += a(i, j) * a(i, j);
      }
    }
    return sum;
  };
  if (a.rows() < kParallelEigenRows) {
    return std::sqrt(row_range_sum(0, a.rows()));
  }
  // Ordered chunk merge keeps the summation association a pure function
  // of the matrix size; results match across thread counts (though they
  // reassociate relative to the small-matrix serial path, which is a
  // size-based, thread-independent choice).
  const double sum = parallel::ParallelReduce<double>(
      0, a.rows(), 0, 0.0, row_range_sum,
      [](double& acc, double partial) { acc += partial; },
      "offdiag_norm");
  return std::sqrt(sum);
}

// Sorts (diag, columns of v) by decreasing diag into a packed result.
SymmetricEigenResult PackSortedEigenpairs(const std::vector<double>& diag,
                                          const Matrix& v, int sweeps,
                                          bool converged) {
  const std::size_t n = diag.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&diag](std::size_t x, std::size_t y) {
    return diag[x] > diag[y];
  });

  SymmetricEigenResult result;
  result.sweeps = sweeps;
  result.converged = converged;
  result.eigenvalues.resize(n);
  result.eigenvectors = Matrix(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    result.eigenvalues[j] = diag[order[j]];
    for (std::size_t i = 0; i < n; ++i) {
      result.eigenvectors(i, j) = v(i, order[j]);
    }
  }
  return result;
}

Result<SymmetricEigenResult> SymmetricEigenJacobi(const Matrix& input,
                                                  const EigenOptions& options,
                                                  double fro) {
  const std::size_t n = input.rows();
  Matrix a = input;
  Matrix v = Matrix::Identity(n);

  obs::ObsSpan span("symmetric_eigen");
  span.Annotate("method", std::string_view("jacobi"));
  const double threshold = options.tolerance * std::max(fro, 1e-300);
  int sweeps = 0;
  bool converged = false;
  for (int sweep = 0; sweep < options.max_sweeps; ++sweep) {
    // Per-sweep cancellation point: a fired ambient token abandons the
    // solve (HOOI converts this into best-so-far factors upstream).
    M2TD_RETURN_IF_ERROR(robust::CheckCancelled());
    if (OffDiagonalNorm(a) <= threshold) {
      converged = true;
      break;
    }
    ++sweeps;
    for (std::size_t p = 0; p < n - 1; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = a(p, q);
        if (std::fabs(apq) <= 1e-300) continue;
        const double app = a(p, p);
        const double aqq = a(q, q);
        // Classic stable rotation computation.
        const double tau = (aqq - app) / (2.0 * apq);
        const double t = (tau >= 0.0)
                             ? 1.0 / (tau + std::sqrt(1.0 + tau * tau))
                             : -1.0 / (-tau + std::sqrt(1.0 + tau * tau));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = t * c;
        // Apply rotation J(p, q, theta) on both sides of A.
        for (std::size_t k = 0; k < n; ++k) {
          const double akp = a(k, p);
          const double akq = a(k, q);
          a(k, p) = c * akp - s * akq;
          a(k, q) = s * akp + c * akq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double apk = a(p, k);
          const double aqk = a(q, k);
          a(p, k) = c * apk - s * aqk;
          a(q, k) = s * apk + c * aqk;
        }
        // Accumulate eigenvectors.
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  // The loop exits non-converged only when every allowed sweep ran; the
  // last sweep may still have met the tolerance, so re-check before
  // declaring failure.
  double final_norm = 0.0;
  if (!converged) {
    final_norm = OffDiagonalNorm(a);
    converged = final_norm <= threshold;
  }
  if (!converged) {
    obs::GetCounter("linalg.eigen.nonconverged").Increment();
    span.Annotate("nonconverged", std::string_view("true"));
    span.Annotate("offdiag_norm", final_norm);
    M2TD_LOG_WARNING() << "Jacobi eigensolver: not converged after "
                       << options.max_sweeps << " sweeps (off-diagonal norm "
                       << final_norm << " > threshold " << threshold
                       << "); returning the partial diagonalization";
  }

  std::vector<double> diag(n);
  for (std::size_t i = 0; i < n; ++i) diag[i] = a(i, i);
  return PackSortedEigenpairs(diag, v, sweeps, converged);
}

// Householder reduction of the symmetric matrix held in `z` to
// tridiagonal form (tred2 lineage): on return `d` holds the diagonal,
// `e` the subdiagonal (e[0] = 0), and `z` the accumulated orthogonal
// transform Q with Q^T A Q tridiagonal.
void HouseholderTridiagonalize(Matrix& z, std::vector<double>& d,
                               std::vector<double>& e) {
  const int n = static_cast<int>(d.size());
  for (int i = n - 1; i >= 1; --i) {
    const int l = i - 1;
    double h = 0.0;
    double scale = 0.0;
    if (l > 0) {
      for (int k = 0; k <= l; ++k) scale += std::fabs(z(i, k));
      if (scale == 0.0) {
        e[i] = z(i, l);
      } else {
        for (int k = 0; k <= l; ++k) {
          z(i, k) /= scale;
          h += z(i, k) * z(i, k);
        }
        double f = z(i, l);
        double g = (f >= 0.0) ? -std::sqrt(h) : std::sqrt(h);
        e[i] = scale * g;
        h -= f * g;
        z(i, l) = f - g;
        f = 0.0;
        for (int j = 0; j <= l; ++j) {
          z(j, i) = z(i, j) / h;
          g = 0.0;
          for (int k = 0; k <= j; ++k) g += z(j, k) * z(i, k);
          for (int k = j + 1; k <= l; ++k) g += z(k, j) * z(i, k);
          e[j] = g / h;
          f += e[j] * z(i, j);
        }
        const double hh = f / (h + h);
        for (int j = 0; j <= l; ++j) {
          f = z(i, j);
          g = e[j] - hh * f;
          e[j] = g;
          for (int k = 0; k <= j; ++k) {
            z(j, k) -= f * e[k] + g * z(i, k);
          }
        }
      }
    } else {
      e[i] = z(i, l);
    }
    d[i] = h;
  }
  d[0] = 0.0;
  e[0] = 0.0;
  // Accumulate the product of the Householder reflectors into z.
  for (int i = 0; i < n; ++i) {
    const int l = i - 1;
    if (d[i] != 0.0) {
      for (int j = 0; j <= l; ++j) {
        double g = 0.0;
        for (int k = 0; k <= l; ++k) g += z(i, k) * z(k, j);
        for (int k = 0; k <= l; ++k) z(k, j) -= g * z(k, i);
      }
    }
    d[i] = z(i, i);
    z(i, i) = 1.0;
    for (int j = 0; j <= l; ++j) {
      z(j, i) = 0.0;
      z(i, j) = 0.0;
    }
  }
}

Result<SymmetricEigenResult> SymmetricEigenTridiagonalQL(
    const Matrix& input, const EigenOptions& options) {
  const std::size_t n = input.rows();
  obs::ObsSpan span("symmetric_eigen");
  span.Annotate("method", std::string_view("tridiagonal_ql"));
  obs::GetCounter("linalg.eigen.ql_solves").Increment();

  Matrix z = input;
  std::vector<double> d(n, 0.0);
  std::vector<double> e(n, 0.0);
  HouseholderTridiagonalize(z, d, e);

  // Implicit-shift QL on the tridiagonal (d, e) with the plane rotations
  // applied to z's columns (tql2 lineage). Subdiagonal entries deflate
  // once they are negligible relative to their neighboring diagonals —
  // the machine-epsilon criterion, independent of options.tolerance.
  const int ni = static_cast<int>(n);
  const double eps = std::numeric_limits<double>::epsilon();
  for (int i = 1; i < ni; ++i) e[i - 1] = e[i];
  e[ni - 1] = 0.0;
  int total_iterations = 0;
  bool converged = true;
  for (int l = 0; l < ni; ++l) {
    // Per-eigenvalue cancellation point, mirroring Jacobi's per-sweep
    // check.
    M2TD_RETURN_IF_ERROR(robust::CheckCancelled());
    int iter = 0;
    int m = l;
    do {
      for (m = l; m < ni - 1; ++m) {
        const double dd = std::fabs(d[m]) + std::fabs(d[m + 1]);
        if (std::fabs(e[m]) <= eps * dd) break;
      }
      if (m == l) break;
      if (iter == options.max_ql_iterations) {
        converged = false;
        break;
      }
      ++iter;
      ++total_iterations;
      double g = (d[l + 1] - d[l]) / (2.0 * e[l]);
      double r = std::hypot(g, 1.0);
      g = d[m] - d[l] + e[l] / (g + std::copysign(r, g));
      double s = 1.0;
      double c = 1.0;
      double p = 0.0;
      bool underflow = false;
      for (int i = m - 1; i >= l; --i) {
        double f = s * e[i];
        const double b = c * e[i];
        r = std::hypot(f, g);
        e[i + 1] = r;
        if (r == 0.0) {
          // Recover from underflow: skip the rest of this QL step.
          d[i + 1] -= p;
          e[m] = 0.0;
          underflow = true;
          break;
        }
        s = f / r;
        c = g / r;
        g = d[i + 1] - p;
        r = (d[i] - g) * s + 2.0 * c * b;
        p = s * r;
        d[i + 1] = g + p;
        g = c * r - b;
        // Rotate the accumulated basis: columns i and i+1 of z.
        for (int k = 0; k < ni; ++k) {
          f = z(k, i + 1);
          z(k, i + 1) = s * z(k, i) + c * f;
          z(k, i) = c * z(k, i) - s * f;
        }
      }
      if (underflow) continue;
      d[l] -= p;
      e[l] = g;
      e[m] = 0.0;
    } while (m != l);
    if (!converged) break;
  }

  obs::GetCounter("linalg.eigen.ql_iterations")
      .Add(static_cast<std::uint64_t>(total_iterations));
  if (!converged) {
    obs::GetCounter("linalg.eigen.nonconverged").Increment();
    span.Annotate("nonconverged", std::string_view("true"));
    M2TD_LOG_WARNING() << "QL eigensolver: an eigenvalue did not converge "
                          "within "
                       << options.max_ql_iterations
                       << " implicit-shift iterations; returning the "
                          "partial diagonalization";
  }
  return PackSortedEigenpairs(d, z, total_iterations, converged);
}

}  // namespace

const char* EigenMethodName(EigenMethod method) {
  switch (method) {
    case EigenMethod::kTridiagonalQL:
      return "tridiagonal_ql";
    case EigenMethod::kJacobi:
      break;
  }
  return "jacobi";
}

bool ParseEigenMethod(std::string_view name, EigenMethod* out) {
  if (name == "jacobi") {
    *out = EigenMethod::kJacobi;
  } else if (name == "tridiagonal_ql") {
    *out = EigenMethod::kTridiagonalQL;
  } else {
    return false;
  }
  return true;
}

void SetDefaultEigenMethod(EigenMethod method) {
  g_default_method.store(method, std::memory_order_release);
}

EigenMethod DefaultEigenMethod() {
  return g_default_method.load(std::memory_order_acquire);
}

Result<SymmetricEigenResult> SymmetricEigen(const Matrix& input,
                                            const EigenOptions& options) {
  const std::size_t n = input.rows();
  if (input.cols() != n) {
    return Status::InvalidArgument("SymmetricEigen requires a square matrix");
  }
  const double fro = input.FrobeniusNorm();
  // Max asymmetry over the upper triangle. max() is exact (no rounding),
  // so any chunking gives the identical value; the reduce is only worth
  // a region on matrices past the size guard.
  auto max_asymmetry = [&input](std::uint64_t rb, std::uint64_t re) {
    double worst = 0.0;
    for (std::size_t i = static_cast<std::size_t>(rb);
         i < static_cast<std::size_t>(re); ++i) {
      for (std::size_t j = i + 1; j < input.rows(); ++j) {
        worst = std::max(worst, std::fabs(input(i, j) - input(j, i)));
      }
    }
    return worst;
  };
  const double asym =
      n < kParallelEigenRows
          ? max_asymmetry(0, n)
          : parallel::ParallelReduce<double>(
                0, n, 0, 0.0, max_asymmetry,
                [](double& acc, double partial) {
                  acc = std::max(acc, partial);
                },
                "symmetry_check");
  if (asym > 1e-9 * std::max(1.0, fro)) {
    return Status::InvalidArgument("SymmetricEigen: matrix not symmetric");
  }

  if (n <= 1) {
    SymmetricEigenResult result;
    result.eigenvalues.assign(n, n == 1 ? input(0, 0) : 0.0);
    result.eigenvectors = Matrix::Identity(n);
    result.converged = true;
    return result;
  }

  const EigenMethod method = options.method.value_or(DefaultEigenMethod());
  if (method == EigenMethod::kTridiagonalQL) {
    return SymmetricEigenTridiagonalQL(input, options);
  }
  return SymmetricEigenJacobi(input, options, fro);
}

Result<Matrix> LeadingEigenvectors(const Matrix& gram, std::size_t rank,
                                   const EigenOptions& options) {
  M2TD_ASSIGN_OR_RETURN(SymmetricEigenResult eig,
                        SymmetricEigen(gram, options));
  const std::size_t k = std::min(rank, gram.rows());
  return eig.eigenvectors.LeadingColumns(k);
}

}  // namespace m2td::linalg
