#include "linalg/eigen.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel/parallel_for.h"
#include "robust/cancel.h"
#include "util/logging.h"

namespace m2td::linalg {

namespace {

// Rows below this stay serial: a Jacobi convergence check on a small
// Gram matrix is cheaper than a pool region.
constexpr std::size_t kParallelEigenRows = 64;

double OffDiagonalNorm(const Matrix& a) {
  auto row_range_sum = [&a](std::uint64_t rb, std::uint64_t re) {
    double sum = 0.0;
    for (std::size_t i = static_cast<std::size_t>(rb);
         i < static_cast<std::size_t>(re); ++i) {
      for (std::size_t j = 0; j < a.cols(); ++j) {
        if (i != j) sum += a(i, j) * a(i, j);
      }
    }
    return sum;
  };
  if (a.rows() < kParallelEigenRows) {
    return std::sqrt(row_range_sum(0, a.rows()));
  }
  // Ordered chunk merge keeps the summation association a pure function
  // of the matrix size; results match across thread counts (though they
  // reassociate relative to the small-matrix serial path, which is a
  // size-based, thread-independent choice).
  const double sum = parallel::ParallelReduce<double>(
      0, a.rows(), 0, 0.0, row_range_sum,
      [](double& acc, double partial) { acc += partial; },
      "offdiag_norm");
  return std::sqrt(sum);
}

}  // namespace

Result<SymmetricEigenResult> SymmetricEigen(const Matrix& input,
                                            const JacobiOptions& options) {
  const std::size_t n = input.rows();
  if (input.cols() != n) {
    return Status::InvalidArgument("SymmetricEigen requires a square matrix");
  }
  const double fro = input.FrobeniusNorm();
  // Max asymmetry over the upper triangle. max() is exact (no rounding),
  // so any chunking gives the identical value; the reduce is only worth
  // a region on matrices past the size guard.
  auto max_asymmetry = [&input](std::uint64_t rb, std::uint64_t re) {
    double worst = 0.0;
    for (std::size_t i = static_cast<std::size_t>(rb);
         i < static_cast<std::size_t>(re); ++i) {
      for (std::size_t j = i + 1; j < input.rows(); ++j) {
        worst = std::max(worst, std::fabs(input(i, j) - input(j, i)));
      }
    }
    return worst;
  };
  const double asym =
      n < kParallelEigenRows
          ? max_asymmetry(0, n)
          : parallel::ParallelReduce<double>(
                0, n, 0, 0.0, max_asymmetry,
                [](double& acc, double partial) {
                  acc = std::max(acc, partial);
                },
                "symmetry_check");
  if (asym > 1e-9 * std::max(1.0, fro)) {
    return Status::InvalidArgument("SymmetricEigen: matrix not symmetric");
  }

  Matrix a = input;
  Matrix v = Matrix::Identity(n);
  if (n <= 1) {
    SymmetricEigenResult result;
    result.eigenvalues.assign(n, n == 1 ? a(0, 0) : 0.0);
    result.eigenvectors = v;
    result.converged = true;
    return result;
  }

  obs::ObsSpan span("symmetric_eigen");
  const double threshold = options.tolerance * std::max(fro, 1e-300);
  int sweeps = 0;
  bool converged = false;
  for (int sweep = 0; sweep < options.max_sweeps; ++sweep) {
    // Per-sweep cancellation point: a fired ambient token abandons the
    // solve (HOOI converts this into best-so-far factors upstream).
    M2TD_RETURN_IF_ERROR(robust::CheckCancelled());
    if (OffDiagonalNorm(a) <= threshold) {
      converged = true;
      break;
    }
    ++sweeps;
    for (std::size_t p = 0; p < n - 1; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = a(p, q);
        if (std::fabs(apq) <= 1e-300) continue;
        const double app = a(p, p);
        const double aqq = a(q, q);
        // Classic stable rotation computation.
        const double tau = (aqq - app) / (2.0 * apq);
        const double t = (tau >= 0.0)
                             ? 1.0 / (tau + std::sqrt(1.0 + tau * tau))
                             : -1.0 / (-tau + std::sqrt(1.0 + tau * tau));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = t * c;
        // Apply rotation J(p, q, theta) on both sides of A.
        for (std::size_t k = 0; k < n; ++k) {
          const double akp = a(k, p);
          const double akq = a(k, q);
          a(k, p) = c * akp - s * akq;
          a(k, q) = s * akp + c * akq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double apk = a(p, k);
          const double aqk = a(q, k);
          a(p, k) = c * apk - s * aqk;
          a(q, k) = s * apk + c * aqk;
        }
        // Accumulate eigenvectors.
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  // The loop exits non-converged only when every allowed sweep ran; the
  // last sweep may still have met the tolerance, so re-check before
  // declaring failure.
  double final_norm = 0.0;
  if (!converged) {
    final_norm = OffDiagonalNorm(a);
    converged = final_norm <= threshold;
  }
  if (!converged) {
    obs::GetCounter("linalg.eigen.nonconverged").Increment();
    span.Annotate("nonconverged", std::string_view("true"));
    span.Annotate("offdiag_norm", final_norm);
    M2TD_LOG_WARNING() << "Jacobi eigensolver: not converged after "
                       << options.max_sweeps << " sweeps (off-diagonal norm "
                       << final_norm << " > threshold " << threshold
                       << "); returning the partial diagonalization";
  }

  // Sort eigenpairs by decreasing eigenvalue.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> diag(n);
  for (std::size_t i = 0; i < n; ++i) diag[i] = a(i, i);
  std::sort(order.begin(), order.end(), [&diag](std::size_t x, std::size_t y) {
    return diag[x] > diag[y];
  });

  SymmetricEigenResult result;
  result.sweeps = sweeps;
  result.converged = converged;
  result.eigenvalues.resize(n);
  result.eigenvectors = Matrix(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    result.eigenvalues[j] = diag[order[j]];
    for (std::size_t i = 0; i < n; ++i) {
      result.eigenvectors(i, j) = v(i, order[j]);
    }
  }
  return result;
}

Result<Matrix> LeadingEigenvectors(const Matrix& gram, std::size_t rank,
                                   const JacobiOptions& options) {
  M2TD_ASSIGN_OR_RETURN(SymmetricEigenResult eig,
                        SymmetricEigen(gram, options));
  const std::size_t k = std::min(rank, gram.rows());
  return eig.eigenvectors.LeadingColumns(k);
}

}  // namespace m2td::linalg
