#include "linalg/matrix.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <utility>

#include "linalg/simd.h"
#include "parallel/parallel_for.h"

namespace m2td::linalg {

namespace {

// Row-parallel kernels only pay off past a flop threshold; below it the
// region setup dominates. The guard must not depend on the pool size:
// each output row is computed wholly by one thread with the serial
// instruction sequence, so results are bit-identical either way, but a
// thread-count-dependent guard would still be a determinism smell.
constexpr std::uint64_t kParallelFlopThreshold = 1 << 15;

// Cache-blocking tiles for the multiply kernels. Blocking only regroups
// the (i, k) iteration space; every output element still accumulates its
// k-contributions in full ascending order (k tiles ascend, k ascends
// within a tile), so blocked results are bit-identical to the unblocked
// loops. kTileK rows of b (64 * cols doubles) is the reuse unit held hot
// across a kTileI-row stripe of a.
constexpr std::size_t kTileI = 16;
constexpr std::size_t kTileK = 64;

void RowParallel(std::size_t rows, std::uint64_t flops, const char* label,
                 const std::function<void(std::size_t, std::size_t)>& body) {
  if (flops < kParallelFlopThreshold) {
    body(0, rows);
    return;
  }
  parallel::ParallelFor(
      0, rows, 0,
      [&](std::uint64_t b, std::uint64_t e) {
        body(static_cast<std::size_t>(b), static_cast<std::size_t>(e));
      },
      label);
}

// Resolves the dispatched kernel table once per multiply call (counting
// one linalg.simd.dispatch_* tick), or nullptr when the fast-kernels
// knob is off so the call sites keep their historical inline loops —
// the knob-off path executes the exact pre-SIMD instruction sequence.
const simd::Kernels* DispatchKernels() {
  return simd::KernelsEnabled() ? &simd::ActiveKernels() : nullptr;
}

}  // namespace

Matrix::Matrix(std::size_t rows, std::size_t cols, std::vector<double> data)
    : rows_(rows), cols_(cols), data_(std::move(data)) {
  M2TD_CHECK(data_.size() == rows_ * cols_)
      << "data size " << data_.size() << " != " << rows_ << "x" << cols_;
}

Matrix Matrix::Identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::Transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = 0; j < cols_; ++j) {
      t(j, i) = (*this)(i, j);
    }
  }
  return t;
}

double Matrix::FrobeniusNorm() const {
  double sum = 0.0;
  for (double v : data_) sum += v * v;
  return std::sqrt(sum);
}

double Matrix::RowNorm(std::size_t i) const {
  M2TD_CHECK(i < rows_);
  double sum = 0.0;
  const double* row = RowPtr(i);
  for (std::size_t j = 0; j < cols_; ++j) sum += row[j] * row[j];
  return std::sqrt(sum);
}

void Matrix::Scale(double factor) {
  for (double& v : data_) v *= factor;
}

Matrix Matrix::LeadingColumns(std::size_t k) const {
  M2TD_CHECK(k <= cols_);
  Matrix out(rows_, k);
  for (std::size_t i = 0; i < rows_; ++i) {
    const double* src = RowPtr(i);
    double* dst = out.RowPtr(i);
    for (std::size_t j = 0; j < k; ++j) dst[j] = src[j];
  }
  return out;
}

double Matrix::MaxAbsDiff(const Matrix& a, const Matrix& b) {
  M2TD_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
  double max_diff = 0.0;
  for (std::size_t i = 0; i < a.data_.size(); ++i) {
    max_diff = std::max(max_diff, std::fabs(a.data_[i] - b.data_[i]));
  }
  return max_diff;
}

std::string Matrix::ToString(int precision) const {
  std::ostringstream os;
  os.precision(precision);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = 0; j < cols_; ++j) {
      if (j > 0) os << " ";
      os << (*this)(i, j);
    }
    os << "\n";
  }
  return os.str();
}

Matrix Multiply(const Matrix& a, const Matrix& b) {
  M2TD_CHECK(a.cols() == b.rows())
      << "multiply shape mismatch: " << a.rows() << "x" << a.cols() << " * "
      << b.rows() << "x" << b.cols();
  Matrix c(a.rows(), b.cols());
  // Cache-blocked i-k-j: a kTileK-row block of b stays hot while a
  // kTileI-row stripe of a sweeps it, instead of re-streaming all of b
  // per output row. Per output element the k-contributions still arrive
  // in full ascending order (with the same zero skip), so the result is
  // bit-identical to the unblocked loop. Row-parallel: each output row
  // is produced by exactly one thread (bit-identical at any thread
  // count; tile edges never split an output element's accumulation).
  const std::uint64_t flops = static_cast<std::uint64_t>(a.rows()) *
                              a.cols() * b.cols();
  const simd::Kernels* kern = DispatchKernels();
  RowParallel(a.rows(), flops, "matmul", [&](std::size_t ib, std::size_t ie) {
    for (std::size_t ii = ib; ii < ie; ii += kTileI) {
      const std::size_t i_end = std::min(ii + kTileI, ie);
      for (std::size_t kk = 0; kk < a.cols(); kk += kTileK) {
        const std::size_t k_end = std::min(kk + kTileK, a.cols());
        for (std::size_t i = ii; i < i_end; ++i) {
          double* crow = c.RowPtr(i);
          for (std::size_t k = kk; k < k_end; ++k) {
            const double aik = a(i, k);
            if (aik == 0.0) continue;
            const double* brow = b.RowPtr(k);
            if (kern != nullptr) {
              kern->axpy(b.cols(), aik, brow, crow);
              continue;
            }
            for (std::size_t j = 0; j < b.cols(); ++j) {
              crow[j] += aik * brow[j];
            }
          }
        }
      }
    }
  });
  return c;
}

Matrix MultiplyTransA(const Matrix& a, const Matrix& b) {
  M2TD_CHECK(a.rows() == b.rows())
      << "multiplyTransA shape mismatch: (" << a.rows() << "x" << a.cols()
      << ")^T * " << b.rows() << "x" << b.cols();
  Matrix c(a.cols(), b.cols());
  // Gather form of the serial k-i-j scatter, cache-blocked like Multiply:
  // a kTileK-row block of b is reused across a kTileI-row stripe of the
  // output. For a fixed output row i the contributions still arrive in
  // ascending-k order (with the same zero skip), so per-element addition
  // sequences match the serial code bit-for-bit while rows parallelize
  // with disjoint writes.
  const std::uint64_t flops = static_cast<std::uint64_t>(a.rows()) *
                              a.cols() * b.cols();
  const simd::Kernels* kern = DispatchKernels();
  RowParallel(a.cols(), flops, "matmul_ta",
              [&](std::size_t ib, std::size_t ie) {
    for (std::size_t ii = ib; ii < ie; ii += kTileI) {
      const std::size_t i_end = std::min(ii + kTileI, ie);
      for (std::size_t kk = 0; kk < a.rows(); kk += kTileK) {
        const std::size_t k_end = std::min(kk + kTileK, a.rows());
        for (std::size_t i = ii; i < i_end; ++i) {
          double* crow = c.RowPtr(i);
          for (std::size_t k = kk; k < k_end; ++k) {
            const double aki = a(k, i);
            if (aki == 0.0) continue;
            const double* brow = b.RowPtr(k);
            if (kern != nullptr) {
              kern->axpy(b.cols(), aki, brow, crow);
              continue;
            }
            for (std::size_t j = 0; j < b.cols(); ++j) {
              crow[j] += aki * brow[j];
            }
          }
        }
      }
    }
  });
  return c;
}

Matrix MultiplyTransB(const Matrix& a, const Matrix& b) {
  M2TD_CHECK(a.cols() == b.cols())
      << "multiplyTransB shape mismatch: " << a.rows() << "x" << a.cols()
      << " * (" << b.rows() << "x" << b.cols() << ")^T";
  Matrix c(a.rows(), b.rows());
  const std::uint64_t flops = static_cast<std::uint64_t>(a.rows()) *
                              a.cols() * b.rows();
  // Register-blocked row-dot-row: four output columns share one streaming
  // pass over arow, quartering the arow bandwidth (the k dimension is the
  // long one here — ModeGramDense calls this with cols = the unfolding
  // width). Each dot keeps its own accumulator over the full ascending k
  // range, so every output element's addition sequence is exactly the
  // serial single-dot order — bit-identical, blocked or not.
  const simd::Kernels* kern = DispatchKernels();
  RowParallel(a.rows(), flops, "matmul_tb",
              [&](std::size_t ib, std::size_t ie) {
    const std::size_t n = b.rows();
    const std::size_t cols = a.cols();
    for (std::size_t i = ib; i < ie; ++i) {
      const double* arow = a.RowPtr(i);
      std::size_t j = 0;
      for (; j + 4 <= n; j += 4) {
        const double* b0 = b.RowPtr(j);
        const double* b1 = b.RowPtr(j + 1);
        const double* b2 = b.RowPtr(j + 2);
        const double* b3 = b.RowPtr(j + 3);
        if (kern != nullptr) {
          double out[4];
          kern->dot4(cols, arow, b0, b1, b2, b3, out);
          c(i, j) = out[0];
          c(i, j + 1) = out[1];
          c(i, j + 2) = out[2];
          c(i, j + 3) = out[3];
          continue;
        }
        double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
        for (std::size_t k = 0; k < cols; ++k) {
          const double av = arow[k];
          s0 += av * b0[k];
          s1 += av * b1[k];
          s2 += av * b2[k];
          s3 += av * b3[k];
        }
        c(i, j) = s0;
        c(i, j + 1) = s1;
        c(i, j + 2) = s2;
        c(i, j + 3) = s3;
      }
      for (; j < n; ++j) {
        const double* brow = b.RowPtr(j);
        if (kern != nullptr) {
          c(i, j) = kern->dot(cols, arow, brow);
          continue;
        }
        double sum = 0.0;
        for (std::size_t k = 0; k < cols; ++k) sum += arow[k] * brow[k];
        c(i, j) = sum;
      }
    }
  });
  return c;
}

Matrix LinearCombination(double alpha, const Matrix& a, double beta,
                         const Matrix& b) {
  M2TD_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
  Matrix c(a.rows(), a.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* arow = a.RowPtr(i);
    const double* brow = b.RowPtr(i);
    double* crow = c.RowPtr(i);
    for (std::size_t j = 0; j < a.cols(); ++j) {
      crow[j] = alpha * arow[j] + beta * brow[j];
    }
  }
  return c;
}

std::vector<double> MatVec(const Matrix& a, const std::vector<double>& x) {
  M2TD_CHECK(a.cols() == x.size());
  std::vector<double> y(a.rows(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* arow = a.RowPtr(i);
    double sum = 0.0;
    for (std::size_t j = 0; j < a.cols(); ++j) sum += arow[j] * x[j];
    y[i] = sum;
  }
  return y;
}

Result<std::vector<double>> SolveLinearSystem(Matrix a,
                                              std::vector<double> b) {
  const std::size_t n = a.rows();
  if (a.cols() != n) {
    return Status::InvalidArgument("SolveLinearSystem requires a square A");
  }
  if (b.size() != n) {
    return Status::InvalidArgument("rhs length must match A dimension");
  }
  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivoting.
    std::size_t pivot = col;
    double pivot_abs = std::fabs(a(col, col));
    for (std::size_t r = col + 1; r < n; ++r) {
      const double v = std::fabs(a(r, col));
      if (v > pivot_abs) {
        pivot_abs = v;
        pivot = r;
      }
    }
    if (pivot_abs < 1e-300) {
      return Status::Internal("singular linear system");
    }
    if (pivot != col) {
      for (std::size_t j = 0; j < n; ++j) std::swap(a(col, j), a(pivot, j));
      std::swap(b[col], b[pivot]);
    }
    const double inv = 1.0 / a(col, col);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = a(r, col) * inv;
      if (factor == 0.0) continue;
      a(r, col) = 0.0;
      for (std::size_t j = col + 1; j < n; ++j) {
        a(r, j) -= factor * a(col, j);
      }
      b[r] -= factor * b[col];
    }
  }
  // Back substitution.
  std::vector<double> x(n, 0.0);
  for (std::size_t ri = n; ri-- > 0;) {
    double sum = b[ri];
    for (std::size_t j = ri + 1; j < n; ++j) sum -= a(ri, j) * x[j];
    x[ri] = sum / a(ri, ri);
  }
  return x;
}

}  // namespace m2td::linalg
