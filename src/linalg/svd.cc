#include "linalg/svd.h"

#include <algorithm>
#include <cmath>

#include "linalg/eigen.h"
#include "obs/trace.h"

namespace m2td::linalg {

Result<SvdResult> TruncatedSvd(const Matrix& a, std::size_t rank,
                               double rank_truncation_tol) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  if (m == 0 || n == 0) {
    return Status::InvalidArgument("TruncatedSvd on empty matrix");
  }
  const std::size_t k = std::min({rank, m, n});
  obs::ObsSpan span("truncated_svd");
  span.Annotate("m", static_cast<std::uint64_t>(m));
  span.Annotate("n", static_cast<std::uint64_t>(n));
  span.Annotate("rank", static_cast<std::uint64_t>(k));

  const bool left_small = m <= n;
  // Gram of the small side.
  Matrix gram = left_small ? MultiplyTransB(a, a)   // A A^T, m x m
                           : MultiplyTransA(a, a);  // A^T A, n x n

  M2TD_ASSIGN_OR_RETURN(SymmetricEigenResult eig, SymmetricEigen(gram));

  SvdResult out;
  out.singular_values.resize(k);
  double s_max = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    out.singular_values[i] = std::sqrt(std::max(0.0, eig.eigenvalues[i]));
    s_max = std::max(s_max, out.singular_values[i]);
  }

  Matrix small_vectors = eig.eigenvectors.LeadingColumns(k);
  if (left_small) {
    out.u = small_vectors;
    // V = A^T U diag(1/s).
    Matrix v = MultiplyTransA(a, out.u);  // n x k
    for (std::size_t j = 0; j < k; ++j) {
      const double s = out.singular_values[j];
      const double inv = (s > rank_truncation_tol * s_max && s > 0.0)
                             ? 1.0 / s
                             : 0.0;
      for (std::size_t i = 0; i < v.rows(); ++i) v(i, j) *= inv;
    }
    out.v = std::move(v);
  } else {
    out.v = small_vectors;
    // U = A V diag(1/s).
    Matrix u = Multiply(a, out.v);  // m x k
    for (std::size_t j = 0; j < k; ++j) {
      const double s = out.singular_values[j];
      const double inv = (s > rank_truncation_tol * s_max && s > 0.0)
                             ? 1.0 / s
                             : 0.0;
      for (std::size_t i = 0; i < u.rows(); ++i) u(i, j) *= inv;
    }
    out.u = std::move(u);
  }
  return out;
}

Result<Matrix> LeftSingularVectorsFromGram(const Matrix& gram,
                                           std::size_t rank,
                                           const EigenOptions& eigen) {
  return LeadingEigenvectors(gram, rank, eigen);
}

Result<std::vector<double>> SingularValuesFromGram(const Matrix& gram,
                                                   std::size_t rank) {
  M2TD_ASSIGN_OR_RETURN(SymmetricEigenResult eig, SymmetricEigen(gram));
  const std::size_t k = std::min(rank, gram.rows());
  std::vector<double> values(k);
  for (std::size_t i = 0; i < k; ++i) {
    values[i] = std::sqrt(std::max(0.0, eig.eigenvalues[i]));
  }
  return values;
}

}  // namespace m2td::linalg
