#ifndef M2TD_LINALG_QR_H_
#define M2TD_LINALG_QR_H_

#include "linalg/matrix.h"
#include "util/result.h"

namespace m2td::linalg {

/// Thin QR factorization A = Q R with Q (m x n) having orthonormal columns
/// and R (n x n) upper triangular.
struct QrResult {
  Matrix q;
  Matrix r;
};

/// \brief Householder thin QR of an m x n matrix with m >= n.
///
/// Used to (re-)orthonormalize factor matrices (e.g. after M2TD-AVG
/// averaging destroys orthonormality) and in tests as an independent check
/// on the Jacobi eigensolver. Returns InvalidArgument when m < n.
Result<QrResult> HouseholderQr(const Matrix& a);

/// Orthonormalizes the columns of `a` (the Q factor of its thin QR).
Result<Matrix> OrthonormalizeColumns(const Matrix& a);

}  // namespace m2td::linalg

#endif  // M2TD_LINALG_QR_H_
