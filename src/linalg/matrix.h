#ifndef M2TD_LINALG_MATRIX_H_
#define M2TD_LINALG_MATRIX_H_

#include <cstddef>
#include <string>
#include <vector>

#include "util/logging.h"
#include "util/result.h"
#include "util/status.h"

namespace m2td::linalg {

/// \brief Dense row-major matrix of doubles.
///
/// Sized for the factor-matrix scale of this library (mode dimensions up to
/// a few hundred): simplicity and cache-friendly row iteration over BLAS
/// micro-optimizations. All shape mismatches are programming errors and
/// abort via M2TD_CHECK; fallible construction paths return Result.
class Matrix {
 public:
  /// Empty 0x0 matrix.
  Matrix() : rows_(0), cols_(0) {}

  /// Zero-initialized rows x cols matrix.
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  /// Matrix initialized from row-major data; `data.size()` must equal
  /// rows*cols.
  Matrix(std::size_t rows, std::size_t cols, std::vector<double> data);

  Matrix(const Matrix&) = default;
  Matrix& operator=(const Matrix&) = default;
  Matrix(Matrix&&) = default;
  Matrix& operator=(Matrix&&) = default;

  /// n x n identity.
  static Matrix Identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t i, std::size_t j) {
    M2TD_DCHECK(i < rows_ && j < cols_);
    return data_[i * cols_ + j];
  }
  double operator()(std::size_t i, std::size_t j) const {
    M2TD_DCHECK(i < rows_ && j < cols_);
    return data_[i * cols_ + j];
  }

  const std::vector<double>& data() const { return data_; }
  std::vector<double>& mutable_data() { return data_; }
  double* RowPtr(std::size_t i) { return data_.data() + i * cols_; }
  const double* RowPtr(std::size_t i) const {
    return data_.data() + i * cols_;
  }

  /// Returns this^T.
  Matrix Transposed() const;

  /// Frobenius norm.
  double FrobeniusNorm() const;

  /// 2-norm of row i.
  double RowNorm(std::size_t i) const;

  /// Elementwise in-place scaling.
  void Scale(double factor);

  /// Returns the sub-matrix of the first `k` columns. Requires k <= cols().
  Matrix LeadingColumns(std::size_t k) const;

  /// Max |a_ij - b_ij| between two same-shaped matrices.
  static double MaxAbsDiff(const Matrix& a, const Matrix& b);

  /// Human-readable dump (for tests and debugging).
  std::string ToString(int precision = 4) const;

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<double> data_;
};

/// C = A * B. Aborts on inner-dimension mismatch.
Matrix Multiply(const Matrix& a, const Matrix& b);

/// C = A^T * B without forming A^T.
Matrix MultiplyTransA(const Matrix& a, const Matrix& b);

/// C = A * B^T without forming B^T.
Matrix MultiplyTransB(const Matrix& a, const Matrix& b);

/// C = alpha*A + beta*B for same-shaped A, B.
Matrix LinearCombination(double alpha, const Matrix& a, double beta,
                         const Matrix& b);

/// y = A * x for x of length A.cols().
std::vector<double> MatVec(const Matrix& a, const std::vector<double>& x);

/// Solves A x = b in-place via Gaussian elimination with partial pivoting.
/// A is n x n and is destroyed; returns InvalidArgument on shape mismatch
/// and Internal when the system is numerically singular.
Result<std::vector<double>> SolveLinearSystem(Matrix a,
                                              std::vector<double> b);

}  // namespace m2td::linalg

#endif  // M2TD_LINALG_MATRIX_H_
