#ifndef M2TD_LINALG_KRON_H_
#define M2TD_LINALG_KRON_H_

#include "linalg/matrix.h"

namespace m2td::linalg {

/// Kronecker product A (x) B: (ma*mb) x (na*nb).
Matrix KroneckerProduct(const Matrix& a, const Matrix& b);

/// Column-wise Khatri-Rao product A (.) B for same-column-count inputs:
/// (ma*mb) x n, column j = a_j (x) b_j. This is the matricized form of the
/// CP model and the test oracle for the sparse MTTKRP kernel.
Result<Matrix> KhatriRaoProduct(const Matrix& a, const Matrix& b);

/// Elementwise (Hadamard) product of same-shaped matrices.
Matrix HadamardProduct(const Matrix& a, const Matrix& b);

/// Moore-Penrose pseudo-inverse of a symmetric PSD matrix via its
/// eigendecomposition; eigenvalues below `tol * lambda_max` are dropped.
/// Used by CP-ALS to solve the normal equations stably when components
/// become collinear.
Result<Matrix> SymmetricPseudoInverse(const Matrix& a, double tol = 1e-12);

}  // namespace m2td::linalg

#endif  // M2TD_LINALG_KRON_H_
