#ifndef M2TD_LINALG_EIGEN_H_
#define M2TD_LINALG_EIGEN_H_

#include <vector>

#include "linalg/matrix.h"
#include "util/result.h"

namespace m2td::linalg {

/// Result of a symmetric eigendecomposition A = V diag(w) V^T.
struct SymmetricEigenResult {
  /// Eigenvalues in decreasing order.
  std::vector<double> eigenvalues;
  /// Orthonormal eigenvectors as columns, ordered to match `eigenvalues`.
  Matrix eigenvectors;
  /// Full Jacobi sweeps actually performed.
  int sweeps = 0;
  /// True when the off-diagonal norm met the tolerance within
  /// `max_sweeps`. A non-converged result is still returned (the
  /// rotations only ever improve the diagonalization) but the event is
  /// surfaced: `linalg.eigen.nonconverged` counter, a "nonconverged"
  /// annotation on the "symmetric_eigen" span, and a WARN log line.
  bool converged = false;
};

/// Options for the cyclic Jacobi eigensolver.
struct JacobiOptions {
  /// Convergence threshold on the off-diagonal Frobenius norm relative to
  /// the matrix Frobenius norm.
  double tolerance = 1e-12;
  /// Maximum number of full sweeps over all off-diagonal pairs.
  int max_sweeps = 64;
};

/// \brief Eigendecomposition of a symmetric matrix via cyclic Jacobi
/// rotations.
///
/// Jacobi is chosen because the matrices this library eigendecomposes are
/// small Gram matrices (mode-dimension squared, at most a few hundred per
/// side), where Jacobi's unconditional numerical robustness and simplicity
/// beat more scalable tridiagonalization schemes. Returns InvalidArgument
/// for non-square or non-symmetric (beyond 1e-9 relative) input.
///
/// Complexity: O(n^2) rotations per sweep, O(n) work each — O(n^3) per
/// sweep, typically a handful of sweeps to converge. Memory: one n x n
/// copy being diagonalized plus the n x n accumulated eigenvector matrix.
///
/// Thread-safety/parallelism: safe to call concurrently; inputs are
/// const and all state is local. The rotations themselves run serially —
/// each rotation mutates two rows/columns and reorders poorly — but the
/// two O(n^2) scans (the symmetry check, span "symmetry_check", an exact
/// max; and the off-diagonal norm, span "offdiag_norm", an ordered sum)
/// run as ParallelReduce on parallel::GlobalPool() once n >= 64. Both
/// reductions merge fixed, pool-size-independent chunks in ascending
/// order, so acceptance and convergence decisions — and therefore the
/// returned eigenpairs — are bit-identical across `--threads` values.
///
/// Cancellation: the ambient robust::CancelToken is checked once per
/// sweep; a fired token returns Status::Cancelled / DeadlineExceeded
/// (callers like HOOI translate that into best-so-far results).
Result<SymmetricEigenResult> SymmetricEigen(
    const Matrix& a, const JacobiOptions& options = JacobiOptions());

/// \brief Leading `rank` eigenvectors of a symmetric positive semi-definite
/// Gram matrix, as an (n x rank) matrix of columns.
///
/// This is the workhorse of HOSVD in this library: the left singular
/// vectors of a matricization X_(n) are the eigenvectors of the Gram matrix
/// X_(n) X_(n)^T, which stays small even when X_(n) has astronomically many
/// columns. `rank` is clamped to n.
Result<Matrix> LeadingEigenvectors(const Matrix& gram, std::size_t rank,
                                   const JacobiOptions& options =
                                       JacobiOptions());

}  // namespace m2td::linalg

#endif  // M2TD_LINALG_EIGEN_H_
