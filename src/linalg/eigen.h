#ifndef M2TD_LINALG_EIGEN_H_
#define M2TD_LINALG_EIGEN_H_

#include <optional>
#include <string_view>
#include <vector>

#include "linalg/matrix.h"
#include "util/result.h"

namespace m2td::linalg {

/// Result of a symmetric eigendecomposition A = V diag(w) V^T.
struct SymmetricEigenResult {
  /// Eigenvalues in decreasing order.
  std::vector<double> eigenvalues;
  /// Orthonormal eigenvectors as columns, ordered to match `eigenvalues`.
  Matrix eigenvectors;
  /// Work performed: full Jacobi sweeps for the Jacobi method, total
  /// implicit-shift QL iterations for the tridiagonal method.
  int sweeps = 0;
  /// True when the solver met its convergence criterion within its
  /// iteration budget. A non-converged result is still returned (the
  /// orthogonal transforms only ever improve the diagonalization) but
  /// the event is surfaced: `linalg.eigen.nonconverged` counter, a
  /// "nonconverged" annotation on the "symmetric_eigen" span, and a WARN
  /// log line.
  bool converged = false;
};

/// Algorithm used by SymmetricEigen for the symmetric eigenproblem.
enum class EigenMethod {
  /// Cyclic Jacobi rotations — the historical path and the bit-exact
  /// oracle; O(n^3) per sweep.
  kJacobi,
  /// Householder tridiagonalization + implicit-shift QL with eigenvector
  /// accumulation — ~(4/3)n^3 once plus O(n^2) per eigenvalue, several
  /// times faster on the Gram sizes this library meets. Changes fp
  /// summation order relative to Jacobi, so it is opt-in.
  kTridiagonalQL,
};

/// Stable lowercase name ("jacobi" / "tridiagonal_ql") for flags, spans,
/// and logs.
const char* EigenMethodName(EigenMethod method);

/// Parses an EigenMethodName back into the enum. Returns false (leaving
/// `*out` untouched) for unknown names.
bool ParseEigenMethod(std::string_view name, EigenMethod* out);

/// Sets the process-wide default eigensolver used whenever
/// `EigenOptions::method` is unset — the hook behind `m2td_cli
/// --eigen_method`, covering every Gram solve in the pipeline (HOSVD,
/// HOOI, M2TD pivot/sub-factor solves, refinement) without threading an
/// option through each call site. Starts as kJacobi, keeping the default
/// build bit-identical to the pre-QL library.
void SetDefaultEigenMethod(EigenMethod method);

/// The current process-wide default eigensolver.
EigenMethod DefaultEigenMethod();

/// Options for SymmetricEigen. Default-constructed options reproduce the
/// historical cyclic-Jacobi behavior exactly.
struct EigenOptions {
  /// Jacobi convergence threshold on the off-diagonal Frobenius norm
  /// relative to the matrix Frobenius norm. The QL path instead deflates
  /// on machine-epsilon-relative subdiagonal decay (the standard tql2
  /// criterion), which is tighter than any practical tolerance here.
  double tolerance = 1e-12;
  /// Maximum number of full Jacobi sweeps over all off-diagonal pairs.
  int max_sweeps = 64;
  /// Maximum implicit-shift QL iterations per eigenvalue (tridiagonal
  /// method only; 30 is the classical EISPACK budget).
  int max_ql_iterations = 30;
  /// Solver selection; unset means DefaultEigenMethod().
  std::optional<EigenMethod> method;
};

/// Backwards-compatible name from when cyclic Jacobi was the only
/// solver.
using JacobiOptions = EigenOptions;

/// \brief Eigendecomposition of a symmetric matrix.
///
/// Two methods, selected by `options.method` (falling back to the
/// process default, initially Jacobi):
///
/// **kJacobi** — cyclic Jacobi rotations. Unconditionally robust and
/// simple; O(n^2) rotations per sweep, O(n) work each — O(n^3) per
/// sweep, typically a handful of sweeps. The bit-exact oracle path.
///
/// **kTridiagonalQL** — Householder reduction to tridiagonal form with
/// accumulation of the orthogonal transform, then implicit-shift QL on
/// the tridiagonal matrix with the rotations applied to the accumulated
/// basis (tred2/tql2 lineage). ~(4/3)n^3 flops once plus O(n^2) per
/// eigenvalue — several times faster than Jacobi on the small Gram
/// matrices this library eigendecomposes (mode-dimension squared, at
/// most a few hundred per side). Reassociates fp sums relative to
/// Jacobi, so it ships opt-in behind `--eigen_method=tridiagonal_ql`
/// with Jacobi gating it in bench-smoke.
///
/// Returns InvalidArgument for non-square or non-symmetric (beyond 1e-9
/// relative) input.
///
/// Thread-safety/parallelism: safe to call concurrently; inputs are
/// const and all state is local. Rotations run serially; the two O(n^2)
/// scans (the symmetry check, span "symmetry_check", an exact max; and
/// the Jacobi off-diagonal norm, span "offdiag_norm", an ordered sum)
/// run as ParallelReduce on parallel::GlobalPool() once n >= 64. Both
/// reductions merge fixed, pool-size-independent chunks in ascending
/// order, so the returned eigenpairs are bit-identical across
/// `--threads` values for either method.
///
/// Cancellation: the ambient robust::CancelToken is checked once per
/// Jacobi sweep / QL deflation step; a fired token returns
/// Status::Cancelled / DeadlineExceeded (callers like HOOI translate
/// that into best-so-far results).
Result<SymmetricEigenResult> SymmetricEigen(
    const Matrix& a, const EigenOptions& options = EigenOptions());

/// \brief Leading `rank` eigenvectors of a symmetric positive semi-definite
/// Gram matrix, as an (n x rank) matrix of columns.
///
/// This is the workhorse of HOSVD in this library: the left singular
/// vectors of a matricization X_(n) are the eigenvectors of the Gram matrix
/// X_(n) X_(n)^T, which stays small even when X_(n) has astronomically many
/// columns. `rank` is clamped to n.
Result<Matrix> LeadingEigenvectors(const Matrix& gram, std::size_t rank,
                                   const EigenOptions& options =
                                       EigenOptions());

}  // namespace m2td::linalg

#endif  // M2TD_LINALG_EIGEN_H_
