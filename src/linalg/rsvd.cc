#include "linalg/rsvd.h"

#include <algorithm>

#include "linalg/eigen.h"
#include "linalg/qr.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace m2td::linalg {

Result<SvdResult> RandomizedSvd(const Matrix& a, std::size_t rank,
                                const RandomizedSvdOptions& options) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  if (m == 0 || n == 0) {
    return Status::InvalidArgument("RandomizedSvd on empty matrix");
  }
  if (rank == 0) return Status::InvalidArgument("rank must be positive");
  const std::size_t k = std::min({rank, m, n});
  obs::ObsSpan span("randomized_svd");
  span.Annotate("m", static_cast<std::uint64_t>(m));
  span.Annotate("n", static_cast<std::uint64_t>(n));
  span.Annotate("rank", static_cast<std::uint64_t>(k));
  const std::size_t sketch = std::min(m, k + options.oversampling);

  // Gaussian test matrix Omega (n x sketch), Y = A Omega (m x sketch).
  Rng rng(options.seed);
  Matrix omega(n, sketch);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < sketch; ++j) omega(i, j) = rng.Gaussian();
  }
  Matrix y = Multiply(a, omega);

  // Power iterations with re-orthonormalization for stability.
  for (int it = 0; it < options.power_iterations; ++it) {
    M2TD_ASSIGN_OR_RETURN(y, OrthonormalizeColumns(y));
    Matrix z = MultiplyTransA(a, y);  // n x sketch
    y = Multiply(a, z);               // m x sketch
  }
  M2TD_ASSIGN_OR_RETURN(Matrix q, OrthonormalizeColumns(y));

  // B = Q^T A is small (sketch x n); solve it exactly.
  Matrix b = MultiplyTransA(q, a);
  M2TD_ASSIGN_OR_RETURN(SvdResult small, TruncatedSvd(b, k));

  SvdResult out;
  out.u = Multiply(q, small.u);  // m x k
  out.singular_values = std::move(small.singular_values);
  out.v = std::move(small.v);
  return out;
}

Result<Matrix> RandomizedRangeFactor(const Matrix& sym, std::size_t rank,
                                     const RandomizedSvdOptions& options) {
  const std::size_t n = sym.rows();
  if (n == 0) {
    return Status::InvalidArgument("RandomizedRangeFactor on empty matrix");
  }
  if (sym.cols() != n) {
    return Status::InvalidArgument("RandomizedRangeFactor needs a square matrix");
  }
  if (rank == 0) return Status::InvalidArgument("rank must be positive");
  const std::size_t k = std::min(rank, n);
  const std::size_t sketch = std::min(n, k + options.oversampling);

  obs::ObsSpan span("randomized_range_factor");
  span.Annotate("n", static_cast<std::uint64_t>(n));
  span.Annotate("rank", static_cast<std::uint64_t>(k));
  span.Annotate("sketch", static_cast<std::uint64_t>(sketch));

  if (sketch >= n) {
    // The sketched subproblem would be as large as the original: sketching
    // cannot win, and the exact solve doubles as a bit-reproducible floor
    // for tiny modes.
    static obs::Counter& fallbacks =
        obs::GetCounter("linalg.rsvd.exact_fallbacks");
    fallbacks.Increment();
    span.Annotate("exact_fallback", std::uint64_t{1});
    return LeadingEigenvectors(sym, k);
  }

  static obs::Counter& sketches = obs::GetCounter("linalg.rsvd.sketches");
  sketches.Increment();

  // Serial Gaussian sketch: a pure function of the seed, so the draw is
  // identical at any pool size (the multiplies below are pool-parallel but
  // bit-deterministic by ascending-chunk merging).
  Rng rng(options.seed);
  Matrix omega(n, sketch);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < sketch; ++j) omega(i, j) = rng.Gaussian();
  }
  Matrix y = Multiply(sym, omega);

  static obs::Counter& power_iters =
      obs::GetCounter("linalg.rsvd.power_iterations");
  for (int it = 0; it < options.power_iterations; ++it) {
    power_iters.Increment();
    M2TD_ASSIGN_OR_RETURN(y, OrthonormalizeColumns(y));
    y = Multiply(sym, y);  // symmetric input: one multiply per iteration
  }
  M2TD_ASSIGN_OR_RETURN(Matrix q, OrthonormalizeColumns(y));

  // Project to the small subspace and solve there exactly with the same
  // Jacobi the deterministic path uses: B = Q^T A Q (sketch x sketch).
  Matrix aq = Multiply(sym, q);
  Matrix b = MultiplyTransA(q, aq);
  // Symmetrize away the fp asymmetry of the two-step product so Jacobi's
  // symmetry acceptance check cannot reject near the tolerance.
  for (std::size_t i = 0; i < sketch; ++i) {
    for (std::size_t j = i + 1; j < sketch; ++j) {
      const double v = 0.5 * (b(i, j) + b(j, i));
      b(i, j) = v;
      b(j, i) = v;
    }
  }
  M2TD_ASSIGN_OR_RETURN(SymmetricEigenResult small, SymmetricEigen(b));

  // Lift: U = Q V_k, orthonormal because both factors are.
  return Multiply(q, small.eigenvectors.LeadingColumns(k));
}

GramFactorOptions GramFactorOptions::ForMode(std::size_t mode) const {
  GramFactorOptions out = *this;
  // SplitMix64 finalizer over (seed, mode): decorrelated per-mode streams
  // that depend only on the configured seed and the mode index.
  std::uint64_t z = sketch.seed + 0x9e3779b97f4a7c15ULL * (mode + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  out.sketch.seed = z ^ (z >> 31);
  return out;
}

Result<Matrix> GramFactor(const Matrix& gram, std::size_t rank,
                          const GramFactorOptions& options) {
  switch (options.method) {
    case GramFactorMethod::kRandomized:
      return RandomizedRangeFactor(gram, rank, options.sketch);
    case GramFactorMethod::kDeterministic:
      break;
  }
  return LeftSingularVectorsFromGram(gram, rank, options.eigen);
}

}  // namespace m2td::linalg
