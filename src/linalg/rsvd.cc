#include "linalg/rsvd.h"

#include <algorithm>

#include "linalg/qr.h"
#include "obs/trace.h"

namespace m2td::linalg {

Result<SvdResult> RandomizedSvd(const Matrix& a, std::size_t rank,
                                const RandomizedSvdOptions& options) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  if (m == 0 || n == 0) {
    return Status::InvalidArgument("RandomizedSvd on empty matrix");
  }
  if (rank == 0) return Status::InvalidArgument("rank must be positive");
  const std::size_t k = std::min({rank, m, n});
  obs::ObsSpan span("randomized_svd");
  span.Annotate("m", static_cast<std::uint64_t>(m));
  span.Annotate("n", static_cast<std::uint64_t>(n));
  span.Annotate("rank", static_cast<std::uint64_t>(k));
  const std::size_t sketch = std::min(m, k + options.oversampling);

  // Gaussian test matrix Omega (n x sketch), Y = A Omega (m x sketch).
  Rng rng(options.seed);
  Matrix omega(n, sketch);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < sketch; ++j) omega(i, j) = rng.Gaussian();
  }
  Matrix y = Multiply(a, omega);

  // Power iterations with re-orthonormalization for stability.
  for (int it = 0; it < options.power_iterations; ++it) {
    M2TD_ASSIGN_OR_RETURN(y, OrthonormalizeColumns(y));
    Matrix z = MultiplyTransA(a, y);  // n x sketch
    y = Multiply(a, z);               // m x sketch
  }
  M2TD_ASSIGN_OR_RETURN(Matrix q, OrthonormalizeColumns(y));

  // B = Q^T A is small (sketch x n); solve it exactly.
  Matrix b = MultiplyTransA(q, a);
  M2TD_ASSIGN_OR_RETURN(SvdResult small, TruncatedSvd(b, k));

  SvdResult out;
  out.u = Multiply(q, small.u);  // m x k
  out.singular_values = std::move(small.singular_values);
  out.v = std::move(small.v);
  return out;
}

}  // namespace m2td::linalg
