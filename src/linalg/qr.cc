#include "linalg/qr.h"

#include <cmath>
#include <vector>

namespace m2td::linalg {

Result<QrResult> HouseholderQr(const Matrix& a) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  if (m < n) {
    return Status::InvalidArgument("HouseholderQr requires rows >= cols");
  }

  Matrix r = a;
  // Accumulate Householder vectors; apply to identity afterwards.
  std::vector<std::vector<double>> vs;
  vs.reserve(n);

  for (std::size_t k = 0; k < n; ++k) {
    // Build the Householder vector for column k.
    double norm_x = 0.0;
    for (std::size_t i = k; i < m; ++i) norm_x += r(i, k) * r(i, k);
    norm_x = std::sqrt(norm_x);
    std::vector<double> v(m, 0.0);
    if (norm_x > 0.0) {
      const double alpha = (r(k, k) >= 0.0) ? -norm_x : norm_x;
      double vnorm2 = 0.0;
      for (std::size_t i = k; i < m; ++i) {
        v[i] = r(i, k);
        if (i == k) v[i] -= alpha;
        vnorm2 += v[i] * v[i];
      }
      if (vnorm2 > 1e-300) {
        const double inv = 1.0 / std::sqrt(vnorm2);
        for (std::size_t i = k; i < m; ++i) v[i] *= inv;
        // R <- (I - 2 v v^T) R, restricted to columns k..n-1.
        for (std::size_t j = k; j < n; ++j) {
          double dot = 0.0;
          for (std::size_t i = k; i < m; ++i) dot += v[i] * r(i, j);
          dot *= 2.0;
          for (std::size_t i = k; i < m; ++i) r(i, j) -= dot * v[i];
        }
      }
    }
    vs.push_back(std::move(v));
  }

  // Q = H_0 H_1 ... H_{n-1} applied to the first n columns of I.
  Matrix q(m, n);
  for (std::size_t j = 0; j < n; ++j) q(j, j) = 1.0;
  for (std::size_t k = n; k-- > 0;) {
    const std::vector<double>& v = vs[k];
    for (std::size_t j = 0; j < n; ++j) {
      double dot = 0.0;
      for (std::size_t i = k; i < m; ++i) dot += v[i] * q(i, j);
      dot *= 2.0;
      for (std::size_t i = k; i < m; ++i) q(i, j) -= dot * v[i];
    }
  }

  // Zero the strictly lower part of the thin R.
  Matrix r_thin(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) r_thin(i, j) = r(i, j);
  }

  QrResult result;
  result.q = std::move(q);
  result.r = std::move(r_thin);
  return result;
}

Result<Matrix> OrthonormalizeColumns(const Matrix& a) {
  M2TD_ASSIGN_OR_RETURN(QrResult qr, HouseholderQr(a));
  return std::move(qr.q);
}

}  // namespace m2td::linalg
