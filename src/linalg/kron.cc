#include "linalg/kron.h"

#include <algorithm>
#include <cmath>

#include "linalg/eigen.h"

namespace m2td::linalg {

Matrix KroneckerProduct(const Matrix& a, const Matrix& b) {
  Matrix out(a.rows() * b.rows(), a.cols() * b.cols());
  for (std::size_t ia = 0; ia < a.rows(); ++ia) {
    for (std::size_t ja = 0; ja < a.cols(); ++ja) {
      const double av = a(ia, ja);
      if (av == 0.0) continue;
      for (std::size_t ib = 0; ib < b.rows(); ++ib) {
        for (std::size_t jb = 0; jb < b.cols(); ++jb) {
          out(ia * b.rows() + ib, ja * b.cols() + jb) = av * b(ib, jb);
        }
      }
    }
  }
  return out;
}

Result<Matrix> KhatriRaoProduct(const Matrix& a, const Matrix& b) {
  if (a.cols() != b.cols()) {
    return Status::InvalidArgument(
        "Khatri-Rao requires equal column counts");
  }
  Matrix out(a.rows() * b.rows(), a.cols());
  for (std::size_t j = 0; j < a.cols(); ++j) {
    for (std::size_t ia = 0; ia < a.rows(); ++ia) {
      const double av = a(ia, j);
      if (av == 0.0) continue;
      for (std::size_t ib = 0; ib < b.rows(); ++ib) {
        out(ia * b.rows() + ib, j) = av * b(ib, j);
      }
    }
  }
  return out;
}

Matrix HadamardProduct(const Matrix& a, const Matrix& b) {
  M2TD_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
  Matrix out(a.rows(), a.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      out(i, j) = a(i, j) * b(i, j);
    }
  }
  return out;
}

Result<Matrix> SymmetricPseudoInverse(const Matrix& a, double tol) {
  M2TD_ASSIGN_OR_RETURN(SymmetricEigenResult eig, SymmetricEigen(a));
  const std::size_t n = a.rows();
  double max_abs = 0.0;
  for (double w : eig.eigenvalues) max_abs = std::max(max_abs, std::fabs(w));
  // pinv = V diag(1/w or 0) V^T.
  Matrix scaled = eig.eigenvectors;
  for (std::size_t j = 0; j < n; ++j) {
    const double w = eig.eigenvalues[j];
    const double inv = (std::fabs(w) > tol * std::max(max_abs, 1e-300))
                           ? 1.0 / w
                           : 0.0;
    for (std::size_t i = 0; i < n; ++i) scaled(i, j) *= inv;
  }
  return MultiplyTransB(scaled, eig.eigenvectors);
}

}  // namespace m2td::linalg
