#ifndef M2TD_LINALG_SIMD_H_
#define M2TD_LINALG_SIMD_H_

#include <cstddef>

#include "util/cpu_features.h"

namespace m2td::linalg::simd {

/// Function table of the three inner kernels every hot loop in the
/// library reduces to, specialized per ISA level. The scalar table
/// replicates the historical inner loops instruction-for-instruction, so
/// a forced-scalar dispatch (`M2TD_FORCE_ISA=scalar`) with the
/// fast-kernels knob on is bit-identical to the knob-off path. The
/// vector tables fuse multiply-adds and sum lanes pairwise — different
/// fp rounding/association, same O(eps) accuracy — which is why they sit
/// behind the opt-in knob. Every kernel is a pure function of its
/// arguments (no thread-count dependence), so any dispatch level is
/// bit-identical across `--threads` values.
struct Kernels {
  /// The ISA these kernels are compiled for.
  util::SimdIsa isa;
  /// y[i] += a * x[i] for i in [0, n). The workhorse of Multiply /
  /// MultiplyTransA row updates, CSF fiber scatter, and Gram row
  /// accumulation.
  void (*axpy)(std::size_t n, double a, const double* x, double* y);
  /// Returns sum_i x[i] * y[i] (single accumulator in the scalar table).
  double (*dot)(std::size_t n, const double* x, const double* y);
  /// Four simultaneous dot products sharing one streaming pass over `x`:
  /// out[q] = sum_i x[i] * yq[i]. Matches MultiplyTransB's
  /// register-blocked quad-dot.
  void (*dot4)(std::size_t n, const double* x, const double* y0,
               const double* y1, const double* y2, const double* y3,
               double* out);
};

/// True when the fast-kernels knob is on and kernel call sites should
/// route through ActiveKernels() instead of their inline scalar loops.
bool KernelsEnabled();

/// The kernel table for util::ActiveSimdIsa(). Each call increments the
/// matching `linalg.simd.dispatch_{avx2,neon,scalar}` counter, so call
/// it once per kernel-level invocation (one Multiply, one ModeGram, one
/// SparseModeProduct), not per inner loop.
const Kernels& ActiveKernels();

/// Kernel table for an explicit ISA level, without touching dispatch
/// counters. Requesting a level the binary lacks returns the scalar
/// table. For oracle tests that pin both sides of a comparison.
const Kernels& KernelsForIsa(util::SimdIsa isa);

}  // namespace m2td::linalg::simd

#endif  // M2TD_LINALG_SIMD_H_
