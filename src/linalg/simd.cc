#include "linalg/simd.h"

#include "obs/metrics.h"

#if defined(__x86_64__) || defined(_M_X64)
#include <immintrin.h>
#define M2TD_SIMD_HAVE_AVX2 1
#endif
#if defined(__aarch64__)
#include <arm_neon.h>
#define M2TD_SIMD_HAVE_NEON 1
#endif

namespace m2td::linalg::simd {

namespace {

// ---------------------------------------------------------------------
// Scalar table. These loops must stay textually identical to the inline
// kernels in matrix.cc / ttm.cc / matricize.cc: the forced-scalar
// dispatch path is the bit-exactness oracle for the whole SIMD layer.
// ---------------------------------------------------------------------

void AxpyScalar(std::size_t n, double a, const double* x, double* y) {
  for (std::size_t i = 0; i < n; ++i) y[i] += a * x[i];
}

double DotScalar(std::size_t n, const double* x, const double* y) {
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) sum += x[i] * y[i];
  return sum;
}

void Dot4Scalar(std::size_t n, const double* x, const double* y0,
                const double* y1, const double* y2, const double* y3,
                double* out) {
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    const double xv = x[k];
    s0 += xv * y0[k];
    s1 += xv * y1[k];
    s2 += xv * y2[k];
    s3 += xv * y3[k];
  }
  out[0] = s0;
  out[1] = s1;
  out[2] = s2;
  out[3] = s3;
}

constexpr Kernels kScalarKernels{util::SimdIsa::kScalar, AxpyScalar,
                                 DotScalar, Dot4Scalar};

// ---------------------------------------------------------------------
// AVX2 + FMA table (x86-64). Function-level target attributes let the
// rest of the binary keep the baseline ISA; these bodies are only ever
// reached after __builtin_cpu_supports confirmed the host executes them.
// 8-wide = two 4-lane accumulators per iteration, hiding FMA latency.
// ---------------------------------------------------------------------

#if defined(M2TD_SIMD_HAVE_AVX2)

__attribute__((target("avx2,fma"))) void AxpyAvx2(std::size_t n, double a,
                                                  const double* x,
                                                  double* y) {
  const __m256d va = _mm256_set1_pd(a);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256d y0 = _mm256_loadu_pd(y + i);
    __m256d y1 = _mm256_loadu_pd(y + i + 4);
    y0 = _mm256_fmadd_pd(va, _mm256_loadu_pd(x + i), y0);
    y1 = _mm256_fmadd_pd(va, _mm256_loadu_pd(x + i + 4), y1);
    _mm256_storeu_pd(y + i, y0);
    _mm256_storeu_pd(y + i + 4, y1);
  }
  if (i + 4 <= n) {
    __m256d y0 = _mm256_loadu_pd(y + i);
    y0 = _mm256_fmadd_pd(va, _mm256_loadu_pd(x + i), y0);
    _mm256_storeu_pd(y + i, y0);
    i += 4;
  }
  for (; i < n; ++i) y[i] += a * x[i];
}

__attribute__((target("avx2,fma"))) double DotAvx2(std::size_t n,
                                                   const double* x,
                                                   const double* y) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i),
                           acc0);
    acc1 = _mm256_fmadd_pd(_mm256_loadu_pd(x + i + 4),
                           _mm256_loadu_pd(y + i + 4), acc1);
  }
  __m256d acc = _mm256_add_pd(acc0, acc1);
  if (i + 4 <= n) {
    acc = _mm256_fmadd_pd(_mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i),
                          acc);
    i += 4;
  }
  double lane[4];
  _mm256_storeu_pd(lane, acc);
  double sum = (lane[0] + lane[1]) + (lane[2] + lane[3]);
  for (; i < n; ++i) sum += x[i] * y[i];
  return sum;
}

__attribute__((target("avx2,fma"))) void Dot4Avx2(
    std::size_t n, const double* x, const double* y0, const double* y1,
    const double* y2, const double* y3, double* out) {
  __m256d a0 = _mm256_setzero_pd();
  __m256d a1 = _mm256_setzero_pd();
  __m256d a2 = _mm256_setzero_pd();
  __m256d a3 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d xv = _mm256_loadu_pd(x + i);
    a0 = _mm256_fmadd_pd(xv, _mm256_loadu_pd(y0 + i), a0);
    a1 = _mm256_fmadd_pd(xv, _mm256_loadu_pd(y1 + i), a1);
    a2 = _mm256_fmadd_pd(xv, _mm256_loadu_pd(y2 + i), a2);
    a3 = _mm256_fmadd_pd(xv, _mm256_loadu_pd(y3 + i), a3);
  }
  double lane[4];
  _mm256_storeu_pd(lane, a0);
  double s0 = (lane[0] + lane[1]) + (lane[2] + lane[3]);
  _mm256_storeu_pd(lane, a1);
  double s1 = (lane[0] + lane[1]) + (lane[2] + lane[3]);
  _mm256_storeu_pd(lane, a2);
  double s2 = (lane[0] + lane[1]) + (lane[2] + lane[3]);
  _mm256_storeu_pd(lane, a3);
  double s3 = (lane[0] + lane[1]) + (lane[2] + lane[3]);
  for (; i < n; ++i) {
    const double xv = x[i];
    s0 += xv * y0[i];
    s1 += xv * y1[i];
    s2 += xv * y2[i];
    s3 += xv * y3[i];
  }
  out[0] = s0;
  out[1] = s1;
  out[2] = s2;
  out[3] = s3;
}

constexpr Kernels kAvx2Kernels{util::SimdIsa::kAvx2, AxpyAvx2, DotAvx2,
                               Dot4Avx2};

#endif  // M2TD_SIMD_HAVE_AVX2

// ---------------------------------------------------------------------
// NEON table (AArch64). 2-lane doubles; unrolled to 8 elements with four
// independent accumulators to keep the FMA pipes busy.
// ---------------------------------------------------------------------

#if defined(M2TD_SIMD_HAVE_NEON)

void AxpyNeon(std::size_t n, double a, const double* x, double* y) {
  const float64x2_t va = vdupq_n_f64(a);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    float64x2_t y0 = vld1q_f64(y + i);
    float64x2_t y1 = vld1q_f64(y + i + 2);
    y0 = vfmaq_f64(y0, va, vld1q_f64(x + i));
    y1 = vfmaq_f64(y1, va, vld1q_f64(x + i + 2));
    vst1q_f64(y + i, y0);
    vst1q_f64(y + i + 2, y1);
  }
  for (; i < n; ++i) y[i] += a * x[i];
}

double DotNeon(std::size_t n, const double* x, const double* y) {
  float64x2_t acc0 = vdupq_n_f64(0.0);
  float64x2_t acc1 = vdupq_n_f64(0.0);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc0 = vfmaq_f64(acc0, vld1q_f64(x + i), vld1q_f64(y + i));
    acc1 = vfmaq_f64(acc1, vld1q_f64(x + i + 2), vld1q_f64(y + i + 2));
  }
  const float64x2_t acc = vaddq_f64(acc0, acc1);
  double sum = vgetq_lane_f64(acc, 0) + vgetq_lane_f64(acc, 1);
  for (; i < n; ++i) sum += x[i] * y[i];
  return sum;
}

void Dot4Neon(std::size_t n, const double* x, const double* y0,
              const double* y1, const double* y2, const double* y3,
              double* out) {
  float64x2_t a0 = vdupq_n_f64(0.0);
  float64x2_t a1 = vdupq_n_f64(0.0);
  float64x2_t a2 = vdupq_n_f64(0.0);
  float64x2_t a3 = vdupq_n_f64(0.0);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t xv = vld1q_f64(x + i);
    a0 = vfmaq_f64(a0, xv, vld1q_f64(y0 + i));
    a1 = vfmaq_f64(a1, xv, vld1q_f64(y1 + i));
    a2 = vfmaq_f64(a2, xv, vld1q_f64(y2 + i));
    a3 = vfmaq_f64(a3, xv, vld1q_f64(y3 + i));
  }
  double s0 = vgetq_lane_f64(a0, 0) + vgetq_lane_f64(a0, 1);
  double s1 = vgetq_lane_f64(a1, 0) + vgetq_lane_f64(a1, 1);
  double s2 = vgetq_lane_f64(a2, 0) + vgetq_lane_f64(a2, 1);
  double s3 = vgetq_lane_f64(a3, 0) + vgetq_lane_f64(a3, 1);
  for (; i < n; ++i) {
    const double xv = x[i];
    s0 += xv * y0[i];
    s1 += xv * y1[i];
    s2 += xv * y2[i];
    s3 += xv * y3[i];
  }
  out[0] = s0;
  out[1] = s1;
  out[2] = s2;
  out[3] = s3;
}

constexpr Kernels kNeonKernels{util::SimdIsa::kNeon, AxpyNeon, DotNeon,
                               Dot4Neon};

#endif  // M2TD_SIMD_HAVE_NEON

}  // namespace

bool KernelsEnabled() { return util::FastKernelsEnabled(); }

const Kernels& KernelsForIsa(util::SimdIsa isa) {
  switch (isa) {
#if defined(M2TD_SIMD_HAVE_AVX2)
    case util::SimdIsa::kAvx2:
      return kAvx2Kernels;
#endif
#if defined(M2TD_SIMD_HAVE_NEON)
    case util::SimdIsa::kNeon:
      return kNeonKernels;
#endif
    default:
      return kScalarKernels;
  }
}

const Kernels& ActiveKernels() {
  // Static refs: the counter registry lookup happens once, not per
  // kernel invocation.
  static obs::Counter& avx2_count =
      obs::GetCounter("linalg.simd.dispatch_avx2");
  static obs::Counter& neon_count =
      obs::GetCounter("linalg.simd.dispatch_neon");
  static obs::Counter& scalar_count =
      obs::GetCounter("linalg.simd.dispatch_scalar");
  const Kernels& kernels = KernelsForIsa(util::ActiveSimdIsa());
  switch (kernels.isa) {
    case util::SimdIsa::kAvx2:
      avx2_count.Increment();
      break;
    case util::SimdIsa::kNeon:
      neon_count.Increment();
      break;
    case util::SimdIsa::kScalar:
      scalar_count.Increment();
      break;
  }
  return kernels;
}

}  // namespace m2td::linalg::simd
