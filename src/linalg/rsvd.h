#ifndef M2TD_LINALG_RSVD_H_
#define M2TD_LINALG_RSVD_H_

#include "linalg/svd.h"
#include "util/random.h"
#include "util/result.h"

namespace m2td::linalg {

/// Options for the randomized range finder.
struct RandomizedSvdOptions {
  /// Extra sampled dimensions beyond the target rank (Halko et al.'s p).
  std::size_t oversampling = 8;
  /// Subspace (power) iterations; 1-2 sharpen decaying spectra.
  int power_iterations = 2;
  std::uint64_t seed = 3;
};

/// \brief Randomized truncated SVD (Halko/Martinsson/Tropp sketch-based
/// range finder).
///
/// The MACH-style randomized alternative referenced in the paper's related
/// work: sketch the range with a Gaussian test matrix, orthonormalize,
/// project, and solve the small factored problem exactly. For the
/// mode-length-sized matrices in this library the exact Gram path
/// (TruncatedSvd) is usually fine; this exists for the wide matricizations
/// in benches and as an accuracy/runtime tradeoff the micro-benchmarks
/// quantify.
Result<SvdResult> RandomizedSvd(const Matrix& a, std::size_t rank,
                                const RandomizedSvdOptions& options = {});

/// \brief Sketched leading-eigenvector factor of a symmetric PSD matrix —
/// the randomized replacement for the full Gram + Jacobi factor solve.
///
/// Draws a Gaussian test matrix Omega (n x s, s = rank + oversampling),
/// runs `power_iterations` rounds of subspace iteration Y = A (Q R(Y))
/// with re-orthonormalization, projects B = Q^T A Q (s x s), solves the
/// *small* eigenproblem exactly with the same cyclic Jacobi the
/// deterministic path uses, and lifts: U = Q V_k. The O(n^3)-per-sweep
/// Jacobi on the n x n Gram becomes an O(s^3) solve plus a handful of
/// n x s multiplies — the win the MACH sketching literature
/// (arXiv 0909.4969) and the mode-parallel randomized Tucker recipe
/// (arXiv 2603.21379) promise, and what removes `symmetric_eigen` from
/// the top of the bench profile.
///
/// Determinism: the sketch is generated serially from `options.seed` and
/// every multiply/orthonormalization underneath runs on the pool with
/// pool-size-independent chunking, so the returned factor is
/// bit-identical at any `--threads` value (asserted by
/// tests/rsvd_test.cc). When the sketch cannot be smaller than the input
/// (rank + oversampling >= n) sketching cannot win, so the call falls
/// back to the exact LeadingEigenvectors path — bit-identical to the
/// deterministic solve — and counts `linalg.rsvd.exact_fallbacks`.
///
/// Observability: span "randomized_range_factor" (n / rank / sketch
/// annotations); counters `linalg.rsvd.sketches`,
/// `linalg.rsvd.power_iterations`, `linalg.rsvd.exact_fallbacks`.
///
/// Returns an n x min(rank, n) matrix with orthonormal columns.
/// InvalidArgument for empty / non-square input or rank 0.
Result<Matrix> RandomizedRangeFactor(const Matrix& sym, std::size_t rank,
                                     const RandomizedSvdOptions& options =
                                         {});

/// How GramFactor computes the leading factor of a Gram matrix.
enum class GramFactorMethod {
  /// Full Jacobi eigendecomposition of the Gram (LeftSingularVectorsFromGram)
  /// — the bit-exact oracle every randomized configuration is gated
  /// against.
  kDeterministic,
  /// Sketched subspace iteration (RandomizedRangeFactor).
  kRandomized,
};

/// \brief Factor-initialization policy shared by every Gram-based factor
/// solve in the pipeline (HOSVD modes, M2TD sub-factors, refinement
/// scoring models).
///
/// Default-constructed options reproduce the deterministic Gram + Jacobi
/// path exactly, so adding this struct to an API changes nothing for
/// existing callers.
struct GramFactorOptions {
  GramFactorMethod method = GramFactorMethod::kDeterministic;
  /// Sketch parameters; only read when `method == kRandomized`.
  RandomizedSvdOptions sketch;
  /// Symmetric eigensolver used by the deterministic path (the
  /// randomized path's small projected solve follows the process-wide
  /// default). Unset method = DefaultEigenMethod().
  EigenOptions eigen;

  /// Per-mode decorrelated copy: mixes `mode` into the sketch seed
  /// (SplitMix64-style) so independently sketched modes draw independent
  /// test matrices while staying a pure function of (seed, mode) — the
  /// embarrassingly mode-parallel sketching of arXiv 2603.21379 stays
  /// bit-deterministic regardless of which pool thread runs which mode.
  GramFactorOptions ForMode(std::size_t mode) const;
};

/// \brief Leading `rank` factor of a symmetric PSD Gram matrix under the
/// given initialization policy: the deterministic Gram + Jacobi solve, or
/// the sketched randomized range finder.
///
/// This is the single dispatch point the decomposition stack calls, so a
/// pipeline switches wholesale between the bit-exact oracle and the
/// sketched fast path by flipping one option.
Result<Matrix> GramFactor(const Matrix& gram, std::size_t rank,
                          const GramFactorOptions& options = {});

}  // namespace m2td::linalg

#endif  // M2TD_LINALG_RSVD_H_
