#ifndef M2TD_LINALG_RSVD_H_
#define M2TD_LINALG_RSVD_H_

#include "linalg/svd.h"
#include "util/random.h"
#include "util/result.h"

namespace m2td::linalg {

/// Options for the randomized range finder.
struct RandomizedSvdOptions {
  /// Extra sampled dimensions beyond the target rank (Halko et al.'s p).
  std::size_t oversampling = 8;
  /// Subspace (power) iterations; 1-2 sharpen decaying spectra.
  int power_iterations = 2;
  std::uint64_t seed = 3;
};

/// \brief Randomized truncated SVD (Halko/Martinsson/Tropp sketch-based
/// range finder).
///
/// The MACH-style randomized alternative referenced in the paper's related
/// work: sketch the range with a Gaussian test matrix, orthonormalize,
/// project, and solve the small factored problem exactly. For the
/// mode-length-sized matrices in this library the exact Gram path
/// (TruncatedSvd) is usually fine; this exists for the wide matricizations
/// in benches and as an accuracy/runtime tradeoff the micro-benchmarks
/// quantify.
Result<SvdResult> RandomizedSvd(const Matrix& a, std::size_t rank,
                                const RandomizedSvdOptions& options = {});

}  // namespace m2td::linalg

#endif  // M2TD_LINALG_RSVD_H_
