#ifndef M2TD_LINALG_SVD_H_
#define M2TD_LINALG_SVD_H_

#include <vector>

#include "linalg/eigen.h"
#include "linalg/matrix.h"
#include "util/result.h"

namespace m2td::linalg {

/// Truncated SVD A ~= U diag(s) V^T.
struct SvdResult {
  /// Left singular vectors as columns (m x k).
  Matrix u;
  /// Singular values, decreasing (length k).
  std::vector<double> singular_values;
  /// Right singular vectors as columns (n x k).
  Matrix v;
};

/// \brief Truncated SVD of a dense matrix via eigendecomposition of the
/// smaller Gram matrix.
///
/// Appropriate for the shapes this library meets: one dimension small (a
/// mode length). For m <= n it eigendecomposes A A^T, otherwise A^T A, and
/// recovers the other side by multiplication; singular values below
/// `rank_truncation_tol * s_max` have their paired vectors zeroed rather
/// than divided by a tiny sigma.
Result<SvdResult> TruncatedSvd(const Matrix& a, std::size_t rank,
                               double rank_truncation_tol = 1e-12);

/// \brief Left singular vectors from a precomputed Gram matrix
/// G = X X^T.
///
/// This is the HOSVD entry point: the sparse tensor layer accumulates G
/// directly from COO data (never materializing the matricization), then
/// calls this. Returns an (n x rank) matrix; rank is clamped to n.
/// `eigen` selects the underlying symmetric eigensolver; the default
/// follows the process-wide DefaultEigenMethod().
Result<Matrix> LeftSingularVectorsFromGram(const Matrix& gram,
                                           std::size_t rank,
                                           const EigenOptions& eigen =
                                               EigenOptions());

/// Singular values from a Gram matrix (sqrt of clamped eigenvalues),
/// decreasing, length min(rank, n).
Result<std::vector<double>> SingularValuesFromGram(const Matrix& gram,
                                                   std::size_t rank);

}  // namespace m2td::linalg

#endif  // M2TD_LINALG_SVD_H_
