#include "mapreduce/wire.h"

#include <cerrno>
#include <cstring>
#include <unistd.h>

namespace m2td::mapreduce::wire {

namespace {

Status WriteAll(int fd, const char* data, std::size_t size) {
  std::size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(fd, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("frame write failed: ") +
                             std::strerror(errno));
    }
    written += static_cast<std::size_t>(n);
  }
  return Status::OK();
}

/// Blocking read of exactly `size` bytes; bytes read so far are returned
/// through `got` so callers can distinguish clean EOF from a torn frame.
Status ReadExact(int fd, char* data, std::size_t size, std::size_t* got) {
  *got = 0;
  while (*got < size) {
    const ssize_t n = ::read(fd, data + *got, size - *got);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("frame read failed: ") +
                             std::strerror(errno));
    }
    if (n == 0) return Status::OK();  // EOF: caller inspects *got
    *got += static_cast<std::size_t>(n);
  }
  return Status::OK();
}

}  // namespace

Status WriteFrame(int fd, const std::string& payload) {
  if (payload.size() > kMaxFrameBytes) {
    return Status::InvalidArgument("frame payload exceeds kMaxFrameBytes");
  }
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  char header[4];
  std::memcpy(header, &len, sizeof(len));
  M2TD_RETURN_IF_ERROR(WriteAll(fd, header, sizeof(header)));
  return WriteAll(fd, payload.data(), payload.size());
}

Result<std::string> ReadFrame(int fd) {
  char header[4];
  std::size_t got = 0;
  M2TD_RETURN_IF_ERROR(ReadExact(fd, header, sizeof(header), &got));
  if (got == 0) return Status::NotFound("peer closed");
  if (got < sizeof(header)) {
    return Status::IOError("EOF inside a frame header");
  }
  std::uint32_t len = 0;
  std::memcpy(&len, header, sizeof(len));
  if (len > kMaxFrameBytes) {
    return Status::IOError("corrupt frame length " + std::to_string(len));
  }
  std::string payload(len, '\0');
  if (len > 0) {
    M2TD_RETURN_IF_ERROR(ReadExact(fd, payload.data(), len, &got));
    if (got < len) return Status::IOError("EOF inside a frame payload");
  }
  return payload;
}

Result<bool> FrameReader::Poll(std::vector<std::string>* frames) {
  bool open = true;
  char chunk[4096];
  while (true) {
    const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      return Status::IOError(std::string("frame poll failed: ") +
                             std::strerror(errno));
    }
    if (n == 0) {
      open = false;
      break;
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
  // Peel off every complete frame accumulated so far.
  while (buffer_.size() >= 4) {
    std::uint32_t len = 0;
    std::memcpy(&len, buffer_.data(), sizeof(len));
    if (len > kMaxFrameBytes) {
      return Status::IOError("corrupt frame length " + std::to_string(len));
    }
    if (buffer_.size() < 4 + static_cast<std::size_t>(len)) break;
    frames->push_back(buffer_.substr(4, len));
    buffer_.erase(0, 4 + static_cast<std::size_t>(len));
  }
  if (!open && !buffer_.empty()) {
    return Status::IOError("peer closed mid-frame (" +
                           std::to_string(buffer_.size()) +
                           " stray bytes)");
  }
  return open;
}

}  // namespace m2td::mapreduce::wire
