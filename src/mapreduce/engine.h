#ifndef M2TD_MAPREDUCE_ENGINE_H_
#define M2TD_MAPREDUCE_ENGINE_H_

#include <cstddef>
#include <exception>
#include <functional>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel/parallel_for.h"
#include "robust/cancel.h"
#include "robust/failpoint.h"
#include "robust/retry.h"
#include "util/logging.h"
#include "util/result.h"
#include "util/timer.h"

namespace m2td::mapreduce {

/// \brief In-process, thread-parallel MapReduce engine.
///
/// Substitutes the Hadoop cluster of the paper's D-M2TD experiments (see
/// DESIGN.md): the same map -> shuffle-by-key -> reduce structure, with
/// worker tasks in place of cluster nodes. Inputs are sharded across map
/// workers; each map worker writes to per-reducer local buffers that are
/// merged into reducer buckets after the map barrier (the "shuffle");
/// reduce workers then group their bucket by key and fold each group.
/// Phases execute their tasks on the shared parallel::GlobalPool() (one
/// task per worker index; concurrency is capped by `--threads`), so a
/// task exception can never strand a phase barrier — the pool rethrows it
/// once in the initiator, where it becomes an error Status.
///
/// Type parameters: InputT map input record, K2/V2 intermediate key/value,
/// OutT reduce output record. K2 needs std::hash and operator== (or a
/// custom partitioner for placement, but grouping always uses hash+eq).

/// Collects intermediate pairs from a mapper.
template <typename K2, typename V2>
class Emitter {
 public:
  virtual ~Emitter() = default;
  virtual void Emit(K2 key, V2 value) = 0;
};

/// Per-phase timing and volume counters, reported back to the caller; the
/// Table III experiment aggregates these across the three D-M2TD phases.
struct JobStats {
  double map_seconds = 0.0;
  double shuffle_seconds = 0.0;
  double reduce_seconds = 0.0;
  std::uint64_t intermediate_pairs = 0;
  std::uint64_t output_records = 0;

  double TotalSeconds() const {
    return map_seconds + shuffle_seconds + reduce_seconds;
  }
};

template <typename InputT, typename K2, typename V2, typename OutT>
struct JobSpec {
  /// Consumes one input record, emitting any number of (K2, V2) pairs.
  std::function<void(const InputT&, Emitter<K2, V2>*)> mapper;
  /// Consumes one key and all values shuffled to it; appends outputs.
  /// Values arrive in an unspecified order (as on a real cluster).
  std::function<void(const K2&, std::vector<V2>&, std::vector<OutT>*)>
      reducer;
  /// Optional map-side combiner: folds a key's values *within one mapper's
  /// local buffer* before the shuffle (classic MapReduce optimization;
  /// must be associative/commutative over V2 and compatible with the
  /// reducer). Receives the key and the local values; replaces them with
  /// its output (often a single element).
  std::function<void(const K2&, std::vector<V2>*)> combiner;
  /// Placement of keys onto reducers; defaults to std::hash<K2>.
  std::function<std::size_t(const K2&)> partitioner;
  /// Number of map/reduce workers ("servers").
  int num_workers = 1;
  /// Task-level retry policy: a failed map or reduce task (failpoint fire,
  /// thrown exception, returned error) is re-run from scratch up to
  /// `retry.max_retries` times before the job fails with a clean Status.
  /// With max_retries > 0 the shuffle keeps reducer inputs copyable so a
  /// reduce task can be replayed (K2/V2 must then be copy-constructible).
  robust::RetryPolicy retry;
};

namespace internal {

template <typename K2, typename V2>
class BufferEmitter : public Emitter<K2, V2> {
 public:
  BufferEmitter(std::size_t num_partitions,
                std::function<std::size_t(const K2&)> partitioner)
      : partitioner_(std::move(partitioner)), buffers_(num_partitions) {}

  void Emit(K2 key, V2 value) override {
    const std::size_t p = partitioner_(key) % buffers_.size();
    buffers_[p].emplace_back(std::move(key), std::move(value));
  }

  std::vector<std::vector<std::pair<K2, V2>>>& buffers() { return buffers_; }

 private:
  std::function<std::size_t(const K2&)> partitioner_;
  std::vector<std::vector<std::pair<K2, V2>>> buffers_;
};

/// Runs `task(w)` for every worker index in [0, workers) on the global
/// thread pool (one pool chunk per task; actual parallelism is bounded by
/// the pool size, i.e. `--threads`, not by `workers`). Any exception that
/// escapes a task — including ones thrown *outside* the task's own
/// try/retry scaffolding, e.g. by a user key type's hash or copy
/// constructor during reduce grouping — is captured by the pool region
/// and rethrown exactly once here, where it becomes a clean Status
/// instead of std::terminate (the old per-phase std::thread vectors
/// crashed the process on such escapes, and a crashed thread meant the
/// phase barrier could never be joined).
inline Status RunPhaseTasks(std::size_t workers, const char* label,
                            const std::function<void(std::size_t)>& task) {
  try {
    parallel::ParallelFor(
        0, workers, 1,
        [&](std::uint64_t wb, std::uint64_t we) {
          for (std::uint64_t w = wb; w < we; ++w) {
            task(static_cast<std::size_t>(w));
          }
        },
        label);
  } catch (const robust::CancelledError& e) {
    // Cooperative cancellation is not a task failure: surface the
    // Cancelled / DeadlineExceeded code so callers can drain gracefully
    // (and so the retry layer, which only retries IOError/Internal,
    // never replays a cancelled task).
    return e.ToStatus();
  } catch (const std::exception& e) {
    return Status::Internal(std::string(label) + " task escaped: " + e.what());
  } catch (...) {
    return Status::Internal(std::string(label) +
                            " task escaped with a non-standard exception");
  }
  return Status::OK();
}

}  // namespace internal

/// Runs a job over `inputs`; returns the concatenated reducer outputs
/// (ordering across keys unspecified). `stats`, when non-null, receives
/// per-phase timings.
template <typename InputT, typename K2, typename V2, typename OutT>
Result<std::vector<OutT>> RunJob(const JobSpec<InputT, K2, V2, OutT>& spec,
                                 const std::vector<InputT>& inputs,
                                 JobStats* stats = nullptr) {
  if (!spec.mapper || !spec.reducer) {
    return Status::InvalidArgument("job needs both a mapper and a reducer");
  }
  if (spec.num_workers <= 0) {
    return Status::InvalidArgument("num_workers must be positive");
  }
  const std::size_t workers = static_cast<std::size_t>(spec.num_workers);
  std::function<std::size_t(const K2&)> partitioner =
      spec.partitioner ? spec.partitioner
                       : [](const K2& k) { return std::hash<K2>{}(k); };

  obs::ObsSpan job_span("mapreduce_job");
  job_span.Annotate("num_workers", static_cast<std::int64_t>(workers));
  job_span.Annotate("input_records",
                    static_cast<std::uint64_t>(inputs.size()));
  obs::GetCounter("mapreduce.jobs").Add(1);

  Timer timer;

  // --- Map phase: shard inputs contiguously across workers. ---
  obs::ObsSpan map_span("map");
  std::vector<internal::BufferEmitter<K2, V2>> emitters;
  emitters.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    emitters.emplace_back(workers, partitioner);
  }
  std::vector<Status> map_status(workers);
  M2TD_RETURN_IF_ERROR(internal::RunPhaseTasks(
      workers, "map_tasks", [&](std::size_t w) {
        const std::size_t begin = inputs.size() * w / workers;
        const std::size_t end = inputs.size() * (w + 1) / workers;
        obs::ObsSpan task_span("map_task");
        task_span.Annotate("worker", static_cast<std::int64_t>(w));
        task_span.Annotate("records",
                           static_cast<std::uint64_t>(end - begin));
        map_status[w] = robust::RetryStatusCall(
            spec.retry, "mapreduce.map_task", [&]() -> Status {
              // A replayed attempt restarts from a clean local buffer.
              for (auto& buffer : emitters[w].buffers()) buffer.clear();
              M2TD_RETURN_IF_ERROR(
                  robust::CheckFailpoint("mapreduce.map_task"));
              try {
                for (std::size_t i = begin; i < end; ++i) {
                  // Periodic cancellation point inside the record loop
                  // (every 256 records) so long map shards stop promptly.
                  if (((i - begin) & 0xFF) == 0) {
                    M2TD_RETURN_IF_ERROR(robust::CheckCancelled());
                  }
                  spec.mapper(inputs[i], &emitters[w]);
                }
                if (spec.combiner) {
                  // Fold this mapper's local pairs per key before
                  // shuffling.
                  for (auto& buffer : emitters[w].buffers()) {
                    std::unordered_map<K2, std::vector<V2>> groups;
                    for (auto& kv : buffer) {
                      groups[std::move(kv.first)].push_back(
                          std::move(kv.second));
                    }
                    buffer.clear();
                    for (auto& [key, values] : groups) {
                      spec.combiner(key, &values);
                      for (V2& value : values) {
                        buffer.emplace_back(key, std::move(value));
                      }
                    }
                  }
                }
              } catch (const robust::CancelledError& e) {
                return e.ToStatus();
              } catch (const std::exception& e) {
                return Status::Internal("map task " + std::to_string(w) +
                                        " threw: " + e.what());
              } catch (...) {
                return Status::Internal("map task " + std::to_string(w) +
                                        " threw a non-standard exception");
              }
              return Status::OK();
            });
      }));
  for (const Status& s : map_status) {
    if (!s.ok()) return s;
  }
  map_span.End();
  obs::GetCounter("mapreduce.map_tasks").Add(workers);
  if (stats != nullptr) stats->map_seconds = timer.ElapsedSeconds();
  timer.Restart();

  // --- Shuffle: merge per-mapper local buffers into reducer buckets. ---
  obs::ObsSpan shuffle_span("shuffle");
  std::vector<std::vector<std::pair<K2, V2>>> buckets(workers);
  std::uint64_t intermediate = 0;
  for (std::size_t p = 0; p < workers; ++p) {
    std::size_t total = 0;
    for (std::size_t w = 0; w < workers; ++w) {
      total += emitters[w].buffers()[p].size();
    }
    buckets[p].reserve(total);
    for (std::size_t w = 0; w < workers; ++w) {
      auto& local = emitters[w].buffers()[p];
      for (auto& kv : local) buckets[p].push_back(std::move(kv));
      local.clear();
      local.shrink_to_fit();
    }
    intermediate += buckets[p].size();
  }
  shuffle_span.Annotate("intermediate_pairs", intermediate);
  shuffle_span.End();
  obs::GetCounter("mapreduce.intermediate_pairs").Add(intermediate);
  if (stats != nullptr) {
    stats->shuffle_seconds = timer.ElapsedSeconds();
    stats->intermediate_pairs = intermediate;
  }
  timer.Restart();

  // --- Reduce phase: group each bucket by key, fold groups. ---
  obs::ObsSpan reduce_span("reduce");
  // Replaying a reduce task re-reads its bucket, so retries are honored
  // only for copyable intermediates; move-only K2/V2 keep the zero-copy
  // single-attempt path.
  constexpr bool kReplayableReduce = std::is_copy_constructible_v<K2> &&
                                     std::is_copy_constructible_v<V2>;
  const bool replay_reduce = kReplayableReduce && spec.retry.max_retries > 0;
  if (!kReplayableReduce && spec.retry.max_retries > 0) {
    // The caller asked for retries but the intermediates can't be copied,
    // so reduce tasks silently run single-attempt. Make the downgrade
    // observable: count every affected job, warn once per instantiation
    // (the WARN is mirrored into the trace as an instant when tracing is
    // on).
    obs::GetCounter("mapreduce.reduce.replay_disabled").Add(1);
    static const bool warned_once = [] {
      M2TD_LOG_WARNING()
          << "reduce replay disabled: intermediate key/value types are not "
             "copy-constructible, so reduce tasks run single-attempt even "
             "though retry.max_retries > 0";
      return true;
    }();
    (void)warned_once;
  }
  robust::RetryPolicy reduce_policy = spec.retry;
  if (!replay_reduce) reduce_policy.max_retries = 0;
  std::vector<std::vector<OutT>> outputs(workers);
  std::vector<Status> reduce_status(workers);
  M2TD_RETURN_IF_ERROR(internal::RunPhaseTasks(
      workers, "reduce_tasks", [&](std::size_t p) {
        obs::ObsSpan task_span("reduce_task");
        task_span.Annotate("worker", static_cast<std::int64_t>(p));
        task_span.Annotate("records",
                           static_cast<std::uint64_t>(buckets[p].size()));
        reduce_status[p] = robust::RetryStatusCall(
            reduce_policy, "mapreduce.reduce_task", [&]() -> Status {
              outputs[p].clear();
              M2TD_RETURN_IF_ERROR(robust::CheckCancelled());
              M2TD_RETURN_IF_ERROR(
                  robust::CheckFailpoint("mapreduce.reduce_task"));
              // Grouping runs INSIDE the try: it invokes the user key
              // type's hash, equality, and copy constructor, any of
              // which may throw. It used to sit outside, where a throw
              // escaped the worker thread and terminated the process
              // before the phase barrier (see failure_injection_test).
              try {
                std::unordered_map<K2, std::vector<V2>> groups;
                groups.reserve(buckets[p].size());
                if constexpr (kReplayableReduce) {
                  if (replay_reduce) {
                    for (const auto& kv : buckets[p]) {
                      groups[kv.first].push_back(kv.second);
                    }
                  }
                }
                if (!replay_reduce) {
                  for (auto& kv : buckets[p]) {
                    groups[std::move(kv.first)].push_back(
                        std::move(kv.second));
                  }
                  buckets[p].clear();
                  buckets[p].shrink_to_fit();
                }
                for (auto& [key, values] : groups) {
                  spec.reducer(key, values, &outputs[p]);
                }
              } catch (const robust::CancelledError& e) {
                return e.ToStatus();
              } catch (const std::exception& e) {
                return Status::Internal("reduce task " + std::to_string(p) +
                                        " threw: " + e.what());
              } catch (...) {
                return Status::Internal("reduce task " + std::to_string(p) +
                                        " threw a non-standard exception");
              }
              return Status::OK();
            });
        if (replay_reduce && reduce_status[p].ok()) {
          buckets[p].clear();
          buckets[p].shrink_to_fit();
        }
      }));
  for (const Status& s : reduce_status) {
    if (!s.ok()) return s;
  }

  std::vector<OutT> merged;
  std::size_t total_out = 0;
  for (const auto& part : outputs) total_out += part.size();
  merged.reserve(total_out);
  for (auto& part : outputs) {
    for (OutT& record : part) merged.push_back(std::move(record));
  }
  reduce_span.End();
  obs::GetCounter("mapreduce.reduce_tasks").Add(workers);
  obs::GetCounter("mapreduce.output_records").Add(merged.size());
  job_span.Annotate("output_records",
                    static_cast<std::uint64_t>(merged.size()));
  if (stats != nullptr) {
    stats->reduce_seconds = timer.ElapsedSeconds();
    stats->output_records = merged.size();
  }
  return merged;
}

}  // namespace m2td::mapreduce

#endif  // M2TD_MAPREDUCE_ENGINE_H_
