#ifndef M2TD_MAPREDUCE_WIRE_H_
#define M2TD_MAPREDUCE_WIRE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace m2td::mapreduce::wire {

/// \brief Length-prefixed frame transport over pipe file descriptors, the
/// coordinator <-> worker control channel of the multi-process D-M2TD
/// backend.
///
/// A frame is a 4-byte little-endian payload length followed by the
/// payload bytes. Frames carry small control messages (task assignments,
/// heartbeats, completion reports); bulk intermediate data never rides
/// the pipe — it goes through the durable io::ShuffleStore.

/// Hard upper bound on a single frame payload; a length prefix beyond
/// this is treated as stream corruption, not an allocation request.
constexpr std::uint32_t kMaxFrameBytes = 1u << 20;

/// Writes one frame, handling EINTR and partial writes. A closed peer
/// (EPIPE) surfaces as IOError — callers treat it as worker death.
Status WriteFrame(int fd, const std::string& payload);

/// Blocking read of exactly one frame. EOF before any byte of a frame is
/// NotFound ("peer closed"); EOF mid-frame is IOError.
Result<std::string> ReadFrame(int fd);

/// \brief Incremental frame decoder for non-blocking descriptors: the
/// coordinator's poll loop drains whatever bytes are available and gets
/// back every frame completed so far.
class FrameReader {
 public:
  explicit FrameReader(int fd) : fd_(fd) {}

  /// Reads until EAGAIN/EOF, appending completed frames to `frames`.
  /// Returns false once the peer has closed the pipe (EOF); true while
  /// the stream is still open. Corrupt length prefixes are IOError.
  Result<bool> Poll(std::vector<std::string>* frames);

 private:
  int fd_;
  std::string buffer_;
};

}  // namespace m2td::mapreduce::wire

#endif  // M2TD_MAPREDUCE_WIRE_H_
