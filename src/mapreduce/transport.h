#ifndef M2TD_MAPREDUCE_TRANSPORT_H_
#define M2TD_MAPREDUCE_TRANSPORT_H_

#include <memory>
#include <string>
#include <vector>

#include "robust/cancel.h"
#include "robust/retry.h"
#include "util/result.h"
#include "util/status.h"

namespace m2td::mapreduce::transport {

/// \brief Frame transport abstraction over pipes and TCP sockets — the
/// coordinator <-> worker control channel of the multi-process D-M2TD
/// backend, promoted from the raw fd framing in mapreduce/wire.h.
///
/// The frame format is unchanged (4-byte little-endian length + payload,
/// wire::kMaxFrameBytes cap); what a Connection adds on top of the codec:
///
///  - one object per peer covering both directions, whether the fds are a
///    pipe pair (forked workers), a socketpair, or one TCP socket
///    (workers attached over m2td_worker --connect);
///  - read/write deadlines: every blocking call polls in short slices
///    against both its deadline and the ambient robust::CancelToken, so a
///    half-open peer surfaces as kDeadlineExceeded instead of a hang;
///  - corruption classification: a torn frame or an impossible length
///    prefix is kDataLoss tagged "[conn <peer>]" — the transport-seam
///    analogue of the shuffle store's "[task <phase>:<m>]" culprit tags;
///  - deterministic fault injection: every outgoing frame consults
///    robust::ConsultNetFault(peer) and honours drop/delay/truncate/
///    corrupt verdicts (see robust/netfault.h for the spec grammar).
///
/// Bulk intermediate data still never rides the connection — it goes
/// through the durable io::ShuffleStore.
class Connection {
 public:
  /// An unconnected placeholder; every operation fails until a factory
  /// assigns real descriptors.
  Connection() = default;
  ~Connection();

  Connection(Connection&& other) noexcept;
  Connection& operator=(Connection&& other) noexcept;
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  /// Adopts a unidirectional fd pair (pipe ends, or a socketpair given
  /// twice). Both fds are owned and closed by the Connection.
  static Connection FromFds(int read_fd, int write_fd, std::string peer);

  /// Adopts one bidirectional socket.
  static Connection FromSocket(int socket_fd, std::string peer);

  bool connected() const { return read_fd_ >= 0; }

  /// Human-readable peer label ("worker3", "coordinator",
  /// "127.0.0.1:40213") — the handle culprit tags and the fault
  /// injector's peer= filter match on.
  const std::string& peer() const { return peer_; }
  void set_peer(std::string peer) { peer_ = std::move(peer); }

  /// The descriptor to watch for readability in a poll loop.
  int read_fd() const { return read_fd_; }

  /// Writes one frame, honouring an armed net fault first. Blocks at most
  /// `deadline_ms` (<= 0 = no deadline) against a full kernel buffer;
  /// wakes early if the ambient CancelToken fires. A closed or torn peer
  /// is kIOError, a deadline expiry kDeadlineExceeded.
  Status WriteFrame(const std::string& payload, double deadline_ms = 0);

  /// Blocking read of one frame with the same deadline semantics. Clean
  /// EOF between frames is kNotFound ("peer closed"); a torn frame or a
  /// corrupt length prefix is kDataLoss tagged "[conn <peer>]".
  Result<std::string> ReadFrame(double deadline_ms = 0);

  /// Non-blocking drain for poll loops: appends every completed frame,
  /// returns false once the peer has closed cleanly, kDataLoss (tagged)
  /// on a torn tail or corrupt length. The read fd must be O_NONBLOCK
  /// (the socket factories and SetNonBlockingRead take care of this).
  Result<bool> PollFrames(std::vector<std::string>* frames);

  /// Marks the read side non-blocking (pipe-backed coordinator ends).
  Status SetNonBlockingRead();

  /// Milliseconds since the last successfully received frame (or since
  /// construction). Drives per-connection idle timeouts.
  double IdleMillis() const;

  /// Tears the connection down hard (socket shutdown + close). Idempotent.
  void Close();

 private:
  Status WriteAllDeadline(const char* data, std::size_t size,
                          double deadline_ms);
  Status ExtractOne(std::string* frame, bool* got);
  /// Decodes completed frames out of buffer_; kDataLoss on corruption.
  Status DrainBuffer(std::vector<std::string>* frames);

  int read_fd_ = -1;
  int write_fd_ = -1;
  bool is_socket_ = false;
  std::string peer_;
  std::string buffer_;
  /// Steady-clock micros of the last received frame (see IdleMillis).
  double last_frame_us_ = 0.0;
};

/// \brief TCP listener for `m2td_worker --connect` attachment.
///
/// Accepted connections start unlabelled ("<address>" of the remote end);
/// the coordinator rebinds the label after the worker's hello handshake.
class Listener {
 public:
  Listener() = default;
  ~Listener();
  Listener(Listener&& other) noexcept;
  Listener& operator=(Listener&& other) noexcept;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Binds and listens on "host:port" (port 0 = ephemeral). The listening
  /// socket is non-blocking and close-on-exec.
  static Result<Listener> Listen(const std::string& address);

  bool listening() const { return fd_ >= 0; }

  /// The actually-bound "ip:port" — what workers dial, what the
  /// coordinator passes to spawned workers as --connect.
  const std::string& bound_address() const { return bound_address_; }

  /// The descriptor to watch for readability in a poll loop.
  int fd() const { return fd_; }

  /// Accepts one pending connection; kNotFound when none is pending
  /// (poll the fd first). Accepted sockets are non-blocking on the read
  /// side, TCP_NODELAY, close-on-exec.
  Result<Connection> Accept();

  void Close();

 private:
  int fd_ = -1;
  std::string bound_address_;
};

/// Dials "host:port" once, blocking at most `deadline_ms` for the connect
/// to complete (kDeadlineExceeded on expiry, kIOError on refusal). The
/// socket is blocking, TCP_NODELAY, close-on-exec.
Result<Connection> Dial(const std::string& address, std::string peer,
                        double deadline_ms);

/// Dials under `policy`'s capped seeded exponential backoff until a
/// connect lands or `budget_ms` is spent; waits between attempts are
/// interruptible via `token`. Increments dist.net.redials once per
/// re-attempt. kDeadlineExceeded once the budget is gone, the token's
/// cancellation Status if it fires first.
Result<Connection> DialWithBackoff(const std::string& address,
                                   std::string peer,
                                   const robust::RetryPolicy& policy,
                                   double budget_ms,
                                   const robust::CancelToken& token);

}  // namespace m2td::mapreduce::transport

#endif  // M2TD_MAPREDUCE_TRANSPORT_H_
