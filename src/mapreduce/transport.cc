#include "mapreduce/transport.h"

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "mapreduce/wire.h"
#include "obs/metrics.h"
#include "robust/netfault.h"

namespace m2td::mapreduce::transport {

namespace {

using Clock = std::chrono::steady_clock;

double NowUs() {
  return std::chrono::duration<double, std::micro>(
             Clock::now().time_since_epoch())
      .count();
}

/// Deadline checks and cancel polls share one slice length with
/// CancelToken::WaitForMillis, so a fired token is observed within 50 ms
/// even mid-poll.
constexpr double kPollSliceMs = 50.0;

int SliceTimeoutMs(double deadline_ms, double elapsed_ms) {
  double slice = kPollSliceMs;
  if (deadline_ms > 0) {
    slice = std::min(slice, std::max(1.0, deadline_ms - elapsed_ms));
  }
  return static_cast<int>(slice);
}

void ConfigureSocket(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  ::fcntl(fd, F_SETFD, FD_CLOEXEC);
}

Status SplitHostPort(const std::string& address, std::string* host,
                     std::string* port) {
  const std::size_t colon = address.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == address.size()) {
    return Status::InvalidArgument("address must be host:port: '" + address +
                                   "'");
  }
  *host = address.substr(0, colon);
  *port = address.substr(colon + 1);
  return Status::OK();
}

std::string SockaddrToString(const sockaddr_storage& addr) {
  char host[NI_MAXHOST], port[NI_MAXSERV];
  if (::getnameinfo(reinterpret_cast<const sockaddr*>(&addr), sizeof(addr),
                    host, sizeof(host), port, sizeof(port),
                    NI_NUMERICHOST | NI_NUMERICSERV) != 0) {
    return "unknown";
  }
  return std::string(host) + ":" + port;
}

}  // namespace

// -------------------------------------------------------------- Connection

Connection::~Connection() { Close(); }

Connection::Connection(Connection&& other) noexcept
    : read_fd_(std::exchange(other.read_fd_, -1)),
      write_fd_(std::exchange(other.write_fd_, -1)),
      is_socket_(other.is_socket_),
      peer_(std::move(other.peer_)),
      buffer_(std::move(other.buffer_)),
      last_frame_us_(other.last_frame_us_) {}

Connection& Connection::operator=(Connection&& other) noexcept {
  if (this != &other) {
    Close();
    read_fd_ = std::exchange(other.read_fd_, -1);
    write_fd_ = std::exchange(other.write_fd_, -1);
    is_socket_ = other.is_socket_;
    peer_ = std::move(other.peer_);
    buffer_ = std::move(other.buffer_);
    last_frame_us_ = other.last_frame_us_;
  }
  return *this;
}

Connection Connection::FromFds(int read_fd, int write_fd, std::string peer) {
  Connection conn;
  conn.read_fd_ = read_fd;
  conn.write_fd_ = write_fd;
  conn.is_socket_ = read_fd == write_fd;
  conn.peer_ = std::move(peer);
  conn.last_frame_us_ = NowUs();
  return conn;
}

Connection Connection::FromSocket(int socket_fd, std::string peer) {
  return FromFds(socket_fd, socket_fd, std::move(peer));
}

void Connection::Close() {
  if (read_fd_ < 0) return;
  if (is_socket_) {
    ::shutdown(read_fd_, SHUT_RDWR);
    ::close(read_fd_);
  } else {
    ::close(read_fd_);
    if (write_fd_ >= 0 && write_fd_ != read_fd_) ::close(write_fd_);
  }
  read_fd_ = write_fd_ = -1;
  buffer_.clear();
}

Status Connection::SetNonBlockingRead() {
  if (read_fd_ < 0) return Status::IOError("connection not open");
  const int flags = ::fcntl(read_fd_, F_GETFL, 0);
  if (flags < 0 || ::fcntl(read_fd_, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::IOError(std::string("O_NONBLOCK failed: ") +
                           std::strerror(errno));
  }
  return Status::OK();
}

double Connection::IdleMillis() const {
  return (NowUs() - last_frame_us_) / 1000.0;
}

Status Connection::WriteAllDeadline(const char* data, std::size_t size,
                                    double deadline_ms) {
  const robust::CancelToken token = robust::CurrentCancelToken();
  const double start_us = NowUs();
  std::size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(write_fd_, data + written, size - written);
    if (n > 0) {
      written += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno != EINTR && errno != EAGAIN &&
        errno != EWOULDBLOCK) {
      return Status::IOError("frame write to " + peer_ + " failed: " +
                             std::strerror(errno));
    }
    if (n < 0 && errno == EINTR) continue;
    // Kernel buffer full: wait for writability in cancel-aware slices.
    M2TD_RETURN_IF_ERROR(token.CheckCancel());
    const double elapsed_ms = (NowUs() - start_us) / 1000.0;
    if (deadline_ms > 0 && elapsed_ms >= deadline_ms) {
      obs::GetCounter("dist.net.deadline_expiries").Increment();
      return Status::DeadlineExceeded("frame write to " + peer_ +
                                      " exceeded its deadline");
    }
    pollfd pfd{write_fd_, POLLOUT, 0};
    const int ready = ::poll(&pfd, 1, SliceTimeoutMs(deadline_ms, elapsed_ms));
    if (ready < 0 && errno != EINTR) {
      return Status::IOError(std::string("write poll failed: ") +
                             std::strerror(errno));
    }
  }
  return Status::OK();
}

Status Connection::WriteFrame(const std::string& payload,
                              double deadline_ms) {
  if (write_fd_ < 0) return Status::IOError("connection not open");
  if (payload.size() > wire::kMaxFrameBytes) {
    return Status::InvalidArgument("frame payload exceeds kMaxFrameBytes");
  }
  std::uint32_t len = static_cast<std::uint32_t>(payload.size());

  const robust::NetFaultDecision fault = robust::ConsultNetFault(peer_);
  switch (fault.action) {
    case robust::NetFaultAction::kNone:
      break;
    case robust::NetFaultAction::kDrop:
      // Vanished on the wire: the caller believes it sent.
      return Status::OK();
    case robust::NetFaultAction::kDelay: {
      const robust::CancelToken token = robust::CurrentCancelToken();
      if (token.CanBeCancelled()) {
        token.WaitForMillis(fault.delay_ms);
        M2TD_RETURN_IF_ERROR(token.CheckCancel());
      } else {
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(fault.delay_ms));
      }
      break;
    }
    case robust::NetFaultAction::kCorrupt:
      // An impossible length prefix: detectable on the far side as
      // DataLoss without any change to the frame format.
      len = wire::kMaxFrameBytes + 1 + len;
      break;
    case robust::NetFaultAction::kTruncate: {
      // Write a prefix of the frame, then tear the connection down like
      // a half-open TCP peer would.
      std::string whole(sizeof(len), '\0');
      std::memcpy(whole.data(), &len, sizeof(len));
      whole += payload;
      const std::size_t keep = std::min(fault.truncate_at, whole.size());
      (void)WriteAllDeadline(whole.data(), keep, deadline_ms);
      Close();
      return Status::IOError("connection to " + peer_ +
                             " torn mid-frame (injected truncation)");
    }
  }

  char header[4];
  std::memcpy(header, &len, sizeof(len));
  M2TD_RETURN_IF_ERROR(WriteAllDeadline(header, sizeof(header), deadline_ms));
  M2TD_RETURN_IF_ERROR(
      WriteAllDeadline(payload.data(), payload.size(), deadline_ms));
  obs::GetCounter("dist.net.frames_sent").Increment();
  return Status::OK();
}

/// Pops the first complete frame out of buffer_ into `frame`; `*got`
/// says whether one was ready. kDataLoss on a corrupt length prefix.
Status Connection::ExtractOne(std::string* frame, bool* got) {
  *got = false;
  if (buffer_.size() < 4) return Status::OK();
  std::uint32_t len = 0;
  std::memcpy(&len, buffer_.data(), sizeof(len));
  if (len > wire::kMaxFrameBytes) {
    return Status::DataLoss("corrupt frame length " + std::to_string(len) +
                            " [conn " + peer_ + "]");
  }
  if (buffer_.size() < 4 + static_cast<std::size_t>(len)) return Status::OK();
  *frame = buffer_.substr(4, len);
  buffer_.erase(0, 4 + static_cast<std::size_t>(len));
  *got = true;
  last_frame_us_ = NowUs();
  obs::GetCounter("dist.net.frames_received").Increment();
  return Status::OK();
}

Status Connection::DrainBuffer(std::vector<std::string>* frames) {
  while (true) {
    std::string frame;
    bool got = false;
    M2TD_RETURN_IF_ERROR(ExtractOne(&frame, &got));
    if (!got) return Status::OK();
    frames->push_back(std::move(frame));
  }
}

Result<std::string> Connection::ReadFrame(double deadline_ms) {
  if (read_fd_ < 0) return Status::IOError("connection not open");
  const robust::CancelToken token = robust::CurrentCancelToken();
  const double start_us = NowUs();
  while (true) {
    {
      std::string frame;
      bool got = false;
      M2TD_RETURN_IF_ERROR(ExtractOne(&frame, &got));
      if (got) return frame;
    }
    M2TD_RETURN_IF_ERROR(token.CheckCancel());
    const double elapsed_ms = (NowUs() - start_us) / 1000.0;
    if (deadline_ms > 0 && elapsed_ms >= deadline_ms) {
      obs::GetCounter("dist.net.deadline_expiries").Increment();
      return Status::DeadlineExceeded("frame read from " + peer_ +
                                      " exceeded its deadline");
    }
    pollfd pfd{read_fd_, POLLIN, 0};
    const int ready =
        ::poll(&pfd, 1, SliceTimeoutMs(deadline_ms, elapsed_ms));
    if (ready < 0 && errno != EINTR) {
      return Status::IOError(std::string("read poll failed: ") +
                             std::strerror(errno));
    }
    if (ready <= 0) continue;
    char chunk[4096];
    const ssize_t n = ::read(read_fd_, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
        continue;
      }
      return Status::IOError("frame read from " + peer_ + " failed: " +
                             std::strerror(errno));
    }
    if (n == 0) {
      if (buffer_.empty()) return Status::NotFound("peer closed");
      return Status::DataLoss("peer closed mid-frame (" +
                              std::to_string(buffer_.size()) +
                              " stray bytes) [conn " + peer_ + "]");
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

Result<bool> Connection::PollFrames(std::vector<std::string>* frames) {
  if (read_fd_ < 0) return Status::IOError("connection not open");
  bool open = true;
  char chunk[4096];
  while (true) {
    const ssize_t n = ::read(read_fd_, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      return Status::IOError("frame poll of " + peer_ + " failed: " +
                             std::strerror(errno));
    }
    if (n == 0) {
      open = false;
      break;
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
  M2TD_RETURN_IF_ERROR(DrainBuffer(frames));
  if (!open && !buffer_.empty()) {
    return Status::DataLoss("peer closed mid-frame (" +
                            std::to_string(buffer_.size()) +
                            " stray bytes) [conn " + peer_ + "]");
  }
  return open;
}

// ---------------------------------------------------------------- Listener

Listener::~Listener() { Close(); }

Listener::Listener(Listener&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      bound_address_(std::move(other.bound_address_)) {}

Listener& Listener::operator=(Listener&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
    bound_address_ = std::move(other.bound_address_);
  }
  return *this;
}

void Listener::Close() {
  if (fd_ < 0) return;
  ::close(fd_);
  fd_ = -1;
}

Result<Listener> Listener::Listen(const std::string& address) {
  std::string host, port;
  M2TD_RETURN_IF_ERROR(SplitHostPort(address, &host, &port));

  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_PASSIVE | AI_NUMERICSERV;
  addrinfo* infos = nullptr;
  const int gai = ::getaddrinfo(host.c_str(), port.c_str(), &hints, &infos);
  if (gai != 0) {
    return Status::IOError("cannot resolve '" + address +
                           "': " + ::gai_strerror(gai));
  }

  int fd = -1;
  std::string error = "no usable address for '" + address + "'";
  for (addrinfo* info = infos; info != nullptr; info = info->ai_next) {
    fd = ::socket(info->ai_family, info->ai_socktype | SOCK_CLOEXEC,
                  info->ai_protocol);
    if (fd < 0) continue;
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, info->ai_addr, info->ai_addrlen) == 0 &&
        ::listen(fd, 64) == 0) {
      break;
    }
    error = std::string("bind/listen on '") + address +
            "' failed: " + std::strerror(errno);
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(infos);
  if (fd < 0) return Status::IOError(error);

  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);

  sockaddr_storage bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) !=
      0) {
    ::close(fd);
    return Status::IOError(std::string("getsockname failed: ") +
                           std::strerror(errno));
  }

  Listener listener;
  listener.fd_ = fd;
  listener.bound_address_ = SockaddrToString(bound);
  return listener;
}

Result<Connection> Listener::Accept() {
  if (fd_ < 0) return Status::IOError("listener not open");
  sockaddr_storage remote{};
  socklen_t remote_len = sizeof(remote);
  const int conn_fd =
      ::accept(fd_, reinterpret_cast<sockaddr*>(&remote), &remote_len);
  if (conn_fd < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::NotFound("no pending connection");
    }
    return Status::IOError(std::string("accept failed: ") +
                           std::strerror(errno));
  }
  ConfigureSocket(conn_fd);
  Connection conn = Connection::FromSocket(conn_fd, SockaddrToString(remote));
  M2TD_RETURN_IF_ERROR(conn.SetNonBlockingRead());
  obs::GetCounter("dist.net.accepts").Increment();
  return conn;
}

// -------------------------------------------------------------------- Dial

Result<Connection> Dial(const std::string& address, std::string peer,
                        double deadline_ms) {
  std::string host, port;
  M2TD_RETURN_IF_ERROR(SplitHostPort(address, &host, &port));

  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_NUMERICSERV;
  addrinfo* infos = nullptr;
  const int gai = ::getaddrinfo(host.c_str(), port.c_str(), &hints, &infos);
  if (gai != 0) {
    return Status::IOError("cannot resolve '" + address +
                           "': " + ::gai_strerror(gai));
  }

  Status error = Status::IOError("no usable address for '" + address + "'");
  for (addrinfo* info = infos; info != nullptr; info = info->ai_next) {
    const int fd =
        ::socket(info->ai_family, info->ai_socktype | SOCK_CLOEXEC,
                 info->ai_protocol);
    if (fd < 0) continue;
    // Non-blocking connect so the deadline holds against a black-holed
    // address, then back to blocking for the frame loop.
    const int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    int rc = ::connect(fd, info->ai_addr, info->ai_addrlen);
    if (rc != 0 && errno == EINPROGRESS) {
      pollfd pfd{fd, POLLOUT, 0};
      const int timeout =
          deadline_ms > 0 ? static_cast<int>(deadline_ms) : -1;
      const int ready = ::poll(&pfd, 1, timeout);
      if (ready == 0) {
        ::close(fd);
        ::freeaddrinfo(infos);
        return Status::DeadlineExceeded("connect to '" + address +
                                        "' timed out");
      }
      int so_error = 0;
      socklen_t len = sizeof(so_error);
      ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len);
      rc = so_error == 0 ? 0 : -1;
      errno = so_error;
    }
    if (rc != 0) {
      error = Status::IOError("connect to '" + address +
                              "' failed: " + std::strerror(errno));
      ::close(fd);
      continue;
    }
    ::fcntl(fd, F_SETFL, flags);
    ConfigureSocket(fd);
    ::freeaddrinfo(infos);
    obs::GetCounter("dist.net.connects").Increment();
    return Connection::FromSocket(fd, std::move(peer));
  }
  ::freeaddrinfo(infos);
  return error;
}

Result<Connection> DialWithBackoff(const std::string& address,
                                   std::string peer,
                                   const robust::RetryPolicy& policy,
                                   double budget_ms,
                                   const robust::CancelToken& token) {
  Rng rng(policy.seed);
  const double start_us = NowUs();
  Status last = Status::IOError("never attempted");
  for (int attempt = 0;; ++attempt) {
    M2TD_RETURN_IF_ERROR(token.CheckCancel());
    const double elapsed_ms = (NowUs() - start_us) / 1000.0;
    const double remaining_ms = budget_ms - elapsed_ms;
    if (remaining_ms <= 0) {
      return Status::DeadlineExceeded(
          "redial budget exhausted for '" + address + "' after " +
          std::to_string(attempt) + " attempts: " + last.ToString());
    }
    if (attempt > 0) obs::GetCounter("dist.net.redials").Increment();
    Result<Connection> conn =
        Dial(address, peer, std::min(remaining_ms, 1000.0));
    if (conn.ok()) return conn;
    last = conn.status();
    const double delay_ms =
        std::min(robust::BackoffMs(policy, attempt, &rng),
                 budget_ms - (NowUs() - start_us) / 1000.0);
    if (delay_ms > 0 && token.WaitForMillis(delay_ms)) {
      return token.CheckCancel();
    }
  }
}

}  // namespace m2td::mapreduce::transport
