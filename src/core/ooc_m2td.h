#ifndef M2TD_CORE_OOC_M2TD_H_
#define M2TD_CORE_OOC_M2TD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/m2td.h"
#include "core/pf_partition.h"
#include "io/chunk_store.h"
#include "util/result.h"

namespace m2td::core {

/// \brief Checkpoint-resume controls for the out-of-core decomposition.
///
/// With a non-empty `checkpoint_dir` the slab loop snapshots its partial
/// core every `checkpoint_every` pivot slabs (artifact written atomically,
/// then journaled — see robust::CheckpointJournal). A killed run restarted
/// with `resume = true` reloads the newest snapshot and continues from the
/// slab after it; because the core is accumulated in a fixed prefix order
/// and snapshots round-trip doubles exactly, the resumed result is
/// bit-identical to an uninterrupted run.
struct OocCheckpointOptions {
  /// Journal + snapshot directory; empty disables checkpointing.
  std::string checkpoint_dir;
  /// Continue from an existing journal (its fingerprint must match this
  /// run's configuration); false wipes any previous checkpoint state.
  bool resume = false;
  /// Pivot slabs between partial-core snapshots.
  std::uint64_t checkpoint_every = 8;
};

/// \brief Out-of-core M2TD: the decomposition of the join tensor computed
/// with *bounded memory* from two sub-ensemble tensors living in chunked
/// on-disk stores — the TensorDB-flavored deployment of the algorithm.
///
/// Memory profile:
///  - Factor matrices come from per-mode Grams streamed chunk-by-chunk
///    (io::ModeGramFromStore); peak memory is one chunk slab plus an
///    I_n x I_n Gram.
///  - The join tensor is *never materialized*: join cells only pair
///    entries sharing a pivot configuration, and core (TTM) contributions
///    are additive over any partition of the join's entries — so the core
///    is accumulated one pivot-slab join at a time. Peak memory is one
///    pivot slab of each sub-tensor plus that slab's join.
///
/// Each store must hold the corresponding side's sub-tensor in *sub-tensor
/// mode order* (pivots first, then that side's free modes), with shapes
/// matching the partition. Zero-join stitching needs globally consistent
/// candidate sets and is not supported here (Unimplemented); use the
/// in-memory pipeline for it.
///
/// The result is identical (up to floating-point reassociation) to
/// M2tdDecompose over the fully-loaded sub-ensembles; the equivalence is
/// asserted by tests.
Result<M2tdResult> M2tdDecomposeFromStores(
    const io::ChunkStore& store1, const io::ChunkStore& store2,
    const PfPartition& partition,
    const std::vector<std::uint64_t>& full_shape, const M2tdOptions& options,
    const OocCheckpointOptions& checkpoint = {});

}  // namespace m2td::core

#endif  // M2TD_CORE_OOC_M2TD_H_
