#include "core/dm2td_tasks.h"

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <thread>
#include <utility>

#include "obs/trace.h"
#include "robust/cancel.h"
#include "robust/durable.h"
#include "robust/failpoint.h"

namespace m2td::core::dm2td_tasks {

using dm2td_internal::GramPiece;
using dm2td_internal::JobGeometry;
using dm2td_internal::JoinCell;
using dm2td_internal::TensorCell;

namespace {

// ------------------------------------------------------- binary helpers

void PutU32(std::string* out, std::uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}
void PutU64(std::string* out, std::uint64_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}
void PutF64(std::string* out, double v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

/// Bounds-checked sequential reader over an encoded blob.
class ByteReader {
 public:
  explicit ByteReader(const std::string& bytes) : bytes_(bytes) {}

  Status U32(std::uint32_t* v) { return Take(v); }
  Status U64(std::uint64_t* v) { return Take(v); }
  Status F64(double* v) { return Take(v); }
  bool AtEnd() const { return off_ == bytes_.size(); }

 private:
  template <typename T>
  Status Take(T* v) {
    if (off_ + sizeof(T) > bytes_.size()) {
      return Status::IOError("truncated shuffle record");
    }
    std::memcpy(v, bytes_.data() + off_, sizeof(T));
    off_ += sizeof(T);
    return Status::OK();
  }

  const std::string& bytes_;
  std::size_t off_ = 0;
};

// ------------------------------------------------------------ blob names

std::string CellSplitName(int split) {
  return "input/cells/split" + std::to_string(split);
}
std::string P3SplitName(int mode, int split) {
  return "input/p3_" + std::to_string(mode) + "/split" +
         std::to_string(split);
}
std::string FactorName(int mode) {
  return "input/factor" + std::to_string(mode);
}

void MaybeChaosSleep() {
  const char* ms = std::getenv(kChaosSleepEnv);
  if (ms == nullptr) return;
  const long parsed = std::strtol(ms, nullptr, 10);
  if (parsed > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(parsed));
  }
}

/// Applies the M2TD_DIST_STRAGGLER knob ("<phase>:<index>:<ms>
/// [:<max_attempt>]") to `task`. Cancel-aware: a fired ambient token ends
/// the sleep early, so a cancelled speculative loser unwinds promptly.
void MaybeStragglerSleep(const TaskRequest& task) {
  const char* spec = std::getenv(kStragglerEnv);
  if (spec == nullptr || *spec == '\0') return;
  std::istringstream in(spec);
  std::string phase, field;
  if (!std::getline(in, phase, ':') || phase != task.phase) return;
  if (!std::getline(in, field, ':') ||
      std::strtol(field.c_str(), nullptr, 10) != task.index) {
    return;
  }
  if (!std::getline(in, field, ':')) return;
  const double ms = std::strtod(field.c_str(), nullptr);
  long max_attempt = 0;
  if (std::getline(in, field, ':')) {
    max_attempt = std::strtol(field.c_str(), nullptr, 10);
  }
  if (task.attempt > max_attempt || ms <= 0) return;
  const robust::CancelToken token = robust::CurrentCancelToken();
  if (token.CanBeCancelled()) {
    token.WaitForMillis(ms);
  } else {
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
  }
}

// --------------------------------------------------------------- stages

Status RunMapTask(const io::ShuffleStore& store, const DistJobConfig& config,
                  const TaskRequest& task) {
  const JobGeometry geometry = GeometryOf(config);
  const int shards = config.shards;
  std::vector<std::string> encoded(shards);

  if (task.phase == "p1map" || task.phase == "p2map") {
    M2TD_ASSIGN_OR_RETURN(std::string bytes,
                          store.ReadBlob(CellSplitName(task.index), "input"));
    M2TD_ASSIGN_OR_RETURN(std::vector<TensorCell> cells, DecodeCells(bytes));
    std::vector<std::vector<TensorCell>> buckets(shards);
    for (TensorCell& cell : cells) {
      // Phase 1 shards by sub-tensor, phase 2 by pivot hash — both
      // functions of the record alone, so sharding is identical for any
      // worker count and any split boundaries.
      const std::uint64_t shard =
          task.phase == "p1map"
              ? static_cast<std::uint64_t>(cell.kappa - 1) %
                    static_cast<std::uint64_t>(shards)
              : dm2td_internal::PivotKey(cell.idx, geometry.pivot_dims) %
                    static_cast<std::uint64_t>(shards);
      buckets[shard].push_back(std::move(cell));
    }
    for (int r = 0; r < shards; ++r) {
      if (!buckets[r].empty()) encoded[r] = EncodeCells(buckets[r]);
    }
  } else {  // p3map_<n>
    M2TD_ASSIGN_OR_RETURN(
        std::string bytes,
        store.ReadBlob(P3SplitName(task.mode, task.index), "input"));
    M2TD_ASSIGN_OR_RETURN(std::vector<JoinCell> cells,
                          DecodeJoinCells(bytes));
    std::vector<std::vector<FiberPair>> buckets(shards);
    for (const JoinCell& cell : cells) {
      const std::uint64_t key = dm2td_internal::Phase3FiberKey(
          cell, static_cast<std::size_t>(task.mode), task.shape);
      buckets[key % static_cast<std::uint64_t>(shards)].push_back(
          FiberPair{key, cell.idx[static_cast<std::size_t>(task.mode)],
                    cell.value});
    }
    for (int r = 0; r < shards; ++r) {
      if (!buckets[r].empty()) encoded[r] = EncodeFiberPairs(buckets[r]);
    }
  }

  std::vector<std::string> blob_names;
  for (int r = 0; r < shards; ++r) {
    if (encoded[r].empty()) continue;
    const std::string name = io::ShuffleStore::BlobName(
        task.phase, task.index, task.attempt, "shard" + std::to_string(r));
    M2TD_RETURN_IF_ERROR(store.WriteBlob(name, encoded[r]));
    blob_names.push_back(name);
  }
  MaybeChaosSleep();
  return store.CommitTask(task.phase, task.index, task.attempt, blob_names);
}

/// Concatenates the committed shard-`r` blobs of every map task of
/// `map_phase`, in map-task order — reproducing the global input order
/// the thread backend's shuffle delivers.
Result<std::vector<std::string>> ReadShardBlobs(
    const io::ShuffleStore& store, const std::string& map_phase, int shards,
    int r) {
  std::vector<std::string> payloads;
  for (int m = 0; m < shards; ++m) {
    M2TD_ASSIGN_OR_RETURN(io::ShuffleStore::TaskCommit commit,
                          store.ReadCommit(map_phase, m));
    const std::string name = io::ShuffleStore::BlobName(
        map_phase, m, commit.attempt, "shard" + std::to_string(r));
    bool listed = false;
    for (const std::string& blob : commit.blobs) {
      if (blob == name) {
        listed = true;
        break;
      }
    }
    if (!listed) continue;  // map task emitted nothing for this shard
    M2TD_ASSIGN_OR_RETURN(
        std::string bytes,
        store.ReadBlob(name, map_phase + ":" + std::to_string(m)));
    payloads.push_back(std::move(bytes));
  }
  return payloads;
}

Status RunReduceTask(const io::ShuffleStore& store,
                     const DistJobConfig& config, const TaskRequest& task) {
  const JobGeometry geometry = GeometryOf(config);
  const std::string map_phase = MapPhaseOf(task.phase);
  M2TD_ASSIGN_OR_RETURN(
      std::vector<std::string> payloads,
      ReadShardBlobs(store, map_phase, config.shards, task.index));

  std::string out_bytes;
  if (task.phase == "p1red") {
    std::vector<TensorCell> cells;
    for (const std::string& bytes : payloads) {
      M2TD_ASSIGN_OR_RETURN(std::vector<TensorCell> part,
                            DecodeCells(bytes));
      cells.insert(cells.end(), std::make_move_iterator(part.begin()),
                   std::make_move_iterator(part.end()));
    }
    std::map<int, std::vector<TensorCell>> by_kappa;
    for (TensorCell& cell : cells) {
      by_kappa[cell.kappa].push_back(std::move(cell));
    }
    std::vector<GramPiece> pieces;
    for (const auto& [kappa, group] : by_kappa) {
      M2TD_RETURN_IF_ERROR(dm2td_internal::BuildGramsForSub(
          kappa, kappa == 1 ? config.shape1 : config.shape2, group,
          &pieces));
    }
    out_bytes = EncodeGramPieces(pieces);
  } else if (task.phase == "p2red") {
    std::vector<std::uint64_t> cand1, cand2;
    if (config.zero_join) {
      M2TD_ASSIGN_OR_RETURN(std::string c1,
                            store.ReadBlob("input/cand1", "input"));
      M2TD_ASSIGN_OR_RETURN(std::string c2,
                            store.ReadBlob("input/cand2", "input"));
      M2TD_ASSIGN_OR_RETURN(cand1, DecodeU64List(c1));
      M2TD_ASSIGN_OR_RETURN(cand2, DecodeU64List(c2));
    }
    // Group by pivot key, preserving global arrival order within each
    // group; fold groups in ascending key order (canonical).
    std::map<std::uint64_t, std::vector<TensorCell>> groups;
    for (const std::string& bytes : payloads) {
      M2TD_ASSIGN_OR_RETURN(std::vector<TensorCell> part,
                            DecodeCells(bytes));
      for (TensorCell& cell : part) {
        const std::uint64_t key =
            dm2td_internal::PivotKey(cell.idx, geometry.pivot_dims);
        groups[key].push_back(std::move(cell));
      }
    }
    std::vector<JoinCell> out;
    for (const auto& [key, group] : groups) {
      dm2td_internal::JoinPivotGroup(key, group, geometry, config.zero_join,
                                     cand1, cand2, &out);
    }
    out_bytes = EncodeJoinCells(out);
  } else {  // p3red_<n>
    const std::size_t n = static_cast<std::size_t>(task.mode);
    M2TD_ASSIGN_OR_RETURN(
        std::string factor_bytes,
        store.ReadBlob(FactorName(task.mode), "input"));
    M2TD_ASSIGN_OR_RETURN(linalg::Matrix factor, DecodeMatrix(factor_bytes));
    std::vector<std::uint64_t> other_dims;
    std::vector<std::size_t> other_modes;
    for (std::size_t m = 0; m < task.shape.size(); ++m) {
      if (m != n) {
        other_dims.push_back(task.shape[m]);
        other_modes.push_back(m);
      }
    }
    std::map<std::uint64_t, std::vector<std::pair<std::uint32_t, double>>>
        groups;
    for (const std::string& bytes : payloads) {
      M2TD_ASSIGN_OR_RETURN(std::vector<FiberPair> part,
                            DecodeFiberPairs(bytes));
      for (const FiberPair& pair : part) {
        groups[pair.key].emplace_back(pair.i, pair.v);
      }
    }
    std::vector<JoinCell> out;
    for (const auto& [key, fiber] : groups) {
      dm2td_internal::ContractFiber(key, fiber, factor, n, other_dims,
                                    other_modes, task.shape.size(), &out);
    }
    out_bytes = EncodeJoinCells(out);
  }

  const std::string name = io::ShuffleStore::BlobName(
      task.phase, task.index, task.attempt, "data");
  M2TD_RETURN_IF_ERROR(store.WriteBlob(name, out_bytes));
  MaybeChaosSleep();
  return store.CommitTask(task.phase, task.index, task.attempt, {name});
}

}  // namespace

// ------------------------------------------------------------ job config

Status SaveJobConfig(const std::string& path, const DistJobConfig& config) {
  return robust::AtomicWriteFile(path, [&](const std::string& tmp) -> Status {
    std::ofstream out(tmp);
    if (!out) return Status::IOError("cannot write job config '" + tmp + "'");
    auto write_u64s = [&out](const char* label,
                             const std::vector<std::uint64_t>& values) {
      out << label << " " << values.size();
      for (std::uint64_t v : values) out << " " << v;
      out << "\n";
    };
    auto write_modes = [&out](const char* label,
                              const std::vector<std::size_t>& values) {
      out << label << " " << values.size();
      for (std::size_t v : values) out << " " << v;
      out << "\n";
    };
    out << "m2td-dist-job 1\n";
    write_u64s("full_shape", config.full_shape);
    write_u64s("shape1", config.shape1);
    write_u64s("shape2", config.shape2);
    write_modes("pivot_modes", config.pivot_modes);
    write_modes("side1_modes", config.side1_modes);
    write_modes("side2_modes", config.side2_modes);
    out << "shards " << config.shards << "\n";
    out << "zero_join " << (config.zero_join ? 1 : 0) << "\n";
    out.flush();
    if (!out) return Status::IOError("job config write failed");
    return Status::OK();
  });
}

Result<DistJobConfig> LoadJobConfig(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open job config '" + path + "'");
  std::string magic, token;
  int version = 0;
  if (!(in >> magic >> version) || magic != "m2td-dist-job" || version != 1) {
    return Status::IOError("malformed job config '" + path + "'");
  }
  DistJobConfig config;
  auto read_u64s = [&](const char* label,
                       std::vector<std::uint64_t>* out) -> Status {
    std::size_t count = 0;
    if (!(in >> token >> count) || token != label) {
      return Status::IOError(std::string("malformed job config: ") + label);
    }
    out->resize(count);
    for (std::uint64_t& v : *out) {
      if (!(in >> v)) return Status::IOError("malformed job config value");
    }
    return Status::OK();
  };
  auto read_modes = [&](const char* label,
                        std::vector<std::size_t>* out) -> Status {
    std::size_t count = 0;
    if (!(in >> token >> count) || token != label) {
      return Status::IOError(std::string("malformed job config: ") + label);
    }
    out->resize(count);
    for (std::size_t& v : *out) {
      if (!(in >> v)) return Status::IOError("malformed job config value");
    }
    return Status::OK();
  };
  M2TD_RETURN_IF_ERROR(read_u64s("full_shape", &config.full_shape));
  M2TD_RETURN_IF_ERROR(read_u64s("shape1", &config.shape1));
  M2TD_RETURN_IF_ERROR(read_u64s("shape2", &config.shape2));
  M2TD_RETURN_IF_ERROR(read_modes("pivot_modes", &config.pivot_modes));
  M2TD_RETURN_IF_ERROR(read_modes("side1_modes", &config.side1_modes));
  M2TD_RETURN_IF_ERROR(read_modes("side2_modes", &config.side2_modes));
  int zero_join = 0;
  if (!(in >> token >> config.shards) || token != "shards" ||
      config.shards <= 0) {
    return Status::IOError("malformed job config: shards");
  }
  if (!(in >> token >> zero_join) || token != "zero_join") {
    return Status::IOError("malformed job config: zero_join");
  }
  config.zero_join = zero_join != 0;
  return config;
}

dm2td_internal::JobGeometry GeometryOf(const DistJobConfig& config) {
  JobGeometry g;
  g.num_modes = config.full_shape.size();
  g.k = config.pivot_modes.size();
  g.pivot_modes = config.pivot_modes;
  g.side1_modes = config.side1_modes;
  g.side2_modes = config.side2_modes;
  g.pivot_dims = dm2td_internal::ModeDims(config.full_shape,
                                          config.pivot_modes);
  g.side1_dims = dm2td_internal::ModeDims(config.full_shape,
                                          config.side1_modes);
  g.side2_dims = dm2td_internal::ModeDims(config.full_shape,
                                          config.side2_modes);
  return g;
}

std::string MapPhaseOf(const std::string& reduce_phase) {
  std::string map_phase = reduce_phase;
  const std::size_t pos = map_phase.find("red");
  if (pos != std::string::npos) map_phase.replace(pos, 3, "map");
  return map_phase;
}

std::string EncodeTaskFrame(const TaskRequest& task) {
  std::string frame = "task ";
  frame += task.is_map ? "1" : "0";
  frame += " " + task.phase;
  frame += " " + std::to_string(task.index);
  frame += " " + std::to_string(task.attempt);
  frame += " " + std::to_string(task.mode);
  frame += " " + std::to_string(task.shape.size());
  for (std::uint64_t d : task.shape) frame += " " + std::to_string(d);
  return frame;
}

Result<TaskRequest> DecodeTaskFrame(const std::string& frame) {
  std::istringstream in(frame);
  std::string word;
  int is_map = 0;
  std::size_t nshape = 0;
  TaskRequest task;
  if (!(in >> word >> is_map >> task.phase >> task.index >> task.attempt >>
        task.mode >> nshape) ||
      word != "task") {
    return Status::IOError("malformed task frame '" + frame + "'");
  }
  task.is_map = is_map != 0;
  task.shape.resize(nshape);
  for (std::uint64_t& d : task.shape) {
    if (!(in >> d)) return Status::IOError("malformed task frame shape");
  }
  return task;
}

// ---------------------------------------------------------------- codecs

std::string EncodeCells(const std::vector<TensorCell>& cells) {
  std::string out;
  PutU64(&out, cells.size());
  for (const TensorCell& cell : cells) {
    PutU32(&out, static_cast<std::uint32_t>(cell.kappa));
    PutU32(&out, static_cast<std::uint32_t>(cell.idx.size()));
    for (std::uint32_t i : cell.idx) PutU32(&out, i);
    PutF64(&out, cell.value);
  }
  return out;
}

Result<std::vector<TensorCell>> DecodeCells(const std::string& bytes) {
  ByteReader reader(bytes);
  std::uint64_t count = 0;
  M2TD_RETURN_IF_ERROR(reader.U64(&count));
  std::vector<TensorCell> cells;
  cells.reserve(static_cast<std::size_t>(
      std::min<std::uint64_t>(count, bytes.size() / 16 + 1)));
  for (std::uint64_t e = 0; e < count; ++e) {
    TensorCell cell;
    std::uint32_t kappa = 0, arity = 0;
    M2TD_RETURN_IF_ERROR(reader.U32(&kappa));
    M2TD_RETURN_IF_ERROR(reader.U32(&arity));
    cell.kappa = static_cast<int>(kappa);
    cell.idx.resize(arity);
    for (std::uint32_t& i : cell.idx) M2TD_RETURN_IF_ERROR(reader.U32(&i));
    M2TD_RETURN_IF_ERROR(reader.F64(&cell.value));
    cells.push_back(std::move(cell));
  }
  return cells;
}

std::string EncodeJoinCells(const std::vector<JoinCell>& cells) {
  std::string out;
  PutU64(&out, cells.size());
  for (const JoinCell& cell : cells) {
    PutU32(&out, static_cast<std::uint32_t>(cell.idx.size()));
    for (std::uint32_t i : cell.idx) PutU32(&out, i);
    PutF64(&out, cell.value);
  }
  return out;
}

Result<std::vector<JoinCell>> DecodeJoinCells(const std::string& bytes) {
  ByteReader reader(bytes);
  std::uint64_t count = 0;
  M2TD_RETURN_IF_ERROR(reader.U64(&count));
  std::vector<JoinCell> cells;
  cells.reserve(static_cast<std::size_t>(
      std::min<std::uint64_t>(count, bytes.size() / 12 + 1)));
  for (std::uint64_t e = 0; e < count; ++e) {
    JoinCell cell;
    std::uint32_t arity = 0;
    M2TD_RETURN_IF_ERROR(reader.U32(&arity));
    cell.idx.resize(arity);
    for (std::uint32_t& i : cell.idx) M2TD_RETURN_IF_ERROR(reader.U32(&i));
    M2TD_RETURN_IF_ERROR(reader.F64(&cell.value));
    cells.push_back(std::move(cell));
  }
  return cells;
}

std::string EncodeFiberPairs(const std::vector<FiberPair>& pairs) {
  std::string out;
  PutU64(&out, pairs.size());
  for (const FiberPair& pair : pairs) {
    PutU64(&out, pair.key);
    PutU32(&out, pair.i);
    PutF64(&out, pair.v);
  }
  return out;
}

Result<std::vector<FiberPair>> DecodeFiberPairs(const std::string& bytes) {
  ByteReader reader(bytes);
  std::uint64_t count = 0;
  M2TD_RETURN_IF_ERROR(reader.U64(&count));
  std::vector<FiberPair> pairs;
  pairs.reserve(static_cast<std::size_t>(
      std::min<std::uint64_t>(count, bytes.size() / 20 + 1)));
  for (std::uint64_t e = 0; e < count; ++e) {
    FiberPair pair;
    M2TD_RETURN_IF_ERROR(reader.U64(&pair.key));
    M2TD_RETURN_IF_ERROR(reader.U32(&pair.i));
    M2TD_RETURN_IF_ERROR(reader.F64(&pair.v));
    pairs.push_back(pair);
  }
  return pairs;
}

std::string EncodeMatrix(const linalg::Matrix& matrix) {
  std::string out;
  PutU64(&out, matrix.rows());
  PutU64(&out, matrix.cols());
  for (double v : matrix.data()) PutF64(&out, v);
  return out;
}

Result<linalg::Matrix> DecodeMatrix(const std::string& bytes) {
  ByteReader reader(bytes);
  std::uint64_t rows = 0, cols = 0;
  M2TD_RETURN_IF_ERROR(reader.U64(&rows));
  M2TD_RETURN_IF_ERROR(reader.U64(&cols));
  if (rows * cols * sizeof(double) > bytes.size()) {
    return Status::IOError("truncated matrix blob");
  }
  linalg::Matrix matrix(static_cast<std::size_t>(rows),
                        static_cast<std::size_t>(cols));
  for (double& v : matrix.mutable_data()) {
    M2TD_RETURN_IF_ERROR(reader.F64(&v));
  }
  return matrix;
}

std::string EncodeGramPieces(const std::vector<GramPiece>& pieces) {
  std::string out;
  PutU64(&out, pieces.size());
  for (const GramPiece& piece : pieces) {
    PutU32(&out, static_cast<std::uint32_t>(piece.kappa));
    PutU64(&out, piece.sub_mode);
    PutU64(&out, piece.gram.rows());
    PutU64(&out, piece.gram.cols());
    for (double v : piece.gram.data()) PutF64(&out, v);
  }
  return out;
}

Result<std::vector<GramPiece>> DecodeGramPieces(const std::string& bytes) {
  ByteReader reader(bytes);
  std::uint64_t count = 0;
  M2TD_RETURN_IF_ERROR(reader.U64(&count));
  std::vector<GramPiece> pieces;
  for (std::uint64_t e = 0; e < count; ++e) {
    GramPiece piece;
    std::uint32_t kappa = 0;
    std::uint64_t sub_mode = 0, rows = 0, cols = 0;
    M2TD_RETURN_IF_ERROR(reader.U32(&kappa));
    M2TD_RETURN_IF_ERROR(reader.U64(&sub_mode));
    M2TD_RETURN_IF_ERROR(reader.U64(&rows));
    M2TD_RETURN_IF_ERROR(reader.U64(&cols));
    if (rows * cols * sizeof(double) > bytes.size()) {
      return Status::IOError("truncated gram blob");
    }
    piece.kappa = static_cast<int>(kappa);
    piece.sub_mode = static_cast<std::size_t>(sub_mode);
    piece.gram = linalg::Matrix(static_cast<std::size_t>(rows),
                                static_cast<std::size_t>(cols));
    for (double& v : piece.gram.mutable_data()) {
      M2TD_RETURN_IF_ERROR(reader.F64(&v));
    }
    pieces.push_back(std::move(piece));
  }
  return pieces;
}

std::string EncodeU64List(const std::vector<std::uint64_t>& values) {
  std::string out;
  PutU64(&out, values.size());
  for (std::uint64_t v : values) PutU64(&out, v);
  return out;
}

Result<std::vector<std::uint64_t>> DecodeU64List(const std::string& bytes) {
  ByteReader reader(bytes);
  std::uint64_t count = 0;
  M2TD_RETURN_IF_ERROR(reader.U64(&count));
  if (count * sizeof(std::uint64_t) > bytes.size()) {
    return Status::IOError("truncated u64 list blob");
  }
  std::vector<std::uint64_t> values(static_cast<std::size_t>(count));
  for (std::uint64_t& v : values) M2TD_RETURN_IF_ERROR(reader.U64(&v));
  return values;
}

// ------------------------------------------------------------- execution

Status RunDistTask(const io::ShuffleStore& store,
                   const DistJobConfig& config, const TaskRequest& task) {
  obs::ObsSpan span(task.is_map ? "dist_map_task" : "dist_reduce_task");
  span.Annotate("phase", task.phase);
  span.Annotate("task", static_cast<std::int64_t>(task.index));
  span.Annotate("attempt", static_cast<std::int64_t>(task.attempt));
  M2TD_RETURN_IF_ERROR(robust::CheckFailpoint(
      task.is_map ? "dist.map_task" : "dist.reduce_task"));
  MaybeStragglerSleep(task);
  M2TD_RETURN_IF_ERROR(robust::CheckCancelled());
  if (task.is_map) return RunMapTask(store, config, task);
  return RunReduceTask(store, config, task);
}

const char* WorkerExitCodeName(int code) {
  switch (code) {
    case kWorkerExitOk:
      return "ok";
    case kWorkerExitTornPipe:
      return "torn control channel";
    case kWorkerExitBadInvocation:
      return "bad invocation";
    case kWorkerExitBadJob:
      return "unreadable job";
    case kWorkerExitMalformedFrame:
      return "malformed frame";
    case kWorkerExitLostCoordinator:
      return "lost coordinator";
  }
  return "unknown";
}

}  // namespace m2td::core::dm2td_tasks
