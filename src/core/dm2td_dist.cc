#include "core/dm2td_dist.h"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/dm2td_internal.h"
#include "core/dm2td_tasks.h"
#include "io/chunk_store.h"
#include "mapreduce/transport.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "robust/cancel.h"
#include "robust/heartbeat.h"
#include "robust/netfault.h"
#include "util/logging.h"

namespace m2td::core {

namespace {

namespace fs = std::filesystem;
using dm2td_internal::GramPiece;
using dm2td_internal::JobGeometry;
using dm2td_internal::JoinCell;
using dm2td_internal::TensorCell;
using dm2td_tasks::DistJobConfig;
using dm2td_tasks::TaskRequest;

/// Writes to a dead worker's pipe must surface as EPIPE, not kill the
/// coordinator; scoped so library callers keep their own disposition.
class SigpipeGuard {
 public:
  SigpipeGuard() { previous_ = ::signal(SIGPIPE, SIG_IGN); }
  ~SigpipeGuard() { ::signal(SIGPIPE, previous_); }

 private:
  using Handler = void (*)(int);
  Handler previous_;
};

struct WorkerProc {
  int id = -1;
  /// -1 for external workers (socket transport with spawn_workers off).
  pid_t pid = -1;
  mapreduce::transport::Connection conn;
  /// The identity is live: its process (if spawned) has not been reaped
  /// and its heartbeat lease has not lapsed. Socket workers stay alive
  /// across connection drops — disconnect is not death.
  bool alive = false;
  /// Ever declared dead; a dead identity is never resurrected by a late
  /// hello.
  bool dead = false;
  bool connected = false;
  bool ever_connected = false;
  bool reaped = false;
  bool busy = false;
  /// Steady-clock micros of the current task's (first) assignment —
  /// straggler detection compares siblings against this.
  double assign_us = 0.0;
  TaskRequest current;
};

double NowUs() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

using TaskKey = std::pair<std::string, int>;  // (phase, index)

/// One stage = `count` tasks of one phase. Reduce stages carry the map
/// prototype of the phase they consume, so a DataLoss verdict on a
/// committed map blob can be turned back into a map re-execution.
struct StagePlan {
  std::string phase;
  int count = 0;
  TaskRequest prototype;
  const TaskRequest* map_prototype = nullptr;
};

/// Per-stage scheduling state threaded through the frame handlers; the
/// network pump receives it as null outside any stage (attach window).
struct StageCtx {
  const StagePlan* plan = nullptr;
  std::deque<TaskRequest>* pending = nullptr;
  std::set<int>* done = nullptr;
  std::vector<std::pair<TaskRequest, TaskKey>>* blocked = nullptr;
  std::set<TaskKey>* reexec_inflight = nullptr;
  /// Runtimes (ms) of this stage's first-completed attempts — the
  /// straggler quantile's sample.
  std::vector<double>* completed_ms = nullptr;
  /// Keys with a speculative attempt launched, and that attempt's number.
  std::map<TaskKey, int>* spec_attempt = nullptr;
};

class Coordinator {
 public:
  Coordinator(const DM2tdOptions& options, const io::ShuffleStore& store,
              std::string job_dir, std::string worker_binary)
      : options_(options),
        store_(store),
        job_dir_(std::move(job_dir)),
        worker_binary_(std::move(worker_binary)) {}

  ~Coordinator() { KillAll(); }

  DistStats& stats() { return stats_; }

  Status SpawnWorkers() {
    const int count = options_.num_workers;
    workers_.resize(static_cast<std::size_t>(count));
    for (int k = 0; k < count; ++k) workers_[static_cast<std::size_t>(k)].id = k;
    if (UseSocket()) {
      M2TD_ASSIGN_OR_RETURN(
          listener_,
          mapreduce::transport::Listener::Listen(options_.process.listen));
    }
    if (!UseSocket() || options_.process.spawn_workers) {
      for (int k = 0; k < count; ++k) {
        M2TD_RETURN_IF_ERROR(SpawnWorker(k));
      }
      stats_.workers_spawned = count;
    }
    if (UseSocket()) return WaitForAttach();
    return Status::OK();
  }

  Status RunStage(const StagePlan& plan) {
    obs::ObsSpan stage_span("dist_stage");
    stage_span.Annotate("phase", plan.phase);
    std::deque<TaskRequest> pending;
    for (int t = 0; t < plan.count; ++t) {
      TaskRequest task = plan.prototype;
      task.index = t;
      task.attempt = NextAttempt(TaskKey{plan.phase, t});
      pending.push_back(std::move(task));
    }
    std::set<int> done;
    std::vector<std::pair<TaskRequest, TaskKey>> blocked;
    std::set<TaskKey> reexec_inflight;
    std::vector<double> completed_ms;
    std::map<TaskKey, int> spec_attempt;
    StageCtx ctx;
    ctx.plan = &plan;
    ctx.pending = &pending;
    ctx.done = &done;
    ctx.blocked = &blocked;
    ctx.reexec_inflight = &reexec_inflight;
    ctx.completed_ms = &completed_ms;
    ctx.spec_attempt = &spec_attempt;

    const double lease_ms = options_.process.task_lease_ms;
    const int poll_ms = static_cast<int>(std::clamp(
        options_.process.heartbeat_ms / 2.0, 2.0, 50.0));

    while (true) {
      // One liveness span per scheduling round: span opens feed the
      // process-wide span listener, which is what the stall watchdog
      // observes — worker heartbeats therefore keep the watchdog fed
      // even while the coordinator itself only waits.
      obs::ObsSpan beat_span("dist_heartbeat");

      const Status cancelled = robust::CheckCancelled();
      if (!cancelled.ok()) {
        Emit("drain", plan.phase, -1, -1, -1);
        Drain();
        return cancelled;
      }

      const bool stage_complete =
          static_cast<int>(done.size()) == plan.count && blocked.empty();
      if (stage_complete) {
        pending.clear();
        bool any_busy = false;
        for (const WorkerProc& w : workers_) any_busy |= w.alive && w.busy;
        if (!any_busy) break;
      }

      // Assign pending tasks to idle attached workers.
      for (WorkerProc& w : workers_) {
        if (pending.empty()) break;
        if (!w.alive || !w.connected || w.busy) continue;
        TaskRequest task = pending.front();
        const Status sent = w.conn.WriteFrame(
            EncodeTaskFrame(task), options_.process.io_deadline_ms);
        if (!sent.ok()) {
          // The channel is gone; the task stays queued for someone else.
          HandleChannelLoss(w, &ctx);
          continue;
        }
        pending.pop_front();
        w.busy = true;
        w.current = std::move(task);
        w.assign_us = NowUs();
        lease_.Arm(w.id);
        Emit("assign", w.current.phase, w.current.index, w.id, w.pid);
      }

      if (pending.empty() && !stage_complete) MaybeSpeculate(ctx);

      if (CountAlive() == 0) {
        return Status::Internal("all " +
                                std::to_string(options_.num_workers) +
                                " workers died during phase " + plan.phase);
      }

      // Poll the listener, unidentified connections, and every attached
      // worker.
      std::vector<pollfd> fds;
      std::vector<int> fd_worker;  // worker id, or -1 for listener/pending
      if (listener_.listening()) {
        fds.push_back(pollfd{listener_.fd(), POLLIN, 0});
        fd_worker.push_back(-1);
      }
      for (const mapreduce::transport::Connection& p : pending_) {
        fds.push_back(pollfd{p.read_fd(), POLLIN, 0});
        fd_worker.push_back(-1);
      }
      for (const WorkerProc& w : workers_) {
        if (!w.alive || !w.connected) continue;
        fds.push_back(pollfd{w.conn.read_fd(), POLLIN, 0});
        fd_worker.push_back(w.id);
      }
      const int ready = ::poll(fds.data(),
                               static_cast<nfds_t>(fds.size()), poll_ms);
      if (ready < 0 && errno != EINTR) {
        return Status::IOError(std::string("coordinator poll failed: ") +
                               std::strerror(errno));
      }
      M2TD_RETURN_IF_ERROR(PumpNetwork(&ctx));
      for (std::size_t i = 0; i < fds.size(); ++i) {
        if (fd_worker[i] < 0) continue;
        if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
        WorkerProc& w = workers_[static_cast<std::size_t>(fd_worker[i])];
        if (!w.alive || !w.connected) continue;
        M2TD_RETURN_IF_ERROR(DrainWorker(w, &ctx));
      }

      // Disconnected spawned workers may have actually died — reap
      // promptly instead of waiting out the lease.
      for (WorkerProc& w : workers_) {
        if (w.alive && !w.connected) TryReap(w, &ctx);
      }

      // Lease policy: a silent heartbeat or an overrunning task both mean
      // the worker is gone or wedged — SIGKILL, reap, reassign. A
      // disconnected socket worker that redials in time never reaches
      // this point: its lease clock was resumed by the rebind.
      for (int id : hb_.Expired(lease_ms)) {
        WorkerProc& w = workers_[static_cast<std::size_t>(id)];
        if (!w.alive) continue;
        Emit("lease_expired", w.busy ? w.current.phase : plan.phase,
             w.busy ? w.current.index : -1, w.id, w.pid);
        stats_.lease_expirations++;
        obs::GetCounter("dist.lease_expired").Increment();
        DeclareDead(w, "death", &ctx);
      }
      for (int id : lease_.Expired(lease_ms)) {
        WorkerProc& w = workers_[static_cast<std::size_t>(id)];
        if (!w.alive || !w.busy) continue;
        Emit("lease_expired", w.current.phase, w.current.index, w.id, w.pid);
        stats_.lease_expirations++;
        obs::GetCounter("dist.lease_expired").Increment();
        DeclareDead(w, "death", &ctx);
      }

      // Reassignment-storm backstop.
      for (const auto& [key, count] : reassigned_) {
        if (count > kMaxReassignments) {
          return Status::Internal("task " + key.first + ":" +
                                  std::to_string(key.second) + " reassigned " +
                                  std::to_string(count) +
                                  " times; giving up");
        }
      }
    }
    Emit("stage_done", plan.phase, -1, -1, -1);
    return Status::OK();
  }

  /// Graceful shutdown: quit frames, closed channels, bounded wait,
  /// SIGKILL stragglers.
  void Drain() {
    for (WorkerProc& w : workers_) {
      if (!w.alive) continue;
      if (w.connected) {
        (void)w.conn.WriteFrame("quit", 1000.0);
      }
      w.conn.Close();
      w.connected = false;
      if (w.pid < 0) CloseWorker(w);  // external: nothing to reap
    }
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (std::chrono::steady_clock::now() < deadline) {
      bool any = false;
      for (WorkerProc& w : workers_) {
        if (!w.alive) continue;
        int status = 0;
        const pid_t reaped = ::waitpid(w.pid, &status, WNOHANG);
        if (reaped == w.pid) {
          w.reaped = true;
          RecordExit(w, status);
          CloseWorker(w);
        } else {
          any = true;
        }
      }
      if (!any) return;
      ::usleep(10 * 1000);
    }
    KillAll();
  }

 private:
  static constexpr int kMaxReassignments = 16;

  bool UseSocket() const { return options_.process.transport == "socket"; }

  int CountAlive() const {
    int alive = 0;
    for (const WorkerProc& w : workers_) alive += w.alive ? 1 : 0;
    return alive;
  }

  void Emit(const char* kind, const std::string& phase, int task, int worker,
            pid_t pid) {
    if (!options_.process.event_hook) return;
    DistEvent event;
    event.kind = kind;
    event.phase = phase;
    event.task = task;
    event.worker = worker;
    event.pid = pid;
    options_.process.event_hook(event);
  }

  int NextAttempt(const TaskKey& key) { return attempts_[key]++; }

  Status SpawnWorker(int k) {
    std::vector<std::string> args;
    args.push_back(worker_binary_);
    args.push_back("--job_dir=" + job_dir_);
    args.push_back("--worker_id=" + std::to_string(k));
    args.push_back("--heartbeat_ms=" +
                   std::to_string(options_.process.heartbeat_ms));
    args.push_back("--trace_epoch_us=" +
                   std::to_string(obs::Tracer::NowMicros()));
    if (UseSocket()) {
      args.push_back("--connect=" + listener_.bound_address());
      args.push_back("--redial_ms=" +
                     std::to_string(options_.process.redial_ms));
    }
    if (!options_.process.worker_net_faults.empty()) {
      args.push_back("--net_faults=" + options_.process.worker_net_faults);
    }

    int to_pipe[2] = {-1, -1}, from_pipe[2] = {-1, -1};
    if (!UseSocket()) {
      if (::pipe(to_pipe) != 0 || ::pipe(from_pipe) != 0) {
        return Status::IOError(std::string("pipe failed: ") +
                               std::strerror(errno));
      }
      // Pipe ends must not leak into sibling workers; the child's dup2
      // onto fds 0/1 clears CLOEXEC on the two ends it keeps.
      for (int fd : {to_pipe[0], to_pipe[1], from_pipe[0], from_pipe[1]}) {
        ::fcntl(fd, F_SETFD, FD_CLOEXEC);
      }
    }
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (std::string& a : args) argv.push_back(a.data());
    argv.push_back(nullptr);

    const pid_t pid = ::fork();
    if (pid < 0) {
      return Status::IOError(std::string("fork failed: ") +
                             std::strerror(errno));
    }
    if (pid == 0) {
      // Child: only async-signal-safe calls until exec.
      if (!UseSocket()) {
        ::dup2(to_pipe[0], 0);
        ::dup2(from_pipe[1], 1);
      }
      ::execv(worker_binary_.c_str(), argv.data());
      _exit(127);
    }

    WorkerProc& w = workers_[static_cast<std::size_t>(k)];
    w.id = k;
    w.pid = pid;
    w.alive = true;
    w.busy = false;
    if (!UseSocket()) {
      ::close(to_pipe[0]);
      ::close(from_pipe[1]);
      w.conn = mapreduce::transport::Connection::FromFds(
          from_pipe[0], to_pipe[1], "worker" + std::to_string(k));
      M2TD_RETURN_IF_ERROR(w.conn.SetNonBlockingRead());
      w.connected = true;
      w.ever_connected = true;
    }
    hb_.Arm(k);
    Emit("spawn", "", -1, k, pid);
    return Status::OK();
  }

  /// Socket transport: wait until every worker slot has attached (said
  /// hello) before the pipeline starts assigning.
  Status WaitForAttach() {
    const double budget_ms =
        std::max(options_.process.task_lease_ms, 1000.0);
    const double start_us = NowUs();
    while (true) {
      M2TD_RETURN_IF_ERROR(robust::CheckCancelled());
      bool all = true;
      for (const WorkerProc& w : workers_) all &= w.ever_connected;
      if (all) return Status::OK();
      if ((NowUs() - start_us) / 1000.0 > budget_ms) {
        int missing = 0;
        for (const WorkerProc& w : workers_) missing += !w.ever_connected;
        return Status::Internal(
            std::to_string(missing) + " of " +
            std::to_string(options_.num_workers) +
            " workers never attached to " + listener_.bound_address());
      }
      std::vector<pollfd> fds;
      fds.push_back(pollfd{listener_.fd(), POLLIN, 0});
      for (const mapreduce::transport::Connection& p : pending_) {
        fds.push_back(pollfd{p.read_fd(), POLLIN, 0});
      }
      const int ready =
          ::poll(fds.data(), static_cast<nfds_t>(fds.size()), 20);
      if (ready < 0 && errno != EINTR) {
        return Status::IOError(std::string("attach poll failed: ") +
                               std::strerror(errno));
      }
      M2TD_RETURN_IF_ERROR(PumpNetwork(nullptr));
      for (WorkerProc& w : workers_) {
        if (w.alive && !w.connected) TryReap(w, nullptr);
      }
    }
  }

  /// Accepts pending sockets and binds the ones that have said hello.
  Status PumpNetwork(StageCtx* ctx) {
    if (!listener_.listening()) return Status::OK();
    while (true) {
      Result<mapreduce::transport::Connection> accepted = listener_.Accept();
      if (!accepted.ok()) {
        if (accepted.status().code() == StatusCode::kNotFound) break;
        return accepted.status();
      }
      pending_.push_back(std::move(*accepted));
    }
    for (auto it = pending_.begin(); it != pending_.end();) {
      std::vector<std::string> frames;
      const Result<bool> open = it->PollFrames(&frames);
      int bound_id = -1;
      bool reject = false;
      std::size_t next_frame = 0;
      for (; next_frame < frames.size(); ++next_frame) {
        std::istringstream in(frames[next_frame]);
        std::string verb;
        int id = -1;
        in >> verb >> id;
        if (verb != "hello" || id < 0 ||
            id >= static_cast<int>(workers_.size())) {
          reject = true;
          break;
        }
        if (!BindConnection(id, std::move(*it))) {
          reject = true;
          break;
        }
        bound_id = id;
        ++next_frame;
        break;
      }
      if (bound_id >= 0) {
        WorkerProc& w = workers_[static_cast<std::size_t>(bound_id)];
        for (; next_frame < frames.size(); ++next_frame) {
          M2TD_RETURN_IF_ERROR(HandleFrame(w, frames[next_frame], ctx));
        }
        it = pending_.erase(it);
        if (w.busy && w.connected) {
          // Re-send the in-flight assignment: the worker either still
          // runs it (duplicate, ignored) or lost it with the connection.
          (void)w.conn.WriteFrame(EncodeTaskFrame(w.current),
                                  options_.process.io_deadline_ms);
        }
      } else if (reject || !open.ok() || !*open) {
        it->Close();
        it = pending_.erase(it);
      } else {
        ++it;
      }
    }
    return Status::OK();
  }

  /// Adopts `conn` as worker `id`'s channel; false when the identity must
  /// not come back (already declared dead, or its lease lapsed).
  bool BindConnection(int id, mapreduce::transport::Connection conn) {
    WorkerProc& w = workers_[static_cast<std::size_t>(id)];
    const double lease_ms = options_.process.task_lease_ms;
    if (w.dead) {
      (void)conn.WriteFrame("quit", 100.0);
      conn.Close();
      return false;
    }
    if (!w.alive) {
      // First attach of an external worker: register the identity.
      w.alive = true;
      hb_.Arm(id);
    } else if (!hb_.ResumeWithinLease(id, lease_ms)) {
      // Beyond the lease: the expiry sweep owns this identity's fate.
      conn.Close();
      return false;
    }
    conn.set_peer("worker" + std::to_string(id));
    w.conn = std::move(conn);
    w.connected = true;
    if (w.ever_connected) {
      stats_.net_reconnects++;
      obs::GetCounter("dist.net.reconnects").Increment();
      Emit("reconnect", w.busy ? w.current.phase : "",
           w.busy ? w.current.index : -1, w.id, w.pid);
    } else {
      w.ever_connected = true;
      stats_.net_connects++;
      Emit("connect", "", -1, w.id, w.pid);
    }
    return true;
  }

  /// Drains every frame the worker's channel has buffered; channel loss
  /// is a disconnect (socket) or a death (pipe).
  Status DrainWorker(WorkerProc& w, StageCtx* ctx) {
    std::vector<std::string> frames;
    const Result<bool> open = w.conn.PollFrames(&frames);
    for (const std::string& frame : frames) {
      M2TD_RETURN_IF_ERROR(HandleFrame(w, frame, ctx));
    }
    if (!open.ok() || !*open) {
      if (w.alive) HandleChannelLoss(w, ctx);
    }
    return Status::OK();
  }

  /// The control channel to `w` broke. Pipes cannot come back, so this is
  /// death; a socket worker stays alive under its heartbeat lease and may
  /// redial (its in-flight task stays leased to it, not reassigned).
  void HandleChannelLoss(WorkerProc& w, StageCtx* ctx) {
    if (!UseSocket()) {
      DeclareDead(w, "death", ctx);
      return;
    }
    if (!w.connected) return;
    w.conn.Close();
    w.connected = false;
    stats_.net_disconnects++;
    obs::GetCounter("dist.net.disconnects").Increment();
    Emit("disconnect", w.busy ? w.current.phase : "",
         w.busy ? w.current.index : -1, w.id, w.pid);
    // If the process is actually gone, don't wait out the lease.
    TryReap(w, ctx);
  }

  /// Non-blocking reap of a spawned worker; on real exit the identity is
  /// dead immediately and its exit status is recorded.
  void TryReap(WorkerProc& w, StageCtx* ctx) {
    if (w.pid < 0 || w.reaped || !w.alive) return;
    int status = 0;
    if (::waitpid(w.pid, &status, WNOHANG) != w.pid) return;
    w.reaped = true;
    RecordExit(w, status);
    DeclareDead(w, "death", ctx);
  }

  /// Folds a worker's wait status into the stats the run report surfaces
  /// (satellite of the malformed-frame exit path).
  void RecordExit(WorkerProc& w, int status) {
    if (!WIFEXITED(status) || WEXITSTATUS(status) == 0) return;
    const int code = WEXITSTATUS(status);
    if (code == dm2td_tasks::kWorkerExitMalformedFrame) {
      stats_.malformed_frame_exits++;
    }
    stats_.worker_exit_details.push_back(
        "worker " + std::to_string(w.id) + " exited " + std::to_string(code) +
        " (" + dm2td_tasks::WorkerExitCodeName(code) + ")");
    M2TD_LOG_WARNING() << "m2td_worker " << w.id << " exited " << code << " ("
                       << dm2td_tasks::WorkerExitCodeName(code) << ")";
  }

  void CloseWorker(WorkerProc& w) {
    w.conn.Close();
    w.connected = false;
    w.alive = false;
    w.busy = false;
    hb_.Disarm(w.id);
    lease_.Disarm(w.id);
  }

  /// SIGKILL + reap + requeue the worker's in-flight task. Death replay
  /// is recovery, not a retry: it never consumes the retry budget.
  void DeclareDead(WorkerProc& w, const char* kind, StageCtx* ctx) {
    if (w.pid >= 0 && !w.reaped) {
      ::kill(w.pid, SIGKILL);
      int status = 0;
      ::waitpid(w.pid, &status, 0);
      w.reaped = true;
      RecordExit(w, status);
    }
    const bool was_busy = w.busy;
    TaskRequest task = w.current;
    CloseWorker(w);
    w.dead = true;
    stats_.worker_deaths++;
    obs::GetCounter("dist.worker_deaths").Increment();
    Emit(kind, was_busy ? task.phase : "", was_busy ? task.index : -1, w.id,
         w.pid);
    if (was_busy && ctx != nullptr) RequeueIfNeeded(std::move(task), ctx);
  }

  /// Requeues a dead worker's task at a fresh attempt — unless the stage
  /// already has its result, or a racing sibling attempt is still running
  /// (speculation makes both possible).
  void RequeueIfNeeded(TaskRequest task, StageCtx* ctx) {
    const TaskKey key{task.phase, task.index};
    if (task.phase == ctx->plan->phase &&
        ctx->done->count(task.index) != 0) {
      return;
    }
    for (const WorkerProc& o : workers_) {
      if (o.busy && o.current.phase == task.phase &&
          o.current.index == task.index) {
        return;
      }
    }
    reassigned_[key]++;
    task.attempt = NextAttempt(key);
    Emit("reassign", task.phase, task.index, -1, -1);
    ctx->pending->push_front(std::move(task));
    stats_.tasks_reassigned++;
    obs::GetCounter("dist.tasks_reassigned").Increment();
  }

  /// Launches racing attempts for stage tasks whose runtime exceeds the
  /// configured quantile of completed siblings. First committed attempt
  /// wins; the commit is atomic and both attempts produce identical
  /// bytes, so the race never affects results.
  void MaybeSpeculate(StageCtx& ctx) {
    const auto& spec = options_.process.speculation;
    if (!spec.enabled) return;
    if (static_cast<int>(ctx.completed_ms->size()) < spec.min_completed) {
      return;
    }
    std::vector<double> sorted = *ctx.completed_ms;
    std::sort(sorted.begin(), sorted.end());
    const double q = std::clamp(spec.quantile, 0.0, 1.0);
    const double quantile_ms =
        sorted[static_cast<std::size_t>(q * (sorted.size() - 1))];
    const double threshold_ms =
        std::max(spec.floor_ms, spec.multiplier * quantile_ms);
    for (WorkerProc& w : workers_) {
      if (!w.alive || !w.busy) continue;
      if (w.current.phase != ctx.plan->phase) continue;
      const TaskKey key{w.current.phase, w.current.index};
      if (ctx.done->count(w.current.index) != 0 ||
          ctx.spec_attempt->count(key) != 0) {
        continue;
      }
      if ((NowUs() - w.assign_us) / 1000.0 <= threshold_ms) continue;
      WorkerProc* idle = nullptr;
      for (WorkerProc& v : workers_) {
        if (v.alive && v.connected && !v.busy && v.id != w.id) {
          idle = &v;
          break;
        }
      }
      if (idle == nullptr) return;
      TaskRequest task = w.current;
      task.attempt = NextAttempt(key);
      const Status sent = idle->conn.WriteFrame(
          EncodeTaskFrame(task), options_.process.io_deadline_ms);
      if (!sent.ok()) {
        HandleChannelLoss(*idle, &ctx);
        continue;
      }
      idle->busy = true;
      idle->current = std::move(task);
      idle->assign_us = NowUs();
      lease_.Arm(idle->id);
      (*ctx.spec_attempt)[key] = idle->current.attempt;
      stats_.speculative_launched++;
      obs::GetCounter("dist.speculative_launched").Increment();
      Emit("speculate", key.first, key.second, idle->id, idle->pid);
    }
  }

  /// The winner of (phase, index) just reported: cancel every other
  /// attempt still in flight.
  void CancelLosers(const std::string& phase, int index,
                    const WorkerProc& winner) {
    for (WorkerProc& o : workers_) {
      if (o.id == winner.id || !o.busy || !o.connected) continue;
      if (o.current.phase != phase || o.current.index != index) continue;
      (void)o.conn.WriteFrame("cancel " + phase + " " +
                                  std::to_string(index) + " " +
                                  std::to_string(o.current.attempt),
                              options_.process.io_deadline_ms);
      stats_.speculative_cancelled++;
      obs::GetCounter("dist.speculative_cancelled").Increment();
      Emit("speculate_cancelled", phase, index, o.id, o.pid);
    }
  }

  Status HandleFrame(WorkerProc& w, const std::string& frame,
                     StageCtx* ctx) {
    std::istringstream in(frame.substr(0, frame.find('\n')));
    std::string verb;
    in >> verb;
    if (verb == "hb" || verb == "hello") {
      hb_.Beat(w.id);
      stats_.heartbeats++;
      obs::GetCounter("dist.heartbeats").Increment();
      return Status::OK();
    }
    if (ctx == nullptr) {
      // Attach window: task traffic cannot exist yet; drop defensively.
      return Status::OK();
    }
    const StagePlan& plan = *ctx->plan;
    if (verb == "done") {
      std::string phase;
      int index = 0, attempt = 0;
      if (!(in >> phase >> index >> attempt)) {
        return Status::Internal("malformed done frame '" + frame + "'");
      }
      const double elapsed_ms = (NowUs() - w.assign_us) / 1000.0;
      w.busy = false;
      lease_.Disarm(w.id);
      Emit("done", phase, index, w.id, w.pid);
      if (phase == plan.phase) {
        const bool first = ctx->done->insert(index).second;
        if (first) {
          ctx->completed_ms->push_back(elapsed_ms);
          const TaskKey key{phase, index};
          auto spec = ctx->spec_attempt->find(key);
          if (spec != ctx->spec_attempt->end()) {
            if (attempt == spec->second) {
              stats_.speculative_won++;
              obs::GetCounter("dist.speculative_won").Increment();
              Emit("speculate_won", phase, index, w.id, w.pid);
            }
            CancelLosers(phase, index, w);
          }
        }
        return Status::OK();
      }
      // A re-executed map task finished: unblock its dependents.
      const TaskKey culprit{phase, index};
      ctx->reexec_inflight->erase(culprit);
      auto it = ctx->blocked->begin();
      while (it != ctx->blocked->end()) {
        if (it->second == culprit) {
          TaskRequest task = std::move(it->first);
          task.attempt = NextAttempt(TaskKey{task.phase, task.index});
          ctx->pending->push_back(std::move(task));
          it = ctx->blocked->erase(it);
        } else {
          ++it;
        }
      }
      return Status::OK();
    }
    if (verb == "fail") {
      std::string phase;
      int index = 0, attempt = 0, code = 0;
      if (!(in >> phase >> index >> attempt >> code)) {
        return Status::Internal("malformed fail frame '" + frame + "'");
      }
      const std::size_t newline = frame.find('\n');
      const std::string message =
          newline == std::string::npos ? "" : frame.substr(newline + 1);
      w.busy = false;
      lease_.Disarm(w.id);
      Emit("fail", phase, index, w.id, w.pid);
      const Status failure(static_cast<StatusCode>(code), message);

      // A cancelled speculative loser acknowledging its cancel, or a
      // stale attempt of a task the stage already has: just free the
      // worker.
      if (robust::IsCancellation(failure)) return Status::OK();
      if (phase == plan.phase && ctx->done->count(index) != 0) {
        return Status::OK();
      }

      if (failure.code() == StatusCode::kDataLoss) {
        return HandleDataLoss(phase, index, message, ctx, failure);
      }
      // Transient task failure: consumes the per-task retry budget.
      const TaskKey key{phase, index};
      if (robust::IsRetryable(failure) &&
          retries_[key] < options_.retry.max_retries) {
        retries_[key]++;
        stats_.task_retries++;
        obs::GetCounter("dist.task_retries").Increment();
        TaskRequest task = RebuildTask(phase, index, plan);
        task.attempt = NextAttempt(key);
        ctx->pending->push_back(std::move(task));
        return Status::OK();
      }
      return failure;
    }
    return Status::Internal("unknown worker frame '" + frame + "'");
  }

  /// A reducer hit a corrupt committed shuffle blob. The blob names its
  /// producer in a "[task <phase>:<m>]" marker: re-execute that map
  /// task (its fresh commit atomically replaces the poisoned one) and
  /// hold the reducer until it lands — never retry the poisoned bytes.
  Status HandleDataLoss(const std::string& phase, int index,
                        const std::string& message, StageCtx* ctx,
                        const Status& failure) {
    const StagePlan& plan = *ctx->plan;
    const std::size_t open = message.rfind("[task ");
    const std::size_t close =
        open == std::string::npos ? std::string::npos : message.find(']', open);
    std::string culprit_phase;
    int culprit_index = -1;
    if (close != std::string::npos) {
      const std::string context =
          message.substr(open + 6, close - open - 6);
      const std::size_t colon = context.find(':');
      if (colon != std::string::npos) {
        culprit_phase = context.substr(0, colon);
        culprit_index = std::atoi(context.c_str() + colon + 1);
      }
    }
    if (plan.map_prototype == nullptr || culprit_index < 0 ||
        culprit_phase != plan.map_prototype->phase) {
      // No replayable producer (job input blob, or unparseable): the data
      // is gone for good.
      return failure;
    }
    const TaskKey culprit{culprit_phase, culprit_index};
    M2TD_LOG_WARNING() << "shuffle blob of " << culprit_phase << ":"
                     << culprit_index
                     << " failed its integrity check; re-executing the map "
                        "task (reducer " << phase << ":" << index << " held)";
    ctx->blocked->push_back({RebuildTask(phase, index, plan), culprit});
    if (ctx->reexec_inflight->insert(culprit).second) {
      // The poisoned commit is deliberately left in place: other
      // reducers still reading it must see a commit (their untouched
      // shard blobs are fine; clearing would fail them with NotFound
      // mid-read). The re-executed attempt atomically replaces it via
      // CommitTask's rename.
      TaskRequest task = *plan.map_prototype;
      task.index = culprit_index;
      task.attempt = NextAttempt(culprit);
      ctx->pending->push_front(std::move(task));
      stats_.map_reexecutions++;
      obs::GetCounter("dist.map_reexecutions").Increment();
      Emit("map_reexec", culprit_phase, culprit_index, -1, -1);
    }
    return Status::OK();
  }

  /// The stage-task or map-prototype TaskRequest for (phase, index).
  TaskRequest RebuildTask(const std::string& phase, int index,
                          const StagePlan& plan) const {
    TaskRequest task = phase == plan.phase            ? plan.prototype
                       : plan.map_prototype != nullptr ? *plan.map_prototype
                                                       : plan.prototype;
    task.phase = phase;
    task.index = index;
    return task;
  }

  void KillAll() {
    for (WorkerProc& w : workers_) {
      if (!w.alive) continue;
      if (w.pid >= 0 && !w.reaped) {
        ::kill(w.pid, SIGKILL);
        int status = 0;
        ::waitpid(w.pid, &status, 0);
        w.reaped = true;
      }
      CloseWorker(w);
    }
    for (mapreduce::transport::Connection& p : pending_) p.Close();
    pending_.clear();
    listener_.Close();
  }

  const DM2tdOptions& options_;
  const io::ShuffleStore& store_;
  std::string job_dir_;
  std::string worker_binary_;
  std::vector<WorkerProc> workers_;
  mapreduce::transport::Listener listener_;
  /// Accepted sockets that have not yet identified themselves ("hello").
  std::vector<mapreduce::transport::Connection> pending_;
  robust::HeartbeatMonitor hb_;     // worker heartbeats
  robust::HeartbeatMonitor lease_;  // in-flight task leases
  DistStats stats_;
  std::map<TaskKey, int> attempts_;
  std::map<TaskKey, int> reassigned_;
  std::map<TaskKey, int> retries_;
};

// ----------------------------------------------------- input preparation

/// Contiguous split m of [0, size) into `splits` ranges — the same
/// arithmetic the thread engine uses for its map shards, so blob
/// concatenation in split order reproduces the global input order.
std::pair<std::size_t, std::size_t> SplitRange(std::size_t size, int splits,
                                               int m) {
  const std::size_t begin =
      size * static_cast<std::size_t>(m) / static_cast<std::size_t>(splits);
  const std::size_t end = size * (static_cast<std::size_t>(m) + 1) /
                          static_cast<std::size_t>(splits);
  return {begin, end};
}

Status WriteCellSplits(const io::ShuffleStore& store,
                       const std::vector<TensorCell>& cells, int splits) {
  for (int m = 0; m < splits; ++m) {
    const auto [begin, end] = SplitRange(cells.size(), splits, m);
    const std::vector<TensorCell> part(cells.begin() + begin,
                                       cells.begin() + end);
    M2TD_RETURN_IF_ERROR(store.WriteBlob(
        "input/cells/split" + std::to_string(m),
        dm2td_tasks::EncodeCells(part)));
  }
  return Status::OK();
}

Status WriteJoinSplits(const io::ShuffleStore& store,
                       const std::vector<JoinCell>& cells, int mode,
                       int splits) {
  for (int m = 0; m < splits; ++m) {
    const auto [begin, end] = SplitRange(cells.size(), splits, m);
    const std::vector<JoinCell> part(cells.begin() + begin,
                                     cells.begin() + end);
    M2TD_RETURN_IF_ERROR(store.WriteBlob(
        "input/p3_" + std::to_string(mode) + "/split" + std::to_string(m),
        dm2td_tasks::EncodeJoinCells(part)));
  }
  return Status::OK();
}

/// Reads the committed "data" blob of every reduce task of `phase`, in
/// task order.
Result<std::vector<std::string>> GatherReduceOutputs(
    const io::ShuffleStore& store, const std::string& phase, int shards) {
  std::vector<std::string> payloads;
  payloads.reserve(static_cast<std::size_t>(shards));
  for (int r = 0; r < shards; ++r) {
    M2TD_ASSIGN_OR_RETURN(io::ShuffleStore::TaskCommit commit,
                          store.ReadCommit(phase, r));
    const std::string name =
        io::ShuffleStore::BlobName(phase, r, commit.attempt, "data");
    M2TD_ASSIGN_OR_RETURN(
        std::string bytes,
        store.ReadBlob(name, phase + ":" + std::to_string(r)));
    payloads.push_back(std::move(bytes));
  }
  return payloads;
}

// ------------------------------------------------------ worker obs merge

/// Folds `worker<k>.metrics.json` counter values into this process's
/// registry (minimal scan of the compact JSON WriteMetricsJson emits).
void MergeWorkerCounters(const std::string& path) {
  std::ifstream in(path);
  if (!in) return;
  std::string json((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  const std::size_t begin = json.find("\"counters\":{");
  if (begin == std::string::npos) return;
  std::size_t pos = begin + 12;
  const std::size_t end = json.find('}', pos);
  while (pos < end) {
    const std::size_t key_open = json.find('"', pos);
    if (key_open == std::string::npos || key_open >= end) break;
    const std::size_t key_close = json.find('"', key_open + 1);
    if (key_close == std::string::npos || key_close >= end) break;
    const std::string name = json.substr(key_open + 1,
                                         key_close - key_open - 1);
    const std::size_t colon = json.find(':', key_close);
    if (colon == std::string::npos || colon >= end) break;
    const std::uint64_t value = std::strtoull(
        json.c_str() + colon + 1, nullptr, 10);
    if (value > 0) obs::GetCounter(name).Add(value);
    pos = json.find(',', colon);
    if (pos == std::string::npos) break;
    ++pos;
  }
}

/// Re-records `worker<k>.spans.tsv` into the coordinator's tracer on a
/// per-worker thread-id band, so one merged Chrome trace shows every
/// worker as its own track group (see docs/OBSERVABILITY.md).
void MergeWorkerSpans(const std::string& path, int worker_id) {
  if (!obs::TracingEnabled()) return;
  std::ifstream in(path);
  if (!in) return;
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream fields(line);
    obs::SpanRecord record;
    std::uint32_t tid = 0;
    if (!(std::getline(fields, record.name, '\t') &&
          (fields >> record.start_us >> record.duration_us >>
           record.cpu_us >> tid >> record.depth))) {
      continue;
    }
    record.thread_id =
        1000 + static_cast<std::uint32_t>(worker_id) * 16 + (tid % 16);
    obs::Tracer::Get().Record(std::move(record));
  }
}

void MergeWorkerObs(const std::string& job_dir, int workers) {
  for (int k = 0; k < workers; ++k) {
    const std::string base = job_dir + "/worker" + std::to_string(k);
    MergeWorkerCounters(base + ".metrics.json");
    MergeWorkerSpans(base + ".spans.tsv", k);
  }
}

// --------------------------------------------------------- the pipeline

Result<DM2tdResult> RunPipeline(Coordinator& coord,
                                const io::ShuffleStore& store,
                                const SubEnsembles& subs,
                                const PfPartition& partition,
                                const std::vector<std::uint64_t>& full_shape,
                                const DM2tdOptions& options,
                                const std::vector<TensorCell>& all_cells) {
  const std::size_t num_modes = full_shape.size();
  const int shards = options.num_shards;
  DM2tdResult result;

  obs::ObsSpan total_span("dm2td_decompose", obs::ObsSpan::kAlwaysTime);
  total_span.Annotate("num_workers",
                      static_cast<std::int64_t>(options.num_workers));
  total_span.Annotate("num_shards", static_cast<std::int64_t>(shards));
  total_span.Annotate("backend", "process");

  // ---------- Phase 1: parallel sub-tensor decomposition. ----------
  obs::ObsSpan sub_span("sub_decompose", obs::ObsSpan::kAlwaysTime);
  TaskRequest p1map;
  p1map.is_map = true;
  p1map.phase = "p1map";
  TaskRequest p1red;
  p1red.is_map = false;
  p1red.phase = "p1red";
  {
    obs::ObsSpan map_span("dist_map", obs::ObsSpan::kAlwaysTime);
    M2TD_RETURN_IF_ERROR(coord.RunStage({"p1map", shards, p1map, nullptr}));
    result.phase1.map_seconds = map_span.End();
  }
  {
    obs::ObsSpan reduce_span("dist_reduce", obs::ObsSpan::kAlwaysTime);
    M2TD_RETURN_IF_ERROR(coord.RunStage({"p1red", shards, p1red, &p1map}));
    result.phase1.reduce_seconds = reduce_span.End();
  }
  result.phase1.intermediate_pairs = all_cells.size();

  obs::ObsSpan gather1_span("dist_gather", obs::ObsSpan::kAlwaysTime);
  M2TD_ASSIGN_OR_RETURN(std::vector<std::string> gram_payloads,
                        GatherReduceOutputs(store, "p1red", shards));
  std::unordered_map<std::uint64_t, linalg::Matrix> grams;
  for (const std::string& payload : gram_payloads) {
    M2TD_ASSIGN_OR_RETURN(std::vector<GramPiece> pieces,
                          dm2td_tasks::DecodeGramPieces(payload));
    for (GramPiece& piece : pieces) {
      result.phase1.output_records++;
      grams[static_cast<std::uint64_t>(piece.kappa) * 64 + piece.sub_mode] =
          std::move(piece.gram);
    }
  }
  M2TD_ASSIGN_OR_RETURN(std::vector<linalg::Matrix> factors,
                        dm2td_internal::AssembleFactors(grams, partition,
                                                        full_shape, options));
  result.phase1.shuffle_seconds = gather1_span.End();
  sub_span.End();

  // ---------- Phase 2: parallel JE-stitching. ----------
  obs::ObsSpan stitch_span("stitch", obs::ObsSpan::kAlwaysTime);
  TaskRequest p2map;
  p2map.is_map = true;
  p2map.phase = "p2map";
  TaskRequest p2red;
  p2red.is_map = false;
  p2red.phase = "p2red";
  {
    obs::ObsSpan map_span("dist_map", obs::ObsSpan::kAlwaysTime);
    M2TD_RETURN_IF_ERROR(coord.RunStage({"p2map", shards, p2map, nullptr}));
    result.phase2.map_seconds = map_span.End();
  }
  {
    obs::ObsSpan reduce_span("dist_reduce", obs::ObsSpan::kAlwaysTime);
    M2TD_RETURN_IF_ERROR(coord.RunStage({"p2red", shards, p2red, &p2map}));
    result.phase2.reduce_seconds = reduce_span.End();
  }
  result.phase2.intermediate_pairs = all_cells.size();

  obs::ObsSpan gather2_span("dist_gather", obs::ObsSpan::kAlwaysTime);
  M2TD_ASSIGN_OR_RETURN(std::vector<std::string> join_payloads,
                        GatherReduceOutputs(store, "p2red", shards));
  std::vector<JoinCell> join_cells;
  for (const std::string& payload : join_payloads) {
    M2TD_ASSIGN_OR_RETURN(std::vector<JoinCell> part,
                          dm2td_tasks::DecodeJoinCells(payload));
    join_cells.insert(join_cells.end(),
                      std::make_move_iterator(part.begin()),
                      std::make_move_iterator(part.end()));
  }
  dm2td_internal::SortJoinCells(&join_cells);
  result.phase2.output_records = join_cells.size();
  result.phase2.shuffle_seconds = gather2_span.End();
  result.join_nnz = join_cells.size();
  stitch_span.Annotate("join_nnz", result.join_nnz);
  stitch_span.End();

  // ---------- Phase 3: one map+reduce stage pair per mode. ----------
  obs::ObsSpan core_span("core_recovery", obs::ObsSpan::kAlwaysTime);
  for (std::size_t n = 0; n < num_modes; ++n) {
    M2TD_RETURN_IF_ERROR(
        store.WriteBlob("input/factor" + std::to_string(n),
                        dm2td_tasks::EncodeMatrix(factors[n])));
  }
  std::vector<std::uint64_t> current_shape = full_shape;
  for (std::size_t n = 0; n < num_modes; ++n) {
    obs::ObsSpan ttm_span("ttm_job", obs::ObsSpan::kAlwaysTime);
    ttm_span.Annotate("mode", static_cast<std::uint64_t>(n));
    M2TD_RETURN_IF_ERROR(WriteJoinSplits(store, join_cells,
                                         static_cast<int>(n), shards));
    const std::string suffix = "_" + std::to_string(n);
    TaskRequest p3map;
    p3map.is_map = true;
    p3map.phase = "p3map" + suffix;
    p3map.mode = static_cast<int>(n);
    p3map.shape = current_shape;
    TaskRequest p3red = p3map;
    p3red.is_map = false;
    p3red.phase = "p3red" + suffix;
    {
      obs::ObsSpan map_span("dist_map", obs::ObsSpan::kAlwaysTime);
      M2TD_RETURN_IF_ERROR(
          coord.RunStage({p3map.phase, shards, p3map, nullptr}));
      result.phase3.map_seconds += map_span.End();
    }
    {
      obs::ObsSpan reduce_span("dist_reduce", obs::ObsSpan::kAlwaysTime);
      M2TD_RETURN_IF_ERROR(
          coord.RunStage({p3red.phase, shards, p3red, &p3map}));
      result.phase3.reduce_seconds += reduce_span.End();
    }
    result.phase3.intermediate_pairs += join_cells.size();

    obs::ObsSpan gather3_span("dist_gather", obs::ObsSpan::kAlwaysTime);
    M2TD_ASSIGN_OR_RETURN(std::vector<std::string> payloads,
                          GatherReduceOutputs(store, p3red.phase, shards));
    join_cells.clear();
    for (const std::string& payload : payloads) {
      M2TD_ASSIGN_OR_RETURN(std::vector<JoinCell> part,
                            dm2td_tasks::DecodeJoinCells(payload));
      join_cells.insert(join_cells.end(),
                        std::make_move_iterator(part.begin()),
                        std::make_move_iterator(part.end()));
    }
    dm2td_internal::SortJoinCells(&join_cells);
    result.phase3.shuffle_seconds += gather3_span.End();
    result.phase3.output_records = join_cells.size();
    current_shape[n] = factors[n].cols();
  }

  tensor::DenseTensor core(current_shape);
  for (const JoinCell& cell : join_cells) {
    core.at(cell.idx) += cell.value;
  }
  result.tucker.core = std::move(core);
  result.tucker.factors = std::move(factors);
  (void)subs;
  return result;
}

}  // namespace

Result<std::string> DefaultWorkerBinary(const std::string& configured) {
  if (!configured.empty()) {
    if (fs::exists(configured)) return configured;
    return Status::NotFound("worker binary '" + configured + "' not found");
  }
  if (const char* env = std::getenv("M2TD_WORKER_BIN")) {
    if (fs::exists(env)) return std::string(env);
  }
  std::error_code ec;
  const fs::path self = fs::read_symlink("/proc/self/exe", ec);
  if (!ec) {
    for (const fs::path candidate :
         {self.parent_path() / "m2td_worker",
          self.parent_path() / ".." / "tools" / "m2td_worker"}) {
      if (fs::exists(candidate)) return candidate.string();
    }
  }
  return Status::NotFound(
      "m2td_worker binary not found: set DistProcessOptions::worker_binary "
      "or $M2TD_WORKER_BIN");
}

Result<DM2tdResult> DM2tdDecomposeProcess(
    const SubEnsembles& subs, const PfPartition& partition,
    const std::vector<std::uint64_t>& full_shape,
    const DM2tdOptions& options) {
  M2TD_ASSIGN_OR_RETURN(std::string worker_binary,
                        DefaultWorkerBinary(options.process.worker_binary));

  std::string job_dir = options.process.job_dir;
  bool created_job_dir = false;
  if (job_dir.empty()) {
    std::string pattern =
        (fs::temp_directory_path() / "m2td_dist_XXXXXX").string();
    if (::mkdtemp(pattern.data()) == nullptr) {
      return Status::IOError(std::string("mkdtemp failed: ") +
                             std::strerror(errno));
    }
    job_dir = pattern;
    created_job_dir = true;
  }
  M2TD_ASSIGN_OR_RETURN(io::ShuffleStore store,
                        io::ShuffleStore::Create(job_dir));

  // Job config + input blobs.
  const JobGeometry geometry =
      dm2td_internal::MakeGeometry(partition, full_shape);
  DistJobConfig config;
  config.full_shape = full_shape;
  config.shape1 = subs.x1.shape();
  config.shape2 = subs.x2.shape();
  config.pivot_modes = partition.pivot_modes;
  config.side1_modes = partition.side1_modes;
  config.side2_modes = partition.side2_modes;
  config.shards = options.num_shards;
  config.zero_join = options.stitch.zero_join;
  M2TD_RETURN_IF_ERROR(
      dm2td_tasks::SaveJobConfig(job_dir + "/job.m2td", config));

  std::vector<TensorCell> all_cells =
      dm2td_internal::CollectCells(subs.x1, 1);
  {
    std::vector<TensorCell> cells2 =
        dm2td_internal::CollectCells(subs.x2, 2);
    all_cells.insert(all_cells.end(),
                     std::make_move_iterator(cells2.begin()),
                     std::make_move_iterator(cells2.end()));
  }
  M2TD_RETURN_IF_ERROR(WriteCellSplits(store, all_cells, options.num_shards));
  if (options.stitch.zero_join) {
    std::vector<std::uint64_t> cand1, cand2;
    dm2td_internal::GatherZeroJoinCandidates(all_cells, geometry, &cand1,
                                             &cand2);
    M2TD_RETURN_IF_ERROR(
        store.WriteBlob("input/cand1", dm2td_tasks::EncodeU64List(cand1)));
    M2TD_RETURN_IF_ERROR(
        store.WriteBlob("input/cand2", dm2td_tasks::EncodeU64List(cand2)));
  }

  SigpipeGuard sigpipe_guard;
  // Coordinator-side net faults are armed for the run's duration only.
  struct NetFaultScope {
    ~NetFaultScope() { if (armed) robust::DisarmAllNetFaults(); }
    bool armed = false;
  } netfault_scope;
  if (!options.process.net_faults.empty()) {
    M2TD_RETURN_IF_ERROR(
        robust::ArmNetFaultsFromString(options.process.net_faults));
    netfault_scope.armed = true;
  }
  Result<DM2tdResult> outcome = [&]() -> Result<DM2tdResult> {
    Coordinator coord(options, store, job_dir, worker_binary);
    M2TD_RETURN_IF_ERROR(coord.SpawnWorkers());
    Result<DM2tdResult> result = RunPipeline(
        coord, store, subs, partition, full_shape, options, all_cells);
    coord.Drain();
    if (result.ok()) result->dist = coord.stats();
    return result;
  }();

  // Workers have exited: fold their metrics/spans into this process.
  MergeWorkerObs(job_dir, options.num_workers);

  if (outcome.ok() && created_job_dir && !options.process.keep_job_dir) {
    std::error_code ec;
    fs::remove_all(job_dir, ec);
  }
  return outcome;
}

}  // namespace m2td::core
