#include "core/je_stitch.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel/parallel_for.h"
#include "util/logging.h"

namespace m2td::core {

namespace {

struct SideEntry {
  std::uint64_t side_key;
  double value;
};

/// Per-pivot-configuration group of one side's simulations.
using PivotGroups =
    std::unordered_map<std::uint64_t, std::vector<SideEntry>>;

std::vector<std::uint64_t> ModeDims(
    const std::vector<std::uint64_t>& full_shape,
    const std::vector<std::size_t>& modes) {
  std::vector<std::uint64_t> dims;
  dims.reserve(modes.size());
  for (std::size_t m : modes) dims.push_back(full_shape[m]);
  return dims;
}

/// Groups a sub-tensor's entries by pivot configuration. The sub-tensor's
/// first k modes are the pivots, the rest the side's free modes.
PivotGroups GroupByPivot(const tensor::SparseTensor& sub, std::size_t k) {
  PivotGroups groups;
  const std::size_t modes = sub.num_modes();
  for (std::uint64_t e = 0; e < sub.NumNonZeros(); ++e) {
    std::uint64_t pivot_key = 0;
    for (std::size_t m = 0; m < k; ++m) {
      pivot_key = pivot_key * sub.dim(m) + sub.Index(m, e);
    }
    std::uint64_t side_key = 0;
    for (std::size_t m = k; m < modes; ++m) {
      side_key = side_key * sub.dim(m) + sub.Index(m, e);
    }
    groups[pivot_key].push_back(SideEntry{side_key, sub.Value(e)});
  }
  return groups;
}

/// Writes the decoded `key` over `dims` into `out` at the positions given
/// by `modes`.
void ScatterKey(std::uint64_t key, const std::vector<std::uint64_t>& dims,
                const std::vector<std::size_t>& modes,
                std::vector<std::uint32_t>* out) {
  for (std::size_t i = dims.size(); i-- > 0;) {
    (*out)[modes[i]] = static_cast<std::uint32_t>(key % dims[i]);
    key /= dims[i];
  }
}

/// Appends every entry of `src` to `dst` in entry order.
void AppendAll(tensor::SparseTensor& dst, const tensor::SparseTensor& src) {
  std::vector<std::uint32_t> idx(src.num_modes());
  for (std::uint64_t e = 0; e < src.NumNonZeros(); ++e) {
    for (std::size_t m = 0; m < src.num_modes(); ++m) idx[m] = src.Index(m, e);
    dst.AppendEntry(idx, src.Value(e));
  }
}

/// Runs `emit_for_key` over `keys` in parallel chunks, each chunk
/// appending into a chunk-local SparseTensor, and concatenates the local
/// tensors in ascending chunk order. Chunks are contiguous, in-order
/// slices of `keys`, so the concatenated append sequence is exactly the
/// serial one — identical at any thread count and for any chunking.
tensor::SparseTensor StitchOverKeys(
    const std::vector<std::uint64_t>& keys,
    const std::vector<std::uint64_t>& full_shape,
    const std::function<void(std::uint64_t key, tensor::SparseTensor& local,
                             std::vector<std::uint32_t>& indices)>&
        emit_for_key) {
  return parallel::ParallelReduce<tensor::SparseTensor>(
      0, keys.size(), 0, tensor::SparseTensor(full_shape),
      [&](std::uint64_t kb, std::uint64_t ke) {
        tensor::SparseTensor local(full_shape);
        std::vector<std::uint32_t> indices(full_shape.size());
        for (std::uint64_t i = kb; i < ke; ++i) {
          emit_for_key(keys[static_cast<std::size_t>(i)], local, indices);
        }
        return local;
      },
      [](tensor::SparseTensor& acc, tensor::SparseTensor&& local) {
        AppendAll(acc, local);
      },
      "je_stitch_join");
}

}  // namespace

Result<tensor::SparseTensor> JeStitch(
    const SubEnsembles& subs, const PfPartition& partition,
    const std::vector<std::uint64_t>& full_shape,
    const StitchOptions& options) {
  if (partition.NumModes() != full_shape.size()) {
    return Status::InvalidArgument("partition does not match full shape");
  }
  const std::size_t k = partition.pivot_modes.size();
  if (subs.x1.num_modes() != k + partition.side1_modes.size() ||
      subs.x2.num_modes() != k + partition.side2_modes.size()) {
    return Status::InvalidArgument(
        "sub-tensor mode counts do not match the partition");
  }
  if (!subs.x1.IsSorted() || !subs.x2.IsSorted()) {
    return Status::InvalidArgument("JeStitch requires coalesced sub-tensors");
  }

  obs::ObsSpan span("je_stitch");
  span.Annotate("x1_nnz", subs.x1.NumNonZeros());
  span.Annotate("x2_nnz", subs.x2.NumNonZeros());
  span.Annotate("zero_join", options.zero_join ? "true" : "false");
  static obs::Counter& stitched_cells =
      obs::GetCounter("core.stitched_join_cells");
  static obs::Histogram& join_nnz_hist =
      obs::GetHistogram("core.join_nnz_per_stitch");

  const std::vector<std::uint64_t> pivot_dims =
      ModeDims(full_shape, partition.pivot_modes);
  const std::vector<std::uint64_t> side1_dims =
      ModeDims(full_shape, partition.side1_modes);
  const std::vector<std::uint64_t> side2_dims =
      ModeDims(full_shape, partition.side2_modes);

  PivotGroups groups1 = GroupByPivot(subs.x1, k);
  PivotGroups groups2 = GroupByPivot(subs.x2, k);

  if (!options.zero_join) {
    // Pivot keys in map iteration order; the chunked scan preserves this
    // order, so the appended entry sequence matches the serial loop.
    std::vector<std::uint64_t> pivot_keys;
    pivot_keys.reserve(groups1.size());
    for (const auto& [pivot_key, list1] : groups1) {
      pivot_keys.push_back(pivot_key);
    }
    tensor::SparseTensor join = StitchOverKeys(
        pivot_keys, full_shape,
        [&](std::uint64_t pivot_key, tensor::SparseTensor& local,
            std::vector<std::uint32_t>& indices) {
          auto it2 = groups2.find(pivot_key);
          if (it2 == groups2.end()) return;
          const std::vector<SideEntry>& list1 = groups1.at(pivot_key);
          ScatterKey(pivot_key, pivot_dims, partition.pivot_modes, &indices);
          for (const SideEntry& e1 : list1) {
            ScatterKey(e1.side_key, side1_dims, partition.side1_modes,
                       &indices);
            for (const SideEntry& e2 : it2->second) {
              ScatterKey(e2.side_key, side2_dims, partition.side2_modes,
                         &indices);
              local.AppendEntry(indices, 0.5 * (e1.value + e2.value));
            }
          }
        });
    join.SortAndCoalesce(tensor::CoalescePolicy::kMean);
    span.Annotate("join_nnz", join.NumNonZeros());
    stitched_cells.Add(join.NumNonZeros());
    join_nnz_hist.Observe(join.NumNonZeros());
    return join;
  }

  // Zero-join: candidate free configurations are those selected anywhere in
  // the respective sub-ensemble; a pair joins if either member exists.
  std::unordered_set<std::uint64_t> cand1_set, cand2_set;
  for (const auto& [pivot_key, list] : groups1) {
    for (const SideEntry& e : list) cand1_set.insert(e.side_key);
  }
  for (const auto& [pivot_key, list] : groups2) {
    for (const SideEntry& e : list) cand2_set.insert(e.side_key);
  }
  std::vector<std::uint64_t> cand1(cand1_set.begin(), cand1_set.end());
  std::vector<std::uint64_t> cand2(cand2_set.begin(), cand2_set.end());
  std::sort(cand1.begin(), cand1.end());
  std::sort(cand2.begin(), cand2.end());

  std::unordered_set<std::uint64_t> pivot_union;
  for (const auto& [pivot_key, list] : groups1) pivot_union.insert(pivot_key);
  for (const auto& [pivot_key, list] : groups2) pivot_union.insert(pivot_key);
  std::vector<std::uint64_t> union_keys(pivot_union.begin(),
                                        pivot_union.end());

  tensor::SparseTensor join = StitchOverKeys(
      union_keys, full_shape,
      [&](std::uint64_t pivot_key, tensor::SparseTensor& local,
          std::vector<std::uint32_t>& indices) {
        ScatterKey(pivot_key, pivot_dims, partition.pivot_modes, &indices);
        // Per-pivot lookup tables.
        std::unordered_map<std::uint64_t, double> lookup1, lookup2;
        if (auto it = groups1.find(pivot_key); it != groups1.end()) {
          for (const SideEntry& e : it->second) lookup1[e.side_key] = e.value;
        }
        if (auto it = groups2.find(pivot_key); it != groups2.end()) {
          for (const SideEntry& e : it->second) lookup2[e.side_key] = e.value;
        }
        for (std::uint64_t key1 : cand1) {
          const auto v1 = lookup1.find(key1);
          ScatterKey(key1, side1_dims, partition.side1_modes, &indices);
          for (std::uint64_t key2 : cand2) {
            const auto v2 = lookup2.find(key2);
            if (v1 == lookup1.end() && v2 == lookup2.end()) continue;
            const double a = (v1 != lookup1.end()) ? v1->second : 0.0;
            const double b = (v2 != lookup2.end()) ? v2->second : 0.0;
            ScatterKey(key2, side2_dims, partition.side2_modes, &indices);
            local.AppendEntry(indices, 0.5 * (a + b));
          }
        }
      });
  join.SortAndCoalesce(tensor::CoalescePolicy::kMean);
  span.Annotate("join_nnz", join.NumNonZeros());
  stitched_cells.Add(join.NumNonZeros());
  join_nnz_hist.Observe(join.NumNonZeros());
  return join;
}

}  // namespace m2td::core
