#ifndef M2TD_CORE_PIVOT_SELECTION_H_
#define M2TD_CORE_PIVOT_SELECTION_H_

#include <cstdint>
#include <vector>

#include "ensemble/simulation_model.h"
#include "util/result.h"

namespace m2td::core {

/// Alignment score of one candidate pivot mode.
struct PivotScore {
  std::size_t mode = 0;
  /// Subspace alignment of the two sides' pivot factor matrices:
  /// ||U1^T U2||_F^2 / r in [0, 1]. 1 means identical pivot subspaces —
  /// the stitched factors will be coherent; near 0 means the two
  /// sub-systems see unrelated pivot behavior.
  double alignment = 0.0;
  /// Cells spent probing this candidate.
  std::uint64_t probe_cells = 0;
};

/// Options for the pivot-ranking probe.
struct PivotSelectionOptions {
  /// Factor rank used for the alignment comparison.
  std::uint64_t rank = 3;
  /// Fraction of each candidate's P x E cross product simulated for the
  /// probe (keep small: the probe should cost a fraction of the real
  /// ensemble).
  double probe_density = 0.2;
  std::uint64_t seed = 23;
};

/// \brief Ranks every mode of the model's space as a pivot candidate
/// (extension; the paper's Table VIII varies the pivot manually and finds
/// all choices workable).
///
/// For each candidate, a cheap probe sub-ensemble pair is simulated
/// (default split of the remaining modes) and the two sides' pivot factor
/// matrices are compared by subspace alignment — no ground truth needed,
/// so this can run *before* committing the real budget. Returns scores
/// sorted by decreasing alignment.
Result<std::vector<PivotScore>> RankPivotChoices(
    ensemble::SimulationModel* model,
    const PivotSelectionOptions& options = {});

}  // namespace m2td::core

#endif  // M2TD_CORE_PIVOT_SELECTION_H_
