#ifndef M2TD_CORE_M2TD_H_
#define M2TD_CORE_M2TD_H_

#include <cstdint>
#include <vector>

#include "core/je_stitch.h"
#include "core/pf_partition.h"
#include "linalg/matrix.h"
#include "linalg/rsvd.h"
#include "tensor/tucker.h"
#include "util/result.h"

namespace m2td::core {

/// The three pivot-factor combination schemes of Section VI.
enum class M2tdMethod {
  /// Elementwise average of the two pivot factor matrices (Algorithm 2).
  kAvg,
  /// Left singular vectors of the row-wise concatenated pivot
  /// matricizations [X1_(n) | X2_(n)] (Algorithm 3) — via the Gram identity
  /// [A|B][A|B]^T = A A^T + B B^T.
  kConcat,
  /// Per-row energy selection between the two factor matrices
  /// (Algorithms 4 and 5) — the paper's best performer.
  kSelect,
  /// Extension (not in the paper): soft variant of kSelect that blends
  /// each row pair weighted by the row energies instead of hard-picking
  /// the stronger one. Degenerates to kAvg for equal energies and to
  /// kSelect when one side dominates; the ablation bench quantifies where
  /// it lands between them.
  kWeighted,
};

const char* M2tdMethodName(M2tdMethod method);

struct M2tdOptions {
  M2tdMethod method = M2tdMethod::kSelect;
  /// Target rank per *original* mode; clamped to the mode lengths. A single
  /// value replicated across modes reproduces the paper's "Rank" column.
  std::vector<std::uint64_t> ranks;
  StitchOptions stitch;
  /// Factor-initialization policy for every sub-tensor Gram solve (pivot,
  /// side, and concat-sum factors). Defaults to the deterministic
  /// Gram + Jacobi oracle; the randomized method sketches each solve with
  /// a seed decorrelated per original mode (linalg::GramFactorOptions).
  linalg::GramFactorOptions init;
};

/// Where the time went; mirrors the phase split reported in Table III
/// (sub-tensor decomposition / stitching / core recovery). Each field is
/// the elapsed time of the identically named tracing span
/// ("sub_decompose" / "stitch" / "core_recovery", see src/obs/), so a
/// trace captured with obs::SetTracingEnabled(true) always agrees with
/// these numbers.
struct M2tdTimings {
  double sub_decompose_seconds = 0.0;
  double stitch_seconds = 0.0;
  double core_seconds = 0.0;

  double TotalSeconds() const {
    return sub_decompose_seconds + stitch_seconds + core_seconds;
  }
};

struct M2tdResult {
  /// Tucker decomposition of the join tensor, factors in original mode
  /// order — directly comparable against the full-space ground truth.
  tensor::TuckerDecomposition tucker;
  /// Non-zeros of the stitched join tensor (its effective density
  /// numerator).
  std::uint64_t join_nnz = 0;
  M2tdTimings timings;
};

/// \brief Algorithm 5 (ROW_SELECT): builds a combined factor matrix taking
/// each row from whichever input has the larger row 2-norm ("energy").
///
/// Inputs must have identical shape.
Result<linalg::Matrix> RowSelect(const linalg::Matrix& u1,
                                 const linalg::Matrix& u2);

/// \brief Energy-weighted row blend (the kWeighted extension): row i of
/// the output is (||r1|| r1 + ||r2|| r2) / (||r1|| + ||r2||); rows with
/// zero total energy come out zero. Inputs must have identical shape.
Result<linalg::Matrix> RowWeightedBlend(const linalg::Matrix& u1,
                                        const linalg::Matrix& u2);

/// \brief Multi-Task Tensor Decomposition: the Tucker decomposition of the
/// join tensor obtained from the two sub-ensemble decompositions
/// (Algorithms 2-4).
///
/// Factor matrices for pivot modes combine the two sub-tensor factors per
/// `options.method`; non-pivot factors come from the owning sub-tensor.
/// The join tensor is stitched (per `options.stitch`) only to recover the
/// core — the N-modal tensor is never decomposed directly.
Result<M2tdResult> M2tdDecompose(const SubEnsembles& subs,
                                 const PfPartition& partition,
                                 const std::vector<std::uint64_t>& full_shape,
                                 const M2tdOptions& options);

}  // namespace m2td::core

#endif  // M2TD_CORE_M2TD_H_
