#include "core/pivot_selection.h"

#include <algorithm>

#include "core/pf_partition.h"
#include "linalg/svd.h"
#include "tensor/matricize.h"

namespace m2td::core {

Result<std::vector<PivotScore>> RankPivotChoices(
    ensemble::SimulationModel* model, const PivotSelectionOptions& options) {
  if (model == nullptr) {
    return Status::InvalidArgument("model must not be null");
  }
  if (options.rank == 0) {
    return Status::InvalidArgument("rank must be positive");
  }
  if (options.probe_density <= 0.0 || options.probe_density > 1.0) {
    return Status::InvalidArgument("probe_density must be in (0, 1]");
  }
  const ensemble::ParameterSpace& space = model->space();

  std::vector<PivotScore> scores;
  scores.reserve(space.num_modes());
  for (std::size_t mode = 0; mode < space.num_modes(); ++mode) {
    M2TD_ASSIGN_OR_RETURN(PfPartition partition,
                          MakePartition(space.num_modes(), {mode}));
    SubEnsembleOptions sub_options;
    sub_options.cell_density = options.probe_density;
    sub_options.seed = options.seed + mode;  // decorrelate probes
    M2TD_ASSIGN_OR_RETURN(SubEnsembles subs,
                          BuildSubEnsembles(model, partition, sub_options));

    const std::size_t rank = static_cast<std::size_t>(
        std::min<std::uint64_t>(options.rank, space.Resolution(mode)));
    M2TD_ASSIGN_OR_RETURN(linalg::Matrix g1, tensor::ModeGram(subs.x1, 0));
    M2TD_ASSIGN_OR_RETURN(linalg::Matrix g2, tensor::ModeGram(subs.x2, 0));
    M2TD_ASSIGN_OR_RETURN(linalg::Matrix u1,
                          linalg::LeftSingularVectorsFromGram(g1, rank));
    M2TD_ASSIGN_OR_RETURN(linalg::Matrix u2,
                          linalg::LeftSingularVectorsFromGram(g2, rank));

    // Alignment: ||U1^T U2||_F^2 / r, 1 for identical subspaces.
    const linalg::Matrix overlap = linalg::MultiplyTransA(u1, u2);
    const double fro = overlap.FrobeniusNorm();
    PivotScore score;
    score.mode = mode;
    score.alignment = fro * fro / static_cast<double>(rank);
    score.probe_cells = subs.cells_evaluated;
    scores.push_back(score);
  }
  std::sort(scores.begin(), scores.end(),
            [](const PivotScore& a, const PivotScore& b) {
              return a.alignment > b.alignment;
            });
  return scores;
}

}  // namespace m2td::core
