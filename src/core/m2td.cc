#include "core/m2td.h"

#include <algorithm>

#include "linalg/svd.h"
#include "obs/trace.h"
#include "robust/cancel.h"
#include "tensor/matricize.h"
#include "tensor/ttm.h"
#include "util/logging.h"

namespace m2td::core {

const char* M2tdMethodName(M2tdMethod method) {
  switch (method) {
    case M2tdMethod::kAvg:
      return "M2TD-AVG";
    case M2tdMethod::kConcat:
      return "M2TD-CONCAT";
    case M2tdMethod::kSelect:
      return "M2TD-SELECT";
    case M2tdMethod::kWeighted:
      return "M2TD-WEIGHTED";
  }
  return "?";
}

Result<linalg::Matrix> RowSelect(const linalg::Matrix& u1,
                                 const linalg::Matrix& u2) {
  if (u1.rows() != u2.rows() || u1.cols() != u2.cols()) {
    return Status::InvalidArgument("RowSelect requires same-shaped inputs");
  }
  linalg::Matrix out(u1.rows(), u1.cols());
  for (std::size_t i = 0; i < u1.rows(); ++i) {
    const bool take_first = u1.RowNorm(i) >= u2.RowNorm(i);
    const double* src = take_first ? u1.RowPtr(i) : u2.RowPtr(i);
    double* dst = out.RowPtr(i);
    for (std::size_t j = 0; j < u1.cols(); ++j) dst[j] = src[j];
  }
  return out;
}

Result<linalg::Matrix> RowWeightedBlend(const linalg::Matrix& u1,
                                        const linalg::Matrix& u2) {
  if (u1.rows() != u2.rows() || u1.cols() != u2.cols()) {
    return Status::InvalidArgument(
        "RowWeightedBlend requires same-shaped inputs");
  }
  linalg::Matrix out(u1.rows(), u1.cols());
  for (std::size_t i = 0; i < u1.rows(); ++i) {
    const double w1 = u1.RowNorm(i);
    const double w2 = u2.RowNorm(i);
    const double total = w1 + w2;
    if (total <= 0.0) continue;  // both rows zero: leave the row zero
    const double* r1 = u1.RowPtr(i);
    const double* r2 = u2.RowPtr(i);
    double* dst = out.RowPtr(i);
    for (std::size_t j = 0; j < u1.cols(); ++j) {
      dst[j] = (w1 * r1[j] + w2 * r2[j]) / total;
    }
  }
  return out;
}

namespace {

/// Factor matrix of sub-tensor `sub` along its own mode `m`, at rank
/// clamped to the mode length, solved under the configured init policy
/// (deterministic Gram + Jacobi or sketched range finder).
Result<linalg::Matrix> SubFactor(const tensor::SparseTensor& sub,
                                 std::size_t m, std::uint64_t rank,
                                 const linalg::GramFactorOptions& init) {
  M2TD_ASSIGN_OR_RETURN(linalg::Matrix gram, tensor::ModeGram(sub, m));
  const std::size_t k =
      static_cast<std::size_t>(std::min<std::uint64_t>(rank, sub.dim(m)));
  return linalg::GramFactor(gram, k, init);
}

Result<M2tdResult> M2tdDecomposeImpl(
    const SubEnsembles& subs, const PfPartition& partition,
    const std::vector<std::uint64_t>& full_shape,
    const M2tdOptions& options) {
  const std::size_t num_modes = full_shape.size();
  if (partition.NumModes() != num_modes) {
    return Status::InvalidArgument("partition does not match full shape");
  }
  if (options.ranks.size() != num_modes) {
    return Status::InvalidArgument("one rank per original mode required");
  }
  const std::size_t k = partition.pivot_modes.size();

  M2tdResult result;
  obs::ObsSpan total_span("m2td_decompose", obs::ObsSpan::kAlwaysTime);
  total_span.Annotate("method", M2tdMethodName(options.method));
  total_span.Annotate("x1_nnz", subs.x1.NumNonZeros());
  total_span.Annotate("x2_nnz", subs.x2.NumNonZeros());

  // --- Sub-tensor decompositions + pivot-factor combination. The phase
  // timings in M2tdTimings are the spans' own elapsed times, so the trace
  // and the Table III split always agree. ---
  obs::ObsSpan sub_span("sub_decompose", obs::ObsSpan::kAlwaysTime);
  std::vector<linalg::Matrix> factors(num_modes);

  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t mode = partition.pivot_modes[i];
    const std::uint64_t rank = options.ranks[mode];
    M2TD_TRACE_SCOPE("combine_pivot_factor");
    linalg::Matrix combined;
    if (options.method == M2tdMethod::kConcat) {
      // Gram of the concatenated matricization [X1_(n) | X2_(n)].
      M2TD_ASSIGN_OR_RETURN(linalg::Matrix g1, tensor::ModeGram(subs.x1, i));
      M2TD_ASSIGN_OR_RETURN(linalg::Matrix g2, tensor::ModeGram(subs.x2, i));
      const linalg::Matrix sum = linalg::LinearCombination(1.0, g1, 1.0, g2);
      const std::size_t rk = static_cast<std::size_t>(
          std::min<std::uint64_t>(rank, full_shape[mode]));
      M2TD_ASSIGN_OR_RETURN(
          combined, linalg::GramFactor(sum, rk, options.init.ForMode(mode)));
    } else {
      // The two sub-tensors draw decorrelated sketches: offset x2's stream
      // past every original mode index so no (sub, mode) pair shares a seed.
      M2TD_ASSIGN_OR_RETURN(
          linalg::Matrix u1,
          SubFactor(subs.x1, i, rank, options.init.ForMode(mode)));
      M2TD_ASSIGN_OR_RETURN(
          linalg::Matrix u2,
          SubFactor(subs.x2, i, rank,
                    options.init.ForMode(mode + num_modes)));
      if (options.method == M2tdMethod::kAvg) {
        combined = linalg::LinearCombination(0.5, u1, 0.5, u2);
      } else if (options.method == M2tdMethod::kWeighted) {
        M2TD_ASSIGN_OR_RETURN(combined, RowWeightedBlend(u1, u2));
      } else {
        M2TD_ASSIGN_OR_RETURN(combined, RowSelect(u1, u2));
      }
    }
    factors[mode] = std::move(combined);
  }
  for (std::size_t i = 0; i < partition.side1_modes.size(); ++i) {
    const std::size_t mode = partition.side1_modes[i];
    M2TD_ASSIGN_OR_RETURN(
        factors[mode], SubFactor(subs.x1, k + i, options.ranks[mode],
                                 options.init.ForMode(mode)));
  }
  for (std::size_t i = 0; i < partition.side2_modes.size(); ++i) {
    const std::size_t mode = partition.side2_modes[i];
    M2TD_ASSIGN_OR_RETURN(
        factors[mode], SubFactor(subs.x2, k + i, options.ranks[mode],
                                 options.init.ForMode(mode + num_modes)));
  }
  result.timings.sub_decompose_seconds = sub_span.End();

  // --- JE-stitching. ---
  obs::ObsSpan stitch_span("stitch", obs::ObsSpan::kAlwaysTime);
  M2TD_ASSIGN_OR_RETURN(
      tensor::SparseTensor join,
      JeStitch(subs, partition, full_shape, options.stitch));
  result.join_nnz = join.NumNonZeros();
  stitch_span.Annotate("join_nnz", result.join_nnz);
  result.timings.stitch_seconds = stitch_span.End();

  // --- Core recovery: G = J x_1 U^(1)T ... x_N U^(N)T. ---
  obs::ObsSpan core_span("core_recovery", obs::ObsSpan::kAlwaysTime);
  // CoreFromSparse's first hop walks the join tensor's CSF index (the
  // join is freshly coalesced, so this is the build-and-use call).
  core_span.Annotate("csf", std::uint64_t{join.IsSorted() ? 1u : 0u});
  M2TD_ASSIGN_OR_RETURN(tensor::DenseTensor core,
                        tensor::CoreFromSparse(join, factors));
  core_span.Annotate("core_elements", core.NumElements());
  result.timings.core_seconds = core_span.End();

  result.tucker.core = std::move(core);
  result.tucker.factors = std::move(factors);
  return result;
}

}  // namespace

Result<M2tdResult> M2tdDecompose(const SubEnsembles& subs,
                                 const PfPartition& partition,
                                 const std::vector<std::uint64_t>& full_shape,
                                 const M2tdOptions& options) {
  // Pooled kernels report cancellation by throwing through the void
  // ParallelFor channel; convert back to the Status this API promises.
  try {
    return M2tdDecomposeImpl(subs, partition, full_shape, options);
  } catch (const robust::CancelledError& error) {
    return error.ToStatus();
  }
}

}  // namespace m2td::core
