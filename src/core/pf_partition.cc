#include "core/pf_partition.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace m2td::core {

std::vector<std::size_t> PfPartition::SubTensorModes(int side) const {
  M2TD_CHECK(side == 1 || side == 2) << "side must be 1 or 2";
  std::vector<std::size_t> modes = pivot_modes;
  const std::vector<std::size_t>& free_modes =
      (side == 1) ? side1_modes : side2_modes;
  modes.insert(modes.end(), free_modes.begin(), free_modes.end());
  return modes;
}

Result<PfPartition> MakePartition(std::size_t num_modes,
                                  std::vector<std::size_t> pivot_modes,
                                  std::vector<std::size_t> side1_modes) {
  if (pivot_modes.empty()) {
    return Status::InvalidArgument("at least one pivot mode required");
  }
  std::vector<bool> used(num_modes, false);
  for (std::size_t m : pivot_modes) {
    if (m >= num_modes) {
      return Status::InvalidArgument("pivot mode out of range");
    }
    if (used[m]) return Status::InvalidArgument("duplicate pivot mode");
    used[m] = true;
  }

  PfPartition partition;
  partition.pivot_modes = std::move(pivot_modes);

  if (side1_modes.empty()) {
    // Default split: remaining modes in order, first half to side 1.
    std::vector<std::size_t> remaining;
    for (std::size_t m = 0; m < num_modes; ++m) {
      if (!used[m]) remaining.push_back(m);
    }
    if (remaining.size() < 2) {
      return Status::InvalidArgument(
          "need at least two non-pivot modes to partition");
    }
    const std::size_t half = remaining.size() / 2;
    partition.side1_modes.assign(remaining.begin(), remaining.begin() + half);
    partition.side2_modes.assign(remaining.begin() + half, remaining.end());
    return partition;
  }

  for (std::size_t m : side1_modes) {
    if (m >= num_modes) {
      return Status::InvalidArgument("side-1 mode out of range");
    }
    if (used[m]) {
      return Status::InvalidArgument("side-1 mode overlaps pivot or repeats");
    }
    used[m] = true;
  }
  partition.side1_modes = std::move(side1_modes);
  for (std::size_t m = 0; m < num_modes; ++m) {
    if (!used[m]) partition.side2_modes.push_back(m);
  }
  if (partition.side1_modes.empty() || partition.side2_modes.empty()) {
    return Status::InvalidArgument("both sides must be non-empty");
  }
  return partition;
}

namespace {

/// Enumerates the grid over `modes` of `space`; when density < 1 a subset
/// of the configurations (at least one) is kept per `selection`.
std::vector<std::vector<std::uint32_t>> SelectConfigs(
    const ensemble::ParameterSpace& space,
    const std::vector<std::size_t>& modes, double density,
    ConfigSelection selection, Rng* rng) {
  std::uint64_t total = 1;
  for (std::size_t m : modes) total *= space.Resolution(m);

  std::uint64_t keep = total;
  if (density < 1.0) {
    keep = static_cast<std::uint64_t>(
        std::llround(density * static_cast<double>(total)));
    keep = std::max<std::uint64_t>(1, std::min(keep, total));
  }

  std::vector<std::uint64_t> linear_ids;
  if (keep == total) {
    linear_ids.resize(total);
    for (std::uint64_t i = 0; i < total; ++i) linear_ids[i] = i;
  } else if (selection == ConfigSelection::kEvenlySpaced) {
    linear_ids.reserve(keep);
    for (std::uint64_t i = 0; i < keep; ++i) {
      linear_ids.push_back(keep == 1 ? total / 2
                                     : i * (total - 1) / (keep - 1));
    }
    linear_ids.erase(std::unique(linear_ids.begin(), linear_ids.end()),
                     linear_ids.end());
  } else {
    linear_ids = rng->SampleWithoutReplacement(total, keep);
    std::sort(linear_ids.begin(), linear_ids.end());
  }

  std::vector<std::vector<std::uint32_t>> configs;
  configs.reserve(linear_ids.size());
  for (std::uint64_t linear : linear_ids) {
    std::vector<std::uint32_t> config(modes.size());
    std::uint64_t rest = linear;
    for (std::size_t i = modes.size(); i-- > 0;) {
      const std::uint64_t res = space.Resolution(modes[i]);
      config[i] = static_cast<std::uint32_t>(rest % res);
      rest /= res;
    }
    configs.push_back(std::move(config));
  }
  return configs;
}

/// Builds one side's sub-tensor: pivot configs crossed with free configs
/// (optionally a random `cell_density` subset of the cross product),
/// remaining modes pinned at the space defaults.
tensor::SparseTensor BuildSide(
    ensemble::SimulationModel* model, const PfPartition& partition, int side,
    const std::vector<std::vector<std::uint32_t>>& pivot_configs,
    const std::vector<std::vector<std::uint32_t>>& side_configs,
    double cell_density, Rng* rng, std::uint64_t* cells_evaluated) {
  const ensemble::ParameterSpace& space = model->space();
  const std::vector<std::size_t>& free_modes =
      (side == 1) ? partition.side1_modes : partition.side2_modes;

  std::vector<std::uint64_t> shape;
  for (std::size_t m : partition.pivot_modes) {
    shape.push_back(space.Resolution(m));
  }
  for (std::size_t m : free_modes) shape.push_back(space.Resolution(m));
  tensor::SparseTensor sub(shape);
  sub.Reserve(pivot_configs.size() * side_configs.size());

  // Full-space index with the fixing constants pre-filled.
  std::vector<std::uint32_t> full_index(space.num_modes());
  for (std::size_t m = 0; m < space.num_modes(); ++m) {
    full_index[m] = space.DefaultIndex(m);
  }

  // Which (pivot, free) cells of the cross product to simulate.
  const std::uint64_t cross = static_cast<std::uint64_t>(
      pivot_configs.size() * side_configs.size());
  std::vector<std::uint64_t> cells;
  if (cell_density >= 1.0) {
    cells.resize(cross);
    for (std::uint64_t i = 0; i < cross; ++i) cells[i] = i;
  } else {
    std::uint64_t keep = static_cast<std::uint64_t>(
        std::llround(cell_density * static_cast<double>(cross)));
    keep = std::max<std::uint64_t>(1, std::min(keep, cross));
    cells = rng->SampleWithoutReplacement(cross, keep);
  }

  std::vector<std::uint32_t> sub_index(shape.size());
  for (std::uint64_t cell : cells) {
    const auto& pivot = pivot_configs[cell / side_configs.size()];
    const auto& free_cfg = side_configs[cell % side_configs.size()];
    for (std::size_t i = 0; i < partition.pivot_modes.size(); ++i) {
      full_index[partition.pivot_modes[i]] = pivot[i];
      sub_index[i] = pivot[i];
    }
    for (std::size_t i = 0; i < free_modes.size(); ++i) {
      full_index[free_modes[i]] = free_cfg[i];
      sub_index[partition.pivot_modes.size() + i] = free_cfg[i];
    }
    sub.AppendEntry(sub_index, model->Cell(full_index));
    ++(*cells_evaluated);
  }
  sub.SortAndCoalesce();
  return sub;
}

}  // namespace

Result<SubEnsembles> BuildSubEnsembles(ensemble::SimulationModel* model,
                                       const PfPartition& partition,
                                       const SubEnsembleOptions& options) {
  if (model == nullptr) {
    return Status::InvalidArgument("model must not be null");
  }
  const ensemble::ParameterSpace& space = model->space();
  if (partition.NumModes() != space.num_modes()) {
    return Status::InvalidArgument(
        "partition does not cover the model's modes");
  }
  if (options.pivot_density <= 0.0 || options.pivot_density > 1.0 ||
      options.side_density <= 0.0 || options.side_density > 1.0 ||
      options.cell_density <= 0.0 || options.cell_density > 1.0) {
    return Status::InvalidArgument("densities must be in (0, 1]");
  }

  obs::ObsSpan span("build_sub_ensembles");
  Rng rng(options.seed);
  SubEnsembles out;
  out.pivot_configs =
      SelectConfigs(space, partition.pivot_modes, options.pivot_density,
                    options.config_selection, &rng);
  out.side1_configs =
      SelectConfigs(space, partition.side1_modes, options.side_density,
                    options.config_selection, &rng);
  out.side2_configs =
      SelectConfigs(space, partition.side2_modes, options.side_density,
                    options.config_selection, &rng);

  out.x1 = BuildSide(model, partition, 1, out.pivot_configs,
                     out.side1_configs, options.cell_density, &rng,
                     &out.cells_evaluated);
  out.x2 = BuildSide(model, partition, 2, out.pivot_configs,
                     out.side2_configs, options.cell_density, &rng,
                     &out.cells_evaluated);
  span.Annotate("cells_evaluated", out.cells_evaluated);
  span.Annotate("x1_nnz", out.x1.NumNonZeros());
  span.Annotate("x2_nnz", out.x2.NumNonZeros());
  obs::GetCounter("core.cells_evaluated").Add(out.cells_evaluated);
  return out;
}

}  // namespace m2td::core
