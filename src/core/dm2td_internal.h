#ifndef M2TD_CORE_DM2TD_INTERNAL_H_
#define M2TD_CORE_DM2TD_INTERNAL_H_

// Shared building blocks of the two D-M2TD execution backends. The
// in-process thread engine (dm2td.cc) and the multi-process task bodies
// (dm2td_tasks.cc) both compute through these functions, so the backends
// agree bit for bit: identical per-group arithmetic plus the canonical
// inter-phase ordering defined by SortJoinCells is what makes results
// independent of worker count, shard count, and kill schedule.

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/dm2td.h"
#include "core/pf_partition.h"
#include "linalg/matrix.h"
#include "tensor/sparse_tensor.h"
#include "util/result.h"

namespace m2td::core::dm2td_internal {

/// One stored cell of a (sub-)tensor shipped through MapReduce.
struct TensorCell {
  int kappa = 0;  // 1 or 2: owning sub-tensor
  std::vector<std::uint32_t> idx;
  double value = 0.0;
};

/// Phase-1 reducer output: the Gram matrix of one sub-tensor mode.
struct GramPiece {
  int kappa = 0;
  std::size_t sub_mode = 0;
  linalg::Matrix gram;
};

/// A cell of the join tensor (and of the phase-3 intermediates), in
/// original mode order.
struct JoinCell {
  std::vector<std::uint32_t> idx;
  double value = 0.0;
};

/// Mode geometry shared by every phase: the pivot/side split of the
/// original modes and their extents.
struct JobGeometry {
  std::size_t num_modes = 0;
  std::size_t k = 0;  // number of pivot modes
  std::vector<std::size_t> pivot_modes, side1_modes, side2_modes;
  std::vector<std::uint64_t> pivot_dims, side1_dims, side2_dims;
};

inline std::vector<std::uint64_t> ModeDims(
    const std::vector<std::uint64_t>& full_shape,
    const std::vector<std::size_t>& modes) {
  std::vector<std::uint64_t> dims;
  dims.reserve(modes.size());
  for (std::size_t m : modes) dims.push_back(full_shape[m]);
  return dims;
}

inline JobGeometry MakeGeometry(const PfPartition& partition,
                                const std::vector<std::uint64_t>& full_shape) {
  JobGeometry g;
  g.num_modes = full_shape.size();
  g.k = partition.pivot_modes.size();
  g.pivot_modes = partition.pivot_modes;
  g.side1_modes = partition.side1_modes;
  g.side2_modes = partition.side2_modes;
  g.pivot_dims = ModeDims(full_shape, partition.pivot_modes);
  g.side1_dims = ModeDims(full_shape, partition.side1_modes);
  g.side2_dims = ModeDims(full_shape, partition.side2_modes);
  return g;
}

inline std::uint64_t PivotKey(const std::vector<std::uint32_t>& idx,
                              const std::vector<std::uint64_t>& pivot_dims) {
  std::uint64_t key = 0;
  for (std::size_t i = 0; i < pivot_dims.size(); ++i) {
    key = key * pivot_dims[i] + idx[i];
  }
  return key;
}

inline std::uint64_t SideKey(const std::vector<std::uint32_t>& idx,
                             std::size_t k,
                             const std::vector<std::uint64_t>& side_dims) {
  std::uint64_t key = 0;
  for (std::size_t i = 0; i < side_dims.size(); ++i) {
    key = key * side_dims[i] + idx[k + i];
  }
  return key;
}

inline void ScatterKey(std::uint64_t key,
                       const std::vector<std::uint64_t>& dims,
                       const std::vector<std::size_t>& modes,
                       std::vector<std::uint32_t>* out) {
  for (std::size_t i = dims.size(); i-- > 0;) {
    (*out)[modes[i]] = static_cast<std::uint32_t>(key % dims[i]);
    key /= dims[i];
  }
}

inline std::vector<TensorCell> CollectCells(const tensor::SparseTensor& sub,
                                            int kappa) {
  std::vector<TensorCell> cells;
  cells.reserve(sub.NumNonZeros());
  const std::size_t modes = sub.num_modes();
  for (std::uint64_t e = 0; e < sub.NumNonZeros(); ++e) {
    TensorCell cell;
    cell.kappa = kappa;
    cell.idx.resize(modes);
    for (std::size_t m = 0; m < modes; ++m) cell.idx[m] = sub.Index(m, e);
    cell.value = sub.Value(e);
    cells.push_back(std::move(cell));
  }
  return cells;
}

/// Canonical inter-phase ordering: lexicographic on the index vector.
/// Phase-2 and phase-3 outputs have globally unique index vectors, so
/// this is a total order independent of which worker/shard produced a
/// cell — the keystone of backend/worker-count bit-identity.
inline void SortJoinCells(std::vector<JoinCell>* cells) {
  std::sort(cells->begin(), cells->end(),
            [](const JoinCell& a, const JoinCell& b) {
              return a.idx < b.idx;
            });
}

/// Phase-1 reducer body: builds one sub-tensor from its cells and emits
/// the per-mode Gram pieces. Input cells must have unique indices (they
/// come from a coalesced sub-tensor), so SortAndCoalesce canonicalizes
/// the entry order regardless of arrival order.
Status BuildGramsForSub(int kappa, const std::vector<std::uint64_t>& shape,
                        const std::vector<TensorCell>& cells,
                        std::vector<GramPiece>* out);

/// Phase-2 reducer body: joins one pivot group. `cells` must arrive in
/// global input order (both backends guarantee this) so the join output
/// sequence is reproducible. Appends to `out`.
void JoinPivotGroup(std::uint64_t pivot_key,
                    const std::vector<TensorCell>& cells,
                    const JobGeometry& geometry, bool zero_join,
                    const std::vector<std::uint64_t>& cand1,
                    const std::vector<std::uint64_t>& cand2,
                    std::vector<JoinCell>* out);

/// Phase-3 fiber key of `cell` for mode `n`: the row-major rank over all
/// modes except `n` under `current_shape`.
inline std::uint64_t Phase3FiberKey(
    const JoinCell& cell, std::size_t n,
    const std::vector<std::uint64_t>& current_shape) {
  std::uint64_t key = 0;
  for (std::size_t m = 0; m < current_shape.size(); ++m) {
    if (m == n) continue;
    key = key * current_shape[m] + cell.idx[m];
  }
  return key;
}

/// Phase-3 reducer body: contracts one fiber (all (i_n, v) pairs sharing
/// `key`) with `factor`, appending the non-zero results. `fiber` must
/// arrive in global input order.
void ContractFiber(std::uint64_t key,
                   const std::vector<std::pair<std::uint32_t, double>>& fiber,
                   const linalg::Matrix& factor, std::size_t n,
                   const std::vector<std::uint64_t>& other_dims,
                   const std::vector<std::size_t>& other_modes,
                   std::size_t num_modes, std::vector<JoinCell>* out);

/// Driver-side factor assembly from the phase-1 Gram pieces (keyed
/// kappa * 64 + sub_mode). Shared by both backends so factors are
/// computed by literally the same code path.
Result<std::vector<linalg::Matrix>> AssembleFactors(
    std::unordered_map<std::uint64_t, linalg::Matrix>& grams,
    const PfPartition& partition,
    const std::vector<std::uint64_t>& full_shape, const DM2tdOptions& options);

/// Argument validation shared by both backends.
Status ValidateDm2tdArgs(const SubEnsembles& subs,
                         const PfPartition& partition,
                         const std::vector<std::uint64_t>& full_shape,
                         const DM2tdOptions& options);

/// Zero-join candidate side-key sets, gathered globally (sorted).
void GatherZeroJoinCandidates(const std::vector<TensorCell>& all_cells,
                              const JobGeometry& geometry,
                              std::vector<std::uint64_t>* cand1,
                              std::vector<std::uint64_t>* cand2);

}  // namespace m2td::core::dm2td_internal

#endif  // M2TD_CORE_DM2TD_INTERNAL_H_
