#ifndef M2TD_CORE_JE_STITCH_H_
#define M2TD_CORE_JE_STITCH_H_

#include <cstdint>
#include <vector>

#include "core/pf_partition.h"
#include "tensor/sparse_tensor.h"
#include "util/result.h"

namespace m2td::core {

/// Join-Ensemble stitching variants (Section V-C).
struct StitchOptions {
  /// With `zero_join` every (e1, e2) pair of *selected* free configurations
  /// whose pivot group contains at least one of the two member simulations
  /// yields a join entry, the missing member contributing 0 — the paper's
  /// density booster for sparse sub-ensembles. Without it, only pairs where
  /// both members were simulated join.
  bool zero_join = false;
};

/// \brief JE-stitching: joins the two sub-ensemble tensors along the pivot
/// modes into the N-mode join tensor J, laid out in the *original* mode
/// order of `full_shape`.
///
/// For each pivot configuration, every simulation of X1 pairs with every
/// simulation of X2 sharing it; the join entry at (pivot, e1, e2) carries
/// the average of the two member values. With P pivot configurations and E
/// free configurations per side this turns 2*P*E simulations into up to
/// P*E^2 join cells — the effective-density squaring at the heart of the
/// paper. Inputs must be coalesced; the output is coalesced.
Result<tensor::SparseTensor> JeStitch(const SubEnsembles& subs,
                                      const PfPartition& partition,
                                      const std::vector<std::uint64_t>&
                                          full_shape,
                                      const StitchOptions& options = {});

}  // namespace m2td::core

#endif  // M2TD_CORE_JE_STITCH_H_
