#include "core/analysis.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/string_util.h"

namespace m2td::core {

Result<std::vector<ModePattern>> ExtractModePatterns(
    const tensor::TuckerDecomposition& tucker, std::size_t top_k) {
  if (top_k == 0) return Status::InvalidArgument("top_k must be positive");
  std::vector<ModePattern> patterns;
  for (std::size_t m = 0; m < tucker.factors.size(); ++m) {
    const linalg::Matrix& factor = tucker.factors[m];
    for (std::size_t c = 0; c < factor.cols(); ++c) {
      ModePattern pattern;
      pattern.mode = m;
      pattern.component = c;
      std::vector<std::uint32_t> order(factor.rows());
      std::iota(order.begin(), order.end(), 0);
      std::sort(order.begin(), order.end(),
                [&factor, c](std::uint32_t a, std::uint32_t b) {
                  return std::fabs(factor(a, c)) > std::fabs(factor(b, c));
                });
      const std::size_t keep = std::min(top_k, order.size());
      for (std::size_t i = 0; i < keep; ++i) {
        pattern.top_indices.push_back(order[i]);
        pattern.loadings.push_back(std::fabs(factor(order[i], c)));
      }
      patterns.push_back(std::move(pattern));
    }
  }
  return patterns;
}

std::string DescribePatterns(const std::vector<ModePattern>& patterns,
                             const ensemble::ParameterSpace& space,
                             std::size_t max_entries_per_pattern) {
  std::string out;
  for (const ModePattern& pattern : patterns) {
    if (pattern.mode >= space.num_modes()) continue;
    const ensemble::ParameterDef& def = space.def(pattern.mode);
    out += StrFormat("mode %zu (%s), component %zu:", pattern.mode,
                     def.name.c_str(), pattern.component);
    const std::size_t n =
        std::min(max_entries_per_pattern, pattern.top_indices.size());
    for (std::size_t i = 0; i < n; ++i) {
      out += StrFormat(" %s=%.3g (%.2f)", def.name.c_str(),
                       space.Value(pattern.mode, pattern.top_indices[i]),
                       pattern.loadings[i]);
    }
    out += "\n";
  }
  return out;
}

Result<std::vector<CoreInteraction>> TopCoreInteractions(
    const tensor::TuckerDecomposition& tucker, std::size_t top_k) {
  if (top_k == 0) return Status::InvalidArgument("top_k must be positive");
  const double norm = tucker.core.FrobeniusNorm();
  if (norm == 0.0) return std::vector<CoreInteraction>{};

  std::vector<std::uint64_t> order(tucker.core.NumElements());
  std::iota(order.begin(), order.end(), 0);
  const std::size_t keep =
      std::min<std::size_t>(top_k, order.size());
  std::partial_sort(order.begin(), order.begin() + keep, order.end(),
                    [&tucker](std::uint64_t a, std::uint64_t b) {
                      return std::fabs(tucker.core.flat(a)) >
                             std::fabs(tucker.core.flat(b));
                    });

  std::vector<CoreInteraction> interactions;
  interactions.reserve(keep);
  for (std::size_t i = 0; i < keep; ++i) {
    CoreInteraction interaction;
    interaction.component_indices = tucker.core.MultiIndex(order[i]);
    interaction.strength = std::fabs(tucker.core.flat(order[i])) / norm;
    interactions.push_back(std::move(interaction));
  }
  return interactions;
}

Result<std::vector<ResidualOutlier>> ResidualOutliers(
    const tensor::TuckerDecomposition& tucker, const tensor::SparseTensor& x,
    std::size_t top_k) {
  if (top_k == 0) return Status::InvalidArgument("top_k must be positive");
  if (x.num_modes() != tucker.factors.size()) {
    return Status::InvalidArgument("tensor/decomposition arity mismatch");
  }
  std::vector<ResidualOutlier> all;
  all.reserve(x.NumNonZeros());
  std::vector<std::uint32_t> idx(x.num_modes());
  for (std::uint64_t e = 0; e < x.NumNonZeros(); ++e) {
    for (std::size_t m = 0; m < x.num_modes(); ++m) idx[m] = x.Index(m, e);
    M2TD_ASSIGN_OR_RETURN(double reconstructed,
                          tensor::ReconstructCell(tucker, idx));
    ResidualOutlier outlier;
    outlier.indices = idx;
    outlier.observed = x.Value(e);
    outlier.reconstructed = reconstructed;
    outlier.residual = std::fabs(outlier.observed - reconstructed);
    all.push_back(std::move(outlier));
  }
  const std::size_t keep = std::min<std::size_t>(top_k, all.size());
  std::partial_sort(all.begin(), all.begin() + keep, all.end(),
                    [](const ResidualOutlier& a, const ResidualOutlier& b) {
                      return a.residual > b.residual;
                    });
  all.resize(keep);
  return all;
}

}  // namespace m2td::core
