#ifndef M2TD_CORE_DM2TD_DIST_H_
#define M2TD_CORE_DM2TD_DIST_H_

// The multi-process D-M2TD coordinator (DistBackend::kProcess): spawns
// `num_workers` m2td_worker processes, assigns (phase, task, attempt)
// triples over the length-prefixed pipe protocol (mapreduce/wire.h),
// shuffles all intermediate data through the CRC-footered durable
// io::ShuffleStore, and recovers from worker death at any point by
// reassigning the dead worker's task to a survivor — tasks replay from
// the last committed attempt, so results stay bit-identical to the
// thread backend at any worker count and kill schedule.

#include <string>
#include <vector>

#include "core/dm2td.h"
#include "util/result.h"

namespace m2td::core {

/// Resolves the worker binary path: `configured` if non-empty, else
/// $M2TD_WORKER_BIN, else "m2td_worker" / "../tools/m2td_worker" next to
/// the current executable. NotFound when nothing exists.
Result<std::string> DefaultWorkerBinary(const std::string& configured);

/// The kProcess implementation behind DM2tdDecompose. Arguments are
/// pre-validated by the dispatcher.
Result<DM2tdResult> DM2tdDecomposeProcess(
    const SubEnsembles& subs, const PfPartition& partition,
    const std::vector<std::uint64_t>& full_shape, const DM2tdOptions& options);

}  // namespace m2td::core

#endif  // M2TD_CORE_DM2TD_DIST_H_
