#include "core/ooc_m2td.h"

#include <algorithm>
#include <optional>
#include <sstream>

#include "core/je_stitch.h"
#include "io/out_of_core.h"
#include "io/tensor_io.h"
#include "linalg/svd.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "robust/cancel.h"
#include "robust/checkpoint.h"
#include "robust/durable.h"
#include "robust/failpoint.h"
#include "tensor/ttm.h"
#include "util/timer.h"

namespace m2td::core {

namespace {

/// Whitespace-free token identifying the run configuration; a checkpoint
/// journal written under a different configuration is rejected at Open().
std::string OocFingerprint(const PfPartition& partition,
                           const std::vector<std::uint64_t>& full_shape,
                           const M2tdOptions& options) {
  std::ostringstream fp;
  fp << "ooc-v1-m" << static_cast<int>(options.method) << "-s";
  for (std::uint64_t d : full_shape) fp << "_" << d;
  fp << "-r";
  for (std::uint64_t r : options.ranks) fp << "_" << r;
  fp << "-p";
  for (std::size_t m : partition.pivot_modes) fp << "_" << m;
  return fp.str();
}

/// Reads the slab of `store` with pivot coordinates `pivot_index` (the
/// store's first k modes) and any free coordinates.
Result<tensor::SparseTensor> ReadPivotSlab(
    const io::ChunkStore& store, const std::vector<std::uint32_t>&
        pivot_index, std::size_t k) {
  std::vector<std::uint64_t> lo(store.shape().size(), 0);
  std::vector<std::uint64_t> hi = store.shape();
  for (std::size_t i = 0; i < k; ++i) {
    lo[i] = pivot_index[i];
    hi[i] = pivot_index[i] + 1;
  }
  return store.ReadRegion(lo, hi);
}

Result<M2tdResult> M2tdDecomposeFromStoresImpl(
    const io::ChunkStore& store1, const io::ChunkStore& store2,
    const PfPartition& partition,
    const std::vector<std::uint64_t>& full_shape, const M2tdOptions& options,
    const OocCheckpointOptions& checkpoint) {
  const std::size_t num_modes = full_shape.size();
  if (partition.NumModes() != num_modes) {
    return Status::InvalidArgument("partition does not match full shape");
  }
  if (options.ranks.size() != num_modes) {
    return Status::InvalidArgument("one rank per original mode required");
  }
  if (options.stitch.zero_join) {
    return Status::Unimplemented(
        "zero-join needs globally consistent candidate sets; use the "
        "in-memory M2tdDecompose");
  }
  const std::size_t k = partition.pivot_modes.size();
  // Validate the stores' shapes against the partition.
  auto expected_shape = [&](int side) {
    std::vector<std::uint64_t> shape;
    for (std::size_t m : partition.SubTensorModes(side)) {
      shape.push_back(full_shape[m]);
    }
    return shape;
  };
  if (store1.shape() != expected_shape(1) ||
      store2.shape() != expected_shape(2)) {
    return Status::InvalidArgument(
        "store shapes do not match the partition's sub-tensor layout");
  }

  M2tdResult result;
  obs::ObsSpan total_span("ooc_m2td_decompose", obs::ObsSpan::kAlwaysTime);
  obs::ObsSpan sub_span("sub_decompose", obs::ObsSpan::kAlwaysTime);

  // --- Factor matrices from streamed Grams. ---
  std::vector<linalg::Matrix> factors(num_modes);
  auto factor_from_store = [&](const io::ChunkStore& store,
                               std::size_t sub_mode,
                               std::size_t original_mode)
      -> Result<linalg::Matrix> {
    M2TD_ASSIGN_OR_RETURN(linalg::Matrix gram,
                          io::ModeGramFromStore(store, sub_mode));
    const std::size_t rank = static_cast<std::size_t>(
        std::min<std::uint64_t>(options.ranks[original_mode],
                                full_shape[original_mode]));
    return linalg::LeftSingularVectorsFromGram(gram, rank);
  };

  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t mode = partition.pivot_modes[i];
    if (options.method == M2tdMethod::kConcat) {
      M2TD_ASSIGN_OR_RETURN(linalg::Matrix g1,
                            io::ModeGramFromStore(store1, i));
      M2TD_ASSIGN_OR_RETURN(linalg::Matrix g2,
                            io::ModeGramFromStore(store2, i));
      const linalg::Matrix sum = linalg::LinearCombination(1.0, g1, 1.0, g2);
      const std::size_t rank = static_cast<std::size_t>(
          std::min<std::uint64_t>(options.ranks[mode], full_shape[mode]));
      M2TD_ASSIGN_OR_RETURN(factors[mode],
                            linalg::LeftSingularVectorsFromGram(sum, rank));
    } else {
      M2TD_ASSIGN_OR_RETURN(linalg::Matrix u1,
                            factor_from_store(store1, i, mode));
      M2TD_ASSIGN_OR_RETURN(linalg::Matrix u2,
                            factor_from_store(store2, i, mode));
      if (options.method == M2tdMethod::kAvg) {
        factors[mode] = linalg::LinearCombination(0.5, u1, 0.5, u2);
      } else if (options.method == M2tdMethod::kWeighted) {
        M2TD_ASSIGN_OR_RETURN(factors[mode], RowWeightedBlend(u1, u2));
      } else {
        M2TD_ASSIGN_OR_RETURN(factors[mode], RowSelect(u1, u2));
      }
    }
  }
  for (std::size_t i = 0; i < partition.side1_modes.size(); ++i) {
    const std::size_t mode = partition.side1_modes[i];
    M2TD_ASSIGN_OR_RETURN(factors[mode],
                          factor_from_store(store1, k + i, mode));
  }
  for (std::size_t i = 0; i < partition.side2_modes.size(); ++i) {
    const std::size_t mode = partition.side2_modes[i];
    M2TD_ASSIGN_OR_RETURN(factors[mode],
                          factor_from_store(store2, k + i, mode));
  }
  result.timings.sub_decompose_seconds = sub_span.End();

  // --- Core accumulated pivot-slab by pivot-slab. ---
  std::vector<std::uint64_t> core_shape(num_modes);
  for (std::size_t m = 0; m < num_modes; ++m) {
    core_shape[m] = factors[m].cols();
  }
  tensor::DenseTensor core(core_shape);

  std::vector<std::uint64_t> pivot_dims;
  for (std::size_t m : partition.pivot_modes) {
    pivot_dims.push_back(full_shape[m]);
  }
  std::uint64_t pivot_total = 1;
  for (std::uint64_t d : pivot_dims) pivot_total *= d;

  // Checkpointing: snapshot the partial core every few slabs; on resume,
  // reload the newest snapshot and skip the slabs it already covers. The
  // core is accumulated in fixed prefix order and the snapshot text format
  // round-trips doubles exactly, so a resumed run's result is bit-identical
  // to an uninterrupted one.
  std::optional<robust::CheckpointJournal> journal;
  std::uint64_t start_linear = 0;
  std::uint64_t snapshot_count = 0;
  if (!checkpoint.checkpoint_dir.empty()) {
    M2TD_ASSIGN_OR_RETURN(
        robust::CheckpointJournal opened,
        robust::CheckpointJournal::Open(
            checkpoint.checkpoint_dir,
            OocFingerprint(partition, full_shape, options),
            checkpoint.resume));
    journal = std::move(opened);
    if (journal->Contains("ooc.core_snapshot")) {
      std::istringstream value(journal->ValueOf("ooc.core_snapshot"));
      std::uint64_t snap = 0, next_linear = 0, join_nnz = 0;
      if (!(value >> snap >> next_linear >> join_nnz) ||
          next_linear > pivot_total) {
        return Status::DataLoss("malformed ooc.core_snapshot mark '" +
                                journal->ValueOf("ooc.core_snapshot") + "'");
      }
      M2TD_ASSIGN_OR_RETURN(
          tensor::DenseTensor saved,
          io::LoadDenseText(journal->ArtifactPath(
              "core_" + std::to_string(snap) + ".txt")));
      if (saved.shape() != core.shape()) {
        return Status::DataLoss(
            "checkpointed core shape does not match this run");
      }
      core = std::move(saved);
      start_linear = next_linear;
      result.join_nnz = join_nnz;
      snapshot_count = snap + 1;
      obs::GetCounter("robust.ooc_resumes").Add(1);
    }
  }
  auto snapshot_core = [&](std::uint64_t next_linear) -> Status {
    // Artifact first, mark second: the mark's presence implies a complete
    // snapshot. Per-snapshot filenames keep a crash between the two steps
    // harmless (the journal's index stays authoritative).
    const std::string name = "core_" + std::to_string(snapshot_count) +
                             ".txt";
    M2TD_RETURN_IF_ERROR(robust::AtomicWriteFile(
        journal->ArtifactPath(name),
        [&](const std::string& tmp) { return io::SaveDenseText(core, tmp); }));
    M2TD_RETURN_IF_ERROR(journal->Mark(
        "ooc.core_snapshot",
        std::to_string(snapshot_count) + " " + std::to_string(next_linear) +
            " " + std::to_string(result.join_nnz)));
    ++snapshot_count;
    obs::GetCounter("robust.core_snapshots").Add(1);
    return Status::OK();
  };

  // The stitch and core phases interleave slab by slab; accumulate each
  // phase's share across the loop with stopped timers.
  Timer stitch_timer;
  stitch_timer.Stop();
  Timer core_timer;
  core_timer.Stop();
  std::vector<std::uint32_t> pivot_index(k);
  for (std::uint64_t linear = start_linear; linear < pivot_total; ++linear) {
    std::uint64_t rest = linear;
    for (std::size_t i = k; i-- > 0;) {
      pivot_index[i] = static_cast<std::uint32_t>(rest % pivot_dims[i]);
      rest /= pivot_dims[i];
    }
    obs::ObsSpan slab_span("pivot_slab");
    slab_span.Annotate("pivot_linear", linear);
    // The slab body stages its join_nnz contribution locally and only
    // commits into `result` after the slab fully completes: a mid-slab
    // cancellation (Status from a check, or CancelledError out of a
    // pooled kernel) must leave `result`/`core` exactly as of the last
    // completed slab so the flushed checkpoint resumes bit-identically.
    std::uint64_t slab_join_nnz = 0;
    Status slab_status = Status::OK();
    try {
      slab_status = [&]() -> Status {
        M2TD_RETURN_IF_ERROR(robust::CheckCancelled());
        M2TD_RETURN_IF_ERROR(robust::CheckFailpoint("ooc.slab"));
        stitch_timer.Resume();
        M2TD_ASSIGN_OR_RETURN(tensor::SparseTensor slab1,
                              ReadPivotSlab(store1, pivot_index, k));
        M2TD_ASSIGN_OR_RETURN(tensor::SparseTensor slab2,
                              ReadPivotSlab(store2, pivot_index, k));
        if (slab1.NumNonZeros() > 0 && slab2.NumNonZeros() > 0) {
          SubEnsembles slab_subs;
          slab_subs.x1 = std::move(slab1);
          slab_subs.x2 = std::move(slab2);
          M2TD_ASSIGN_OR_RETURN(
              tensor::SparseTensor join_slab,
              JeStitch(slab_subs, partition, full_shape, options.stitch));
          slab_join_nnz = join_slab.NumNonZeros();
          slab_span.Annotate("join_nnz", join_slab.NumNonZeros());
          stitch_timer.Stop();

          core_timer.Resume();
          if (join_slab.NumNonZeros() > 0) {
            // CoreFromSparse's first hop builds and walks the slab join's
            // CSF index; each slab is a fresh tensor, so this is a
            // build-and-use call (annotated for trace attribution).
            slab_span.Annotate("csf", std::uint64_t{1});
            M2TD_ASSIGN_OR_RETURN(tensor::DenseTensor partial,
                                  tensor::CoreFromSparse(join_slab, factors));
            for (std::uint64_t i = 0; i < core.NumElements(); ++i) {
              core.flat(i) += partial.flat(i);
            }
          }
          core_timer.Stop();
        } else {
          stitch_timer.Stop();
        }
        return Status::OK();
      }();
    } catch (const robust::CancelledError& error) {
      slab_status = error.ToStatus();
    }
    if (robust::IsCancellation(slab_status)) {
      stitch_timer.Stop();
      core_timer.Stop();
      // Graceful drain: flush a snapshot covering every *completed* slab
      // before surfacing the cancellation, so --resume picks up at
      // exactly this slab and the final core stays bit-identical.
      if (journal) {
        M2TD_RETURN_IF_ERROR(snapshot_core(linear));
      }
      return slab_status;
    }
    M2TD_RETURN_IF_ERROR(slab_status);
    result.join_nnz += slab_join_nnz;
    if (journal && checkpoint.checkpoint_every > 0 &&
        (linear + 1) % checkpoint.checkpoint_every == 0 &&
        linear + 1 < pivot_total) {
      M2TD_RETURN_IF_ERROR(snapshot_core(linear + 1));
    }
  }
  result.timings.stitch_seconds = stitch_timer.ElapsedSeconds();
  result.timings.core_seconds = core_timer.ElapsedSeconds();

  result.tucker.core = std::move(core);
  result.tucker.factors = std::move(factors);
  return result;
}

}  // namespace

Result<M2tdResult> M2tdDecomposeFromStores(
    const io::ChunkStore& store1, const io::ChunkStore& store2,
    const PfPartition& partition,
    const std::vector<std::uint64_t>& full_shape, const M2tdOptions& options,
    const OocCheckpointOptions& checkpoint) {
  // The factor phase runs pooled kernels with no Status channel of their
  // own; a cancelled region throws CancelledError, which this boundary
  // converts back into the Status the API promises. (The slab loop handles
  // cancellation itself so it can flush a checkpoint first.)
  try {
    return M2tdDecomposeFromStoresImpl(store1, store2, partition, full_shape,
                                       options, checkpoint);
  } catch (const robust::CancelledError& error) {
    return error.ToStatus();
  }
}

}  // namespace m2td::core
