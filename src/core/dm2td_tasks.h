#ifndef M2TD_CORE_DM2TD_TASKS_H_
#define M2TD_CORE_DM2TD_TASKS_H_

// The serializable task vocabulary of the multi-process D-M2TD backend,
// shared by the coordinator (dm2td_dist.cc) and the worker binary
// (tools/m2td_worker.cc). A task is a (phase, index, attempt) triple plus
// per-phase parameters; task bodies read their inputs from and commit
// their outputs to the durable io::ShuffleStore, so any task can be
// replayed on any worker after a death.
//
// Phase names: "p1map"/"p1red" (sub-tensor Grams), "p2map"/"p2red"
// (JE-stitch, sharded by pivot hash), "p3map_<n>"/"p3red_<n>" (TTM for
// mode n). Map task m of every phase reads input split m (fixed split
// count = shards, independent of worker count) and writes one blob per
// reduce shard; reduce task r concatenates the committed shard-r blobs
// in map-task order — reproducing the global input order — groups by
// key, and folds groups in ascending key order. Determinism therefore
// never depends on which worker ran what.

#include <cstdint>
#include <string>
#include <vector>

#include "core/dm2td_internal.h"
#include "io/chunk_store.h"
#include "linalg/matrix.h"
#include "util/result.h"

namespace m2td::core::dm2td_tasks {

/// Environment knob (milliseconds): when set in a worker's environment,
/// every map task sleeps this long between writing its shard blobs and
/// committing — a deterministic window for chaos tests to land a SIGKILL
/// "mid-shuffle-write".
inline constexpr char kChaosSleepEnv[] = "M2TD_DIST_CHAOS_SLEEP_MS";

/// Environment knob "<phase>:<index>:<ms>[:<max_attempt>]": the named
/// task sleeps `ms` milliseconds at its start when its attempt number is
/// <= max_attempt (default 0, i.e. only the first attempt) — a
/// deterministic straggler for speculative-execution tests. The sleep is
/// cancel-aware, so a coordinator cancel frame cuts it short.
inline constexpr char kStragglerEnv[] = "M2TD_DIST_STRAGGLER";

/// Exit codes of the m2td_worker binary, surfaced by the coordinator via
/// waitpid into DistStats::worker_exit_details and the run report.
enum WorkerExitCode {
  kWorkerExitOk = 0,
  /// Torn control channel (unexpected error reading the coordinator).
  kWorkerExitTornPipe = 1,
  /// Bad command line / failed arming of chaos specs.
  kWorkerExitBadInvocation = 2,
  /// Could not open the shuffle store or load the job config.
  kWorkerExitBadJob = 3,
  /// A received frame failed to decode; the worker logs the offending
  /// frame header (first bytes, hex) before exiting with this code.
  kWorkerExitMalformedFrame = 5,
  /// Socket transport: the redial budget ran out without reattaching.
  kWorkerExitLostCoordinator = 6,
};

/// Human-readable meaning of a worker exit code ("malformed frame", ...).
const char* WorkerExitCodeName(int code);

/// Job-wide parameters, written once by the coordinator as
/// `<job_dir>/job.m2td` and loaded by every worker.
struct DistJobConfig {
  std::vector<std::uint64_t> full_shape, shape1, shape2;
  std::vector<std::size_t> pivot_modes, side1_modes, side2_modes;
  int shards = 0;
  bool zero_join = false;
};

Status SaveJobConfig(const std::string& path, const DistJobConfig& config);
Result<DistJobConfig> LoadJobConfig(const std::string& path);

/// Geometry derived from the config (same as the thread backend's).
dm2td_internal::JobGeometry GeometryOf(const DistJobConfig& config);

/// One task assignment as carried by the wire protocol.
struct TaskRequest {
  bool is_map = true;
  std::string phase;
  int index = 0;
  int attempt = 0;
  /// Phase-3 only: the mode being contracted and the tensor shape at
  /// this point of the TTM chain (it changes after every mode job).
  int mode = -1;
  std::vector<std::uint64_t> shape;
};

/// "p1red" -> "p1map", "p3red_2" -> "p3map_2": the map phase a reduce
/// phase consumes.
std::string MapPhaseOf(const std::string& reduce_phase);

/// Wire form of a task assignment ("task <is_map> <phase> <index>
/// <attempt> <mode> <nshape> <d0> ..."), carried as one frame payload.
std::string EncodeTaskFrame(const TaskRequest& task);
Result<TaskRequest> DecodeTaskFrame(const std::string& frame);

/// A (key, i_n, value) record of the phase-3 shuffle.
struct FiberPair {
  std::uint64_t key = 0;
  std::uint32_t i = 0;
  double v = 0.0;
};

// Little-endian binary record codecs for the shuffle blobs. Decoders are
// bounds-checked and return IOError on truncation (a failed CRC check
// would normally catch corruption first).
std::string EncodeCells(const std::vector<dm2td_internal::TensorCell>& cells);
Result<std::vector<dm2td_internal::TensorCell>> DecodeCells(
    const std::string& bytes);
std::string EncodeJoinCells(
    const std::vector<dm2td_internal::JoinCell>& cells);
Result<std::vector<dm2td_internal::JoinCell>> DecodeJoinCells(
    const std::string& bytes);
std::string EncodeFiberPairs(const std::vector<FiberPair>& pairs);
Result<std::vector<FiberPair>> DecodeFiberPairs(const std::string& bytes);
std::string EncodeGramPieces(
    const std::vector<dm2td_internal::GramPiece>& pieces);
Result<std::vector<dm2td_internal::GramPiece>> DecodeGramPieces(
    const std::string& bytes);
std::string EncodeMatrix(const linalg::Matrix& matrix);
Result<linalg::Matrix> DecodeMatrix(const std::string& bytes);
std::string EncodeU64List(const std::vector<std::uint64_t>& values);
Result<std::vector<std::uint64_t>> DecodeU64List(const std::string& bytes);

/// Executes one task against the store: reads inputs, computes via the
/// shared dm2td_internal bodies, durably writes + commits outputs.
/// DataLoss from a corrupted map output carries a "[task <phase>:<m>]"
/// marker naming the culprit map task (see ShuffleStore::ReadBlob), so
/// the coordinator re-executes the producer instead of retrying the
/// poisoned blob.
Status RunDistTask(const io::ShuffleStore& store,
                   const DistJobConfig& config, const TaskRequest& task);

}  // namespace m2td::core::dm2td_tasks

#endif  // M2TD_CORE_DM2TD_TASKS_H_
