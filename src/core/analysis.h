#ifndef M2TD_CORE_ANALYSIS_H_
#define M2TD_CORE_ANALYSIS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ensemble/parameter_space.h"
#include "tensor/sparse_tensor.h"
#include "tensor/tucker.h"
#include "util/result.h"

namespace m2td::core {

/// One latent pattern along one mode: the factor column plus the domain
/// indices that load most heavily on it.
struct ModePattern {
  std::size_t mode = 0;
  std::size_t component = 0;
  /// Domain indices sorted by decreasing |loading|.
  std::vector<std::uint32_t> top_indices;
  /// |U(i, component)| for the corresponding top_indices.
  std::vector<double> loadings;
};

/// \brief Extracts, for every mode and factor component, the `top_k`
/// grid values with the largest absolute loadings — the paper's
/// "high-level understanding of the dynamic processes": which parameter
/// values (and timestamps) drive each latent pattern.
Result<std::vector<ModePattern>> ExtractModePatterns(
    const tensor::TuckerDecomposition& tucker, std::size_t top_k);

/// Pretty-prints patterns using the parameter space's names and grid
/// values ("phi1=1.23 (0.87)").
std::string DescribePatterns(const std::vector<ModePattern>& patterns,
                             const ensemble::ParameterSpace& space,
                             std::size_t max_entries_per_pattern = 3);

/// Interaction strength of each core entry, sorted: the dominant
/// component combinations (|G(g)| normalized by the core norm).
struct CoreInteraction {
  std::vector<std::uint32_t> component_indices;
  double strength = 0.0;  // |G(g)| / ||G||_F
};

/// Top `top_k` core interactions — which cross-mode pattern combinations
/// carry the ensemble's energy.
Result<std::vector<CoreInteraction>> TopCoreInteractions(
    const tensor::TuckerDecomposition& tucker, std::size_t top_k);

/// One observed simulation cell poorly explained by the decomposition.
struct ResidualOutlier {
  std::vector<std::uint32_t> indices;
  double observed = 0.0;
  double reconstructed = 0.0;
  double residual = 0.0;  // |observed - reconstructed|
};

/// \brief The `top_k` observed entries of `x` with the largest absolute
/// reconstruction residual under `tucker` — simulations the global
/// patterns fail to explain (candidate anomalies / regions worth denser
/// sampling). Evaluates cells lazily via ReconstructCell; never
/// materializes the dense reconstruction.
Result<std::vector<ResidualOutlier>> ResidualOutliers(
    const tensor::TuckerDecomposition& tucker, const tensor::SparseTensor& x,
    std::size_t top_k);

}  // namespace m2td::core

#endif  // M2TD_CORE_ANALYSIS_H_
