#include "core/refine.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_set>

#include "ensemble/sampling.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/tucker.h"

namespace m2td::core {

namespace {

/// Dimensions of the parameter modes (time excluded), in mode order.
std::vector<std::uint64_t> ParamDims(const ensemble::ParameterSpace& space,
                                     std::size_t time_mode) {
  std::vector<std::uint64_t> dims;
  for (std::size_t m = 0; m < space.num_modes(); ++m) {
    if (m != time_mode) dims.push_back(space.Resolution(m));
  }
  return dims;
}

std::vector<std::uint32_t> Decode(std::uint64_t linear,
                                  const std::vector<std::uint64_t>& dims) {
  std::vector<std::uint32_t> combo(dims.size());
  for (std::size_t m = dims.size(); m-- > 0;) {
    combo[m] = static_cast<std::uint32_t>(linear % dims[m]);
    linear /= dims[m];
  }
  return combo;
}

/// Normalized L1 grid distance between two parameter combinations.
double GridDistance(const std::vector<std::uint32_t>& a,
                    const std::vector<std::uint32_t>& b,
                    const std::vector<std::uint64_t>& dims) {
  double distance = 0.0;
  for (std::size_t m = 0; m < dims.size(); ++m) {
    distance += std::fabs(static_cast<double>(a[m]) -
                          static_cast<double>(b[m])) /
                static_cast<double>(dims[m]);
  }
  return distance / static_cast<double>(dims.size());
}

/// Appends the full time fiber of `combo` to the ensemble tensor.
void RunSimulation(ensemble::SimulationModel* model,
                   const std::vector<std::uint32_t>& combo,
                   tensor::SparseTensor* ensemble_x) {
  const ensemble::ParameterSpace& space = model->space();
  const std::size_t time_mode = model->time_mode();
  std::vector<std::uint32_t> idx(space.num_modes());
  std::size_t cursor = 0;
  for (std::size_t m = 0; m < space.num_modes(); ++m) {
    if (m != time_mode) idx[m] = combo[cursor++];
  }
  for (std::uint32_t t = 0; t < space.Resolution(time_mode); ++t) {
    idx[time_mode] = t;
    ensemble_x->AppendEntry(idx, model->Cell(idx));
  }
}

/// Fit of the decomposition restricted to the observed entries:
/// 1 - ||x - x~||_obs / ||x||_obs.
Result<double> ObservedFit(const tensor::TuckerDecomposition& tucker,
                           const tensor::SparseTensor& x) {
  double err_sq = 0.0;
  double norm_sq = 0.0;
  std::vector<std::uint32_t> idx(x.num_modes());
  for (std::uint64_t e = 0; e < x.NumNonZeros(); ++e) {
    for (std::size_t m = 0; m < x.num_modes(); ++m) idx[m] = x.Index(m, e);
    M2TD_ASSIGN_OR_RETURN(double reconstructed,
                          tensor::ReconstructCell(tucker, idx));
    const double v = x.Value(e);
    err_sq += (v - reconstructed) * (v - reconstructed);
    norm_sq += v * v;
  }
  if (norm_sq == 0.0) return 1.0;
  return 1.0 - std::sqrt(err_sq) / std::sqrt(norm_sq);
}

}  // namespace

Result<RefinementResult> AdaptiveRefinement(
    ensemble::SimulationModel* model, const RefinementOptions& options) {
  if (model == nullptr) {
    return Status::InvalidArgument("model must not be null");
  }
  if (options.initial_budget == 0 || options.increment == 0 ||
      options.rounds <= 0 || options.rank == 0 ||
      options.candidate_pool == 0) {
    return Status::InvalidArgument("all refinement sizes must be positive");
  }
  if (options.exploit_weight < 0.0 || options.exploit_weight > 1.0) {
    return Status::InvalidArgument("exploit_weight must be in [0, 1]");
  }

  const ensemble::ParameterSpace& space = model->space();
  const std::size_t time_mode = model->time_mode();
  const std::vector<std::uint64_t> dims = ParamDims(space, time_mode);
  std::uint64_t total = 1;
  for (std::uint64_t d : dims) total *= d;

  Rng rng(options.seed);
  RefinementResult result;
  result.ensemble = tensor::SparseTensor(space.Shape());
  std::unordered_set<std::uint64_t> sampled;

  // Initial random allocation.
  const std::uint64_t initial = std::min(options.initial_budget, total);
  for (std::uint64_t linear : rng.SampleWithoutReplacement(total, initial)) {
    std::vector<std::uint32_t> combo = Decode(linear, dims);
    sampled.insert(linear);
    RunSimulation(model, combo, &result.ensemble);
    result.combinations.push_back(std::move(combo));
  }
  result.ensemble.SortAndCoalesce();

  obs::GetCounter("refine.simulations").Add(initial);

  const std::vector<std::uint64_t> ranks(space.num_modes(), options.rank);
  for (int round = 0; round < options.rounds; ++round) {
    obs::ObsSpan round_span("refine_round");
    round_span.Annotate("round", static_cast<std::int64_t>(round));
    round_span.Annotate("total_simulations",
                        static_cast<std::uint64_t>(
                            result.combinations.size()));
    // Score model from what has been observed so far.
    M2TD_ASSIGN_OR_RETURN(
        tensor::TuckerDecomposition tucker,
        tensor::HosvdSparse(result.ensemble, ranks, options.scoring));
    RefinementRound trace;
    trace.total_simulations = result.combinations.size();
    M2TD_ASSIGN_OR_RETURN(trace.observed_fit,
                          ObservedFit(tucker, result.ensemble));
    result.rounds.push_back(trace);

    if (sampled.size() >= total) break;

    // Sample unobserved candidates and score them.
    struct Candidate {
      std::uint64_t linear;
      double score;
    };
    std::vector<Candidate> candidates;
    const std::uint64_t pool =
        std::min<std::uint64_t>(options.candidate_pool,
                                total - sampled.size());
    std::unordered_set<std::uint64_t> pool_set;
    while (pool_set.size() < pool) {
      const std::uint64_t linear = rng.UniformInt(total);
      if (sampled.count(linear) == 0) pool_set.insert(linear);
    }
    std::vector<std::uint32_t> idx(space.num_modes());
    for (std::uint64_t linear : pool_set) {
      const std::vector<std::uint32_t> combo = Decode(linear, dims);
      // Exploit: predicted time-fiber energy at this combination.
      double fiber_energy = 0.0;
      std::size_t cursor = 0;
      for (std::size_t m = 0; m < space.num_modes(); ++m) {
        if (m != time_mode) idx[m] = combo[cursor++];
      }
      for (std::uint32_t t = 0; t < space.Resolution(time_mode); ++t) {
        idx[time_mode] = t;
        M2TD_ASSIGN_OR_RETURN(double predicted,
                              tensor::ReconstructCell(tucker, idx));
        fiber_energy += predicted * predicted;
      }
      // Explore: distance to the nearest sampled combination.
      double nearest = std::numeric_limits<double>::infinity();
      for (const auto& chosen : result.combinations) {
        nearest = std::min(nearest, GridDistance(combo, chosen, dims));
        if (nearest == 0.0) break;
      }
      const double score =
          options.exploit_weight * std::sqrt(fiber_energy) +
          (1.0 - options.exploit_weight) * nearest;
      candidates.push_back(Candidate{linear, score});
    }
    const std::uint64_t take =
        std::min<std::uint64_t>(options.increment, candidates.size());
    std::partial_sort(candidates.begin(), candidates.begin() + take,
                      candidates.end(),
                      [](const Candidate& a, const Candidate& b) {
                        return a.score > b.score;
                      });
    for (std::uint64_t i = 0; i < take; ++i) {
      std::vector<std::uint32_t> combo = Decode(candidates[i].linear, dims);
      sampled.insert(candidates[i].linear);
      RunSimulation(model, combo, &result.ensemble);
      result.combinations.push_back(std::move(combo));
    }
    obs::GetCounter("refine.simulations").Add(take);
    result.ensemble.SortAndCoalesce();
  }
  return result;
}

}  // namespace m2td::core
