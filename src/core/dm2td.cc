#include "core/dm2td.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "core/dm2td_dist.h"
#include "core/dm2td_internal.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace m2td::core {

namespace {

using dm2td_internal::GramPiece;
using dm2td_internal::JobGeometry;
using dm2td_internal::JoinCell;
using dm2td_internal::TensorCell;

/// Thread-backend implementation: the three phases on the in-process
/// MapReduce engine. Inter-phase record streams are canonically sorted
/// (see dm2td_internal::SortJoinCells) so results are bit-identical at
/// any num_workers — and to the process backend.
Result<DM2tdResult> DecomposeThreadBackend(
    const SubEnsembles& subs, const PfPartition& partition,
    const std::vector<std::uint64_t>& full_shape,
    const DM2tdOptions& options) {
  const std::size_t num_modes = full_shape.size();
  const JobGeometry geometry =
      dm2td_internal::MakeGeometry(partition, full_shape);

  DM2tdResult result;
  obs::ObsSpan total_span("dm2td_decompose");
  total_span.Annotate("num_workers",
                      static_cast<std::int64_t>(options.num_workers));
  total_span.Annotate("backend", "thread");

  std::vector<TensorCell> all_cells =
      dm2td_internal::CollectCells(subs.x1, 1);
  {
    std::vector<TensorCell> cells2 = dm2td_internal::CollectCells(subs.x2, 2);
    all_cells.insert(all_cells.end(),
                     std::make_move_iterator(cells2.begin()),
                     std::make_move_iterator(cells2.end()));
  }

  // ---------- Phase 1: parallel sub-tensor decomposition. ----------
  obs::ObsSpan sub_span("sub_decompose");
  const std::vector<std::uint64_t> shape1 = subs.x1.shape();
  const std::vector<std::uint64_t> shape2 = subs.x2.shape();
  mapreduce::JobSpec<TensorCell, int, TensorCell, GramPiece> phase1;
  phase1.num_workers = options.num_workers;
  phase1.retry = options.retry;
  phase1.mapper = [](const TensorCell& cell,
                     mapreduce::Emitter<int, TensorCell>* emitter) {
    emitter->Emit(cell.kappa, cell);
  };
  phase1.reducer = [&shape1, &shape2](const int& kappa,
                                      std::vector<TensorCell>& cells,
                                      std::vector<GramPiece>* out) {
    const Status built = dm2td_internal::BuildGramsForSub(
        kappa, kappa == 1 ? shape1 : shape2, cells, out);
    M2TD_CHECK(built.ok()) << built;
  };
  M2TD_ASSIGN_OR_RETURN(std::vector<GramPiece> gram_pieces,
                        mapreduce::RunJob(phase1, all_cells, &result.phase1));

  // Driver-side factor assembly from the distributed Grams (the per-mode
  // eigenproblems are tiny: mode-length squared).
  std::unordered_map<std::uint64_t, linalg::Matrix> grams;  // kappa*64+mode
  for (GramPiece& piece : gram_pieces) {
    grams[static_cast<std::uint64_t>(piece.kappa) * 64 + piece.sub_mode] =
        std::move(piece.gram);
  }
  M2TD_ASSIGN_OR_RETURN(std::vector<linalg::Matrix> factors,
                        dm2td_internal::AssembleFactors(grams, partition,
                                                        full_shape, options));
  sub_span.End();

  // ---------- Phase 2: parallel JE-stitching. ----------
  obs::ObsSpan stitch_span("stitch");
  // Zero-join candidate sets are global; gather them driver-side.
  std::vector<std::uint64_t> cand1, cand2;
  if (options.stitch.zero_join) {
    dm2td_internal::GatherZeroJoinCandidates(all_cells, geometry, &cand1,
                                             &cand2);
  }

  mapreduce::JobSpec<TensorCell, std::uint64_t, TensorCell, JoinCell> phase2;
  phase2.num_workers = options.num_workers;
  phase2.retry = options.retry;
  phase2.mapper = [&geometry](
                      const TensorCell& cell,
                      mapreduce::Emitter<std::uint64_t, TensorCell>* emitter) {
    emitter->Emit(dm2td_internal::PivotKey(cell.idx, geometry.pivot_dims),
                  cell);
  };
  const bool zero_join = options.stitch.zero_join;
  phase2.reducer = [&, zero_join](const std::uint64_t& pivot_key,
                                  std::vector<TensorCell>& cells,
                                  std::vector<JoinCell>* out) {
    dm2td_internal::JoinPivotGroup(pivot_key, cells, geometry, zero_join,
                                   cand1, cand2, out);
  };
  M2TD_ASSIGN_OR_RETURN(std::vector<JoinCell> join_cells,
                        mapreduce::RunJob(phase2, all_cells, &result.phase2));
  // Canonical inter-phase order: reducer output order depends on worker
  // count (hash bucketing), the downstream fp accumulation must not.
  dm2td_internal::SortJoinCells(&join_cells);
  result.join_nnz = join_cells.size();
  stitch_span.Annotate("join_nnz", result.join_nnz);
  stitch_span.End();

  // ---------- Phase 3: one TTM job per mode. ----------
  obs::ObsSpan core_span("core_recovery");
  std::vector<std::uint64_t> current_shape = full_shape;
  for (std::size_t n = 0; n < num_modes; ++n) {
    obs::ObsSpan ttm_span("ttm_job");
    ttm_span.Annotate("mode", static_cast<std::uint64_t>(n));
    const linalg::Matrix& factor = factors[n];
    const std::size_t rank = factor.cols();

    // Strides over all modes except n, for the fiber key.
    std::vector<std::uint64_t> other_dims;
    std::vector<std::size_t> other_modes;
    for (std::size_t m = 0; m < num_modes; ++m) {
      if (m != n) {
        other_dims.push_back(current_shape[m]);
        other_modes.push_back(m);
      }
    }

    mapreduce::JobSpec<JoinCell, std::uint64_t,
                       std::pair<std::uint32_t, double>, JoinCell>
        ttm_job;
    ttm_job.num_workers = options.num_workers;
    ttm_job.retry = options.retry;
    ttm_job.mapper =
        [&, n](const JoinCell& cell,
               mapreduce::Emitter<std::uint64_t,
                                  std::pair<std::uint32_t, double>>* emitter) {
          emitter->Emit(
              dm2td_internal::Phase3FiberKey(cell, n, current_shape),
              {cell.idx[n], cell.value});
        };
    ttm_job.reducer =
        [&, n](const std::uint64_t& key,
               std::vector<std::pair<std::uint32_t, double>>& fiber,
               std::vector<JoinCell>* out) {
          dm2td_internal::ContractFiber(key, fiber, factor, n, other_dims,
                                        other_modes, num_modes, out);
        };
    mapreduce::JobStats stats;
    M2TD_ASSIGN_OR_RETURN(join_cells,
                          mapreduce::RunJob(ttm_job, join_cells, &stats));
    dm2td_internal::SortJoinCells(&join_cells);
    result.phase3.map_seconds += stats.map_seconds;
    result.phase3.shuffle_seconds += stats.shuffle_seconds;
    result.phase3.reduce_seconds += stats.reduce_seconds;
    result.phase3.intermediate_pairs += stats.intermediate_pairs;
    result.phase3.output_records = stats.output_records;

    current_shape[n] = rank;
  }

  // Materialize the core.
  tensor::DenseTensor core(current_shape);
  for (const JoinCell& cell : join_cells) {
    core.at(cell.idx) += cell.value;
  }
  result.tucker.core = std::move(core);
  result.tucker.factors = std::move(factors);
  return result;
}

}  // namespace

Result<DM2tdResult> DM2tdDecompose(const SubEnsembles& subs,
                                   const PfPartition& partition,
                                   const std::vector<std::uint64_t>&
                                       full_shape,
                                   const DM2tdOptions& options) {
  M2TD_RETURN_IF_ERROR(dm2td_internal::ValidateDm2tdArgs(
      subs, partition, full_shape, options));
  if (options.backend == DistBackend::kProcess) {
    return DM2tdDecomposeProcess(subs, partition, full_shape, options);
  }
  return DecomposeThreadBackend(subs, partition, full_shape, options);
}

}  // namespace m2td::core
