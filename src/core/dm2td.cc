#include "core/dm2td.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "linalg/svd.h"
#include "obs/trace.h"
#include "tensor/matricize.h"
#include "util/logging.h"

namespace m2td::core {

namespace {

/// One stored cell of a (sub-)tensor shipped through MapReduce.
struct TensorCell {
  int kappa = 0;  // 1 or 2: owning sub-tensor
  std::vector<std::uint32_t> idx;
  double value = 0.0;
};

/// Phase-1 reducer output: the Gram matrix of one sub-tensor mode.
struct GramPiece {
  int kappa = 0;
  std::size_t sub_mode = 0;
  linalg::Matrix gram;
};

/// A cell of the join tensor (and of the phase-3 intermediates), in
/// original mode order.
struct JoinCell {
  std::vector<std::uint32_t> idx;
  double value = 0.0;
};

std::vector<TensorCell> CollectCells(const tensor::SparseTensor& sub,
                                     int kappa) {
  std::vector<TensorCell> cells;
  cells.reserve(sub.NumNonZeros());
  const std::size_t modes = sub.num_modes();
  for (std::uint64_t e = 0; e < sub.NumNonZeros(); ++e) {
    TensorCell cell;
    cell.kappa = kappa;
    cell.idx.resize(modes);
    for (std::size_t m = 0; m < modes; ++m) cell.idx[m] = sub.Index(m, e);
    cell.value = sub.Value(e);
    cells.push_back(std::move(cell));
  }
  return cells;
}

std::uint64_t PivotKey(const std::vector<std::uint32_t>& idx,
                       const std::vector<std::uint64_t>& pivot_dims) {
  std::uint64_t key = 0;
  for (std::size_t i = 0; i < pivot_dims.size(); ++i) {
    key = key * pivot_dims[i] + idx[i];
  }
  return key;
}

std::uint64_t SideKey(const std::vector<std::uint32_t>& idx, std::size_t k,
                      const std::vector<std::uint64_t>& side_dims) {
  std::uint64_t key = 0;
  for (std::size_t i = 0; i < side_dims.size(); ++i) {
    key = key * side_dims[i] + idx[k + i];
  }
  return key;
}

void ScatterKey(std::uint64_t key, const std::vector<std::uint64_t>& dims,
                const std::vector<std::size_t>& modes,
                std::vector<std::uint32_t>* out) {
  for (std::size_t i = dims.size(); i-- > 0;) {
    (*out)[modes[i]] = static_cast<std::uint32_t>(key % dims[i]);
    key /= dims[i];
  }
}

std::vector<std::uint64_t> ModeDims(
    const std::vector<std::uint64_t>& full_shape,
    const std::vector<std::size_t>& modes) {
  std::vector<std::uint64_t> dims;
  dims.reserve(modes.size());
  for (std::size_t m : modes) dims.push_back(full_shape[m]);
  return dims;
}

}  // namespace

Result<DM2tdResult> DM2tdDecompose(const SubEnsembles& subs,
                                   const PfPartition& partition,
                                   const std::vector<std::uint64_t>&
                                       full_shape,
                                   const DM2tdOptions& options) {
  const std::size_t num_modes = full_shape.size();
  if (partition.NumModes() != num_modes) {
    return Status::InvalidArgument("partition does not match full shape");
  }
  if (options.ranks.size() != num_modes) {
    return Status::InvalidArgument("one rank per original mode required");
  }
  if (!subs.x1.IsSorted() || !subs.x2.IsSorted()) {
    return Status::InvalidArgument("DM2TD requires coalesced sub-tensors");
  }
  const std::size_t k = partition.pivot_modes.size();
  const std::vector<std::uint64_t> pivot_dims =
      ModeDims(full_shape, partition.pivot_modes);
  const std::vector<std::uint64_t> side1_dims =
      ModeDims(full_shape, partition.side1_modes);
  const std::vector<std::uint64_t> side2_dims =
      ModeDims(full_shape, partition.side2_modes);

  DM2tdResult result;
  obs::ObsSpan total_span("dm2td_decompose");
  total_span.Annotate("num_workers",
                      static_cast<std::int64_t>(options.num_workers));

  std::vector<TensorCell> all_cells = CollectCells(subs.x1, 1);
  {
    std::vector<TensorCell> cells2 = CollectCells(subs.x2, 2);
    all_cells.insert(all_cells.end(),
                     std::make_move_iterator(cells2.begin()),
                     std::make_move_iterator(cells2.end()));
  }

  // ---------- Phase 1: parallel sub-tensor decomposition. ----------
  obs::ObsSpan sub_span("sub_decompose");
  const std::vector<std::uint64_t> shape1 = subs.x1.shape();
  const std::vector<std::uint64_t> shape2 = subs.x2.shape();
  mapreduce::JobSpec<TensorCell, int, TensorCell, GramPiece> phase1;
  phase1.num_workers = options.num_workers;
  phase1.retry = options.retry;
  phase1.mapper = [](const TensorCell& cell,
                     mapreduce::Emitter<int, TensorCell>* emitter) {
    emitter->Emit(cell.kappa, cell);
  };
  phase1.reducer = [&shape1, &shape2](const int& kappa,
                                      std::vector<TensorCell>& cells,
                                      std::vector<GramPiece>* out) {
    tensor::SparseTensor sub(kappa == 1 ? shape1 : shape2);
    sub.Reserve(cells.size());
    for (const TensorCell& cell : cells) {
      sub.AppendEntry(cell.idx, cell.value);
    }
    sub.SortAndCoalesce();
    for (std::size_t m = 0; m < sub.num_modes(); ++m) {
      Result<linalg::Matrix> gram = tensor::ModeGram(sub, m);
      M2TD_CHECK(gram.ok()) << gram.status();
      out->push_back(GramPiece{kappa, m, std::move(gram).ValueOrDie()});
    }
  };
  M2TD_ASSIGN_OR_RETURN(std::vector<GramPiece> gram_pieces,
                        mapreduce::RunJob(phase1, all_cells, &result.phase1));

  // Driver-side factor assembly from the distributed Grams (the per-mode
  // eigenproblems are tiny: mode-length squared).
  std::unordered_map<std::uint64_t, linalg::Matrix> grams;  // kappa*64+mode
  for (GramPiece& piece : gram_pieces) {
    grams[static_cast<std::uint64_t>(piece.kappa) * 64 + piece.sub_mode] =
        std::move(piece.gram);
  }
  auto gram_of = [&grams](int kappa,
                          std::size_t sub_mode) -> Result<linalg::Matrix*> {
    auto it = grams.find(static_cast<std::uint64_t>(kappa) * 64 + sub_mode);
    if (it == grams.end()) {
      return Status::Internal("missing Gram piece from phase 1");
    }
    return &it->second;
  };

  std::vector<linalg::Matrix> factors(num_modes);
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t mode = partition.pivot_modes[i];
    const std::size_t rank = static_cast<std::size_t>(
        std::min<std::uint64_t>(options.ranks[mode], full_shape[mode]));
    M2TD_ASSIGN_OR_RETURN(linalg::Matrix * g1, gram_of(1, i));
    M2TD_ASSIGN_OR_RETURN(linalg::Matrix * g2, gram_of(2, i));
    if (options.method == M2tdMethod::kConcat) {
      const linalg::Matrix sum = linalg::LinearCombination(1.0, *g1, 1.0, *g2);
      M2TD_ASSIGN_OR_RETURN(factors[mode],
                            linalg::LeftSingularVectorsFromGram(sum, rank));
    } else {
      M2TD_ASSIGN_OR_RETURN(linalg::Matrix u1,
                            linalg::LeftSingularVectorsFromGram(*g1, rank));
      M2TD_ASSIGN_OR_RETURN(linalg::Matrix u2,
                            linalg::LeftSingularVectorsFromGram(*g2, rank));
      if (options.method == M2tdMethod::kAvg) {
        factors[mode] = linalg::LinearCombination(0.5, u1, 0.5, u2);
      } else if (options.method == M2tdMethod::kWeighted) {
        M2TD_ASSIGN_OR_RETURN(factors[mode], RowWeightedBlend(u1, u2));
      } else {
        M2TD_ASSIGN_OR_RETURN(factors[mode], RowSelect(u1, u2));
      }
    }
  }
  for (int side = 1; side <= 2; ++side) {
    const std::vector<std::size_t>& side_modes =
        (side == 1) ? partition.side1_modes : partition.side2_modes;
    for (std::size_t i = 0; i < side_modes.size(); ++i) {
      const std::size_t mode = side_modes[i];
      const std::size_t rank = static_cast<std::size_t>(
          std::min<std::uint64_t>(options.ranks[mode], full_shape[mode]));
      M2TD_ASSIGN_OR_RETURN(linalg::Matrix * gram, gram_of(side, k + i));
      M2TD_ASSIGN_OR_RETURN(factors[mode],
                            linalg::LeftSingularVectorsFromGram(*gram, rank));
    }
  }

  sub_span.End();

  // ---------- Phase 2: parallel JE-stitching. ----------
  obs::ObsSpan stitch_span("stitch");
  // Zero-join candidate sets are global; gather them driver-side.
  std::vector<std::uint64_t> cand1, cand2;
  if (options.stitch.zero_join) {
    std::unordered_set<std::uint64_t> set1, set2;
    for (const TensorCell& cell : all_cells) {
      if (cell.kappa == 1) {
        set1.insert(SideKey(cell.idx, k, side1_dims));
      } else {
        set2.insert(SideKey(cell.idx, k, side2_dims));
      }
    }
    cand1.assign(set1.begin(), set1.end());
    cand2.assign(set2.begin(), set2.end());
    std::sort(cand1.begin(), cand1.end());
    std::sort(cand2.begin(), cand2.end());
  }

  mapreduce::JobSpec<TensorCell, std::uint64_t, TensorCell, JoinCell> phase2;
  phase2.num_workers = options.num_workers;
  phase2.retry = options.retry;
  phase2.mapper = [&pivot_dims](
                      const TensorCell& cell,
                      mapreduce::Emitter<std::uint64_t, TensorCell>* emitter) {
    emitter->Emit(PivotKey(cell.idx, pivot_dims), cell);
  };
  const bool zero_join = options.stitch.zero_join;
  phase2.reducer = [&, zero_join](const std::uint64_t& pivot_key,
                                  std::vector<TensorCell>& cells,
                                  std::vector<JoinCell>* out) {
    std::unordered_map<std::uint64_t, double> lookup1, lookup2;
    for (const TensorCell& cell : cells) {
      if (cell.kappa == 1) {
        lookup1[SideKey(cell.idx, k, side1_dims)] = cell.value;
      } else {
        lookup2[SideKey(cell.idx, k, side2_dims)] = cell.value;
      }
    }
    std::vector<std::uint32_t> indices(num_modes);
    ScatterKey(pivot_key, pivot_dims, partition.pivot_modes, &indices);
    auto emit_pair = [&](std::uint64_t key1, double v1, std::uint64_t key2,
                         double v2) {
      ScatterKey(key1, side1_dims, partition.side1_modes, &indices);
      ScatterKey(key2, side2_dims, partition.side2_modes, &indices);
      out->push_back(JoinCell{indices, 0.5 * (v1 + v2)});
    };
    if (!zero_join) {
      for (const auto& [key1, v1] : lookup1) {
        for (const auto& [key2, v2] : lookup2) emit_pair(key1, v1, key2, v2);
      }
      return;
    }
    for (std::uint64_t key1 : cand1) {
      const auto v1 = lookup1.find(key1);
      for (std::uint64_t key2 : cand2) {
        const auto v2 = lookup2.find(key2);
        if (v1 == lookup1.end() && v2 == lookup2.end()) continue;
        emit_pair(key1, v1 != lookup1.end() ? v1->second : 0.0, key2,
                  v2 != lookup2.end() ? v2->second : 0.0);
      }
    }
  };
  M2TD_ASSIGN_OR_RETURN(std::vector<JoinCell> join_cells,
                        mapreduce::RunJob(phase2, all_cells, &result.phase2));
  result.join_nnz = join_cells.size();
  stitch_span.Annotate("join_nnz", result.join_nnz);
  stitch_span.End();

  // ---------- Phase 3: one TTM job per mode. ----------
  obs::ObsSpan core_span("core_recovery");
  std::vector<std::uint64_t> current_shape = full_shape;
  for (std::size_t n = 0; n < num_modes; ++n) {
    obs::ObsSpan ttm_span("ttm_job");
    ttm_span.Annotate("mode", static_cast<std::uint64_t>(n));
    const linalg::Matrix& factor = factors[n];
    const std::size_t rank = factor.cols();

    // Strides over all modes except n, for the fiber key.
    std::vector<std::uint64_t> other_dims;
    std::vector<std::size_t> other_modes;
    for (std::size_t m = 0; m < num_modes; ++m) {
      if (m != n) {
        other_dims.push_back(current_shape[m]);
        other_modes.push_back(m);
      }
    }

    mapreduce::JobSpec<JoinCell, std::uint64_t,
                       std::pair<std::uint32_t, double>, JoinCell>
        ttm_job;
    ttm_job.num_workers = options.num_workers;
    ttm_job.retry = options.retry;
    ttm_job.mapper =
        [&, n](const JoinCell& cell,
               mapreduce::Emitter<std::uint64_t,
                                  std::pair<std::uint32_t, double>>* emitter) {
          std::uint64_t key = 0;
          for (std::size_t m = 0; m < num_modes; ++m) {
            if (m == n) continue;
            key = key * current_shape[m] + cell.idx[m];
          }
          emitter->Emit(key, {cell.idx[n], cell.value});
        };
    ttm_job.reducer =
        [&, n, rank](const std::uint64_t& key,
                     std::vector<std::pair<std::uint32_t, double>>& fiber,
                     std::vector<JoinCell>* out) {
          std::vector<double> acc(rank, 0.0);
          for (const auto& [i_n, v] : fiber) {
            for (std::size_t j = 0; j < rank; ++j) {
              acc[j] += factor(i_n, j) * v;
            }
          }
          std::vector<std::uint32_t> indices(num_modes);
          ScatterKey(key, other_dims, other_modes, &indices);
          for (std::size_t j = 0; j < rank; ++j) {
            if (acc[j] == 0.0) continue;
            indices[n] = static_cast<std::uint32_t>(j);
            out->push_back(JoinCell{indices, acc[j]});
          }
        };
    mapreduce::JobStats stats;
    M2TD_ASSIGN_OR_RETURN(join_cells,
                          mapreduce::RunJob(ttm_job, join_cells, &stats));
    result.phase3.map_seconds += stats.map_seconds;
    result.phase3.shuffle_seconds += stats.shuffle_seconds;
    result.phase3.reduce_seconds += stats.reduce_seconds;
    result.phase3.intermediate_pairs += stats.intermediate_pairs;
    result.phase3.output_records = stats.output_records;

    current_shape[n] = rank;
  }

  // Materialize the core.
  tensor::DenseTensor core(current_shape);
  for (const JoinCell& cell : join_cells) {
    core.at(cell.idx) += cell.value;
  }
  result.tucker.core = std::move(core);
  result.tucker.factors = std::move(factors);
  return result;
}

}  // namespace m2td::core
