#ifndef M2TD_CORE_EXPERIMENT_H_
#define M2TD_CORE_EXPERIMENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/m2td.h"
#include "core/pf_partition.h"
#include "ensemble/sampling.h"
#include "ensemble/simulation_model.h"
#include "tensor/dense_tensor.h"
#include "util/result.h"

namespace m2td::core {

/// One row of a paper-style results table: a scheme's accuracy (the
/// 1 - ||X~ - Y|| / ||Y|| metric) and its decomposition wall-clock.
struct SchemeOutcome {
  std::string scheme;
  double accuracy = 0.0;
  /// Decomposition time only (sampling/simulation excluded), matching the
  /// paper's "Decomposition Time" tables.
  double decompose_seconds = 0.0;
  /// Simulated cells consumed by the scheme.
  std::uint64_t budget_cells = 0;
  /// Stored entries of the tensor that was decomposed (for M2TD: the join
  /// tensor — the "effective density" numerator).
  std::uint64_t nnz = 0;
  /// M2TD phase breakdown (zeros for conventional schemes).
  M2tdTimings timings;
};

/// \brief Runs a conventional baseline end to end: sample `budget`
/// simulations by `scheme`, HOSVD the sparse ensemble tensor at uniform
/// rank `rank` (deterministic or sketched per `init`), reconstruct, and
/// score against `ground_truth`.
Result<SchemeOutcome> RunConventional(ensemble::SimulationModel* model,
                                      const tensor::DenseTensor& ground_truth,
                                      ensemble::ConventionalScheme scheme,
                                      std::uint64_t budget,
                                      std::uint64_t rank,
                                      std::uint64_t seed,
                                      const linalg::GramFactorOptions& init =
                                          {});

/// \brief Runs an M2TD pipeline end to end: PF-partitioned sub-ensembles,
/// M2TD decomposition of the join tensor (factor solves per `init`),
/// reconstruction, and scoring.
Result<SchemeOutcome> RunM2td(ensemble::SimulationModel* model,
                              const tensor::DenseTensor& ground_truth,
                              const PfPartition& partition,
                              M2tdMethod method, std::uint64_t rank,
                              const SubEnsembleOptions& sub_options,
                              const StitchOptions& stitch_options = {},
                              const linalg::GramFactorOptions& init = {});

/// Uniform per-mode rank vector for a model's space.
std::vector<std::uint64_t> UniformRanks(const ensemble::SimulationModel& model,
                                        std::uint64_t rank);

/// Decomposes a *pre-built* union-of-samples sparse tensor (the naive
/// "union the sub-ensembles into one N-mode tensor" alternative of
/// Section I-C) and scores it — the ablation baseline for the join.
Result<SchemeOutcome> RunUnionBaseline(const tensor::SparseTensor& ensemble_x,
                                       const tensor::DenseTensor&
                                           ground_truth,
                                       std::uint64_t rank,
                                       const std::string& label);

}  // namespace m2td::core

#endif  // M2TD_CORE_EXPERIMENT_H_
